package repro_bench

import (
	"context"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestMetricsExpositionFile verifies a metrics dump produced by a traced
// iotls run: the exposition parses and the key pipeline counters are
// nonzero. CI's bench-smoke job runs `iotls -metrics FILE` and then this
// test with METRICS_FILE=FILE; without the variable the test is skipped.
func TestMetricsExpositionFile(t *testing.T) {
	path := os.Getenv("METRICS_FILE")
	if path == "" {
		t.Skip("METRICS_FILE not set (CI smoke check only)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := obs.ParseText(f)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("exposition is empty")
	}
	for _, series := range []string{
		"iotls_stage_runs_total",
		"iotls_probe_attempts_total",
		"iotls_probe_successes_total",
		"iotls_ingest_records_total",
		"iotls_pki_verdicts_total",
		"iotls_dataset_records_total",
		"iotls_report_tables_total",
	} {
		if got := obs.SumSeries(samples, series); got <= 0 {
			t.Errorf("%s = %v, want > 0", series, got)
		}
	}
	// Every pipeline stage ran exactly once.
	if got := obs.SumSeries(samples, "iotls_stage_runs_total"); got != float64(len(core.Stages())) {
		t.Errorf("stage_runs_total = %v, want %d", got, len(core.Stages()))
	}
}

// BenchmarkCoreRun is the PR 3 tentpole gate: end-to-end pipeline wall
// time at paper scale with observability off — the <2% no-op overhead
// comparison against the PR 2 baseline (see EXPERIMENTS.md).
func BenchmarkCoreRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), core.Config{Seed: 20231024, Scale: 1.0, MinSNIUsers: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreRunObserved is the same run with a tracer and registry
// attached, so the cost of live instrumentation is visible next to the
// no-op number.
func BenchmarkCoreRunObserved(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{
			Seed: 20231024, Scale: 1.0, MinSNIUsers: 3,
			Tracer:  obs.NewTracer("bench"),
			Metrics: obs.NewRegistry("bench"),
		}
		if _, err := core.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
