// Package repro_bench is the benchmark harness of the reproduction: one
// benchmark per table and figure of the paper. Each benchmark regenerates
// its table/figure from the shared paper-scale study state and, on the
// first iteration, prints the rows/series so `go test -bench .` doubles
// as the experiment runner (see EXPERIMENTS.md).
package repro_bench

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/labdata"
	"repro/internal/libcorpus"
	"repro/internal/lint"
	"repro/internal/localnet"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/simnet"
	"repro/internal/smarttv"
)

var (
	studyOnce sync.Once
	study     *core.Study
)

// paperStudy lazily runs the full paper-scale pipeline once.
func paperStudy(b *testing.B) *core.Study {
	b.Helper()
	studyOnce.Do(func() {
		s, err := core.Run(context.Background(), core.Config{Seed: 20231024, Scale: 1.0, MinSNIUsers: 3})
		if err != nil {
			panic(err)
		}
		study = s
	})
	return study
}

// emit prints a table once per benchmark run (not per iteration).
func emit(b *testing.B, i int, t report.Table) {
	if i == 0 && !testing.Short() {
		t.WriteText(os.Stdout)
		fmt.Println()
	}
}

func BenchmarkTableLibraryMatch(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		res := s.Client.MatchLibraries(s.Matcher)
		emit(b, i, report.LibMatch(res))
	}
}

func BenchmarkTable2DegreeDistribution(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Table2(s.Client.Table2()))
	}
}

func BenchmarkFigure1VendorGraph(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		dot := s.Figure1Dot()
		if i == 0 && !testing.Short() {
			fmt.Printf("== Figure 1: vendor-fingerprint graph == %d bytes of DOT, %d vendors, %d fingerprints\n\n",
				len(dot), s.Client.VendorGraph().NumLefts(), s.Client.VendorGraph().NumRights())
		}
	}
}

func BenchmarkFigure2DoCCDF(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Figure2(s.Client.DoCVendorAll(), s.Client.DoCDeviceAll()))
	}
}

func BenchmarkTable3TopVendorHeterogeneity(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Table3(s.Client.Table3(10)))
	}
}

func BenchmarkFigure3AmazonTypes(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		g := s.Client.TypeGraphForVendor("Amazon")
		if i == 0 && !testing.Short() {
			fmt.Printf("== Figure 3: Amazon device types == %d types, %d fingerprints, %d edges\n\n",
				g.NumLefts(), g.NumRights(), g.NumEdges())
		}
	}
}

func BenchmarkFigure4EchoClusters(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		g := s.Client.DeviceGraphForVendorType("Amazon", dataset.TypeSpeaker)
		if i == 0 && !testing.Short() {
			comps := g.ConnectedComponents()
			fmt.Printf("== Figure 4: Amazon Echo clusters == %d devices, %d fingerprints, %d components\n\n",
				g.NumLefts(), g.NumRights(), len(comps))
		}
	}
}

func BenchmarkTable4VendorJaccard(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Table4(s.Client.Table4(0.2)))
	}
}

func BenchmarkTable5ServerTiedFingerprints(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		rows := s.Client.Table5(2)
		emit(b, i, report.Table5(rows))
		if i == 0 && !testing.Short() {
			fmt.Printf("server-tied SNI fraction: %.2f%%\n\n", 100*s.Client.ServerTiedSNIFraction(s.Matcher))
		}
	}
}

func BenchmarkVulnerabilityStats(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.VulnStats(s.Client.Vulnerabilities()))
	}
}

func BenchmarkTable11SemanticsAware(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Table11(s.Client.Table11(s.Matcher)))
	}
}

func BenchmarkFigure8JaccardHistogram(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Figure8(s.Client.Figure8(s.Matcher, 10)))
	}
}

func BenchmarkTable12TLSVersions(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Table12(s.Client.Table12()))
		if i == 0 && !testing.Short() {
			devices, vendors := s.Client.SSL3Census()
			fmt.Printf("SSL 3.0 stragglers: %d devices across %d vendors\n\n", devices, len(vendors))
		}
	}
}

func BenchmarkFigure9VulnComponents(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		rows := s.Client.Figure9()
		if i == 0 && !testing.Short() {
			fmt.Printf("== Figure 9: vulnerable-component inclusion == %d vendor rows\n\n", len(rows))
		}
	}
}

func BenchmarkFigure10DoCDistribution(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	vendors := []string{"Amazon", "Google", "Samsung", "Synology", "Wyze"}
	for i := 0; i < b.N; i++ {
		total := 0
		for _, v := range vendors {
			total += len(s.Client.DeviceDoCsForVendor(v))
		}
		if i == 0 && !testing.Short() {
			fmt.Printf("== Figure 10: per-device DoC == %d device DoC values across %d sampled vendors\n\n",
				total, len(vendors))
		}
	}
}

func BenchmarkFigure11LowestVulnIndex(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Figure11(s.Client.Figure11()))
	}
}

func BenchmarkFigure12PreferredAlgorithms(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Figure12(s.Client.Figure12()))
	}
}

func BenchmarkOCSPGrease(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Census(s.Client.Census()))
	}
}

func BenchmarkTable6CertDataset(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Table6(s.Server.Table6()))
		if i == 0 && !testing.Short() {
			emit(b, i, report.Sharing(s.Server.Sharing()))
		}
	}
}

func BenchmarkFigure5IssuerMatrix(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		cells := s.Server.Figure5()
		if i == 0 && !testing.Short() {
			frac, devices := s.Server.PrivateLeafFraction()
			fmt.Printf("== Figure 5: issuer matrix == %d cells; private leaves %.2f%% affecting %d devices; exclusive-private vendors %v\n\n",
				len(cells), 100*frac, devices, s.Server.VendorsOnlyPrivate())
		}
	}
}

func BenchmarkTable7ValidationFailures(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.DomainRows("Table 7: Certificate chains with validation failure", s.Server.Table7(), false))
	}
}

func BenchmarkTable8ExpiredCerts(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.DomainRows("Table 8: Expired certificates", s.Server.Table8(), true))
	}
}

func BenchmarkTable14PrivateIssuerChains(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.DomainRows("Table 14: Certificate chains with private issuers", s.Server.Table14(), false))
		if i == 0 && !testing.Short() {
			emit(b, i, report.DomainRows("CN mismatches", s.Server.CNMismatches(), false))
		}
	}
}

func BenchmarkFigure6ValidityCT(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Figure6(s.Server.Figure6()))
	}
}

func BenchmarkTable9NetflixValidity(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Table9(s.Server.Table9()))
	}
}

func BenchmarkFigure13CTPrivateChains(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.CTStats(s.Server.CT()))
	}
}

func BenchmarkTable15PopularSLDs(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Table15(s.Server.Table15(30)))
	}
}

func BenchmarkTable16GeoConsistency(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		emit(b, i, report.Table16(s.Server.Table16()))
	}
}

func BenchmarkLabCrossCheck(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	lab := labdata.Capture(s.World, s.Dataset, 99)
	for i := 0; i < b.N; i++ {
		cc := labdata.Compare(lab, s.Server)
		if i == 0 && !testing.Short() {
			fmt.Printf("== Appendix C.4.2 == lab devices=%d vendors=%d; common SNIs=%d sameIssuer=%d diff=%d agreement=%.3f ctGrowth=%d\n\n",
				lab.Devices, lab.Vendors, cc.CommonSNIs, cc.SameIssuer, cc.DiffIssuer, cc.AgreementRate(), cc.CTGrowth)
		}
	}
}

func BenchmarkFigure7SmartTV(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	for i := 0; i < b.N; i++ {
		tv := smarttv.Run(s.World)
		rows := tv.Figure7()
		if i == 0 && !testing.Short() {
			fmt.Println("== Figure 7: leaf certificates in Amazon and Roku groups ==")
			for _, r := range rows {
				fmt.Printf("%-8s %-30s certs=%-4d validity=%d-%dd inCT=%d notInCT=%d\n",
					r.Group, r.Issuer, r.Count, r.MinDays, r.MaxDays, r.InCT, r.NotInCT)
			}
			fmt.Println()
		}
	}
}

func BenchmarkTable17SmartTVChains(b *testing.B) {
	b.ReportAllocs()
	s := paperStudy(b)
	tv := smarttv.Run(s.World)
	for i := 0; i < b.N; i++ {
		rows := tv.Table17()
		if i == 0 && !testing.Short() {
			fmt.Println("== Table 17: invalid/misconfigured chains by smart-TV group ==")
			for _, r := range rows {
				fmt.Printf("%-8s %-24s %-30s fqdns=%d\n", r.Group, r.Status, r.SLD, r.FQDNs)
			}
			fmt.Println()
		}
	}
}

func BenchmarkLocalNetworkPKI(b *testing.B) {
	b.ReportAllocs()
	lab, err := localnet.NewLab(paperStudy(b).World.ProbeTime)
	if err != nil {
		b.Fatal(err)
	}
	defer lab.Close()
	for i := 0; i < b.N; i++ {
		obs, err := lab.ObserveAll()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && !testing.Short() {
			fmt.Println("== Section 6.2: PKI on the local network ==")
			for _, o := range obs {
				fmt.Printf("%-18s chain=%d leafCN=%q cnIsIP=%v validity=%dd rootInStores=%v inCT=%v\n",
					o.Device, o.ChainLen, o.LeafCN, o.CNIsIP, o.ValidityDays, o.RootInStores, o.InCT)
			}
			fmt.Println()
		}
	}
}

// BenchmarkAblationRealTLSVsFastProbe quantifies the cost of probing with
// genuine crypto/tls handshakes versus the direct chain path — the design
// choice DESIGN.md calls out for the collection pipeline.
func BenchmarkAblationRealTLSVsFastProbe(b *testing.B) {
	b.ReportAllocs()
	ds := dataset.Generate(dataset.Config{Seed: 5, Scale: 0.1})
	snis := ds.SNIsByMinUsers(2)
	world := simnet.Build(simnet.Config{Seed: 6, SNIs: snis})
	var sni string
	for s, srv := range world.Servers {
		if !srv.Unreachable {
			sni = s
			break
		}
	}
	b.Run("real-tls", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := world.Probe(sni, simnet.VantageNewYork); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := world.ProbeFast(sni, simnet.VantageNewYork); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMatcherIndex quantifies the semantic-index optimization
// of the Appendix B.2 matcher: indexed lookup vs a linear scan over the
// full 6,891-entry corpus.
func BenchmarkAblationMatcherIndex(b *testing.B) {
	b.ReportAllocs()
	entries := libcorpus.Build()
	matcher := libcorpus.NewMatcher()
	suites := []uint16{0xC030, 0xC02C, 0xC028, 0xC024, 0xC014, 0xC00A, 0x009D, 0x0035, 0x003D}
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matcher.MatchSemantics(suites)
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// The pre-optimization algorithm: categorize against every
			// corpus entry and keep the best category.
			best := fingerprint.Customization
			for _, e := range entries {
				if cat := fingerprint.CategorizeAgainst(suites, e.Print.CipherSuites); cat > best {
					best = cat
				}
			}
		}
	})
}

// BenchmarkResilientProbeEngine measures the resilient engine sweeping a
// faulty world: 20% seeded transient failures, retries with full-jitter
// backoff on a virtual clock (no wall sleeps), deterministic ordering.
// The first iteration prints the recovery summary.
func BenchmarkResilientProbeEngine(b *testing.B) {
	b.ReportAllocs()
	ds := dataset.Generate(dataset.Config{Seed: 5, Scale: 0.1})
	snis := ds.SNIsByMinUsers(2)
	world := simnet.Build(simnet.Config{Seed: 6, SNIs: snis})
	clock := probe.NewFakeClock(world.ProbeTime)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// SetFaults resets the per-attempt counters, so every iteration
		// replays the identical fault schedule.
		world.SetFaults(simnet.Faults{Seed: 7, TransientRate: 0.2, Sleep: clock.Sleep})
		eng := probe.New(probe.WorldProber{World: world}, probe.Options{Seed: 7, Clock: clock})
		_, stats := eng.Run(context.Background(), snis, simnet.Vantages())
		if i == 0 && !testing.Short() {
			fmt.Printf("== Probe resilience == jobs=%d attempts=%d retries=%d ok=%d recovered=%d transient=%d terminal=%d breaker-opens=%d\n\n",
				stats.Jobs, stats.Attempts, stats.Retries, stats.Successes,
				stats.RecoveredAfterRetry, stats.TransientFailures, stats.TerminalFailures, stats.BreakerOpens)
		}
	}
}

// BenchmarkEndToEndStudy measures the full pipeline at reduced scale.
func BenchmarkEndToEndStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), core.Config{Seed: int64(i) + 1, Scale: 0.1, MinSNIUsers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIotlintSelf measures the static-analysis suite linting the
// repository that defines it: all ten analyzers (six AST-local, four
// flow-sensitive on internal/lint/cfg) over every package, type-checked
// from source. The process-wide shared loader makes every iteration
// after the first a pure cache hit, so -benchtime 1x measures the cold
// cost and longer runs converge on the analysis-only cost.
func BenchmarkIotlintSelf(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		diags, err := lint.CheckDirs(".", []string{"./..."}, lint.Suite())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("self-lint found %d unsuppressed diagnostic(s): %v", len(diags), diags[0])
		}
	}
}
