// ACME what-if: the paper's recommendation (Section 7), quantified.
//
// The example measures the vendor-signed certificate population of the
// simulated world (the 19.8–100 year "set it and forget it" certificates
// of Section 5.4), then replays the same servers under ACME-style
// automated management with 90-day certificates — comparing renewals,
// expired-service days, CT auditability, and mean key age. The ACME
// directory actually runs the RFC 8555 order→challenge→finalize flow and
// logs every issued certificate in the CT log.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/acme"
	"repro/internal/analysis"
	"repro/internal/ctlog"
	"repro/internal/dataset"
	"repro/internal/pki"
	"repro/internal/simnet"
)

func main() {
	scale := flag.Float64("scale", 0.3, "population scale")
	horizon := flag.Int("horizon", 10, "simulation horizon in years")
	flag.Parse()

	// Measure today's vendor-signed population.
	ds := dataset.Generate(dataset.Config{Seed: 31, Scale: *scale})
	snis := ds.SNIsByMinUsers(2)
	world := simnet.Build(simnet.Config{Seed: 32, SNIs: snis})
	srv := analysis.NewServer(world, ds, snis, false)

	var vendorValidities []int
	for _, r := range srv.Records {
		if !r.IssuerPublic {
			vendorValidities = append(vendorValidities, r.ValidityDays)
		}
	}
	vendorValidities = acme.ValiditiesFromWorld(vendorValidities)
	if len(vendorValidities) == 0 {
		log.Fatal("no vendor-signed long-lived certificates in world")
	}
	fmt.Printf("vendor-signed long-lived certificates: %d (validity %d–%d days)\n\n",
		len(vendorValidities), vendorValidities[0], vendorValidities[len(vendorValidities)-1])

	// Stand up the ACME directory over a public trust CA + CT log.
	epoch := world.ProbeTime
	ca := pki.NewCA("Let's Encrypt", pki.PublicTrustCA, epoch.AddDate(-5, 0, 0), 20, 1)
	ctLog := ctlog.New("acme-ct", func() time.Time { return epoch })
	dir := acme.NewDirectory(ca, ctLog, 90, func() time.Time { return epoch })

	res := acme.Simulate(dir, vendorValidities, *horizon)

	fmt.Printf("=== %d-year what-if over %d vendor-managed servers ===\n\n", res.HorizonYears, res.Servers)
	fmt.Printf("%-32s %15s %15s\n", "", "status quo", "ACME-managed")
	fmt.Printf("%-32s %15d %15d\n", "certificate issuances", res.VendorRenewals+res.Servers, res.ACMERenewals)
	fmt.Printf("%-32s %15d %15d\n", "server-days serving expired", res.VendorExpiredDays, res.ACMEExpiredDays)
	fmt.Printf("%-32s %14.0f%% %14.0f%%\n", "CT coverage (auditable)", 100*res.VendorCTCoverage, 100*res.ACMECTCoverage)
	fmt.Printf("%-32s %15d %15d\n", "mean key age (days)", res.VendorMeanKeyAgeDays, res.ACMEMeanKeyAgeDays)
	fmt.Printf("\nACME directory issued %d live sample certificates through the full\norder→challenge→finalize flow; CT log size is now %d.\n",
		dir.Issued(), ctLog.Size())
}
