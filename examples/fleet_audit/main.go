// Fleet audit: a device vendor auditing its own fleet's TLS hygiene.
//
// The example takes the perspective of one vendor (default: Samsung),
// parses every ClientHello its devices emitted, and reports what a
// security team would act on: vulnerable ciphersuites and which component
// families cause them, devices still proposing SSL 3.0, most-preferred
// algorithms, vulnerable suites ranked first, and fingerprints unique to
// single devices (the update-drift signal).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/analysis"
	"repro/internal/ciphersuite"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/tlswire"
)

func main() {
	vendor := flag.String("vendor", "Samsung", "vendor to audit")
	scale := flag.Float64("scale", 0.5, "population scale")
	flag.Parse()

	ds := dataset.Generate(dataset.Config{Seed: 7, Scale: *scale})
	client, err := analysis.NewClient(ds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== TLS hygiene audit: %s ===\n\n", *vendor)

	// Fleet inventory.
	devices := 0
	for _, vendorName := range client.DeviceVendor {
		if vendorName == *vendor {
			devices++
		}
	}
	fmt.Printf("fleet size: %d devices\n", devices)

	// Fingerprint inventory with security levels.
	type fpView struct {
		info  *analysis.FingerprintInfo
		level ciphersuite.SecurityLevel
	}
	var fleet []fpView
	for _, info := range client.Prints {
		if info.Vendors.Has(*vendor) {
			fleet = append(fleet, fpView{info, info.Print.Level()})
		}
	}
	sort.Slice(fleet, func(i, j int) bool { return fleet[i].info.Key < fleet[j].info.Key })
	byLevel := map[ciphersuite.SecurityLevel]int{}
	singleDevice := 0
	for _, f := range fleet {
		byLevel[f.level]++
		n := 0
		for _, dev := range f.info.Devices {
			if client.DeviceVendor[dev] == *vendor {
				n++
			}
		}
		if n == 1 {
			singleDevice++
		}
	}
	fmt.Printf("fingerprints in fleet: %d (optimal %d / suboptimal %d / vulnerable %d)\n",
		len(fleet), byLevel[ciphersuite.Optimal], byLevel[ciphersuite.Suboptimal], byLevel[ciphersuite.Vulnerable])
	fmt.Printf("fingerprints on a single device (update drift): %d\n\n", singleDevice)

	// What makes them vulnerable?
	classCounts := map[ciphersuite.VulnClass]int{}
	for _, f := range fleet {
		for _, cl := range f.info.Print.VulnClasses() {
			classCounts[cl]++
		}
	}
	fmt.Println("vulnerable components across fleet fingerprints:")
	classes := make([]ciphersuite.VulnClass, 0, len(classCounts))
	for cl := range classCounts {
		classes = append(classes, cl)
	}
	sort.Slice(classes, func(i, j int) bool { return classCounts[classes[i]] > classCounts[classes[j]] })
	for _, cl := range classes {
		fmt.Printf("  %-12s %d fingerprints\n", cl, classCounts[cl])
	}

	// SSL 3.0 stragglers.
	_, ssl3Vendors := client.SSL3Census()
	if n := ssl3Vendors[*vendor]; n > 0 {
		fmt.Printf("\nWARNING: %d device(s) still propose SSL 3.0\n", n)
	}

	// Lowest vulnerable index (is a vulnerable suite the most preferred?).
	for _, row := range client.Figure11() {
		if row.Vendor != *vendor {
			continue
		}
		fmt.Printf("\nproposal tuples: %d; with a vulnerable suite: %d; vulnerable suite ranked FIRST: %d\n",
			row.Tuples, len(row.Indices), row.FirstPreferred)
	}

	// Most-preferred components.
	for _, row := range client.Figure12() {
		if row.Vendor != *vendor {
			continue
		}
		fmt.Printf("most-preferred components: kex=%s cipher=%s mac=%s\n",
			top(row.Kex), top(row.Cipher), top(row.MAC))
	}

	// Exact library builds still in the fleet (patch targets).
	fmt.Println("\nfingerprint versions proposing TLS < 1.2:")
	for _, f := range fleet {
		if f.info.Print.Version < tlswire.VersionTLS12 {
			fmt.Printf("  %s on %d device(s)\n", f.info.Print.Version, len(f.info.Devices))
		}
	}

	// GREASE adoption signals modern stacks.
	grease := 0
	for _, f := range fleet {
		if f.info.Print.HasGREASESuites() {
			grease++
		}
	}
	fmt.Printf("\nGREASE-emitting fingerprints (modern stacks): %d/%d\n", grease, len(fleet))
	_ = fingerprint.Fingerprint{} // the API consumed above
}

func top(m map[string]int) string {
	best, bestN := "-", 0
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if m[k] > bestN {
			best, bestN = k, m[k]
		}
	}
	return best
}
