// Certificate monitor: continuous monitoring of the servers an IoT fleet
// depends on — the auditing capability the paper says the ecosystem lacks
// (Section 5.4 / Discussion).
//
// The monitor probes every server, then alarms on: certificates expiring
// within the warning window (or already expired), vendor-signed leaves
// absent from CT (unauditable), broken chains, CN mismatches, and
// certificates shared across many servers (blast-radius risk).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/pki"
	"repro/internal/simnet"
)

type alarm struct {
	severity string
	sni      string
	msg      string
}

func main() {
	scale := flag.Float64("scale", 0.3, "population scale")
	warnDays := flag.Int("warn-days", 90, "expiry warning window in days")
	flag.Parse()

	ds := dataset.Generate(dataset.Config{Seed: 11, Scale: *scale})
	snis := ds.SNIsByMinUsers(2)
	world := simnet.Build(simnet.Config{Seed: 12, SNIs: snis})
	srv := analysis.NewServer(world, ds, snis, false)

	now := world.ProbeTime
	var alarms []alarm
	add := func(severity, sni, format string, args ...any) {
		alarms = append(alarms, alarm{severity, sni, fmt.Sprintf(format, args...)})
	}

	// Per-server checks.
	for _, r := range srv.Records {
		daysLeft := int(r.Leaf.NotAfter.Sub(now).Hours() / 24)
		switch {
		case daysLeft < 0:
			add("CRIT", r.SNI, "certificate expired %d days ago (issuer %s), still visited by %d devices",
				-daysLeft, r.IssuerOrg, len(r.Devices))
		case daysLeft < *warnDays:
			add("WARN", r.SNI, "certificate expires in %d days (issuer %s)", daysLeft, r.IssuerOrg)
		}
		switch r.Status {
		case pki.StatusCNMismatch:
			add("CRIT", r.SNI, "certificate names neither CN nor SAN of the host")
		case pki.StatusSelfSigned:
			add("WARN", r.SNI, "self-signed certificate (issuer %s)", r.IssuerOrg)
		case pki.StatusIncompleteChain:
			add("WARN", r.SNI, "incomplete chain: server omits intermediates")
		}
		if !r.IssuerPublic && !r.InCT {
			if r.ValidityDays > 3650 {
				add("WARN", r.SNI, "vendor-signed, %d-year validity, NOT in CT: unauditable and likely never rotated",
					r.ValidityDays/365)
			}
		}
	}

	// Blast-radius: one certificate across many servers.
	byLeaf := map[string][]string{}
	for _, r := range srv.Records {
		key := fmt.Sprintf("%x", r.LeafFP[:8])
		byLeaf[key] = append(byLeaf[key], r.SNI)
	}
	for key, hosts := range byLeaf {
		if len(hosts) >= 8 {
			sort.Strings(hosts)
			add("INFO", hosts[0], "certificate %s shared across %d servers — single compromise affects all",
				key, len(hosts))
		}
	}

	// Report, most severe first.
	rank := map[string]int{"CRIT": 0, "WARN": 1, "INFO": 2}
	sort.Slice(alarms, func(i, j int) bool {
		if rank[alarms[i].severity] != rank[alarms[j].severity] {
			return rank[alarms[i].severity] < rank[alarms[j].severity]
		}
		return alarms[i].sni < alarms[j].sni
	})
	fmt.Printf("=== IoT certificate monitor — %s, %d servers, %d alarms ===\n\n",
		now.Format(time.DateOnly), len(srv.Records), len(alarms))
	counts := map[string]int{}
	for _, a := range alarms {
		counts[a.severity]++
	}
	fmt.Printf("CRIT=%d WARN=%d INFO=%d\n\n", counts["CRIT"], counts["WARN"], counts["INFO"])
	limit := 40
	for i, a := range alarms {
		if i >= limit {
			fmt.Printf("... %d more\n", len(alarms)-limit)
			break
		}
		fmt.Printf("[%s] %-40s %s\n", a.severity, a.sni, a.msg)
	}
	if counts["CRIT"] > 0 {
		log.Printf("%d critical findings", counts["CRIT"])
	}
}
