// Supply chain: uncover shared TLS stacks across vendors — the Section
// 4.4 analysis as a standalone tool. Server-tied fingerprints reveal
// which vendors embed the same SDKs (a software-bill-of-materials signal
// from network traffic alone), and vendor-pair Jaccard similarity reveals
// shared firmware suppliers and white-label relationships.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/libcorpus"
)

func main() {
	scale := flag.Float64("scale", 0.6, "population scale")
	threshold := flag.Float64("jaccard", 0.2, "vendor-pair similarity threshold")
	flag.Parse()

	ds := dataset.Generate(dataset.Config{Seed: 3, Scale: *scale})
	client, err := analysis.NewClient(ds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Supply-chain signals from TLS fingerprints ===")

	// 1. Company/white-label relationships: near-identical fingerprint
	//    sets between brands.
	fmt.Printf("\n-- vendor pairs with fingerprint-set Jaccard >= %.2f --\n", *threshold)
	for _, p := range client.Table4(*threshold) {
		relation := "shared supplier"
		switch {
		case p.Similarity >= 0.95:
			relation = "same firmware (white-label / same company)"
		case p.Similarity >= 0.5:
			relation = "co-developed platform"
		}
		fmt.Printf("%.2f  {%s, %s}  -> %s\n", p.Similarity, p.A, p.B, relation)
	}

	// 2. SDK detection: servers tied to one fingerprint across vendors.
	fmt.Println("\n-- shared SDK stacks (server-tied fingerprints) --")
	rows := client.Table5(2)
	for _, r := range rows {
		vuln := ""
		if len(r.VulnLabels) > 0 {
			vuln = "  [VULNERABLE: " + strings.Join(r.VulnLabels, ",") + "]"
		}
		fmt.Printf("%-22s fqdns=%-3d devices=%-4d vendors={%s}%s\n",
			r.SLD, r.FQDNs, r.Devices, strings.Join(r.Vendors, ","), vuln)
	}

	// 3. Downstream exposure: devices affected by each vulnerable shared
	//    stack (the "118 Roku devices affected by RC/3DES" finding).
	fmt.Println("\n-- downstream exposure of vulnerable shared stacks --")
	type exposure struct {
		sld     string
		devices int
		vendors []string
		labels  []string
	}
	var exposures []exposure
	for _, r := range rows {
		if len(r.VulnLabels) == 0 {
			continue
		}
		exposures = append(exposures, exposure{r.SLD, r.Devices, r.Vendors, r.VulnLabels})
	}
	sort.Slice(exposures, func(i, j int) bool { return exposures[i].devices > exposures[j].devices })
	total := 0
	for _, e := range exposures {
		total += e.devices
		fmt.Printf("%-22s %4d devices of %d vendor(s) exposed to %s\n",
			e.sld, e.devices, len(e.vendors), strings.Join(e.labels, ","))
	}
	fmt.Printf("total device-exposures through shared vulnerable stacks: %d\n", total)

	// 4. How much of the ecosystem is shared vs custom?
	matcher := libcorpus.NewMatcher()
	frac := client.ServerTiedSNIFraction(matcher)
	deg := client.Table2()
	fmt.Printf("\nserver-tied SNI fraction (excluding known-library stacks): %.2f%%\n", 100*frac)
	fmt.Printf("fingerprints shared by 2+ vendors: %.2f%%\n", 100*(1-deg.Deg1))
	_ = analysis.Table5Row{}
}
