// Quickstart: run the whole study on a small population and print the
// headline numbers — the 30-line tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	// A tracer is optional — leave it nil and the pipeline runs with zero
	// observability overhead. With one attached, every stage gets a span.
	tracer := obs.NewTracer("quickstart")
	study, err := core.Run(context.Background(),
		core.Config{Seed: 42, Scale: 0.2, MinSNIUsers: 2, Tracer: tracer})
	if err != nil {
		log.Fatal(err)
	}
	defer tracer.WriteTree(os.Stderr)

	// Client side (Section 4): fingerprints and customization.
	match := study.Client.MatchLibraries(study.Matcher)
	deg := study.Client.Table2()
	fmt.Printf("devices: %d across %d users\n", len(study.Dataset.Devices), study.Dataset.Users())
	fmt.Printf("unique TLS fingerprints: %d\n", match.TotalFingerprints)
	fmt.Printf("matched to known libraries: %d (%.2f%%)\n", match.MatchedFingerprints, 100*match.MatchRate())
	fmt.Printf("fingerprints used by a single vendor: %.1f%%\n", 100*deg.Deg1)

	// Server side (Section 5): certificates.
	t6 := study.Server.Table6()
	frac, devices := study.Server.PrivateLeafFraction()
	fmt.Printf("servers probed: %d, distinct leaf certificates: %d\n", t6.Servers, t6.LeafCerts)
	fmt.Printf("vendor-signed (private CA) leaves: %.1f%%, affecting %d devices\n", 100*frac, devices)
	fmt.Printf("vendors whose servers are exclusively vendor-signed: %v\n", study.Server.VendorsOnlyPrivate())
}
