package repro_bench

// Golden-report regression tests: the full text report and the CSV
// rendering of every table at seed 1, scale 1 are pinned byte-for-byte
// under testdata/golden/. Any intentional change to a table builder or
// renderer shows up here as a readable line diff; regenerate the
// snapshots with:
//
//	UPDATE_GOLDEN=1 go test -run TestGoldenReport .
//
// and review the snapshot diff like any other code change. The CSV
// snapshot uses the same framing cmd/iotls -format csv emits (a
// "# <title>" comment line before each table, blank line after), so it
// also pins the CLI's output contract.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

func goldenStudy(t *testing.T) *core.Study {
	t.Helper()
	s, err := core.Run(context.Background(), core.Config{Seed: 1, Scale: 1.0, MinSNIUsers: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func goldenCheck(t *testing.T, name string, got []byte) {
	t.Helper()
	g := &scenario.GoldenStore{
		Dir:    filepath.Join("testdata", "golden"),
		Update: os.Getenv("UPDATE_GOLDEN") != "",
	}
	if err := g.Check(name, got); err != nil {
		t.Error(err)
	}
}

func TestGoldenReportText(t *testing.T) {
	var buf bytes.Buffer
	goldenStudy(t).WriteReport(&buf)
	goldenCheck(t, "report_seed1_scale1.txt", buf.Bytes())
}

func TestGoldenReportCSV(t *testing.T) {
	s := goldenStudy(t)
	var buf bytes.Buffer
	for _, tb := range append(s.ClientTables(), s.ServerTables()...) {
		fmt.Fprintf(&buf, "# %s\n", tb.Title)
		tb.WriteCSV(&buf)
		fmt.Fprintln(&buf)
	}
	goldenCheck(t, "report_seed1_scale1.csv", buf.Bytes())
}
