package repro_bench

// Golden-report regression tests: the full text report and the CSV
// rendering of every table at seed 1, scale 1 are pinned byte-for-byte
// under testdata/golden/. Any intentional change to a table builder or
// renderer shows up here as a readable line diff; regenerate the
// snapshots with:
//
//	UPDATE_GOLDEN=1 go test -run TestGoldenReport .
//
// and review the snapshot diff like any other code change. The CSV
// snapshot uses the same framing cmd/iotls -format csv emits (a
// "# <title>" comment line before each table, blank line after), so it
// also pins the CLI's output contract.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

func goldenStudy(t *testing.T) *core.Study {
	t.Helper()
	s, err := core.Run(context.Background(), core.Config{Seed: 1, Scale: 1.0, MinSNIUsers: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// goldenAsOf is the late-timeline epoch pinned alongside the paper-era
// snapshot: five years past the capture window, deep enough into the
// drift schedule that most non-straggler devices have upgraded.
var goldenAsOf = time.Date(2025, 8, 1, 0, 0, 0, 0, time.UTC)

func goldenTimelineStudy(t *testing.T) *core.Study {
	t.Helper()
	s, err := core.Run(context.Background(), core.Config{Seed: 1, Scale: 1.0, MinSNIUsers: 3, AsOf: goldenAsOf})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func goldenCheck(t *testing.T, name string, got []byte) {
	t.Helper()
	g := &scenario.GoldenStore{
		Dir:    filepath.Join("testdata", "golden"),
		Update: os.Getenv("UPDATE_GOLDEN") != "",
	}
	if err := g.Check(name, got); err != nil {
		t.Error(err)
	}
}

func TestGoldenReportText(t *testing.T) {
	var buf bytes.Buffer
	goldenStudy(t).WriteReport(&buf)
	goldenCheck(t, "report_seed1_scale1.txt", buf.Bytes())
}

func TestGoldenReportCSV(t *testing.T) {
	s := goldenStudy(t)
	var buf bytes.Buffer
	for _, tb := range append(s.ClientTables(), s.ServerTables()...) {
		fmt.Fprintf(&buf, "# %s\n", tb.Title)
		tb.WriteCSV(&buf)
		fmt.Fprintln(&buf)
	}
	goldenCheck(t, "report_seed1_scale1.csv", buf.Bytes())
}

// TestGoldenReportTimelineText pins the late-epoch report: the same
// population replayed at goldenAsOf, with the firmware-drift records,
// the modern-corpus matcher rows, and the adoption-timeline tables.
func TestGoldenReportTimelineText(t *testing.T) {
	var buf bytes.Buffer
	goldenTimelineStudy(t).WriteReport(&buf)
	goldenCheck(t, "report_seed1_scale1_asof2025-08-01.txt", buf.Bytes())
}

// TestTimelineAdoptionIncreases locks the headline longitudinal fact:
// the paper-era population proposes no TLS 1.3 at all, and the late
// epoch's 1.3 fraction is strictly higher.
func TestTimelineAdoptionIncreases(t *testing.T) {
	s := goldenTimelineStudy(t)
	if f := s.Dataset.TLS13Fraction(time.Date(2020, 8, 1, 0, 0, 0, 0, time.UTC)); f != 0 {
		t.Fatalf("paper-era 1.3 fraction = %v, want 0", f)
	}
	late := s.Dataset.TLS13Fraction(goldenAsOf)
	if late <= 0 {
		t.Fatalf("late-epoch 1.3 fraction = %v, want > 0", late)
	}
	// The generated records agree with the schedule: some hellos now
	// negotiate 1.3 on the wire.
	tls13 := 0
	for i := 0; i < s.Dataset.Records.Len(); i++ {
		ch, err := s.Dataset.Records.At(i).Hello()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		for _, v := range ch.SupportedVersions() {
			if v == 0x0304 {
				tls13++
				break
			}
		}
	}
	if tls13 == 0 {
		t.Fatal("no generated record offers TLS 1.3 at the late epoch")
	}
}
