package repro_bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/libcorpus"
	"repro/internal/lint"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/tlswire"
)

// benchPoint is one micro-benchmark measurement.
type benchPoint struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Iterations  int    `json:"iterations"`
}

// e2ePoint is one end-to-end pipeline wall-time measurement (best of
// three runs, to shave scheduler noise).
type e2ePoint struct {
	Name    string  `json:"name"`
	Scale   float64 `json:"scale"`
	Workers int     `json:"workers"`
	WallMs  float64 `json:"wall_ms"`
}

// benchReport is the BENCH_PR2.json schema: the benchmark trajectory the
// CI smoke job archives per commit.
type benchReport struct {
	GeneratedAt     string       `json:"generated_at"`
	GoVersion       string       `json:"go_version"`
	GoMaxProcs      int          `json:"gomaxprocs"`
	Micro           []benchPoint `json:"micro"`
	EndToEnd        []e2ePoint   `json:"end_to_end"`
	SpeedupWorkers  float64      `json:"speedup_scale1_workers_vs_1"`
	SeedBaselineRef string       `json:"seed_baseline_ref"`
}

func microPoint(name string, fn func(b *testing.B)) benchPoint {
	r := testing.Benchmark(fn)
	return benchPoint{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

func e2eWall(name string, scale float64, workers, runs int) e2ePoint {
	best := time.Duration(0)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := core.Run(context.Background(), core.Config{Seed: 20231024, Scale: scale, MinSNIUsers: 3, Workers: workers}); err != nil {
			panic(err)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return e2ePoint{Name: name, Scale: scale, Workers: workers, WallMs: float64(best.Microseconds()) / 1000}
}

// TestBenchTrajectory emits the machine-readable benchmark trajectory.
// It is opt-in: set BENCH_JSON to an output path (or "1" for the default
// BENCH_PR2.json) — unset, the test skips so `go test ./...` stays fast.
func TestBenchTrajectory(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<path> (or 1) to produce the benchmark trajectory")
	}
	if out == "1" {
		out = "BENCH_PR2.json"
	}

	ds := dataset.Generate(dataset.DefaultConfig())
	matcher := libcorpus.NewMatcher()
	entry := matcher.Entries()[0]
	suites := []uint16{0xC030, 0xC02C, 0xC028, 0xC024, 0xC014, 0xC00A, 0x009D, 0x0035, 0x003D}
	maxW := runtime.GOMAXPROCS(0)

	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  maxW,
		SeedBaselineRef: "PR1 HEAD (9308c72) single-threaded pipeline: core.Run ~480-545ms " +
			"and WriteReport ~171ms at scale 1 on the CI runner class; see EXPERIMENTS.md §Performance",
	}

	rep.Micro = append(rep.Micro,
		microPoint("fingerprint.Key", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				entry.Print.Key()
			}
		}),
		microPoint("fingerprint.JaccardUint16", func(b *testing.B) {
			b.ReportAllocs()
			a := []uint16{0xC030, 0xC02C, 0xC028, 0xC024, 0xC014, 0xC00A, 0x009D, 0x0035}
			c := []uint16{0x0035, 0x003D, 0xC030, 0x009C}
			for i := 0; i < b.N; i++ {
				if fingerprint.JaccardUint16(a, c) < 0 {
					b.Fatal("impossible")
				}
			}
		}),
		microPoint("matcher.MatchExact", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				matcher.MatchExact(entry.Print)
			}
		}),
		microPoint("matcher.MatchSemantics/memoized", func(b *testing.B) {
			matcher.MatchSemantics(suites)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matcher.MatchSemantics(suites)
			}
		}),
		microPoint("analysis.NewClientWorkers/1", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := analysis.NewClientWorkers(ds, 1); err != nil {
					b.Fatal(err)
				}
			}
		}),
		microPoint("analysis.NewClientWorkers/max", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := analysis.NewClientWorkers(ds, maxW); err != nil {
					b.Fatal(err)
				}
			}
		}),
		microPoint("dataset.Generate", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dataset.Generate(dataset.DefaultConfig())
			}
		}),
	)

	// Table-level benchmarks over the shared paper-scale study: the same
	// builders `go test -bench .` exercises, recorded as JSON.
	s, err := core.Run(context.Background(), core.Config{Seed: 20231024, Scale: 1.0, MinSNIUsers: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep.Micro = append(rep.Micro,
		microPoint("table.Table2Degree", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.Table2()
			}
		}),
		microPoint("table.Table4VendorJaccard", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.Table4(0.2)
			}
		}),
		microPoint("table.Table11Semantics", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.Table11(s.Matcher)
			}
		}),
		microPoint("table.Figure8JaccardHistogram", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.Figure8(s.Matcher, 10)
			}
		}),
		microPoint("table.ExtensionFrequencies", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.ExtensionFrequencies(s.Matcher)
			}
		}),
		microPoint("table.Table9NetflixValidity", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Server.Table9()
			}
		}),
		microPoint("report.WriteReport", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.WriteReport(io.Discard)
			}
		}),
	)

	runs := 3
	if testing.Short() {
		runs = 1
	}
	rep.EndToEnd = append(rep.EndToEnd,
		e2eWall("core.Run/scale=1/workers=1", 1, 1, runs),
		e2eWall("core.Run/scale=1/workers=max", 1, maxW, runs),
		e2eWall("core.Run/scale=4/workers=max", 4, maxW, 1),
	)
	if w1, wm := rep.EndToEnd[0].WallMs, rep.EndToEnd[1].WallMs; wm > 0 {
		rep.SpeedupWorkers = w1 / wm
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d micro points, %d end-to-end points", out, len(rep.Micro), len(rep.EndToEnd))

	// BENCH_PR5.json extends the trajectory with the verification
	// harness itself: the cost of one scenario cell (two pipeline runs
	// plus every invariant check) and of the crypto/tls wire oracle.
	// Same schema, written alongside the PR2 file so CI archives both.
	rep5 := rep
	rep5.SeedBaselineRef = "PR2 trajectory (BENCH_PR2.json) in the same artifact; scenario " +
		"points are new in PR5 and have no earlier baseline"
	oracleRec := mustOracleRecord(t, ds)
	rep5.Micro = append(append([]benchPoint(nil), rep.Micro...),
		microPoint("tlswire.CompareWithCryptoTLS", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if diffs := tlswire.CompareWithCryptoTLS(oracleRec); len(diffs) > 0 {
					b.Fatalf("oracle disagreement: %v", diffs)
				}
			}
		}),
	)
	rep5.EndToEnd = append(append([]e2ePoint(nil), rep.EndToEnd...),
		scenarioWall("scenario.RunCase/scale=0.05/fault=0.2", 0.05, runs),
	)
	data5, err := json.MarshalIndent(rep5, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data5 = append(data5, '\n')
	out5 := filepath.Join(filepath.Dir(out), "BENCH_PR5.json")
	if err := os.WriteFile(out5, data5, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d micro points, %d end-to-end points", out5, len(rep5.Micro), len(rep5.EndToEnd))

	// BENCH_PR6.json extends the trajectory with the resident service:
	// the delta-ingest micro costs (parse, merge, snapshot clone) and the
	// drained end-to-end ingest throughput of the daemon core.
	rep6 := rep
	rep6.SeedBaselineRef = "PR2/PR5 trajectories in the same artifact; service points are " +
		"new in PR6 and have no earlier baseline"
	deltaRecs := ds.Records.Rows()[:100]
	sharedDelta, err := analysis.NewDelta(deltaRecs)
	if err != nil {
		t.Fatal(err)
	}
	rep6.Micro = append(append([]benchPoint(nil), rep.Micro...),
		microPoint("analysis.NewDelta/100rec", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := analysis.NewDelta(deltaRecs); err != nil {
					b.Fatal(err)
				}
			}
		}),
		microPoint("analysis.MergeDelta/100rec", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := analysis.NewClientEmpty()
				c.MergeDelta(sharedDelta)
			}
		}),
		microPoint("analysis.Client.Clone/paper-scale", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.Clone()
			}
		}),
	)
	rep6.EndToEnd = append(append([]e2ePoint(nil), rep.EndToEnd...),
		serviceWall(fmt.Sprintf("service.ingest/batches=200x25/workers=%d", maxW), ds, maxW, runs),
	)
	data6, err := json.MarshalIndent(rep6, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data6 = append(data6, '\n')
	out6 := filepath.Join(filepath.Dir(out), "BENCH_PR6.json")
	if err := os.WriteFile(out6, data6, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d micro points, %d end-to-end points", out6, len(rep6.Micro), len(rep6.EndToEnd))

	// BENCH_PR7.json extends the trajectory with the scale sweep behind
	// the interned columnar layout: wall time, allocations, and peak RSS
	// for generation + ingestion + the full pipeline at scales 1, 10, and
	// 100 (scale 1000 behind BENCH_SCALE_1000=1), plus the allocation
	// reduction of the generate and ingest hot loops against the PR2
	// baselines recorded in BENCH_PR2.json.
	rep7 := benchReport7{benchReport: rep}
	rep7.SeedBaselineRef = "PR2 trajectory (BENCH_PR2.json) in the same artifact: " +
		"dataset.Generate ~340,886 allocs/op and NewClientWorkers/1 ~37,608 allocs/op at scale 1"
	scales := []float64{1, 10, 100}
	if os.Getenv("BENCH_SCALE_1000") == "1" {
		scales = append(scales, 1000)
	}
	for _, sc := range scales {
		p := sweepPoint(sc, maxW)
		rep7.ScaleSweep = append(rep7.ScaleSweep, p)
		t.Logf("scale %g: %d records, generate %.0fms/%d allocs, ingest %.0fms/%d allocs, core.Run %.0fms, peak RSS %dKB",
			p.Scale, p.Records, p.GenerateWallMs, p.GenerateAllocs, p.IngestWallMs, p.IngestAllocs, p.RunWallMs, p.PeakRSSKB)
	}
	if base, err := readBaseline("BENCH_PR2.json"); err == nil {
		rep7.GenerateAllocReductionVsPR2 = allocRatio(base, rep.Micro, "dataset.Generate")
		rep7.IngestAllocReductionVsPR2 = allocRatio(base, rep.Micro, "analysis.NewClientWorkers/1")
	} else {
		t.Logf("no PR2 baseline available (%v); reduction ratios omitted", err)
	}
	data7, err := json.MarshalIndent(rep7, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data7 = append(data7, '\n')
	out7 := filepath.Join(filepath.Dir(out), "BENCH_PR7.json")
	if err := os.WriteFile(out7, data7, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d scale-sweep points, generate alloc reduction %.1fx, ingest %.1fx",
		out7, len(rep7.ScaleSweep), rep7.GenerateAllocReductionVsPR2, rep7.IngestAllocReductionVsPR2)

	// BENCH_PR9.json extends the trajectory with the static-analysis
	// suite analyzing its own repository: cold (fresh loader, every
	// package type-checked from source) and warm (shared-loader cache
	// hit) wall times for all ten analyzers over ./.... Measured
	// single-shot rather than through testing.Benchmark — a full-repo
	// type-check is far too slow for adaptive iteration.
	rep9 := benchReport9{benchReport: rep}
	rep9.SeedBaselineRef = "PR2 trajectory (BENCH_PR2.json) in the same artifact; lint " +
		"self-analysis points are new in PR9 and have no earlier baseline"
	rep9.LintSelf = lintSelfSweep(t)
	data9, err := json.MarshalIndent(rep9, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data9 = append(data9, '\n')
	out9 := filepath.Join(filepath.Dir(out), "BENCH_PR9.json")
	if err := os.WriteFile(out9, data9, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d packages linted, cold %.0fms, warm %.0fms",
		out9, rep9.LintSelf.Packages, rep9.LintSelf.ColdWallMs, rep9.LintSelf.WarmWallMs)

	// BENCH_PR10.json extends the trajectory with the TLS 1.3 wire path
	// and the firmware-drift timeline: marshal/parse micros for a fully
	// populated 1.3 hello, and full-pipeline wall times swept across the
	// -asof ladder together with the 1.3 adoption fraction each virtual
	// date produces.
	rep10 := benchReport10{benchReport: rep}
	rep10.SeedBaselineRef = "PR2 trajectory (BENCH_PR2.json) in the same artifact; TLS 1.3 " +
		"wire and timeline-sweep points are new in PR10 and have no earlier baseline"
	hello13 := bench13Hello()
	raw13, err := hello13.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rep10.Micro = append(append([]benchPoint(nil), rep.Micro...),
		microPoint("tlswire.ClientHello13.Marshal", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hello13.Marshal(); err != nil {
					b.Fatal(err)
				}
			}
		}),
		microPoint("tlswire.ParseRecord/tls13", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tlswire.ParseRecord(raw13); err != nil {
					b.Fatal(err)
				}
			}
		}),
		microPoint("tlswire.ClientHello13.Accessors", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(hello13.SupportedVersions()) == 0 || len(hello13.KeyShares()) == 0 ||
					len(hello13.SignatureAlgorithms()) == 0 || len(hello13.PSKKeyExchangeModes()) == 0 {
					b.Fatal("1.3 accessor returned empty")
				}
			}
		}),
	)
	for _, epoch := range []time.Time{
		{}, // paper era: the zero AsOf no-op path
		time.Date(2021, 8, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2025, 8, 1, 0, 0, 0, 0, time.UTC),
	} {
		p := timelineWall(epoch, 1.0, maxW, runs)
		rep10.TimelineSweep = append(rep10.TimelineSweep, p)
		t.Logf("asof %s: core.Run %.0fms, 1.3 fraction %.3f", p.AsOf, p.WallMs, p.TLS13Fraction)
	}
	data10, err := json.MarshalIndent(rep10, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data10 = append(data10, '\n')
	out10 := filepath.Join(filepath.Dir(out), "BENCH_PR10.json")
	if err := os.WriteFile(out10, data10, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d micro points, %d timeline-sweep points",
		out10, len(rep10.Micro), len(rep10.TimelineSweep))
}

// timelinePoint is one firmware-drift sweep measurement: the full
// pipeline run at a virtual date, its best wall time, and the TLS 1.3
// adoption fraction the drifted dataset reports at that date.
type timelinePoint struct {
	AsOf          string  `json:"asof"`
	Scale         float64 `json:"scale"`
	Workers       int     `json:"workers"`
	WallMs        float64 `json:"wall_ms"`
	TLS13Fraction float64 `json:"tls13_fraction"`
}

// benchReport10 is the BENCH_PR10.json schema: the PR2 trajectory plus
// the TLS 1.3 wire micros and the -asof timeline sweep.
type benchReport10 struct {
	benchReport
	TimelineSweep []timelinePoint `json:"timeline_sweep"`
}

// bench13Hello is the 1.3-shaped hello the wire micros measure: every
// extension the 1.3 accessors decode, mirroring the differential fuzz
// seed so the numbers track the same code paths the oracle exercises.
func bench13Hello() *tlswire.ClientHello {
	ch := &tlswire.ClientHello{
		LegacyVersion:      tlswire.VersionTLS12,
		SessionID:          []byte{0xA0, 0xA1, 0xA2, 0xA3},
		CipherSuites:       []uint16{0x1301, 0x1302, 0x1303, 0xC02F},
		CompressionMethods: []byte{0},
	}
	for i := range ch.Random {
		ch.Random[i] = byte(0x13 ^ i)
	}
	ch.SetSNI("device13.vendor.example")
	ch.SetSupportedVersions([]uint16{uint16(tlswire.VersionTLS13), uint16(tlswire.VersionTLS12)})
	ch.SetSupportedGroups([]uint16{tlswire.GroupX25519, tlswire.GroupP256, tlswire.GroupP384})
	ch.SetSignatureAlgorithms([]uint16{0x0403, 0x0804, 0x0401})
	ch.SetPSKKeyExchangeModes([]byte{1})
	share := make([]byte, 32)
	for i := range share {
		share[i] = 0x1D
	}
	ch.SetKeyShares([]tlswire.KeyShare{{Group: tlswire.GroupX25519, Data: share}})
	return ch
}

// timelineWall runs the full pipeline at one virtual date (zero = paper
// era) and records the drifted dataset's 1.3 adoption fraction along
// with the best-of-runs wall time.
func timelineWall(asof time.Time, scale float64, workers, runs int) timelinePoint {
	label := "paper-era"
	if !asof.IsZero() {
		label = asof.Format("2006-01-02")
	}
	best := time.Duration(0)
	var frac float64
	for i := 0; i < runs; i++ {
		start := time.Now()
		s, err := core.Run(context.Background(), core.Config{
			Seed: 20231024, Scale: scale, MinSNIUsers: 3, Workers: workers, AsOf: asof,
		})
		if err != nil {
			panic(err)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
		frac = s.Dataset.TLS13Fraction(asof)
	}
	return timelinePoint{
		AsOf:          label,
		Scale:         scale,
		Workers:       workers,
		WallMs:        float64(best.Microseconds()) / 1000,
		TLS13Fraction: frac,
	}
}

// lintSelfPoint records the self-lint cost: every analyzer over every
// repository package, cold and warm.
type lintSelfPoint struct {
	Packages   int     `json:"packages"`
	Analyzers  int     `json:"analyzers"`
	ColdWallMs float64 `json:"cold_wall_ms"`
	WarmWallMs float64 `json:"warm_wall_ms"`
}

// benchReport9 is the BENCH_PR9.json schema: the PR2 trajectory plus
// the self-lint point.
type benchReport9 struct {
	benchReport
	LintSelf lintSelfPoint `json:"lint_self"`
}

// lintSelfSweep measures BenchmarkIotlintSelf's workload directly: one
// cold run on a private loader, then a warmed shared-loader run.
func lintSelfSweep(t *testing.T) lintSelfPoint {
	suite := lint.Suite()
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lint.CheckFull(pkgs, suite)
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	if n := rep.Unsuppressed(); len(n) > 0 {
		t.Fatalf("self-lint found %d unsuppressed diagnostic(s): %v", len(n), n[0])
	}
	// Prime the process-wide shared loader, then time a pure cache hit.
	if _, err := lint.CheckDirsFull(".", []string{"./..."}, suite); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := lint.CheckDirsFull(".", []string{"./..."}, suite); err != nil {
		t.Fatal(err)
	}
	warm := time.Since(start)
	return lintSelfPoint{
		Packages:   len(pkgs),
		Analyzers:  len(suite),
		ColdWallMs: float64(cold.Microseconds()) / 1000,
		WarmWallMs: float64(warm.Microseconds()) / 1000,
	}
}

// scalePoint is one scale-sweep measurement: single-shot wall and alloc
// counts for the two hot loops plus the whole pipeline, and the process
// peak RSS after the run (VmHWM — monotone across the sweep, so points
// are taken in ascending scale order).
type scalePoint struct {
	Scale          float64 `json:"scale"`
	Records        int     `json:"records"`
	Workers        int     `json:"workers"`
	GenerateWallMs float64 `json:"generate_wall_ms"`
	GenerateAllocs uint64  `json:"generate_allocs"`
	IngestWallMs   float64 `json:"ingest_wall_ms"`
	IngestAllocs   uint64  `json:"ingest_allocs"`
	RunWallMs      float64 `json:"core_run_wall_ms"`
	PeakRSSKB      int64   `json:"peak_rss_kb"`
}

// benchReport7 is the BENCH_PR7.json schema: the PR2 trajectory plus the
// scale sweep and the hot-loop allocation-reduction ratios.
type benchReport7 struct {
	benchReport
	ScaleSweep                  []scalePoint `json:"scale_sweep"`
	GenerateAllocReductionVsPR2 float64      `json:"generate_alloc_reduction_vs_pr2"`
	IngestAllocReductionVsPR2   float64      `json:"ingest_alloc_reduction_vs_pr2"`
}

// sweepPoint measures one scale: generation and ingestion timed and
// alloc-counted individually (single shot — scale 100 is too big for
// testing.Benchmark iteration), then the full pipeline once.
func sweepPoint(scale float64, workers int) scalePoint {
	runtime.GC()
	var m0, m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	ds := dataset.Generate(dataset.Config{Seed: 20231024, Scale: scale})
	genWall := time.Since(start)
	runtime.ReadMemStats(&m1)
	start = time.Now()
	if _, err := analysis.NewClientWorkers(ds, workers); err != nil {
		panic(err)
	}
	ingestWall := time.Since(start)
	runtime.ReadMemStats(&m2)
	start = time.Now()
	if _, err := core.Run(context.Background(), core.Config{Seed: 20231024, Scale: scale, MinSNIUsers: 3, Workers: workers}); err != nil {
		panic(err)
	}
	runWall := time.Since(start)
	return scalePoint{
		Scale:          scale,
		Records:        ds.Records.Len(),
		Workers:        workers,
		GenerateWallMs: float64(genWall.Microseconds()) / 1000,
		GenerateAllocs: m1.Mallocs - m0.Mallocs,
		IngestWallMs:   float64(ingestWall.Microseconds()) / 1000,
		IngestAllocs:   m2.Mallocs - m1.Mallocs,
		RunWallMs:      float64(runWall.Microseconds()) / 1000,
		PeakRSSKB:      peakRSSKB(),
	}
}

// peakRSSKB reads the process high-water-mark resident set from
// /proc/self/status (0 where unavailable, e.g. non-Linux).
func peakRSSKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				n, _ := strconv.ParseInt(fields[0], 10, 64)
				return n
			}
		}
	}
	return 0
}

// readBaseline loads a committed trajectory file for ratio computation.
func readBaseline(path string) (benchReport, error) {
	var rep benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(data, &rep)
}

// allocRatio returns baseline-allocs / current-allocs for the named
// micro point (0 when either side is missing or zero).
func allocRatio(base benchReport, now []benchPoint, name string) float64 {
	find := func(pts []benchPoint) int64 {
		for _, p := range pts {
			if p.Name == name {
				return p.AllocsPerOp
			}
		}
		return 0
	}
	b, n := find(base.Micro), find(now)
	if b == 0 || n == 0 {
		return 0
	}
	return float64(b) / float64(n)
}

// serviceWall times the daemon core end to end: 200 batches of 25
// records submitted from four sources, queue flushed, final snapshot
// published. Wide limits so nothing sheds — this measures ingest
// throughput, not admission control.
func serviceWall(name string, ds *dataset.Dataset, workers, runs int) e2ePoint {
	const batches, batchSize, sources = 200, 25, 4
	rows := ds.Records.Rows()
	best := time.Duration(0)
	for i := 0; i < runs; i++ {
		svc := service.New(service.Options{
			Seed: 20231024, Workers: workers,
			QueueDepth: batches + 1, SourceBudget: batches + 1,
			ShedWatermark: 1.0, // never shed: this measures throughput, not admission
		})
		start := time.Now()
		for j := 0; j < batches; j++ {
			lo := (j * batchSize) % (len(rows) - batchSize)
			out := svc.Submit(fmt.Sprintf("bench-%d", j%sources), rows[lo:lo+batchSize])
			if !out.Accepted() {
				panic(fmt.Sprintf("bench submit %d: %v", j, out))
			}
		}
		if err := svc.Drain(context.Background()); err != nil {
			panic(err)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return e2ePoint{Name: name, Workers: workers, WallMs: float64(best.Microseconds()) / 1000}
}

// mustOracleRecord picks the first dataset ClientHello that the
// crypto/tls oracle accepts, so the micro benchmark measures the
// agreeing path rather than an early rejection.
func mustOracleRecord(t *testing.T, ds *dataset.Dataset) []byte {
	t.Helper()
	for i := 0; i < ds.Records.Len(); i++ {
		raw := ds.Records.Raw(i)
		if _, ok := tlswire.CryptoTLSView(raw); ok {
			return raw
		}
	}
	t.Fatal("no dataset record accepted by crypto/tls")
	return nil
}

// scenarioWall times one verification cell: base + variant pipeline
// runs, the byte comparison, and every conservation check.
func scenarioWall(name string, scale float64, runs int) e2ePoint {
	c := scenario.Case{Seed: 3, Scale: scale, Workers: 1, AltWorkers: 4, FaultRate: 0.2, MinSNIUsers: 3}
	best := time.Duration(0)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, vs, err := scenario.RunCase(context.Background(), c, scenario.Options{}, false); err != nil || len(vs) > 0 {
			panic(fmt.Sprintf("scenario cell failed: %v / %v", err, vs))
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return e2ePoint{Name: name, Scale: scale, Workers: 1, WallMs: float64(best.Microseconds()) / 1000}
}
