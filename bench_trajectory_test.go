package repro_bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/libcorpus"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/tlswire"
)

// benchPoint is one micro-benchmark measurement.
type benchPoint struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Iterations  int    `json:"iterations"`
}

// e2ePoint is one end-to-end pipeline wall-time measurement (best of
// three runs, to shave scheduler noise).
type e2ePoint struct {
	Name    string  `json:"name"`
	Scale   float64 `json:"scale"`
	Workers int     `json:"workers"`
	WallMs  float64 `json:"wall_ms"`
}

// benchReport is the BENCH_PR2.json schema: the benchmark trajectory the
// CI smoke job archives per commit.
type benchReport struct {
	GeneratedAt     string       `json:"generated_at"`
	GoVersion       string       `json:"go_version"`
	GoMaxProcs      int          `json:"gomaxprocs"`
	Micro           []benchPoint `json:"micro"`
	EndToEnd        []e2ePoint   `json:"end_to_end"`
	SpeedupWorkers  float64      `json:"speedup_scale1_workers_vs_1"`
	SeedBaselineRef string       `json:"seed_baseline_ref"`
}

func microPoint(name string, fn func(b *testing.B)) benchPoint {
	r := testing.Benchmark(fn)
	return benchPoint{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

func e2eWall(name string, scale float64, workers, runs int) e2ePoint {
	best := time.Duration(0)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := core.Run(context.Background(), core.Config{Seed: 20231024, Scale: scale, MinSNIUsers: 3, Workers: workers}); err != nil {
			panic(err)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return e2ePoint{Name: name, Scale: scale, Workers: workers, WallMs: float64(best.Microseconds()) / 1000}
}

// TestBenchTrajectory emits the machine-readable benchmark trajectory.
// It is opt-in: set BENCH_JSON to an output path (or "1" for the default
// BENCH_PR2.json) — unset, the test skips so `go test ./...` stays fast.
func TestBenchTrajectory(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<path> (or 1) to produce the benchmark trajectory")
	}
	if out == "1" {
		out = "BENCH_PR2.json"
	}

	ds := dataset.Generate(dataset.DefaultConfig())
	matcher := libcorpus.NewMatcher()
	entry := matcher.Entries()[0]
	suites := []uint16{0xC030, 0xC02C, 0xC028, 0xC024, 0xC014, 0xC00A, 0x009D, 0x0035, 0x003D}
	maxW := runtime.GOMAXPROCS(0)

	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  maxW,
		SeedBaselineRef: "PR1 HEAD (9308c72) single-threaded pipeline: core.Run ~480-545ms " +
			"and WriteReport ~171ms at scale 1 on the CI runner class; see EXPERIMENTS.md §Performance",
	}

	rep.Micro = append(rep.Micro,
		microPoint("fingerprint.Key", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				entry.Print.Key()
			}
		}),
		microPoint("fingerprint.JaccardUint16", func(b *testing.B) {
			b.ReportAllocs()
			a := []uint16{0xC030, 0xC02C, 0xC028, 0xC024, 0xC014, 0xC00A, 0x009D, 0x0035}
			c := []uint16{0x0035, 0x003D, 0xC030, 0x009C}
			for i := 0; i < b.N; i++ {
				if fingerprint.JaccardUint16(a, c) < 0 {
					b.Fatal("impossible")
				}
			}
		}),
		microPoint("matcher.MatchExact", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				matcher.MatchExact(entry.Print)
			}
		}),
		microPoint("matcher.MatchSemantics/memoized", func(b *testing.B) {
			matcher.MatchSemantics(suites)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matcher.MatchSemantics(suites)
			}
		}),
		microPoint("analysis.NewClientWorkers/1", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := analysis.NewClientWorkers(ds, 1); err != nil {
					b.Fatal(err)
				}
			}
		}),
		microPoint("analysis.NewClientWorkers/max", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := analysis.NewClientWorkers(ds, maxW); err != nil {
					b.Fatal(err)
				}
			}
		}),
		microPoint("dataset.Generate", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dataset.Generate(dataset.DefaultConfig())
			}
		}),
	)

	// Table-level benchmarks over the shared paper-scale study: the same
	// builders `go test -bench .` exercises, recorded as JSON.
	s, err := core.Run(context.Background(), core.Config{Seed: 20231024, Scale: 1.0, MinSNIUsers: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep.Micro = append(rep.Micro,
		microPoint("table.Table2Degree", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.Table2()
			}
		}),
		microPoint("table.Table4VendorJaccard", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.Table4(0.2)
			}
		}),
		microPoint("table.Table11Semantics", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.Table11(s.Matcher)
			}
		}),
		microPoint("table.Figure8JaccardHistogram", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.Figure8(s.Matcher, 10)
			}
		}),
		microPoint("table.ExtensionFrequencies", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.ExtensionFrequencies(s.Matcher)
			}
		}),
		microPoint("table.Table9NetflixValidity", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Server.Table9()
			}
		}),
		microPoint("report.WriteReport", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.WriteReport(io.Discard)
			}
		}),
	)

	runs := 3
	if testing.Short() {
		runs = 1
	}
	rep.EndToEnd = append(rep.EndToEnd,
		e2eWall("core.Run/scale=1/workers=1", 1, 1, runs),
		e2eWall("core.Run/scale=1/workers=max", 1, maxW, runs),
		e2eWall("core.Run/scale=4/workers=max", 4, maxW, 1),
	)
	if w1, wm := rep.EndToEnd[0].WallMs, rep.EndToEnd[1].WallMs; wm > 0 {
		rep.SpeedupWorkers = w1 / wm
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d micro points, %d end-to-end points", out, len(rep.Micro), len(rep.EndToEnd))

	// BENCH_PR5.json extends the trajectory with the verification
	// harness itself: the cost of one scenario cell (two pipeline runs
	// plus every invariant check) and of the crypto/tls wire oracle.
	// Same schema, written alongside the PR2 file so CI archives both.
	rep5 := rep
	rep5.SeedBaselineRef = "PR2 trajectory (BENCH_PR2.json) in the same artifact; scenario " +
		"points are new in PR5 and have no earlier baseline"
	oracleRec := mustOracleRecord(t, ds)
	rep5.Micro = append(append([]benchPoint(nil), rep.Micro...),
		microPoint("tlswire.CompareWithCryptoTLS", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if diffs := tlswire.CompareWithCryptoTLS(oracleRec); len(diffs) > 0 {
					b.Fatalf("oracle disagreement: %v", diffs)
				}
			}
		}),
	)
	rep5.EndToEnd = append(append([]e2ePoint(nil), rep.EndToEnd...),
		scenarioWall("scenario.RunCase/scale=0.05/fault=0.2", 0.05, runs),
	)
	data5, err := json.MarshalIndent(rep5, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data5 = append(data5, '\n')
	out5 := filepath.Join(filepath.Dir(out), "BENCH_PR5.json")
	if err := os.WriteFile(out5, data5, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d micro points, %d end-to-end points", out5, len(rep5.Micro), len(rep5.EndToEnd))

	// BENCH_PR6.json extends the trajectory with the resident service:
	// the delta-ingest micro costs (parse, merge, snapshot clone) and the
	// drained end-to-end ingest throughput of the daemon core.
	rep6 := rep
	rep6.SeedBaselineRef = "PR2/PR5 trajectories in the same artifact; service points are " +
		"new in PR6 and have no earlier baseline"
	deltaRecs := ds.Records[:100]
	sharedDelta, err := analysis.NewDelta(deltaRecs)
	if err != nil {
		t.Fatal(err)
	}
	rep6.Micro = append(append([]benchPoint(nil), rep.Micro...),
		microPoint("analysis.NewDelta/100rec", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := analysis.NewDelta(deltaRecs); err != nil {
					b.Fatal(err)
				}
			}
		}),
		microPoint("analysis.MergeDelta/100rec", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := analysis.NewClientEmpty()
				c.MergeDelta(sharedDelta)
			}
		}),
		microPoint("analysis.Client.Clone/paper-scale", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Client.Clone()
			}
		}),
	)
	rep6.EndToEnd = append(append([]e2ePoint(nil), rep.EndToEnd...),
		serviceWall(fmt.Sprintf("service.ingest/batches=200x25/workers=%d", maxW), ds, maxW, runs),
	)
	data6, err := json.MarshalIndent(rep6, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data6 = append(data6, '\n')
	out6 := filepath.Join(filepath.Dir(out), "BENCH_PR6.json")
	if err := os.WriteFile(out6, data6, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d micro points, %d end-to-end points", out6, len(rep6.Micro), len(rep6.EndToEnd))
}

// serviceWall times the daemon core end to end: 200 batches of 25
// records submitted from four sources, queue flushed, final snapshot
// published. Wide limits so nothing sheds — this measures ingest
// throughput, not admission control.
func serviceWall(name string, ds *dataset.Dataset, workers, runs int) e2ePoint {
	const batches, batchSize, sources = 200, 25, 4
	best := time.Duration(0)
	for i := 0; i < runs; i++ {
		svc := service.New(service.Options{
			Seed: 20231024, Workers: workers,
			QueueDepth: batches + 1, SourceBudget: batches + 1,
			ShedWatermark: 1.0, // never shed: this measures throughput, not admission
		})
		start := time.Now()
		for j := 0; j < batches; j++ {
			lo := (j * batchSize) % (len(ds.Records) - batchSize)
			out := svc.Submit(fmt.Sprintf("bench-%d", j%sources), ds.Records[lo:lo+batchSize])
			if !out.Accepted() {
				panic(fmt.Sprintf("bench submit %d: %v", j, out))
			}
		}
		if err := svc.Drain(context.Background()); err != nil {
			panic(err)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return e2ePoint{Name: name, Workers: workers, WallMs: float64(best.Microseconds()) / 1000}
}

// mustOracleRecord picks the first dataset ClientHello that the
// crypto/tls oracle accepts, so the micro benchmark measures the
// agreeing path rather than an early rejection.
func mustOracleRecord(t *testing.T, ds *dataset.Dataset) []byte {
	t.Helper()
	for _, r := range ds.Records {
		if _, ok := tlswire.CryptoTLSView(r.Raw); ok {
			return r.Raw
		}
	}
	t.Fatal("no dataset record accepted by crypto/tls")
	return nil
}

// scenarioWall times one verification cell: base + variant pipeline
// runs, the byte comparison, and every conservation check.
func scenarioWall(name string, scale float64, runs int) e2ePoint {
	c := scenario.Case{Seed: 3, Scale: scale, Workers: 1, AltWorkers: 4, FaultRate: 0.2, MinSNIUsers: 3}
	best := time.Duration(0)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, vs, err := scenario.RunCase(context.Background(), c, scenario.Options{}, false); err != nil || len(vs) > 0 {
			panic(fmt.Sprintf("scenario cell failed: %v / %v", err, vs))
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return e2ePoint{Name: name, Scale: scale, Workers: 1, WallMs: float64(best.Microseconds()) / 1000}
}
