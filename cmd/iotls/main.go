// Command iotls runs the full IoT TLS & certificate study end to end and
// regenerates the paper's tables and figures.
//
// Usage:
//
//	iotls [flags] <subcommand>
//
// Subcommands:
//
//	report   run the study and print every table (default)
//	client   client-side tables only (Section 4 + Appendix B)
//	server   server-side tables only (Section 5 + Appendix C)
//	dot      emit the Figure 1/3/4 graphs in Graphviz DOT form
//	export   write the anonymized datasets as JSON Lines
//	cases    run the smart-TV and local-network case studies (Section 6)
//	summary  one-paragraph dataset summary
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/labdata"
	"repro/internal/localnet"
	"repro/internal/report"
	"repro/internal/simnet"
	"repro/internal/smarttv"
)

func main() {
	common := cliflags.Common{Seed: 20231024, Scale: 1.0}
	common.Register(flag.CommandLine)
	var obsFlags cliflags.Obs
	obsFlags.Register(flag.CommandLine)
	var (
		minUser  = flag.Int("min-sni-users", 3, "drop SNIs observed from fewer users")
		realTLS  = flag.Bool("real-tls", false, "probe with genuine crypto/tls handshakes")
		serverFP = flag.Bool("serverfp", false, "actively fingerprint server TLS stacks and append the census tables")
		asof     = flag.String("asof", "", "replay the study at this virtual date (YYYY-MM-DD): firmware drift moves part of the population to TLS 1.3 and the adoption-timeline tables are appended ('' = paper era)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "report"
	}

	tracer, metrics, flush, err := obsFlags.Setup("iotls")
	if err != nil {
		fatal(err)
	}
	atExit = flush
	defer flush()

	ctx, stop := cliflags.SignalContext(context.Background())
	defer stop()

	cfg := core.Config{
		Seed: common.Seed, Scale: common.Scale, MinSNIUsers: *minUser,
		RealTLS: *realTLS, ServerFP: *serverFP, Workers: common.Workers,
		Tracer: tracer, Metrics: metrics,
	}
	cfg.Probe.AttemptTimeout = common.Timeout
	if *asof != "" {
		at, err := time.Parse("2006-01-02", *asof)
		if err != nil {
			fatal(fmt.Errorf("-asof: %w", err))
		}
		cfg.AsOf = at
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	switch cmd {
	case "export":
		study, err := core.Run(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		anon := export.NewAnonymizer(fmt.Sprintf("iotls-%d", cfg.Seed))
		n, err := export.WriteHellos(os.Stdout, study.Dataset, anon)
		if err != nil {
			fatal(err)
		}
		m, err := export.WriteCerts(os.Stdout, study.Server)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "exported %d hello rows and %d cert rows\n", n, m)
	case "report", "client", "server", "dot", "summary":
		study, err := core.Run(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		switch cmd {
		case "report":
			if *csv {
				for _, t := range append(study.ClientTables(), study.ServerTables()...) {
					fmt.Printf("# %s\n", t.Title)
					t.WriteCSV(os.Stdout)
					fmt.Println()
				}
			} else {
				study.WriteReport(os.Stdout)
			}
		case "client":
			for _, t := range study.ClientTables() {
				write(t, *csv)
			}
		case "server":
			for _, t := range study.ServerTables() {
				write(t, *csv)
			}
		case "dot":
			fmt.Println(study.Figure1Dot())
			fmt.Println(study.Figure3Dot())
			fmt.Println(study.Figure4Dot())
		case "summary":
			fmt.Printf("devices=%d users=%d models=%d records=%d fingerprints=%d snis=%d probed=%d\n",
				len(study.Dataset.Devices), study.Dataset.Users(), study.Dataset.Models(),
				study.Dataset.Records.Len(), study.Client.NumFingerprints(),
				len(study.Dataset.SNIs()), len(study.SNIs))
		}
	case "cases":
		runCases(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
}

func write(t report.Table, csv bool) {
	if csv {
		fmt.Printf("# %s\n", t.Title)
		t.WriteCSV(os.Stdout)
	} else {
		t.WriteText(os.Stdout)
	}
	fmt.Println()
}

func runCases(cfg core.Config) {
	// Section 6.1: smart TVs.
	ds := dataset.Generate(dataset.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	world := simnet.Build(simnet.Config{Seed: cfg.Seed + 1, SNIs: ds.SNIsByMinUsers(cfg.MinSNIUsers)})
	tv := smarttv.Run(world)
	fmt.Println("== Figure 7: Leaf certificates in Amazon and Roku groups ==")
	for _, r := range tv.Figure7() {
		fmt.Printf("%-8s %-28s certs=%-4d validity=%d-%d days  inCT=%d notInCT=%d\n",
			r.Group, r.Issuer, r.Count, r.MinDays, r.MaxDays, r.InCT, r.NotInCT)
	}
	fmt.Println("\n== Table 17: Invalid or misconfigured chains by group ==")
	for _, r := range tv.Table17() {
		fmt.Printf("%-8s %-25s %-30s fqdns=%d\n", r.Group, r.Status, r.SLD, r.FQDNs)
	}

	// Appendix C.4.2: lab dataset cross-check.
	fmt.Println("\n== Appendix C.4.2: Lab dataset cross-check ==")
	lab := labdata.Capture(world, ds, cfg.Seed+2)
	fmt.Printf("lab devices=%d vendors=%d records=%d\n", lab.Devices, lab.Vendors, len(lab.Records))

	// Section 6.2: local network PKI (real loopback TLS).
	fmt.Println("\n== Section 6.2: PKI on the local network ==")
	labnet, err := localnet.NewLab(time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC))
	if err != nil {
		fatal(err)
	}
	defer labnet.Close()
	obs, err := labnet.ObserveAll()
	if err != nil {
		fatal(err)
	}
	for _, o := range obs {
		fmt.Printf("%-18s port=%-6d chain=%d leafCN=%q cnIsIP=%v validity=%dd rootInStores=%v inCT=%v\n",
			o.Device, portOf(o.Device, labnet), o.ChainLen, o.LeafCN, o.CNIsIP,
			o.ValidityDays, o.RootInStores, o.InCT)
	}
}

func portOf(name string, lab *localnet.Lab) int {
	switch name {
	case "Amazon Echo":
		return lab.Echo.ListenPort
	case "Google Chromecast":
		return lab.Chromecast.ListenPort
	default:
		return lab.Home.ListenPort
	}
}

// atExit flushes observability output before fatal terminates the
// process (os.Exit skips deferred calls); main sets it once.
var atExit = func() {}

func fatal(err error) {
	atExit()
	fmt.Fprintln(os.Stderr, "iotls:", err)
	os.Exit(1)
}
