// Command iotcheck sweeps the scenario-verification matrix: it runs the
// full study pipeline over a configuration grid (seed × scale × workers
// × fault rate × vantage set) and enforces the cross-cutting invariants
// — metamorphic determinism, conservation laws, monotone growth,
// paper-aggregate tolerance bands, crypto/tls wire differentials, and
// the golden report snapshot:
//
//	go run ./cmd/iotcheck -short
//
// Exit status is 0 when every invariant holds, 1 when any is violated,
// and 2 on configuration or infrastructure errors. -json writes the
// machine-readable summary for CI artifacts; -update regenerates the
// golden snapshot under -golden after an intended report change.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/scenario"
	"repro/internal/simnet"
)

func main() {
	short := flag.Bool("short", false, "run the CI short matrix (48 configs + the paper-scale tolerance case); this is also the default grid")
	seeds := flag.String("seeds", "", "comma-separated seed axis (default from the short matrix)")
	scales := flag.String("scales", "", "comma-separated scale axis")
	workerPairs := flag.String("workers", "", "comma-separated base:variant worker pairs, e.g. 1:4,4:1")
	faults := flag.String("faults", "", "comma-separated transient fault-rate axis")
	vantageSets := flag.String("vantages", "", "comma-separated vantage sets, each a +-joined list (all = every vantage), e.g. all,new-york")
	minUsers := flag.Int("min-users", 3, "SNI popularity filter (paper: 3)")
	tolerance := flag.Bool("tolerance", true, "append the paper-scale tolerance case")
	serviceCells := flag.Bool("service", true, "append the service-mode cells (conservation, deterministic shedding, batch equivalence)")
	serverFPCells := flag.Bool("serverfp", true, "append the active-fingerprinting cells (classification accuracy, worker-count determinism)")
	timelineCells := flag.Bool("timeline", true, "append the firmware-drift timeline cells (monotone 1.3 adoption, row conservation, per-epoch determinism)")
	goldenDir := flag.String("golden", "internal/scenario/testdata/golden", "golden snapshot directory ('' disables the snapshot check)")
	update := flag.Bool("update", false, "regenerate golden snapshots instead of comparing")
	jsonPath := flag.String("json", "", "write the JSON summary to this file")
	rerunEvery := flag.Int("rerun-every", 0, "exact-rerun cadence (0: default 8; < 0: never)")
	wireSample := flag.Int("wire-sample", 0, "ClientHello records per dataset through the crypto/tls oracle (0: default 40; < 0: none)")
	timeout := flag.Duration("timeout", 30*time.Minute, "overall sweep deadline")
	quiet := flag.Bool("q", false, "suppress per-case progress lines")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: iotcheck [-short] [flags]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the scenario-matrix verification harness over the study pipeline.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	_ = *short // -short documents intent in CI; the grid below is already the short matrix unless overridden

	m := scenario.Short()
	m.MinSNIUsers = *minUsers
	m.ToleranceCase = *tolerance
	m.ServiceCells = *serviceCells
	m.ServerFPCells = *serverFPCells
	m.TimelineCells = *timelineCells
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "iotcheck:", err)
		os.Exit(2)
	}
	if *seeds != "" {
		axis, err := parseInt64s(*seeds)
		if err != nil {
			fail(fmt.Errorf("-seeds: %w", err))
		}
		m.Seeds = axis
	}
	if *scales != "" {
		axis, err := parseFloats(*scales)
		if err != nil {
			fail(fmt.Errorf("-scales: %w", err))
		}
		m.Scales = axis
	}
	if *workerPairs != "" {
		axis, err := parseWorkerPairs(*workerPairs)
		if err != nil {
			fail(fmt.Errorf("-workers: %w", err))
		}
		m.WorkerPairs = axis
	}
	if *faults != "" {
		axis, err := parseFloats(*faults)
		if err != nil {
			fail(fmt.Errorf("-faults: %w", err))
		}
		m.FaultRates = axis
	}
	if *vantageSets != "" {
		axis, err := parseVantageSets(*vantageSets)
		if err != nil {
			fail(fmt.Errorf("-vantages: %w", err))
		}
		m.VantageSets = axis
	}

	opts := scenario.Options{
		RerunEvery: *rerunEvery,
		WireSample: *wireSample,
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *goldenDir != "" {
		opts.Golden = &scenario.GoldenStore{Dir: *goldenDir, Update: *update}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ctx, stop := cliflags.SignalContext(ctx)
	defer stop()

	sum, err := scenario.RunMatrix(ctx, m, opts)
	if err != nil {
		fail(err)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fail(err)
		}
		if err := sum.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	sum.WriteText(os.Stdout)
	if !sum.OK() {
		os.Exit(1)
	}
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseWorkerPairs(s string) ([][2]int, error) {
	var out [][2]int
	for _, f := range strings.Split(s, ",") {
		base, variant, ok := strings.Cut(strings.TrimSpace(f), ":")
		if !ok {
			return nil, fmt.Errorf("pair %q is not base:variant", f)
		}
		b, err := strconv.Atoi(base)
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(variant)
		if err != nil {
			return nil, err
		}
		if b == v {
			return nil, fmt.Errorf("pair %q: base and variant must differ", f)
		}
		out = append(out, [2]int{b, v})
	}
	return out, nil
}

func parseVantageSets(s string) ([][]simnet.Vantage, error) {
	known := map[string]simnet.Vantage{}
	for _, v := range simnet.Vantages() {
		known[string(v)] = v
	}
	var out [][]simnet.Vantage
	for _, set := range strings.Split(s, ",") {
		set = strings.TrimSpace(set)
		if set == "all" {
			out = append(out, nil)
			continue
		}
		var vs []simnet.Vantage
		for _, name := range strings.Split(set, "+") {
			v, ok := known[strings.TrimSpace(name)]
			if !ok {
				return nil, fmt.Errorf("unknown vantage %q (known: %v)", name, simnet.Vantages())
			}
			vs = append(vs, v)
		}
		out = append(out, vs)
	}
	return out, nil
}
