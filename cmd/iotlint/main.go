// Command iotlint runs the repo's custom static-analysis suite
// (internal/lint) over package patterns and fails if any determinism
// or hygiene invariant is violated:
//
//	go run ./cmd/iotlint ./...
//
// Exit status is 0 when the tree is clean, 1 when there are findings,
// and 2 when packages fail to load. Suppress a finding in place with
// an annotation carrying a reason:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: iotlint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the determinism/hygiene analyzer suite; packages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "iotlint:", err)
		os.Exit(2)
	}
	diags, err := lint.CheckDirs(cwd, patterns, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iotlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "iotlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
