// Command iotlint runs the repo's custom static-analysis suite
// (internal/lint) over package patterns and fails if any determinism
// or hygiene invariant is violated:
//
//	go run ./cmd/iotlint ./...
//
// Exit status is 0 when the tree is clean, 1 when there are findings,
// and 2 when packages fail to load. Suppress a finding in place with
// an annotation carrying a reason:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it.
//
// -json writes the full machine-readable report (every diagnostic,
// suppressed ones flagged with their reason, plus stale annotations)
// to stdout while the human-readable gating lines go to stderr, so a
// single invocation feeds both a CI problem matcher and an artifact.
// -audit-allow additionally gates on stale //lint:allow annotations:
// annotations whose finding is gone are reported and fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// jsonDiag is one diagnostic in the -json report. File is relative to
// the working directory when possible, so the artifact is stable
// across checkouts.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// jsonStale is one stale //lint:allow annotation in the -json report.
type jsonStale struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Diagnostics []jsonDiag  `json:"diagnostics"`
	Stale       []jsonStale `json:"stale"`
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, argv []string) int {
	fs := flag.NewFlagSet("iotlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "write the full report as JSON to stdout (human lines go to stderr)")
	auditAllow := fs.Bool("audit-allow", false, "also fail on stale //lint:allow annotations that suppress nothing")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: iotlint [-list] [-json] [-audit-allow] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the determinism/hygiene analyzer suite; packages default to ./...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	suite := lint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "iotlint:", err)
		return 2
	}
	rep, err := lint.CheckDirsFull(cwd, patterns, suite)
	if err != nil {
		fmt.Fprintln(stderr, "iotlint:", err)
		return 2
	}

	// Human-readable gating lines: unsuppressed findings, plus stale
	// annotations under -audit-allow. In -json mode they move to
	// stderr so stdout stays pure JSON.
	lines := stderr
	if !*asJSON {
		lines = stdout
	}
	unsup := rep.Unsuppressed()
	for _, d := range unsup {
		d.Pos.Filename = relPath(cwd, d.Pos.Filename)
		fmt.Fprintln(lines, d)
	}
	failures := len(unsup)
	if *auditAllow {
		for _, s := range rep.Stale {
			s.Pos.Filename = relPath(cwd, s.Pos.Filename)
			fmt.Fprintln(lines, s)
		}
		failures += len(rep.Stale)
	}

	if *asJSON {
		doc := jsonReport{Diagnostics: []jsonDiag{}, Stale: []jsonStale{}}
		for _, d := range rep.Diagnostics {
			doc.Diagnostics = append(doc.Diagnostics, jsonDiag{
				File:       relPath(cwd, d.Pos.Filename),
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
				Reason:     d.Reason,
			})
		}
		for _, s := range rep.Stale {
			doc.Stale = append(doc.Stale, jsonStale{
				File:     relPath(cwd, s.Pos.Filename),
				Line:     s.Pos.Line,
				Col:      s.Pos.Column,
				Analyzer: s.Analyzer,
				Reason:   s.Reason,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(stderr, "iotlint:", err)
			return 2
		}
	}

	if failures > 0 {
		fmt.Fprintf(stderr, "iotlint: %d finding(s)\n", failures)
		return 1
	}
	return 0
}

// relPath rewrites an absolute source path relative to base when the
// file sits inside the tree; paths outside base (or unresolvable ones)
// come back unchanged.
func relPath(base, path string) string {
	rel, err := filepath.Rel(base, path)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return path
	}
	return filepath.ToSlash(rel)
}
