package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/service"
)

// buildDaemon compiles the iotlsd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping binary build in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "iotlsd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and scrapes its listen address from
// the startup banner on stderr.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "localhost:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var tail bytes.Buffer
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	base := ""
	for sc.Scan() {
		line := sc.Text()
		tail.WriteString(line + "\n")
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("no listen banner on stderr:\n%s", tail.String())
	}
	// Keep draining stderr so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
			tail.WriteString(sc.Text() + "\n")
		}
	}()
	return cmd, base, &tail
}

func httpCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func waitExit(t *testing.T, cmd *exec.Cmd) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
		return 0
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not exit within 30s of SIGTERM")
		return -1
	}
}

// TestDaemonSIGTERMDrainsAndExitsZero is the acceptance path: start the
// real binary, submit load over HTTP, SIGTERM it mid-stream, observe
// /readyz flip ready -> draining (503), and require a clean exit 0 with
// a conservation-positive drain banner.
func TestDaemonSIGTERMDrainsAndExitsZero(t *testing.T) {
	bin := buildDaemon(t)
	reportPath := filepath.Join(t.TempDir(), "final.txt")
	cmd, base, tail := startDaemon(t, bin,
		"-drain-linger", "500ms", "-chaos-slow", "5ms", "-final-report", reportPath)

	if code := httpCode(t, base+"/readyz"); code != 200 {
		t.Fatalf("fresh /readyz = %d", code)
	}

	ds := dataset.Generate(dataset.Config{Seed: 11, Scale: 0.02})
	if ds.Records.Len() < 50 {
		t.Fatalf("dataset too small: %d", ds.Records.Len())
	}
	accepted := 0
	for i := 0; i < 10; i++ {
		lo := (i * 5) % (ds.Records.Len() - 5)
		body, err := service.EncodeBatch("exec-test", ds.Records.Rows()[lo:lo+5])
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusAccepted {
			accepted++
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if accepted == 0 {
		t.Fatal("no batch accepted before SIGTERM")
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The drain linger holds the daemon in the draining state long
	// enough for a probe to observe the readiness flip.
	sawDraining := false
	for i := 0; i < 100 && !sawDraining; i++ {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // listener already closed: drain completed
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(b), "draining") {
			sawDraining = true
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sawDraining {
		t.Errorf("never observed /readyz 503 draining during linger")
	}

	if code := waitExit(t, cmd); code != 0 {
		t.Fatalf("exit code %d, want 0; stderr:\n%s", code, tail.String())
	}
	if !strings.Contains(tail.String(), "conserved=true") {
		t.Fatalf("drain banner missing conservation: %s", tail.String())
	}
	rep, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), "Table 2") {
		t.Fatalf("final report missing study tables:\n%.200s", rep)
	}
}

// TestDaemonSelfdriveWritesLoadReport: -selfdrive soaks the daemon
// through its own HTTP listener and the load report JSON reconciles
// with the service counters.
func TestDaemonSelfdriveWritesLoadReport(t *testing.T) {
	bin := buildDaemon(t)
	repPath := filepath.Join(t.TempDir(), "load.json")
	cmd := exec.Command(bin,
		"-addr", "localhost:0", "-selfdrive",
		"-drive-batches", "40", "-drive-batch-size", "10", "-drive-interval", "1ms",
		"-drive-poison", "0.1", "-breaker-threshold", "1000",
		"-load-report", repPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("selfdrive run failed: %v\n%s", err, out)
	}
	var rep service.LoadReport
	b, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SubmittedBatches != 40 {
		t.Fatalf("load report submitted %d, want 40", rep.SubmittedBatches)
	}
	if rep.Service == nil {
		t.Fatal("load report missing service stats")
	}
	if !rep.Service.Conserved() {
		t.Fatalf("selfdrive run not conserved: %+v", rep.Service)
	}
	if rep.Service.SubmittedBatches != 40 {
		t.Fatalf("service saw %d batches, want 40", rep.Service.SubmittedBatches)
	}
	if rep.PoisonedBatches == 0 || rep.Service.QuarantinedBatches == 0 {
		t.Fatalf("poison inert: %d poisoned, %d quarantined", rep.PoisonedBatches, rep.Service.QuarantinedBatches)
	}
}
