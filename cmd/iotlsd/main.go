// Command iotlsd runs the resident IoT TLS analysis service: it accepts
// ClientHello record batches over HTTP+JSON, maintains incrementally
// merged analysis state published as immutable epoch snapshots, sheds
// load deterministically under pressure (429 + Retry-After), and drains
// gracefully on SIGTERM — stop accepting, flush the queue, publish the
// final snapshot, optionally write the full batch-equivalent report,
// exit 0.
//
// Endpoints: POST /v1/batch, GET /v1/serverfp /healthz /readyz /statz
// /quarantinez /report, and /metrics when -metrics or -pprof is set.
//
// -selfdrive turns the daemon into its own soak rig: a seeded open-loop
// load generator POSTs batches to the daemon's listener, then triggers
// the same drain path SIGTERM does. Chaos knobs (-drive-poison,
// -chaos-panic, -chaos-slow) exercise quarantine, panic isolation, and
// queue growth.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/service"
)

func main() {
	common := cliflags.Common{Seed: 20231024, Scale: 1.0}
	common.Register(flag.CommandLine)
	var obsFlags cliflags.Obs
	obsFlags.Register(flag.CommandLine)
	var (
		addr        = flag.String("addr", "localhost:8080", "listen address (port 0 picks a free port)")
		minUser     = flag.Int("min-sni-users", 3, "drop SNIs observed from fewer users in the final report")
		queueDepth  = flag.Int("queue", 64, "ingest queue depth in batches")
		watermark   = flag.Float64("watermark", 0.75, "queue fraction where seeded shedding begins (1.0 = shed only when full)")
		srcBudget   = flag.Int("source-budget", 8, "max in-queue batches per source")
		brThreshold = flag.Int("breaker-threshold", 3, "consecutive quarantined batches opening a source's breaker")
		brCooldown  = flag.Duration("breaker-cooldown", 30*time.Second, "source breaker cooldown")
		stall       = flag.Duration("stall-timeout", 30*time.Second, "watchdog: fail readiness after this long without ingest progress")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-request handling deadline")
		readTO      = flag.Duration("read-timeout", 15*time.Second, "HTTP read timeout (slow-client protection)")
		writeTO     = flag.Duration("write-timeout", 15*time.Second, "HTTP write timeout (slow-client protection)")
		chaosPanic  = flag.Float64("chaos-panic", 0, "inject a seeded worker panic on this fraction of batches")
		chaosSlow   = flag.Duration("chaos-slow", 0, "sleep each batch this long before merging (slow-consumer chaos)")

		selfdrive  = flag.Bool("selfdrive", false, "run the seeded open-loop load generator against this daemon, then drain")
		driveN     = flag.Int("drive-batches", 200, "selfdrive: total batches to submit")
		driveSize  = flag.Int("drive-batch-size", 25, "selfdrive: records per batch")
		driveIvl   = flag.Duration("drive-interval", 10*time.Millisecond, "selfdrive: open-loop submission cadence")
		driveSrcs  = flag.Int("drive-sources", 4, "selfdrive: distinct submitting sources")
		drivePoisn = flag.Float64("drive-poison", 0, "selfdrive: fraction of batches poisoned with unparseable bytes")
		driveScale = flag.Float64("drive-scale", 0.05, "selfdrive: dataset scale records are drawn from")

		drainLinger  = flag.Duration("drain-linger", 0, "hold in the draining state this long before flushing (lets probes observe /readyz flip)")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "deadline for flushing the queue on shutdown")
		asof         = flag.String("asof", "", "virtual date (YYYY-MM-DD) for the drained final report: the probe world and library corpus apply their firmware drift ('' = paper era)")
		finalReport  = flag.String("final-report", "", `write the drained batch-equivalent study report here ("-" = stdout, "" = skip)`)
		loadReport   = flag.String("load-report", "", "write the selfdrive load report JSON here")
	)
	flag.Parse()

	_, metrics, flush, err := obsFlags.Setup("iotlsd")
	if err != nil {
		fatal(err)
	}
	defer flush()

	svc := service.New(service.Options{
		Seed:             common.Seed,
		Workers:          common.Workers,
		QueueDepth:       *queueDepth,
		ShedWatermark:    *watermark,
		SourceBudget:     *srcBudget,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		StallTimeout:     *stall,
		ChaosPanicFrac:   *chaosPanic,
		ChaosSlow:        *chaosSlow,
		Metrics:          metrics,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{
		Handler:           service.Handler(svc, service.HTTPOptions{RequestTimeout: *reqTimeout, Metrics: metrics}),
		ReadTimeout:       *readTO,
		ReadHeaderTimeout: *readTO,
		WriteTimeout:      *writeTO,
	}
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "iotlsd: listening on %s\n", base)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := cliflags.SignalContext(context.Background())
	defer stop()

	var rep service.LoadReport
	if *selfdrive {
		driveDone := make(chan struct{})
		go func() {
			defer close(driveDone)
			rep, err = service.RunLoad(ctx, httpSubmit(base), service.LoadOptions{
				Seed:       common.Seed,
				Scale:      *driveScale,
				BatchSize:  *driveSize,
				Batches:    *driveN,
				Sources:    *driveSrcs,
				Interval:   *driveIvl,
				PoisonFrac: *drivePoisn,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "iotlsd: selfdrive:", err)
			}
		}()
		select {
		case <-driveDone:
			fmt.Fprintln(os.Stderr, "iotlsd: selfdrive complete, draining")
		case <-ctx.Done():
			<-driveDone // loadgen honors the same ctx
			fmt.Fprintln(os.Stderr, "iotlsd: signal received, draining")
		}
	} else {
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "iotlsd: signal received, draining")
		case err := <-serveErr:
			fatal(err)
		}
	}

	// Graceful drain: flip readiness first so load balancers stop
	// routing, linger for probes to observe, then flush the queue and
	// publish the final snapshot.
	svc.BeginDrain()
	if *drainLinger > 0 {
		time.Sleep(*drainLinger)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.AwaitDrain(drainCtx); err != nil {
		fatal(err)
	}
	stats := svc.Stats()
	fmt.Fprintf(os.Stderr, "iotlsd: drained: %d/%d batches accepted, %d shed, %d quarantined, conserved=%v\n",
		stats.AcceptedBatches, stats.SubmittedBatches, stats.ShedBatches,
		stats.QuarantinedBatches, stats.Conserved())

	if *loadReport != "" {
		rep.Service = &stats
		if err := writeJSON(*loadReport, rep); err != nil {
			fatal(err)
		}
	}
	if *finalReport != "" {
		out := os.Stdout
		if *finalReport != "-" {
			f, err := os.Create(*finalReport)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		cfg := core.Config{
			Seed: common.Seed, Scale: common.Scale, MinSNIUsers: *minUser,
			Workers: common.Workers, Metrics: metrics,
		}
		if *asof != "" {
			at, err := time.Parse("2006-01-02", *asof)
			if err != nil {
				fatal(fmt.Errorf("-asof: %w", err))
			}
			cfg.AsOf = at
		}
		if err := svc.FinalReport(context.Background(), out, cfg); err != nil {
			fatal(err)
		}
	}

	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	srv.Shutdown(shutCtx)
}

// httpSubmit adapts the daemon's own /v1/batch endpoint to the load
// generator's SubmitFunc — selfdrive traffic exercises the full HTTP
// path, not a shortcut into Submit.
func httpSubmit(base string) service.SubmitFunc {
	client := &http.Client{Timeout: 30 * time.Second}
	return func(source string, records []dataset.Record) (service.Outcome, error) {
		body, err := service.EncodeBatch(source, records)
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var parsed struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&parsed); err != nil {
			return 0, fmt.Errorf("decode response (HTTP %d): %w", resp.StatusCode, err)
		}
		outcome, ok := service.OutcomeFromString(parsed.Status)
		if !ok {
			return 0, fmt.Errorf("unknown outcome %q (HTTP %d)", parsed.Status, resp.StatusCode)
		}
		return outcome, nil
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iotlsd:", err)
	os.Exit(1)
}
