// Command ctquery exercises the Certificate Transparency log of the
// study: it builds the simulated world, reports per-issuer CT coverage
// (the crt.sh-style lookup of Section 5.4), and verifies RFC 6962
// inclusion proofs for a sample of logged certificates plus a consistency
// proof between two tree sizes.
//
// Usage:
//
//	ctquery [-seed N] [-scale F] [-verify N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/ctlog"
	"repro/internal/dataset"
	"repro/internal/pki"
	"repro/internal/simnet"
)

func main() {
	var (
		seed   = flag.Int64("seed", 20231024, "world seed")
		scale  = flag.Float64("scale", 0.3, "population scale")
		verify = flag.Int("verify", 16, "number of inclusion proofs to verify")
	)
	flag.Parse()

	ds := dataset.Generate(dataset.Config{Seed: *seed, Scale: *scale})
	world := simnet.Build(simnet.Config{Seed: *seed + 1, SNIs: ds.SNIsByMinUsers(2)})
	log := world.Log
	head := log.Head()
	fmt.Printf("log %s: size=%d root=%s\n\n", log.ID, head.Size, head.RootHash)

	// Per-issuer CT coverage.
	type cover struct{ logged, total int }
	coverage := map[string]*cover{}
	for _, srv := range world.Servers {
		c := coverage[srv.IssuerOrg]
		if c == nil {
			c = &cover{}
			coverage[srv.IssuerOrg] = c
		}
		c.total++
		if srv.InCT {
			c.logged++
		}
	}
	issuers := make([]string, 0, len(coverage))
	for i := range coverage {
		issuers = append(issuers, i)
	}
	sort.Strings(issuers)
	fmt.Println("== CT coverage by issuer (servers logged/total) ==")
	for _, i := range issuers {
		c := coverage[i]
		kind := "private"
		if world.Stores.ContainsOrg(i) {
			kind = "public"
		}
		fmt.Printf("%-32s %-8s %d/%d\n", i, kind, c.logged, c.total)
	}

	// Verify inclusion proofs for a sample of logged leaves.
	fmt.Printf("\n== Verifying %d inclusion proofs ==\n", *verify)
	snis := make([]string, 0, len(world.Servers))
	for sni := range world.Servers {
		snis = append(snis, sni)
	}
	sort.Strings(snis)
	verified := 0
	for _, sni := range snis {
		if verified >= *verify {
			break
		}
		srv := world.Servers[sni]
		if !srv.InCT {
			continue
		}
		idx, proof, err := log.InclusionProofForCert(srv.Leaf.Cert)
		if err != nil {
			fatal(fmt.Errorf("proof for %s: %w", sni, err))
		}
		okProof := ctlog.VerifyInclusion(ctlog.LeafHashOfCert(srv.Leaf.Cert), idx, head.Size, proof, head.RootHash)
		if !okProof {
			fatal(fmt.Errorf("inclusion proof for %s FAILED", sni))
		}
		fmt.Printf("%-40s leaf=%d path=%d OK\n", sni, idx, len(proof))
		verified++
	}

	// Consistency proof between half and full tree.
	if head.Size >= 2 {
		first := head.Size / 2
		proof, err := log.ConsistencyProof(first, head.Size)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nconsistency proof %d -> %d: %d hashes (full verification across tree heads is exercised in the ctlog tests)\n",
			first, head.Size, len(proof))
	}

	// A private-CA certificate must never be present.
	for _, sni := range snis {
		srv := world.Servers[sni]
		if srv.IssuerKind == pki.PrivateCA && log.Contains(srv.Leaf.Cert) {
			fatal(fmt.Errorf("private-CA certificate of %s found in CT", sni))
		}
	}
	fmt.Println("\nno private-CA certificate appears in the log (Section 5.4)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctquery:", err)
	os.Exit(1)
}
