// Command ctquery exercises the Certificate Transparency log of the
// study: it builds the simulated world, reports per-issuer CT coverage
// (the crt.sh-style lookup of Section 5.4), and verifies RFC 6962
// inclusion proofs for a sample of logged certificates plus a consistency
// proof between two tree sizes.
//
// Usage:
//
//	ctquery [-seed N] [-scale F] [-workers N] [-timeout D] [-verify N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cliflags"
	"repro/internal/ctlog"
	"repro/internal/dataset"
	"repro/internal/pki"
	"repro/internal/simnet"
)

func main() {
	common := cliflags.Common{Seed: 20231024, Scale: 0.3}
	common.Register(flag.CommandLine)
	verify := flag.Int("verify", 16, "number of inclusion proofs to verify")
	flag.Parse()
	seed, scale := &common.Seed, &common.Scale

	ds := dataset.Generate(dataset.Config{Seed: *seed, Scale: *scale})
	world := simnet.Build(simnet.Config{Seed: *seed + 1, SNIs: ds.SNIsByMinUsers(2)})
	log := world.Log
	head := log.Head()
	fmt.Printf("log %s: size=%d root=%s\n\n", log.ID, head.Size, head.RootHash)

	// Per-issuer CT coverage.
	type cover struct{ logged, total int }
	coverage := map[string]*cover{}
	for _, srv := range world.Servers {
		c := coverage[srv.IssuerOrg]
		if c == nil {
			c = &cover{}
			coverage[srv.IssuerOrg] = c
		}
		c.total++
		if srv.InCT {
			c.logged++
		}
	}
	issuers := make([]string, 0, len(coverage))
	for i := range coverage {
		issuers = append(issuers, i)
	}
	sort.Strings(issuers)
	fmt.Println("== CT coverage by issuer (servers logged/total) ==")
	for _, i := range issuers {
		c := coverage[i]
		kind := "private"
		if world.Stores.ContainsOrg(i) {
			kind = "public"
		}
		fmt.Printf("%-32s %-8s %d/%d\n", i, kind, c.logged, c.total)
	}

	// Verify inclusion proofs for a sample of logged leaves. Candidate
	// selection is deterministic (sorted SNIs, first -verify logged
	// entries); verification fans out across -workers goroutines and the
	// results print in candidate order, so the output is identical for
	// any worker count. -timeout bounds the whole verification phase.
	fmt.Printf("\n== Verifying %d inclusion proofs ==\n", *verify)
	snis := make([]string, 0, len(world.Servers))
	for sni := range world.Servers {
		snis = append(snis, sni)
	}
	sort.Strings(snis)
	candidates := make([]string, 0, *verify)
	for _, sni := range snis {
		if len(candidates) >= *verify {
			break
		}
		if world.Servers[sni].InCT {
			candidates = append(candidates, sni)
		}
	}
	// Ctrl-C / SIGTERM cancel the verification fan-out instead of
	// hard-killing the process: completed proofs still print, the
	// partial summary survives, and the exit code says "interrupted".
	ctx, stop := cliflags.SignalContext(context.Background())
	defer stop()
	if common.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, common.Timeout)
		defer cancel()
	}
	type proofOut struct {
		idx  uint64
		path int
		err  error
	}
	outs := make([]proofOut, len(candidates))
	workers := common.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(candidates) && len(candidates) > 0 {
		workers = len(candidates)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sni := candidates[i]
				srv := world.Servers[sni]
				if err := ctx.Err(); err != nil {
					outs[i].err = fmt.Errorf("proof for %s: %w", sni, err)
					continue
				}
				idx, proof, err := log.InclusionProofForCert(srv.Leaf.Cert)
				if err != nil {
					outs[i].err = fmt.Errorf("proof for %s: %w", sni, err)
					continue
				}
				if !ctlog.VerifyInclusion(ctlog.LeafHashOfCert(srv.Leaf.Cert), idx, head.Size, proof, head.RootHash) {
					outs[i].err = fmt.Errorf("inclusion proof for %s FAILED", sni)
					continue
				}
				outs[i] = proofOut{idx: idx, path: len(proof)}
			}
		}()
	}
	for i := range candidates {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	verified, aborted := 0, 0
	for i, out := range outs {
		if out.err != nil {
			if errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded) {
				aborted++
				continue
			}
			fatal(out.err)
		}
		verified++
		fmt.Printf("%-40s leaf=%d path=%d OK\n", candidates[i], out.idx, out.path)
	}
	if aborted > 0 {
		fmt.Fprintf(os.Stderr,
			"ctquery: cancelled (%v): verified %d/%d inclusion proofs, %d aborted; skipping consistency and private-CA checks\n",
			context.Cause(ctx), verified, len(candidates), aborted)
		os.Exit(130)
	}

	// Consistency proof between half and full tree.
	if head.Size >= 2 {
		first := head.Size / 2
		proof, err := log.ConsistencyProof(first, head.Size)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nconsistency proof %d -> %d: %d hashes (full verification across tree heads is exercised in the ctlog tests)\n",
			first, head.Size, len(proof))
	}

	// A private-CA certificate must never be present.
	for _, sni := range snis {
		srv := world.Servers[sni]
		if srv.IssuerKind == pki.PrivateCA && log.Contains(srv.Leaf.Cert) {
			fatal(fmt.Errorf("private-CA certificate of %s found in CT", sni))
		}
	}
	fmt.Println("\nno private-CA certificate appears in the log (Section 5.4)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctquery:", err)
	os.Exit(1)
}
