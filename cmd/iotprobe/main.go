// Command iotprobe is the standalone multi-vantage certificate prober of
// Section 5.1: given a set of SNIs it establishes TLS connections from
// three vantage points through the resilient probe engine (per-attempt
// timeouts, exponential backoff with full jitter, per-host retry budget
// and circuit breaker), captures the served chains, validates them
// against the major trust stores, and reports issuer, validity, chain
// status, and CT presence for each server.
//
// Without an SNI list it probes every server of the simulated world built
// from the crowdsourced dataset. Positional SNIs are added to the hosted
// world, so ad-hoc domains resolve instead of failing with unknown host.
//
// With -fingerprint it switches to active server-stack fingerprinting:
// instead of one canonical handshake per (SNI, vantage), it sends the
// serverfp battery of crafted ClientHellos to each host from a single
// vantage and classifies the response vectors into server-stack labels.
//
// Usage:
//
//	iotprobe [-seed N] [-scale F] [-real-tls] [-vantage V]
//	         [-timeout D] [-retries N] [-workers N] [-fault-rate F]
//	         [-fingerprint] [-trace] [-metrics FILE] [-pprof ADDR] [sni ...]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/cliflags"
	"repro/internal/dataset"
	"repro/internal/pki"
	"repro/internal/probe"
	"repro/internal/serverfp"
	"repro/internal/simnet"
)

func main() {
	common := cliflags.Common{Seed: 20231024, Scale: 0.3, Timeout: 5 * time.Second}
	common.Register(flag.CommandLine)
	var obsFlags cliflags.Obs
	obsFlags.Register(flag.CommandLine)
	var (
		realTLS   = flag.Bool("real-tls", true, "use genuine crypto/tls handshakes")
		vantage   = flag.String("vantage", "all", "vantage: new-york, frankfurt, singapore, or all")
		retries   = flag.Int("retries", 3, "max retries per (SNI, vantage) on transient failures")
		faultRate = flag.Float64("fault-rate", 0, "injected transient-failure probability per attempt, in [0,1]")
		fpMode    = flag.Bool("fingerprint", false, "actively fingerprint server TLS stacks instead of collecting chains")
	)
	flag.Parse()
	seed, scale, workers, timeout := &common.Seed, &common.Scale, &common.Workers, &common.Timeout

	tracer, metrics, flush, err := obsFlags.Setup("iotprobe")
	if err != nil {
		fmt.Fprintln(os.Stderr, "iotprobe:", err)
		os.Exit(2)
	}
	defer flush()

	vantages, err := resolveVantages(*vantage)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *faultRate < 0 || *faultRate > 1 {
		fmt.Fprintf(os.Stderr, "iotprobe: -fault-rate %v outside [0,1]\n", *faultRate)
		os.Exit(2)
	}

	buildSpan := tracer.Root().Child("world-build")
	ds := dataset.Generate(dataset.Config{Seed: *seed, Scale: *scale, Metrics: metrics})
	snis := flag.Args()
	worldSNIs := ds.SNIsByMinUsers(2)
	if len(snis) == 0 {
		snis = worldSNIs
	} else {
		// Host the user's SNIs too: a domain outside the default set
		// should be probed, not rejected as unknown.
		hosted := map[string]bool{}
		for _, s := range worldSNIs {
			hosted[s] = true
		}
		for _, s := range snis {
			if !hosted[s] {
				worldSNIs = append(worldSNIs, s)
				hosted[s] = true
			}
		}
	}
	world := simnet.Build(simnet.Config{Seed: *seed + 1, SNIs: worldSNIs})
	if *faultRate > 0 {
		world.SetFaults(simnet.Faults{Seed: *seed, TransientRate: *faultRate})
	}
	world.Validator.Instrument(metrics)
	buildSpan.SetCount("servers", int64(len(world.Servers)))
	buildSpan.End()

	maxRetries := *retries
	if maxRetries == 0 {
		maxRetries = -1 // flag 0 means "no retries", not "engine default"
	}
	opts := probe.Options{
		Workers:        *workers,
		AttemptTimeout: *timeout,
		MaxRetries:     maxRetries,
		Seed:           *seed,
		Metrics:        metrics,
	}

	ctx, stop := cliflags.SignalContext(context.Background())
	defer stop()
	sort.Strings(snis)

	if *fpMode {
		fpSpan := tracer.Root().Child("serverfp")
		census, err := serverfp.Fingerprint(ctx, world, snis, vantages[0], opts)
		fpSpan.End()
		if err != nil {
			fmt.Fprintln(os.Stderr, "iotprobe:", err)
			flush()
			os.Exit(1)
		}
		for _, tgt := range census.Targets {
			truth := tgt.TrueLabel
			if truth == "" {
				truth = "?"
			}
			fmt.Printf("%-40s stack=%-16s confidence=%.2f truth=%-16s observed=%d/%d\n",
				tgt.SNI, tgt.Label, tgt.Confidence, truth, tgt.Observed, census.BatterySize)
		}
		for _, lc := range census.LabelCounts() {
			fmt.Printf("# %-18s servers=%-5d mean-confidence=%.2f mismatches=%d\n",
				lc.Label, lc.Servers, lc.MeanConf, lc.Mismatches)
		}
		fmt.Fprintf(os.Stderr,
			"fingerprinted %d host(s) from %s: battery=%d accuracy=%.3f attempts=%d retries=%d\n",
			len(census.Targets), census.Vantage, census.BatterySize, census.Accuracy(),
			census.Stats.Attempts, census.Stats.Retries)
		if census.Stats.Aborted > 0 {
			flush()
			os.Exit(130)
		}
		return
	}

	eng := probe.New(probe.WorldProber{World: world, RealTLS: *realTLS}, opts)
	probeSpan := tracer.Root().Child("probe")
	results, stats := eng.Run(ctx, snis, vantages)
	probeSpan.SetCount("jobs", int64(stats.Jobs))
	probeSpan.SetCount("attempts", int64(stats.Attempts))
	probeSpan.End()

	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%-40s %-10s ERROR [%s after %d attempt(s)] %v\n",
				r.SNI, r.Vantage, r.Class, r.Attempts, r.Err)
			continue
		}
		res := world.Validator.Validate(r.Response.Chain, r.SNI, world.ProbeTime)
		leaf := r.Response.Chain.Leaf()
		days := int(leaf.NotAfter.Sub(leaf.NotBefore).Hours() / 24)
		fmt.Printf("%-40s %-10s issuer=%-28s status=%-22s chain=%d validity=%dd ct=%v attempts=%d\n",
			r.SNI, r.Vantage, pki.IssuerOrg(leaf), res.Status, r.Response.Chain.Len(), days,
			world.Log.Contains(leaf), r.Attempts)
	}

	fmt.Fprintf(os.Stderr,
		"probed %d jobs across %d vantage(s): %d ok (%d recovered by retry), %d transient, %d terminal, %d aborted\n",
		stats.Jobs, len(vantages), stats.Successes, stats.RecoveredAfterRetry,
		stats.TransientFailures, stats.TerminalFailures, stats.Aborted)
	fmt.Fprintf(os.Stderr,
		"attempts=%d retries=%d breaker-opens=%d breaker-fast-fails=%d budget-exhausted=%d\n",
		stats.Attempts, stats.Retries, stats.BreakerOpens, stats.BreakerFastFails, stats.BudgetExhausted)
	if stats.Aborted > 0 {
		flush() // os.Exit skips the deferred flush
		os.Exit(130)
	}
}

// resolveVantages validates the -vantage flag against the known set.
func resolveVantages(name string) ([]simnet.Vantage, error) {
	if name == "all" {
		return simnet.Vantages(), nil
	}
	for _, v := range simnet.Vantages() {
		if string(v) == name {
			return []simnet.Vantage{v}, nil
		}
	}
	return nil, fmt.Errorf("iotprobe: unknown vantage %q (want new-york, frankfurt, singapore, or all)", name)
}
