// Command iotprobe is the standalone multi-vantage certificate prober of
// Section 5.1: given a set of SNIs it establishes TLS connections from
// three vantage points, captures the served chains, validates them
// against the major trust stores, and reports issuer, validity, chain
// status, and CT presence for each server.
//
// Without an SNI list it probes every server of the simulated world built
// from the crowdsourced dataset.
//
// Usage:
//
//	iotprobe [-seed N] [-scale F] [-real-tls] [sni ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/dataset"
	"repro/internal/pki"
	"repro/internal/simnet"
)

func main() {
	var (
		seed    = flag.Int64("seed", 20231024, "world seed")
		scale   = flag.Float64("scale", 0.3, "population scale for the default SNI set")
		realTLS = flag.Bool("real-tls", true, "use genuine crypto/tls handshakes")
		vantage = flag.String("vantage", "all", "vantage: new-york, frankfurt, singapore, or all")
	)
	flag.Parse()

	ds := dataset.Generate(dataset.Config{Seed: *seed, Scale: *scale})
	snis := flag.Args()
	if len(snis) == 0 {
		snis = ds.SNIsByMinUsers(2)
	}
	world := simnet.Build(simnet.Config{Seed: *seed + 1, SNIs: ds.SNIsByMinUsers(2)})

	var vantages []simnet.Vantage
	if *vantage == "all" {
		vantages = simnet.Vantages()
	} else {
		vantages = []simnet.Vantage{simnet.Vantage(*vantage)}
	}

	sort.Strings(snis)
	ok, failed := 0, 0
	for _, sni := range snis {
		for _, v := range vantages {
			var chain pki.Chain
			var err error
			if *realTLS {
				chain, err = world.Probe(sni, v)
			} else {
				chain, err = world.ProbeFast(sni, v)
			}
			if err != nil {
				failed++
				fmt.Printf("%-40s %-10s ERROR %v\n", sni, v, err)
				continue
			}
			ok++
			res := world.Validator.Validate(chain, sni, world.ProbeTime)
			leaf := chain.Leaf()
			days := int(leaf.NotAfter.Sub(leaf.NotBefore).Hours() / 24)
			fmt.Printf("%-40s %-10s issuer=%-28s status=%-22s chain=%d validity=%dd ct=%v\n",
				sni, v, pki.IssuerOrg(leaf), res.Status, chain.Len(), days,
				world.Log.Contains(leaf))
		}
	}
	fmt.Fprintf(os.Stderr, "probed %d captures, %d failures across %d vantage(s)\n",
		ok, failed, len(vantages))
}
