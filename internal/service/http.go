package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// HTTPOptions tunes the HTTP layer around a Service.
type HTTPOptions struct {
	// RequestTimeout bounds each request's handling (decode + admission
	// or render); 0 means 10s. Slow-client read/write protection is the
	// http.Server's Read/WriteTimeout, configured by cmd/iotlsd.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds a batch POST body; 0 means 8 MiB.
	MaxBodyBytes int64
	// Metrics optionally serves /metrics and counts requests.
	Metrics *obs.Registry
}

func (o HTTPOptions) withDefaults() HTTPOptions {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	return o
}

// wireRecord is the JSON shape of one ClientHello record on the ingest
// API. Raw is standard base64 (encoding/json's []byte convention).
type wireRecord struct {
	DeviceID string    `json:"device_id"`
	Vendor   string    `json:"vendor"`
	Model    string    `json:"model"`
	Type     string    `json:"type"`
	User     string    `json:"user"`
	Time     time.Time `json:"time"`
	SNI      string    `json:"sni"`
	StackID  string    `json:"stack_id"`
	Raw      []byte    `json:"raw"`
}

func (w wireRecord) record() dataset.Record {
	return dataset.Record{
		DeviceID: w.DeviceID, Vendor: w.Vendor, Model: w.Model, Type: w.Type,
		User: w.User, Time: w.Time, SNI: w.SNI, StackID: w.StackID, Raw: w.Raw,
	}
}

// EncodeBatch marshals a batch into the POST /v1/batch body — the
// encoder HTTP-driving load generators use.
func EncodeBatch(source string, records []dataset.Record) ([]byte, error) {
	b := wireBatch{Source: source, Records: make([]wireRecord, len(records))}
	for i, r := range records {
		b.Records[i] = wireRecord{
			DeviceID: r.DeviceID, Vendor: r.Vendor, Model: r.Model, Type: r.Type,
			User: r.User, Time: r.Time, SNI: r.SNI, StackID: r.StackID, Raw: r.Raw,
		}
	}
	return json.Marshal(b)
}

// wireBatch is the POST /v1/batch request body.
type wireBatch struct {
	Source  string       `json:"source"`
	Records []wireRecord `json:"records"`
}

// Handler wires the service's HTTP surface:
//
//	POST /v1/batch  — submit a record batch; 202 accepted, 429 + Retry-After shed
//	GET  /healthz   — liveness: 200 while the process serves
//	GET  /readyz    — readiness: 503 while draining or stalled
//	GET  /statz     — conservation counters, queue depth, latency quantiles (JSON)
//	GET  /v1/serverfp — per-vendor server-stack census for the current epoch (JSON)
//	GET  /quarantinez — retained quarantined-batch log (JSON)
//	GET  /report    — current epoch snapshot report (text)
//	GET  /metrics   — Prometheus exposition (when metrics are attached)
func Handler(s *Service, opts HTTPOptions) http.Handler {
	opts = opts.withDefaults()
	mux := http.NewServeMux()

	withDeadline := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), opts.RequestTimeout)
			defer cancel()
			start := time.Now() //lint:allow noclock HTTP request latency is operator wall-clock telemetry, never analysis input
			h(w, r.WithContext(ctx))
			if m := opts.Metrics; m != nil {
				m.Histogram("service_http_seconds", obs.DurationBuckets, obs.L("path", r.URL.Path)).
					Observe(time.Since(start).Seconds()) //lint:allow noclock paired with the wall-clock start above
			}
		}
	}

	mux.HandleFunc("POST /v1/batch", withDeadline(func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, opts.MaxBodyBytes)
		var batch wireBatch
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&batch); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad batch: %v", err))
			return
		}
		if batch.Source == "" {
			httpError(w, http.StatusBadRequest, "bad batch: source required")
			return
		}
		if len(batch.Records) == 0 {
			httpError(w, http.StatusBadRequest, "bad batch: no records")
			return
		}
		if err := r.Context().Err(); err != nil {
			httpError(w, http.StatusServiceUnavailable, "request deadline exceeded")
			return
		}
		records := make([]dataset.Record, len(batch.Records))
		for i, wr := range batch.Records {
			records[i] = wr.record()
		}
		outcome := s.Submit(batch.Source, records)
		w.Header().Set("Content-Type", "application/json")
		if !outcome.Accepted() {
			retry := int(s.RetryAfter(outcome) / time.Second)
			if retry < 1 {
				retry = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{
				"status": outcome.String(), "retry_after_seconds": retry,
			})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"status": outcome.String()})
	}))

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		status := "ok"
		if s.Draining() {
			status = "draining"
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, status)
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		ready, reason := s.Ready()
		w.Header().Set("Content-Type", "text/plain")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, reason)
	})

	mux.HandleFunc("GET /statz", withDeadline(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats())
	}))

	mux.HandleFunc("GET /v1/serverfp", withDeadline(func(w http.ResponseWriter, r *http.Request) {
		view, err := s.ServerFP(r.Context())
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(view)
	}))

	mux.HandleFunc("GET /quarantinez", withDeadline(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.QuarantineLog())
	}))

	mux.HandleFunc("GET /report", withDeadline(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		s.WriteSnapshotReport(w)
	}))

	if opts.Metrics != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			opts.Metrics.WritePrometheus(w)
		})
	}
	return mux
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
