package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func postBatch(t *testing.T, url, source string, recs []dataset.Record) *http.Response {
	t.Helper()
	body, err := EncodeBatch(source, recs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestHTTPLifecycle walks the full surface: accept, observe, shed with
// Retry-After, drain, readiness flip.
func TestHTTPLifecycle(t *testing.T) {
	recs := testRecords(t)
	s := New(Options{Seed: 21, Workers: 2, QueueDepth: 4, ShedWatermark: 1.0, SourceBudget: 2})
	srv := httptest.NewServer(Handler(s, HTTPOptions{}))
	defer srv.Close()

	if code, body := getBody(t, srv.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := getBody(t, srv.URL+"/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz = %d %q", code, body)
	}

	resp := postBatch(t, srv.URL, "alpha", recs[:20])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("accept POST = %d", resp.StatusCode)
	}
	waitFor(t, "merge", func() bool { return s.Stats().AcceptedBatches == 1 })

	if code, body := getBody(t, srv.URL+"/report"); code != 200 || !strings.Contains(body, "Service Snapshot — epoch 1") {
		t.Fatalf("/report = %d %.80q", code, body)
	}
	if code, body := getBody(t, srv.URL+"/statz"); code != 200 || !strings.Contains(body, `"accepted_batches": 1`) {
		t.Fatalf("/statz = %d %q", code, body)
	}

	// Exhaust one source's budget: the third in-flight batch sheds 429.
	s.PauseWorkers()
	postBatch(t, srv.URL, "beta", recs[:5])
	postBatch(t, srv.URL, "beta", recs[5:10])
	resp = postBatch(t, srv.URL, "beta", recs[10:15])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget POST = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var shed struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	if shed.Status != OutcomeShedSource.String() {
		t.Fatalf("shed status %q, want %q", shed.Status, OutcomeShedSource)
	}
	s.ResumeWorkers()

	// Malformed submissions are 400, not sheds.
	for _, body := range []string{"{", `{"source":"","records":[{}]}`, `{"source":"x","records":[]}`} {
		resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad body %q = %d, want 400", body, resp.StatusCode)
		}
	}

	drain(t, s)
	if code, body := getBody(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining /readyz = %d %q", code, body)
	}
	if code, body := getBody(t, srv.URL+"/healthz"); code != 200 || !strings.Contains(body, "draining") {
		t.Fatalf("draining /healthz = %d %q", code, body)
	}
	resp = postBatch(t, srv.URL, "late", recs[:5])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-drain POST = %d, want 429", resp.StatusCode)
	}
	if !s.Stats().Conserved() {
		t.Fatalf("conservation violated: %+v", s.Stats())
	}
}

// TestHTTPQuarantineLog: a poisoned batch shows up on /quarantinez.
func TestHTTPQuarantineLog(t *testing.T) {
	recs := testRecords(t)
	s := New(Options{Seed: 23, Workers: 1, QueueDepth: 8})
	srv := httptest.NewServer(Handler(s, HTTPOptions{}))
	defer srv.Close()

	resp := postBatch(t, srv.URL, "sick", []dataset.Record{poisoned(recs[0])})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("poison POST = %d (admission cannot see poison)", resp.StatusCode)
	}
	waitFor(t, "quarantine", func() bool { return s.Stats().QuarantinedBatches == 1 })
	code, body := getBody(t, srv.URL+"/quarantinez")
	if code != 200 || !strings.Contains(body, `"sick"`) {
		t.Fatalf("/quarantinez = %d %q", code, body)
	}
	drain(t, s)
}

// TestLoadgenAgainstService: the seeded open-loop generator drives the
// in-process submit path; the report's outcome totals must reconcile
// with the service's own conservation counters. The queue is kept wide
// open so no batch sheds — every poisoned batch must then show up as a
// quarantine, exactly. (Deterministic overload shedding is covered by
// TestOverloadShedDeterministicAndConserved.)
func TestLoadgenAgainstService(t *testing.T) {
	s := New(Options{Seed: 31, Workers: 2, QueueDepth: 256, SourceBudget: 256, BreakerThreshold: 1000})
	rep, err := RunLoad(t.Context(), func(source string, recs []dataset.Record) (Outcome, error) {
		return s.Submit(source, recs), nil
	}, LoadOptions{Seed: 31, Batches: 60, BatchSize: 20, PoisonFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	st := s.Stats()
	if !st.Conserved() {
		t.Fatalf("conservation violated: %+v", st)
	}
	if int64(rep.SubmittedBatches) != st.SubmittedBatches {
		t.Fatalf("loadgen submitted %d, service saw %d", rep.SubmittedBatches, st.SubmittedBatches)
	}
	if rep.Outcomes["accepted"] != st.AcceptedBatches+st.QuarantinedBatches {
		t.Fatalf("admitted mismatch: loadgen %d, service %d+%d",
			rep.Outcomes["accepted"], st.AcceptedBatches, st.QuarantinedBatches)
	}
	if rep.PoisonedBatches == 0 {
		t.Fatal("poison knob inert: seeded run poisoned nothing")
	}
	if st.QuarantinedBatches != int64(rep.PoisonedBatches) {
		t.Fatalf("quarantined %d batches, poisoned %d — with no shedding these must match",
			st.QuarantinedBatches, rep.PoisonedBatches)
	}
	if st.ShedBatches != 0 {
		t.Fatalf("unloaded run shed %d batches", st.ShedBatches)
	}
}

// TestHTTPServerFP: the census endpoint serves the current epoch's
// classifications, caches per epoch, and surfaces counts in /statz.
func TestHTTPServerFP(t *testing.T) {
	recs := testRecords(t)
	s := New(Options{Seed: 33, Workers: 1, QueueDepth: 8})
	srv := httptest.NewServer(Handler(s, HTTPOptions{}))
	defer srv.Close()

	// Epoch 0: empty snapshot, empty census — still a 200.
	code, body := getBody(t, srv.URL+"/v1/serverfp")
	if code != 200 {
		t.Fatalf("/v1/serverfp (epoch 0) = %d %q", code, body)
	}
	var empty ServerFPView
	if err := json.Unmarshal([]byte(body), &empty); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if empty.Epoch != 0 || empty.Targets != 0 {
		t.Fatalf("epoch-0 view = %+v, want empty", empty)
	}

	if resp := postBatch(t, srv.URL, "alpha", recs[:40]); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("accept POST = %d", resp.StatusCode)
	}
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}

	code, body = getBody(t, srv.URL+"/v1/serverfp")
	if code != 200 {
		t.Fatalf("/v1/serverfp = %d %q", code, body)
	}
	var view ServerFPView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if view.Epoch != 1 || view.Targets == 0 || view.BatterySize == 0 {
		t.Fatalf("view = %+v, want epoch 1 with targets", view)
	}
	if view.Accuracy < 0.95 {
		t.Fatalf("census accuracy %.3f, want >= 0.95", view.Accuracy)
	}
	if len(view.Stacks) == 0 || len(view.Vendors) == 0 {
		t.Fatalf("view missing aggregates: %+v", view)
	}

	// Same epoch, second read: served from cache, byte-identical.
	_, again := getBody(t, srv.URL+"/v1/serverfp")
	if again != body {
		t.Fatal("same-epoch serverfp reads differ")
	}
	code, statz := getBody(t, srv.URL+"/statz")
	if code != 200 {
		t.Fatalf("/statz = %d", code)
	}
	var st Stats
	if err := json.Unmarshal([]byte(statz), &st); err != nil {
		t.Fatalf("bad statz JSON: %v", err)
	}
	// Two computations: the epoch-0 empty view and the epoch-1 census.
	if st.ServerFPRuns != 2 || st.ServerFPTargets != int64(view.Targets) {
		t.Fatalf("statz serverfp counts = (%d, %d), want (2, %d)", st.ServerFPRuns, st.ServerFPTargets, view.Targets)
	}
}
