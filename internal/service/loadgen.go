package service

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/probe"
)

// LoadOptions parameterizes the seeded open-loop traffic generator. It
// is open-loop by construction: batches are offered on a fixed cadence
// regardless of outcomes, so an overloaded daemon faces sustained
// arrival pressure instead of a politely backing-off client.
type LoadOptions struct {
	// Seed drives record selection and poisoning; the same seed replays
	// the same traffic.
	Seed int64
	// Scale sizes the synthetic population the records are drawn from.
	Scale float64
	// BatchSize is records per batch (default 25).
	BatchSize int
	// Batches is the total number of submissions (default 200).
	Batches int
	// Sources is how many distinct source identities submit (default 4);
	// batches round-robin across them.
	Sources int
	// Interval is the open-loop submission cadence (default none: offer
	// as fast as the submit function returns).
	Interval time.Duration
	// PoisonFrac corrupts that fraction of batches (seeded) so their
	// wire bytes fail to parse — the quarantine-path chaos knob.
	PoisonFrac float64
	// Clock paces the loop; nil means the wall clock.
	Clock probe.Clock
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 25
	}
	if o.Batches <= 0 {
		o.Batches = 200
	}
	if o.Sources <= 0 {
		o.Sources = 4
	}
	if o.Clock == nil {
		o.Clock = probe.RealClock()
	}
	return o
}

// SubmitFunc offers one batch and reports the admission outcome — the
// in-process form is Service.Submit, the soak form POSTs /v1/batch.
type SubmitFunc func(source string, records []dataset.Record) (Outcome, error)

// LoadReport summarizes one generator run for EXPERIMENTS.md and the CI
// soak artifact.
type LoadReport struct {
	SubmittedBatches int              `json:"submitted_batches"`
	SubmittedRecords int              `json:"submitted_records"`
	PoisonedBatches  int              `json:"poisoned_batches"`
	Outcomes         map[string]int64 `json:"outcomes"`
	Errors           int              `json:"errors"`
	// SubmitP50/P99 are client-side submit call latencies in seconds.
	SubmitP50 float64 `json:"submit_p50_seconds"`
	SubmitP99 float64 `json:"submit_p99_seconds"`
	// ShedRate is shed submissions / total submissions.
	ShedRate float64 `json:"shed_rate"`
	// DurationSeconds is the generator's wall time by its clock.
	DurationSeconds float64 `json:"duration_seconds"`
	// Service is the daemon's own view at the end of the run, when the
	// caller attached it (conservation counters, ingest latency).
	Service *Stats `json:"service,omitempty"`
}

// RunLoad drives submissions against submit until Batches are offered
// or ctx is cancelled. Record selection, batch slicing, and poisoning
// are all seeded; only outcome counts depend on the daemon's state.
func RunLoad(ctx context.Context, submit SubmitFunc, o LoadOptions) (LoadReport, error) {
	o = o.withDefaults()
	ds := dataset.Generate(dataset.Config{Seed: o.Seed, Scale: o.Scale})
	if ds.Records.Len() == 0 {
		return LoadReport{}, fmt.Errorf("service: loadgen: empty dataset at scale %v", o.Scale)
	}
	rep := LoadReport{Outcomes: map[string]int64{}}
	start := o.Clock.Now()
	var lats []float64
	for i := 0; i < o.Batches; i++ {
		if err := ctx.Err(); err != nil {
			break
		}
		source := fmt.Sprintf("source-%02d", i%o.Sources)
		// Slice a seeded window of the record stream, wrapping around.
		lo := int(probe.HashFrac(o.Seed, "loadgen-window", source, "", i) * float64(ds.Records.Len()))
		batch := make([]dataset.Record, o.BatchSize)
		for j := range batch {
			batch[j] = ds.Records.At((lo + j) % ds.Records.Len())
		}
		if o.PoisonFrac > 0 && probe.HashFrac(o.Seed, "loadgen-poison", source, "", i) < o.PoisonFrac {
			r := batch[0]
			r.Raw = []byte{0xff} // unparseable: poisons the whole batch
			batch[0] = r
			rep.PoisonedBatches++
		}
		t0 := o.Clock.Now()
		outcome, err := submit(source, batch)
		lats = append(lats, o.Clock.Now().Sub(t0).Seconds())
		rep.SubmittedBatches++
		rep.SubmittedRecords += len(batch)
		if err != nil {
			rep.Errors++
			rep.Outcomes["error"]++
		} else {
			rep.Outcomes[outcome.String()]++
			if !outcome.Accepted() {
				rep.Outcomes["shed-total"]++
			}
		}
		if o.Interval > 0 && i < o.Batches-1 {
			if err := o.Clock.Sleep(ctx, o.Interval); err != nil {
				break
			}
		}
	}
	rep.DurationSeconds = o.Clock.Now().Sub(start).Seconds()
	if rep.SubmittedBatches > 0 {
		rep.ShedRate = float64(rep.Outcomes["shed-total"]+rep.Outcomes["error"]) / float64(rep.SubmittedBatches)
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		q := func(f float64) float64 { return lats[int(f*float64(len(lats)-1))] }
		rep.SubmitP50, rep.SubmitP99 = q(0.50), q(0.99)
	}
	return rep, nil
}
