package service

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/probe"
	"repro/internal/serverfp"
	"repro/internal/simnet"
)

// ServerFPView is the JSON shape of GET /v1/serverfp: the active
// server-stack fingerprinting census over the SNIs observed in the
// current epoch snapshot, grouped per stack and per vendor.
type ServerFPView struct {
	// Epoch is the snapshot the census was computed against.
	Epoch int64 `json:"epoch"`
	// Targets is the number of fingerprinted hosts.
	Targets int `json:"targets"`
	// BatterySize is the number of crafted hellos sent per host.
	BatterySize int `json:"battery_size"`
	// Accuracy against the simulated world's ground truth.
	Accuracy float64 `json:"accuracy"`
	// Stacks aggregates targets per classified stack label.
	Stacks []ServerFPStack `json:"stacks"`
	// Vendors correlates device vendors with backend stacks.
	Vendors []ServerFPVendor `json:"vendors"`
}

// ServerFPStack is one per-label aggregate row.
type ServerFPStack struct {
	Stack          string  `json:"stack"`
	Servers        int     `json:"servers"`
	MeanConfidence float64 `json:"mean_confidence"`
}

// ServerFPVendor is one (vendor, stack) correlation row.
type ServerFPVendor struct {
	Vendor  string `json:"vendor"`
	Stack   string `json:"stack"`
	Servers int    `json:"servers"`
}

// ServerFP computes (or returns the cached) fingerprinting census for
// the current epoch snapshot. The census is derived state: it is
// rebuilt only when the epoch moves, so repeated reads are free and two
// reads of the same epoch see the identical view. Snapshot reads stay
// lock-free; only census computation serializes on its own mutex.
func (s *Service) ServerFP(ctx context.Context) (*ServerFPView, error) {
	snap := s.Snapshot()
	s.sfpMu.Lock()
	defer s.sfpMu.Unlock()
	if s.sfpView != nil && s.sfpView.Epoch == snap.Epoch {
		return s.sfpView, nil
	}
	snis := make([]string, 0, len(snap.Client.SNIDevices))
	for sni := range snap.Client.SNIDevices {
		snis = append(snis, sni)
	}
	// simnet.Build seeds per-server state off its own rng stream, so the
	// SNI list must enter in a canonical order for the census to be a
	// pure function of the snapshot.
	sort.Strings(snis)
	view := &ServerFPView{Epoch: snap.Epoch}
	if len(snis) > 0 {
		// The world seed mirrors the batch pipeline's (cfg.Seed + 1), so
		// the daemon fingerprints the same simulated backends a core.Run
		// over the accepted records would probe.
		world := simnet.Build(simnet.Config{Seed: s.opts.Seed + 1, SNIs: snis})
		census, err := serverfp.Fingerprint(ctx, world, snis, simnet.VantageNewYork, probe.Options{
			Workers: s.opts.Workers,
			Seed:    s.opts.Seed,
			Clock:   s.opts.Clock,
		})
		if err != nil {
			return nil, fmt.Errorf("service: serverfp: %w", err)
		}
		view.Targets = len(census.Targets)
		view.BatterySize = census.BatterySize
		view.Accuracy = census.Accuracy()
		for _, lc := range census.LabelCounts() {
			view.Stacks = append(view.Stacks, ServerFPStack{
				Stack: lc.Label, Servers: lc.Servers, MeanConfidence: lc.MeanConf,
			})
		}
		for _, vs := range census.VendorStacks() {
			view.Vendors = append(view.Vendors, ServerFPVendor{
				Vendor: vs.Vendor, Stack: vs.Label, Servers: vs.Servers,
			})
		}
	}
	s.sfpView = view
	s.sfpRuns.Add(1)
	s.sfpTargets.Store(int64(view.Targets))
	return view, nil
}
