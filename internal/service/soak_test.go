package service

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSnapshotReadersDuringIngest is the race soak: sustained
// concurrent submissions from several sources while reader goroutines
// continuously load snapshots, render reports, and poll readiness and
// stats. Under -race this proves the epoch-snapshot publication is
// data-race free; afterwards the drained state must be conserved and
// the final snapshot must account for every accepted record.
func TestConcurrentSnapshotReadersDuringIngest(t *testing.T) {
	recs := testRecords(t)
	s := New(Options{Seed: 13, Workers: 4, QueueDepth: 256, SourceBudget: 256})

	const writers = 4
	const batchesPerWriter = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: hammer the lock-free read surface.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				if snap.Client.NumFingerprints() < 0 {
					t.Error("impossible fingerprint count")
					return
				}
				_ = snap.Client.Table2()
				s.Ready()
				s.Stats()
				if n%50 == 0 {
					s.WriteSnapshotReport(io.Discard)
				}
			}
		}(i)
	}

	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < batchesPerWriter; i++ {
				lo := ((w*batchesPerWriter + i) * 7) % (len(recs) - 10)
				s.Submit(fmt.Sprintf("writer-%d", w), recs[lo:lo+10])
			}
		}(w)
	}
	writerWg.Wait()
	drain(t, s)
	close(stop)
	wg.Wait()

	st := s.Stats()
	if !st.Conserved() {
		t.Fatalf("conservation violated after soak: %+v", st)
	}
	if st.SubmittedBatches != writers*batchesPerWriter {
		t.Fatalf("submitted %d, want %d", st.SubmittedBatches, writers*batchesPerWriter)
	}
	snap := s.Snapshot()
	if snap.Records != st.AcceptedRecords {
		t.Fatalf("final snapshot has %d records, stats accepted %d", snap.Records, st.AcceptedRecords)
	}
	if snap.Epoch != st.AcceptedBatches {
		t.Fatalf("final epoch %d, accepted batches %d", snap.Epoch, st.AcceptedBatches)
	}
}

// TestDrainMidLoadWithinDeadline: a drain initiated while submitters
// are still firing (the SIGTERM scenario) finishes inside its deadline,
// sheds the late arrivals as draining, and conserves every batch.
func TestDrainMidLoadWithinDeadline(t *testing.T) {
	recs := testRecords(t)
	s := New(Options{
		Seed: 17, Workers: 2, QueueDepth: 64, SourceBudget: 64,
		ChaosSlow: time.Millisecond, // keep the queue non-trivially full at drain time
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lo := ((w*1000 + i) * 3) % (len(recs) - 5)
				s.Submit(fmt.Sprintf("load-%d", w), recs[lo:lo+5])
			}
		}(w)
	}

	waitFor(t, "sustained load", func() bool { return s.Stats().SubmittedBatches > 20 })
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.AwaitDrain(ctx); err != nil {
		t.Fatalf("drain missed its deadline: %v", err)
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	if !st.Conserved() {
		t.Fatalf("conservation violated: %+v", st)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("drained queue still holds %d batches", st.QueueDepth)
	}
	if ok, reason := s.Ready(); ok || reason != "draining" {
		t.Fatalf("drained service readiness: ok=%v reason=%q", ok, reason)
	}
}
