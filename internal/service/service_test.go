package service

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/probe"
)

var testData struct {
	once sync.Once
	recs []dataset.Record
}

// testRecords returns a small shared record stream (~hundreds of
// records) all service tests batch from.
func testRecords(t *testing.T) []dataset.Record {
	t.Helper()
	testData.once.Do(func() {
		ds := dataset.Generate(dataset.Config{Seed: 11, Scale: 0.02})
		testData.recs = ds.Records.Rows()
	})
	if len(testData.recs) < 100 {
		t.Fatalf("test dataset too small: %d records", len(testData.recs))
	}
	return testData.recs
}

// batches slices recs into n-record batches.
func batches(recs []dataset.Record, n int) [][]dataset.Record {
	var out [][]dataset.Record
	for lo := 0; lo < len(recs); lo += n {
		hi := lo + n
		if hi > len(recs) {
			hi = len(recs)
		}
		out = append(out, recs[lo:hi])
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timeout waiting for %s", what)
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func drain(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func poisoned(r dataset.Record) dataset.Record {
	r.Raw = []byte{0xff}
	return r
}

// TestDeltaMergeMatchesBatch: a client grown batch-by-batch through the
// service equals the batch analysis over the same records — counts,
// maps, and rendered report bytes.
func TestDeltaMergeMatchesBatch(t *testing.T) {
	recs := testRecords(t)
	s := New(Options{Seed: 1, Workers: 3, QueueDepth: 4096, SourceBudget: 4096})
	for i, b := range batches(recs, 37) {
		if got := s.Submit(fmt.Sprintf("src-%d", i%5), b); !got.Accepted() {
			t.Fatalf("batch %d: outcome %v", i, got)
		}
	}
	drain(t, s)

	st := s.Stats()
	if !st.Conserved() {
		t.Fatalf("conservation violated: %+v", st)
	}
	if st.AcceptedRecords != int64(len(recs)) {
		t.Fatalf("accepted %d records, want %d", st.AcceptedRecords, len(recs))
	}

	batch, err := analysis.NewClientWorkers(dataset.FromRecords(recs), 3)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Client.NumFingerprints() != batch.NumFingerprints() {
		t.Fatalf("fingerprints: service %d, batch %d", snap.Client.NumFingerprints(), batch.NumFingerprints())
	}
	if !reflect.DeepEqual(snap.Client.VersionCounts, batch.VersionCounts) {
		t.Fatalf("version counts diverge:\nservice %v\nbatch   %v", snap.Client.VersionCounts, batch.VersionCounts)
	}
	if !reflect.DeepEqual(snap.Client.DevicePrints, batch.DevicePrints) {
		t.Fatal("device->fingerprint maps diverge")
	}

	var got, want bytes.Buffer
	snap.WriteReport(&got, s.matcher, 2)
	alt := &Snapshot{Epoch: snap.Epoch, Batches: snap.Batches, Records: snap.Records, At: snap.At, Client: batch}
	alt.WriteReport(&want, s.matcher, 5)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("snapshot report bytes diverge from batch render (%d vs %d bytes)", got.Len(), want.Len())
	}
}

// TestOverloadShedDeterministicAndConserved: with workers paused the
// admission sequence is a pure function of the seed and submit order,
// so two identical runs shed identically; conservation holds after the
// drain either way.
func TestOverloadShedDeterministicAndConserved(t *testing.T) {
	recs := testRecords(t)
	run := func() ([]Outcome, Stats) {
		clk := probe.NewFakeClock(time.Unix(0, 0))
		s := New(Options{
			Seed: 42, Workers: 2, QueueDepth: 8, ShedWatermark: 0.5,
			SourceBudget: 3, Clock: clk,
		})
		s.PauseWorkers()
		var outs []Outcome
		for i := 0; i < 40; i++ {
			lo := (i * 5) % (len(recs) - 5)
			outs = append(outs, s.Submit(fmt.Sprintf("src-%d", i%4), recs[lo:lo+5]))
		}
		s.ResumeWorkers()
		drain(t, s)
		return outs, s.Stats()
	}
	o1, st1 := run()
	o2, st2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("shed decisions not deterministic:\n%v\n%v", o1, o2)
	}
	if !st1.Conserved() || !st2.Conserved() {
		t.Fatalf("conservation violated: %+v / %+v", st1, st2)
	}
	if st1.ShedBatches == 0 {
		t.Fatal("overload run shed nothing; test misconfigured")
	}
	if st1.AcceptedBatches == 0 {
		t.Fatal("overload run accepted nothing; test misconfigured")
	}
	if st1.SubmittedBatches != 40 {
		t.Fatalf("submitted %d, want 40", st1.SubmittedBatches)
	}
	// The shed decisions must also cover every category the run hit:
	// queue pressure and source budgets both bind with these settings.
	seen := map[Outcome]bool{}
	for _, o := range o1 {
		seen[o] = true
	}
	if !seen[OutcomeShedSource] {
		t.Fatal("source budget never bound; test misconfigured")
	}
	if !seen[OutcomeShedQueue] {
		t.Fatal("queue shedding never bound; test misconfigured")
	}
}

// TestPoisonQuarantineOpensBreaker: poisoned batches are quarantined,
// repeated poison opens the source's breaker (admission fast-fails),
// and the cooldown lets a half-open trial close it again.
func TestPoisonQuarantineOpensBreaker(t *testing.T) {
	recs := testRecords(t)
	clk := probe.NewFakeClock(time.Unix(0, 0))
	s := New(Options{
		Seed: 7, Workers: 1, QueueDepth: 16,
		BreakerThreshold: 2, BreakerCooldown: time.Minute, Clock: clk,
	})
	bad := []dataset.Record{poisoned(recs[0]), recs[1]}

	for i := 0; i < 2; i++ {
		if got := s.Submit("sick", bad); !got.Accepted() {
			t.Fatalf("poison batch %d: outcome %v", i, got)
		}
		waitFor(t, "quarantine", func() bool {
			return s.Stats().QuarantinedBatches == int64(i+1)
		})
	}
	if got := s.Submit("sick", recs[:3]); got != OutcomeShedBreaker {
		t.Fatalf("after %d quarantines: outcome %v, want shed-breaker", 2, got)
	}
	// Healthy sources are unaffected.
	if got := s.Submit("healthy", recs[:3]); !got.Accepted() {
		t.Fatalf("healthy source: outcome %v", got)
	}
	// After the cooldown a half-open trial is admitted; its success
	// closes the breaker.
	clk.Advance(2 * time.Minute)
	if got := s.Submit("sick", recs[3:6]); !got.Accepted() {
		t.Fatalf("half-open trial: outcome %v", got)
	}
	waitFor(t, "trial merge", func() bool { return s.Stats().AcceptedBatches >= 2 })
	if got := s.Submit("sick", recs[6:9]); !got.Accepted() {
		t.Fatalf("after recovery: outcome %v", got)
	}
	drain(t, s)
	st := s.Stats()
	if !st.Conserved() {
		t.Fatalf("conservation violated: %+v", st)
	}
	log := s.QuarantineLog()
	if len(log) != 2 {
		t.Fatalf("quarantine log has %d entries, want 2", len(log))
	}
	if log[0].Source != "sick" || !strings.Contains(log[0].Reason, "record 0") {
		t.Fatalf("unexpected quarantine entry: %+v", log[0])
	}
}

// TestPanicIsolation: a panicking worker quarantines the batch and the
// daemon keeps serving — the poison never kills the process.
func TestPanicIsolation(t *testing.T) {
	recs := testRecords(t)
	s := New(Options{Seed: 3, Workers: 2, QueueDepth: 32, ChaosPanicFrac: 1.0, BreakerThreshold: 1000})
	for i := 0; i < 5; i++ {
		if got := s.Submit("src", recs[i*3:i*3+3]); !got.Accepted() {
			t.Fatalf("batch %d: outcome %v", i, got)
		}
	}
	drain(t, s)
	st := s.Stats()
	if st.QuarantinedBatches != 5 || st.AcceptedBatches != 0 {
		t.Fatalf("want 5 quarantined / 0 accepted, got %+v", st)
	}
	if !st.Conserved() {
		t.Fatalf("conservation violated: %+v", st)
	}
	for _, q := range s.QuarantineLog() {
		if !strings.Contains(q.Reason, "panic") {
			t.Fatalf("quarantine reason %q does not mention panic", q.Reason)
		}
	}
}

// TestWatchdogAndReadiness: a wedged pipeline (queued work, no
// progress) fails readiness after StallTimeout; progress or an empty
// queue restores it; draining fails it permanently.
func TestWatchdogAndReadiness(t *testing.T) {
	recs := testRecords(t)
	clk := probe.NewFakeClock(time.Unix(0, 0))
	s := New(Options{Seed: 5, Workers: 1, QueueDepth: 16, StallTimeout: 10 * time.Second, Clock: clk})
	if ok, reason := s.Ready(); !ok {
		t.Fatalf("fresh service not ready: %s", reason)
	}
	s.PauseWorkers()
	if got := s.Submit("src", recs[:4]); !got.Accepted() {
		t.Fatalf("outcome %v", got)
	}
	clk.Advance(11 * time.Second)
	if ok, reason := s.Ready(); ok || !strings.Contains(reason, "stalled") {
		t.Fatalf("want stalled readiness failure, got ok=%v reason=%q", ok, reason)
	}
	s.ResumeWorkers()
	waitFor(t, "queue flush", func() bool { return s.Stats().QueueDepth == 0 })
	if ok, reason := s.Ready(); !ok {
		t.Fatalf("recovered service not ready: %s", reason)
	}
	s.BeginDrain()
	if ok, reason := s.Ready(); ok || reason != "draining" {
		t.Fatalf("draining service: ok=%v reason=%q", ok, reason)
	}
	if got := s.Submit("src", recs[:4]); got != OutcomeShedDraining {
		t.Fatalf("submit during drain: outcome %v", got)
	}
	drain(t, s)
	if !s.Stats().Conserved() {
		t.Fatalf("conservation violated: %+v", s.Stats())
	}
}

// TestFinalReportRequiresDrain: the batch-equivalent report is only
// defined at a quiescent point.
func TestFinalReportRequiresDrain(t *testing.T) {
	s := New(Options{Seed: 9, Workers: 1})
	var buf bytes.Buffer
	if err := s.FinalReport(context.Background(), &buf, core.DefaultConfig()); err == nil {
		t.Fatal("FinalReport before drain succeeded")
	}
	drain(t, s)
}
