// Package service is the resident analysis daemon behind cmd/iotlsd: it
// accepts ClientHello record batches from many sources, pushes them
// through a bounded ingest queue with explicit backpressure and
// seeded-deterministic load shedding, and maintains incrementally merged
// analysis state published as immutable epoch snapshots, so report and
// metrics reads are consistent and lock-free while ingestion continues.
//
// Robustness is the design center. Admission control reuses the probe
// engine's patterns — a per-source in-queue budget (token-style) and a
// per-source circuit breaker fed by poisoned batches — and sheds load
// with probe.HashFrac, so overload behaviour replays exactly under a
// seed. Workers are panic-isolated: a poisoned batch is quarantined and
// counted, never allowed to kill the daemon. A drain (SIGTERM) stops
// admission, flushes the queue, and publishes a final snapshot whose
// batch-pipeline report is byte-identical to a core.Run over the same
// accepted records. The conservation invariant — accepted + shed +
// quarantined == submitted — holds at every drained quiescent point.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/libcorpus"
	"repro/internal/obs"
	"repro/internal/probe"
)

// Options tunes the daemon. The zero value is usable: withDefaults
// fills in conservative production settings.
type Options struct {
	// Seed drives every shedding and chaos decision via probe.HashFrac,
	// so an overload run replays decision-for-decision.
	Seed int64
	// Workers is the number of ingest workers draining the queue.
	Workers int
	// QueueDepth bounds the ingest queue (in batches); admission above
	// it is shed with 429 semantics.
	QueueDepth int
	// ShedWatermark is the queue-depth fraction where seeded
	// probabilistic shedding begins, ramping linearly to certainty at a
	// full queue. 1.0 sheds only when the queue is full.
	ShedWatermark float64
	// SourceBudget caps the batches one source may have in the queue —
	// the admission token budget that keeps a single flooding source
	// from monopolizing the queue.
	SourceBudget int
	// BreakerThreshold / BreakerCooldown arm the per-source circuit
	// breaker: threshold consecutive quarantined batches open it, and
	// admission fast-fails until the cooldown elapses.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// StallTimeout is the watchdog horizon: a non-empty pipeline with no
	// merge or quarantine for this long fails readiness instead of
	// letting clients keep feeding a wedged daemon.
	StallTimeout time.Duration
	// ChaosPanicFrac injects a seeded worker panic on that fraction of
	// batches — the panic-isolation soak knob. 0 disables.
	ChaosPanicFrac float64
	// ChaosSlow sleeps each batch for this long before merging — the
	// slow-consumer knob that forces queue growth. 0 disables.
	ChaosSlow time.Duration
	// Clock supplies time for shedding, breakers, and the watchdog.
	// nil means the wall clock; tests inject a probe.FakeClock.
	Clock probe.Clock
	// Metrics optionally receives queue-depth/epoch gauges, conservation
	// counters, and the ingest latency histogram. nil costs nothing.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.ShedWatermark <= 0 || o.ShedWatermark > 1 {
		o.ShedWatermark = 0.75
	}
	if o.SourceBudget <= 0 {
		o.SourceBudget = 8
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 30 * time.Second
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 30 * time.Second
	}
	if o.Clock == nil {
		o.Clock = probe.RealClock()
	}
	return o
}

// Outcome classifies one Submit decision.
type Outcome int

const (
	// OutcomeAccepted: the batch was admitted to the queue. It will be
	// merged (counting as accepted) or quarantined, never dropped.
	OutcomeAccepted Outcome = iota
	// OutcomeShedQueue: the queue was full or above the shed watermark
	// and the seeded coin said shed.
	OutcomeShedQueue
	// OutcomeShedSource: the source exhausted its in-queue budget.
	OutcomeShedSource
	// OutcomeShedBreaker: the source's circuit breaker is open after
	// repeated poisoned batches.
	OutcomeShedBreaker
	// OutcomeShedDraining: the daemon is draining and admits nothing.
	OutcomeShedDraining
)

// Accepted reports whether the batch was admitted.
func (o Outcome) Accepted() bool { return o == OutcomeAccepted }

// String names the outcome for responses and logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeAccepted:
		return "accepted"
	case OutcomeShedQueue:
		return "shed-queue"
	case OutcomeShedSource:
		return "shed-source-budget"
	case OutcomeShedBreaker:
		return "shed-breaker"
	default:
		return "shed-draining"
	}
}

// OutcomeFromString parses an Outcome's String form — the HTTP load
// generator's decoder for /v1/batch response statuses.
func OutcomeFromString(s string) (Outcome, bool) {
	for _, o := range []Outcome{
		OutcomeAccepted, OutcomeShedQueue, OutcomeShedSource, OutcomeShedBreaker, OutcomeShedDraining,
	} {
		if o.String() == s {
			return o, true
		}
	}
	return 0, false
}

// Stats is one consistent read of the conservation counters and queue
// state. After a drain, SubmittedBatches == AcceptedBatches +
// ShedBatches + QuarantinedBatches (and likewise for records).
type Stats struct {
	SubmittedBatches   int64 `json:"submitted_batches"`
	SubmittedRecords   int64 `json:"submitted_records"`
	AcceptedBatches    int64 `json:"accepted_batches"`
	AcceptedRecords    int64 `json:"accepted_records"`
	ShedBatches        int64 `json:"shed_batches"`
	ShedRecords        int64 `json:"shed_records"`
	QuarantinedBatches int64 `json:"quarantined_batches"`
	QuarantinedRecords int64 `json:"quarantined_records"`
	Epoch              int64 `json:"epoch"`
	QueueDepth         int   `json:"queue_depth"`
	// SnapshotAgeSeconds is the staleness of the published snapshot.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// IngestP50/P99 are admission-to-merge latencies in seconds.
	IngestP50 float64 `json:"ingest_p50_seconds"`
	IngestP99 float64 `json:"ingest_p99_seconds"`
	// ServerFPRuns counts census computations (one per epoch actually
	// read through /v1/serverfp); ServerFPTargets is the host count of
	// the latest census.
	ServerFPRuns    int64 `json:"serverfp_runs"`
	ServerFPTargets int64 `json:"serverfp_targets"`
}

// Conserved reports the conservation invariant: every submitted batch
// and record is accounted for as accepted, shed, or quarantined. It is
// guaranteed only at quiescent points (after Drain); in flight, queued
// batches are none of the three yet.
func (s Stats) Conserved() bool {
	return s.SubmittedBatches == s.AcceptedBatches+s.ShedBatches+s.QuarantinedBatches &&
		s.SubmittedRecords == s.AcceptedRecords+s.ShedRecords+s.QuarantinedRecords
}

// Quarantined describes one poisoned batch set aside by a worker.
type Quarantined struct {
	Source  string `json:"source"`
	Seq     int    `json:"seq"`
	Records int    `json:"records"`
	Reason  string `json:"reason"`
}

// batchItem is one admitted batch in flight.
type batchItem struct {
	seq     int
	source  string
	records []dataset.Record
	at      time.Time
}

// Service is the resident ingest-and-analyze daemon core, transport
// agnostic: Handler wraps it in HTTP, tests drive Submit directly.
type Service struct {
	opts    Options
	matcher *fingerprint.Matcher // shared by every snapshot report render

	// mu guards admission: lifecycle flag, queue sends, per-source
	// budgets and breakers, and the submission sequence. depth counts
	// admitted-but-uncompleted batches; unlike len(queue) it moves only
	// at admission and completion, never at dequeue, so shed decisions
	// are a pure function of the submit/completion interleaving.
	mu       sync.Mutex
	draining bool
	queue    chan batchItem
	depth    int
	inQueue  map[string]int
	breakers map[string]*probe.Breaker
	seq      int
	quars    []Quarantined

	// stateMu guards the live merged client and the accepted record
	// log; snapshots are deep clones published through snap.
	stateMu  sync.Mutex
	live     *analysis.Client
	accepted []dataset.Record
	batches  int64
	snap     atomic.Pointer[Snapshot]

	// lastActivity is the watchdog heartbeat: unix nanos of the last
	// merge or quarantine (or service start).
	lastActivity atomic.Int64

	latMu     sync.Mutex
	latencies []float64

	// sfpMu guards the per-epoch server-fingerprint census cache
	// (serverfp.go); sfpRuns/sfpTargets feed /statz.
	sfpMu      sync.Mutex
	sfpView    *ServerFPView
	sfpRuns    atomic.Int64
	sfpTargets atomic.Int64

	submittedB, submittedR     atomic.Int64
	acceptedB, acceptedR       atomic.Int64
	shedB, shedR               atomic.Int64
	quarantinedB, quarantinedR atomic.Int64

	gate   *gate
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// New builds and starts the service: workers begin draining the queue
// immediately. Stop it with Drain.
func New(opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		opts:     opts,
		queue:    make(chan batchItem, opts.QueueDepth),
		inQueue:  map[string]int{},
		breakers: map[string]*probe.Breaker{},
		live:     analysis.NewClientEmpty(),
		gate:     newGate(),
	}
	s.matcher = libcorpus.NewMatcher()
	s.ctx, s.cancel = context.WithCancel(context.Background())
	now := opts.Clock.Now()
	s.lastActivity.Store(now.UnixNano())
	s.snap.Store(&Snapshot{At: now, Client: analysis.NewClientEmpty()})
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit offers one batch for admission. The decision is immediate —
// admission never blocks on the workers — and deterministic given the
// seed and the interleaving of submissions and merges.
func (s *Service) Submit(source string, records []dataset.Record) Outcome {
	s.submittedB.Add(1)
	s.submittedR.Add(int64(len(records)))

	s.mu.Lock()
	seq := s.seq
	s.seq++
	if s.draining {
		s.mu.Unlock()
		return s.shed(source, records, OutcomeShedDraining)
	}
	now := s.opts.Clock.Now()
	br := s.breakers[source]
	if br == nil {
		br = probe.NewBreaker(s.opts.BreakerThreshold, s.opts.BreakerCooldown)
		s.breakers[source] = br
	}
	if !br.Allow(now) {
		s.mu.Unlock()
		return s.shed(source, records, OutcomeShedBreaker)
	}
	if s.inQueue[source] >= s.opts.SourceBudget {
		s.mu.Unlock()
		return s.shed(source, records, OutcomeShedSource)
	}
	if s.depth >= s.opts.QueueDepth {
		s.mu.Unlock()
		return s.shed(source, records, OutcomeShedQueue)
	}
	if wm := int(float64(s.opts.QueueDepth) * s.opts.ShedWatermark); s.depth >= wm {
		// Above the watermark, shed a seeded fraction that ramps
		// linearly from ~0 at the watermark to 1 at a full queue, so
		// backpressure arrives before the hard limit does.
		frac := float64(s.depth-wm+1) / float64(s.opts.QueueDepth-wm+1)
		if probe.HashFrac(s.opts.Seed, "shed", source, "", seq) < frac {
			s.mu.Unlock()
			return s.shed(source, records, OutcomeShedQueue)
		}
	}
	s.inQueue[source]++
	s.depth++
	// Holding mu with depth < QueueDepth guarantees this send cannot
	// block: Submit is the only sender, items leave the channel no
	// later than they complete, and the channel's capacity matches the
	// depth bound.
	s.queue <- batchItem{seq: seq, source: source, records: records, at: now}
	s.mu.Unlock()
	s.gauges()
	return OutcomeAccepted
}

func (s *Service) shed(source string, records []dataset.Record, o Outcome) Outcome {
	s.shedB.Add(1)
	s.shedR.Add(int64(len(records)))
	if m := s.opts.Metrics; m != nil {
		m.Counter("service_shed_total", obs.L("reason", o.String()), obs.L("source", source)).Inc()
	}
	return o
}

// RetryAfter suggests how long a shed source should wait before
// resubmitting: the breaker cooldown when the breaker said no,
// otherwise one second of queue backoff.
func (s *Service) RetryAfter(o Outcome) time.Duration {
	if o == OutcomeShedBreaker {
		return s.opts.BreakerCooldown
	}
	return time.Second
}

func (s *Service) worker() {
	defer s.wg.Done()
	for item := range s.queue {
		// The gate sits between dequeue and processing: PauseWorkers
		// freezes completions (and therefore depth and budgets) without
		// affecting what admission sees.
		s.gate.wait()
		s.process(item)
		s.mu.Lock()
		s.depth--
		if s.inQueue[item.source]--; s.inQueue[item.source] <= 0 {
			delete(s.inQueue, item.source)
		}
		s.mu.Unlock()
		s.gauges()
	}
}

// process merges one batch, quarantining on parse failure or panic. The
// recover is the daemon's panic isolation: a poisoned batch costs a
// counter and a quarantine entry, never the process.
func (s *Service) process(item batchItem) {
	defer func() {
		if r := recover(); r != nil {
			s.quarantine(item, fmt.Sprintf("panic: %v", r))
		}
	}()
	if f := s.opts.ChaosPanicFrac; f > 0 &&
		probe.HashFrac(s.opts.Seed, "chaos-panic", item.source, "", item.seq) < f {
		panic("service: chaos: injected worker panic")
	}
	if d := s.opts.ChaosSlow; d > 0 {
		if err := s.opts.Clock.Sleep(s.ctx, d); err != nil {
			s.quarantine(item, fmt.Sprintf("aborted: %v", err))
			return
		}
	}
	delta, err := analysis.NewDelta(item.records)
	if err != nil {
		s.quarantine(item, err.Error())
		return
	}

	s.stateMu.Lock()
	s.live.MergeDelta(delta)
	s.accepted = append(s.accepted, item.records...)
	s.batches++
	now := s.opts.Clock.Now()
	snap := &Snapshot{
		Epoch:   s.batches,
		Batches: s.batches,
		Records: int64(len(s.accepted)),
		At:      now,
		Client:  s.live.Clone(),
	}
	// Publish while still holding stateMu: two workers finishing merges
	// back-to-back must store their snapshots in epoch order, or a stale
	// epoch could overwrite a newer one and survive as "final". Readers
	// stay lock-free either way — they only load the pointer.
	s.snap.Store(snap)
	s.stateMu.Unlock()

	s.lastActivity.Store(now.UnixNano())
	s.acceptedB.Add(1)
	s.acceptedR.Add(int64(len(item.records)))
	lat := now.Sub(item.at).Seconds()
	s.latMu.Lock()
	s.latencies = append(s.latencies, lat)
	s.latMu.Unlock()
	if m := s.opts.Metrics; m != nil {
		m.Histogram("service_ingest_seconds", obs.DurationBuckets).Observe(lat)
		m.Counter("service_accepted_records_total").Add(int64(len(item.records)))
		m.Gauge("service_epoch").Set(snap.Epoch)
	}
	s.mu.Lock()
	br := s.breakers[item.source]
	s.mu.Unlock()
	br.Success()
}

func (s *Service) quarantine(item batchItem, reason string) {
	s.quarantinedB.Add(1)
	s.quarantinedR.Add(int64(len(item.records)))
	now := s.opts.Clock.Now()
	s.lastActivity.Store(now.UnixNano())
	s.mu.Lock()
	s.quars = append(s.quars, Quarantined{
		Source: item.source, Seq: item.seq, Records: len(item.records), Reason: reason,
	})
	if len(s.quars) > 64 {
		s.quars = s.quars[len(s.quars)-64:]
	}
	br := s.breakers[item.source]
	s.mu.Unlock()
	if br != nil {
		br.Failure(now)
	}
	if m := s.opts.Metrics; m != nil {
		m.Counter("service_quarantined_total", obs.L("source", item.source)).Inc()
	}
}

func (s *Service) gauges() {
	if m := s.opts.Metrics; m != nil {
		s.mu.Lock()
		depth := s.depth
		s.mu.Unlock()
		m.Gauge("service_queue_depth").Set(int64(depth))
	}
}

// PauseWorkers holds every worker before its next dequeue — the
// slow-consumer chaos knob, and the lever deterministic tests use to
// control the admission interleaving.
func (s *Service) PauseWorkers() { s.gate.pause() }

// ResumeWorkers releases paused workers.
func (s *Service) ResumeWorkers() { s.gate.resume() }

// BeginDrain stops admission: every later Submit sheds with
// OutcomeShedDraining and readiness reports draining. Idempotent.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.gate.resume() // a paused daemon must still be able to drain
}

// AwaitDrain waits for the workers to flush the queue after BeginDrain.
// On deadline it cancels in-flight chaos sleeps and reports an error —
// the only path on which accepted batches can be lost.
func (s *Service) AwaitDrain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}

// Drain is BeginDrain + AwaitDrain: stop accepting, flush the queue,
// leave the final snapshot published.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	return s.AwaitDrain(ctx)
}

// Draining reports whether BeginDrain has run.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Ready is the readiness probe: false while draining, and false when
// the watchdog sees a non-empty pipeline with no merge or quarantine
// for StallTimeout (a wedged daemon must stop attracting traffic).
func (s *Service) Ready() (bool, string) {
	s.mu.Lock()
	draining := s.draining
	depth := s.depth
	s.mu.Unlock()
	if draining {
		return false, "draining"
	}
	if depth > 0 {
		idle := s.opts.Clock.Now().Sub(time.Unix(0, s.lastActivity.Load()))
		if idle > s.opts.StallTimeout {
			return false, fmt.Sprintf("stalled: no progress for %s with %d batches pending", idle, depth)
		}
	}
	return true, "ready"
}

// Stats reads the counters. Conservation is guaranteed after Drain.
func (s *Service) Stats() Stats {
	st := Stats{
		SubmittedBatches:   s.submittedB.Load(),
		SubmittedRecords:   s.submittedR.Load(),
		AcceptedBatches:    s.acceptedB.Load(),
		AcceptedRecords:    s.acceptedR.Load(),
		ShedBatches:        s.shedB.Load(),
		ShedRecords:        s.shedR.Load(),
		QuarantinedBatches: s.quarantinedB.Load(),
		QuarantinedRecords: s.quarantinedR.Load(),
	}
	s.mu.Lock()
	st.QueueDepth = s.depth
	s.mu.Unlock()
	if snap := s.snap.Load(); snap != nil {
		st.Epoch = snap.Epoch
		st.SnapshotAgeSeconds = s.opts.Clock.Now().Sub(snap.At).Seconds()
	}
	st.IngestP50, st.IngestP99 = s.latencyQuantiles()
	st.ServerFPRuns = s.sfpRuns.Load()
	st.ServerFPTargets = s.sfpTargets.Load()
	return st
}

func (s *Service) latencyQuantiles() (p50, p99 float64) {
	s.latMu.Lock()
	lats := append([]float64(nil), s.latencies...)
	s.latMu.Unlock()
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Float64s(lats)
	q := func(f float64) float64 {
		i := int(f * float64(len(lats)-1))
		return lats[i]
	}
	return q(0.50), q(0.99)
}

// QuarantineLog returns the retained quarantine entries, newest last.
func (s *Service) QuarantineLog() []Quarantined {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Quarantined(nil), s.quars...)
}

// AcceptedRecords copies the accepted record log — the exact input a
// batch core.Run needs to reproduce the drained daemon's final report.
func (s *Service) AcceptedRecords() []dataset.Record {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return append([]dataset.Record(nil), s.accepted...)
}

// ErrNotDrained: FinalReport requires a drained daemon; mid-flight the
// accepted log is still moving.
var ErrNotDrained = errors.New("service: final report requires a drained service")

// FinalReport runs the full batch pipeline (including the probe world)
// over the accepted records and writes the study report. cfg supplies
// Seed/Scale/MinSNIUsers/Workers; the dataset is always the canonical
// reconstruction of the accepted log, so the bytes match a batch
// core.Run handed the same records.
func (s *Service) FinalReport(ctx context.Context, w io.Writer, cfg core.Config) error {
	if !s.Draining() {
		return ErrNotDrained
	}
	cfg.Dataset = dataset.FromRecords(s.AcceptedRecords())
	st, err := core.Run(ctx, cfg)
	if err != nil {
		return err
	}
	st.WriteReport(w)
	return nil
}

// gate is the worker hold point: open (closed channel) by default,
// pause swaps in a blocking channel, resume closes it again.
type gate struct {
	mu sync.Mutex
	ch chan struct{}
}

func newGate() *gate {
	g := &gate{ch: make(chan struct{})}
	close(g.ch)
	return g
}

func (g *gate) wait() {
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	<-ch
}

func (g *gate) pause() {
	g.mu.Lock()
	select {
	case <-g.ch:
		g.ch = make(chan struct{})
	default:
	}
	g.mu.Unlock()
}

func (g *gate) resume() {
	g.mu.Lock()
	select {
	case <-g.ch:
	default:
		close(g.ch)
	}
	g.mu.Unlock()
}
