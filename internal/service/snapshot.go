package service

import (
	"fmt"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fingerprint"
)

// Snapshot is one immutable epoch of the merged analysis state. Workers
// publish a fresh snapshot (a deep clone of the live client) after
// every merge through an atomic pointer, so any number of readers — the
// /report endpoint, metrics scrapers, the drain path — see a fully
// consistent epoch without taking a lock or blocking ingestion.
type Snapshot struct {
	// Epoch counts published snapshots; it only moves forward.
	Epoch int64
	// Batches and Records are the accepted totals folded in so far.
	Batches int64
	Records int64
	// At is the publication time (the injected clock's view).
	At time.Time
	// Client is the cloned client-side analysis state at this epoch.
	Client *analysis.Client
}

// Snapshot returns the current epoch. Never nil: epoch 0 with an empty
// client precedes the first merge.
func (s *Service) Snapshot() *Snapshot {
	return s.snap.Load()
}

// WriteReport renders the snapshot's client-side analysis (the Section
// 4 + Appendix B tables) with a service header. Server-side tables need
// the probe world and exist only in the drained FinalReport.
func (sn *Snapshot) WriteReport(w io.Writer, matcher *fingerprint.Matcher, workers int) {
	fmt.Fprintf(w, "IoT TLS Service Snapshot — epoch %d, %d batches, %d records, %d fingerprints\n\n",
		sn.Epoch, sn.Batches, sn.Records, sn.Client.NumFingerprints())
	st := core.Study{Config: core.Config{Workers: workers}, Client: sn.Client, Matcher: matcher}
	for _, t := range st.ClientTables() {
		t.WriteText(w)
		fmt.Fprintln(w)
	}
}

// WriteSnapshotReport renders the current epoch with the service's
// shared library matcher.
func (s *Service) WriteSnapshotReport(w io.Writer) {
	s.Snapshot().WriteReport(w, s.matcher, s.opts.Workers)
}
