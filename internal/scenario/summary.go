package scenario

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON emits the machine-readable sweep result for CI artifacts.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText emits the human-readable verdict.
func (s *Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "scenario matrix: %d configs, %d pipeline runs, %d wire records cross-checked\n",
		s.Configs, s.Runs, s.WireRecords)
	if n := len(s.ServiceCells); n > 0 {
		fmt.Fprintf(w, "service cells: %d (conservation, deterministic shedding, batch equivalence)\n", n)
	}
	if n := len(s.ServerFPCells); n > 0 {
		fmt.Fprintf(w, "serverfp cells: %d (classification accuracy, worker-count determinism)\n", n)
	}
	if n := len(s.TimelineCells); n > 0 {
		fmt.Fprintf(w, "timeline cells: %d (monotone 1.3 adoption, row conservation, per-epoch determinism)\n", n)
	}
	if s.OK() {
		fmt.Fprintf(w, "all invariants held\n")
		return
	}
	fmt.Fprintf(w, "%d invariant violation(s):\n", len(s.Violations))
	for _, v := range s.Violations {
		fmt.Fprintf(w, "  %s\n", v)
	}
}
