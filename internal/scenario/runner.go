package scenario

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/tlswire"
)

// Violation is one failed invariant, attributed to a case.
type Violation struct {
	Case      string `json:"case"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Case, v.Invariant, v.Detail)
}

// runOutput is one pipeline execution's observable surface.
type runOutput struct {
	report  []byte
	stats   probe.Stats
	study   *core.Study
	samples map[string]float64 // metrics exposition, nil when obs was off
}

// CaseResult summarizes one case for the JSON report.
type CaseResult struct {
	Case       string `json:"case"`
	Devices    int    `json:"devices"`
	Records    int    `json:"records"`
	SNIs       int    `json:"snis_observed"`
	SNIsKept   int    `json:"snis_kept"`
	Jobs       int    `json:"probe_jobs"`
	Attempts   int    `json:"probe_attempts"`
	Retries    int    `json:"probe_retries"`
	Reruns     int    `json:"runs"`
	Violations int    `json:"violations"`
}

// Summary aggregates a matrix sweep.
type Summary struct {
	Configs       int              `json:"configs"`
	Runs          int              `json:"runs"`
	WireRecords   int              `json:"wire_records_checked"`
	Cases         []CaseResult     `json:"cases"`
	ServiceCells  []ServiceResult  `json:"service_cells,omitempty"`
	ServerFPCells []ServerFPResult `json:"serverfp_cells,omitempty"`
	TimelineCells []TimelineResult `json:"timeline_cells,omitempty"`
	Violations    []Violation      `json:"violations"`
}

// OK reports whether every invariant held.
func (s *Summary) OK() bool { return len(s.Violations) == 0 }

// Options tunes a matrix sweep.
type Options struct {
	// Progress receives one line per case; nil silences it.
	Progress io.Writer
	// Golden, when set, snapshots the tolerance case's report.
	Golden *GoldenStore
	// RerunEvery reruns every n-th case with an identical configuration
	// to check exact reproducibility (0: default 8; < 0: never).
	RerunEvery int
	// WireSample bounds how many ClientHello records per case go through
	// the crypto/tls differential oracle (0: default 40; < 0: none).
	WireSample int
}

func (o Options) rerunEvery() int {
	if o.RerunEvery == 0 {
		return 8
	}
	return o.RerunEvery
}

func (o Options) wireSample() int {
	if o.WireSample == 0 {
		return 40
	}
	return o.WireSample
}

// execute runs the pipeline once for the case with the given worker
// bound, with observability attached when withObs is set.
func execute(ctx context.Context, c Case, workers int, withObs bool) (*runOutput, error) {
	var tracer *obs.Tracer
	var metrics *obs.Registry
	if withObs {
		tracer = obs.NewTracer("iotcheck")
		metrics = obs.NewRegistry("iotcheck")
	}
	st, err := core.Run(ctx, c.config(workers, tracer, metrics))
	if err != nil {
		return nil, fmt.Errorf("scenario: case %s: %w", c.Name(), err)
	}
	var buf bytes.Buffer
	st.WriteReport(&buf)
	out := &runOutput{report: buf.Bytes(), stats: st.Server.ProbeStats, study: st}
	if metrics != nil {
		var expo bytes.Buffer
		if err := metrics.WritePrometheus(&expo); err != nil {
			return nil, fmt.Errorf("scenario: case %s: metrics exposition: %w", c.Name(), err)
		}
		samples, err := obs.ParseText(&expo)
		if err != nil {
			return nil, fmt.Errorf("scenario: case %s: metrics parse: %w", c.Name(), err)
		}
		out.samples = samples
	}
	return out, nil
}

// RunCase executes one case — base run, variant run, and (optionally)
// an exact rerun — and returns every invariant violation found. The
// error return is reserved for infrastructure failures (a pipeline
// refusing to run at all); invariant breaks are data, not errors.
func RunCase(ctx context.Context, c Case, opts Options, exactRerun bool) (CaseResult, []Violation, error) {
	name := c.Name()
	res := CaseResult{Case: name}

	base, err := execute(ctx, c, c.Workers, true)
	if err != nil {
		return res, nil, err
	}
	variant, err := execute(ctx, c, c.AltWorkers, false)
	if err != nil {
		return res, nil, err
	}
	res.Reruns = 2

	var vs []Violation
	defect := func(invariant, format string, args ...interface{}) {
		vs = append(vs, Violation{Case: name, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	// Metamorphic: worker count and observability must not leak into the
	// rendered bytes.
	if !bytes.Equal(base.report, variant.report) {
		defect("report-determinism", "workers %d (obs on) vs %d (obs off): %s",
			c.Workers, c.AltWorkers, LineDiff(base.report, variant.report, 5))
	}
	if exactRerun {
		again, err := execute(ctx, c, c.Workers, true)
		if err != nil {
			return res, vs, err
		}
		res.Reruns++
		if !bytes.Equal(base.report, again.report) {
			defect("seed-stability", "identical rerun changed the report: %s",
				LineDiff(base.report, again.report, 5))
		}
	}

	checkConservation(base, c, defect)
	checkMetricsReconcile(base, defect)
	checkProbeTableReconcile(base.stats, defect)
	if c.Tolerance {
		checkTolerance(base, defect)
		if opts.Golden != nil {
			if err := opts.Golden.Check(goldenName(c), base.report); err != nil {
				defect("golden-report", "%v", err)
			}
		}
	}
	res.Violations = len(vs)

	st := base.study
	res.Devices = len(st.Dataset.Devices)
	res.Records = st.Dataset.Records.Len()
	res.SNIs = len(st.Dataset.SNIs())
	res.SNIsKept = len(st.SNIs)
	res.Jobs = base.stats.Jobs
	res.Attempts = base.stats.Attempts
	res.Retries = base.stats.Retries
	return res, vs, nil
}

// checkConservation enforces the counting laws one run must satisfy.
func checkConservation(out *runOutput, c Case, defect func(string, string, ...interface{})) {
	st, stats := out.study, out.stats
	if want := len(st.SNIs) * len(c.vantages()); stats.Jobs != want {
		defect("conservation", "Jobs = %d, want SNIs×vantages = %d×%d = %d",
			stats.Jobs, len(st.SNIs), len(c.vantages()), want)
	}
	if sum := stats.Successes + stats.TransientFailures + stats.TerminalFailures + stats.Aborted; sum != stats.Jobs {
		defect("conservation", "successes %d + transient %d + terminal %d + aborted %d = %d, want Jobs = %d",
			stats.Successes, stats.TransientFailures, stats.TerminalFailures, stats.Aborted, sum, stats.Jobs)
	}
	if stats.Attempts < stats.Successes {
		defect("conservation", "Attempts %d < Successes %d", stats.Attempts, stats.Successes)
	}
	if stats.RecoveredAfterRetry > stats.Successes {
		defect("conservation", "RecoveredAfterRetry %d > Successes %d", stats.RecoveredAfterRetry, stats.Successes)
	}
	if stats.Retries > stats.Attempts {
		defect("conservation", "Retries %d > Attempts %d", stats.Retries, stats.Attempts)
	}
	if c.FaultRate == 0 {
		// With no injected faults the only failures are the world's
		// permanently unreachable hosts: one attempt per job, no retries.
		if stats.Attempts != stats.Jobs || stats.Retries != 0 || stats.TransientFailures != 0 {
			defect("conservation", "fault-free run: attempts %d retries %d transient %d, want %d/0/0",
				stats.Attempts, stats.Retries, stats.TransientFailures, stats.Jobs)
		}
	}
	// Per-vendor device counts partition the population, and every
	// vendor is one of the catalogue's.
	byVendor := map[string]int{}
	for _, d := range st.Dataset.Devices {
		byVendor[d.Vendor]++
	}
	total := 0
	names := make([]string, 0, len(byVendor))
	for v := range byVendor {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		total += byVendor[v]
	}
	if total != len(st.Dataset.Devices) {
		defect("conservation", "per-vendor device counts sum to %d, population is %d",
			total, len(st.Dataset.Devices))
	}
	known := map[string]bool{}
	for v := range vendorCatalogue() {
		known[v] = true
	}
	for _, v := range names {
		if !known[v] {
			defect("conservation", "device vendor %q is not in the vendor catalogue", v)
		}
	}
}

// checkMetricsReconcile compares the metrics registry's counters with
// the engine's own Stats — two independent tallies of the same events.
func checkMetricsReconcile(out *runOutput, defect func(string, string, ...interface{})) {
	if out.samples == nil {
		return
	}
	stats, st := out.stats, out.study
	for _, tc := range []struct {
		series string
		want   int
	}{
		{"iotcheck_probe_attempts_total", stats.Attempts},
		{"iotcheck_probe_retries_total", stats.Retries},
		{"iotcheck_probe_successes_total", stats.Successes},
		{"iotcheck_probe_recovered_after_retry_total", stats.RecoveredAfterRetry},
		{"iotcheck_probe_breaker_opens_total", stats.BreakerOpens},
		{"iotcheck_probe_breaker_fast_fails_total", stats.BreakerFastFails},
		{"iotcheck_ingest_records_total", st.Dataset.Records.Len()},
	} {
		if got := obs.SumSeries(out.samples, tc.series); got != float64(tc.want) {
			defect("metrics-reconcile", "%s = %v, engine says %d", tc.series, got, tc.want)
		}
	}
	if got := obs.SumSeries(out.samples, "iotcheck_probe_handshake_seconds_count"); got != float64(stats.Attempts) {
		defect("metrics-reconcile", "handshake histogram count = %v, attempts = %d", got, stats.Attempts)
	}
}

// checkProbeTableReconcile re-parses the rendered ProbeStats table and
// checks it against the Stats that produced it, so a drifting table
// builder cannot silently misreport the collection run.
func checkProbeTableReconcile(stats probe.Stats, defect func(string, string, ...interface{})) {
	table := report.ProbeStats(stats)
	want := []int{
		stats.Jobs, stats.Attempts, stats.Retries, stats.Successes,
		stats.RecoveredAfterRetry, stats.TransientFailures, stats.TerminalFailures,
		stats.Aborted, stats.BreakerOpens, stats.BreakerFastFails, stats.BudgetExhausted,
	}
	if len(table.Rows) != len(want) {
		defect("table-reconcile", "ProbeStats table has %d rows, Stats has %d fields", len(table.Rows), len(want))
		return
	}
	for i, row := range table.Rows {
		if len(row) != 2 {
			defect("table-reconcile", "ProbeStats row %d has %d cells", i, len(row))
			continue
		}
		got, err := strconv.Atoi(row[1])
		if err != nil {
			defect("table-reconcile", "ProbeStats row %q: %v", row[0], err)
			continue
		}
		if got != want[i] {
			defect("table-reconcile", "ProbeStats row %q = %d, engine says %d", row[0], got, want[i])
		}
	}
}

// checkWire pushes a deterministic sample of the run's ClientHello
// records through the crypto/tls differential oracle.
func checkWire(out *runOutput, sample int, defect func(string, string, ...interface{})) int {
	records := out.study.Dataset.Records
	if sample <= 0 || records.Len() == 0 {
		return 0
	}
	stride := records.Len() / sample
	if stride == 0 {
		stride = 1
	}
	checked := 0
	for i := 0; i < records.Len() && checked < sample; i += stride {
		checked++
		if diffs := tlswire.CompareWithCryptoTLS(records.Raw(i)); len(diffs) > 0 {
			defect("wire-differential", "record %d (%s, stack %s): %v",
				i, records.At(i).SNI, records.At(i).StackID, diffs)
		}
	}
	return checked
}

// RunMatrix sweeps the matrix and aggregates every check, including the
// cross-case monotone-growth comparison.
func RunMatrix(ctx context.Context, m Matrix, opts Options) (*Summary, error) {
	cases := m.Cases()
	sum := &Summary{Configs: len(cases)}
	type growth struct {
		scale                  float64
		devices, records, snis int
	}
	bySeed := map[int64][]growth{}
	for i, c := range cases {
		if err := ctx.Err(); err != nil {
			return sum, err
		}
		exact := opts.rerunEvery() > 0 && i%opts.rerunEvery() == 0
		res, vs, err := RunCase(ctx, c, opts, exact)
		if err != nil {
			return sum, err
		}
		wireDefect := func(invariant, format string, args ...interface{}) {
			vs = append(vs, Violation{Case: c.Name(), Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
		}
		// Re-run the wire differential on the case's dataset. The
		// dataset depends only on (seed, scale), so sample once per
		// distinct pair: the first worker-pair/fault/vantage cell.
		if first := i == firstCaseFor(cases, c.Seed, c.Scale); first {
			base, err := execute(ctx, c, c.Workers, false)
			if err != nil {
				return sum, err
			}
			sum.WireRecords += checkWire(base, opts.wireSample(), wireDefect)
			res.Violations = len(vs)
		}
		sum.Runs += res.Reruns
		sum.Cases = append(sum.Cases, res)
		sum.Violations = append(sum.Violations, vs...)
		bySeed[c.Seed] = append(bySeed[c.Seed], growth{c.Scale, res.Devices, res.Records, res.SNIs})
		if opts.Progress != nil {
			status := "ok"
			if len(vs) > 0 {
				status = fmt.Sprintf("%d violation(s)", len(vs))
			}
			fmt.Fprintf(opts.Progress, "[%3d/%d] %-44s devices=%-5d jobs=%-5d %s\n",
				i+1, len(cases), c.Name(), res.Devices, res.Jobs, status)
		}
	}

	// Service-mode cells: conservation, deterministic shedding, and
	// drained-report equivalence with the batch pipeline.
	if m.ServiceCells {
		for _, sc := range ServiceCases() {
			if err := ctx.Err(); err != nil {
				return sum, err
			}
			res, vs, err := RunServiceCase(ctx, sc)
			if err != nil {
				return sum, err
			}
			sum.ServiceCells = append(sum.ServiceCells, res)
			sum.Violations = append(sum.Violations, vs...)
			if opts.Progress != nil {
				status := "ok"
				if len(vs) > 0 {
					status = fmt.Sprintf("%d violation(s)", len(vs))
				}
				fmt.Fprintf(opts.Progress, "[svc] %-44s accepted=%d/%d shed=%d quarantined=%d %s\n",
					sc.Name(), res.Accepted, res.Submitted, res.Shed, res.Quarantined, status)
			}
		}
	}

	// Active-fingerprinting cells: classification accuracy and census
	// determinism across worker counts.
	if m.ServerFPCells {
		for _, fc := range ServerFPCases() {
			if err := ctx.Err(); err != nil {
				return sum, err
			}
			res, vs, err := RunServerFPCase(ctx, fc)
			if err != nil {
				return sum, err
			}
			sum.ServerFPCells = append(sum.ServerFPCells, res)
			sum.Violations = append(sum.Violations, vs...)
			if opts.Progress != nil {
				status := "ok"
				if len(vs) > 0 {
					status = fmt.Sprintf("%d violation(s)", len(vs))
				}
				fmt.Fprintf(opts.Progress, "[sfp] %-44s targets=%-5d accuracy=%.3f %s\n",
					fc.Name(), res.Targets, res.Accuracy, status)
			}
		}
	}

	// Longitudinal cells: the asof ladder checked for monotone 1.3
	// adoption, adoption-row conservation, and per-epoch determinism.
	if m.TimelineCells {
		for _, tc := range TimelineCases() {
			if err := ctx.Err(); err != nil {
				return sum, err
			}
			res, vs, err := RunTimelineCase(ctx, tc)
			if err != nil {
				return sum, err
			}
			sum.TimelineCells = append(sum.TimelineCells, res)
			sum.Violations = append(sum.Violations, vs...)
			if opts.Progress != nil {
				status := "ok"
				if len(vs) > 0 {
					status = fmt.Sprintf("%d violation(s)", len(vs))
				}
				fmt.Fprintf(opts.Progress, "[tml] %-44s epochs=%-2d final13=%.3f %s\n",
					tc.Name(), res.Epochs, res.Final13, status)
			}
		}
	}

	// Monotone growth: for a fixed seed, a larger scale must never
	// shrink the population or its observations.
	seeds := make([]int64, 0, len(bySeed))
	for s := range bySeed {
		seeds = append(seeds, s)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	for _, s := range seeds {
		gs := bySeed[s]
		sort.Slice(gs, func(i, j int) bool { return gs[i].scale < gs[j].scale })
		for i := 1; i < len(gs); i++ {
			a, b := gs[i-1], gs[i]
			if a.scale == b.scale {
				continue
			}
			if b.devices < a.devices || b.records < a.records || b.snis < a.snis {
				sum.Violations = append(sum.Violations, Violation{
					Case:      fmt.Sprintf("seed%d", s),
					Invariant: "monotone-growth",
					Detail: fmt.Sprintf("scale %g→%g shrank devices %d→%d, records %d→%d, or SNIs %d→%d",
						a.scale, b.scale, a.devices, b.devices, a.records, b.records, a.snis, b.snis),
				})
			}
		}
	}
	return sum, nil
}

// firstCaseFor returns the index of the first case with the given
// (seed, scale) pair; the matrix expansion order makes it stable.
func firstCaseFor(cases []Case, seed int64, scale float64) int {
	for i, c := range cases {
		if c.Seed == seed && c.Scale == scale {
			return i
		}
	}
	return -1
}
