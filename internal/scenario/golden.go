package scenario

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// GoldenStore holds report snapshots on disk. Check compares against
// the stored bytes, or rewrites them when Update is set — the scenario
// harness and cmd/iotcheck both regenerate with -update, the root
// golden tests with UPDATE_GOLDEN=1.
type GoldenStore struct {
	// Dir is the snapshot directory (created on first update).
	Dir string
	// Update rewrites snapshots instead of comparing.
	Update bool
}

// goldenName derives the tolerance case's snapshot filename.
func goldenName(c Case) string {
	return fmt.Sprintf("report_seed%d_scale%g.txt", c.Seed, c.Scale)
}

// Check compares got against the named snapshot. A missing snapshot or
// a mismatch is an error whose message says how to regenerate; in
// Update mode the snapshot is (re)written and Check always succeeds.
func (g *GoldenStore) Check(name string, got []byte) error {
	path := filepath.Join(g.Dir, name)
	if g.Update {
		if err := os.MkdirAll(g.Dir, 0o755); err != nil {
			return fmt.Errorf("scenario: golden dir: %w", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			return fmt.Errorf("scenario: write golden: %w", err)
		}
		return nil
	}
	want, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("scenario: no golden snapshot %s — run with -update to create it", path)
	}
	if err != nil {
		return fmt.Errorf("scenario: read golden: %w", err)
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("scenario: report deviates from golden %s (regenerate with -update if intended): %s",
			path, LineDiff(want, got, 8))
	}
	return nil
}

// LineDiff renders a readable summary of where two renderings diverge:
// the first maxLines differing lines, each as want/got pairs, plus a
// count of the remainder. Good enough to localize a table drift without
// shipping a diff implementation.
func LineDiff(want, got []byte, maxLines int) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	var b strings.Builder
	shown, total := 0, 0
	for i := 0; i < n; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		} else {
			wl = "<absent>"
		}
		if i < len(g) {
			gl = g[i]
		} else {
			gl = "<absent>"
		}
		if wl == gl {
			continue
		}
		total++
		if shown < maxLines {
			fmt.Fprintf(&b, "\n  line %d:\n    want: %s\n    got:  %s", i+1, wl, gl)
			shown++
		}
	}
	if total > shown {
		fmt.Fprintf(&b, "\n  … and %d more differing line(s)", total-shown)
	}
	if total == 0 {
		if len(want) != len(got) {
			fmt.Fprintf(&b, "\n  byte lengths differ: want %d, got %d", len(want), len(got))
		} else {
			b.WriteString("\n  (no line-level difference; bytes differ)")
		}
	}
	return fmt.Sprintf("%d differing line(s)%s", total, b.String())
}
