package scenario

import (
	"context"
	"testing"
)

// The epoch ladder must move strictly forward: the monotonicity check
// compares consecutive epochs, so an unordered ladder would vacuously
// pass.
func TestTimelineLadderOrdered(t *testing.T) {
	for i := 1; i < len(timelineLadder); i++ {
		if !timelineLadder[i].After(timelineLadder[i-1]) {
			t.Fatalf("ladder epoch %d (%s) not after epoch %d (%s)",
				i, timelineLadder[i].Format("2006-01-02"),
				i-1, timelineLadder[i-1].Format("2006-01-02"))
		}
	}
}

// One full timeline cell: every epoch report byte-identical across
// worker counts, monotone 1.3 adoption, conserved adoption rows, and a
// non-trivial final fraction.
func TestRunTimelineCase(t *testing.T) {
	res, vs, err := RunTimelineCase(context.Background(), TimelineCase{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("violation: %s", v)
	}
	if want := len(timelineLadder) * 3; res.Runs != want {
		t.Fatalf("ran %d pipelines, want %d (ladder × worker counts)", res.Runs, want)
	}
	if res.Final13 <= 0 || res.Final13 >= 1 {
		t.Fatalf("final 1.3 fraction %.3f outside (0, 1)", res.Final13)
	}
}
