// Package scenario is the study's cross-cutting verification harness:
// it generates a configuration matrix (seed × scale × workers ×
// fault-rate × vantage set), runs the full core pipeline over every
// cell, and checks properties no single-package unit test can see:
//
//   - metamorphic invariances — the rendered report must be
//     byte-identical across worker counts and with observability on or
//     off, and exactly reproducible when a configuration is rerun;
//   - conservation laws — probe outcomes partition the job set,
//     per-vendor device counts sum to the population, the ProbeStats
//     report table and the metrics registry both reconcile with the
//     engine's own Stats;
//   - monotone growth — device, record, and SNI counts never shrink as
//     Scale grows for a fixed seed;
//   - tolerance bands — at paper scale the dataset's aggregates stay
//     within declared bounds of the published numbers;
//   - wire differentials — ClientHello records sampled from each run
//     are cross-checked against crypto/tls via the tlswire oracle;
//   - golden snapshots — the paper-scale report is compared against a
//     checked-in snapshot, regenerated with Update.
//
// cmd/iotcheck is the CLI front end; the CI scenario job runs the short
// matrix under the race detector.
package scenario

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/simnet"
)

// virtualSleep stands in for the fault injector's stall waits: it
// returns immediately (honouring cancellation) so a matrix sweep never
// blocks on simulated time.
func virtualSleep(ctx context.Context, _ time.Duration) error {
	return ctx.Err()
}

// Case is one cell of the verification matrix. Every case is executed
// at least twice — once with Workers and observability attached, once
// with AltWorkers and observability off — and the two renderings must
// agree byte for byte.
type Case struct {
	// Seed drives the dataset and world generators.
	Seed int64
	// Scale multiplies the device population (1.0 = paper scale).
	Scale float64
	// Workers is the base run's worker bound; AltWorkers is the variant
	// run's. They must differ for the metamorphic check to bite.
	Workers    int
	AltWorkers int
	// FaultRate is the transient-failure probability injected on the
	// probe path (0 disables fault injection entirely).
	FaultRate float64
	// Vantages is the probing locations, primary first; empty means the
	// paper's three.
	Vantages []simnet.Vantage
	// MinSNIUsers is the SNI popularity filter (paper: 3).
	MinSNIUsers int
	// Tolerance additionally checks the paper's published aggregates;
	// only meaningful at Scale 1.
	Tolerance bool
}

// Name is the case's stable identifier in violations and JSON output.
func (c Case) Name() string {
	return fmt.Sprintf("seed%d/scale%g/w%dv%d/fault%g/vantages%d",
		c.Seed, c.Scale, c.Workers, c.AltWorkers, c.FaultRate, len(c.vantages()))
}

func (c Case) vantages() []simnet.Vantage {
	if len(c.Vantages) > 0 {
		return c.Vantages
	}
	return simnet.Vantages()
}

// config assembles the core.Config for one run of the case. Fault-rate
// cases neutralize every timing- and ordering-sensitive knob: backoff
// waits are collapsed to a nanosecond, the injected stall sleeps are
// virtual, and the circuit breaker's threshold is pushed out of reach —
// breaker state is shared per host, so with it armed the worker
// interleaving could change which attempts fast-fail and the
// worker-invariance property would not hold.
func (c Case) config(workers int, tracer *obs.Tracer, metrics *obs.Registry) core.Config {
	cfg := core.Config{
		Seed:        c.Seed,
		Scale:       c.Scale,
		MinSNIUsers: c.MinSNIUsers,
		Workers:     workers,
		Vantages:    c.Vantages,
		Tracer:      tracer,
		Metrics:     metrics,
		Probe: probe.Options{
			BackoffBase:      time.Nanosecond,
			BackoffMax:       time.Nanosecond,
			BreakerThreshold: 1 << 20,
		},
	}
	if c.MinSNIUsers == 0 {
		cfg.MinSNIUsers = core.DefaultConfig().MinSNIUsers
	}
	if c.FaultRate > 0 {
		cfg.Faults = &simnet.Faults{
			Seed:          c.Seed + 2,
			TransientRate: c.FaultRate,
			Sleep:         virtualSleep,
		}
	}
	return cfg
}

// Matrix spans the verification space: the cross product of its axes,
// plus one paper-scale tolerance case when ToleranceCase is set.
type Matrix struct {
	Seeds  []int64
	Scales []float64
	// WorkerPairs lists (base, variant) worker bounds; each pair is one
	// axis value, and both runs of a case use one pair.
	WorkerPairs [][2]int
	FaultRates  []float64
	// VantageSets lists the vantage selections to sweep; a nil entry
	// means all of simnet.Vantages().
	VantageSets [][]simnet.Vantage
	MinSNIUsers int
	// ToleranceCase appends the paper-scale run (default seed, Scale 1)
	// with tolerance-band and golden-snapshot checks.
	ToleranceCase bool
	// ServiceCells appends the service-mode cells: the resident daemon's
	// ingest path checked for conservation, deterministic shedding, and
	// drained-report equivalence with the batch pipeline.
	ServiceCells bool
	// ServerFPCells appends the active-fingerprinting cells: the serverfp
	// battery checked for classification accuracy and census determinism
	// across worker counts.
	ServerFPCells bool
	// TimelineCells appends the firmware-drift longitudinal cells: the
	// pipeline swept over an asof ladder and checked for monotone 1.3
	// adoption, population conservation in every adoption row, and
	// per-epoch report determinism across worker counts.
	TimelineCells bool
}

// Short is the CI matrix: 2 seeds × 3 scales × 2 worker pairs ×
// 2 fault rates × 2 vantage sets = 48 cases, plus the paper-scale
// tolerance case. Small scales keep the sweep fast enough for -race.
func Short() Matrix {
	return Matrix{
		Seeds:         []int64{1, 7},
		Scales:        []float64{0.05, 0.12, 0.25},
		WorkerPairs:   [][2]int{{1, 4}, {4, 1}},
		FaultRates:    []float64{0, 0.2},
		VantageSets:   [][]simnet.Vantage{nil, {simnet.VantageNewYork}},
		MinSNIUsers:   3,
		ToleranceCase: true,
		ServiceCells:  true,
		ServerFPCells: true,
		TimelineCells: true,
	}
}

// Cases expands the matrix into its case list, tolerance case last.
// Expansion order is fixed (seed outermost, vantage set innermost) so
// case indices — and thus the rerun cadence — are stable.
func (m Matrix) Cases() []Case {
	var cases []Case
	for _, seed := range m.Seeds {
		for _, scale := range m.Scales {
			for _, wp := range m.WorkerPairs {
				for _, fr := range m.FaultRates {
					for _, vs := range m.VantageSets {
						cases = append(cases, Case{
							Seed:        seed,
							Scale:       scale,
							Workers:     wp[0],
							AltWorkers:  wp[1],
							FaultRate:   fr,
							Vantages:    vs,
							MinSNIUsers: m.MinSNIUsers,
						})
					}
				}
			}
		}
	}
	if m.ToleranceCase {
		def := core.DefaultConfig()
		cases = append(cases, Case{
			Seed:        def.Seed,
			Scale:       def.Scale,
			Workers:     4,
			AltWorkers:  2,
			FaultRate:   0,
			MinSNIUsers: def.MinSNIUsers,
			Tolerance:   true,
		})
	}
	return cases
}
