package scenario

import (
	"repro/internal/dataset"
)

// The paper's published aggregates (Section 3: the IoT Inspector
// dataset; Section 5: the probing run). The synthetic generator is a
// structural model, not a replay, so the tolerance case holds each
// aggregate inside a declared band around the published value rather
// than demanding equality. Bands are tight where the generator targets
// the number directly (population, users, records) and loose where it
// only models the mechanism (distinct model labels).
const (
	paperDevices = 2014
	paperModels  = 286
	paperUsers   = 721
	paperRecords = 11439
	// paperUnreachable / paperProbed: "we could not obtain certificates
	// from 43 of the 1,194 distinct SNIs".
	paperUnreachable = 43
	paperProbed      = 1194
)

// band is one tolerance check: got must lie within frac of want.
type band struct {
	name string
	got  int
	want int
	frac float64
}

func (b band) violated() bool {
	lo := float64(b.want) * (1 - b.frac)
	hi := float64(b.want) * (1 + b.frac)
	return float64(b.got) < lo || float64(b.got) > hi
}

// vendorCatalogue maps every catalogue vendor name to its profile index.
func vendorCatalogue() map[string]int {
	out := map[string]int{}
	for _, v := range dataset.Vendors() {
		out[v.Name] = v.Index
	}
	return out
}

// checkTolerance holds the paper-scale aggregates inside their bands.
// Only meaningful for a Scale-1, fault-free case.
func checkTolerance(out *runOutput, defect func(string, string, ...interface{})) {
	st := out.study
	ds := st.Dataset
	for _, b := range []band{
		{"devices", len(ds.Devices), paperDevices, 0.15},
		{"users", ds.Users(), paperUsers, 0.10},
		{"records", ds.Records.Len(), paperRecords, 0.10},
		{"models", ds.Models(), paperModels, 0.50},
	} {
		if b.violated() {
			defect("tolerance", "%s = %d, paper says %d (band ±%g%%)",
				b.name, b.got, b.want, b.frac*100)
		}
	}
	if got, want := distinctVendors(ds), len(dataset.Vendors()); got != want {
		defect("tolerance", "distinct vendors = %d, catalogue has %d", got, want)
	}
	// Unreachability: the paper lost 43 of 1,194 SNIs (≈3.6%); the world
	// builder models the same loss process, so the fraction must stay in
	// the same regime — nonzero, but nowhere near a collection failure.
	probed := len(st.Server.ProbedSNIs)
	unreachable := len(st.Server.UnreachableSNIs)
	if probed > 0 {
		frac := float64(unreachable) / float64(probed)
		paper := float64(paperUnreachable) / float64(paperProbed)
		if frac == 0 || frac > paper+0.05 {
			defect("tolerance", "unreachable fraction = %d/%d = %.3f, paper regime is %.3f (±0.05, must be nonzero)",
				unreachable, probed, frac, paper)
		}
	}
}

// distinctVendors counts vendor names present in the population.
func distinctVendors(ds *dataset.Dataset) int {
	seen := map[string]bool{}
	for _, d := range ds.Devices {
		seen[d.Vendor] = true
	}
	return len(seen)
}
