package scenario

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/probe"
)

// TimelineCase is one longitudinal verification cell: the full pipeline
// runs at each epoch of a fixed asof ladder, and the firmware-drift
// timeline must behave like a timeline — 1.3 adoption never decreases
// going forward, every adoption row conserves the population, and each
// epoch's report is byte-identical across worker counts.
type TimelineCase struct {
	// Seed drives the dataset, drift schedule, and world.
	Seed int64
	// Scale sizes the population swept through each epoch.
	Scale float64
}

// Name is the case's stable identifier in violations and JSON output.
func (c TimelineCase) Name() string {
	return fmt.Sprintf("timeline/seed%d/scale%g", c.Seed, c.Scale)
}

// TimelineCases is the fixed cell list, one per scenario seed.
func TimelineCases() []TimelineCase {
	return []TimelineCase{
		{Seed: 1, Scale: 0.05},
		{Seed: 7, Scale: 0.12},
	}
}

// timelineLadder is the epoch ladder every timeline case climbs: the
// capture window's end (no drift yet), then three post-paper epochs.
var timelineLadder = []time.Time{
	time.Date(2020, 8, 1, 0, 0, 0, 0, time.UTC),
	time.Date(2021, 8, 1, 0, 0, 0, 0, time.UTC),
	time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC),
	time.Date(2025, 8, 1, 0, 0, 0, 0, time.UTC),
}

// TimelineResult summarizes one timeline cell for the JSON report.
type TimelineResult struct {
	Case       string  `json:"case"`
	Epochs     int     `json:"epochs"`
	Final13    float64 `json:"final_tls13_fraction"`
	Runs       int     `json:"runs"`
	Violations int     `json:"violations"`
}

// runTimelineEpoch executes the pipeline at one (asof, workers) point
// with the same timing neutralization every scenario run uses.
func runTimelineEpoch(ctx context.Context, c TimelineCase, asof time.Time, workers int) (*core.Study, []byte, error) {
	st, err := core.Run(ctx, core.Config{
		Seed:        c.Seed,
		Scale:       c.Scale,
		MinSNIUsers: 3,
		Workers:     workers,
		AsOf:        asof,
		Probe: probe.Options{
			BackoffBase:      time.Nanosecond,
			BackoffMax:       time.Nanosecond,
			BreakerThreshold: 1 << 20,
		},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %s asof %s: %w", c.Name(), asof.Format("2006-01-02"), err)
	}
	var buf bytes.Buffer
	st.WriteReport(&buf)
	return st, buf.Bytes(), nil
}

// RunTimelineCase climbs the epoch ladder for one cell: at each epoch
// the report must be byte-identical across worker counts 1, 4, and
// GOMAXPROCS, the 1.3-capable device fraction must never decrease from
// the previous epoch, and the adoption curve must conserve the
// population in every row. Invariant breaks are data, not errors.
func RunTimelineCase(ctx context.Context, c TimelineCase) (TimelineResult, []Violation, error) {
	name := c.Name()
	res := TimelineResult{Case: name, Epochs: len(timelineLadder)}
	var vs []Violation
	defect := func(invariant, format string, args ...interface{}) {
		vs = append(vs, Violation{Case: name, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	prevFrac := -1.0
	var prevEpoch time.Time
	for _, asof := range timelineLadder {
		if err := ctx.Err(); err != nil {
			return res, vs, err
		}
		base, baseReport, err := runTimelineEpoch(ctx, c, asof, workerCounts[0])
		if err != nil {
			return res, vs, err
		}
		res.Runs++
		for _, w := range workerCounts[1:] {
			_, got, err := runTimelineEpoch(ctx, c, asof, w)
			if err != nil {
				return res, vs, err
			}
			res.Runs++
			if !bytes.Equal(got, baseReport) {
				defect("timeline-determinism", "asof %s: workers %d vs 1: %s",
					asof.Format("2006-01-02"), w, LineDiff(baseReport, got, 5))
			}
		}

		frac := base.Dataset.TLS13Fraction(asof)
		if frac < prevFrac {
			defect("timeline-monotone", "1.3 fraction decreased %s → %s: %.4f → %.4f",
				prevEpoch.Format("2006-01-02"), asof.Format("2006-01-02"), prevFrac, frac)
		}
		prevFrac, prevEpoch = frac, asof
		res.Final13 = frac

		pop := len(base.Dataset.Devices)
		for _, pt := range base.Dataset.AdoptionCurve(timelineLadder) {
			if pt.Total() != pop {
				defect("timeline-conservation", "asof %s, row %s: buckets sum to %d, population is %d",
					asof.Format("2006-01-02"), pt.Date.Format("2006-01-02"), pt.Total(), pop)
			}
		}
	}
	// The ladder must actually exercise drift: a flat-zero curve means
	// the timeline plumbing silently disconnected.
	if res.Final13 <= 0 {
		defect("timeline-monotone", "final epoch %s shows no 1.3 adoption at all",
			timelineLadder[len(timelineLadder)-1].Format("2006-01-02"))
	}
	res.Violations = len(vs)
	return res, vs, nil
}
