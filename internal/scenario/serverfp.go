package scenario

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/probe"
	"repro/internal/serverfp"
	"repro/internal/simnet"
)

// ServerFPCase is one active-fingerprinting verification cell: the
// serverfp battery runs over the case's world once per worker count,
// and every run must classify identically and beat the accuracy floor.
type ServerFPCase struct {
	// Seed drives the dataset, world, and engine jitter.
	Seed int64
	// Scale sizes the SNI population being fingerprinted.
	Scale float64
	// FaultRate injects transient failures on the battery path; the
	// retry engine must absorb them without the labels moving.
	FaultRate float64
}

// Name is the case's stable identifier in violations and JSON output.
func (c ServerFPCase) Name() string {
	return fmt.Sprintf("serverfp/seed%d/scale%g/fault%g", c.Seed, c.Scale, c.FaultRate)
}

// ServerFPCases is the fixed cell list: one clean cell and one faulty
// cell, each swept across worker counts 1, 4, and GOMAXPROCS.
func ServerFPCases() []ServerFPCase {
	return []ServerFPCase{
		{Seed: 1, Scale: 0.05},
		{Seed: 7, Scale: 0.12, FaultRate: 0.2},
	}
}

// ServerFPResult summarizes one serverfp cell for the JSON report.
type ServerFPResult struct {
	Case       string  `json:"case"`
	Targets    int     `json:"targets"`
	Accuracy   float64 `json:"accuracy"`
	Runs       int     `json:"runs"`
	Violations int     `json:"violations"`
}

// serverFPAccuracyFloor is the acceptance bar: at least 95% of
// evidence-bearing targets must classify to their true stack.
const serverFPAccuracyFloor = 0.95

// runServerFPCell fingerprints the case's world with the given worker
// bound. Each run rebuilds the world so per-(SNI, vantage) fault
// counters start fresh — shared mutable fault state across runs would
// make the comparison depend on execution order.
func runServerFPCell(ctx context.Context, c ServerFPCase, workers int) (*serverfp.Census, error) {
	ds := dataset.Generate(dataset.Config{Seed: c.Seed, Scale: c.Scale})
	snis := ds.SNIsByMinUsers(3)
	var faults *simnet.Faults
	if c.FaultRate > 0 {
		faults = &simnet.Faults{Seed: c.Seed + 2, TransientRate: c.FaultRate, Sleep: virtualSleep}
	}
	world := simnet.Build(simnet.Config{Seed: c.Seed + 1, SNIs: snis, Faults: faults})
	// The same timing neutralization Case.config applies: collapsed
	// backoff and an out-of-reach breaker keep the worker interleaving
	// out of the results.
	return serverfp.Fingerprint(ctx, world, snis, simnet.VantageNewYork, probe.Options{
		Workers:          workers,
		Seed:             c.Seed,
		BackoffBase:      time.Nanosecond,
		BackoffMax:       time.Nanosecond,
		BreakerThreshold: 1 << 20,
	})
}

// RunServerFPCase executes one serverfp cell across worker counts 1, 4,
// and GOMAXPROCS, checking classification accuracy and whole-census
// determinism. Invariant breaks are data, not errors.
func RunServerFPCase(ctx context.Context, c ServerFPCase) (ServerFPResult, []Violation, error) {
	name := c.Name()
	res := ServerFPResult{Case: name}
	var vs []Violation
	defect := func(invariant, format string, args ...interface{}) {
		vs = append(vs, Violation{Case: name, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	base, err := runServerFPCell(ctx, c, workerCounts[0])
	if err != nil {
		return res, nil, err
	}
	res.Runs = 1
	for _, w := range workerCounts[1:] {
		got, err := runServerFPCell(ctx, c, w)
		if err != nil {
			return res, vs, err
		}
		res.Runs++
		if !reflect.DeepEqual(got.Targets, base.Targets) {
			for i := range base.Targets {
				if i < len(got.Targets) && got.Targets[i] != base.Targets[i] {
					defect("serverfp-determinism", "workers %d vs 1: target %s diverged: %+v vs %+v",
						w, base.Targets[i].SNI, got.Targets[i], base.Targets[i])
					break
				}
			}
			if len(got.Targets) != len(base.Targets) {
				defect("serverfp-determinism", "workers %d vs 1: %d targets vs %d",
					w, len(got.Targets), len(base.Targets))
			}
		}
	}

	res.Targets = len(base.Targets)
	res.Accuracy = base.Accuracy()
	if res.Accuracy < serverFPAccuracyFloor {
		defect("serverfp-accuracy", "accuracy %.3f below floor %.2f over %d targets",
			res.Accuracy, serverFPAccuracyFloor, res.Targets)
	}
	// Conservation: every probed SNI yields exactly one census target,
	// and targets with evidence carry a modeled label.
	labels := map[string]bool{"unknown": true}
	for _, st := range simnet.AllServerStacks() {
		labels[st.Name] = true
	}
	for _, t := range base.Targets {
		if !labels[t.Label] {
			defect("serverfp-conservation", "target %s carries unmodeled label %q", t.SNI, t.Label)
		}
		if t.Observed == 0 && t.Label != "unknown" {
			defect("serverfp-conservation", "target %s has no evidence but label %q", t.SNI, t.Label)
		}
	}
	res.Violations = len(vs)
	return res, vs, nil
}
