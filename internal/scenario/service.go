package scenario

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/service"
)

// ServiceCase is one cell of the service-mode verification matrix: the
// resident daemon's ingest path driven by the seeded load generator,
// then drained and held to the same cross-cutting laws the batch
// pipeline obeys.
type ServiceCase struct {
	// Seed drives the traffic generator, the admission coin flips, and
	// the batch-equivalence pipeline run.
	Seed int64
	// Scale sizes the record population the generator draws from.
	Scale float64
	// QueueDepth / ShedWatermark / SourceBudget shape admission.
	QueueDepth    int
	ShedWatermark float64
	SourceBudget  int
	// Batches × BatchSize is the offered load across Sources.
	Batches   int
	BatchSize int
	Sources   int
	// PoisonFrac corrupts that fraction of batches (quarantine path).
	PoisonFrac float64
	// Overload pauses the workers while the load is offered, so the
	// admission sequence — and therefore every shed decision — is a pure
	// function of the seed and submit order, checkable run against run.
	Overload bool
}

// Name is the case's stable identifier in violations and JSON output.
func (c ServiceCase) Name() string {
	mode := "steady"
	if c.Overload {
		mode = "overload"
	}
	return fmt.Sprintf("service/seed%d/q%d/src%d/poison%g/%s",
		c.Seed, c.QueueDepth, c.SourceBudget, c.PoisonFrac, mode)
}

// ServiceCases is the fixed service-mode cell list: a clean steady-state
// cell, a deterministic-overload cell, and a poison/quarantine cell.
func ServiceCases() []ServiceCase {
	return []ServiceCase{
		{Seed: 3, Scale: 0.05, QueueDepth: 256, ShedWatermark: 1.0, SourceBudget: 256,
			Batches: 40, BatchSize: 20, Sources: 3},
		{Seed: 5, Scale: 0.05, QueueDepth: 8, ShedWatermark: 0.5, SourceBudget: 3,
			Batches: 40, BatchSize: 10, Sources: 4, Overload: true},
		{Seed: 9, Scale: 0.05, QueueDepth: 256, ShedWatermark: 1.0, SourceBudget: 256,
			Batches: 40, BatchSize: 15, Sources: 2, PoisonFrac: 0.15},
	}
}

// ServiceResult summarizes one service cell for the JSON report.
type ServiceResult struct {
	Case        string `json:"case"`
	Submitted   int64  `json:"submitted_batches"`
	Accepted    int64  `json:"accepted_batches"`
	Shed        int64  `json:"shed_batches"`
	Quarantined int64  `json:"quarantined_batches"`
	Records     int64  `json:"accepted_records"`
	Violations  int    `json:"violations"`
}

// shedProfile is the deterministic fingerprint of one cell execution:
// every conservation counter, no wall-clock fields.
type shedProfile struct {
	submittedB, submittedR     int64
	acceptedB, acceptedR       int64
	shedB, shedR               int64
	quarantinedB, quarantinedR int64
}

func profileOf(st service.Stats) shedProfile {
	return shedProfile{
		st.SubmittedBatches, st.SubmittedRecords,
		st.AcceptedBatches, st.AcceptedRecords,
		st.ShedBatches, st.ShedRecords,
		st.QuarantinedBatches, st.QuarantinedRecords,
	}
}

// runServiceCell drives one service through the seeded generator and
// drains it, returning the service for inspection.
func runServiceCell(ctx context.Context, c ServiceCase) (*service.Service, error) {
	svc := service.New(service.Options{
		Seed:             c.Seed,
		Workers:          2,
		QueueDepth:       c.QueueDepth,
		ShedWatermark:    c.ShedWatermark,
		SourceBudget:     c.SourceBudget,
		BreakerThreshold: 1 << 20, // breaker determinism is a unit-test concern; cells isolate admission
	})
	if c.Overload {
		svc.PauseWorkers()
	}
	_, err := service.RunLoad(ctx, func(source string, recs []dataset.Record) (service.Outcome, error) {
		return svc.Submit(source, recs), nil
	}, service.LoadOptions{
		Seed:       c.Seed,
		Scale:      c.Scale,
		BatchSize:  c.BatchSize,
		Batches:    c.Batches,
		Sources:    c.Sources,
		PoisonFrac: c.PoisonFrac,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: loadgen: %w", c.Name(), err)
	}
	if c.Overload {
		svc.ResumeWorkers()
	}
	if err := svc.Drain(ctx); err != nil {
		return nil, fmt.Errorf("scenario: %s: drain: %w", c.Name(), err)
	}
	return svc, nil
}

// RunServiceCase executes one service cell and checks its laws:
//
//   - conservation — accepted + shed + quarantined == submitted, at
//     batch and record granularity;
//   - determinism — an overload cell rerun end to end produces the
//     identical conservation profile (every shed decision replays);
//   - batch equivalence — the drained daemon's final report is
//     byte-identical to a fresh core.Run over the same accepted
//     records, across different worker counts.
func RunServiceCase(ctx context.Context, c ServiceCase) (ServiceResult, []Violation, error) {
	name := c.Name()
	res := ServiceResult{Case: name}
	var vs []Violation
	defect := func(invariant, format string, args ...interface{}) {
		vs = append(vs, Violation{Case: name, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	svc, err := runServiceCell(ctx, c)
	if err != nil {
		return res, nil, err
	}
	st := svc.Stats()
	res.Submitted = st.SubmittedBatches
	res.Accepted = st.AcceptedBatches
	res.Shed = st.ShedBatches
	res.Quarantined = st.QuarantinedBatches
	res.Records = st.AcceptedRecords

	if !st.Conserved() {
		defect("service-conservation",
			"accepted %d + shed %d + quarantined %d != submitted %d (records %d+%d+%d != %d)",
			st.AcceptedBatches, st.ShedBatches, st.QuarantinedBatches, st.SubmittedBatches,
			st.AcceptedRecords, st.ShedRecords, st.QuarantinedRecords, st.SubmittedRecords)
	}
	if st.SubmittedBatches != int64(c.Batches) {
		defect("service-conservation", "submitted %d batches, generator offered %d", st.SubmittedBatches, c.Batches)
	}
	accepted := svc.AcceptedRecords()
	if int64(len(accepted)) != st.AcceptedRecords {
		defect("service-conservation", "retained %d accepted records, counters say %d", len(accepted), st.AcceptedRecords)
	}
	if c.Overload && st.ShedBatches == 0 {
		defect("service-overload", "overload cell shed nothing; admission pressure never bound")
	}
	if c.PoisonFrac > 0 && st.QuarantinedBatches == 0 {
		defect("service-quarantine", "poison cell quarantined nothing")
	}

	// Determinism: the whole cell replays to the same profile.
	if c.Overload {
		again, err := runServiceCell(ctx, c)
		if err != nil {
			return res, vs, err
		}
		if p1, p2 := profileOf(st), profileOf(again.Stats()); p1 != p2 {
			defect("service-determinism", "rerun diverged: %+v vs %+v", p1, p2)
		}
	}

	// Batch equivalence: the drained report equals a fresh pipeline run
	// over the accepted records — with different worker counts, so the
	// service path inherits the worker-invariance law too.
	cfg := core.DefaultConfig()
	cfg.Seed, cfg.Scale, cfg.Workers = c.Seed, c.Scale, 2
	var got bytes.Buffer
	if err := svc.FinalReport(ctx, &got, cfg); err != nil {
		return res, vs, fmt.Errorf("scenario: %s: final report: %w", name, err)
	}
	batchCfg := cfg
	batchCfg.Workers = 3
	batchCfg.Dataset = dataset.FromRecords(accepted)
	study, err := core.Run(ctx, batchCfg)
	if err != nil {
		return res, vs, fmt.Errorf("scenario: %s: batch run: %w", name, err)
	}
	var want bytes.Buffer
	study.WriteReport(&want)
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		defect("service-batch-equivalence", "drained report diverges from batch core.Run over the accepted records: %s",
			LineDiff(got.Bytes(), want.Bytes(), 5))
	}

	res.Violations = len(vs)
	return res, vs, nil
}
