package scenario

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/simnet"
)

// TestShortMatrixShape: the CI matrix must exercise at least the 48
// documented configurations plus the paper-scale tolerance case, with
// unique, stable names.
func TestShortMatrixShape(t *testing.T) {
	cases := Short().Cases()
	if len(cases) < 49 {
		t.Fatalf("short matrix has %d cases, want >= 49 (48 + tolerance)", len(cases))
	}
	last := cases[len(cases)-1]
	if !last.Tolerance || last.Scale != 1.0 {
		t.Fatalf("last case must be the paper-scale tolerance case, got %+v", last)
	}
	seen := map[string]bool{}
	for _, c := range cases {
		name := c.Name()
		if seen[name] {
			t.Fatalf("duplicate case name %q", name)
		}
		seen[name] = true
		if c.Workers == c.AltWorkers {
			t.Fatalf("case %s: Workers == AltWorkers defeats the metamorphic check", name)
		}
	}
}

// TestRunCaseInvariants: a single fault-injected cell must pass every
// per-case invariant, including the exact rerun.
func TestRunCaseInvariants(t *testing.T) {
	c := Case{Seed: 3, Scale: 0.06, Workers: 1, AltWorkers: 4, FaultRate: 0.25, MinSNIUsers: 3}
	res, vs, err := RunCase(context.Background(), c, Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("violation: %s", v)
	}
	if res.Reruns != 3 {
		t.Errorf("Reruns = %d, want 3 (base + variant + exact rerun)", res.Reruns)
	}
	if res.Jobs == 0 || res.Devices == 0 {
		t.Errorf("empty run: %+v", res)
	}
	if res.Retries == 0 {
		t.Errorf("fault rate 0.25 produced no retries; injection is not reaching the probe path")
	}
}

// TestRunMatrixTiny: a 4-cell sweep end to end, including the wire
// differential and monotone-growth comparison.
func TestRunMatrixTiny(t *testing.T) {
	m := Matrix{
		Seeds:       []int64{5},
		Scales:      []float64{0.05, 0.1},
		WorkerPairs: [][2]int{{2, 3}},
		FaultRates:  []float64{0, 0.3},
		VantageSets: [][]simnet.Vantage{{simnet.VantageNewYork, simnet.VantageFrankfurt}},
		MinSNIUsers: 3,
	}
	var progress bytes.Buffer
	sum, err := RunMatrix(context.Background(), m, Options{Progress: &progress, WireSample: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.OK() {
		for _, v := range sum.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if sum.Configs != 4 {
		t.Errorf("Configs = %d, want 4", sum.Configs)
	}
	if sum.WireRecords == 0 {
		t.Errorf("wire differential checked no records")
	}
	if got := strings.Count(progress.String(), "\n"); got != 4 {
		t.Errorf("progress emitted %d lines, want 4", got)
	}
	var js bytes.Buffer
	if err := sum.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(js.String(), `"configs": 4`) {
		t.Errorf("JSON missing configs field:\n%s", js.String())
	}
}

// TestCancelledMatrixStops: cancellation surfaces as an error, not a
// pass with zero work.
func TestCancelledMatrixStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMatrix(ctx, Short(), Options{}); err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
}

// TestGoldenStoreRoundTrip: update writes, check passes, tampering
// fails with a diff that names the changed line.
func TestGoldenStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	body := []byte("alpha\nbeta\ngamma\n")
	g := &GoldenStore{Dir: dir, Update: true}
	if err := g.Check("snap.txt", body); err != nil {
		t.Fatalf("update: %v", err)
	}
	g.Update = false
	if err := g.Check("snap.txt", body); err != nil {
		t.Fatalf("clean check: %v", err)
	}
	tampered := []byte("alpha\nbeta!\ngamma\n")
	err := g.Check("snap.txt", tampered)
	if err == nil {
		t.Fatal("tampered bytes passed the golden check")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("diff does not localize the change: %v", err)
	}
	if err := g.Check("missing.txt", body); err == nil || !strings.Contains(err.Error(), "-update") {
		t.Errorf("missing snapshot must explain regeneration, got: %v", err)
	}
}

// TestGoldenCatchesOffByOne is the demonstration the harness exists
// for: an off-by-one injected into a rendered report table must be
// caught by the golden diff, localized to the corrupted row.
func TestGoldenCatchesOffByOne(t *testing.T) {
	stats := probe.Stats{Jobs: 120, Attempts: 131, Retries: 11, Successes: 117, TransientFailures: 2, TerminalFailures: 1}
	render := func(st probe.Stats) []byte {
		var buf bytes.Buffer
		report.ProbeStats(st).WriteText(&buf)
		return buf.Bytes()
	}
	dir := t.TempDir()
	g := &GoldenStore{Dir: dir, Update: true}
	if err := g.Check("probe_stats.txt", render(stats)); err != nil {
		t.Fatalf("seed golden: %v", err)
	}
	g.Update = false

	// The injected defect: the table builder over-reports attempts by one.
	corrupted := stats
	corrupted.Attempts++
	err := g.Check("probe_stats.txt", render(corrupted))
	if err == nil {
		t.Fatal("off-by-one in a report table slipped past the golden diff")
	}
	if !strings.Contains(err.Error(), "131") || !strings.Contains(err.Error(), "132") {
		t.Errorf("diff should show old and new value, got: %v", err)
	}

	// Sanity: an honest table reconciles with its Stats, so the matrix's
	// structural check stays quiet on the uncorrupted rendering.
	var vs []Violation
	defect := func(invariant, format string, args ...interface{}) {
		vs = append(vs, Violation{Case: "demo", Invariant: invariant})
	}
	checkProbeTableReconcile(stats, defect)
	if len(vs) != 0 {
		t.Errorf("honest table flagged: %v", vs)
	}
}

// TestLineDiffShapes: the diff stays readable for the edge shapes.
func TestLineDiffShapes(t *testing.T) {
	if d := LineDiff([]byte("a\nb"), []byte("a\nb"), 3); !strings.HasPrefix(d, "0 differing") {
		t.Errorf("identical inputs: %s", d)
	}
	d := LineDiff([]byte("a\nb\nc"), []byte("a\nX\nc\nd"), 1)
	if !strings.Contains(d, "line 2") || !strings.Contains(d, "more differing") {
		t.Errorf("truncated diff malformed: %s", d)
	}
	if d := LineDiff([]byte("x"), []byte("x "), 3); !strings.Contains(d, "line 1") {
		t.Errorf("trailing-space change invisible: %s", d)
	}
}

// TestShortMatrixFull runs the whole CI matrix in-process. It is the
// same sweep the CI scenario job performs via cmd/iotcheck, so it only
// runs when explicitly requested.
func TestShortMatrixFull(t *testing.T) {
	if os.Getenv("IOTCHECK_FULL") == "" {
		t.Skip("set IOTCHECK_FULL=1 to run the full short matrix in-process")
	}
	golden := &GoldenStore{Dir: filepath.Join("testdata", "golden")}
	sum, err := RunMatrix(context.Background(), Short(), Options{Golden: golden})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sum.Violations {
		t.Errorf("violation: %s", v)
	}
	if sum.Configs < 49 {
		t.Errorf("Configs = %d, want >= 49", sum.Configs)
	}
}

// TestServiceCells: every service-mode cell passes its laws —
// conservation, deterministic shedding, and drained-report equivalence
// with the batch pipeline.
func TestServiceCells(t *testing.T) {
	cells := ServiceCases()
	if len(cells) < 3 {
		t.Fatalf("service matrix has %d cells, want >= 3", len(cells))
	}
	var sawShed, sawQuarantine bool
	for _, c := range cells {
		res, vs, err := RunServiceCase(context.Background(), c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for _, v := range vs {
			t.Errorf("violation: %s", v)
		}
		if res.Accepted+res.Shed+res.Quarantined != res.Submitted {
			t.Errorf("%s: result row not conserved: %+v", c.Name(), res)
		}
		sawShed = sawShed || res.Shed > 0
		sawQuarantine = sawQuarantine || res.Quarantined > 0
	}
	if !sawShed {
		t.Error("no cell exercised shedding")
	}
	if !sawQuarantine {
		t.Error("no cell exercised quarantine")
	}
}

func TestServerFPCells(t *testing.T) {
	cells := ServerFPCases()
	if len(cells) < 2 {
		t.Fatalf("serverfp matrix has %d cells, want >= 2", len(cells))
	}
	var sawFaults bool
	for _, c := range cells {
		res, vs, err := RunServerFPCase(context.Background(), c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for _, v := range vs {
			t.Errorf("violation: %s", v)
		}
		if res.Targets == 0 {
			t.Errorf("%s: no targets fingerprinted", c.Name())
		}
		if res.Runs < 2 {
			t.Errorf("%s: only %d runs, determinism check needs >= 2", c.Name(), res.Runs)
		}
		if res.Accuracy < serverFPAccuracyFloor {
			t.Errorf("%s: accuracy %.3f below floor", c.Name(), res.Accuracy)
		}
		sawFaults = sawFaults || c.FaultRate > 0
	}
	if !sawFaults {
		t.Error("no cell exercised the battery under fault injection")
	}
}
