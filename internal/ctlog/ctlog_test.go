package ctlog

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"testing"
	"time"
)

// mintCert creates a minimal self-signed certificate for log fodder.
func mintCert(t testing.TB, cn string) *x509.Certificate {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(int64(len(cn)) + 1),
		Subject:      pkix.Name{CommonName: cn},
		NotBefore:    time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

func fixedClock() time.Time { return time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC) }

func TestSubmitAndContains(t *testing.T) {
	l := New("test-log", fixedClock)
	c1 := mintCert(t, "a.example.com")
	c2 := mintCert(t, "b.example.com")
	sct1 := l.Submit(c1)
	if sct1.LeafIndex != 0 || sct1.LogID != "test-log" {
		t.Fatalf("sct1 %+v", sct1)
	}
	if !l.Contains(c1) {
		t.Fatal("c1 should be logged")
	}
	if l.Contains(c2) {
		t.Fatal("c2 should not be logged")
	}
	sct2 := l.Submit(c2)
	if sct2.LeafIndex != 1 {
		t.Fatalf("sct2 index %d", sct2.LeafIndex)
	}
	// Resubmission deduplicates.
	again := l.Submit(c1)
	if again.LeafIndex != 0 || l.Size() != 2 {
		t.Fatalf("dedup failed: %+v size %d", again, l.Size())
	}
}

func TestEmptyHead(t *testing.T) {
	l := New("empty", fixedClock)
	h := l.Head()
	if h.Size != 0 {
		t.Fatal("empty size")
	}
	// RFC 6962: root of empty tree is SHA-256 of empty string.
	want := "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
	if h.RootHash.String() != want {
		t.Fatalf("empty root %s", h.RootHash)
	}
}

func TestInclusionProofs(t *testing.T) {
	l := New("proofs", fixedClock)
	var certs []*x509.Certificate
	for i := 0; i < 17; i++ { // odd, non-power-of-two size
		c := mintCert(t, "host"+string(rune('a'+i))+".example.com")
		certs = append(certs, c)
		l.Submit(c)
	}
	head := l.Head()
	for i, c := range certs {
		idx, proof, err := l.InclusionProofForCert(c)
		if err != nil {
			t.Fatalf("cert %d: %v", i, err)
		}
		if idx != uint64(i) {
			t.Fatalf("cert %d index %d", i, idx)
		}
		if !VerifyInclusion(LeafHashOfCert(c), idx, head.Size, proof, head.RootHash) {
			t.Fatalf("cert %d: proof does not verify", i)
		}
		// Tampered leaf must fail.
		bad := LeafHashOfCert(c)
		bad[0] ^= 0xFF
		if VerifyInclusion(bad, idx, head.Size, proof, head.RootHash) {
			t.Fatalf("cert %d: tampered leaf verified", i)
		}
	}
	// Unlogged cert.
	if _, _, err := l.InclusionProofForCert(mintCert(t, "stranger.example.com")); err != ErrNotLogged {
		t.Fatalf("want ErrNotLogged, got %v", err)
	}
}

func TestInclusionProofErrors(t *testing.T) {
	l := New("errs", fixedClock)
	l.Submit(mintCert(t, "one.example.com"))
	if _, err := l.InclusionProof(0, 0); err != ErrBadTreeSize {
		t.Fatalf("size 0: %v", err)
	}
	if _, err := l.InclusionProof(0, 5); err != ErrBadTreeSize {
		t.Fatalf("size 5: %v", err)
	}
	if _, err := l.InclusionProof(3, 1); err != ErrIndexOutOfRange {
		t.Fatalf("index 3: %v", err)
	}
}

func TestConsistencyProofs(t *testing.T) {
	l := New("consistency", fixedClock)
	var heads []TreeHead
	for i := 0; i < 20; i++ {
		l.Submit(mintCert(t, "c"+string(rune('a'+i))+".example.com"))
		heads = append(heads, l.Head())
	}
	for first := 1; first <= 20; first++ {
		for second := first; second <= 20; second++ {
			proof, err := l.ConsistencyProof(uint64(first), uint64(second))
			if err != nil {
				t.Fatalf("(%d,%d): %v", first, second, err)
			}
			h1, h2 := heads[first-1], heads[second-1]
			if !VerifyConsistency(uint64(first), uint64(second), h1.RootHash, h2.RootHash, proof) {
				t.Fatalf("(%d,%d): proof does not verify", first, second)
			}
		}
	}
	// A forged old root must fail.
	proof, _ := l.ConsistencyProof(7, 20)
	bad := heads[6].RootHash
	bad[3] ^= 0x80
	if VerifyConsistency(7, 20, bad, heads[19].RootHash, proof) {
		t.Fatal("forged root verified")
	}
}

func TestConsistencyErrors(t *testing.T) {
	l := New("cerr", fixedClock)
	l.Submit(mintCert(t, "x.example.com"))
	if _, err := l.ConsistencyProof(0, 1); err != ErrBadTreeSize {
		t.Fatalf("first 0: %v", err)
	}
	if _, err := l.ConsistencyProof(2, 1); err != ErrBadTreeSize {
		t.Fatalf("first>second: %v", err)
	}
	if _, err := l.ConsistencyProof(1, 9); err != ErrBadTreeSize {
		t.Fatalf("second>size: %v", err)
	}
}

func TestRootChangesOnAppend(t *testing.T) {
	l := New("roots", fixedClock)
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		l.Submit(mintCert(t, "r"+string(rune('a'+i))+".example.com"))
		root := l.Head().RootHash.String()
		if seen[root] {
			t.Fatalf("duplicate root at size %d", i+1)
		}
		seen[root] = true
	}
}

func BenchmarkSubmit(b *testing.B) {
	l := New("bench", fixedClock)
	cert := mintCert(b, "bench.example.com")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Vary serial via new cert is expensive; dedup path is the common
		// lookup in the study (query-heavy workload).
		l.Submit(cert)
	}
}

func BenchmarkInclusionProof(b *testing.B) {
	l := New("bench2", fixedClock)
	var last *x509.Certificate
	for i := 0; i < 1024; i++ {
		last = mintCert(b, "b"+string(rune(i))+".example.com")
		l.Submit(last)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.InclusionProofForCert(last); err != nil {
			b.Fatal(err)
		}
	}
}
