// Package ctlog implements an RFC 6962-style Certificate Transparency log:
// an append-only Merkle tree over submitted certificates with signed
// certificate timestamps, signed tree heads, inclusion proofs, and
// consistency proofs, plus the crt.sh-style query index the study used to
// check whether IoT server certificates are logged (Section 5.4).
//
// The hashing follows RFC 6962 §2.1: leaf hashes are SHA-256(0x00 || leaf)
// and interior hashes are SHA-256(0x01 || left || right).
package ctlog

import (
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"errors"
	"sync"
	"time"
)

// Hash is a Merkle tree node hash.
type Hash [sha256.Size]byte

// String returns the hex form.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// leafHash computes SHA-256(0x00 || data).
func leafHash(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(data)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// nodeHash computes SHA-256(0x01 || left || right).
func nodeHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// SCT is a signed certificate timestamp returned on submission.
type SCT struct {
	LogID     string
	Timestamp time.Time
	LeafIndex uint64
}

// TreeHead is a signed tree head (size + root hash).
type TreeHead struct {
	Size     uint64
	RootHash Hash
	Time     time.Time
}

// Log is an append-only CT log.
type Log struct {
	// ID names the log ("argon2025"-style).
	ID string

	mu     sync.RWMutex
	leaves []Hash
	// byCert indexes leaf positions by certificate fingerprint (SHA-256
	// of DER), the lookup crt.sh offers.
	byCert map[Hash]uint64
	clock  func() time.Time
}

// New creates an empty log. clock may be nil (wall clock).
func New(id string, clock func() time.Time) *Log {
	if clock == nil {
		clock = time.Now //lint:allow noclock default for the injectable clock, mirrors probe/clock.go
	}
	return &Log{ID: id, byCert: map[Hash]uint64{}, clock: clock}
}

// CertFingerprint is the SHA-256 of the certificate DER, the key used by
// the query index.
func CertFingerprint(cert *x509.Certificate) Hash {
	return sha256.Sum256(cert.Raw)
}

// Submit appends a certificate and returns its SCT. Resubmitting the same
// certificate returns the original SCT (logs deduplicate).
func (l *Log) Submit(cert *x509.Certificate) SCT {
	l.mu.Lock()
	defer l.mu.Unlock()
	fp := CertFingerprint(cert)
	if idx, ok := l.byCert[fp]; ok {
		return SCT{LogID: l.ID, Timestamp: l.clock(), LeafIndex: idx}
	}
	idx := uint64(len(l.leaves))
	l.leaves = append(l.leaves, leafHash(cert.Raw))
	l.byCert[fp] = idx
	return SCT{LogID: l.ID, Timestamp: l.clock(), LeafIndex: idx}
}

// Contains reports whether the certificate has been logged.
func (l *Log) Contains(cert *x509.Certificate) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, ok := l.byCert[CertFingerprint(cert)]
	return ok
}

// Size returns the current tree size.
func (l *Log) Size() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.leaves))
}

// Head returns the current signed tree head.
func (l *Log) Head() TreeHead {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return TreeHead{
		Size:     uint64(len(l.leaves)),
		RootHash: rootOf(l.leaves),
		Time:     l.clock(),
	}
}

// rootOf computes the RFC 6962 Merkle tree hash of the leaves.
func rootOf(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return leafEmptyRoot()
	case 1:
		return leaves[0]
	}
	k := largestPowerOfTwoBelow(uint64(len(leaves)))
	return nodeHash(rootOf(leaves[:k]), rootOf(leaves[k:]))
}

// leafEmptyRoot is SHA-256 of the empty string per RFC 6962.
func leafEmptyRoot() Hash {
	return sha256.Sum256(nil)
}

// largestPowerOfTwoBelow returns the largest power of two strictly less
// than n (n must be >= 2).
func largestPowerOfTwoBelow(n uint64) uint64 {
	k := uint64(1)
	for k*2 < n {
		k *= 2
	}
	return k
}

// Errors returned by proof APIs.
var (
	ErrIndexOutOfRange = errors.New("ctlog: leaf index out of range")
	ErrBadTreeSize     = errors.New("ctlog: invalid tree size")
	ErrNotLogged       = errors.New("ctlog: certificate not logged")
)

// InclusionProof returns the audit path for the leaf at index within the
// tree of the given size (RFC 6962 §2.1.1).
func (l *Log) InclusionProof(index, size uint64) ([]Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if size > uint64(len(l.leaves)) || size == 0 {
		return nil, ErrBadTreeSize
	}
	if index >= size {
		return nil, ErrIndexOutOfRange
	}
	return path(index, l.leaves[:size]), nil
}

// InclusionProofForCert returns the proof for a logged certificate
// against the current head.
func (l *Log) InclusionProofForCert(cert *x509.Certificate) (uint64, []Hash, error) {
	l.mu.RLock()
	idx, ok := l.byCert[CertFingerprint(cert)]
	size := uint64(len(l.leaves))
	l.mu.RUnlock()
	if !ok {
		return 0, nil, ErrNotLogged
	}
	proof, err := l.InclusionProof(idx, size)
	return idx, proof, err
}

// path computes the audit path of leaves[index] per RFC 6962.
func path(index uint64, leaves []Hash) []Hash {
	n := uint64(len(leaves))
	if n == 1 {
		return nil
	}
	k := largestPowerOfTwoBelow(n)
	if index < k {
		p := path(index, leaves[:k])
		return append(p, rootOf(leaves[k:]))
	}
	p := path(index-k, leaves[k:])
	return append(p, rootOf(leaves[:k]))
}

// VerifyInclusion checks an audit path: leaf at index in a tree of the
// given size with the given root (RFC 6962 §2.1.1 verification).
func VerifyInclusion(leaf Hash, index, size uint64, proof []Hash, root Hash) bool {
	if index >= size || size == 0 {
		return false
	}
	h := leaf
	fn, sn := index, size-1
	for _, p := range proof {
		if sn == 0 {
			return false
		}
		if fn%2 == 1 || fn == sn {
			h = nodeHash(p, h)
			for fn%2 == 0 && fn != 0 {
				fn >>= 1
				sn >>= 1
			}
		} else {
			h = nodeHash(h, p)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && h == root
}

// LeafHashOfCert returns the RFC 6962 leaf hash for a certificate.
func LeafHashOfCert(cert *x509.Certificate) Hash {
	return leafHash(cert.Raw)
}

// ConsistencyProof returns the proof that the tree of size first is a
// prefix of the tree of size second (RFC 6962 §2.1.2).
func (l *Log) ConsistencyProof(first, second uint64) ([]Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if second > uint64(len(l.leaves)) || first > second || first == 0 {
		return nil, ErrBadTreeSize
	}
	return subProof(first, l.leaves[:second], true), nil
}

// subProof implements RFC 6962 SUBPROOF.
func subProof(m uint64, leaves []Hash, completeSubtree bool) []Hash {
	n := uint64(len(leaves))
	if m == n {
		if completeSubtree {
			return nil
		}
		return []Hash{rootOf(leaves)}
	}
	k := largestPowerOfTwoBelow(n)
	if m <= k {
		p := subProof(m, leaves[:k], completeSubtree)
		return append(p, rootOf(leaves[k:]))
	}
	p := subProof(m-k, leaves[k:], false)
	return append(p, rootOf(leaves[:k]))
}

// VerifyConsistency checks a consistency proof between two tree heads.
func VerifyConsistency(first, second uint64, root1, root2 Hash, proof []Hash) bool {
	if first > second || first == 0 {
		return false
	}
	if first == second {
		return len(proof) == 0 && root1 == root2
	}
	// RFC 6962 §2.1.4.2 verification algorithm.
	if isPowerOfTwo(first) {
		proof = append([]Hash{root1}, proof...)
	}
	if len(proof) == 0 {
		return false
	}
	fn, sn := first-1, second-1
	for fn%2 == 1 {
		fn >>= 1
		sn >>= 1
	}
	fr, sr := proof[0], proof[0]
	for _, c := range proof[1:] {
		if sn == 0 {
			return false
		}
		if fn%2 == 1 || fn == sn {
			fr = nodeHash(c, fr)
			sr = nodeHash(c, sr)
			for fn%2 == 0 && fn != 0 {
				fn >>= 1
				sn >>= 1
			}
		} else {
			sr = nodeHash(sr, c)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && fr == root1 && sr == root2
}

func isPowerOfTwo(n uint64) bool { return n != 0 && n&(n-1) == 0 }
