package pki

import (
	"crypto/x509"
	"fmt"
	"sort"
	"time"
)

// LintFinding is one certificate-hygiene violation.
type LintFinding struct {
	// Code is a stable identifier ("validity_too_long", "no_san", ...).
	Code string
	// Severity: "error" for violations of ecosystem requirements,
	// "warning" for practices the study flags as risky.
	Severity string
	// Detail is the human-readable explanation.
	Detail string
}

// Lint checks a leaf certificate against the hygiene rules the study's
// findings motivate (and that the CA/Browser Forum baseline requirements
// impose on public CAs):
//
//   - validity above 398 days (the post-2020 ballot limit) is an error
//     for public-CA leaves and a warning for private ones; validity above
//     five years is always an error (the study's 46.67% of vendor-signed
//     certificates).
//   - leaves must carry a SAN extension; CN-only certificates are
//     errors (browsers stopped honoring CN in 2017 — the a2.tuyaus.com
//     failure mode).
//   - expired (or not-yet-valid) certificates are errors.
//   - CA certificates used as leaves, and missing serverAuth EKU, are
//     warnings.
//   - leaf == issuer (self-signed end-entity) is a warning: revocation
//     is impossible without replacing the pinned trust.
func Lint(leaf *x509.Certificate, issuerPublic bool, now time.Time) []LintFinding {
	var out []LintFinding
	add := func(code, severity, format string, args ...any) {
		out = append(out, LintFinding{Code: code, Severity: severity, Detail: fmt.Sprintf(format, args...)})
	}

	days := int(leaf.NotAfter.Sub(leaf.NotBefore).Hours() / 24)
	switch {
	case days > 5*365:
		add("validity_too_long", "error", "validity %d days exceeds 5 years", days)
	case days > 398 && issuerPublic:
		add("validity_over_baseline", "error", "public-CA validity %d days exceeds the 398-day baseline", days)
	case days > 398:
		add("validity_over_baseline", "warning", "validity %d days exceeds the 398-day baseline", days)
	}

	if len(leaf.DNSNames) == 0 && len(leaf.IPAddresses) == 0 {
		add("no_san", "error", "certificate carries no subjectAltName; CN-only matching is obsolete")
	}

	if now.After(leaf.NotAfter) {
		add("expired", "error", "expired %s", leaf.NotAfter.Format("2006-01-02"))
	}
	if now.Before(leaf.NotBefore) {
		add("not_yet_valid", "error", "not valid before %s", leaf.NotBefore.Format("2006-01-02"))
	}

	if leaf.IsCA {
		add("ca_as_leaf", "warning", "CA certificate presented as a server leaf")
	}
	hasServerAuth := false
	for _, eku := range leaf.ExtKeyUsage {
		if eku == x509.ExtKeyUsageServerAuth || eku == x509.ExtKeyUsageAny {
			hasServerAuth = true
		}
	}
	if !hasServerAuth {
		add("no_server_auth_eku", "warning", "leaf lacks the serverAuth extended key usage")
	}

	if IsSelfIssued(leaf) && !leaf.IsCA {
		add("self_signed_leaf", "warning", "self-signed end-entity certificate: revocation requires replacing pinned trust")
	}
	return out
}

// VendorGrade summarizes lint findings for the servers one vendor's
// devices depend on.
type VendorGrade struct {
	Vendor   string
	Servers  int
	Errors   int
	Warnings int
	// ByCode counts findings per lint code.
	ByCode map[string]int
}

// Grade is an A–F letter derived from the error rate.
func (g VendorGrade) Grade() string {
	if g.Servers == 0 {
		return "-"
	}
	rate := float64(g.Errors) / float64(g.Servers)
	switch {
	case rate == 0 && g.Warnings == 0:
		return "A"
	case rate == 0:
		return "B"
	case rate < 0.1:
		return "C"
	case rate < 0.5:
		return "D"
	default:
		return "F"
	}
}

// GradeVendors lints a set of (vendor, leaf, issuerPublic) observations
// and aggregates per-vendor report cards.
func GradeVendors(observations []VendorLeaf, now time.Time) []VendorGrade {
	grades := map[string]*VendorGrade{}
	for _, o := range observations {
		g := grades[o.Vendor]
		if g == nil {
			g = &VendorGrade{Vendor: o.Vendor, ByCode: map[string]int{}}
			grades[o.Vendor] = g
		}
		g.Servers++
		for _, f := range Lint(o.Leaf, o.IssuerPublic, now) {
			g.ByCode[f.Code]++
			if f.Severity == "error" {
				g.Errors++
			} else {
				g.Warnings++
			}
		}
	}
	out := make([]VendorGrade, 0, len(grades))
	for _, g := range grades {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vendor < out[j].Vendor })
	return out
}

// VendorLeaf is one graded observation.
type VendorLeaf struct {
	Vendor       string
	Leaf         *x509.Certificate
	IssuerPublic bool
}
