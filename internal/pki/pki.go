// Package pki is the X.509 substrate for the server-side half of the
// study (Section 5): it mints real ECDSA keys and certificates with
// crypto/x509, models certificate authorities (public trust CAs with roots
// in the simulated Mozilla/Apple/Microsoft root programs, and private
// vendor CAs that sign only their own domains), assembles the certificate
// chains servers present — including the misconfigurations the paper
// observed (incomplete chains, untrusted roots, self-signed loops,
// duplicated certificates, decades-long validity) — and validates chains
// into the paper's status taxonomy.
package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"time"
)

// ChainStatus is the validation outcome taxonomy of Section 5.3.
type ChainStatus int

const (
	// StatusValid: the chain verifies against a major trust store.
	StatusValid ChainStatus = iota
	// StatusIncompleteChain: the leaf is anchored in a public trust CA but
	// the server omitted intermediates; the chain verifies once the known
	// intermediates are supplied out of band.
	StatusIncompleteChain
	// StatusUntrustedRoot: the chain is structurally complete but its root
	// is not present in any major trust store (private root CA).
	StatusUntrustedRoot
	// StatusSelfSigned: the leaf has identical issuer and subject and is
	// issued by a private CA.
	StatusSelfSigned
	// StatusExpired: the leaf certificate's validity window has passed.
	StatusExpired
	// StatusCNMismatch: neither subject CN nor any SAN covers the SNI.
	StatusCNMismatch
)

// String returns the report label for the status.
func (s ChainStatus) String() string {
	switch s {
	case StatusValid:
		return "valid"
	case StatusIncompleteChain:
		return "incomplete chain"
	case StatusUntrustedRoot:
		return "untrusted root CA"
	case StatusSelfSigned:
		return "self-signed certificate"
	case StatusExpired:
		return "expired certificate"
	case StatusCNMismatch:
		return "common name mismatch"
	default:
		return fmt.Sprintf("ChainStatus(%d)", int(s))
	}
}

// Certificate pairs a parsed X.509 certificate with its DER bytes and the
// signing key needed when the certificate belongs to a CA.
type Certificate struct {
	Cert *x509.Certificate
	DER  []byte
	Key  *ecdsa.PrivateKey
}

// Chain is the certificate chain a server presents: leaf first, then any
// intermediates (and possibly a root, or duplicates, or nothing else).
type Chain struct {
	Certs []*x509.Certificate
}

// Leaf returns the first certificate of the chain, or nil.
func (c Chain) Leaf() *x509.Certificate {
	if len(c.Certs) == 0 {
		return nil
	}
	return c.Certs[0]
}

// Len returns the number of certificates presented.
func (c Chain) Len() int { return len(c.Certs) }

// newSerial mints a random 128-bit serial number.
func newSerial() *big.Int {
	limit := new(big.Int).Lsh(big.NewInt(1), 128)
	n, err := rand.Int(rand.Reader, limit)
	if err != nil {
		panic("pki: rand.Int: " + err.Error())
	}
	return n
}

// newKey mints a P-256 key.
func newKey() *ecdsa.PrivateKey {
	k, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		panic("pki: GenerateKey: " + err.Error())
	}
	return k
}

// LeafSpec describes a leaf certificate to issue.
type LeafSpec struct {
	// CommonName of the subject (usually the primary FQDN).
	CommonName string
	// DNSNames for the SAN extension. May be empty to model the Tuya-style
	// CN/SAN mismatch.
	DNSNames []string
	// Org of the subject.
	Org string
	// NotBefore/NotAfter bound the validity window.
	NotBefore time.Time
	NotAfter  time.Time
}

// ValidityDays returns the validity period length in days.
func (s LeafSpec) ValidityDays() int {
	return int(s.NotAfter.Sub(s.NotBefore).Hours() / 24)
}

// selfSign creates a self-signed certificate from a template.
func selfSign(tmpl *x509.Certificate, key *ecdsa.PrivateKey) Certificate {
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		panic("pki: CreateCertificate: " + err.Error())
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		panic("pki: ParseCertificate: " + err.Error())
	}
	return Certificate{Cert: cert, DER: der, Key: key}
}

// sign creates a certificate from tmpl signed by the parent.
func sign(tmpl *x509.Certificate, parent Certificate, pub *ecdsa.PublicKey) Certificate {
	der, err := x509.CreateCertificate(rand.Reader, tmpl, parent.Cert, pub, parent.Key)
	if err != nil {
		panic("pki: CreateCertificate: " + err.Error())
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		panic("pki: ParseCertificate: " + err.Error())
	}
	return Certificate{Cert: cert, DER: der}
}

// caTemplate builds a CA certificate template.
func caTemplate(cn, org string, notBefore time.Time, years int) *x509.Certificate {
	return &x509.Certificate{
		SerialNumber:          newSerial(),
		Subject:               pkix.Name{CommonName: cn, Organization: []string{org}},
		NotBefore:             notBefore,
		NotAfter:              notBefore.AddDate(years, 0, 0),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
}
