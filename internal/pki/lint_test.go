package pki

import (
	"testing"
	"time"
)

func findCode(findings []LintFinding, code string) *LintFinding {
	for i := range findings {
		if findings[i].Code == code {
			return &findings[i]
		}
	}
	return nil
}

func TestLintCleanCert(t *testing.T) {
	ca := NewCA("DigiCert", PublicTrustCA, t0, 25, 1)
	leaf := ca.IssueLeaf(leafSpec("clean.example.com", 398))
	findings := Lint(leaf.Cert, true, probe)
	if len(findings) != 0 {
		t.Fatalf("clean cert has findings: %v", findings)
	}
}

func TestLintLongValidity(t *testing.T) {
	tuya := NewCA("Tuya", PrivateCA, t0, 100, 0)
	leaf := tuya.IssueLeaf(leafSpec("iot.tuya.example", 36500))
	findings := Lint(leaf.Cert, false, probe)
	f := findCode(findings, "validity_too_long")
	if f == nil || f.Severity != "error" {
		t.Fatalf("36500-day validity not flagged: %v", findings)
	}
}

func TestLintBaselineValidity(t *testing.T) {
	ca := NewCA("DigiCert", PublicTrustCA, t0, 25, 1)
	leaf := ca.IssueLeaf(leafSpec("long.example.com", 825))
	pub := Lint(leaf.Cert, true, probe)
	if f := findCode(pub, "validity_over_baseline"); f == nil || f.Severity != "error" {
		t.Fatalf("825-day public validity not an error: %v", pub)
	}
	priv := Lint(leaf.Cert, false, probe)
	if f := findCode(priv, "validity_over_baseline"); f == nil || f.Severity != "warning" {
		t.Fatalf("825-day private validity not a warning: %v", priv)
	}
}

func TestLintNoSAN(t *testing.T) {
	tuya := NewCA("Tuya", PrivateCA, t0, 100, 0)
	spec := leafSpec("a2.tuyaus.example", 398)
	spec.DNSNames = nil
	leaf := tuya.IssueSelfSignedLeaf(spec)
	findings := Lint(leaf.Cert, false, probe)
	if findCode(findings, "no_san") == nil {
		t.Fatalf("SAN-less cert not flagged: %v", findings)
	}
	if findCode(findings, "self_signed_leaf") == nil {
		t.Fatalf("self-signed leaf not flagged: %v", findings)
	}
}

func TestLintExpired(t *testing.T) {
	ca := NewCA("COMODO", PublicTrustCA, t0, 25, 1)
	spec := leafSpec("wink.example.com", 365)
	spec.NotBefore = time.Date(2018, 4, 17, 0, 0, 0, 0, time.UTC)
	spec.NotAfter = time.Date(2019, 4, 17, 0, 0, 0, 0, time.UTC)
	leaf := ca.IssueLeaf(spec)
	findings := Lint(leaf.Cert, true, probe)
	if findCode(findings, "expired") == nil {
		t.Fatalf("expired cert not flagged: %v", findings)
	}
}

func TestLintCAAsLeaf(t *testing.T) {
	ca := NewCA("Roku", PrivateCA, t0, 40, 0)
	findings := Lint(ca.Root.Cert, false, probe)
	if findCode(findings, "ca_as_leaf") == nil {
		t.Fatalf("CA-as-leaf not flagged: %v", findings)
	}
	if findCode(findings, "no_server_auth_eku") == nil {
		t.Fatalf("missing EKU not flagged: %v", findings)
	}
}

func TestGradeVendors(t *testing.T) {
	good := NewCA("DigiCert", PublicTrustCA, t0, 25, 1)
	bad := NewCA("Tuya", PrivateCA, t0, 100, 0)
	var obs []VendorLeaf
	for i := 0; i < 4; i++ {
		leaf := good.IssueLeaf(leafSpec("ok.example.com", 398))
		obs = append(obs, VendorLeaf{Vendor: "Wyze", Leaf: leaf.Cert, IssuerPublic: true})
	}
	for i := 0; i < 4; i++ {
		spec := leafSpec("bad.example.com", 36500)
		spec.DNSNames = nil
		leaf := bad.IssueSelfSignedLeaf(spec)
		obs = append(obs, VendorLeaf{Vendor: "Tuya", Leaf: leaf.Cert, IssuerPublic: false})
	}
	grades := GradeVendors(obs, probe)
	if len(grades) != 2 {
		t.Fatalf("grades %d", len(grades))
	}
	byVendor := map[string]VendorGrade{}
	for _, g := range grades {
		byVendor[g.Vendor] = g
	}
	if g := byVendor["Wyze"].Grade(); g != "A" {
		t.Errorf("Wyze grade %s want A", g)
	}
	if g := byVendor["Tuya"].Grade(); g != "F" {
		t.Errorf("Tuya grade %s want F", g)
	}
	if byVendor["Tuya"].ByCode["validity_too_long"] != 4 {
		t.Errorf("Tuya code counts %v", byVendor["Tuya"].ByCode)
	}
	var empty VendorGrade
	if empty.Grade() != "-" {
		t.Error("empty grade")
	}
}
