package pki

import (
	"crypto/x509"
	"crypto/x509/pkix"
	"time"
)

// CAKind distinguishes the two issuer classes of Section 5.2.
type CAKind int

const (
	// PublicTrustCA has its root in major trust stores (or provides
	// signing services to domain owners).
	PublicTrustCA CAKind = iota
	// PrivateCA signs only its own domains; its root is not in major
	// trust stores.
	PrivateCA
)

// String labels the kind ("public trust CA" / "private CA").
func (k CAKind) String() string {
	if k == PublicTrustCA {
		return "public trust CA"
	}
	return "private CA"
}

// CA is a certificate authority: a root, zero or more intermediates, and
// issuance state.
type CA struct {
	// Org is the issuer organization name ("DigiCert", "Roku", ...).
	Org string
	// Kind classifies the CA.
	Kind CAKind
	// Root is the self-signed root certificate.
	Root Certificate
	// Intermediates issued by the root, used to sign leaves when present.
	Intermediates []Certificate
}

// NewCA creates a CA with a root valid for rootYears from notBefore and
// numIntermediates intermediates (each valid for rootYears-1).
func NewCA(org string, kind CAKind, notBefore time.Time, rootYears, numIntermediates int) *CA {
	rootKey := newKey()
	rootTmpl := caTemplate(org+" Root CA", org, notBefore, rootYears)
	root := selfSign(rootTmpl, rootKey)
	ca := &CA{Org: org, Kind: kind, Root: root}
	for i := 0; i < numIntermediates; i++ {
		key := newKey()
		tmpl := caTemplate(intermediateName(org, i), org, notBefore, rootYears-1)
		tmpl.MaxPathLen = 0
		tmpl.MaxPathLenZero = true
		ic := sign(tmpl, root, &key.PublicKey)
		ic.Key = key
		ca.Intermediates = append(ca.Intermediates, ic)
	}
	return ca
}

// NewSubCA creates a CA operated by org whose intermediate chains to the
// parent CA's root (the "Netflix Public SHA2 RSA CA under VeriSign"
// pattern of Table 9: a private organization issuing leaves that chain to
// a public trust root).
func NewSubCA(org string, kind CAKind, parent *CA, notBefore time.Time, years int) *CA {
	key := newKey()
	tmpl := caTemplate(org+" Public CA", org, notBefore, years)
	tmpl.MaxPathLen = 0
	tmpl.MaxPathLenZero = true
	ic := sign(tmpl, parent.Root, &key.PublicKey)
	ic.Key = key
	return &CA{
		Org:           org,
		Kind:          kind,
		Root:          parent.Root,
		Intermediates: []Certificate{ic},
	}
}

func intermediateName(org string, i int) string {
	suffix := []string{"TLS CA", "Secure Server CA", "RSA CA 2018", "ECC CA-3"}
	return org + " " + suffix[i%len(suffix)]
}

// signer returns the certificate used for leaf signing: the first
// intermediate when present, else the root.
func (ca *CA) signer() Certificate {
	if len(ca.Intermediates) > 0 {
		return ca.Intermediates[0]
	}
	return ca.Root
}

// IssueLeaf signs a leaf for the spec. The leaf carries no key material
// callers need; the signing chain is what matters to the study.
func (ca *CA) IssueLeaf(spec LeafSpec) Certificate {
	key := newKey()
	tmpl := &x509.Certificate{
		SerialNumber: newSerial(),
		Subject:      pkix.Name{CommonName: spec.CommonName, Organization: []string{spec.Org}},
		DNSNames:     spec.DNSNames,
		NotBefore:    spec.NotBefore,
		NotAfter:     spec.NotAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	leaf := sign(tmpl, ca.signer(), &key.PublicKey)
	leaf.Key = key
	return leaf
}

// IssueSelfSignedLeaf creates a leaf with identical issuer and subject
// (the "self-signed certificate" status rows of Table 14, e.g.
// *.samsunghrm.com or a2.tuyaus.com).
func (ca *CA) IssueSelfSignedLeaf(spec LeafSpec) Certificate {
	key := newKey()
	tmpl := &x509.Certificate{
		SerialNumber: newSerial(),
		Subject:      pkix.Name{CommonName: spec.CommonName, Organization: []string{spec.Org}},
		DNSNames:     spec.DNSNames,
		NotBefore:    spec.NotBefore,
		NotAfter:     spec.NotAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	leaf := selfSign(tmpl, key)
	return leaf
}

// ChainStyle controls how a server presents its chain — the source of the
// misconfiguration taxonomy.
type ChainStyle int

const (
	// ChainFull presents leaf + intermediates (+ root for private CAs so
	// the chain is structurally complete).
	ChainFull ChainStyle = iota
	// ChainLeafOnly presents just the leaf (incomplete for CA-signed
	// leaves; "chain length 1" rows of Table 7).
	ChainLeafOnly
	// ChainNoRoot presents leaf + intermediates without the root (normal
	// for public CAs; incomplete-to-the-device for private roots).
	ChainNoRoot
	// ChainDuplicatedLeaf presents the leaf twice (the log.samsunghrm.com
	// case: two identical certificates in the chain).
	ChainDuplicatedLeaf
)

// BuildChain assembles the presented chain for a leaf issued by this CA.
func (ca *CA) BuildChain(leaf Certificate, style ChainStyle) Chain {
	switch style {
	case ChainLeafOnly:
		return Chain{Certs: []*x509.Certificate{leaf.Cert}}
	case ChainDuplicatedLeaf:
		return Chain{Certs: []*x509.Certificate{leaf.Cert, leaf.Cert}}
	case ChainNoRoot:
		certs := []*x509.Certificate{leaf.Cert}
		for _, ic := range ca.Intermediates {
			certs = append(certs, ic.Cert)
		}
		return Chain{Certs: certs}
	default: // ChainFull
		certs := []*x509.Certificate{leaf.Cert}
		for _, ic := range ca.Intermediates {
			certs = append(certs, ic.Cert)
		}
		certs = append(certs, ca.Root.Cert)
		return Chain{Certs: certs}
	}
}
