package pki

import (
	"crypto/x509"
	"sync"
	"time"
)

// RevocationStatus is the outcome of an OCSP-style status check.
type RevocationStatus int

const (
	// RevocationGood: the responder vouches for the certificate.
	RevocationGood RevocationStatus = iota
	// RevocationRevoked: the certificate has been revoked.
	RevocationRevoked
	// RevocationUnknown: no responder, an unknown serial, or stale data —
	// the state every vendor-signed IoT certificate is in (Section 5.3:
	// "the inability of public-not-trust issuers to quickly replace or
	// rotate the certificate may open the door to attackers").
	RevocationUnknown
)

// String labels the status.
func (s RevocationStatus) String() string {
	switch s {
	case RevocationGood:
		return "good"
	case RevocationRevoked:
		return "revoked"
	default:
		return "unknown"
	}
}

// Responder is one CA's revocation service (the OCSP/CRL machinery
// public CAs run and private vendor CAs typically do not).
type Responder struct {
	ca *CA
	// UpdateInterval bounds the freshness of responses; a responder that
	// has not been updated within it answers Unknown (stale CRL).
	UpdateInterval time.Duration

	mu         sync.RWMutex
	revoked    map[string]time.Time // serial (decimal) -> revocation time
	known      map[string]bool      // serials the CA issued
	lastUpdate time.Time
}

// NewResponder creates the CA's revocation service.
func (ca *CA) NewResponder(now time.Time, updateInterval time.Duration) *Responder {
	if updateInterval <= 0 {
		updateInterval = 7 * 24 * time.Hour
	}
	return &Responder{
		ca:             ca,
		UpdateInterval: updateInterval,
		revoked:        map[string]time.Time{},
		known:          map[string]bool{},
		lastUpdate:     now,
	}
}

// Track registers an issued certificate so status checks can distinguish
// Good from Unknown.
func (r *Responder) Track(cert *x509.Certificate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.known[cert.SerialNumber.String()] = true
}

// Revoke marks a certificate revoked at the given time.
func (r *Responder) Revoke(cert *x509.Certificate, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	serial := cert.SerialNumber.String()
	r.known[serial] = true
	r.revoked[serial] = at
}

// Refresh publishes a new CRL epoch.
func (r *Responder) Refresh(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastUpdate = now
}

// Check answers the certificate's revocation status at time now.
func (r *Responder) Check(cert *x509.Certificate, now time.Time) RevocationStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if now.Sub(r.lastUpdate) > r.UpdateInterval {
		return RevocationUnknown // stale responder
	}
	serial := cert.SerialNumber.String()
	if at, ok := r.revoked[serial]; ok && !now.Before(at) {
		return RevocationRevoked
	}
	if r.known[serial] {
		return RevocationGood
	}
	return RevocationUnknown
}

// RevokedCount returns the number of revoked serials.
func (r *Responder) RevokedCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.revoked)
}

// RevocationInfra routes status checks to per-issuer responders — the
// ecosystem view: public CAs operate responders, private vendor CAs
// usually do not, so their certificates are permanently Unknown.
type RevocationInfra struct {
	mu         sync.RWMutex
	responders map[string]*Responder // issuer org -> responder
}

// NewRevocationInfra creates an empty infrastructure.
func NewRevocationInfra() *RevocationInfra {
	return &RevocationInfra{responders: map[string]*Responder{}}
}

// Register attaches a responder for an issuer organization.
func (ri *RevocationInfra) Register(org string, r *Responder) {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	ri.responders[org] = r
}

// ResponderFor returns the responder of an issuer org, if any.
func (ri *RevocationInfra) ResponderFor(org string) (*Responder, bool) {
	ri.mu.RLock()
	defer ri.mu.RUnlock()
	r, ok := ri.responders[org]
	return r, ok
}

// CheckLeaf answers the leaf's revocation status: Unknown when the
// issuer runs no responder.
func (ri *RevocationInfra) CheckLeaf(leaf *x509.Certificate, now time.Time) RevocationStatus {
	r, ok := ri.ResponderFor(IssuerOrg(leaf))
	if !ok {
		return RevocationUnknown
	}
	return r.Check(leaf, now)
}

// CompromiseExposure models the Section 5.3 risk argument: after a key
// compromise at time t, how long does a relying device keep accepting the
// certificate? With a responder the window ends at the next refresh; with
// none it runs to the certificate's own expiry.
func (ri *RevocationInfra) CompromiseExposure(leaf *x509.Certificate, compromise time.Time) time.Duration {
	if r, ok := ri.ResponderFor(IssuerOrg(leaf)); ok {
		// The compromised cert gets revoked at the next CRL epoch.
		window := r.UpdateInterval
		if leaf.NotAfter.Sub(compromise) < window {
			window = leaf.NotAfter.Sub(compromise)
		}
		if window < 0 {
			window = 0
		}
		return window
	}
	// No responder: the certificate is trusted until it expires.
	window := leaf.NotAfter.Sub(compromise)
	if window < 0 {
		window = 0
	}
	return window
}
