package pki

import (
	"testing"
	"time"
)

func TestResponderLifecycle(t *testing.T) {
	ca := NewCA("DigiCert", PublicTrustCA, t0, 25, 1)
	resp := ca.NewResponder(probe, 7*24*time.Hour)
	leaf := ca.IssueLeaf(leafSpec("a.example.com", 398))
	other := ca.IssueLeaf(leafSpec("b.example.com", 398))

	// Untracked serial: unknown.
	if got := resp.Check(leaf.Cert, probe); got != RevocationUnknown {
		t.Fatalf("untracked: %v", got)
	}
	resp.Track(leaf.Cert)
	if got := resp.Check(leaf.Cert, probe); got != RevocationGood {
		t.Fatalf("tracked: %v", got)
	}
	// Revocation takes effect at the revocation time.
	revokeAt := probe.Add(24 * time.Hour)
	resp.Revoke(leaf.Cert, revokeAt)
	if got := resp.Check(leaf.Cert, probe); got != RevocationGood {
		t.Fatalf("before revocation: %v", got)
	}
	resp.Refresh(revokeAt)
	if got := resp.Check(leaf.Cert, revokeAt); got != RevocationRevoked {
		t.Fatalf("after revocation: %v", got)
	}
	if resp.RevokedCount() != 1 {
		t.Fatalf("revoked count %d", resp.RevokedCount())
	}
	// Unrelated cert unaffected.
	resp.Track(other.Cert)
	if got := resp.Check(other.Cert, revokeAt); got != RevocationGood {
		t.Fatalf("other cert: %v", got)
	}
}

func TestStaleResponder(t *testing.T) {
	ca := NewCA("Sectigo", PublicTrustCA, t0, 25, 1)
	resp := ca.NewResponder(probe, 24*time.Hour)
	leaf := ca.IssueLeaf(leafSpec("c.example.com", 398))
	resp.Track(leaf.Cert)
	if got := resp.Check(leaf.Cert, probe.Add(12*time.Hour)); got != RevocationGood {
		t.Fatalf("fresh: %v", got)
	}
	// Past the update interval without a refresh: unknown.
	if got := resp.Check(leaf.Cert, probe.Add(48*time.Hour)); got != RevocationUnknown {
		t.Fatalf("stale: %v", got)
	}
	resp.Refresh(probe.Add(48 * time.Hour))
	if got := resp.Check(leaf.Cert, probe.Add(48*time.Hour)); got != RevocationGood {
		t.Fatalf("refreshed: %v", got)
	}
}

func TestInfraRouting(t *testing.T) {
	digicert := NewCA("DigiCert", PublicTrustCA, t0, 25, 1)
	roku := NewCA("Roku", PrivateCA, t0, 40, 0)
	infra := NewRevocationInfra()
	resp := digicert.NewResponder(probe, 7*24*time.Hour)
	infra.Register("DigiCert", resp)

	pubLeaf := digicert.IssueLeaf(leafSpec("pub.example.com", 398))
	resp.Track(pubLeaf.Cert)
	privLeaf := roku.IssueLeaf(leafSpec("api.roku.example", 5000))

	if got := infra.CheckLeaf(pubLeaf.Cert, probe); got != RevocationGood {
		t.Fatalf("public leaf: %v", got)
	}
	// Vendor CA runs no responder: permanently unknown.
	if got := infra.CheckLeaf(privLeaf.Cert, probe); got != RevocationUnknown {
		t.Fatalf("private leaf: %v", got)
	}
	if _, ok := infra.ResponderFor("Roku"); ok {
		t.Fatal("phantom responder")
	}
}

func TestCompromiseExposure(t *testing.T) {
	digicert := NewCA("DigiCert", PublicTrustCA, t0, 25, 1)
	tuya := NewCA("Tuya", PrivateCA, t0, 100, 0)
	infra := NewRevocationInfra()
	infra.Register("DigiCert", digicert.NewResponder(probe, 7*24*time.Hour))

	pubLeaf := digicert.IssueLeaf(leafSpec("pub.example.com", 398))
	privLeaf := tuya.IssueLeaf(leafSpec("iot.tuya.example", 36500))

	// Public CA: exposure bounded by the CRL refresh interval.
	pubWindow := infra.CompromiseExposure(pubLeaf.Cert, probe)
	if pubWindow != 7*24*time.Hour {
		t.Fatalf("public exposure %v", pubWindow)
	}
	// Vendor CA with a 100-year cert: exposure runs to expiry (decades).
	privWindow := infra.CompromiseExposure(privLeaf.Cert, probe)
	if privWindow < 90*365*24*time.Hour {
		t.Fatalf("private exposure %v, want decades", privWindow)
	}
	if privWindow < 1000*pubWindow {
		t.Fatalf("exposure ratio %v/%v too small", privWindow, pubWindow)
	}
	// Compromise after expiry: no exposure.
	if w := infra.CompromiseExposure(pubLeaf.Cert, pubLeaf.Cert.NotAfter.AddDate(1, 0, 0)); w != 0 {
		t.Fatalf("post-expiry exposure %v", w)
	}
}

func TestRevocationStatusString(t *testing.T) {
	for s, want := range map[RevocationStatus]string{
		RevocationGood: "good", RevocationRevoked: "revoked", RevocationUnknown: "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d => %q", s, s.String())
		}
	}
}
