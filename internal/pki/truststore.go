package pki

import (
	"crypto/x509"
	"sync"
)

// TrustStore models one root program (Mozilla / Apple / Microsoft): a set
// of trusted root certificates plus the issuer-organization index used for
// the public-vs-private classification of Section 5.2.
type TrustStore struct {
	// Name of the program ("Mozilla", "Apple", "Microsoft").
	Name string

	roots []*x509.Certificate
	pool  *x509.CertPool
	orgs  map[string]bool
}

// NewTrustStore creates an empty store.
func NewTrustStore(name string) *TrustStore {
	return &TrustStore{Name: name, pool: x509.NewCertPool(), orgs: map[string]bool{}}
}

// AddRoot registers a CA's root in the program.
func (ts *TrustStore) AddRoot(ca *CA) {
	ts.roots = append(ts.roots, ca.Root.Cert)
	ts.pool.AddCert(ca.Root.Cert)
	ts.orgs[ca.Org] = true
}

// Pool returns the root pool for x509 verification.
func (ts *TrustStore) Pool() *x509.CertPool { return ts.pool }

// Len returns the number of roots in the program.
func (ts *TrustStore) Len() int { return len(ts.roots) }

// ContainsOrg reports whether the issuer organization has a root in the
// program.
func (ts *TrustStore) ContainsOrg(org string) bool { return ts.orgs[org] }

// StoreSet bundles the three major root programs the study validated
// against (Zeek's default Mozilla store supplemented with Apple and
// Microsoft).
type StoreSet struct {
	Stores []*TrustStore

	unionMu  sync.Mutex
	union    *x509.CertPool
	unionLen int
}

// NewStoreSet creates the Mozilla+Apple+Microsoft set.
func NewStoreSet() *StoreSet {
	return &StoreSet{Stores: []*TrustStore{
		NewTrustStore("Mozilla"),
		NewTrustStore("Apple"),
		NewTrustStore("Microsoft"),
	}}
}

// AddPublicRoot registers a public trust CA in every program (the paper's
// public CAs are in all three major stores).
func (s *StoreSet) AddPublicRoot(ca *CA) {
	for _, ts := range s.Stores {
		ts.AddRoot(ca)
	}
}

// UnionPool returns a pool containing every root of every program. The
// pool is rebuilt only when roots have been added since the last call;
// roots are append-only, so the total count is a sufficient freshness
// check. Callers must not mutate the returned pool.
func (s *StoreSet) UnionPool() *x509.CertPool {
	total := 0
	for _, ts := range s.Stores {
		total += len(ts.roots)
	}
	s.unionMu.Lock()
	defer s.unionMu.Unlock()
	if s.union != nil && s.unionLen == total {
		return s.union
	}
	pool := x509.NewCertPool()
	for _, ts := range s.Stores {
		for _, c := range ts.roots {
			pool.AddCert(c)
		}
	}
	s.union, s.unionLen = pool, total
	return pool
}

// ContainsOrg reports whether any program trusts the issuer organization.
func (s *StoreSet) ContainsOrg(org string) bool {
	for _, ts := range s.Stores {
		if ts.ContainsOrg(org) {
			return true
		}
	}
	return false
}
