package pki

import (
	"crypto/x509"
	"testing"
	"time"
)

var (
	t0    = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	probe = time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC)
)

func publicCA(t testing.TB) (*CA, *StoreSet, *Validator) {
	t.Helper()
	ca := NewCA("DigiCert", PublicTrustCA, t0, 25, 1)
	stores := NewStoreSet()
	stores.AddPublicRoot(ca)
	v := NewValidator(stores)
	v.AddKnownCA(ca)
	return ca, stores, v
}

func leafSpec(cn string, days int) LeafSpec {
	nb := probe.AddDate(0, -6, 0)
	return LeafSpec{
		CommonName: cn,
		DNSNames:   []string{cn},
		Org:        "Example IoT",
		NotBefore:  nb,
		NotAfter:   nb.AddDate(0, 0, days),
	}
}

func TestValidPublicChain(t *testing.T) {
	ca, _, v := publicCA(t)
	leaf := ca.IssueLeaf(leafSpec("api.example.com", 398))
	chain := ca.BuildChain(leaf, ChainNoRoot)
	res := v.Validate(chain, "api.example.com", probe)
	if res.Status != StatusValid {
		t.Fatalf("status %v want valid", res.Status)
	}
	if res.LeafIssuerOrg != "DigiCert" {
		t.Fatalf("issuer org %q", res.LeafIssuerOrg)
	}
	if !res.RootInStores {
		t.Fatal("DigiCert should be in stores")
	}
	if res.ChainLength != 2 {
		t.Fatalf("chain length %d", res.ChainLength)
	}
}

func TestIncompleteChain(t *testing.T) {
	ca, _, v := publicCA(t)
	leaf := ca.IssueLeaf(leafSpec("cdn.example.com", 398))
	chain := ca.BuildChain(leaf, ChainLeafOnly)
	res := v.Validate(chain, "cdn.example.com", probe)
	if res.Status != StatusIncompleteChain {
		t.Fatalf("status %v want incomplete", res.Status)
	}
}

func TestIncompleteChainWithoutKnownIntermediates(t *testing.T) {
	// Without the out-of-band pool the validator still reports
	// IncompleteChain because the issuer org is in the stores.
	ca := NewCA("DigiCert", PublicTrustCA, t0, 25, 1)
	stores := NewStoreSet()
	stores.AddPublicRoot(ca)
	v := NewValidator(stores) // no AddKnownCA
	leaf := ca.IssueLeaf(leafSpec("cdn.example.com", 398))
	res := v.Validate(ca.BuildChain(leaf, ChainLeafOnly), "cdn.example.com", probe)
	if res.Status != StatusIncompleteChain {
		t.Fatalf("status %v want incomplete", res.Status)
	}
}

func TestUntrustedRootFullChain(t *testing.T) {
	// Private vendor CA presenting its full chain incl. root.
	roku := NewCA("Roku", PrivateCA, t0, 40, 1)
	stores := NewStoreSet() // Roku not added
	v := NewValidator(stores)
	leaf := roku.IssueLeaf(leafSpec("api.roku.com", 5000))
	res := v.Validate(roku.BuildChain(leaf, ChainFull), "api.roku.com", probe)
	if res.Status != StatusUntrustedRoot {
		t.Fatalf("status %v want untrusted root", res.Status)
	}
	if res.RootInStores {
		t.Fatal("Roku must not be in stores")
	}
}

func TestUntrustedRootWithoutRootPresented(t *testing.T) {
	vendor := NewCA("Samsung Electronics", PrivateCA, t0, 40, 0)
	stores := NewStoreSet()
	v := NewValidator(stores)
	leaf := vendor.IssueLeaf(leafSpec("log.samsungcloudsolution.net", 9000))
	res := v.Validate(vendor.BuildChain(leaf, ChainLeafOnly), "log.samsungcloudsolution.net", probe)
	if res.Status != StatusUntrustedRoot {
		t.Fatalf("status %v want untrusted root", res.Status)
	}
}

func TestSelfSignedLeaf(t *testing.T) {
	tuya := NewCA("Tuya", PrivateCA, t0, 100, 0)
	stores := NewStoreSet()
	v := NewValidator(stores)
	leaf := tuya.IssueSelfSignedLeaf(leafSpec("a3.tuyaus.com", 36500))
	res := v.Validate(Chain{Certs: []*x509.Certificate{leaf.Cert}}, "a3.tuyaus.com", probe)
	if res.Status != StatusSelfSigned {
		t.Fatalf("status %v want self-signed", res.Status)
	}
}

func TestDuplicatedLeafChain(t *testing.T) {
	// log.samsunghrm.com: two identical certificates in the chain.
	sam := NewCA("Samsung Electronics", PrivateCA, t0, 40, 0)
	stores := NewStoreSet()
	v := NewValidator(stores)
	leaf := sam.IssueSelfSignedLeaf(leafSpec("log.samsunghrm.com", 10950))
	chain := sam.BuildChain(leaf, ChainDuplicatedLeaf)
	res := v.Validate(chain, "log.samsunghrm.com", probe)
	if res.Status != StatusSelfSigned {
		t.Fatalf("status %v want self-signed", res.Status)
	}
	if res.ChainLength != 2 {
		t.Fatalf("chain length %d want 2", res.ChainLength)
	}
}

func TestExpiredDominates(t *testing.T) {
	ca, _, v := publicCA(t)
	spec := leafSpec("wink.example.com", 365)
	spec.NotBefore = time.Date(2018, 4, 17, 0, 0, 0, 0, time.UTC)
	spec.NotAfter = time.Date(2019, 4, 17, 0, 0, 0, 0, time.UTC)
	leaf := ca.IssueLeaf(spec)
	res := v.Validate(ca.BuildChain(leaf, ChainLeafOnly), "wink.example.com", probe)
	if res.Status != StatusExpired {
		t.Fatalf("status %v want expired", res.Status)
	}
}

func TestNotYetValidIsExpiredStatus(t *testing.T) {
	ca, _, v := publicCA(t)
	spec := leafSpec("future.example.com", 365)
	spec.NotBefore = probe.AddDate(1, 0, 0)
	spec.NotAfter = probe.AddDate(2, 0, 0)
	leaf := ca.IssueLeaf(spec)
	res := v.Validate(ca.BuildChain(leaf, ChainNoRoot), "future.example.com", probe)
	if res.Status != StatusExpired {
		t.Fatalf("status %v want expired", res.Status)
	}
}

func TestCNMismatch(t *testing.T) {
	// a2.tuyaus.com: leaf carries neither the SNI in CN nor SAN.
	tuya := NewCA("Tuya", PrivateCA, t0, 100, 0)
	stores := NewStoreSet()
	v := NewValidator(stores)
	spec := leafSpec("tuya-device.internal", 36500)
	spec.DNSNames = []string{"tuya-device.internal"}
	leaf := tuya.IssueLeaf(spec)
	res := v.Validate(tuya.BuildChain(leaf, ChainFull), "a2.tuyaus.com", probe)
	if res.Status != StatusCNMismatch {
		t.Fatalf("status %v want CN mismatch", res.Status)
	}
}

func TestEmptySNIIsNotMismatch(t *testing.T) {
	ca, _, v := publicCA(t)
	leaf := ca.IssueLeaf(leafSpec("api.example.com", 398))
	res := v.Validate(ca.BuildChain(leaf, ChainNoRoot), "", probe)
	if res.Status != StatusValid {
		t.Fatalf("status %v want valid", res.Status)
	}
}

func TestLeafSpecValidityDays(t *testing.T) {
	s := leafSpec("x", 90)
	if s.ValidityDays() != 90 {
		t.Fatalf("validity %d", s.ValidityDays())
	}
}

func TestChainStatusString(t *testing.T) {
	want := map[ChainStatus]string{
		StatusValid:           "valid",
		StatusIncompleteChain: "incomplete chain",
		StatusUntrustedRoot:   "untrusted root CA",
		StatusSelfSigned:      "self-signed certificate",
		StatusExpired:         "expired certificate",
		StatusCNMismatch:      "common name mismatch",
	}
	for s, label := range want {
		if s.String() != label {
			t.Errorf("%d => %q want %q", s, s.String(), label)
		}
	}
	if CAKind(0).String() != "public trust CA" || CAKind(1).String() != "private CA" {
		t.Fatal("CAKind strings wrong")
	}
}

func TestWildcardSAN(t *testing.T) {
	ca, _, v := publicCA(t)
	spec := leafSpec("*.example.com", 398)
	spec.DNSNames = []string{"*.example.com"}
	leaf := ca.IssueLeaf(spec)
	res := v.Validate(ca.BuildChain(leaf, ChainNoRoot), "ota.example.com", probe)
	if res.Status != StatusValid {
		t.Fatalf("status %v want valid for wildcard", res.Status)
	}
}

func TestEmptyChain(t *testing.T) {
	_, _, v := publicCA(t)
	res := v.Validate(Chain{}, "x.example.com", probe)
	if res.Status != StatusIncompleteChain {
		t.Fatalf("status %v", res.Status)
	}
}

func TestTrustStoreMembership(t *testing.T) {
	ca := NewCA("Let's Encrypt", PublicTrustCA, t0, 20, 1)
	stores := NewStoreSet()
	stores.AddPublicRoot(ca)
	if !stores.ContainsOrg("Let's Encrypt") {
		t.Fatal("org missing")
	}
	if stores.ContainsOrg("Roku") {
		t.Fatal("phantom org")
	}
	for _, ts := range stores.Stores {
		if ts.Len() != 1 {
			t.Fatalf("store %s has %d roots", ts.Name, ts.Len())
		}
	}
}

// Property-ish sweep: every ChainStyle × CA kind lands in a sane status.
func TestStyleMatrix(t *testing.T) {
	pub := NewCA("DigiCert", PublicTrustCA, t0, 25, 1)
	priv := NewCA("Nintendo", PrivateCA, t0, 30, 1)
	stores := NewStoreSet()
	stores.AddPublicRoot(pub)
	v := NewValidator(stores)
	v.AddKnownCA(pub)

	cases := []struct {
		ca    *CA
		style ChainStyle
		want  ChainStatus
	}{
		{pub, ChainNoRoot, StatusValid},
		{pub, ChainFull, StatusValid},
		{pub, ChainLeafOnly, StatusIncompleteChain},
		{priv, ChainFull, StatusUntrustedRoot},
		{priv, ChainNoRoot, StatusUntrustedRoot},
		{priv, ChainLeafOnly, StatusUntrustedRoot},
	}
	for i, c := range cases {
		leaf := c.ca.IssueLeaf(leafSpec("host.example.org", 400))
		res := v.Validate(c.ca.BuildChain(leaf, c.style), "host.example.org", probe)
		if res.Status != c.want {
			t.Errorf("case %d (%s/%d): %v want %v", i, c.ca.Org, c.style, res.Status, c.want)
		}
	}
}

func BenchmarkIssueLeaf(b *testing.B) {
	ca := NewCA("DigiCert", PublicTrustCA, t0, 25, 1)
	spec := leafSpec("bench.example.com", 398)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ca.IssueLeaf(spec)
	}
}

func BenchmarkValidate(b *testing.B) {
	ca := NewCA("DigiCert", PublicTrustCA, t0, 25, 1)
	stores := NewStoreSet()
	stores.AddPublicRoot(ca)
	v := NewValidator(stores)
	v.AddKnownCA(ca)
	leaf := ca.IssueLeaf(leafSpec("bench.example.com", 398))
	chain := ca.BuildChain(leaf, ChainNoRoot)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Validate(chain, "bench.example.com", probe)
	}
}
