package pki

import (
	"bytes"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/obs"
)

// Validator validates presented chains against the major trust stores,
// reproducing the Zeek-based pipeline of Section 5.3. KnownIntermediates
// lets the validator distinguish "incomplete chain" (a public-CA leaf whose
// server forgot the intermediates) from "untrusted root".
//
// Validate is safe for concurrent use. The chain-construction verdict
// (the ECDSA-heavy part) is cached per distinct (chain bytes, time), so
// certificates shared across many FQDNs — the dominant pattern in the
// probed world — pay for signature verification once.
type Validator struct {
	stores *StoreSet
	// knownIntermediates is the out-of-band intermediate pool (the study
	// effectively had this through AIA fetching / cached intermediates).
	knownIntermediates *x509.CertPool
	hasIntermediates   bool

	trustMu    sync.Mutex
	trustCache map[[sha256.Size]byte]ChainStatus

	// Pre-resolved metric handles (nil when uninstrumented; every method
	// on a nil handle no-ops).
	mCacheHits   *obs.Counter
	mCacheMisses *obs.Counter
	mVerdicts    map[ChainStatus]*obs.Counter
}

// Instrument attaches trust-cache hit/miss counters and per-status
// verdict tallies to the registry. Call it before concurrent use of
// Validate; a nil registry leaves the validator uninstrumented.
func (v *Validator) Instrument(m *obs.Registry) {
	if m == nil {
		return
	}
	v.mCacheHits = m.Counter("pki_trust_cache_hits_total")
	v.mCacheMisses = m.Counter("pki_trust_cache_misses_total")
	v.mVerdicts = map[ChainStatus]*obs.Counter{}
	for _, st := range []ChainStatus{
		StatusValid, StatusIncompleteChain, StatusUntrustedRoot,
		StatusSelfSigned, StatusExpired, StatusCNMismatch,
	} {
		v.mVerdicts[st] = m.Counter("pki_verdicts_total", obs.L("status", st.String()))
	}
}

// NewValidator creates a validator over the store set.
func NewValidator(stores *StoreSet) *Validator {
	return &Validator{
		stores:             stores,
		knownIntermediates: x509.NewCertPool(),
		trustCache:         map[[sha256.Size]byte]ChainStatus{},
	}
}

// AddKnownIntermediate registers an intermediate certificate available out
// of band. Registering an intermediate invalidates cached chain verdicts,
// since incomplete chains may now verify.
func (v *Validator) AddKnownIntermediate(cert *x509.Certificate) {
	v.knownIntermediates.AddCert(cert)
	v.hasIntermediates = true
	v.trustMu.Lock()
	v.trustCache = map[[sha256.Size]byte]ChainStatus{}
	v.trustMu.Unlock()
}

// AddKnownCA registers every intermediate of a CA.
func (v *Validator) AddKnownCA(ca *CA) {
	for _, ic := range ca.Intermediates {
		v.AddKnownIntermediate(ic.Cert)
	}
}

// Result is the outcome of validating one presented chain.
type Result struct {
	Status ChainStatus
	// ChainLength is the number of certificates the server presented.
	ChainLength int
	// LeafIssuerOrg is the organization of the leaf's issuer.
	LeafIssuerOrg string
	// RootInStores reports whether a store contains the chain's anchor.
	RootInStores bool
}

// Validate classifies the presented chain for the given SNI at time now.
// The precedence follows the paper's reporting: expiry dominates (Table 8
// rows are reported as expired regardless of other problems), then CN
// mismatch, then chain construction problems.
func (v *Validator) Validate(chain Chain, sni string, now time.Time) Result {
	res := Result{ChainLength: chain.Len()}
	leaf := chain.Leaf()
	if leaf == nil {
		res.Status = StatusIncompleteChain
		v.mVerdicts[res.Status].Inc()
		return res
	}
	res.LeafIssuerOrg = issuerOrg(leaf)
	res.RootInStores = v.stores.ContainsOrg(res.LeafIssuerOrg)

	if now.After(leaf.NotAfter) || now.Before(leaf.NotBefore) {
		res.Status = StatusExpired
		v.mVerdicts[res.Status].Inc()
		return res
	}
	if sni != "" && leaf.VerifyHostname(sni) != nil {
		res.Status = StatusCNMismatch
		v.mVerdicts[res.Status].Inc()
		return res
	}

	// Everything below depends only on the chain bytes and the validation
	// time — never on the SNI — so the verdict is shared across every FQDN
	// presenting the same chain.
	key := trustCacheKey(chain, now)
	v.trustMu.Lock()
	status, ok := v.trustCache[key]
	v.trustMu.Unlock()
	if ok {
		res.Status = status
		v.mCacheHits.Inc()
		v.mVerdicts[res.Status].Inc()
		return res
	}
	res.Status = v.trustStatus(chain, leaf, res.RootInStores, now)
	v.trustMu.Lock()
	v.trustCache[key] = res.Status
	v.trustMu.Unlock()
	v.mCacheMisses.Inc()
	v.mVerdicts[res.Status].Inc()
	return res
}

// trustCacheKey hashes the presented chain bytes and the validation time.
func trustCacheKey(chain Chain, now time.Time) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(now.UnixNano()))
	h.Write(buf[:])
	for _, c := range chain.Certs {
		binary.BigEndian.PutUint64(buf[:], uint64(len(c.Raw)))
		h.Write(buf[:])
		h.Write(c.Raw)
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// trustStatus classifies chain construction for a non-expired,
// hostname-matching chain: the ECDSA-heavy, SNI-independent part of
// Validate.
func (v *Validator) trustStatus(chain Chain, leaf *x509.Certificate, rootInStores bool, now time.Time) ChainStatus {
	// Assemble the intermediate pool from the presented chain.
	presented := x509.NewCertPool()
	presentedHasSelfSigned := false
	for _, c := range chain.Certs[1:] {
		presented.AddCert(c)
		if isSelfIssued(c) {
			presentedHasSelfSigned = true
		}
	}

	verify := func(roots *x509.CertPool, inters *x509.CertPool) bool {
		_, err := leaf.Verify(x509.VerifyOptions{
			Roots:         roots,
			Intermediates: inters,
			CurrentTime:   now,
			KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
		})
		return err == nil
	}

	roots := v.stores.UnionPool()
	if verify(roots, presented) {
		return StatusValid
	}

	// Self-signed leaf: identical issuer and subject.
	if isSelfIssued(leaf) {
		return StatusSelfSigned
	}

	// Duplicated-leaf chains (log.samsunghrm.com) collapse to self-signed
	// when every presented certificate is byte-identical to the leaf.
	if chain.Len() > 1 && allSameCert(chain.Certs) {
		return StatusSelfSigned
	}

	// Would the chain verify with out-of-band intermediates? Then the
	// server merely presented an incomplete chain.
	if v.hasIntermediates && verify(roots, v.knownIntermediates) {
		return StatusIncompleteChain
	}
	// A structurally complete chain ending in a self-signed root that is
	// not in the stores is the "untrusted root CA" case.
	if presentedHasSelfSigned {
		return StatusUntrustedRoot
	}

	// Private-CA chains presented without their root: the anchor is not
	// fetchable from any public program, so this is an untrusted root when
	// the issuer is not a public-store org; otherwise the public-CA server
	// sent an incomplete chain.
	if rootInStores {
		return StatusIncompleteChain
	}
	return StatusUntrustedRoot
}

// issuerOrg extracts the issuer organization (falling back to the issuer
// CN when the organization is absent).
func issuerOrg(c *x509.Certificate) string {
	if len(c.Issuer.Organization) > 0 {
		return c.Issuer.Organization[0]
	}
	return c.Issuer.CommonName
}

// IssuerOrg is the exported form of issuerOrg.
func IssuerOrg(c *x509.Certificate) string { return issuerOrg(c) }

// isSelfIssued reports whether issuer and subject are identical.
func isSelfIssued(c *x509.Certificate) bool {
	return bytes.Equal(c.RawIssuer, c.RawSubject)
}

// IsSelfIssued is the exported form of isSelfIssued.
func IsSelfIssued(c *x509.Certificate) bool { return isSelfIssued(c) }

func allSameCert(certs []*x509.Certificate) bool {
	for _, c := range certs[1:] {
		if !bytes.Equal(c.Raw, certs[0].Raw) {
			return false
		}
	}
	return true
}
