package pki

import (
	"bytes"
	"crypto/x509"
	"time"
)

// Validator validates presented chains against the major trust stores,
// reproducing the Zeek-based pipeline of Section 5.3. KnownIntermediates
// lets the validator distinguish "incomplete chain" (a public-CA leaf whose
// server forgot the intermediates) from "untrusted root".
type Validator struct {
	stores *StoreSet
	// knownIntermediates is the out-of-band intermediate pool (the study
	// effectively had this through AIA fetching / cached intermediates).
	knownIntermediates *x509.CertPool
	hasIntermediates   bool
}

// NewValidator creates a validator over the store set.
func NewValidator(stores *StoreSet) *Validator {
	return &Validator{stores: stores, knownIntermediates: x509.NewCertPool()}
}

// AddKnownIntermediate registers an intermediate certificate available out
// of band.
func (v *Validator) AddKnownIntermediate(cert *x509.Certificate) {
	v.knownIntermediates.AddCert(cert)
	v.hasIntermediates = true
}

// AddKnownCA registers every intermediate of a CA.
func (v *Validator) AddKnownCA(ca *CA) {
	for _, ic := range ca.Intermediates {
		v.AddKnownIntermediate(ic.Cert)
	}
}

// Result is the outcome of validating one presented chain.
type Result struct {
	Status ChainStatus
	// ChainLength is the number of certificates the server presented.
	ChainLength int
	// LeafIssuerOrg is the organization of the leaf's issuer.
	LeafIssuerOrg string
	// RootInStores reports whether a store contains the chain's anchor.
	RootInStores bool
}

// Validate classifies the presented chain for the given SNI at time now.
// The precedence follows the paper's reporting: expiry dominates (Table 8
// rows are reported as expired regardless of other problems), then CN
// mismatch, then chain construction problems.
func (v *Validator) Validate(chain Chain, sni string, now time.Time) Result {
	res := Result{ChainLength: chain.Len()}
	leaf := chain.Leaf()
	if leaf == nil {
		res.Status = StatusIncompleteChain
		return res
	}
	res.LeafIssuerOrg = issuerOrg(leaf)
	res.RootInStores = v.stores.ContainsOrg(res.LeafIssuerOrg)

	if now.After(leaf.NotAfter) || now.Before(leaf.NotBefore) {
		res.Status = StatusExpired
		return res
	}
	if sni != "" && leaf.VerifyHostname(sni) != nil {
		res.Status = StatusCNMismatch
		return res
	}

	// Assemble the intermediate pool from the presented chain.
	presented := x509.NewCertPool()
	presentedHasSelfSigned := false
	for _, c := range chain.Certs[1:] {
		presented.AddCert(c)
		if isSelfIssued(c) {
			presentedHasSelfSigned = true
		}
	}

	verify := func(roots *x509.CertPool, inters *x509.CertPool) bool {
		_, err := leaf.Verify(x509.VerifyOptions{
			Roots:         roots,
			Intermediates: inters,
			CurrentTime:   now,
			KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
		})
		return err == nil
	}

	roots := v.stores.UnionPool()
	if verify(roots, presented) {
		res.Status = StatusValid
		return res
	}

	// Self-signed leaf: identical issuer and subject.
	if isSelfIssued(leaf) {
		res.Status = StatusSelfSigned
		return res
	}

	// Duplicated-leaf chains (log.samsunghrm.com) collapse to self-signed
	// when every presented certificate is byte-identical to the leaf.
	if chain.Len() > 1 && allSameCert(chain.Certs) {
		res.Status = StatusSelfSigned
		return res
	}

	// Would the chain verify with out-of-band intermediates? Then the
	// server merely presented an incomplete chain.
	if v.hasIntermediates && verify(roots, v.knownIntermediates) {
		res.Status = StatusIncompleteChain
		return res
	}
	// A structurally complete chain ending in a self-signed root that is
	// not in the stores is the "untrusted root CA" case.
	if presentedHasSelfSigned {
		res.Status = StatusUntrustedRoot
		return res
	}

	// Private-CA chains presented without their root: the anchor is not
	// fetchable from any public program, so this is an untrusted root when
	// the issuer is not a public-store org; otherwise the public-CA server
	// sent an incomplete chain.
	if res.RootInStores {
		res.Status = StatusIncompleteChain
		return res
	}
	res.Status = StatusUntrustedRoot
	return res
}

// issuerOrg extracts the issuer organization (falling back to the issuer
// CN when the organization is absent).
func issuerOrg(c *x509.Certificate) string {
	if len(c.Issuer.Organization) > 0 {
		return c.Issuer.Organization[0]
	}
	return c.Issuer.CommonName
}

// IssuerOrg is the exported form of issuerOrg.
func IssuerOrg(c *x509.Certificate) string { return issuerOrg(c) }

// isSelfIssued reports whether issuer and subject are identical.
func isSelfIssued(c *x509.Certificate) bool {
	return bytes.Equal(c.RawIssuer, c.RawSubject)
}

// IsSelfIssued is the exported form of isSelfIssued.
func IsSelfIssued(c *x509.Certificate) bool { return isSelfIssued(c) }

func allSameCert(certs []*x509.Certificate) bool {
	for _, c := range certs[1:] {
		if !bytes.Equal(c.Raw, certs[0].Raw) {
			return false
		}
	}
	return true
}
