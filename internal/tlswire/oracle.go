// Differential oracle against crypto/tls. The standard library carries
// an independent, battle-tested implementation of the ClientHello wire
// format; round-tripping hellos through it cross-checks this package's
// encoder and parser in both directions:
//
//   - CaptureCryptoTLSHello records the ClientHello bytes a crypto/tls
//     client emits for a given tls.Config, which must then parse with
//     ParseRecord to matching fields (our parser vs their encoder);
//   - CryptoTLSView feeds an arbitrary record to a crypto/tls server and
//     captures its ClientHelloInfo, which CompareWithCryptoTLS reconciles
//     against our parse (our encoder/parser vs their parser).
//
// crypto/tls is deliberately stricter than a measurement parser — it
// rejects hellos this package tolerates — so the oracle only demands
// agreement when both sides accept, plus the one-sided rule that nothing
// crypto/tls accepts may fail to parse here.
package tlswire

import (
	"bytes"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// errHelloCaptured aborts a crypto/tls server handshake once the
// ClientHelloInfo is in hand; nothing past the hello matters here.
var errHelloCaptured = errors.New("tlswire: hello captured")

// oracleConn is the synchronous transport behind both oracle directions:
// reads replay a fixed buffer (then fail), writes are captured (client
// direction) or discarded (server direction). There is no peer and no
// blocking, so a crypto/tls handshake over it always terminates — the
// property that makes the differential fuzz target viable.
type oracleConn struct {
	in  *bytes.Reader
	out *bytes.Buffer // nil: discard writes
}

func (c *oracleConn) Read(p []byte) (int, error) {
	if c.in == nil {
		return 0, io.ErrUnexpectedEOF
	}
	return c.in.Read(p)
}

func (c *oracleConn) Write(p []byte) (int, error) {
	if c.out != nil {
		return c.out.Write(p)
	}
	return len(p), nil
}

func (c *oracleConn) Close() error                     { return nil }
func (c *oracleConn) LocalAddr() net.Addr              { return oracleAddr{} }
func (c *oracleConn) RemoteAddr() net.Addr             { return oracleAddr{} }
func (c *oracleConn) SetDeadline(time.Time) error      { return nil }
func (c *oracleConn) SetReadDeadline(time.Time) error  { return nil }
func (c *oracleConn) SetWriteDeadline(time.Time) error { return nil }

type oracleAddr struct{}

func (oracleAddr) Network() string { return "tlswire-oracle" }
func (oracleAddr) String() string  { return "tlswire-oracle" }

// CaptureCryptoTLSHello returns the raw ClientHello record a crypto/tls
// client would send for cfg. The handshake never proceeds past the first
// flight; the config is cloned and InsecureSkipVerify is forced on so
// certificate material is never needed.
func CaptureCryptoTLSHello(cfg *tls.Config) ([]byte, error) {
	if cfg == nil {
		cfg = &tls.Config{}
	}
	cfg = cfg.Clone()
	cfg.InsecureSkipVerify = true
	conn := &oracleConn{out: &bytes.Buffer{}}
	// The handshake fails by construction (reads are refused); the hello
	// bytes are already on the wire by then.
	_ = tls.Client(conn, cfg).Handshake()
	rec := conn.out.Bytes()
	if len(rec) == 0 {
		return nil, errors.New("tlswire: crypto/tls client wrote no hello")
	}
	// The first flight is a single handshake record; trim any retries or
	// alerts that may follow it.
	if len(rec) >= 5 {
		if n := 5 + int(rec[3])<<8 + int(rec[4]); n <= len(rec) {
			rec = rec[:n]
		}
	}
	return rec, nil
}

// CryptoTLSHelloView is crypto/tls's independent parse of a ClientHello,
// captured from its server-side ClientHelloInfo callback.
type CryptoTLSHelloView struct {
	ServerName        string
	CipherSuites      []uint16
	SupportedVersions []uint16
	SupportedProtos   []string
	SupportedCurves   []uint16
	SignatureSchemes  []uint16
}

// CryptoTLSView feeds record to a crypto/tls server and reports whether
// the standard library accepted it as a ClientHello, along with its view
// of the hello when it did. A rejection (ok == false) is not an error:
// crypto/tls enforces stricter rules than a measurement parser.
func CryptoTLSView(record []byte) (view CryptoTLSHelloView, ok bool) {
	srvCfg := &tls.Config{
		GetConfigForClient: func(info *tls.ClientHelloInfo) (*tls.Config, error) {
			view = CryptoTLSHelloView{
				ServerName:        info.ServerName,
				CipherSuites:      append([]uint16(nil), info.CipherSuites...),
				SupportedVersions: append([]uint16(nil), info.SupportedVersions...),
				SupportedProtos:   append([]string(nil), info.SupportedProtos...),
			}
			for _, c := range info.SupportedCurves {
				view.SupportedCurves = append(view.SupportedCurves, uint16(c))
			}
			for _, s := range info.SignatureSchemes {
				view.SignatureSchemes = append(view.SignatureSchemes, uint16(s))
			}
			ok = true
			return nil, errHelloCaptured
		},
	}
	// The replay conn serves exactly the record then EOFs, and swallows
	// the server's alerts; the handshake therefore always returns on this
	// goroutine, with the callback either fired or not.
	_ = tls.Server(&oracleConn{in: bytes.NewReader(record)}, srvCfg).Handshake()
	return view, ok
}

// CompareWithCryptoTLS cross-checks one ClientHello record against
// crypto/tls and returns the list of disagreements (nil when the oracles
// agree). The invariants:
//
//  1. anything crypto/tls accepts must parse here;
//  2. SNI, the ciphersuite list, and the ALPN protocol list must match
//     exactly;
//  3. when the hello carries supported_versions, both sides must agree on
//     the set of known, non-GREASE versions proposed;
//  4. when the hello carries supported_groups or signature_algorithms,
//     the decoded lists must match crypto/tls's exactly (it rejects
//     malformed vectors outright, so acceptance implies a clean list).
func CompareWithCryptoTLS(record []byte) []string {
	view, ok := CryptoTLSView(record)
	if !ok {
		return nil // crypto/tls is stricter; nothing to compare
	}
	ours, perr := ParseRecord(record)
	if perr != nil {
		return []string{fmt.Sprintf("crypto/tls accepted a record tlswire rejects: %v", perr)}
	}
	var diffs []string
	if sni := ours.SNI(); sni != view.ServerName {
		diffs = append(diffs, fmt.Sprintf("SNI: tlswire %q vs crypto/tls %q", sni, view.ServerName))
	}
	if !equalUint16s(ours.CipherSuites, view.CipherSuites) {
		diffs = append(diffs, fmt.Sprintf("ciphersuites: tlswire %04x vs crypto/tls %04x",
			ours.CipherSuites, view.CipherSuites))
	}
	if alpn := alpnProtocols(ours); !equalStrings(alpn, view.SupportedProtos) {
		diffs = append(diffs, fmt.Sprintf("ALPN: tlswire %q vs crypto/tls %q", alpn, view.SupportedProtos))
	}
	if ours.HasExtension(ExtSupportedVersions) {
		a := knownVersionSet(ours.SupportedVersions())
		b := knownVersionSet(view.SupportedVersions)
		if !equalUint16s(a, b) {
			diffs = append(diffs, fmt.Sprintf("supported versions: tlswire %04x vs crypto/tls %04x", a, b))
		}
	}
	if ours.HasExtension(ExtSupportedGroups) {
		if a := ours.SupportedGroups(); !equalUint16s(a, view.SupportedCurves) {
			diffs = append(diffs, fmt.Sprintf("supported groups: tlswire %04x vs crypto/tls %04x",
				a, view.SupportedCurves))
		}
	}
	if ours.HasExtension(ExtSignatureAlgorithms) {
		if a := ours.SignatureAlgorithms(); !equalUint16s(a, view.SignatureSchemes) {
			diffs = append(diffs, fmt.Sprintf("signature algorithms: tlswire %04x vs crypto/tls %04x",
				a, view.SignatureSchemes))
		}
	}
	return diffs
}

// ValidateCryptoTLS13Capture captures the ClientHello a crypto/tls
// client emits when pinned to TLS 1.3 and checks this package's 1.3
// extension views against what that hello must contain by construction:
// supported_versions offering 0x0304, at least one key_share whose group
// is also advertised in supported_groups, and a non-empty
// signature_algorithms list. It returns the list of violations (nil when
// the capture validates) — the 1.3 half of the differential oracle,
// covering key_share, which ClientHelloInfo never surfaces.
func ValidateCryptoTLS13Capture() []string {
	rec, err := CaptureCryptoTLSHello(&tls.Config{
		ServerName: "oracle13.invalid",
		MinVersion: tls.VersionTLS13,
		MaxVersion: tls.VersionTLS13,
	})
	if err != nil {
		return []string{fmt.Sprintf("capture 1.3 hello: %v", err)}
	}
	ch, err := ParseRecord(rec)
	if err != nil {
		return []string{fmt.Sprintf("tlswire rejects the crypto/tls 1.3 hello: %v", err)}
	}
	var diffs []string
	vs := knownVersionSet(ch.SupportedVersions())
	has13 := false
	for _, v := range vs {
		if v == uint16(VersionTLS13) {
			has13 = true
		}
	}
	if !has13 {
		diffs = append(diffs, fmt.Sprintf("1.3 capture supported_versions %04x lacks 0x0304", vs))
	}
	if ch.EffectiveVersion() != VersionTLS13 {
		diffs = append(diffs, fmt.Sprintf("1.3 capture effective version %v, want TLS 1.3", ch.EffectiveVersion()))
	}
	shares := ch.KeyShares()
	if len(shares) == 0 {
		diffs = append(diffs, "1.3 capture carries no parseable key_share entries")
	}
	groups := ch.SupportedGroups()
	for _, s := range shares {
		if len(s.Data) == 0 {
			diffs = append(diffs, fmt.Sprintf("1.3 capture key_share %s has empty key data", GroupName(s.Group)))
		}
		offered := false
		for _, g := range groups {
			if g == s.Group {
				offered = true
			}
		}
		if !offered {
			diffs = append(diffs, fmt.Sprintf("1.3 capture key_share group %s missing from supported_groups %04x",
				GroupName(s.Group), groups))
		}
	}
	if len(ch.SignatureAlgorithms()) == 0 {
		diffs = append(diffs, "1.3 capture carries no parseable signature_algorithms")
	}
	return diffs
}

// alpnProtocols parses the ALPN extension into its protocol list, or nil
// when absent or malformed (crypto/tls rejects malformed ALPN outright).
func alpnProtocols(ch *ClientHello) []string {
	for _, e := range ch.Extensions {
		if e.Type != ExtALPN {
			continue
		}
		d := e.Data
		if len(d) < 2 {
			return nil
		}
		listLen := int(d[0])<<8 | int(d[1])
		d = d[2:]
		if listLen != len(d) {
			return nil
		}
		var protos []string
		for len(d) > 0 {
			n := int(d[0])
			d = d[1:]
			if n > len(d) {
				return nil
			}
			protos = append(protos, string(d[:n]))
			d = d[n:]
		}
		return protos
	}
	return nil
}

// knownVersionSet filters to known, non-GREASE versions, deduplicated and
// sorted descending — the canonical form both oracles are reduced to.
func knownVersionSet(vs []uint16) []uint16 {
	seen := map[uint16]bool{}
	var out []uint16
	for _, v := range vs {
		if IsGREASEExtension(v) || !Version(v).Known() || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func equalUint16s(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
