package tlswire

// Native fuzz targets for the wire-format parsers. The checked-in seed
// corpus under testdata/fuzz/<Target>/ runs as regression cases on
// every plain `go test`; CI additionally runs each target with
// -fuzztime 10s as a smoke step. Three invariants are enforced:
//
//   - parsing never panics, and accessors on a parsed hello never
//     panic, for arbitrary input;
//   - ParseRecord and ParseHandshake agree when the same handshake
//     bytes are framed in a record;
//   - Marshal∘Parse is the identity up to documented normalization
//     (absent compression methods marshal as {0}).

import (
	"bytes"
	"testing"
)

// mustMarshal builds the record for a known-good hello used as seed.
func mustMarshal(t testing.TB, ch *ClientHello) []byte {
	t.Helper()
	rec, err := ch.Marshal()
	if err != nil {
		t.Fatalf("marshal seed: %v", err)
	}
	return rec
}

func seedHello() *ClientHello {
	ch := &ClientHello{
		LegacyVersion:      VersionTLS12,
		SessionID:          []byte{1, 2, 3, 4},
		CipherSuites:       []uint16{0x1301, 0xC02F, 0x000A},
		CompressionMethods: []byte{0},
		Extensions: []Extension{
			{Type: ExtSupportedVersions, Data: []byte{2, 0x03, 0x04}},
			{Type: ExtALPN, Data: []byte{0, 5, 4, 'h', 't', 't', 'p'}},
			{Type: ExtSessionTicket, Data: nil},
		},
	}
	for i := range ch.Random {
		ch.Random[i] = byte(i)
	}
	ch.SetSNI("device.vendor.example")
	return ch
}

// checkParsed exercises every accessor of a successfully parsed hello;
// none may panic regardless of how hostile the input was.
func checkParsed(ch *ClientHello) {
	_ = ch.SNI()
	_ = ch.EffectiveVersion()
	_ = ch.ExtensionTypes()
	_ = ch.HasExtension(ExtServerName)
	_ = ch.LegacyVersion.String()
	_ = ch.LegacyVersion.Known()
	_ = ch.SupportedVersions()
	_ = ch.SupportedGroups()
	_ = ch.SignatureAlgorithms()
	_ = ch.PSKKeyExchangeModes()
	for _, ks := range ch.KeyShares() {
		_ = GroupName(ks.Group)
	}
	for _, e := range ch.Extensions {
		_ = e.Type.String()
	}
}

// checkRoundTrip asserts Marshal∘Parse is the identity on a parsed
// hello (up to compression-method normalization).
func checkRoundTrip(t *testing.T, ch *ClientHello) {
	if len(ch.CipherSuites) == 0 {
		return // parse tolerates an empty suite list; Marshal rejects it
	}
	rec, err := ch.Marshal()
	if err != nil {
		t.Fatalf("re-marshal of parsed hello failed: %v", err)
	}
	ch2, err := ParseRecord(rec)
	if err != nil {
		t.Fatalf("re-parse of marshaled hello failed: %v", err)
	}
	if ch2.LegacyVersion != ch.LegacyVersion {
		t.Fatalf("round-trip version: %v != %v", ch2.LegacyVersion, ch.LegacyVersion)
	}
	if ch2.Random != ch.Random {
		t.Fatalf("round-trip random changed")
	}
	if !bytes.Equal(ch2.SessionID, ch.SessionID) {
		t.Fatalf("round-trip session id: %x != %x", ch2.SessionID, ch.SessionID)
	}
	if len(ch2.CipherSuites) != len(ch.CipherSuites) {
		t.Fatalf("round-trip suites: %v != %v", ch2.CipherSuites, ch.CipherSuites)
	}
	for i := range ch.CipherSuites {
		if ch2.CipherSuites[i] != ch.CipherSuites[i] {
			t.Fatalf("round-trip suites: %v != %v", ch2.CipherSuites, ch.CipherSuites)
		}
	}
	comp := ch.CompressionMethods
	if len(comp) == 0 {
		comp = []byte{0} // Marshal's documented normalization
	}
	if !bytes.Equal(ch2.CompressionMethods, comp) {
		t.Fatalf("round-trip compression: %x != %x", ch2.CompressionMethods, comp)
	}
	if len(ch2.Extensions) != len(ch.Extensions) {
		t.Fatalf("round-trip extensions: %d != %d", len(ch2.Extensions), len(ch.Extensions))
	}
	for i := range ch.Extensions {
		if ch2.Extensions[i].Type != ch.Extensions[i].Type || !bytes.Equal(ch2.Extensions[i].Data, ch.Extensions[i].Data) {
			t.Fatalf("round-trip extension %d: %v != %v", i, ch2.Extensions[i], ch.Extensions[i])
		}
	}
}

func FuzzParseRecord(f *testing.F) {
	rec := mustMarshal(f, seedHello())
	f.Add(rec)
	f.Add(rec[:5])
	f.Add(rec[:len(rec)-3])
	f.Add([]byte{})
	f.Add([]byte{23, 3, 3, 0, 0})               // not a handshake
	f.Add([]byte{22, 3, 3, 0, 1, 2})            // handshake, not a ClientHello
	f.Add([]byte{22, 3, 3, 0xFF, 0xFF, 1})      // record claims more than present
	f.Add(append(bytes.Clone(rec), 0xAA, 0xBB)) // trailing garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		ch, err := ParseRecord(data)
		if err != nil {
			if ch != nil {
				t.Fatalf("non-nil hello alongside error %v", err)
			}
			return
		}
		checkParsed(ch)
		checkRoundTrip(t, ch)
	})
}

func FuzzParseHandshake(f *testing.F) {
	rec := mustMarshal(f, seedHello())
	hs := rec[5:] // strip the record header
	f.Add(hs)
	f.Add(hs[:3])
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{2, 0, 0, 0}) // ServerHello type
	f.Fuzz(func(t *testing.T, data []byte) {
		ch, err := ParseHandshake(data)
		if err == nil {
			checkParsed(ch)
			checkRoundTrip(t, ch)
		}
		// Differential check: the same handshake framed in a record
		// must parse to the same outcome.
		if len(data) > 0xFFFF {
			return
		}
		framed := make([]byte, 0, 5+len(data))
		framed = append(framed, 22, 3, 3, byte(len(data)>>8), byte(len(data)))
		framed = append(framed, data...)
		ch2, err2 := ParseRecord(framed)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("record framing changed outcome: %v vs %v", err, err2)
		}
		if err == nil && !bytes.Equal(mustRemarshal(t, ch), mustRemarshal(t, ch2)) {
			t.Fatalf("record framing changed parsed hello")
		}
	})
}

// mustRemarshal canonicalizes a parsed hello for comparison; an empty
// suite list (unmarshalable) compares by SNI and extension count.
func mustRemarshal(t *testing.T, ch *ClientHello) []byte {
	if len(ch.CipherSuites) == 0 {
		return []byte(ch.SNI())
	}
	rec, err := ch.Marshal()
	if err != nil {
		t.Fatalf("canonical re-marshal: %v", err)
		return nil
	}
	return rec
}

// FuzzClientHelloVsCryptoTLS is the differential target: every input is
// offered to both this package's parser and crypto/tls's (via the
// server-side ClientHelloInfo callback). Whenever the stricter stdlib
// accepts a record, tlswire must parse it too and the two views must
// agree on SNI, ciphersuites, ALPN, and supported versions. The seed
// corpus under testdata/fuzz/FuzzClientHelloVsCryptoTLS/ mirrors the
// FuzzParseRecord corpus plus a crypto/tls-generated hello.
func FuzzClientHelloVsCryptoTLS(f *testing.F) {
	rec := mustMarshal(f, seedHello())
	f.Add(rec)
	f.Add(rec[:5])
	f.Add([]byte{})
	f.Add([]byte{22, 3, 1, 0, 4, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // crypto/tls's record layer caps well below this
		}
		if diffs := CompareWithCryptoTLS(data); len(diffs) > 0 {
			t.Fatalf("oracle disagreement on %x: %v", data, diffs)
		}
	})
}

// seedHello13 is a TLS 1.3-shaped hello exercising every extension the
// 1.3 accessors decode: supported_versions, key_share (two groups),
// supported_groups, signature_algorithms, psk_key_exchange_modes.
func seedHello13() *ClientHello {
	ch := &ClientHello{
		LegacyVersion:      VersionTLS12,
		SessionID:          []byte{0xA0, 0xA1, 0xA2, 0xA3},
		CipherSuites:       []uint16{0x1301, 0x1302, 0x1303, 0xC02F},
		CompressionMethods: []byte{0},
	}
	for i := range ch.Random {
		ch.Random[i] = byte(0x13 ^ i)
	}
	ch.SetSNI("device13.vendor.example")
	ch.SetSupportedVersions([]uint16{uint16(VersionTLS13), uint16(VersionTLS12)})
	ch.SetSupportedGroups([]uint16{GroupX25519, GroupP256, GroupP384})
	ch.SetSignatureAlgorithms([]uint16{0x0403, 0x0804, 0x0401})
	ch.SetPSKKeyExchangeModes([]byte{1})
	ch.SetKeyShares([]KeyShare{
		{Group: GroupX25519, Data: bytes.Repeat([]byte{0x1D}, 32)},
		{Group: GroupP256, Data: bytes.Repeat([]byte{0x17}, 65)},
	})
	return ch
}

// FuzzClientHello13VsCryptoTLS is the TLS 1.3 differential target: the
// seed corpus is 1.3-shaped (supported_versions, key_share,
// signature_algorithms, psk_key_exchange_modes) so mutation explores the
// new extension parsers, and every input goes through the full crypto/tls
// comparison — including the supported_groups and signature_algorithms
// cross-checks — hunting one-sided strictness bugs.
func FuzzClientHello13VsCryptoTLS(f *testing.F) {
	rec13 := mustMarshal(f, seedHello13())
	f.Add(rec13)
	f.Add(rec13[:len(rec13)-7])
	// A truncated key_share list length (claims more entries than sent).
	trunc := seedHello13()
	trunc.Extensions = setExtension(trunc.Extensions, ExtKeyShare, []byte{0xFF, 0xFF, 0x00, 0x1D})
	f.Add(mustMarshal(f, trunc))
	// HRR-style bare-group payload in a ClientHello position.
	bare := seedHello13()
	bare.Extensions = setExtension(bare.Extensions, ExtKeyShare, []byte{0x00, 0x1D})
	f.Add(mustMarshal(f, bare))
	// GREASE versions and groups mixed into the offers.
	grease := seedHello13()
	grease.SetSupportedVersions([]uint16{0x0A0A, uint16(VersionTLS13), uint16(VersionTLS12)})
	grease.SetSupportedGroups([]uint16{0x1A1A, GroupX25519, GroupP256})
	f.Add(mustMarshal(f, grease))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // crypto/tls's record layer caps well below this
		}
		if diffs := CompareWithCryptoTLS(data); len(diffs) > 0 {
			t.Fatalf("1.3 oracle disagreement on %x: %v", data, diffs)
		}
		if ch, err := ParseRecord(data); err == nil {
			checkParsed(ch)
		}
	})
}

// FuzzMarshalParse drives the round trip from the structured side:
// arbitrary field values that Marshal accepts must parse back to the
// same hello.
func FuzzMarshalParse(f *testing.F) {
	f.Add(uint16(0x0303), []byte{1, 2}, []byte{0x13, 0x01, 0xC0, 0x2F}, []byte{0}, uint16(0), []byte("\x00\x04\x00\x00\x01a"))
	f.Add(uint16(0x0304), []byte{}, []byte{0x13, 0x03}, []byte{}, uint16(43), []byte{2, 3, 4})
	f.Add(uint16(0x0300), []byte{9}, []byte{0, 10}, []byte{1, 0}, uint16(0xFF01), []byte{0})
	f.Fuzz(func(t *testing.T, version uint16, sessionID, suites, comp []byte, extType uint16, extData []byte) {
		ch := &ClientHello{
			LegacyVersion:      Version(version),
			SessionID:          sessionID,
			CompressionMethods: comp,
			Extensions:         []Extension{{Type: ExtensionType(extType), Data: extData}},
		}
		for i := 0; i+1 < len(suites); i += 2 {
			ch.CipherSuites = append(ch.CipherSuites, uint16(suites[i])<<8|uint16(suites[i+1]))
		}
		rec, err := ch.Marshal()
		if err != nil {
			return // Marshal rejected the shape; nothing to verify
		}
		ch2, err := ParseRecord(rec)
		if err != nil {
			t.Fatalf("marshaled hello does not parse: %v", err)
		}
		checkParsed(ch2)
		checkRoundTrip(t, ch2)
		if ch2.LegacyVersion != ch.LegacyVersion {
			t.Fatalf("version: %v != %v", ch2.LegacyVersion, ch.LegacyVersion)
		}
		if len(ch2.CipherSuites) != len(ch.CipherSuites) {
			t.Fatalf("suites: %v != %v", ch2.CipherSuites, ch.CipherSuites)
		}
	})
}
