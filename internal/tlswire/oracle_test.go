package tlswire

import (
	"crypto/tls"
	"testing"
)

// TestCaptureCryptoTLSHelloParses: our parser must accept crypto/tls's
// encoder output and recover the config that produced it (their encoder
// vs our parser).
func TestCaptureCryptoTLSHelloParses(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  *tls.Config
	}{
		{"default", &tls.Config{ServerName: "device.vendor.example"}},
		{"tls12-only", &tls.Config{
			ServerName: "cam.iot.example",
			MinVersion: tls.VersionTLS12, MaxVersion: tls.VersionTLS12,
			CipherSuites: []uint16{tls.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256},
		}},
		{"alpn", &tls.Config{ServerName: "tv.iot.example", NextProtos: []string{"h2", "http/1.1"}}},
		{"no-sni", &tls.Config{InsecureSkipVerify: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := CaptureCryptoTLSHello(tc.cfg)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			ch, err := ParseRecord(rec)
			if err != nil {
				t.Fatalf("tlswire rejects crypto/tls's own hello: %v", err)
			}
			if got, want := ch.SNI(), tc.cfg.ServerName; got != want {
				t.Errorf("SNI = %q, config says %q", got, want)
			}
			if len(tc.cfg.NextProtos) > 0 {
				if got := alpnProtocols(ch); len(got) != len(tc.cfg.NextProtos) {
					t.Errorf("ALPN = %q, config says %q", got, tc.cfg.NextProtos)
				}
			}
			if tc.cfg.MaxVersion == tls.VersionTLS12 {
				if v := ch.EffectiveVersion(); v != VersionTLS12 {
					t.Errorf("EffectiveVersion = %v, want TLS 1.2", v)
				}
			} else if v := ch.EffectiveVersion(); v != VersionTLS13 {
				t.Errorf("EffectiveVersion = %v, want TLS 1.3 for a default config", v)
			}
			// The record must survive the full differential check too.
			if diffs := CompareWithCryptoTLS(rec); len(diffs) > 0 {
				t.Errorf("oracle disagrees on crypto/tls's own hello: %v", diffs)
			}
		})
	}
}

// TestCryptoTLSViewOfOurHello: crypto/tls must accept our encoder's
// output and see the same SNI, suites, and ALPN (our encoder vs their
// parser).
func TestCryptoTLSViewOfOurHello(t *testing.T) {
	ch := seedHello()
	rec := mustMarshal(t, ch)
	view, ok := CryptoTLSView(rec)
	if !ok {
		t.Fatal("crypto/tls rejected a well-formed tlswire hello")
	}
	if view.ServerName != ch.SNI() {
		t.Errorf("crypto/tls SNI %q, ours %q", view.ServerName, ch.SNI())
	}
	if !equalUint16s(view.CipherSuites, ch.CipherSuites) {
		t.Errorf("crypto/tls suites %04x, ours %04x", view.CipherSuites, ch.CipherSuites)
	}
	if diffs := CompareWithCryptoTLS(rec); len(diffs) > 0 {
		t.Errorf("oracle disagreement: %v", diffs)
	}
}

// TestCryptoTLSViewRejectsGarbage: rejection is reported as ok=false,
// never a panic or a hang.
func TestCryptoTLSViewRejectsGarbage(t *testing.T) {
	for _, rec := range [][]byte{
		nil,
		{},
		{22, 3, 3, 0, 0},
		{23, 3, 3, 0, 1, 0},             // not a handshake record
		{22, 3, 3, 0xFF, 0xFF, 1, 2, 3}, // truncated
		[]byte("plain text, not TLS at all"),
	} {
		if _, ok := CryptoTLSView(rec); ok {
			t.Errorf("crypto/tls accepted garbage %x", rec)
		}
		if diffs := CompareWithCryptoTLS(rec); len(diffs) > 0 {
			t.Errorf("garbage produced diffs: %v", diffs)
		}
	}
}

// TestCompareDetectsParserDivergence: a record whose SNI crypto/tls sees
// differently must surface as a diff — exercised by corrupting our view
// via a deliberately inconsistent re-encode.
func TestCompareDetectsParserDivergence(t *testing.T) {
	// Build a hello with two server_name extensions: tlswire returns the
	// first host_name it finds; crypto/tls rejects duplicate extensions.
	// The invariant "crypto/tls accepted => views agree" must therefore
	// hold vacuously (rejection), not by accident.
	ch := seedHello()
	ch.Extensions = append(ch.Extensions, Extension{Type: ExtServerName, Data: ch.Extensions[len(ch.Extensions)-1].Data})
	rec := mustMarshal(t, ch)
	if _, ok := CryptoTLSView(rec); ok {
		// If a future stdlib accepts duplicates, the comparison itself
		// must still agree.
		if diffs := CompareWithCryptoTLS(rec); len(diffs) > 0 {
			t.Errorf("diverged on duplicate-extension hello: %v", diffs)
		}
	}
}

// TestKnownVersionSet: the canonicalization both sides are reduced to.
func TestKnownVersionSet(t *testing.T) {
	got := knownVersionSet([]uint16{0x0a0a, 0x0304, 0x9999, 0x0303, 0x0304, 0x0301})
	want := []uint16{0x0304, 0x0303, 0x0301}
	if !equalUint16s(got, want) {
		t.Errorf("knownVersionSet = %04x, want %04x", got, want)
	}
}
