package tlswire

// TLS 1.3 extension views. RFC 8446 moved version negotiation out of the
// legacy version fields and into extensions: a 1.3 ClientHello offers a
// supported_versions list plus key_share entries, and the ServerHello
// either answers with its selected version and share or sends a
// HelloRetryRequest (a ServerHello whose Random is a fixed constant and
// whose key_share carries only the wanted group). These accessors give
// those extensions first-class typed views over the raw Extension bytes,
// mirroring the tolerant-parse philosophy of the rest of the package: a
// malformed payload yields an empty view, never an error, because a
// measurement parser must not be stricter than the stacks it observes.

import "encoding/binary"

// Named group codepoints (RFC 8446 §4.2.7) appearing in key_share and
// supported_groups.
const (
	GroupP256      uint16 = 0x0017
	GroupP384      uint16 = 0x0018
	GroupP521      uint16 = 0x0019
	GroupX25519    uint16 = 0x001D
	GroupFFDHE2048 uint16 = 0x0100
)

// groupNames labels the named groups the modeled stacks use.
var groupNames = map[uint16]string{
	GroupP256:      "secp256r1",
	GroupP384:      "secp384r1",
	GroupP521:      "secp521r1",
	GroupX25519:    "x25519",
	GroupFFDHE2048: "ffdhe2048",
}

// GroupName returns the RFC name of a named group, or "group_0x%04x" for
// unknown codepoints.
func GroupName(g uint16) string {
	if n, ok := groupNames[g]; ok {
		return n
	}
	return "group_0x" + hexUint16(g)
}

func hexUint16(v uint16) string {
	const digits = "0123456789abcdef"
	return string([]byte{
		digits[v>>12&0xF], digits[v>>8&0xF], digits[v>>4&0xF], digits[v&0xF],
	})
}

// KeyShare is one KeyShareEntry: a named group plus the key exchange
// payload for it.
type KeyShare struct {
	Group uint16
	Data  []byte
}

// helloRetryRequestRandom is the fixed ServerHello.Random value that
// marks a HelloRetryRequest (RFC 8446 §4.1.3): SHA-256 of
// "HelloRetryRequest".
var helloRetryRequestRandom = [32]byte{
	0xCF, 0x21, 0xAD, 0x74, 0xE5, 0x9A, 0x61, 0x11,
	0xBE, 0x1D, 0x8C, 0x02, 0x1E, 0x65, 0xB8, 0x91,
	0xC2, 0xA2, 0x11, 0x16, 0x7A, 0xBB, 0x8C, 0x5E,
	0x07, 0x9E, 0x09, 0xE2, 0xC8, 0xA8, 0x33, 0x9C,
}

// HelloRetryRequestRandom returns the RFC 8446 HRR marker random.
func HelloRetryRequestRandom() [32]byte { return helloRetryRequestRandom }

// setExtension replaces the first extension of type t in place, or
// appends one, preserving the order fingerprinting depends on.
func setExtension(exts []Extension, t ExtensionType, data []byte) []Extension {
	for i := range exts {
		if exts[i].Type == t {
			exts[i].Data = data
			return exts
		}
	}
	return append(exts, Extension{Type: t, Data: data})
}

// uint16ListPayload encodes a 2-byte-length-prefixed uint16 vector (the
// layout of supported_groups and signature_algorithms bodies).
func uint16ListPayload(vs []uint16) []byte {
	data := make([]byte, 0, 2+2*len(vs))
	data = appendUint16(data, uint16(2*len(vs)))
	for _, v := range vs {
		data = appendUint16(data, v)
	}
	return data
}

// parseUint16List decodes a 2-byte-length-prefixed uint16 vector,
// tolerating short payloads by clamping to what is present.
func parseUint16List(d []byte) []uint16 {
	if len(d) < 2 {
		return nil
	}
	n := int(binary.BigEndian.Uint16(d))
	d = d[2:]
	if n > len(d) {
		n = len(d)
	}
	out := make([]uint16, 0, n/2)
	for i := 0; i+1 < n; i += 2 {
		out = append(out, binary.BigEndian.Uint16(d[i:]))
	}
	return out
}

// SupportedVersions returns the client's proposed version list from the
// supported_versions extension, in offer order, or nil when absent or
// malformed. GREASE values are preserved — filtering is the caller's
// choice (EffectiveVersion skips them; fingerprinting keeps them).
func (ch *ClientHello) SupportedVersions() []uint16 {
	for _, e := range ch.Extensions {
		if e.Type != ExtSupportedVersions {
			continue
		}
		d := e.Data
		if len(d) < 1 {
			return nil
		}
		n := int(d[0])
		d = d[1:]
		if n > len(d) {
			n = len(d)
		}
		out := make([]uint16, 0, n/2)
		for i := 0; i+1 < n; i += 2 {
			out = append(out, binary.BigEndian.Uint16(d[i:]))
		}
		return out
	}
	return nil
}

// SetSupportedVersions installs a supported_versions extension offering
// vs in order (ClientHello layout: one length byte then 2-byte versions).
func (ch *ClientHello) SetSupportedVersions(vs []uint16) {
	data := make([]byte, 0, 1+2*len(vs))
	data = append(data, byte(2*len(vs)))
	for _, v := range vs {
		data = appendUint16(data, v)
	}
	ch.Extensions = setExtension(ch.Extensions, ExtSupportedVersions, data)
}

// KeyShares returns the client's KeyShareEntry list, or nil when the
// key_share extension is absent or malformed. Entry Data aliases the
// extension payload.
func (ch *ClientHello) KeyShares() []KeyShare {
	for _, e := range ch.Extensions {
		if e.Type != ExtKeyShare {
			continue
		}
		d := e.Data
		if len(d) < 2 {
			return nil
		}
		listLen := int(binary.BigEndian.Uint16(d))
		d = d[2:]
		if listLen > len(d) {
			listLen = len(d)
		}
		d = d[:listLen]
		var out []KeyShare
		for len(d) >= 4 {
			group := binary.BigEndian.Uint16(d)
			keyLen := int(binary.BigEndian.Uint16(d[2:]))
			d = d[4:]
			if keyLen > len(d) {
				return out
			}
			out = append(out, KeyShare{Group: group, Data: d[:keyLen:keyLen]})
			d = d[keyLen:]
		}
		return out
	}
	return nil
}

// SetKeyShares installs a ClientHello key_share extension carrying the
// entries in order.
func (ch *ClientHello) SetKeyShares(shares []KeyShare) {
	inner := 0
	for _, s := range shares {
		inner += 4 + len(s.Data)
	}
	data := make([]byte, 0, 2+inner)
	data = appendUint16(data, uint16(inner))
	for _, s := range shares {
		data = appendUint16(data, s.Group)
		data = appendUint16(data, uint16(len(s.Data)))
		data = append(data, s.Data...)
	}
	ch.Extensions = setExtension(ch.Extensions, ExtKeyShare, data)
}

// SupportedGroups returns the supported_groups (named curve) list, or nil
// when absent or malformed.
func (ch *ClientHello) SupportedGroups() []uint16 {
	for _, e := range ch.Extensions {
		if e.Type == ExtSupportedGroups {
			return parseUint16List(e.Data)
		}
	}
	return nil
}

// SetSupportedGroups installs a supported_groups extension.
func (ch *ClientHello) SetSupportedGroups(groups []uint16) {
	ch.Extensions = setExtension(ch.Extensions, ExtSupportedGroups, uint16ListPayload(groups))
}

// SignatureAlgorithms returns the signature_algorithms scheme list, or
// nil when absent or malformed.
func (ch *ClientHello) SignatureAlgorithms() []uint16 {
	for _, e := range ch.Extensions {
		if e.Type == ExtSignatureAlgorithms {
			return parseUint16List(e.Data)
		}
	}
	return nil
}

// SetSignatureAlgorithms installs a signature_algorithms extension.
func (ch *ClientHello) SetSignatureAlgorithms(schemes []uint16) {
	ch.Extensions = setExtension(ch.Extensions, ExtSignatureAlgorithms, uint16ListPayload(schemes))
}

// PSKKeyExchangeModes returns the psk_key_exchange_modes list (one
// length byte then 1-byte modes: 0 = psk_ke, 1 = psk_dhe_ke), or nil
// when absent or malformed.
func (ch *ClientHello) PSKKeyExchangeModes() []byte {
	for _, e := range ch.Extensions {
		if e.Type != ExtPSKKeyExchangeModes {
			continue
		}
		d := e.Data
		if len(d) < 1 {
			return nil
		}
		n := int(d[0])
		d = d[1:]
		if n > len(d) {
			n = len(d)
		}
		return append([]byte(nil), d[:n]...)
	}
	return nil
}

// SetPSKKeyExchangeModes installs a psk_key_exchange_modes extension.
func (ch *ClientHello) SetPSKKeyExchangeModes(modes []byte) {
	data := make([]byte, 0, 1+len(modes))
	data = append(data, byte(len(modes)))
	data = append(data, modes...)
	ch.Extensions = setExtension(ch.Extensions, ExtPSKKeyExchangeModes, data)
}

// IsHelloRetryRequest reports whether this ServerHello is a
// HelloRetryRequest: its Random equals the RFC 8446 HRR constant.
func (sh *ServerHello) IsHelloRetryRequest() bool {
	return sh.Random == helloRetryRequestRandom
}

// KeyShare returns the server's key_share view. In a normal ServerHello
// the body is one KeyShareEntry (group + length + key exchange data); in
// a HelloRetryRequest it is a bare group with no key material. Both
// shapes decode here — an HRR yields the group with empty Data. The
// second return is false when the extension is absent or malformed.
func (sh *ServerHello) KeyShare() (KeyShare, bool) {
	for _, e := range sh.Extensions {
		if e.Type != ExtKeyShare {
			continue
		}
		d := e.Data
		if len(d) == 2 {
			// HelloRetryRequest form: KeyShareHelloRetryRequest is the
			// selected group alone.
			return KeyShare{Group: binary.BigEndian.Uint16(d)}, true
		}
		if len(d) < 4 {
			return KeyShare{}, false
		}
		group := binary.BigEndian.Uint16(d)
		keyLen := int(binary.BigEndian.Uint16(d[2:]))
		d = d[4:]
		if keyLen > len(d) {
			keyLen = len(d)
		}
		return KeyShare{Group: group, Data: d[:keyLen:keyLen]}, true
	}
	return KeyShare{}, false
}

// KeyShareGroup returns the named group of the server's key_share, or
// (0, false) when absent.
func (sh *ServerHello) KeyShareGroup() (uint16, bool) {
	ks, ok := sh.KeyShare()
	return ks.Group, ok
}

// SetKeyShare installs a ServerHello key_share extension carrying one
// KeyShareEntry.
func (sh *ServerHello) SetKeyShare(group uint16, key []byte) {
	data := make([]byte, 0, 4+len(key))
	data = appendUint16(data, group)
	data = appendUint16(data, uint16(len(key)))
	data = append(data, key...)
	sh.Extensions = setExtension(sh.Extensions, ExtKeyShare, data)
}

// SetRetryKeyShare installs the HelloRetryRequest key_share form (the
// bare wanted group) and stamps the HRR marker random.
func (sh *ServerHello) SetRetryKeyShare(group uint16) {
	sh.Random = helloRetryRequestRandom
	data := make([]byte, 0, 2)
	data = appendUint16(data, group)
	sh.Extensions = setExtension(sh.Extensions, ExtKeyShare, data)
}
