// Package tlswire implements the TLS record and handshake wire format
// needed by the study: serializing and parsing ClientHello messages,
// including the extensions IoT Inspector records (SNI, ALPN, session
// tickets, renegotiation info, OCSP status requests, padding, GREASE,
// supported_versions) across protocol versions SSL 3.0 through TLS 1.3.
//
// The encoder produces byte-exact records suitable for feeding into real
// TLS servers or passive parsers; the parser is tolerant of unknown
// extensions and ciphersuites the way a measurement pipeline must be.
package tlswire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is a TLS protocol version codepoint.
type Version uint16

// Protocol version codepoints.
const (
	VersionSSL30 Version = 0x0300
	VersionTLS10 Version = 0x0301
	VersionTLS11 Version = 0x0302
	VersionTLS12 Version = 0x0303
	VersionTLS13 Version = 0x0304
)

// String returns the usual protocol name ("TLS 1.2", "SSL 3.0").
func (v Version) String() string {
	switch v {
	case VersionSSL30:
		return "SSL 3.0"
	case VersionTLS10:
		return "TLS 1.0"
	case VersionTLS11:
		return "TLS 1.1"
	case VersionTLS12:
		return "TLS 1.2"
	case VersionTLS13:
		return "TLS 1.3"
	default:
		return fmt.Sprintf("TLS(0x%04X)", uint16(v))
	}
}

// Known reports whether v is a defined SSL/TLS version.
func (v Version) Known() bool {
	return v >= VersionSSL30 && v <= VersionTLS13
}

// ExtensionType is a TLS extension type codepoint.
type ExtensionType uint16

// Extension type codepoints used by the study.
const (
	ExtServerName           ExtensionType = 0
	ExtMaxFragmentLength    ExtensionType = 1
	ExtStatusRequest        ExtensionType = 5
	ExtSupportedGroups      ExtensionType = 10
	ExtECPointFormats       ExtensionType = 11
	ExtSignatureAlgorithms  ExtensionType = 13
	ExtALPN                 ExtensionType = 16
	ExtSignedCertTimestamp  ExtensionType = 18
	ExtPadding              ExtensionType = 21
	ExtEncryptThenMAC       ExtensionType = 22
	ExtExtendedMasterSecret ExtensionType = 23
	ExtSessionTicket        ExtensionType = 35
	ExtPreSharedKey         ExtensionType = 41
	ExtEarlyData            ExtensionType = 42
	ExtSupportedVersions    ExtensionType = 43
	ExtCookie               ExtensionType = 44
	ExtPSKKeyExchangeModes  ExtensionType = 45
	ExtCertAuthorities      ExtensionType = 47
	ExtKeyShare             ExtensionType = 51
	ExtNextProtoNeg         ExtensionType = 13172
	ExtRenegotiationInfo    ExtensionType = 0xFF01
)

// extNames maps codepoints to IANA-ish names for reporting.
var extNames = map[ExtensionType]string{
	ExtServerName:           "server_name",
	ExtMaxFragmentLength:    "max_fragment_length",
	ExtStatusRequest:        "status_request",
	ExtSupportedGroups:      "supported_groups",
	ExtECPointFormats:       "ec_point_formats",
	ExtSignatureAlgorithms:  "signature_algorithms",
	ExtALPN:                 "application_layer_protocol_negotiation",
	ExtSignedCertTimestamp:  "signed_certificate_timestamp",
	ExtPadding:              "padding",
	ExtEncryptThenMAC:       "encrypt_then_mac",
	ExtExtendedMasterSecret: "extended_master_secret",
	ExtSessionTicket:        "session_ticket",
	ExtPreSharedKey:         "pre_shared_key",
	ExtEarlyData:            "early_data",
	ExtSupportedVersions:    "supported_versions",
	ExtCookie:               "cookie",
	ExtPSKKeyExchangeModes:  "psk_key_exchange_modes",
	ExtCertAuthorities:      "certificate_authorities",
	ExtKeyShare:             "key_share",
	ExtNextProtoNeg:         "next_protocol_negotiation",
	ExtRenegotiationInfo:    "renegotiation_info",
}

// String returns the extension name when known.
func (e ExtensionType) String() string {
	if n, ok := extNames[e]; ok {
		return n
	}
	if IsGREASEExtension(uint16(e)) {
		return fmt.Sprintf("grease_0x%04X", uint16(e))
	}
	return fmt.Sprintf("extension_%d", uint16(e))
}

// IsGREASEExtension reports whether the extension codepoint is a GREASE
// value per RFC 8701.
func IsGREASEExtension(id uint16) bool {
	hi := byte(id >> 8)
	lo := byte(id)
	return hi == lo && hi&0x0F == 0x0A
}

// Extension is a raw TLS extension.
type Extension struct {
	Type ExtensionType
	Data []byte
}

// ClientHello is the parsed/serializable form of a TLS ClientHello
// handshake message.
type ClientHello struct {
	// LegacyVersion is the client_version field (for TLS 1.3 this stays
	// 0x0303 and supported_versions carries 0x0304).
	LegacyVersion Version
	// Random is the 32-byte client random.
	Random [32]byte
	// SessionID is the legacy session id (0..32 bytes).
	SessionID []byte
	// CipherSuites is the proposed suite list in preference order.
	CipherSuites []uint16
	// CompressionMethods is the legacy compression list (usually {0}).
	CompressionMethods []byte
	// Extensions in order of appearance.
	Extensions []Extension
}

// Record layer constants.
const (
	recordTypeHandshake   = 22
	handshakeClientHello  = 1
	maxHandshakeLen       = 1 << 17 // generous; ClientHellos are small
	maxCipherSuiteListLen = 1 << 15
)

// Common parse errors.
var (
	ErrTruncated      = errors.New("tlswire: message truncated")
	ErrNotHandshake   = errors.New("tlswire: record is not a handshake")
	ErrNotClientHello = errors.New("tlswire: handshake is not a ClientHello")
	ErrMalformed      = errors.New("tlswire: malformed message")
)

// SNI returns the first host_name entry in the server_name extension, or ""
// when absent.
func (ch *ClientHello) SNI() string {
	for _, ext := range ch.Extensions {
		if ext.Type != ExtServerName {
			continue
		}
		d := ext.Data
		if len(d) < 2 {
			return ""
		}
		listLen := int(binary.BigEndian.Uint16(d))
		d = d[2:]
		if listLen > len(d) {
			return ""
		}
		for len(d) >= 3 {
			nameType := d[0]
			nameLen := int(binary.BigEndian.Uint16(d[1:3]))
			d = d[3:]
			if nameLen > len(d) {
				return ""
			}
			if nameType == 0 {
				return string(d[:nameLen])
			}
			d = d[nameLen:]
		}
	}
	return ""
}

// SetSNI appends (or replaces) a server_name extension carrying host.
func (ch *ClientHello) SetSNI(host string) {
	data := make([]byte, 0, 5+len(host))
	data = appendUint16(data, uint16(3+len(host))) // server_name_list length
	data = append(data, 0)                         // host_name
	data = appendUint16(data, uint16(len(host)))
	data = append(data, host...)
	for i := range ch.Extensions {
		if ch.Extensions[i].Type == ExtServerName {
			ch.Extensions[i].Data = data
			return
		}
	}
	ch.Extensions = append(ch.Extensions, Extension{Type: ExtServerName, Data: data})
}

// ExtensionTypes returns the extension type codepoints in order. This is
// the "extension types" component of the study's fingerprint 3-tuple.
func (ch *ClientHello) ExtensionTypes() []uint16 {
	out := make([]uint16, len(ch.Extensions))
	for i, e := range ch.Extensions {
		out[i] = uint16(e.Type)
	}
	return out
}

// HasExtension reports whether the hello carries an extension of type t.
func (ch *ClientHello) HasExtension(t ExtensionType) bool {
	for _, e := range ch.Extensions {
		if e.Type == t {
			return true
		}
	}
	return false
}

// EffectiveVersion returns the highest version the hello proposes: the max
// of supported_versions when present (ignoring GREASE), else LegacyVersion.
func (ch *ClientHello) EffectiveVersion() Version {
	best := ch.LegacyVersion
	for _, e := range ch.Extensions {
		if e.Type != ExtSupportedVersions {
			continue
		}
		d := e.Data
		if len(d) < 1 {
			continue
		}
		n := int(d[0])
		d = d[1:]
		if n > len(d) {
			continue
		}
		for i := 0; i+1 < n; i += 2 {
			v := Version(binary.BigEndian.Uint16(d[i:]))
			if IsGREASEExtension(uint16(v)) {
				continue
			}
			if v.Known() && v > best {
				best = v
			}
		}
	}
	return best
}

// Marshal serializes the ClientHello as a complete TLS record
// (record header + handshake header + body).
func (ch *ClientHello) Marshal() ([]byte, error) {
	body, err := ch.marshalBody()
	if err != nil {
		return nil, err
	}
	if len(body) > maxHandshakeLen {
		return nil, fmt.Errorf("tlswire: ClientHello too large (%d bytes)", len(body))
	}
	recVer := ch.LegacyVersion
	if recVer > VersionTLS12 {
		recVer = VersionTLS12 // TLS 1.3 records claim 1.2 on the wire
	}
	// Record header: type(1) + version(2) + length(2), then the handshake
	// header: type(1) + length(3). Exact capacity: one allocation total.
	rec := make([]byte, 0, 9+len(body))
	rec = append(rec, recordTypeHandshake)
	rec = appendUint16(rec, uint16(recVer))
	rec = appendUint16(rec, uint16(4+len(body)))
	rec = append(rec, handshakeClientHello)
	rec = append(rec, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	rec = append(rec, body...)
	return rec, nil
}

func (ch *ClientHello) marshalBody() ([]byte, error) {
	// One length byte: 255 is the encodable maximum. Parse tolerates the
	// same range, so Marshal∘Parse stays an identity on parsed hellos.
	if len(ch.SessionID) > 255 {
		return nil, fmt.Errorf("tlswire: session id too long (%d)", len(ch.SessionID))
	}
	if len(ch.CipherSuites) == 0 {
		return nil, errors.New("tlswire: no ciphersuites")
	}
	if 2*len(ch.CipherSuites) > maxCipherSuiteListLen {
		return nil, errors.New("tlswire: ciphersuite list too long")
	}
	comp := ch.CompressionMethods
	if len(comp) == 0 {
		comp = []byte{0}
	}
	if len(comp) > 255 {
		return nil, fmt.Errorf("tlswire: compression list too long (%d)", len(comp))
	}
	// Size the buffer exactly so the whole body is one allocation: the
	// extensions block length is known up front, so extensions append
	// directly into b with no intermediate buffer.
	extLen := 0
	if len(ch.Extensions) > 0 {
		for _, e := range ch.Extensions {
			if len(e.Data) > 0xFFFF {
				return nil, fmt.Errorf("tlswire: extension %v too long", e.Type)
			}
			extLen += 4 + len(e.Data)
		}
		if extLen > 0xFFFF {
			return nil, errors.New("tlswire: extensions block too long")
		}
	}
	n := 2 + len(ch.Random) + 1 + len(ch.SessionID) + 2 + 2*len(ch.CipherSuites) + 1 + len(comp)
	if len(ch.Extensions) > 0 {
		n += 2 + extLen
	}
	b := make([]byte, 0, n)
	b = appendUint16(b, uint16(ch.LegacyVersion))
	b = append(b, ch.Random[:]...)
	b = append(b, byte(len(ch.SessionID)))
	b = append(b, ch.SessionID...)
	b = appendUint16(b, uint16(2*len(ch.CipherSuites)))
	for _, cs := range ch.CipherSuites {
		b = appendUint16(b, cs)
	}
	b = append(b, byte(len(comp)))
	b = append(b, comp...)
	if len(ch.Extensions) > 0 {
		b = appendUint16(b, uint16(extLen))
		for _, e := range ch.Extensions {
			b = appendUint16(b, uint16(e.Type))
			b = appendUint16(b, uint16(len(e.Data)))
			b = append(b, e.Data...)
		}
	}
	return b, nil
}

// ParseRecord parses a full TLS record assumed to contain a ClientHello.
func ParseRecord(data []byte) (*ClientHello, error) {
	if len(data) < 5 {
		return nil, ErrTruncated
	}
	if data[0] != recordTypeHandshake {
		return nil, ErrNotHandshake
	}
	recLen := int(binary.BigEndian.Uint16(data[3:5]))
	if 5+recLen > len(data) {
		return nil, ErrTruncated
	}
	return ParseHandshake(data[5 : 5+recLen])
}

// ParseHandshake parses a handshake message (type + 3-byte length + body)
// expected to be a ClientHello.
func ParseHandshake(data []byte) (*ClientHello, error) {
	if len(data) < 4 {
		return nil, ErrTruncated
	}
	if data[0] != handshakeClientHello {
		return nil, ErrNotClientHello
	}
	bodyLen := int(data[1])<<16 | int(data[2])<<8 | int(data[3])
	if 4+bodyLen > len(data) {
		return nil, ErrTruncated
	}
	return parseBody(data[4 : 4+bodyLen])
}

func parseBody(b []byte) (*ClientHello, error) {
	ch := &ClientHello{}
	if len(b) < 2+32+1 {
		return nil, ErrTruncated
	}
	ch.LegacyVersion = Version(binary.BigEndian.Uint16(b))
	copy(ch.Random[:], b[2:34])
	b = b[34:]
	sidLen := int(b[0])
	b = b[1:]
	// RFC 5246 caps legacy_session_id at 32 bytes, but crypto/tls's server
	// parser tolerates anything the length byte can express and real
	// middleboxes have been seen padding it — a measurement parser must
	// not be stricter than the stacks it observes (found by the
	// crypto/tls differential oracle).
	if sidLen > len(b) {
		return nil, ErrTruncated
	}
	ch.SessionID = append([]byte(nil), b[:sidLen]...)
	b = b[sidLen:]
	if len(b) < 2 {
		return nil, ErrTruncated
	}
	csLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if csLen%2 != 0 {
		return nil, ErrMalformed
	}
	if csLen > len(b) {
		return nil, ErrTruncated
	}
	ch.CipherSuites = make([]uint16, csLen/2)
	for i := range ch.CipherSuites {
		ch.CipherSuites[i] = binary.BigEndian.Uint16(b[2*i:])
	}
	b = b[csLen:]
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	compLen := int(b[0])
	b = b[1:]
	if compLen > len(b) {
		return nil, ErrTruncated
	}
	compView := b[:compLen]
	b = b[compLen:]
	if len(b) == 0 {
		ch.CompressionMethods = append([]byte(nil), compView...)
		return ch, nil // extensions are optional (SSL3/old stacks)
	}
	if len(b) < 2 {
		return nil, ErrTruncated
	}
	extLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if extLen > len(b) {
		return nil, ErrTruncated
	}
	b = b[:extLen]
	// Pre-scan the block to count extensions and total payload bytes:
	// the extension slice and one shared payload backing then allocate
	// exactly once, instead of growing per extension.
	nExt, dataLen := 0, 0
	for rest := b; len(rest) > 0; {
		if len(rest) < 4 {
			return nil, ErrTruncated
		}
		el := int(binary.BigEndian.Uint16(rest[2:]))
		rest = rest[4:]
		if el > len(rest) {
			return nil, ErrTruncated
		}
		nExt++
		dataLen += el
		rest = rest[el:]
	}
	if nExt == 0 {
		ch.CompressionMethods = append([]byte(nil), compView...)
		return ch, nil
	}
	// The compression list shares the payload backing: one copy buffer
	// serves both it and every extension body.
	ch.Extensions = make([]Extension, 0, nExt)
	buf := make([]byte, 0, compLen+dataLen)
	if compLen > 0 { // keep nil (not empty) for a zero-length list
		buf = append(buf, compView...)
		ch.CompressionMethods = buf[0:compLen:compLen]
	}
	for len(b) > 0 {
		et := ExtensionType(binary.BigEndian.Uint16(b))
		el := int(binary.BigEndian.Uint16(b[2:]))
		b = b[4:]
		var data []byte
		if el > 0 {
			off := len(buf)
			buf = append(buf, b[:el]...)
			data = buf[off : off+el : off+el]
		}
		ch.Extensions = append(ch.Extensions, Extension{Type: et, Data: data})
		b = b[el:]
	}
	return ch, nil
}

func appendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}
