package tlswire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleHello() *ClientHello {
	ch := &ClientHello{
		LegacyVersion: VersionTLS12,
		CipherSuites:  []uint16{0xC02F, 0xC030, 0xC013, 0xC014, 0x009C, 0x002F, 0x000A, 0x00FF},
		SessionID:     []byte{1, 2, 3, 4},
		Extensions: []Extension{
			{Type: ExtSupportedGroups, Data: []byte{0, 4, 0, 23, 0, 24}},
			{Type: ExtECPointFormats, Data: []byte{1, 0}},
			{Type: ExtSessionTicket},
			{Type: ExtSignatureAlgorithms, Data: []byte{0, 4, 4, 1, 4, 3}},
			{Type: ExtRenegotiationInfo, Data: []byte{0}},
		},
	}
	copy(ch.Random[:], bytes.Repeat([]byte{0xAB}, 32))
	ch.SetSNI("api.example-iot.com")
	return ch
}

func TestMarshalParseRoundTrip(t *testing.T) {
	ch := sampleHello()
	rec, err := ch.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got.LegacyVersion != ch.LegacyVersion {
		t.Errorf("version %v want %v", got.LegacyVersion, ch.LegacyVersion)
	}
	if !reflect.DeepEqual(got.CipherSuites, ch.CipherSuites) {
		t.Errorf("suites %v want %v", got.CipherSuites, ch.CipherSuites)
	}
	if !bytes.Equal(got.SessionID, ch.SessionID) {
		t.Errorf("session id mismatch")
	}
	if got.SNI() != "api.example-iot.com" {
		t.Errorf("sni %q", got.SNI())
	}
	if len(got.Extensions) != len(ch.Extensions) {
		t.Fatalf("ext count %d want %d", len(got.Extensions), len(ch.Extensions))
	}
	for i := range got.Extensions {
		if got.Extensions[i].Type != ch.Extensions[i].Type {
			t.Errorf("ext %d type %v want %v", i, got.Extensions[i].Type, ch.Extensions[i].Type)
		}
	}
}

func TestSetSNIReplaces(t *testing.T) {
	ch := sampleHello()
	ch.SetSNI("other.example.net")
	if ch.SNI() != "other.example.net" {
		t.Fatalf("sni %q", ch.SNI())
	}
	n := 0
	for _, e := range ch.Extensions {
		if e.Type == ExtServerName {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("want exactly one server_name extension, got %d", n)
	}
}

func TestSNIAbsent(t *testing.T) {
	ch := &ClientHello{LegacyVersion: VersionTLS10, CipherSuites: []uint16{0x002F}}
	if ch.SNI() != "" {
		t.Fatal("SNI should be empty")
	}
}

func TestNoExtensionsRoundTrip(t *testing.T) {
	ch := &ClientHello{LegacyVersion: VersionSSL30, CipherSuites: []uint16{0x0004, 0x0005, 0x000A}}
	rec, err := ch.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got.LegacyVersion != VersionSSL30 || len(got.Extensions) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestEffectiveVersion(t *testing.T) {
	ch := sampleHello()
	if v := ch.EffectiveVersion(); v != VersionTLS12 {
		t.Fatalf("effective %v", v)
	}
	// Add supported_versions carrying 1.3 + GREASE.
	ch.Extensions = append(ch.Extensions, Extension{
		Type: ExtSupportedVersions,
		Data: []byte{6, 0x0A, 0x0A, 0x03, 0x04, 0x03, 0x03},
	})
	if v := ch.EffectiveVersion(); v != VersionTLS13 {
		t.Fatalf("effective %v want TLS 1.3", v)
	}
}

func TestExtensionTypesAndHas(t *testing.T) {
	ch := sampleHello()
	types := ch.ExtensionTypes()
	if len(types) != len(ch.Extensions) {
		t.Fatal("length mismatch")
	}
	if !ch.HasExtension(ExtSessionTicket) {
		t.Fatal("session_ticket should be present")
	}
	if ch.HasExtension(ExtEarlyData) {
		t.Fatal("early_data should be absent")
	}
}

func TestVersionStrings(t *testing.T) {
	cases := map[Version]string{
		VersionSSL30:    "SSL 3.0",
		VersionTLS10:    "TLS 1.0",
		VersionTLS11:    "TLS 1.1",
		VersionTLS12:    "TLS 1.2",
		VersionTLS13:    "TLS 1.3",
		Version(0x0305): "TLS(0x0305)",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%04x => %q want %q", uint16(v), v.String(), want)
		}
	}
	if !VersionTLS12.Known() || Version(0x0299).Known() {
		t.Fatal("Known() wrong")
	}
}

func TestExtensionTypeString(t *testing.T) {
	if ExtServerName.String() != "server_name" {
		t.Fatal("server_name name wrong")
	}
	if ExtensionType(0x1A1A).String() != "grease_0x1A1A" {
		t.Fatalf("grease name: %s", ExtensionType(0x1A1A).String())
	}
	if ExtensionType(999).String() != "extension_999" {
		t.Fatalf("unknown name: %s", ExtensionType(999).String())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseRecord(nil); err != ErrTruncated {
		t.Errorf("nil: %v", err)
	}
	if _, err := ParseRecord([]byte{23, 3, 3, 0, 0}); err != ErrNotHandshake {
		t.Errorf("appdata: %v", err)
	}
	// Handshake record with wrong handshake type.
	rec := []byte{22, 3, 3, 0, 4, 2, 0, 0, 0}
	if _, err := ParseRecord(rec); err != ErrNotClientHello {
		t.Errorf("serverhello: %v", err)
	}
	// Declared record length beyond buffer.
	if _, err := ParseRecord([]byte{22, 3, 3, 0xFF, 0xFF, 1}); err != ErrTruncated {
		t.Errorf("overlong: %v", err)
	}
}

func TestMarshalValidation(t *testing.T) {
	ch := &ClientHello{LegacyVersion: VersionTLS12}
	if _, err := ch.Marshal(); err == nil {
		t.Fatal("empty suite list should fail")
	}
	ch.CipherSuites = []uint16{0xC02F}
	// Session ids above the RFC's 32 bytes are tolerated (crypto/tls
	// accepts them, so the measurement parser must too) but one length
	// byte caps the encodable range at 255.
	ch.SessionID = make([]byte, 33)
	if rec, err := ch.Marshal(); err != nil {
		t.Fatalf("33-byte session id should marshal: %v", err)
	} else if ch2, err := ParseRecord(rec); err != nil || len(ch2.SessionID) != 33 {
		t.Fatalf("33-byte session id round-trip: %v", err)
	}
	ch.SessionID = make([]byte, 256)
	if _, err := ch.Marshal(); err == nil {
		t.Fatal("unencodable session id should fail")
	}
}

func TestParseTruncatedBodies(t *testing.T) {
	ch := sampleHello()
	rec, err := ch.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix of the record must fail cleanly, never panic.
	for i := 0; i < len(rec); i++ {
		if _, err := ParseRecord(rec[:i]); err == nil {
			// A prefix may parse successfully only if it is itself a
			// complete record (cannot happen for strict prefixes here
			// because the outer length field covers the whole message).
			t.Fatalf("prefix %d parsed successfully", i)
		}
	}
}

// Property: marshal→parse is the identity on the fingerprint-relevant
// fields for arbitrary generated hellos.
func TestPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ch := &ClientHello{LegacyVersion: []Version{VersionSSL30, VersionTLS10, VersionTLS11, VersionTLS12}[r.Intn(4)]}
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			ch.CipherSuites = append(ch.CipherSuites, uint16(r.Intn(0xFFFF)))
		}
		for i := 0; i < r.Intn(8); i++ {
			data := make([]byte, r.Intn(20))
			r.Read(data)
			ch.Extensions = append(ch.Extensions, Extension{Type: ExtensionType(r.Intn(60000)), Data: data})
		}
		r.Read(ch.Random[:])
		rec, err := ch.Marshal()
		if err != nil {
			return false
		}
		got, err := ParseRecord(rec)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(got.CipherSuites, ch.CipherSuites) {
			return false
		}
		if got.LegacyVersion != ch.LegacyVersion {
			return false
		}
		if len(got.Extensions) != len(ch.Extensions) {
			return false
		}
		for i := range got.Extensions {
			if got.Extensions[i].Type != ch.Extensions[i].Type ||
				!bytes.Equal(got.Extensions[i].Data, ch.Extensions[i].Data) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on arbitrary bytes.
func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = ParseRecord(data)
		_, _ = ParseHandshake(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	ch := sampleHello()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	rec, err := sampleHello().Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
}
