package tlswire

// Server-side wire objects: ServerHello and Alert. The active
// server-fingerprinting workload (internal/serverfp) sends crafted
// ClientHellos and classifies the server's TLS stack from how it
// answers; both possible answers — a ServerHello or a fatal alert —
// are first-class wire objects here so the probe layer can carry
// negotiation evidence (selected cipher, echoed extensions, version
// choice, alert taxonomy) instead of a bare certificate chain.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Additional record/handshake codepoints for the server side.
const (
	recordTypeAlert      = 21
	handshakeServerHello = 2
)

// Server-side parse errors.
var (
	// ErrNotServerHello: the handshake message is not a ServerHello.
	ErrNotServerHello = errors.New("tlswire: handshake is not a ServerHello")
	// ErrNotAlert: the record is not an alert.
	ErrNotAlert = errors.New("tlswire: record is not an alert")
)

// ServerHello is the parsed/serializable form of a TLS ServerHello
// handshake message.
type ServerHello struct {
	// LegacyVersion is the server_version field (for TLS 1.3 this stays
	// 0x0303 and supported_versions carries the selected 0x0304).
	LegacyVersion Version
	// Random is the 32-byte server random.
	Random [32]byte
	// SessionID is the legacy session id echo (0..32 bytes).
	SessionID []byte
	// CipherSuite is the single selected suite.
	CipherSuite uint16
	// CompressionMethod is the selected legacy compression (always 0 on
	// honest stacks).
	CompressionMethod byte
	// Extensions in order of appearance. The order is a fingerprinting
	// feature: stacks echo different subsets in different orders.
	Extensions []Extension
}

// SelectedVersion returns the negotiated protocol version: the
// supported_versions extension when present (TLS 1.3 servers put the
// selected version there), else LegacyVersion.
func (sh *ServerHello) SelectedVersion() Version {
	for _, e := range sh.Extensions {
		if e.Type != ExtSupportedVersions {
			continue
		}
		// In a ServerHello the extension body is a bare uint16, not the
		// length-prefixed list a ClientHello sends.
		if len(e.Data) == 2 {
			return Version(binary.BigEndian.Uint16(e.Data))
		}
	}
	return sh.LegacyVersion
}

// SetSelectedVersion appends (or replaces) the supported_versions
// extension carrying the selected version, as a TLS 1.3 server does.
func (sh *ServerHello) SetSelectedVersion(v Version) {
	data := []byte{byte(v >> 8), byte(v)}
	for i := range sh.Extensions {
		if sh.Extensions[i].Type == ExtSupportedVersions {
			sh.Extensions[i].Data = data
			return
		}
	}
	sh.Extensions = append(sh.Extensions, Extension{Type: ExtSupportedVersions, Data: data})
}

// ExtensionTypes returns the extension type codepoints in order.
func (sh *ServerHello) ExtensionTypes() []uint16 {
	out := make([]uint16, len(sh.Extensions))
	for i, e := range sh.Extensions {
		out[i] = uint16(e.Type)
	}
	return out
}

// HasExtension reports whether the hello carries an extension of type t.
func (sh *ServerHello) HasExtension(t ExtensionType) bool {
	for _, e := range sh.Extensions {
		if e.Type == t {
			return true
		}
	}
	return false
}

// Marshal serializes the ServerHello as a complete TLS record
// (record header + handshake header + body).
func (sh *ServerHello) Marshal() ([]byte, error) {
	body, err := sh.marshalBody()
	if err != nil {
		return nil, err
	}
	if len(body) > maxHandshakeLen {
		return nil, fmt.Errorf("tlswire: ServerHello too large (%d bytes)", len(body))
	}
	recVer := sh.LegacyVersion
	if recVer > VersionTLS12 {
		recVer = VersionTLS12 // TLS 1.3 records claim 1.2 on the wire
	}
	rec := make([]byte, 0, 9+len(body))
	rec = append(rec, recordTypeHandshake)
	rec = appendUint16(rec, uint16(recVer))
	rec = appendUint16(rec, uint16(4+len(body)))
	rec = append(rec, handshakeServerHello)
	rec = append(rec, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	rec = append(rec, body...)
	return rec, nil
}

func (sh *ServerHello) marshalBody() ([]byte, error) {
	// One length byte: 255 is the encodable maximum (mirrors ClientHello;
	// parse tolerates the same range, so Marshal∘Parse stays an identity).
	if len(sh.SessionID) > 255 {
		return nil, fmt.Errorf("tlswire: session id too long (%d)", len(sh.SessionID))
	}
	extLen := 0
	if len(sh.Extensions) > 0 {
		for _, e := range sh.Extensions {
			if len(e.Data) > 0xFFFF {
				return nil, fmt.Errorf("tlswire: extension %v too long", e.Type)
			}
			extLen += 4 + len(e.Data)
		}
		if extLen > 0xFFFF {
			return nil, errors.New("tlswire: extensions block too long")
		}
	}
	n := 2 + len(sh.Random) + 1 + len(sh.SessionID) + 2 + 1
	if len(sh.Extensions) > 0 {
		n += 2 + extLen
	}
	b := make([]byte, 0, n)
	b = appendUint16(b, uint16(sh.LegacyVersion))
	b = append(b, sh.Random[:]...)
	b = append(b, byte(len(sh.SessionID)))
	b = append(b, sh.SessionID...)
	b = appendUint16(b, sh.CipherSuite)
	b = append(b, sh.CompressionMethod)
	if len(sh.Extensions) > 0 {
		b = appendUint16(b, uint16(extLen))
		for _, e := range sh.Extensions {
			b = appendUint16(b, uint16(e.Type))
			b = appendUint16(b, uint16(len(e.Data)))
			b = append(b, e.Data...)
		}
	}
	return b, nil
}

// ParseServerHelloRecord parses a full TLS record assumed to contain a
// ServerHello.
func ParseServerHelloRecord(data []byte) (*ServerHello, error) {
	if len(data) < 5 {
		return nil, ErrTruncated
	}
	if data[0] != recordTypeHandshake {
		return nil, ErrNotHandshake
	}
	recLen := int(binary.BigEndian.Uint16(data[3:5]))
	if 5+recLen > len(data) {
		return nil, ErrTruncated
	}
	return ParseServerHelloHandshake(data[5 : 5+recLen])
}

// ParseServerHelloHandshake parses a handshake message (type + 3-byte
// length + body) expected to be a ServerHello.
func ParseServerHelloHandshake(data []byte) (*ServerHello, error) {
	if len(data) < 4 {
		return nil, ErrTruncated
	}
	if data[0] != handshakeServerHello {
		return nil, ErrNotServerHello
	}
	bodyLen := int(data[1])<<16 | int(data[2])<<8 | int(data[3])
	if 4+bodyLen > len(data) {
		return nil, ErrTruncated
	}
	return parseServerHelloBody(data[4 : 4+bodyLen])
}

func parseServerHelloBody(b []byte) (*ServerHello, error) {
	sh := &ServerHello{}
	if len(b) < 2+32+1 {
		return nil, ErrTruncated
	}
	sh.LegacyVersion = Version(binary.BigEndian.Uint16(b))
	copy(sh.Random[:], b[2:34])
	b = b[34:]
	sidLen := int(b[0])
	b = b[1:]
	// Tolerate session ids beyond the RFC's 32-byte cap, like the
	// ClientHello parser: a measurement parser must not be stricter than
	// the stacks it observes.
	if sidLen > len(b) {
		return nil, ErrTruncated
	}
	sh.SessionID = append([]byte(nil), b[:sidLen]...)
	b = b[sidLen:]
	if len(b) < 3 {
		return nil, ErrTruncated
	}
	sh.CipherSuite = binary.BigEndian.Uint16(b)
	sh.CompressionMethod = b[2]
	b = b[3:]
	if len(b) == 0 {
		return sh, nil // extensions are optional (SSL3/old stacks)
	}
	if len(b) < 2 {
		return nil, ErrTruncated
	}
	extLen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if extLen > len(b) {
		return nil, ErrTruncated
	}
	b = b[:extLen]
	// Pre-scan the block so the extension slice and one shared payload
	// backing allocate exactly once (same layout as the ClientHello
	// parser).
	nExt, dataLen := 0, 0
	for rest := b; len(rest) > 0; {
		if len(rest) < 4 {
			return nil, ErrTruncated
		}
		el := int(binary.BigEndian.Uint16(rest[2:]))
		rest = rest[4:]
		if el > len(rest) {
			return nil, ErrTruncated
		}
		nExt++
		dataLen += el
		rest = rest[el:]
	}
	if nExt == 0 {
		return sh, nil
	}
	sh.Extensions = make([]Extension, 0, nExt)
	buf := make([]byte, 0, dataLen)
	for len(b) > 0 {
		et := ExtensionType(binary.BigEndian.Uint16(b))
		el := int(binary.BigEndian.Uint16(b[2:]))
		b = b[4:]
		var data []byte
		if el > 0 {
			off := len(buf)
			buf = append(buf, b[:el]...)
			data = buf[off : off+el : off+el]
		}
		sh.Extensions = append(sh.Extensions, Extension{Type: et, Data: data})
		b = b[el:]
	}
	return sh, nil
}

// AlertLevel is a TLS alert level codepoint.
type AlertLevel uint8

// Alert levels.
const (
	AlertLevelWarning AlertLevel = 1
	AlertLevelFatal   AlertLevel = 2
)

// String names the level.
func (l AlertLevel) String() string {
	switch l {
	case AlertLevelWarning:
		return "warning"
	case AlertLevelFatal:
		return "fatal"
	default:
		return fmt.Sprintf("level_%d", uint8(l))
	}
}

// AlertDescription is a TLS alert description codepoint.
type AlertDescription uint8

// Alert descriptions the modeled server stacks emit.
const (
	AlertCloseNotify          AlertDescription = 0
	AlertUnexpectedMessage    AlertDescription = 10
	AlertHandshakeFailure     AlertDescription = 40
	AlertIllegalParameter     AlertDescription = 47
	AlertDecodeError          AlertDescription = 50
	AlertProtocolVersion      AlertDescription = 70
	AlertInsufficientSecurity AlertDescription = 71
	AlertInternalError        AlertDescription = 80
)

// alertNames maps description codepoints to RFC 8446 names.
var alertNames = map[AlertDescription]string{
	AlertCloseNotify:          "close_notify",
	AlertUnexpectedMessage:    "unexpected_message",
	AlertHandshakeFailure:     "handshake_failure",
	AlertIllegalParameter:     "illegal_parameter",
	AlertDecodeError:          "decode_error",
	AlertProtocolVersion:      "protocol_version",
	AlertInsufficientSecurity: "insufficient_security",
	AlertInternalError:        "internal_error",
}

// String returns the alert description name when known.
func (d AlertDescription) String() string {
	if n, ok := alertNames[d]; ok {
		return n
	}
	return fmt.Sprintf("alert_%d", uint8(d))
}

// Alert is a TLS alert message: the other way a server answers a
// ClientHello. Which description a stack chooses for which malformed or
// downlevel hello is part of its fingerprint.
type Alert struct {
	Level       AlertLevel
	Description AlertDescription
}

// String renders "fatal:handshake_failure" style labels for reports.
func (a Alert) String() string {
	return a.Level.String() + ":" + a.Description.String()
}

// Marshal serializes the alert as a complete TLS record at the given
// record version.
func (a Alert) Marshal(ver Version) []byte {
	recVer := ver
	if recVer > VersionTLS12 {
		recVer = VersionTLS12
	}
	return []byte{recordTypeAlert, byte(recVer >> 8), byte(recVer), 0, 2, byte(a.Level), byte(a.Description)}
}

// ParseAlertRecord parses a full TLS record expected to contain an
// alert.
func ParseAlertRecord(data []byte) (*Alert, error) {
	if len(data) < 5 {
		return nil, ErrTruncated
	}
	if data[0] != recordTypeAlert {
		return nil, ErrNotAlert
	}
	recLen := int(binary.BigEndian.Uint16(data[3:5]))
	if 5+recLen > len(data) {
		return nil, ErrTruncated
	}
	if recLen < 2 {
		return nil, ErrTruncated
	}
	return &Alert{Level: AlertLevel(data[5]), Description: AlertDescription(data[6])}, nil
}
