package tlswire

import (
	"bytes"
	"errors"
	"testing"
)

func seedServerHello() *ServerHello {
	sh := &ServerHello{
		LegacyVersion: VersionTLS12,
		SessionID:     []byte{9, 8, 7},
		CipherSuite:   0xC02F,
		Extensions: []Extension{
			{Type: ExtRenegotiationInfo, Data: []byte{0}},
			{Type: ExtECPointFormats, Data: []byte{1, 0}},
			{Type: ExtSessionTicket, Data: nil},
		},
	}
	for i := range sh.Random {
		sh.Random[i] = byte(0xA0 ^ i)
	}
	return sh
}

func TestServerHelloRoundTrip(t *testing.T) {
	sh := seedServerHello()
	rec, err := sh.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := ParseServerHelloRecord(rec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.LegacyVersion != sh.LegacyVersion || got.Random != sh.Random {
		t.Fatalf("version/random changed in round trip")
	}
	if !bytes.Equal(got.SessionID, sh.SessionID) {
		t.Fatalf("session id: %x != %x", got.SessionID, sh.SessionID)
	}
	if got.CipherSuite != sh.CipherSuite || got.CompressionMethod != sh.CompressionMethod {
		t.Fatalf("cipher/compression changed in round trip")
	}
	if len(got.Extensions) != len(sh.Extensions) {
		t.Fatalf("extensions: %d != %d", len(got.Extensions), len(sh.Extensions))
	}
	for i := range sh.Extensions {
		if got.Extensions[i].Type != sh.Extensions[i].Type || !bytes.Equal(got.Extensions[i].Data, sh.Extensions[i].Data) {
			t.Fatalf("extension %d: %v != %v", i, got.Extensions[i], sh.Extensions[i])
		}
	}
}

func TestServerHelloSelectedVersion(t *testing.T) {
	sh := seedServerHello()
	if v := sh.SelectedVersion(); v != VersionTLS12 {
		t.Fatalf("selected version = %v, want TLS 1.2 from legacy field", v)
	}
	sh.SetSelectedVersion(VersionTLS13)
	if v := sh.SelectedVersion(); v != VersionTLS13 {
		t.Fatalf("selected version = %v, want TLS 1.3 from supported_versions", v)
	}
	// Replacing, not appending: a second set must not grow the list.
	n := len(sh.Extensions)
	sh.SetSelectedVersion(VersionTLS12)
	if len(sh.Extensions) != n {
		t.Fatalf("SetSelectedVersion appended a duplicate extension")
	}
	rec, err := sh.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := ParseServerHelloRecord(rec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.SelectedVersion() != VersionTLS12 {
		t.Fatalf("selected version lost in round trip")
	}
}

func TestServerHelloNoExtensions(t *testing.T) {
	sh := &ServerHello{LegacyVersion: VersionSSL30, CipherSuite: 0x0035}
	rec, err := sh.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := ParseServerHelloRecord(rec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got.Extensions) != 0 {
		t.Fatalf("phantom extensions: %v", got.Extensions)
	}
	if got.SelectedVersion() != VersionSSL30 {
		t.Fatalf("selected version = %v, want SSL 3.0", got.SelectedVersion())
	}
}

func TestServerHelloParseErrors(t *testing.T) {
	rec, err := seedServerHello().Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short record", rec[:4], ErrTruncated},
		{"truncated body", rec[:len(rec)-2], ErrTruncated},
		{"not handshake", []byte{23, 3, 3, 0, 0}, ErrNotHandshake},
		{"client hello type", []byte{22, 3, 3, 0, 4, 1, 0, 0, 0}, ErrNotServerHello},
	}
	for _, tc := range cases {
		if _, err := ParseServerHelloRecord(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestAlertRoundTrip(t *testing.T) {
	a := Alert{Level: AlertLevelFatal, Description: AlertHandshakeFailure}
	rec := a.Marshal(VersionTLS12)
	got, err := ParseAlertRecord(rec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if *got != a {
		t.Fatalf("round trip: %v != %v", *got, a)
	}
	if s := got.String(); s != "fatal:handshake_failure" {
		t.Fatalf("String() = %q", s)
	}
	if _, err := ParseAlertRecord(rec[:4]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short alert: err = %v, want truncated", err)
	}
	if _, err := ParseAlertRecord([]byte{22, 3, 3, 0, 2, 2, 40}); !errors.Is(err, ErrNotAlert) {
		t.Fatalf("handshake record: err = %v, want not-alert", err)
	}
}

// FuzzParseServerHello: parsing never panics for arbitrary input, and
// Marshal∘Parse is the identity on every hello the parser accepts. CI
// runs this alongside the ClientHello targets in the fuzz-smoke job;
// the seed corpus under testdata/fuzz/FuzzParseServerHello/ runs as
// regression cases on every plain `go test`.
func FuzzParseServerHello(f *testing.F) {
	rec, err := seedServerHello().Marshal()
	if err != nil {
		f.Fatalf("marshal seed: %v", err)
	}
	f.Add(rec)
	f.Add(rec[:5])
	f.Add(rec[:len(rec)-3])
	f.Add([]byte{})
	f.Add([]byte{21, 3, 3, 0, 2, 2, 40})        // alert, not a handshake
	f.Add([]byte{22, 3, 3, 0, 1, 1})            // handshake, ClientHello type
	f.Add([]byte{22, 3, 3, 0xFF, 0xFF, 2})      // record claims more than present
	f.Add(append(bytes.Clone(rec), 0xAA, 0xBB)) // trailing garbage
	tls13 := seedServerHello()
	tls13.SetSelectedVersion(VersionTLS13)
	rec13, err := tls13.Marshal()
	if err != nil {
		f.Fatalf("marshal tls13 seed: %v", err)
	}
	f.Add(rec13)
	f.Fuzz(func(t *testing.T, data []byte) {
		sh, err := ParseServerHelloRecord(data)
		if err != nil {
			if sh != nil {
				t.Fatalf("non-nil hello alongside error %v", err)
			}
			return
		}
		// Accessors never panic on hostile input.
		_ = sh.SelectedVersion()
		_ = sh.ExtensionTypes()
		_ = sh.HasExtension(ExtSupportedVersions)
		_ = sh.LegacyVersion.String()
		// Marshal∘Parse identity.
		rec2, err := sh.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of parsed hello failed: %v", err)
		}
		sh2, err := ParseServerHelloRecord(rec2)
		if err != nil {
			t.Fatalf("re-parse of marshaled hello failed: %v", err)
		}
		if sh2.LegacyVersion != sh.LegacyVersion || sh2.Random != sh.Random ||
			sh2.CipherSuite != sh.CipherSuite || sh2.CompressionMethod != sh.CompressionMethod {
			t.Fatalf("round-trip fixed fields changed")
		}
		if !bytes.Equal(sh2.SessionID, sh.SessionID) {
			t.Fatalf("round-trip session id: %x != %x", sh2.SessionID, sh.SessionID)
		}
		if len(sh2.Extensions) != len(sh.Extensions) {
			t.Fatalf("round-trip extensions: %d != %d", len(sh2.Extensions), len(sh.Extensions))
		}
		for i := range sh.Extensions {
			if sh2.Extensions[i].Type != sh.Extensions[i].Type || !bytes.Equal(sh2.Extensions[i].Data, sh.Extensions[i].Data) {
				t.Fatalf("round-trip extension %d changed", i)
			}
		}
	})
}
