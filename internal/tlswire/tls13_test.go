package tlswire

import (
	"bytes"
	"crypto/tls"
	"reflect"
	"testing"
)

// TestClientHello13Accessors round-trips every 1.3 extension through its
// setter, the wire, and its accessor.
func TestClientHello13Accessors(t *testing.T) {
	ch := seedHello13()
	rec, err := ch.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := ParseRecord(rec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if want := []uint16{uint16(VersionTLS13), uint16(VersionTLS12)}; !reflect.DeepEqual(got.SupportedVersions(), want) {
		t.Errorf("SupportedVersions = %04x, want %04x", got.SupportedVersions(), want)
	}
	if want := []uint16{GroupX25519, GroupP256, GroupP384}; !reflect.DeepEqual(got.SupportedGroups(), want) {
		t.Errorf("SupportedGroups = %04x, want %04x", got.SupportedGroups(), want)
	}
	if want := []uint16{0x0403, 0x0804, 0x0401}; !reflect.DeepEqual(got.SignatureAlgorithms(), want) {
		t.Errorf("SignatureAlgorithms = %04x, want %04x", got.SignatureAlgorithms(), want)
	}
	if want := []byte{1}; !bytes.Equal(got.PSKKeyExchangeModes(), want) {
		t.Errorf("PSKKeyExchangeModes = %v, want %v", got.PSKKeyExchangeModes(), want)
	}
	shares := got.KeyShares()
	if len(shares) != 2 || shares[0].Group != GroupX25519 || shares[1].Group != GroupP256 {
		t.Fatalf("KeyShares = %+v, want x25519+p256", shares)
	}
	if len(shares[0].Data) != 32 || len(shares[1].Data) != 65 {
		t.Errorf("key share data lengths = %d, %d; want 32, 65", len(shares[0].Data), len(shares[1].Data))
	}
	if got.EffectiveVersion() != VersionTLS13 {
		t.Errorf("EffectiveVersion = %v, want TLS 1.3", got.EffectiveVersion())
	}
}

// TestClientHello13SettersReplaceInPlace checks the setters keep the
// extension order stable (a fingerprinting feature) when re-applied.
func TestClientHello13SettersReplaceInPlace(t *testing.T) {
	ch := seedHello13()
	order := ch.ExtensionTypes()
	ch.SetSupportedVersions([]uint16{uint16(VersionTLS13)})
	ch.SetKeyShares([]KeyShare{{Group: GroupP384, Data: []byte{1}}})
	ch.SetSupportedGroups([]uint16{GroupP384})
	ch.SetSignatureAlgorithms([]uint16{0x0503})
	ch.SetPSKKeyExchangeModes([]byte{0, 1})
	if !reflect.DeepEqual(ch.ExtensionTypes(), order) {
		t.Fatalf("setters disturbed extension order: %v -> %v", order, ch.ExtensionTypes())
	}
	if got := ch.SupportedVersions(); !reflect.DeepEqual(got, []uint16{uint16(VersionTLS13)}) {
		t.Errorf("replaced SupportedVersions = %04x", got)
	}
	if got := ch.KeyShares(); len(got) != 1 || got[0].Group != GroupP384 {
		t.Errorf("replaced KeyShares = %+v", got)
	}
}

// TestClientHello13MalformedTolerance: hostile payloads yield empty
// views, never panics or errors.
func TestClientHello13MalformedTolerance(t *testing.T) {
	cases := []Extension{
		{Type: ExtSupportedVersions, Data: nil},
		{Type: ExtSupportedVersions, Data: []byte{7, 0x03}},
		{Type: ExtKeyShare, Data: []byte{0xFF}},
		{Type: ExtKeyShare, Data: []byte{0x00, 0x08, 0x00, 0x1D, 0xFF, 0xFF, 0x01, 0x02}},
		{Type: ExtSupportedGroups, Data: []byte{0x00}},
		{Type: ExtSignatureAlgorithms, Data: []byte{0xFF, 0xFF, 0x04}},
		{Type: ExtPSKKeyExchangeModes, Data: []byte{}},
	}
	for _, ext := range cases {
		ch := &ClientHello{
			LegacyVersion: VersionTLS12,
			CipherSuites:  []uint16{0x1301},
			Extensions:    []Extension{ext},
		}
		checkParsed(ch) // must not panic
	}
}

// TestServerHelloKeyShareForms covers both server key_share shapes: the
// full entry of a ServerHello and the bare group of an HRR.
func TestServerHelloKeyShareForms(t *testing.T) {
	sh := &ServerHello{LegacyVersion: VersionTLS12, CipherSuite: 0x1301}
	sh.SetSelectedVersion(VersionTLS13)
	sh.SetKeyShare(GroupX25519, bytes.Repeat([]byte{0xAB}, 32))
	rec, err := sh.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := ParseServerHelloRecord(rec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.IsHelloRetryRequest() {
		t.Error("plain ServerHello classified as HRR")
	}
	ks, ok := got.KeyShare()
	if !ok || ks.Group != GroupX25519 || len(ks.Data) != 32 {
		t.Fatalf("KeyShare = %+v, %v; want x25519 with 32-byte data", ks, ok)
	}
	if g, ok := got.KeyShareGroup(); !ok || g != GroupX25519 {
		t.Errorf("KeyShareGroup = %04x, %v", g, ok)
	}

	hrr := &ServerHello{LegacyVersion: VersionTLS12, CipherSuite: 0x1301}
	hrr.SetSelectedVersion(VersionTLS13)
	hrr.SetRetryKeyShare(GroupP256)
	rec, err = hrr.Marshal()
	if err != nil {
		t.Fatalf("marshal HRR: %v", err)
	}
	got, err = ParseServerHelloRecord(rec)
	if err != nil {
		t.Fatalf("parse HRR: %v", err)
	}
	if !got.IsHelloRetryRequest() {
		t.Fatal("HRR not recognized after wire round trip")
	}
	if got.Random != HelloRetryRequestRandom() {
		t.Error("HRR random does not match the RFC 8446 constant")
	}
	ks, ok = got.KeyShare()
	if !ok || ks.Group != GroupP256 || len(ks.Data) != 0 {
		t.Fatalf("HRR KeyShare = %+v, %v; want bare p256", ks, ok)
	}
}

// TestGroupName covers known and unknown codepoints.
func TestGroupName(t *testing.T) {
	if got := GroupName(GroupX25519); got != "x25519" {
		t.Errorf("GroupName(x25519) = %q", got)
	}
	if got := GroupName(0xABCD); got != "group_0xabcd" {
		t.Errorf("GroupName(0xABCD) = %q", got)
	}
}

// TestValidateCryptoTLS13Capture is the capture half of the 1.3
// differential oracle: crypto/tls's own 1.3 first flight must decode
// cleanly through the new extension views.
func TestValidateCryptoTLS13Capture(t *testing.T) {
	if diffs := ValidateCryptoTLS13Capture(); len(diffs) > 0 {
		t.Fatalf("1.3 capture validation failed:\n  %v", diffs)
	}
}

// TestCompare13CaptureWithCryptoTLS closes the loop: the captured 1.3
// hello also goes through the server-direction comparison, so the
// supported_groups / signature_algorithms cross-checks run on a real
// crypto/tls artifact, not only on hand-built hellos.
func TestCompare13CaptureWithCryptoTLS(t *testing.T) {
	rec, err := CaptureCryptoTLSHello(&tls.Config{
		ServerName: "oracle13.invalid",
		MinVersion: tls.VersionTLS13,
		NextProtos: []string{"h2", "http/1.1"},
	})
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if diffs := CompareWithCryptoTLS(rec); len(diffs) > 0 {
		t.Fatalf("oracle disagreement on crypto/tls 1.3 hello: %v", diffs)
	}
}

// TestCompareWithCryptoTLSSeed13 runs the comparison on the package's
// own 1.3 seed (our encoder vs their parser).
func TestCompareWithCryptoTLSSeed13(t *testing.T) {
	rec, err := seedHello13().Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if diffs := CompareWithCryptoTLS(rec); len(diffs) > 0 {
		t.Fatalf("oracle disagreement on seedHello13: %v", diffs)
	}
}
