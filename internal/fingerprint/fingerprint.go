// Package fingerprint implements the TLS client fingerprinting used by the
// study: fingerprints are the 3-tuple {ciphersuites, extension types, TLS
// version} (Section 4.1 — IoT Inspector does not capture full ClientHello
// payloads, so JA3-style field sets are reduced to these three fields).
//
// The package provides the canonical string form, a stable hash, exact
// matching against a known-library corpus, the semantics-aware matcher of
// Appendix B.2 (Exact / SameSetDiffOrder / SameComponent / SimilarComponent
// / Customization), and the Jaccard similarity over ciphersuite lists and
// fingerprint sets.
package fingerprint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ciphersuite"
	"repro/internal/tlswire"
)

// Fingerprint is the study's TLS client fingerprint: the exact ciphersuite
// list, extension type list, and proposed TLS version.
type Fingerprint struct {
	Version      tlswire.Version
	CipherSuites []uint16
	Extensions   []uint16
}

// FromClientHello constructs the fingerprint of a parsed ClientHello.
func FromClientHello(ch *tlswire.ClientHello) Fingerprint {
	return Fingerprint{
		Version:      ch.EffectiveVersion(),
		CipherSuites: append([]uint16(nil), ch.CipherSuites...),
		Extensions:   ch.ExtensionTypes(),
	}
}

// FromClientHelloOwned is FromClientHello for callers that own ch and
// will not mutate it afterwards: the fingerprint aliases
// ch.CipherSuites instead of copying it. The parse-once ingestion path
// uses this on hellos it just parsed and immediately discards.
func FromClientHelloOwned(ch *tlswire.ClientHello) Fingerprint {
	return Fingerprint{
		Version:      ch.EffectiveVersion(),
		CipherSuites: ch.CipherSuites,
		Extensions:   ch.ExtensionTypes(),
	}
}

// Key returns the canonical string form used for equality and map keys:
// "version|cs1-cs2-...|ext1-ext2-...". Two ClientHellos have the same Key
// iff they share the study's 3-tuple fingerprint.
//
// Key is on the ingestion hot path (once per ClientHello record and once
// per corpus entry), so it appends hex digits directly instead of going
// through fmt.
func (f Fingerprint) Key() string {
	// Exact length up front, built via strings.Builder so the key costs
	// one allocation (the []byte+string(b) version cost two).
	n := 6
	if len(f.CipherSuites) > 0 {
		n += 5*len(f.CipherSuites) - 1
	}
	if len(f.Extensions) > 0 {
		n += 5*len(f.Extensions) - 1
	}
	var sb strings.Builder
	sb.Grow(n)
	var tmp [4]byte
	writeHex16 := func(v uint16) {
		appendHex16(tmp[:0], v)
		sb.Write(tmp[:])
	}
	writeHex16(uint16(f.Version))
	sb.WriteByte('|')
	for i, cs := range f.CipherSuites {
		if i > 0 {
			sb.WriteByte('-')
		}
		writeHex16(cs)
	}
	sb.WriteByte('|')
	for i, e := range f.Extensions {
		if i > 0 {
			sb.WriteByte('-')
		}
		writeHex16(e)
	}
	return sb.String()
}

const hexDigits = "0123456789abcdef"

// appendHex16 appends the four lowercase hex digits of v (= fmt "%04x").
func appendHex16(b []byte, v uint16) []byte {
	return append(b, hexDigits[v>>12], hexDigits[v>>8&0xF], hexDigits[v>>4&0xF], hexDigits[v&0xF])
}

// Hash returns a short stable hex digest of the fingerprint (12 bytes of
// SHA-256 over the binary tuple), suitable for node labels in graphs.
func (f Fingerprint) Hash() string {
	h := sha256.New()
	var buf [2]byte
	binary.BigEndian.PutUint16(buf[:], uint16(f.Version))
	h.Write(buf[:])
	h.Write([]byte{0})
	for _, cs := range f.CipherSuites {
		binary.BigEndian.PutUint16(buf[:], cs)
		h.Write(buf[:])
	}
	h.Write([]byte{0})
	for _, e := range f.Extensions {
		binary.BigEndian.PutUint16(buf[:], e)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// Level returns the security classification of the fingerprint's proposed
// ciphersuite list.
func (f Fingerprint) Level() ciphersuite.SecurityLevel {
	return ciphersuite.ListLevel(f.CipherSuites)
}

// VulnClasses returns the vulnerable component families present in the
// fingerprint's suites.
func (f Fingerprint) VulnClasses() []ciphersuite.VulnClass {
	return ciphersuite.VulnClasses(f.CipherSuites)
}

// NormalizeGREASE returns a copy of the fingerprint with GREASE codepoints
// (both suites and extensions) replaced by a single canonical placeholder,
// so that two captures of the same stack differing only in the random GREASE
// values compare equal. The placeholder preserves position.
func (f Fingerprint) NormalizeGREASE() Fingerprint {
	const placeholder = 0x0A0A
	out := Fingerprint{Version: f.Version}
	out.CipherSuites = make([]uint16, len(f.CipherSuites))
	for i, cs := range f.CipherSuites {
		if ciphersuite.IsGREASE(cs) {
			out.CipherSuites[i] = placeholder
		} else {
			out.CipherSuites[i] = cs
		}
	}
	out.Extensions = make([]uint16, len(f.Extensions))
	for i, e := range f.Extensions {
		if tlswire.IsGREASEExtension(e) {
			out.Extensions[i] = placeholder
		} else {
			out.Extensions[i] = e
		}
	}
	return out
}

// HasGREASESuites reports whether any proposed suite is a GREASE value.
func (f Fingerprint) HasGREASESuites() bool {
	for _, cs := range f.CipherSuites {
		if ciphersuite.IsGREASE(cs) {
			return true
		}
	}
	return false
}

// HasGREASEExtensions reports whether any extension type is a GREASE value.
func (f Fingerprint) HasGREASEExtensions() bool {
	for _, e := range f.Extensions {
		if tlswire.IsGREASEExtension(e) {
			return true
		}
	}
	return false
}

// ProposesFallbackSCSV reports whether TLS_FALLBACK_SCSV is in the list.
func (f Fingerprint) ProposesFallbackSCSV() bool {
	for _, cs := range f.CipherSuites {
		if cs == ciphersuite.SCSVFallback {
			return true
		}
	}
	return false
}

// JaccardSuites computes the Jaccard similarity of the ciphersuite *sets*
// of two fingerprints (order ignored, duplicates collapsed, signalling
// values retained since libraries differ in whether they send them).
func JaccardSuites(a, b Fingerprint) float64 {
	return JaccardUint16(a.CipherSuites, b.CipherSuites)
}

// JaccardUint16 is the Jaccard similarity |A∩B| / |A∪B| of two uint16
// multisets treated as sets. Two empty sets have similarity 1.
//
// The computation is a sorted-merge over two small stack buffers instead
// of per-call maps: it runs in Table 4's O(V²) pair loop and per
// candidate group inside MatchSemantics, where the old map-based version
// dominated the allocation profile.
func JaccardUint16(a, b []uint16) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	var bufA, bufB [jaccardBuf]uint16
	sa := sortedDedup(bufA[:0], a)
	sb := sortedDedup(bufB[:0], b)
	inter := 0
	for i, j := 0, 0; i < len(sa) && j < len(sb); {
		switch {
		case sa[i] == sb[j]:
			inter++
			i++
			j++
		case sa[i] < sb[j]:
			i++
		default:
			j++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// jaccardBuf is sized for real ciphersuite lists (the longest corpus and
// device lists are well under 128 suites); longer inputs spill to the heap.
const jaccardBuf = 128

// sortedDedup copies vs into buf, insertion-sorts it (lists are short),
// and removes duplicates in place.
func sortedDedup(buf []uint16, vs []uint16) []uint16 {
	buf = append(buf, vs...)
	for i := 1; i < len(buf); i++ {
		v := buf[i]
		j := i - 1
		for j >= 0 && buf[j] > v {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = v
	}
	n := 0
	for i, v := range buf {
		if i == 0 || v != buf[i-1] {
			buf[n] = v
			n++
		}
	}
	return buf[:n]
}

// JaccardStrings is the Jaccard similarity of two string sets. It iterates
// the maps directly without building per-call scratch sets; callers that
// already hold sorted slices should prefer JaccardSortedStrings, which
// avoids materializing maps at all.
func JaccardStrings(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	// Probe from the smaller side: map lookups dominate, so this halves
	// the work for skewed set sizes.
	if len(a) > len(b) {
		a, b = b, a
	}
	inter := 0
	for v := range a {
		if b[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaccardSortedStrings is the Jaccard similarity of two sorted, deduplicated
// string slices, computed by sorted-merge with zero allocations. It is the
// hot-path form used by the pairwise vendor-similarity table, where every
// vendor's fingerprint set is sorted once and compared O(V²) times.
func JaccardSortedStrings(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// MatchCategory is the semantics-aware matching category of Appendix B.2.
type MatchCategory int

const (
	// Customization: no known library is close enough.
	Customization MatchCategory = iota
	// SimilarComponent: component sets match up to key-length variants.
	SimilarComponent
	// SameComponent: identical kex/cipher/MAC component sets, different
	// suite combinations.
	SameComponent
	// SameSetDiffOrder: identical ciphersuite set, different ordering.
	SameSetDiffOrder
	// ExactCiphersuites: identical ciphersuite list (order included).
	ExactCiphersuites
)

// String names the category as in Table 11.
func (c MatchCategory) String() string {
	switch c {
	case ExactCiphersuites:
		return "Exact same"
	case SameSetDiffOrder:
		return "Same set diff order"
	case SameComponent:
		return "Same component"
	case SimilarComponent:
		return "Similar component"
	case Customization:
		return "Customization"
	default:
		return fmt.Sprintf("MatchCategory(%d)", int(c))
	}
}

// componentSets extracts the three component sets (kex+auth, cipher, MAC)
// from a ciphersuite list, skipping signalling values, GREASE, and unknown
// codepoints.
func componentSets(ids []uint16) (kex, cipher, mac map[string]bool) {
	kex = map[string]bool{}
	cipher = map[string]bool{}
	mac = map[string]bool{}
	for _, id := range ids {
		if ciphersuite.IsGREASE(id) {
			continue
		}
		s, ok := ciphersuite.Lookup(id)
		if !ok || s.IsSCSV() {
			continue
		}
		k, c, m := s.Components()
		kex[k] = true
		cipher[c] = true
		mac[m] = true
	}
	return kex, cipher, mac
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// setsSimilar reports whether every member of each set has a similar
// counterpart in the other set (per ciphersuite.SimilarAlgorithms).
func setsSimilar(a, b map[string]bool) bool {
	match := func(x string, set map[string]bool) bool {
		for y := range set {
			if ciphersuite.SimilarAlgorithms(x, y) {
				return true
			}
		}
		return false
	}
	for v := range a {
		if !match(v, b) {
			return false
		}
	}
	for v := range b {
		if !match(v, a) {
			return false
		}
	}
	return true
}

// suiteListEqual reports order-sensitive equality.
func suiteListEqual(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// suiteSetEqual reports order-insensitive equality of the suite sets.
func suiteSetEqual(a, b []uint16) bool {
	sa := append([]uint16(nil), a...)
	sb := append([]uint16(nil), b...)
	sort.Slice(sa, func(i, j int) bool { return sa[i] < sa[j] })
	sort.Slice(sb, func(i, j int) bool { return sb[i] < sb[j] })
	sa = dedup(sa)
	sb = dedup(sb)
	return suiteListEqual(sa, sb)
}

func dedup(sorted []uint16) []uint16 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// CategorizeAgainst classifies the relationship between a device's
// ciphersuite list and one known library's list.
func CategorizeAgainst(device, library []uint16) MatchCategory {
	if suiteListEqual(device, library) {
		return ExactCiphersuites
	}
	if suiteSetEqual(device, library) {
		return SameSetDiffOrder
	}
	dk, dc, dm := componentSets(device)
	lk, lc, lm := componentSets(library)
	if setsEqual(dk, lk) && setsEqual(dc, lc) && setsEqual(dm, lm) {
		return SameComponent
	}
	// Key exchange must match exactly (no length notion); cipher and MAC
	// may differ by key/digest length.
	if setsEqual(dk, lk) && setsSimilar(dc, lc) && setsSimilar(dm, lm) {
		return SimilarComponent
	}
	return Customization
}
