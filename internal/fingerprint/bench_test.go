package fingerprint

import "testing"

var benchSuitesA = []uint16{
	0xC030, 0xC02C, 0xC028, 0xC024, 0xC014, 0xC00A, 0x009D, 0x003D,
	0x0035, 0xC032, 0xC02E, 0xC02A, 0xC026, 0xC00F, 0xC005, 0x009C,
}

var benchSuitesB = []uint16{
	0xC02C, 0xC030, 0x009D, 0x0035, 0x003C, 0x002F, 0x000A, 0x1301,
}

func BenchmarkJaccardUint16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JaccardUint16(benchSuitesA, benchSuitesB)
	}
}

func BenchmarkMatchExact(b *testing.B) {
	m := testCorpusMatcher()
	f := Fingerprint{Version: 0x0303, CipherSuites: []uint16{0xC030, 0xC02C, 0x009D}, Extensions: []uint16{0, 10, 11}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MatchExact(f)
	}
}

func BenchmarkMatchSemanticsMemo(b *testing.B) {
	suites := []uint16{0xC030, 0xC02C, 0x009D, 0x0035}
	b.Run("memoized", func(b *testing.B) {
		m := testCorpusMatcher()
		m.MatchSemantics(suites) // warm the memo
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MatchSemantics(suites)
		}
	})
	b.Run("uncached", func(b *testing.B) {
		m := testCorpusMatcher()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.matchSemanticsUncached(suites)
		}
	})
}
