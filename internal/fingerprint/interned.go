package fingerprint

import (
	"repro/internal/intern"

	"repro/internal/tlswire"
)

// Interned is the arena-backed, comparable form of a Fingerprint: the
// ciphersuite and extension lists are replaced by deduped handles into
// a shared intern.Arena, so the whole fingerprint packs into twelve
// bytes and works directly as a map key. Hot paths key memos on
// Interned instead of the Key() string, which costs two allocations
// per call to build.
type Interned struct {
	Version tlswire.Version
	Suites  intern.Handle
	Exts    intern.Handle
}

// Intern converts f to its arena-backed form, registering its lists in
// a on first sight. Warm calls (lists already present) allocate
// nothing.
func (f Fingerprint) Intern(a *intern.Arena) Interned {
	return Interned{
		Version: f.Version,
		Suites:  a.Put(f.CipherSuites),
		Exts:    a.Put(f.Extensions),
	}
}

// Materialize rebuilds the row-shaped Fingerprint. The returned slices
// are read-only views into the arena; callers that mutate must copy.
func (i Interned) Materialize(a *intern.Arena) Fingerprint {
	return Fingerprint{
		Version:      i.Version,
		CipherSuites: a.Get(i.Suites),
		Extensions:   a.Get(i.Exts),
	}
}
