package fingerprint

import (
	"crypto/md5"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"strings"

	"repro/internal/ciphersuite"
	"repro/internal/tlswire"
)

// JA3 computes the canonical JA3 fingerprint string and its MD5 digest
// for a ClientHello (Salesforce JA3: "SSLVersion,Ciphers,Extensions,
// EllipticCurves,EllipticCurvePointFormats" with GREASE removed).
//
// The study itself works on the reduced 3-tuple because IoT Inspector did
// not retain curve data, but JA3 is the lingua franca of TLS
// fingerprinting; exposing it lets downstream users join this pipeline's
// output against JA3 corpora.
func JA3(ch *tlswire.ClientHello) (ja3 string, md5sum string) {
	var b strings.Builder
	b.WriteString(strconv.Itoa(int(ch.LegacyVersion)))
	b.WriteByte(',')

	writeList := func(vals []uint16, skipGREASE func(uint16) bool) {
		first := true
		for _, v := range vals {
			if skipGREASE != nil && skipGREASE(v) {
				continue
			}
			if !first {
				b.WriteByte('-')
			}
			first = false
			b.WriteString(strconv.Itoa(int(v)))
		}
	}
	writeList(ch.CipherSuites, ciphersuite.IsGREASE)
	b.WriteByte(',')
	writeList(ch.ExtensionTypes(), tlswire.IsGREASEExtension)
	b.WriteByte(',')

	// Elliptic curves from the supported_groups extension.
	writeList(parseUint16List(findExt(ch, tlswire.ExtSupportedGroups)), tlswire.IsGREASEExtension)
	b.WriteByte(',')

	// Point formats are single bytes.
	if data := findExt(ch, tlswire.ExtECPointFormats); len(data) >= 1 {
		n := int(data[0])
		first := true
		for i := 0; i < n && 1+i < len(data); i++ {
			if !first {
				b.WriteByte('-')
			}
			first = false
			b.WriteString(strconv.Itoa(int(data[1+i])))
		}
	}

	ja3 = b.String()
	sum := md5.Sum([]byte(ja3))
	return ja3, hex.EncodeToString(sum[:])
}

func findExt(ch *tlswire.ClientHello, t tlswire.ExtensionType) []byte {
	for _, e := range ch.Extensions {
		if e.Type == t {
			return e.Data
		}
	}
	return nil
}

// parseUint16List parses a 2-byte-length-prefixed uint16 vector (the
// supported_groups wire format).
func parseUint16List(data []byte) []uint16 {
	if len(data) < 2 {
		return nil
	}
	n := int(binary.BigEndian.Uint16(data))
	if n > len(data)-2 {
		n = len(data) - 2
	}
	out := make([]uint16, 0, n/2)
	for i := 2; i+1 < 2+n; i += 2 {
		out = append(out, binary.BigEndian.Uint16(data[i:]))
	}
	return out
}
