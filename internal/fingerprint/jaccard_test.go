package fingerprint

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// jaccardUint16Ref is the seed's map-based implementation, kept verbatim as
// the equivalence oracle for the sorted-merge rewrite.
func jaccardUint16Ref(a, b []uint16) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	sa := map[uint16]bool{}
	for _, v := range a {
		sa[v] = true
	}
	sb := map[uint16]bool{}
	for _, v := range b {
		sb[v] = true
	}
	inter := 0
	for v := range sa {
		if sb[v] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// jaccardStringsRef is the seed's implementation of JaccardStrings (no
// smaller-side swap).
func jaccardStringsRef(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for v := range a {
		if b[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func TestJaccardUint16MatchesReference(t *testing.T) {
	cases := [][2][]uint16{
		{nil, nil},
		{{}, {1}},
		{{1, 2, 3}, {1, 2, 3}},
		{{3, 2, 1}, {1, 2, 3}},
		{{1, 1, 1}, {1}},
		{{0xC030, 0x009D, 0x0035}, {0x0035, 0xFFFF}},
		{{5}, {7}},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		mk := func() []uint16 {
			n := rng.Intn(200) // exercise both the stack buffer and the spill path
			out := make([]uint16, n)
			for j := range out {
				out[j] = uint16(rng.Intn(64)) // small domain forces collisions/dups
			}
			return out
		}
		cases = append(cases, [2][]uint16{mk(), mk()})
	}
	for _, c := range cases {
		want := jaccardUint16Ref(c[0], c[1])
		got := JaccardUint16(c[0], c[1])
		if got != want {
			t.Fatalf("JaccardUint16(%v, %v) = %v, reference = %v", c[0], c[1], got, want)
		}
	}
}

func TestJaccardUint16DoesNotMutateInputs(t *testing.T) {
	a := []uint16{9, 3, 7, 3}
	b := []uint16{7, 1}
	JaccardUint16(a, b)
	if a[0] != 9 || a[1] != 3 || a[2] != 7 || a[3] != 3 || b[0] != 7 || b[1] != 1 {
		t.Fatalf("inputs mutated: a=%v b=%v", a, b)
	}
}

func TestJaccardStringsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	words := []string{"a", "b", "c", "dd", "ee", "fff", "ggg", "h", "i", "jj"}
	mk := func() map[string]bool {
		out := map[string]bool{}
		for i, n := 0, rng.Intn(len(words)); i < n; i++ {
			out[words[rng.Intn(len(words))]] = true
		}
		return out
	}
	for i := 0; i < 300; i++ {
		a, b := mk(), mk()
		want := jaccardStringsRef(a, b)
		if got := JaccardStrings(a, b); got != want {
			t.Fatalf("JaccardStrings(%v, %v) = %v, reference = %v", a, b, got, want)
		}
		// The sorted-slice form must agree with the map form on the same sets.
		sa, sb := sortedStringSet(a), sortedStringSet(b)
		if got := JaccardSortedStrings(sa, sb); got != want {
			t.Fatalf("JaccardSortedStrings(%v, %v) = %v, reference = %v", sa, sb, got, want)
		}
	}
	if JaccardSortedStrings(nil, nil) != 1 {
		t.Fatal("two empty slices must have similarity 1")
	}
}

func sortedStringSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func TestJaccardUint16ZeroAllocs(t *testing.T) {
	a := []uint16{0xC030, 0xC02C, 0xC028, 0xC024, 0xC014, 0xC00A, 0x009D, 0x0035}
	b := []uint16{0x0035, 0x003D, 0xC030, 0x009C}
	allocs := testing.AllocsPerRun(100, func() { JaccardUint16(a, b) })
	if allocs != 0 {
		t.Fatalf("JaccardUint16 allocated %v times per call, want 0", allocs)
	}
}

// TestMatchSemanticsMemoized checks that memoized lookups agree with the
// uncached matcher body and are safe under concurrent access (run with
// -race in CI).
func TestMatchSemanticsMemoized(t *testing.T) {
	m := testCorpusMatcher()
	lists := [][]uint16{
		{0xC030, 0xC02C, 0x009D},
		{0x009D, 0xC02C, 0xC030}, // same set, different order
		{0xC030},
		{0x1234, 0x5678}, // customization
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, l := range lists {
					got := m.MatchSemantics(l)
					want := m.matchSemanticsUncached(l)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("memoized result %+v != uncached %+v", got, want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestMatchExactPrecomputedBest checks the build-time best-version index
// against a rescan of the raw entry list.
func TestMatchExactPrecomputedBest(t *testing.T) {
	m := testCorpusMatcher()
	for _, e := range m.entries {
		got, ok := m.MatchExact(e.Print)
		if !ok {
			t.Fatalf("entry %s not found by its own print", e.Name())
		}
		// Rescan all entries sharing the key, the seed's way.
		best := LibraryEntry{}
		found := false
		for _, cand := range m.entries {
			if cand.Print.Key() != e.Print.Key() {
				continue
			}
			if !found || versionLess(best.Version, cand.Version) {
				best = cand
				found = true
			}
		}
		if !reflect.DeepEqual(got, best) {
			t.Fatalf("MatchExact(%s) = %s, rescan wants %s", e.Name(), got.Name(), best.Name())
		}
	}
}

func testCorpusMatcher() *Matcher {
	print := func(suites ...uint16) Fingerprint {
		return Fingerprint{Version: 0x0303, CipherSuites: suites, Extensions: []uint16{0, 10, 11}}
	}
	return NewMatcher([]LibraryEntry{
		{Family: "OpenSSL", Version: "1.0.2k", Print: print(0xC030, 0xC02C, 0x009D)},
		{Family: "OpenSSL", Version: "1.0.2u", Print: print(0xC030, 0xC02C, 0x009D)},
		{Family: "OpenSSL", Version: "1.1.1", Print: print(0x1301, 0x1302, 0xC030)},
		{Family: "wolfSSL", Version: "4.4.0", Print: print(0xC02C, 0xC030, 0x009D)},
		{Family: "Mbed TLS", Version: "2.16.3", Print: print(0xC030)},
	})
}
