package fingerprint

import (
	"sort"
	"sync"

	"repro/internal/intern"
)

// LibraryEntry is one known TLS library build in the matching corpus:
// a library family + version and the fingerprint its default client emits.
type LibraryEntry struct {
	// Family is the library family ("OpenSSL", "wolfSSL", "Mbed TLS",
	// "curl+OpenSSL", "curl+wolfSSL").
	Family string
	// Version is the human version string ("1.0.2u", "7.68.0/1.1.1i").
	Version string
	// Print is the fingerprint emitted by the library's default client.
	Print Fingerprint
	// ReleaseYear of the version, for "outdated" reporting.
	ReleaseYear int
	// SupportedIn2020 reports whether the version still received updates
	// at the end of the study's capture window.
	SupportedIn2020 bool
}

// Name returns "Family Version".
func (e LibraryEntry) Name() string { return e.Family + " " + e.Version }

// Matcher indexes a corpus of known-library fingerprints for exact and
// semantics-aware lookups. All lookup methods are safe for concurrent use:
// the indices are immutable after NewMatcher and the semantic-match memo
// is guarded by a lock, so one Matcher can be shared by every table of a
// study rendered in parallel.
type Matcher struct {
	entries []LibraryEntry
	byKey   map[string][]int // fingerprint key -> entry indices
	// byKeyBest resolves the highest-version entry per fingerprint key at
	// build time, so MatchExact is a single map hit instead of a version
	// scan per call.
	byKeyBest map[string]LibraryEntry
	// arena/byInternedBest are the symbol-keyed fast path: MatchExact
	// interns the query's suite and extension lists (alloc-free once
	// warm) and hits a comparable-struct map instead of building the
	// 2-alloc Key() string per call. Interned identity and Key()
	// identity partition fingerprints identically — both encode the
	// exact (version, suites, extensions) tuple.
	arena          *intern.Arena
	byInternedBest map[Interned]LibraryEntry

	// Semantic index: the corpus collapses to few distinct ciphersuite
	// lists (curl builds only vary extensions), so the B.2 matcher scans
	// suite-list groups instead of every entry.
	groups       []*suiteGroup
	byOrderedKey map[string]*suiteGroup
	bySortedKey  map[string][]*suiteGroup

	// semMu/semMemo memoize MatchSemantics by device suite-list key: the
	// component-set scan runs once per distinct list and every table
	// (Table 11, Figure 8, ...) shares the result.
	semMu   sync.RWMutex
	semMemo map[string]SemanticsMatch
}

// suiteGroup is one distinct corpus ciphersuite list with precomputed
// component sets and the highest-version entry proposing it.
type suiteGroup struct {
	suites           []uint16
	kex, cipher, mac map[string]bool
	best             LibraryEntry
}

// NewMatcher builds a matcher over the given corpus.
func NewMatcher(entries []LibraryEntry) *Matcher {
	m := &Matcher{
		entries:        entries,
		byKey:          make(map[string][]int, len(entries)),
		byKeyBest:      make(map[string]LibraryEntry, len(entries)),
		arena:          intern.NewArena(),
		byInternedBest: make(map[Interned]LibraryEntry, len(entries)),
		byOrderedKey:   map[string]*suiteGroup{},
		bySortedKey:    map[string][]*suiteGroup{},
		semMemo:        map[string]SemanticsMatch{},
	}
	for i, e := range entries {
		k := e.Print.Key()
		m.byKey[k] = append(m.byKey[k], i)
		if best, ok := m.byKeyBest[k]; !ok || versionLess(best.Version, e.Version) {
			m.byKeyBest[k] = e
			m.byInternedBest[e.Print.Intern(m.arena)] = e
		}

		okey := suiteListKey(e.Print.CipherSuites)
		g, ok := m.byOrderedKey[okey]
		if !ok {
			kex, cipher, mac := componentSets(e.Print.CipherSuites)
			g = &suiteGroup{
				suites: e.Print.CipherSuites,
				kex:    kex, cipher: cipher, mac: mac,
				best: e,
			}
			m.byOrderedKey[okey] = g
			m.groups = append(m.groups, g)
			skey := suiteListKey(sortedSuites(e.Print.CipherSuites))
			m.bySortedKey[skey] = append(m.bySortedKey[skey], g)
		} else if versionLess(g.best.Version, e.Version) {
			g.best = e
		}
	}
	return m
}

// suiteListKey is a fast binary key over a suite list.
func suiteListKey(ids []uint16) string {
	b := make([]byte, 2*len(ids))
	for i, id := range ids {
		b[2*i] = byte(id >> 8)
		b[2*i+1] = byte(id)
	}
	return string(b)
}

func sortedSuites(ids []uint16) []uint16 {
	out := append([]uint16(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Dedup.
	n := 0
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// CorpusSize returns the number of library entries indexed.
func (m *Matcher) CorpusSize() int { return len(m.entries) }

// DistinctFingerprints returns how many distinct fingerprints the corpus
// contains (consecutive library versions often share a fingerprint).
func (m *Matcher) DistinctFingerprints() int { return len(m.byKey) }

// MatchExact returns the known library matching the fingerprint exactly on
// the 3-tuple, if any. When several versions share the fingerprint, the
// highest version is returned, mirroring Section 4.1 ("if OpenSSL versions
// i through j share fingerprint F we report version j"). The winning
// version per key is resolved once at NewMatcher time.
func (m *Matcher) MatchExact(f Fingerprint) (LibraryEntry, bool) {
	best, ok := m.byInternedBest[f.Intern(m.arena)]
	return best, ok
}

// MatchExactInterned is MatchExact for a fingerprint already interned
// on this matcher's Arena (see Arena): a single comparable-map hit.
func (m *Matcher) MatchExactInterned(f Interned) (LibraryEntry, bool) {
	best, ok := m.byInternedBest[f]
	return best, ok
}

// Arena exposes the matcher's intern arena so callers can pre-intern
// fingerprints once and query with MatchExactInterned in hot loops.
func (m *Matcher) Arena() *intern.Arena { return m.arena }

// SemanticsMatch is the result of the semantics-aware matcher: the best
// category achieved across the corpus and the closest library under that
// category (ties broken by ciphersuite Jaccard similarity, then version).
type SemanticsMatch struct {
	Category MatchCategory
	Library  LibraryEntry
	// Jaccard is the ciphersuite-set similarity to the chosen library.
	Jaccard float64
}

// MatchSemantics runs the Appendix B.2 matcher: it classifies the device
// ciphersuite list against the corpus and returns the best category found.
// A result with Category == Customization has no meaningful Library.
//
// Results are memoized per distinct suite list (thread-safe), so the
// expensive component-set scan happens once per list no matter how many
// tables replay the corpus.
func (m *Matcher) MatchSemantics(deviceSuites []uint16) SemanticsMatch {
	memoKey := suiteListKey(deviceSuites)
	m.semMu.RLock()
	cached, ok := m.semMemo[memoKey]
	m.semMu.RUnlock()
	if ok {
		return cached
	}
	res := m.matchSemanticsUncached(deviceSuites)
	m.semMu.Lock()
	m.semMemo[memoKey] = res
	m.semMu.Unlock()
	return res
}

// matchSemanticsUncached is the memo-free matcher body.
func (m *Matcher) matchSemanticsUncached(deviceSuites []uint16) SemanticsMatch {
	// Exact list match: direct lookup.
	if g, ok := m.byOrderedKey[suiteListKey(deviceSuites)]; ok {
		return SemanticsMatch{
			Category: ExactCiphersuites,
			Library:  g.best,
			Jaccard:  JaccardUint16(deviceSuites, g.suites),
		}
	}
	// Same set, different order: sorted-key lookup.
	if gs, ok := m.bySortedKey[suiteListKey(sortedSuites(deviceSuites))]; ok {
		best := gs[0]
		for _, g := range gs[1:] {
			if versionLess(best.best.Version, g.best.Version) {
				best = g
			}
		}
		return SemanticsMatch{
			Category: SameSetDiffOrder,
			Library:  best.best,
			Jaccard:  JaccardUint16(deviceSuites, best.suites),
		}
	}
	// Component comparisons against the distinct suite-list groups.
	dk, dc, dm := componentSets(deviceSuites)
	best := SemanticsMatch{Category: Customization}
	for _, g := range m.groups {
		var cat MatchCategory
		switch {
		case setsEqual(dk, g.kex) && setsEqual(dc, g.cipher) && setsEqual(dm, g.mac):
			cat = SameComponent
		case setsEqual(dk, g.kex) && setsSimilar(dc, g.cipher) && setsSimilar(dm, g.mac):
			cat = SimilarComponent
		default:
			continue
		}
		if cat < best.Category {
			continue
		}
		j := JaccardUint16(deviceSuites, g.suites)
		if cat > best.Category || j > best.Jaccard ||
			(j == best.Jaccard && versionLess(best.Library.Version, g.best.Version)) {
			best = SemanticsMatch{Category: cat, Library: g.best, Jaccard: j}
		}
	}
	return best
}

// Entries returns the corpus sorted by family then version.
func (m *Matcher) Entries() []LibraryEntry {
	out := append([]LibraryEntry(nil), m.entries...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Family != out[j].Family {
			return out[i].Family < out[j].Family
		}
		return versionLess(out[i].Version, out[j].Version)
	})
	return out
}

// versionLess compares dotted version strings numerically where possible,
// falling back to lexicographic comparison for suffixes ("1.0.2u" etc.).
func versionLess(a, b string) bool {
	for {
		da, ra := versionToken(a)
		db, rb := versionToken(b)
		if da != db {
			return da < db
		}
		if ra == "" || rb == "" {
			return len(ra) < len(rb) || (len(ra) == len(rb) && ra < rb)
		}
		if ra[0] != rb[0] && (ra[0] == '.' || rb[0] == '.') {
			return ra < rb
		}
		// Skip one separator/letter and continue.
		if ra[0] == rb[0] {
			a, b = ra[1:], rb[1:]
			continue
		}
		return ra < rb
	}
}

// versionToken splits the leading integer off a version string.
func versionToken(s string) (int, string) {
	n := 0
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		n = n*10 + int(s[i]-'0')
		i++
	}
	return n, s[i:]
}
