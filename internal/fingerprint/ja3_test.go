package fingerprint

import (
	"strings"
	"testing"

	"repro/internal/tlswire"
)

func ja3Hello() *tlswire.ClientHello {
	return &tlswire.ClientHello{
		LegacyVersion: tlswire.VersionTLS12,             // 771
		CipherSuites:  []uint16{0x1A1A, 0xC02B, 0xC02F}, // GREASE + 49195, 49199
		Extensions: []tlswire.Extension{
			{Type: tlswire.ExtServerName}, // 0
			{Type: tlswire.ExtSupportedGroups, Data: []byte{0, 6, 0x2A, 0x2A, 0, 23, 0, 24}}, // GREASE + 23, 24
			{Type: tlswire.ExtECPointFormats, Data: []byte{1, 0}},                            // format 0
			{Type: tlswire.ExtensionType(0xDADA)},                                            // GREASE ext
			{Type: tlswire.ExtSignatureAlgorithms, Data: []byte{0, 2, 4, 3}},                 // 13
		},
	}
}

func TestJA3String(t *testing.T) {
	ja3, sum := JA3(ja3Hello())
	want := "771,49195-49199,0-10-11-13,23-24,0"
	if ja3 != want {
		t.Fatalf("ja3 %q want %q", ja3, want)
	}
	if len(sum) != 32 {
		t.Fatalf("md5 length %d", len(sum))
	}
	// Deterministic.
	_, sum2 := JA3(ja3Hello())
	if sum != sum2 {
		t.Fatal("md5 not deterministic")
	}
}

func TestJA3GREASEInvariance(t *testing.T) {
	a := ja3Hello()
	b := ja3Hello()
	// Different GREASE values must not change the JA3.
	b.CipherSuites[0] = 0x8A8A
	b.Extensions[3].Type = tlswire.ExtensionType(0x3A3A)
	b.Extensions[1].Data = []byte{0, 6, 0x6A, 0x6A, 0, 23, 0, 24}
	ja3a, _ := JA3(a)
	ja3b, _ := JA3(b)
	if ja3a != ja3b {
		t.Fatalf("GREASE leaked into JA3: %q vs %q", ja3a, ja3b)
	}
}

func TestJA3MinimalHello(t *testing.T) {
	ch := &tlswire.ClientHello{
		LegacyVersion: tlswire.VersionTLS10,
		CipherSuites:  []uint16{0x002F},
	}
	ja3, _ := JA3(ch)
	if ja3 != "769,47,,," {
		t.Fatalf("minimal ja3 %q", ja3)
	}
}

func TestJA3DistinguishesStacks(t *testing.T) {
	a := ja3Hello()
	b := ja3Hello()
	b.CipherSuites = append(b.CipherSuites, 0x009C)
	_, sa := JA3(a)
	_, sb := JA3(b)
	if sa == sb {
		t.Fatal("different suite lists share a JA3 hash")
	}
}

func TestJA3TruncatedExtensions(t *testing.T) {
	// Malformed supported_groups must not panic and must degrade cleanly.
	ch := ja3Hello()
	ch.Extensions[1].Data = []byte{0, 50, 0, 23} // declared longer than actual
	ja3, _ := JA3(ch)
	if !strings.HasPrefix(ja3, "771,") {
		t.Fatalf("ja3 %q", ja3)
	}
	ch.Extensions[2].Data = []byte{9} // point formats: count beyond data
	if ja3, _ = JA3(ch); ja3 == "" {
		t.Fatal("empty ja3 on malformed input")
	}
}
