package fingerprint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ciphersuite"
	"repro/internal/tlswire"
)

func fp(version tlswire.Version, suites, exts []uint16) Fingerprint {
	return Fingerprint{Version: version, CipherSuites: suites, Extensions: exts}
}

func TestKeyEqualityMatchesTuple(t *testing.T) {
	a := fp(tlswire.VersionTLS12, []uint16{0xC02F, 0x009C}, []uint16{0, 10, 11})
	b := fp(tlswire.VersionTLS12, []uint16{0xC02F, 0x009C}, []uint16{0, 10, 11})
	if a.Key() != b.Key() {
		t.Fatal("identical tuples must share key")
	}
	c := fp(tlswire.VersionTLS11, []uint16{0xC02F, 0x009C}, []uint16{0, 10, 11})
	if a.Key() == c.Key() {
		t.Fatal("version must be part of the key")
	}
	d := fp(tlswire.VersionTLS12, []uint16{0x009C, 0xC02F}, []uint16{0, 10, 11})
	if a.Key() == d.Key() {
		t.Fatal("suite order must be part of the key")
	}
	e := fp(tlswire.VersionTLS12, []uint16{0xC02F, 0x009C}, []uint16{0, 11, 10})
	if a.Key() == e.Key() {
		t.Fatal("extension order must be part of the key")
	}
}

func TestHashStable(t *testing.T) {
	a := fp(tlswire.VersionTLS12, []uint16{0xC02F}, []uint16{0})
	if a.Hash() != a.Hash() {
		t.Fatal("hash not deterministic")
	}
	if len(a.Hash()) != 24 {
		t.Fatalf("hash length %d", len(a.Hash()))
	}
	b := fp(tlswire.VersionTLS12, []uint16{0xC030}, []uint16{0})
	if a.Hash() == b.Hash() {
		t.Fatal("different prints must hash differently")
	}
	// Field-boundary ambiguity: suites [1,2]+exts [] vs suites [1]+exts [2].
	x := fp(tlswire.VersionTLS12, []uint16{1, 2}, nil)
	y := fp(tlswire.VersionTLS12, []uint16{1}, []uint16{2})
	if x.Hash() == y.Hash() {
		t.Fatal("hash must separate suites from extensions")
	}
}

func TestFromClientHello(t *testing.T) {
	ch := &tlswire.ClientHello{
		LegacyVersion: tlswire.VersionTLS12,
		CipherSuites:  []uint16{0xC02F, 0x00FF},
		Extensions: []tlswire.Extension{
			{Type: tlswire.ExtServerName},
			{Type: tlswire.ExtSessionTicket},
		},
	}
	f := FromClientHello(ch)
	if f.Version != tlswire.VersionTLS12 || len(f.CipherSuites) != 2 || len(f.Extensions) != 2 {
		t.Fatalf("bad fingerprint %+v", f)
	}
}

func TestNormalizeGREASE(t *testing.T) {
	a := fp(tlswire.VersionTLS12, []uint16{0x1A1A, 0xC02F}, []uint16{0xDADA, 0})
	b := fp(tlswire.VersionTLS12, []uint16{0x5A5A, 0xC02F}, []uint16{0x2A2A, 0})
	if a.Key() == b.Key() {
		t.Fatal("raw keys should differ")
	}
	if a.NormalizeGREASE().Key() != b.NormalizeGREASE().Key() {
		t.Fatal("normalized keys should match")
	}
	if !a.HasGREASESuites() || !a.HasGREASEExtensions() {
		t.Fatal("GREASE detection failed")
	}
	c := fp(tlswire.VersionTLS12, []uint16{0xC02F}, []uint16{0})
	if c.HasGREASESuites() || c.HasGREASEExtensions() {
		t.Fatal("false GREASE detection")
	}
}

func TestProposesFallbackSCSV(t *testing.T) {
	a := fp(tlswire.VersionTLS12, []uint16{0xC02F, ciphersuite.SCSVFallback}, nil)
	if !a.ProposesFallbackSCSV() {
		t.Fatal("SCSV not detected")
	}
	b := fp(tlswire.VersionTLS12, []uint16{0xC02F, ciphersuite.SCSVRenegotiation}, nil)
	if b.ProposesFallbackSCSV() {
		t.Fatal("renego SCSV misdetected as fallback")
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []uint16
		want float64
	}{
		{[]uint16{1, 2, 3}, []uint16{1, 2, 3}, 1},
		{[]uint16{1, 2}, []uint16{3, 4}, 0},
		{[]uint16{1, 2, 3}, []uint16{2, 3, 4}, 0.5},
		{[]uint16{1, 1, 2}, []uint16{1, 2, 2}, 1}, // multiset collapse
		{nil, nil, 1},
		{[]uint16{1}, nil, 0},
	}
	for _, c := range cases {
		if got := JaccardUint16(c.a, c.b); got != c.want {
			t.Errorf("Jaccard(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCategorizeAgainst(t *testing.T) {
	// Base library list: ECDHE+RSA AES-GCM/CBC with SHA2.
	lib := []uint16{0xC02F, 0xC030, 0xC027, 0xC028, 0x009C}
	if got := CategorizeAgainst(lib, lib); got != ExactCiphersuites {
		t.Errorf("exact: %v", got)
	}
	reordered := []uint16{0x009C, 0xC030, 0xC02F, 0xC028, 0xC027}
	if got := CategorizeAgainst(reordered, lib); got != SameSetDiffOrder {
		t.Errorf("reorder: %v", got)
	}
	// Same components, different combination: swap in ECDHE_RSA AES_256_GCM
	// with 128 variants rearranged — use a different suite made of the
	// same component sets. lib components: kex {ECDHE_RSA, RSA},
	// cipher {AES_128_GCM, AES_256_GCM, AES_128_CBC, AES_256_CBC},
	// mac {AEAD, SHA256, SHA384}.
	sameComp := []uint16{0xC02F, 0xC030, 0xC027, 0xC028, 0x009C, 0x009D, 0x003C}
	// adds RSA AES_256_GCM (AEAD) and RSA AES_128_CBC SHA256: all components
	// already present.
	if got := CategorizeAgainst(sameComp, lib); got != SameComponent {
		t.Errorf("same component: %v", got)
	}
	// Similar: replace AES_128 variants with AES_256-only selection plus
	// SHA384 instead of SHA256 — length variants only.
	similar := []uint16{0xC030, 0xC028, 0x009D, 0x003D}
	// components: kex {ECDHE_RSA, RSA} ✓, cipher {AES_256_GCM, AES_256_CBC}
	// similar to lib's ciphers, mac {AEAD, SHA384, SHA256}.
	if got := CategorizeAgainst(similar, lib); got != SimilarComponent {
		t.Errorf("similar component: %v", got)
	}
	// Customization: RC4/3DES lists share nothing with the modern library.
	custom := []uint16{0x0005, 0x000A, 0x0004}
	if got := CategorizeAgainst(custom, lib); got != Customization {
		t.Errorf("custom: %v", got)
	}
}

func TestCategorizeSHA1NotSimilarToSHA2(t *testing.T) {
	// lib uses SHA-1 CBC suites; device uses same ciphers with SHA256 MACs.
	lib := []uint16{0xC013, 0xC014}    // ECDHE_RSA AES CBC SHA
	device := []uint16{0xC027, 0xC028} // ECDHE_RSA AES CBC SHA256/384
	if got := CategorizeAgainst(device, lib); got != Customization {
		t.Errorf("SHA-1 vs SHA-2 should be Customization, got %v", got)
	}
}

func corpusForTest() []LibraryEntry {
	mk := func(fam, ver string, year int, supported bool, suites []uint16) LibraryEntry {
		return LibraryEntry{
			Family: fam, Version: ver, ReleaseYear: year, SupportedIn2020: supported,
			Print: Fingerprint{
				Version:      tlswire.VersionTLS12,
				CipherSuites: suites,
				Extensions:   []uint16{0, 10, 11, 13, 0xFF01},
			},
		}
	}
	return []LibraryEntry{
		mk("OpenSSL", "1.0.2f", 2016, false, []uint16{0xC02F, 0xC030, 0xC013, 0xC014, 0x009C, 0x002F, 0x0035, 0x000A}),
		mk("OpenSSL", "1.0.2u", 2019, false, []uint16{0xC02F, 0xC030, 0xC013, 0xC014, 0x009C, 0x002F, 0x0035, 0x000A}),
		mk("OpenSSL", "1.1.1i", 2020, true, []uint16{0x1301, 0x1302, 0x1303, 0xC02F, 0xC030, 0xCCA8}),
		mk("wolfSSL", "3.15.3", 2018, false, []uint16{0xC02B, 0xC02F, 0xC013, 0x009C}),
	}
}

func TestMatcherExact(t *testing.T) {
	m := NewMatcher(corpusForTest())
	if m.CorpusSize() != 4 {
		t.Fatalf("size %d", m.CorpusSize())
	}
	// 1.0.2f and 1.0.2u share a fingerprint => 3 distinct prints.
	if m.DistinctFingerprints() != 3 {
		t.Fatalf("distinct %d", m.DistinctFingerprints())
	}
	probe := Fingerprint{
		Version:      tlswire.VersionTLS12,
		CipherSuites: []uint16{0xC02F, 0xC030, 0xC013, 0xC014, 0x009C, 0x002F, 0x0035, 0x000A},
		Extensions:   []uint16{0, 10, 11, 13, 0xFF01},
	}
	e, ok := m.MatchExact(probe)
	if !ok {
		t.Fatal("exact match expected")
	}
	if e.Version != "1.0.2u" {
		t.Fatalf("should report highest version, got %s", e.Version)
	}
	probe.Extensions = []uint16{0, 10}
	if _, ok := m.MatchExact(probe); ok {
		t.Fatal("different extensions must not match exactly")
	}
}

func TestMatcherSemantics(t *testing.T) {
	m := NewMatcher(corpusForTest())
	// Same set as OpenSSL 1.0.2 but reordered.
	got := m.MatchSemantics([]uint16{0x000A, 0x0035, 0x002F, 0x009C, 0xC014, 0xC013, 0xC030, 0xC02F})
	if got.Category != SameSetDiffOrder {
		t.Fatalf("category %v", got.Category)
	}
	if got.Library.Family != "OpenSSL" {
		t.Fatalf("library %s", got.Library.Name())
	}
	// Nothing like the corpus.
	got = m.MatchSemantics([]uint16{0x001E, 0x0021})
	if got.Category != Customization {
		t.Fatalf("category %v", got.Category)
	}
}

func TestVersionLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"1.0.2f", "1.0.2u", true},
		{"1.0.2u", "1.0.2f", false},
		{"1.0.2", "1.0.2u", true},
		{"1.0.2u", "1.1.0", true},
		{"3.9.0", "3.10.2", true},
		{"2.16.4", "2.16.4", false},
		{"7.68.0", "7.7.0", false},
	}
	for _, c := range cases {
		if got := versionLess(c.a, c.b); got != c.want {
			t.Errorf("versionLess(%q,%q)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMatchCategoryString(t *testing.T) {
	want := map[MatchCategory]string{
		ExactCiphersuites: "Exact same",
		SameSetDiffOrder:  "Same set diff order",
		SameComponent:     "Same component",
		SimilarComponent:  "Similar component",
		Customization:     "Customization",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d => %q want %q", c, c.String(), s)
		}
	}
}

// Property: Jaccard is symmetric and bounded in [0,1].
func TestPropertyJaccard(t *testing.T) {
	f := func(a, b []uint16) bool {
		j1 := JaccardUint16(a, b)
		j2 := JaccardUint16(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Jaccard(a,a) == 1 for non-empty a.
func TestPropertyJaccardIdentity(t *testing.T) {
	f := func(a []uint16) bool {
		return JaccardUint16(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CategorizeAgainst(x,x) is always ExactCiphersuites and the
// category ordering is monotone under reordering.
func TestPropertyCategorizeSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	all := ciphersuite.All()
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		ids := make([]uint16, n)
		for i := range ids {
			ids[i] = all[rng.Intn(len(all))].ID
		}
		if got := CategorizeAgainst(ids, ids); got != ExactCiphersuites {
			t.Fatalf("self-categorize %v for %v", got, ids)
		}
		// A permutation is at least SameSetDiffOrder.
		perm := append([]uint16(nil), ids...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if got := CategorizeAgainst(perm, ids); got < SameSetDiffOrder {
			t.Fatalf("permutation categorized %v", got)
		}
	}
}

func BenchmarkKey(b *testing.B) {
	f := fp(tlswire.VersionTLS12,
		[]uint16{0xC02F, 0xC030, 0xC02B, 0xC02C, 0xC013, 0xC014, 0x009C, 0x009D, 0x002F, 0x0035, 0x000A},
		[]uint16{0, 5, 10, 11, 13, 16, 18, 21, 23, 35, 0xFF01})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Key()
	}
}

func BenchmarkMatchSemantics(b *testing.B) {
	m := NewMatcher(corpusForTest())
	suites := []uint16{0x000A, 0x0035, 0x002F, 0x009C, 0xC014, 0xC013, 0xC030, 0xC02F}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MatchSemantics(suites)
	}
}
