package localnet

import (
	"crypto/tls"
	"testing"
	"time"
)

var now = time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC)

func TestLabObservations(t *testing.T) {
	lab, err := NewLab(now)
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	obs, err := lab.ObserveAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 3 {
		t.Fatalf("observations %d", len(obs))
	}
	byName := map[string]Observation{}
	for _, o := range obs {
		byName[o.Device] = o
		// None of the local chains anchor in the phone/laptop stores and
		// none of the certs appear in CT (Section 6.2).
		if o.RootInStores {
			t.Errorf("%s: root in trust stores", o.Device)
		}
		if o.InCT {
			t.Errorf("%s: certificate in CT", o.Device)
		}
		if o.TLSVersion != tls.VersionTLS12 {
			t.Errorf("%s: negotiated %04x, want TLS 1.2", o.Device, o.TLSVersion)
		}
	}

	echo := byName["Amazon Echo"]
	if echo.ChainLen != 1 {
		t.Errorf("Echo chain length %d, want 1 (single self-signed cert)", echo.ChainLen)
	}
	if !echo.CNIsIP {
		t.Errorf("Echo CN %q should be an IP address", echo.LeafCN)
	}
	if echo.ValidityDays < 330 || echo.ValidityDays > 400 {
		t.Errorf("Echo validity %d days, want ~365", echo.ValidityDays)
	}

	cc := byName["Google Chromecast"]
	if cc.ChainLen != 2 {
		t.Errorf("Chromecast chain length %d, want 2 (leaf + ICA)", cc.ChainLen)
	}
	if cc.IssuerCN != "Chromecast ICA 12 Public CA" {
		t.Errorf("Chromecast issuer CN %q", cc.IssuerCN)
	}
	if cc.ValidityDays < 21*365 {
		t.Errorf("Chromecast validity %d days, want ~22 years", cc.ValidityDays)
	}
	if cc.CNIsIP {
		t.Error("Chromecast CN should be a serial, not an IP")
	}

	home := byName["Google Home"]
	if home.ChainLen != 2 {
		t.Errorf("Home chain length %d", home.ChainLen)
	}
	if home.ValidityDays < 19*365 {
		t.Errorf("Home validity %d days, want ~20 years", home.ValidityDays)
	}
}

func TestListenPortsDocumented(t *testing.T) {
	lab, err := NewLab(now)
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	if lab.Echo.ListenPort != 55443 {
		t.Errorf("Echo port %d, want 55443", lab.Echo.ListenPort)
	}
	if lab.Chromecast.ListenPort != 8443 {
		t.Errorf("Chromecast port %d, want 8443", lab.Chromecast.ListenPort)
	}
	if lab.Home.ListenPort != 10101 {
		t.Errorf("Home port %d, want 10101", lab.Home.ListenPort)
	}
}

func TestObserveUnstartedServer(t *testing.T) {
	echo := NewEcho("10.0.0.9", now)
	if echo.Addr() != "" {
		t.Fatal("unstarted server has an address")
	}
	if _, err := Observe(echo, nil, nil); err == nil {
		t.Fatal("observing an unstarted server should fail")
	}
}

func TestConcurrentObservations(t *testing.T) {
	lab, err := NewLab(now)
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	errs := make(chan error, 12)
	for i := 0; i < 12; i++ {
		go func() {
			_, err := Observe(lab.Chromecast, lab.Stores, lab.Log)
			errs <- err
		}()
	}
	for i := 0; i < 12; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	lab, err := NewLab(now)
	if err != nil {
		b.Fatal(err)
	}
	defer lab.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Observe(lab.Echo, lab.Stores, lab.Log); err != nil {
			b.Fatal(err)
		}
	}
}
