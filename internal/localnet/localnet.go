// Package localnet implements the Section 6.2 case study: PKI on the
// local network. Amazon Echo / Fire TV and Google Chromecast / Home
// communicate with each other over TLS on the LAN with private chains —
// Echo presents a single self-signed certificate whose Common Name is its
// IP address and a one-year validity; Chromecast and Google Home present
// leaf + "Chromecast ICA" chains signed by a "Cast Root CA" with 20–22
// years of validity, absent from every trust store and from CT.
//
// The servers here are genuine crypto/tls listeners on the loopback
// interface, and the observer is a genuine TLS client — the case study
// exercises real network I/O end to end.
package localnet

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net"
	"time"

	"repro/internal/ctlog"
	"repro/internal/pki"
)

// DeviceServer is one local IoT device's TLS listener.
type DeviceServer struct {
	// Name of the device ("Amazon Echo", "Google Chromecast").
	Name string
	// ListenPort the device serves TLS on (55443 for Echo, 8443/10101
	// for the Google devices in the paper).
	ListenPort int
	// Chain presented during handshakes.
	Chain pki.Chain
	// TLSVersion the device negotiates at most.
	TLSVersion uint16

	ln  net.Listener
	key any
}

// Addr returns the listener's address, valid after Start.
func (d *DeviceServer) Addr() string {
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Start begins serving TLS on loopback (an ephemeral port stands in for
// ListenPort, which real devices bind).
func (d *DeviceServer) Start() error {
	cert := tls.Certificate{PrivateKey: d.key}
	for _, c := range d.Chain.Certs {
		cert.Certificate = append(cert.Certificate, c.Raw)
	}
	maxVersion := d.TLSVersion
	if maxVersion == 0 {
		maxVersion = tls.VersionTLS12
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
		MaxVersion:   maxVersion,
	})
	if err != nil {
		return fmt.Errorf("localnet: listen: %w", err)
	}
	d.ln = ln
	//lint:allow goleak accept loop is leashed by the listener: Close unblocks Accept and the loop returns
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			//lint:allow goleak per-conn goroutine is bounded by the handshake deadline below and always closes its conn
			go func(c net.Conn) {
				defer c.Close()
				// A real device would not serve a client forever: without
				// this deadline a stalled peer pins the goroutine and the
				// socket for the life of the process.
				//lint:allow noclock real handshake deadline on a live socket needs wall-clock time
				c.SetDeadline(time.Now().Add(5 * time.Second))
				if tc, ok := c.(*tls.Conn); ok {
					tc.Handshake()
				}
			}(conn)
		}
	}()
	return nil
}

// Close stops the listener.
func (d *DeviceServer) Close() {
	if d.ln != nil {
		d.ln.Close()
	}
}

// NewEcho builds the Amazon Echo local server: a single self-signed
// certificate, CN = the device's IP, one year of validity, port 55443.
func NewEcho(ip string, now time.Time) *DeviceServer {
	ca := pki.NewCA("Amazon Device", pki.PrivateCA, now.AddDate(-1, 0, 0), 30, 0)
	leaf := ca.IssueSelfSignedLeaf(pki.LeafSpec{
		CommonName: ip,
		Org:        "Amazon",
		NotBefore:  now.AddDate(0, -1, 0),
		NotAfter:   now.AddDate(1, -1, 0), // one year from issuance
	})
	return &DeviceServer{
		Name:       "Amazon Echo",
		ListenPort: 55443,
		Chain:      pki.Chain{Certs: []*x509.Certificate{leaf.Cert}},
		TLSVersion: tls.VersionTLS12,
		key:        leaf.Key,
	}
}

// CastDevice describes the two Google devices of the case study.
type CastDevice struct {
	Name       string
	ICAName    string
	Years      int
	ListenPort int
}

// NewCast builds a Google Cast device server: leaf (serial-number CN)
// signed by a "Chromecast ICA" intermediate under "Cast Root CA", with a
// 20–22 year validity, served over TLS 1.2 (Chromecast port 8443/10101).
func NewCast(dev CastDevice, serial string, now time.Time) (*DeviceServer, *pki.CA) {
	root := pki.NewCA("Cast Root CA", pki.PrivateCA, now.AddDate(-dev.Years, 0, 0), dev.Years*2, 0)
	// The ICA certificate carries the Chromecast ICA common name.
	ica := pki.NewSubCA(dev.ICAName, pki.PrivateCA, root, now.AddDate(-1, 0, 0), dev.Years)
	leaf := ica.IssueLeaf(pki.LeafSpec{
		CommonName: serial,
		Org:        "Google",
		NotBefore:  now.AddDate(0, -6, 0),
		NotAfter:   now.AddDate(dev.Years, -6, 0),
	})
	chain := pki.Chain{Certs: []*x509.Certificate{leaf.Cert, ica.Intermediates[0].Cert}}
	return &DeviceServer{
		Name:       dev.Name,
		ListenPort: dev.ListenPort,
		Chain:      chain,
		TLSVersion: tls.VersionTLS12,
		key:        leaf.Key,
	}, root
}

// Observation is what the passive observer (the Raspberry Pi running the
// modified IoT Inspector) extracts from one local TLS connection.
type Observation struct {
	Device       string
	Addr         string
	TLSVersion   uint16
	ChainLen     int
	LeafCN       string
	CNIsIP       bool
	ValidityDays int
	IssuerCN     string
	// RootInStores: the chain's anchor is in the phone/laptop trust
	// stores (it never is for these devices).
	RootInStores bool
	// InCT: the leaf appears in the public CT log (it never does).
	InCT bool
}

// Observe connects to a local device server and extracts its certificate
// chain over a real TLS handshake.
func Observe(d *DeviceServer, stores *pki.StoreSet, log *ctlog.Log) (Observation, error) {
	conn, err := tls.Dial("tcp", d.Addr(), &tls.Config{
		InsecureSkipVerify: true,
		MinVersion:         tls.VersionTLS12,
	})
	if err != nil {
		return Observation{}, fmt.Errorf("localnet: dial %s: %w", d.Name, err)
	}
	defer conn.Close()
	state := conn.ConnectionState()
	peer := state.PeerCertificates
	if len(peer) == 0 {
		return Observation{}, fmt.Errorf("localnet: %s presented no certificates", d.Name)
	}
	leaf := peer[0]
	obs := Observation{
		Device:       d.Name,
		Addr:         d.Addr(),
		TLSVersion:   state.Version,
		ChainLen:     len(peer),
		LeafCN:       leaf.Subject.CommonName,
		CNIsIP:       net.ParseIP(leaf.Subject.CommonName) != nil,
		ValidityDays: int(leaf.NotAfter.Sub(leaf.NotBefore).Hours() / 24),
		IssuerCN:     leaf.Issuer.CommonName,
	}
	if stores != nil {
		obs.RootInStores = stores.ContainsOrg(pki.IssuerOrg(leaf))
	}
	if log != nil {
		obs.InCT = log.Contains(leaf)
	}
	return obs, nil
}

// Lab is the full Section 6.2 testbed.
type Lab struct {
	Echo       *DeviceServer
	Chromecast *DeviceServer
	Home       *DeviceServer
	// Stores models the Pixel phone and MacBook trust stores.
	Stores *pki.StoreSet
	// Log is the public CT log (none of the local certs are in it).
	Log *ctlog.Log
}

// NewLab builds and starts the three local device servers.
func NewLab(now time.Time) (*Lab, error) {
	lab := &Lab{
		Echo:   NewEcho("192.168.1.23", now),
		Stores: pki.NewStoreSet(),
		Log:    ctlog.New("public-ct", func() time.Time { return now }),
	}
	// The phone/laptop stores trust a normal public CA, not Cast Root CA.
	lab.Stores.AddPublicRoot(pki.NewCA("DigiCert", pki.PublicTrustCA, now.AddDate(-10, 0, 0), 30, 1))

	cc, _ := NewCast(CastDevice{Name: "Google Chromecast", ICAName: "Chromecast ICA 12", Years: 22, ListenPort: 8443}, "3b9f120a77", now)
	home, _ := NewCast(CastDevice{Name: "Google Home", ICAName: "Chromecast ICA 16 (Audio Assist 4)", Years: 20, ListenPort: 10101}, "8c41e00b19", now)
	lab.Chromecast = cc
	lab.Home = home

	for _, d := range []*DeviceServer{lab.Echo, lab.Chromecast, lab.Home} {
		if err := d.Start(); err != nil {
			lab.Close()
			return nil, err
		}
	}
	return lab, nil
}

// Close stops all servers.
func (l *Lab) Close() {
	for _, d := range []*DeviceServer{l.Echo, l.Chromecast, l.Home} {
		if d != nil {
			d.Close()
		}
	}
}

// ObserveAll captures all three devices.
func (l *Lab) ObserveAll() ([]Observation, error) {
	var out []Observation
	for _, d := range []*DeviceServer{l.Echo, l.Chromecast, l.Home} {
		obs, err := Observe(d, l.Stores, l.Log)
		if err != nil {
			return nil, err
		}
		out = append(out, obs)
	}
	return out, nil
}
