package labdata

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/simnet"
)

func fixtures(t testing.TB) (*simnet.World, *dataset.Dataset, *analysis.Server) {
	t.Helper()
	ds := dataset.Generate(dataset.Config{Seed: 77, Scale: 0.3})
	snis := ds.SNIsByMinUsers(2)
	w := simnet.Build(simnet.Config{Seed: 3, SNIs: snis})
	srv := analysis.NewServer(w, ds, snis, false)
	return w, ds, srv
}

func TestCaptureShape(t *testing.T) {
	w, ds, _ := fixtures(t)
	lab := Capture(w, ds, 5)
	if lab.Devices == 0 || lab.Devices > 113 {
		t.Fatalf("lab devices %d", lab.Devices)
	}
	if lab.Vendors < 10 {
		t.Errorf("lab vendors %d, want tens (paper: 52)", lab.Vendors)
	}
	if len(lab.Records) == 0 {
		t.Fatal("no lab records")
	}
	for _, r := range lab.Records {
		if r.CapturedAt.Year() < 2017 || r.CapturedAt.Year() > 2021 {
			t.Fatalf("capture time %v outside 2017-2021", r.CapturedAt)
		}
	}
	if len(lab.SNIs()) == 0 {
		t.Fatal("no lab SNIs")
	}
}

func TestCaptureDeterminism(t *testing.T) {
	w, ds, _ := fixtures(t)
	a := Capture(w, ds, 5)
	b := Capture(w, ds, 5)
	if len(a.Records) != len(b.Records) {
		t.Fatal("nondeterministic capture")
	}
	for i := range a.Records {
		if a.Records[i].SNI != b.Records[i].SNI || a.Records[i].IssuerOrg != b.Records[i].IssuerOrg {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestCrossCheckAgreement(t *testing.T) {
	w, ds, srv := fixtures(t)
	lab := Capture(w, ds, 5)
	cc := Compare(lab, srv)
	if cc.CommonSNIs == 0 {
		t.Fatal("no common SNIs between lab and probe")
	}
	// The paper found 356/362 SNIs with the same issuer (98%+ agreement).
	if rate := cc.AgreementRate(); rate < 0.9 {
		t.Errorf("issuer agreement %.2f, want > 0.9", rate)
	}
	if cc.DiffIssuer == 0 {
		t.Error("expected a small divergent tail (the paper's 7 SNIs)")
	}
	if cc.VendorsInBoth == 0 {
		t.Error("no vendors in both datasets")
	}
	// CT deployment grew between epochs.
	if cc.CTGrowth == 0 {
		t.Error("expected CT logging growth between lab epoch and 2022")
	}
}

func TestAgreementRateEmpty(t *testing.T) {
	var cc CrossCheck
	if cc.AgreementRate() != 0 {
		t.Fatal("empty cross-check should have rate 0")
	}
}

func BenchmarkCapture(b *testing.B) {
	w, ds, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Capture(w, ds, 5)
	}
}
