// Package labdata models the university lab dataset of Appendix C.4.2:
// network traffic of 113 IoT devices (52 vendors) captured 2017–2021 with
// ServerHello and certificate data, used to cross-check the 2022 probe
// results for consistency over time.
//
// The lab capture observes the same server world but at an earlier epoch:
// issuers are stable (the paper found 356 of 362 common SNIs with the
// same issuer organization), while leaf certificates themselves rotated.
// A small deterministic fraction of SNIs changes issuer between epochs,
// matching the 7 divergent SNIs the paper reports; CT logging is less
// prevalent in the lab epoch (CT deployment grew over time).
package labdata

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/simnet"
)

// Record is one lab-observed (device, SNI) certificate capture.
type Record struct {
	DeviceID  string
	Vendor    string
	SNI       string
	IssuerOrg string
	// CapturedAt is when the lab saw the certificate (2017–2021).
	CapturedAt time.Time
	// ValidityDays of the lab-epoch leaf.
	ValidityDays int
	// InCT at lab-capture time.
	InCT bool
}

// Dataset is the lab capture.
type Dataset struct {
	Records []Record
	// Devices and Vendors covered.
	Devices int
	Vendors int
}

// Capture simulates the lab capture against the world: a 113-device fleet
// drawn from the crowdsourced population visits a subset of the same
// servers between 2017 and 2021.
func Capture(w *simnet.World, ds *dataset.Dataset, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := &Dataset{}
	start := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	windowSec := time.Date(2021, 12, 31, 0, 0, 0, 0, time.UTC).Unix() - start.Unix()

	// Pick 113 devices across as many vendors as possible.
	devices := append([]*dataset.Device(nil), ds.Devices...)
	rng.Shuffle(len(devices), func(i, j int) { devices[i], devices[j] = devices[j], devices[i] })
	limit := 113
	if limit > len(devices) {
		limit = len(devices)
	}
	devices = devices[:limit]

	// Index SNIs visited per device from the crowdsourced records.
	visits := map[string][]string{}
	for _, r := range ds.Records.Rows() {
		if r.SNI != "" {
			visits[r.DeviceID] = append(visits[r.DeviceID], r.SNI)
		}
	}

	devSet := map[string]bool{}
	vendorSet := map[string]bool{}
	for _, dev := range devices {
		snis := visits[dev.ID]
		if len(snis) == 0 {
			continue
		}
		devSet[dev.ID] = true
		vendorSet[dev.Vendor] = true
		for _, sni := range snis {
			srv, ok := w.Servers[sni]
			if !ok {
				continue
			}
			issuer := srv.IssuerOrg
			// The divergent tail: a few SNIs changed issuer between the
			// lab epoch and the 2022 probe.
			if hashOf("lab-issuer:"+sni)%50 == 0 {
				issuer = "GlobalSign"
			}
			// CT deployment grew between the lab epoch and 2022: some
			// certs logged by 2022 were not logged back then.
			inCT := srv.InCT && hashOf("lab-ct:"+sni)%4 != 0
			out.Records = append(out.Records, Record{
				DeviceID:     dev.ID,
				Vendor:       dev.Vendor,
				SNI:          sni,
				IssuerOrg:    issuer,
				CapturedAt:   start.Add(time.Duration(rng.Int63n(windowSec)) * time.Second),
				ValidityDays: int(srv.Leaf.Cert.NotAfter.Sub(srv.Leaf.Cert.NotBefore).Hours() / 24),
				InCT:         inCT,
			})
		}
	}
	out.Devices = len(devSet)
	out.Vendors = len(vendorSet)
	return out
}

// CrossCheck compares the lab capture with the probe-derived certificate
// dataset (Appendix C.4.2).
type CrossCheck struct {
	// CommonSNIs appear in both datasets.
	CommonSNIs int
	// SameIssuer of those have the same issuer organization.
	SameIssuer int
	// DiffIssuer diverge (the paper's 7).
	DiffIssuer int
	// VendorsInBoth datasets.
	VendorsInBoth int
	// CTGrowth: SNIs logged in the 2022 probe but not in the lab epoch.
	CTGrowth int
}

// AgreementRate is SameIssuer / CommonSNIs.
func (c CrossCheck) AgreementRate() float64 {
	if c.CommonSNIs == 0 {
		return 0
	}
	return float64(c.SameIssuer) / float64(c.CommonSNIs)
}

// Compare runs the cross-check against the server analysis.
func Compare(lab *Dataset, srv *analysis.Server) CrossCheck {
	labIssuer := map[string]string{}
	labCT := map[string]bool{}
	labVendors := map[string]bool{}
	for _, r := range lab.Records {
		labIssuer[r.SNI] = r.IssuerOrg
		labCT[r.SNI] = r.InCT
		labVendors[r.Vendor] = true
	}
	var cc CrossCheck
	probeVendors := map[string]bool{}
	for _, r := range srv.Records {
		for v := range r.Vendors {
			probeVendors[v] = true
		}
		li, ok := labIssuer[r.SNI]
		if !ok {
			continue
		}
		cc.CommonSNIs++
		if li == r.IssuerOrg {
			cc.SameIssuer++
		} else {
			cc.DiffIssuer++
		}
		if r.InCT && !labCT[r.SNI] {
			cc.CTGrowth++
		}
	}
	for v := range labVendors {
		if probeVendors[v] {
			cc.VendorsInBoth++
		}
	}
	return cc
}

// SNIs returns the distinct SNIs in the lab capture, sorted.
func (d *Dataset) SNIs() []string {
	set := map[string]bool{}
	for _, r := range d.Records {
		set[r.SNI] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func hashOf(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
