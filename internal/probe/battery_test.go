package probe

import (
	"context"
	"testing"

	"repro/internal/simnet"
	"repro/internal/tlswire"
)

// scriptedHelloProber lifts the scripted prober to HelloProber: the
// failure script drives the retry machinery, and a successful attempt
// reflects the crafted hello's first suite so tests can see which
// battery probe produced a result.
type scriptedHelloProber struct {
	*scriptedProber
}

func (p scriptedHelloProber) ProbeHello(ctx context.Context, sni string, v simnet.Vantage, hello *tlswire.ClientHello) (Response, error) {
	resp, err := p.Probe(ctx, sni, v)
	if err != nil {
		return resp, err
	}
	resp.SelectedCipher = hello.CipherSuites[0]
	resp.NegotiatedVersion = hello.LegacyVersion
	return resp, nil
}

func testBattery() []BatteryProbe {
	mk := func(name string, first uint16, ver tlswire.Version) BatteryProbe {
		return BatteryProbe{Name: name, Hello: func(sni string) *tlswire.ClientHello {
			ch := &tlswire.ClientHello{
				LegacyVersion:      ver,
				CipherSuites:       []uint16{first, 0x002F},
				CompressionMethods: []byte{0},
			}
			ch.SetSNI(sni)
			return ch
		}}
	}
	return []BatteryProbe{
		mk("baseline", 0xC02F, tlswire.VersionTLS12),
		mk("downlevel", 0x0035, tlswire.VersionTLS10),
	}
}

func TestRunBatteryOrderingAndEvidence(t *testing.T) {
	p := scriptedHelloProber{newScriptedProber()}
	eng, _ := testEngine(p, Options{Workers: 4, Seed: 3})
	snis := []string{"b.example", "a.example", "b.example"} // unsorted + dup
	battery := testBattery()

	results, stats, err := eng.RunBattery(context.Background(), snis, simnet.VantageNewYork, battery)
	if err != nil {
		t.Fatalf("RunBattery: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4 (2 snis x 2 probes)", len(results))
	}
	wantSNIs := []string{"a.example", "a.example", "b.example", "b.example"}
	wantProbes := []string{"baseline", "downlevel", "baseline", "downlevel"}
	wantCipher := []uint16{0xC02F, 0x0035, 0xC02F, 0x0035}
	for i, r := range results {
		if r.SNI != wantSNIs[i] || r.Probe != wantProbes[i] {
			t.Fatalf("results[%d] = (%s,%s), want (%s,%s)", i, r.SNI, r.Probe, wantSNIs[i], wantProbes[i])
		}
		if r.Err != nil || r.Response.SelectedCipher != wantCipher[i] {
			t.Fatalf("results[%d]: cipher %04x err %v, want %04x", i, r.Response.SelectedCipher, r.Err, wantCipher[i])
		}
	}
	if stats.Jobs != 4 || stats.Successes != 4 {
		t.Fatalf("stats = %+v, want 4 jobs, 4 successes", stats)
	}
}

func TestRunBatteryRetriesShareHostBudget(t *testing.T) {
	p := scriptedHelloProber{newScriptedProber()}
	// Every attempt against the host fails transiently; the per-host
	// retry budget must cap retries across both battery probes combined.
	errs := make([]error, 40)
	for i := range errs {
		errs[i] = simnet.ErrConnReset
	}
	p.set("flappy.example", simnet.VantageNewYork, errs...)
	eng, _ := testEngine(p, Options{Workers: 1, Seed: 9, MaxRetries: 10, RetryBudget: 3, BreakerThreshold: -1})
	// BreakerThreshold <= 0 defaults to 5; use a high threshold instead
	// so the budget, not the breaker, is what stops the retries.
	eng.opts.BreakerThreshold = 1000

	results, stats, err := eng.RunBattery(context.Background(), []string{"flappy.example"}, simnet.VantageNewYork, testBattery())
	if err != nil {
		t.Fatalf("RunBattery: %v", err)
	}
	for i, r := range results {
		if r.Class != ClassTransient {
			t.Fatalf("results[%d].Class = %v, want transient", i, r.Class)
		}
	}
	if stats.Retries != 3 {
		t.Fatalf("retries = %d, want 3 (shared host budget)", stats.Retries)
	}
	if stats.BudgetExhausted == 0 {
		t.Fatalf("expected budget exhaustion, stats = %+v", stats)
	}
}

func TestRunBatteryDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []Result {
		p := scriptedHelloProber{newScriptedProber()}
		p.set("c.example", simnet.VantageNewYork, simnet.ErrConnReset, nil, simnet.ErrStalled, nil)
		eng, _ := testEngine(p, Options{Workers: workers, Seed: 11})
		results, _, err := eng.RunBattery(context.Background(),
			[]string{"a.example", "b.example", "c.example"}, simnet.VantageNewYork, testBattery())
		if err != nil {
			t.Fatalf("RunBattery(workers=%d): %v", workers, err)
		}
		return results
	}
	base := run(1)
	for _, workers := range []int{4, 16} {
		got := run(workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i].SNI != base[i].SNI || got[i].Probe != base[i].Probe ||
				got[i].Class != base[i].Class ||
				got[i].Response.SelectedCipher != base[i].Response.SelectedCipher {
				t.Fatalf("workers=%d: results[%d] diverged: %+v vs %+v", workers, i, got[i], base[i])
			}
		}
	}
}

func TestRunBatteryRequiresHelloProber(t *testing.T) {
	eng, _ := testEngine(newScriptedProber(), Options{Workers: 1})
	if _, _, err := eng.RunBattery(context.Background(), []string{"a.example"}, simnet.VantageNewYork, testBattery()); err == nil {
		t.Fatal("plain Prober must be rejected")
	}
}
