package probe

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	start := time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC)
	b := NewBreaker(3, 10*time.Second)

	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state %v, want closed", got)
	}
	// Two failures stay closed; the third opens.
	for i := 0; i < 2; i++ {
		if b.Failure(start) {
			t.Fatalf("failure %d opened breaker early", i+1)
		}
		if !b.Allow(start) {
			t.Fatalf("closed breaker rejected probe after %d failures", i+1)
		}
	}
	if !b.Failure(start) {
		t.Fatal("threshold failure did not open breaker")
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after threshold, want open", got)
	}

	// Open: fast-fail until the cooldown elapses.
	if b.Allow(start.Add(5 * time.Second)) {
		t.Fatal("open breaker allowed probe before cooldown")
	}
	// After the cooldown: exactly one half-open trial.
	trialTime := start.Add(10 * time.Second)
	if !b.Allow(trialTime) {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", got)
	}
	if b.Allow(trialTime) {
		t.Fatal("half-open breaker allowed a second concurrent trial")
	}

	// Failed trial: straight back to open, new cooldown window.
	if !b.Failure(trialTime) {
		t.Fatal("half-open failure did not reopen breaker")
	}
	if b.Allow(trialTime.Add(5 * time.Second)) {
		t.Fatal("reopened breaker allowed probe before new cooldown")
	}

	// Successful trial closes and clears the streak.
	if !b.Allow(trialTime.Add(10 * time.Second)) {
		t.Fatal("breaker did not half-open after second cooldown")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after successful trial, want closed", got)
	}
	// The streak restarted: two failures must not reopen.
	if b.Failure(trialTime) || b.Failure(trialTime) {
		t.Fatal("streak not cleared by success")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	now := time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC)
	b := NewBreaker(2, time.Second)
	b.Failure(now)
	b.Success()
	if b.Failure(now) {
		t.Fatal("breaker opened after success + single failure")
	}
	if !b.Failure(now) {
		t.Fatal("breaker did not open at threshold after reset")
	}
}
