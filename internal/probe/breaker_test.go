package probe

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	start := time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC)
	b := newBreaker(3, 10*time.Second)

	if got := b.currentState(); got != BreakerClosed {
		t.Fatalf("initial state %v, want closed", got)
	}
	// Two failures stay closed; the third opens.
	for i := 0; i < 2; i++ {
		if b.failure(start) {
			t.Fatalf("failure %d opened breaker early", i+1)
		}
		if !b.allow(start) {
			t.Fatalf("closed breaker rejected probe after %d failures", i+1)
		}
	}
	if !b.failure(start) {
		t.Fatal("threshold failure did not open breaker")
	}
	if got := b.currentState(); got != BreakerOpen {
		t.Fatalf("state %v after threshold, want open", got)
	}

	// Open: fast-fail until the cooldown elapses.
	if b.allow(start.Add(5 * time.Second)) {
		t.Fatal("open breaker allowed probe before cooldown")
	}
	// After the cooldown: exactly one half-open trial.
	trialTime := start.Add(10 * time.Second)
	if !b.allow(trialTime) {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if got := b.currentState(); got != BreakerHalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", got)
	}
	if b.allow(trialTime) {
		t.Fatal("half-open breaker allowed a second concurrent trial")
	}

	// Failed trial: straight back to open, new cooldown window.
	if !b.failure(trialTime) {
		t.Fatal("half-open failure did not reopen breaker")
	}
	if b.allow(trialTime.Add(5 * time.Second)) {
		t.Fatal("reopened breaker allowed probe before new cooldown")
	}

	// Successful trial closes and clears the streak.
	if !b.allow(trialTime.Add(10 * time.Second)) {
		t.Fatal("breaker did not half-open after second cooldown")
	}
	b.success()
	if got := b.currentState(); got != BreakerClosed {
		t.Fatalf("state %v after successful trial, want closed", got)
	}
	// The streak restarted: two failures must not reopen.
	if b.failure(trialTime) || b.failure(trialTime) {
		t.Fatal("streak not cleared by success")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	now := time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC)
	b := newBreaker(2, time.Second)
	b.failure(now)
	b.success()
	if b.failure(now) {
		t.Fatal("breaker opened after success + single failure")
	}
	if !b.failure(now) {
		t.Fatal("breaker did not open at threshold after reset")
	}
}
