package probe

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/tlswire"
)

// Options tunes the engine. The zero value selects production defaults;
// negative MaxRetries or RetryBudget disable the feature explicitly.
type Options struct {
	// Workers bounds probe concurrency (<= 0: runtime.GOMAXPROCS).
	Workers int
	// AttemptTimeout is the per-attempt context deadline (<= 0: 5s).
	AttemptTimeout time.Duration
	// MaxRetries caps retries per (SNI, vantage) job after the first
	// attempt (0: default 3; < 0: no retries).
	MaxRetries int
	// RetryBudget caps total retries per host across all vantages
	// (0: default 12; < 0: no budget-funded retries).
	RetryBudget int
	// BackoffBase and BackoffMax bound the exponential full-jitter
	// backoff: attempt n sleeps uniform[0, min(BackoffMax, BackoffBase*2^(n-1))]
	// (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold opens a host's breaker after that many consecutive
	// transient failures (<= 0: default 5).
	BreakerThreshold int
	// BreakerCooldown is the open→half-open wait (<= 0: default 30s).
	BreakerCooldown time.Duration
	// Seed drives the jitter; a fixed seed reproduces backoff traces.
	Seed int64
	// Clock is the time source (nil: wall clock). Tests inject FakeClock
	// so no retry path ever sleeps for real.
	Clock Clock
	// Metrics optionally receives engine counters (attempts, retries,
	// breaker activity, timeouts, outcome classes — attempts and
	// handshake-latency histograms are labeled per vantage). nil disables
	// instrumentation at zero cost: the engine then holds nil handles,
	// whose methods no-op without allocating.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 5 * time.Second
	}
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = 3
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	}
	switch {
	case o.RetryBudget == 0:
		o.RetryBudget = 12
	case o.RetryBudget < 0:
		o.RetryBudget = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 30 * time.Second
	}
	if o.Clock == nil {
		o.Clock = realClock{}
	}
	return o
}

// AttemptRecord is one attempt in a job's retry trace.
type AttemptRecord struct {
	// Attempt number, 1-based.
	Attempt int
	// Class of the attempt's outcome.
	Class Class
	// Err is the attempt error text ("" on success).
	Err string
	// Backoff slept after this attempt (0 on the final attempt).
	Backoff time.Duration
}

// Result is the final outcome of one (SNI, vantage) job.
type Result struct {
	SNI     string
	Vantage simnet.Vantage
	// Probe names the battery probe that produced this result ("" for a
	// plain Run sweep).
	Probe string
	// Response carries the chain and negotiation evidence on success.
	Response Response
	Err      error
	// Attempts counts loop iterations, including breaker fast-fails.
	Attempts int
	// Class of the final outcome (ClassNone on success).
	Class Class
	// Trace records every attempt in order.
	Trace []AttemptRecord
}

// Stats aggregates one Run for the probe summary.
type Stats struct {
	// Jobs is the number of (SNI, vantage) pairs.
	Jobs int
	// Attempts counts actual probe calls (breaker fast-fails excluded).
	Attempts int
	// Retries counts attempts after the first, across all jobs.
	Retries int
	// Successes and RecoveredAfterRetry (successes needing > 1 attempt).
	Successes           int
	RecoveredAfterRetry int
	// Final failures by class.
	TransientFailures int
	TerminalFailures  int
	Aborted           int
	// Breaker activity.
	BreakerOpens     int
	BreakerFastFails int
	// BudgetExhausted counts jobs that gave up because the host's retry
	// budget ran dry.
	BudgetExhausted int
}

// instruments holds the engine's pre-resolved metric handles. The zero
// value (nil maps, nil counters) is the uninstrumented engine: every
// method on a nil handle no-ops, and a lookup in a nil map yields a nil
// handle, so the hot path never branches on "metrics enabled".
type instruments struct {
	attempts  map[simnet.Vantage]*obs.Counter
	latency   map[simnet.Vantage]*obs.Histogram
	retries   *obs.Counter
	timeouts  *obs.Counter
	successes *obs.Counter
	recovered *obs.Counter
	transient *obs.Counter
	terminal  *obs.Counter
	aborted   *obs.Counter
	opens     *obs.Counter
	fastFails *obs.Counter
	budgetOut *obs.Counter
}

// newInstruments resolves every engine series once at construction.
func newInstruments(m *obs.Registry) instruments {
	if m == nil {
		return instruments{}
	}
	in := instruments{
		attempts:  map[simnet.Vantage]*obs.Counter{},
		latency:   map[simnet.Vantage]*obs.Histogram{},
		retries:   m.Counter("probe_retries_total"),
		timeouts:  m.Counter("probe_timeouts_total"),
		successes: m.Counter("probe_successes_total"),
		recovered: m.Counter("probe_recovered_after_retry_total"),
		transient: m.Counter("probe_failures_total", obs.L("class", "transient")),
		terminal:  m.Counter("probe_failures_total", obs.L("class", "terminal")),
		aborted:   m.Counter("probe_failures_total", obs.L("class", "aborted")),
		opens:     m.Counter("probe_breaker_opens_total"),
		fastFails: m.Counter("probe_breaker_fast_fails_total"),
		budgetOut: m.Counter("probe_budget_exhausted_total"),
	}
	for _, v := range simnet.Vantages() {
		in.attempts[v] = m.Counter("probe_attempts_total", obs.L("vantage", string(v)))
		in.latency[v] = m.Histogram("probe_handshake_seconds", obs.DurationBuckets, obs.L("vantage", string(v)))
	}
	return in
}

// Engine drives a Prober with retries, backoff, budgets, and breakers.
// State (breakers, budgets, stats) persists across Run calls so repeated
// sweeps against the same fleet keep warm breaker state.
type Engine struct {
	prober Prober
	opts   Options
	inst   instruments

	mu       sync.Mutex
	breakers map[string]*Breaker
	budgets  map[string]int
	stats    Stats
}

// New builds an engine over the prober with normalized options.
func New(p Prober, opts Options) *Engine {
	return &Engine{
		prober:   p,
		opts:     opts.withDefaults(),
		inst:     newInstruments(opts.Metrics),
		breakers: map[string]*Breaker{},
		budgets:  map[string]int{},
	}
}

// Run probes every SNI from every vantage and returns results in
// deterministic order: SNIs sorted and deduplicated, vantages in the
// given order, results[i*len(vantages)+j] = (snis[i], vantages[j]).
// Cancelling ctx stops the run gracefully: in-flight attempts observe the
// cancellation, queued jobs return ClassAborted, and every job still gets
// a Result.
func (e *Engine) Run(ctx context.Context, snis []string, vantages []simnet.Vantage) ([]Result, Stats) {
	ordered := append([]string(nil), snis...)
	sort.Strings(ordered)
	ordered = dedup(ordered)

	type job struct {
		sni     string
		vantage simnet.Vantage
	}
	jobs := make([]job, 0, len(ordered)*len(vantages))
	for _, sni := range ordered {
		for _, v := range vantages {
			jobs = append(jobs, job{sni, v})
		}
	}
	results := make([]Result, len(jobs))

	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < e.opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sni, v := jobs[i].sni, jobs[i].vantage
				results[i] = e.runJob(ctx, sni, v, "", func(actx context.Context) (Response, error) {
					return e.prober.Probe(actx, sni, v)
				})
			}
		}()
	}
	// Feed every index: once ctx is cancelled, runJob returns aborted
	// results immediately, so the queue drains without wedging.
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, e.StatsSnapshot()
}

// BatteryProbe is one crafted hello of a fingerprinting battery. Hello
// crafts the wire message per target (typically a fixed template with
// the SNI patched in); it must be deterministic.
type BatteryProbe struct {
	// Name labels the probe in results and classification vectors.
	Name string
	// Hello crafts the ClientHello for the target.
	Hello func(sni string) *tlswire.ClientHello
}

// RunBattery sends every battery probe to every SNI from one vantage,
// through the same retry/backoff/budget/breaker machinery as Run: a
// host's retry budget and breaker are shared across its battery probes,
// so a flapping target cannot consume unbounded attempts. Results are
// deterministic: SNIs sorted and deduplicated, probes in battery order,
// results[i*len(battery)+j] = (snis[i], battery[j]). The prober must
// implement HelloProber.
func (e *Engine) RunBattery(ctx context.Context, snis []string, vantage simnet.Vantage, battery []BatteryProbe) ([]Result, Stats, error) {
	hp, ok := e.prober.(HelloProber)
	if !ok {
		return nil, e.StatsSnapshot(), fmt.Errorf("probe: %T cannot send crafted hellos", e.prober)
	}
	ordered := append([]string(nil), snis...)
	sort.Strings(ordered)
	ordered = dedup(ordered)

	type job struct {
		sni   string
		probe BatteryProbe
	}
	jobs := make([]job, 0, len(ordered)*len(battery))
	for _, sni := range ordered {
		for _, bp := range battery {
			jobs = append(jobs, job{sni, bp})
		}
	}
	results := make([]Result, len(jobs))

	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < e.opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sni, bp := jobs[i].sni, jobs[i].probe
				hello := bp.Hello(sni)
				results[i] = e.runJob(ctx, sni, vantage, bp.Name, func(actx context.Context) (Response, error) {
					return hp.ProbeHello(actx, sni, vantage, hello)
				})
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, e.StatsSnapshot(), nil
}

// runJob drives one job through the retry loop. probeName is "" for
// plain sweeps and the battery probe's name for crafted hellos; attempt
// performs one probe under the per-attempt deadline.
func (e *Engine) runJob(ctx context.Context, sni string, vantage simnet.Vantage, probeName string, probeOnce func(context.Context) (Response, error)) Result {
	res := Result{SNI: sni, Vantage: vantage, Probe: probeName}
	e.bump(func(s *Stats) { s.Jobs++ })
	br := e.breakerFor(sni)

	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			res.Err, res.Class = err, ClassAborted
			res.Attempts = attempt - 1
			e.bump(func(s *Stats) { s.Aborted++ })
			e.inst.aborted.Inc()
			return res
		}
		res.Attempts = attempt

		var resp Response
		var err error
		if !br.Allow(e.opts.Clock.Now()) {
			err = fmt.Errorf("%w: %s", ErrCircuitOpen, sni)
			e.bump(func(s *Stats) { s.BreakerFastFails++ })
			e.inst.fastFails.Inc()
		} else {
			attemptCtx, cancel := context.WithTimeout(ctx, e.opts.AttemptTimeout)
			start := e.opts.Clock.Now()
			resp, err = probeOnce(attemptCtx)
			e.inst.latency[vantage].Observe(e.opts.Clock.Now().Sub(start).Seconds())
			cancel()
			e.bump(func(s *Stats) { s.Attempts++ })
			e.inst.attempts[vantage].Inc()
			if errors.Is(err, context.DeadlineExceeded) {
				e.inst.timeouts.Inc()
			}
		}

		class := Classify(err)
		rec := AttemptRecord{Attempt: attempt, Class: class}
		if err != nil {
			rec.Err = err.Error()
		}

		switch class {
		case ClassNone:
			br.Success()
			res.Response, res.Class = resp, ClassNone
			res.Trace = append(res.Trace, rec)
			e.bump(func(s *Stats) {
				s.Successes++
				if attempt > 1 {
					s.RecoveredAfterRetry++
				}
			})
			e.inst.successes.Inc()
			if attempt > 1 {
				e.inst.recovered.Inc()
			}
			return res
		case ClassTerminal:
			res.Err, res.Class = err, ClassTerminal
			res.Trace = append(res.Trace, rec)
			e.bump(func(s *Stats) { s.TerminalFailures++ })
			e.inst.terminal.Inc()
			return res
		case ClassAborted:
			res.Err, res.Class = err, ClassAborted
			res.Trace = append(res.Trace, rec)
			e.bump(func(s *Stats) { s.Aborted++ })
			e.inst.aborted.Inc()
			return res
		}

		// Transient: feed the breaker (real probe failures only — a
		// fast-fail is the breaker talking, not the host), then decide
		// whether a retry is allowed.
		fastFail := errors.Is(err, ErrCircuitOpen)
		if !fastFail {
			if br.Failure(e.opts.Clock.Now()) {
				e.bump(func(s *Stats) { s.BreakerOpens++ })
				e.inst.opens.Inc()
			}
		}
		if attempt-1 >= e.opts.MaxRetries {
			res.Err, res.Class = err, ClassTransient
			res.Trace = append(res.Trace, rec)
			e.bump(func(s *Stats) { s.TransientFailures++ })
			e.inst.transient.Inc()
			return res
		}
		// Fast-fails retry for free: the breaker already suppressed the
		// probe, and backoff gives its cooldown room to elapse.
		if !fastFail && !e.takeBudget(sni) {
			res.Err, res.Class = err, ClassTransient
			res.Trace = append(res.Trace, rec)
			e.bump(func(s *Stats) { s.TransientFailures++; s.BudgetExhausted++ })
			e.inst.transient.Inc()
			e.inst.budgetOut.Inc()
			return res
		}
		rec.Backoff = e.backoff(sni, vantage, probeName, attempt)
		res.Trace = append(res.Trace, rec)
		e.bump(func(s *Stats) { s.Retries++ })
		e.inst.retries.Inc()
		if err := e.opts.Clock.Sleep(ctx, rec.Backoff); err != nil {
			res.Err, res.Class = err, ClassAborted
			e.bump(func(s *Stats) { s.Aborted++ })
			e.inst.aborted.Inc()
			return res
		}
	}
}

// backoff computes the full-jitter backoff after the given attempt:
// uniform in [0, min(BackoffMax, BackoffBase*2^(attempt-1))], derived
// deterministically from the seed. Battery probes mix their probe name
// into the jitter coordinates so two probes against the same host do
// not share a backoff trace; plain sweeps keep the original key and
// therefore the original traces.
func (e *Engine) backoff(sni string, vantage simnet.Vantage, probeName string, attempt int) time.Duration {
	ceil := e.opts.BackoffMax
	if shift := attempt - 1; shift < 62 {
		if c := e.opts.BackoffBase << shift; c > 0 && c < ceil {
			ceil = c
		}
	}
	key := string(vantage)
	if probeName != "" {
		key += "|" + probeName
	}
	frac := HashFrac(e.opts.Seed, "backoff", sni, key, attempt)
	return time.Duration(frac * float64(ceil))
}

func (e *Engine) breakerFor(sni string) *Breaker {
	e.mu.Lock()
	defer e.mu.Unlock()
	b := e.breakers[sni]
	if b == nil {
		b = NewBreaker(e.opts.BreakerThreshold, e.opts.BreakerCooldown)
		e.breakers[sni] = b
	}
	return b
}

// takeBudget consumes one retry from the host's budget, reporting whether
// any remained.
func (e *Engine) takeBudget(sni string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	rem, seen := e.budgets[sni]
	if !seen {
		rem = e.opts.RetryBudget
	}
	if rem <= 0 {
		e.budgets[sni] = 0
		return false
	}
	e.budgets[sni] = rem - 1
	return true
}

// BreakerStateOf reports a host's breaker state (BreakerClosed when the
// host has never been probed).
func (e *Engine) BreakerStateOf(sni string) BreakerState {
	e.mu.Lock()
	b := e.breakers[sni]
	e.mu.Unlock()
	if b == nil {
		return BreakerClosed
	}
	return b.State()
}

// StatsSnapshot returns a copy of the cumulative stats.
func (e *Engine) StatsSnapshot() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

func (e *Engine) bump(f func(*Stats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
