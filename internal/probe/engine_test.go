package probe

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/simnet"
)

var probeEpoch = time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC)

// scriptedProber pops a scripted error per attempt; an exhausted (or
// absent) script means success.
type scriptedProber struct {
	mu     sync.Mutex
	script map[string][]error
	calls  map[string]int
}

func newScriptedProber() *scriptedProber {
	return &scriptedProber{script: map[string][]error{}, calls: map[string]int{}}
}

func key(sni string, v simnet.Vantage) string { return sni + "|" + string(v) }

func (p *scriptedProber) set(sni string, v simnet.Vantage, errs ...error) {
	p.script[key(sni, v)] = errs
}

func (p *scriptedProber) callCount(sni string, v simnet.Vantage) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls[key(sni, v)]
}

func (p *scriptedProber) Probe(ctx context.Context, sni string, v simnet.Vantage) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	k := key(sni, v)
	p.calls[k]++
	if errs := p.script[k]; len(errs) > 0 {
		err := errs[0]
		p.script[k] = errs[1:]
		if err != nil {
			return Response{}, err
		}
	}
	return Response{}, nil
}

func testEngine(p Prober, opts Options) (*Engine, *FakeClock) {
	clock := NewFakeClock(probeEpoch)
	opts.Clock = clock
	return New(p, opts), clock
}

func TestTransientRetriedThenSuccess(t *testing.T) {
	p := newScriptedProber()
	p.set("api.roku.com", simnet.VantageNewYork, simnet.ErrConnReset, simnet.ErrStalled, nil)
	eng, clock := testEngine(p, Options{Workers: 1, Seed: 7})

	results, stats := eng.Run(context.Background(), []string{"api.roku.com"}, []simnet.Vantage{simnet.VantageNewYork})
	r := results[0]
	if r.Err != nil || r.Class != ClassNone {
		t.Fatalf("want recovery, got class=%v err=%v", r.Class, r.Err)
	}
	if r.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", r.Attempts)
	}
	wantClasses := []Class{ClassTransient, ClassTransient, ClassNone}
	if len(r.Trace) != len(wantClasses) {
		t.Fatalf("trace length %d, want %d", len(r.Trace), len(wantClasses))
	}
	for i, rec := range r.Trace {
		if rec.Class != wantClasses[i] {
			t.Errorf("trace[%d].Class = %v, want %v", i, rec.Class, wantClasses[i])
		}
	}
	if stats.Retries != 2 || stats.RecoveredAfterRetry != 1 || stats.Successes != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Both backoffs ran on the virtual clock, within the jitter ceiling.
	sleeps := clock.Sleeps()
	if len(sleeps) != 2 {
		t.Fatalf("recorded %d sleeps, want 2", len(sleeps))
	}
	for i, d := range sleeps {
		ceil := 50 * time.Millisecond << i
		if d < 0 || d > ceil {
			t.Errorf("backoff %d = %v outside [0, %v]", i, d, ceil)
		}
	}
}

func TestTerminalNotRetried(t *testing.T) {
	p := newScriptedProber()
	p.set("gone.example.com", simnet.VantageNewYork,
		fmt.Errorf("%w: gone.example.com", simnet.ErrUnreachable),
		nil) // a second attempt would succeed — the engine must not take it
	eng, clock := testEngine(p, Options{Workers: 1})

	results, stats := eng.Run(context.Background(), []string{"gone.example.com"}, []simnet.Vantage{simnet.VantageNewYork})
	r := results[0]
	if r.Class != ClassTerminal || !errors.Is(r.Err, simnet.ErrUnreachable) {
		t.Fatalf("want terminal unreachable, got class=%v err=%v", r.Class, r.Err)
	}
	if r.Attempts != 1 || p.callCount("gone.example.com", simnet.VantageNewYork) != 1 {
		t.Fatalf("terminal failure retried: attempts=%d calls=%d", r.Attempts, p.callCount("gone.example.com", simnet.VantageNewYork))
	}
	if stats.Retries != 0 || stats.TerminalFailures != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(clock.Sleeps()) != 0 {
		t.Fatalf("terminal failure slept: %v", clock.Sleeps())
	}
}

func TestMaxRetriesExhausted(t *testing.T) {
	p := newScriptedProber()
	p.set("flaky.example.com", simnet.VantageNewYork,
		simnet.ErrConnReset, simnet.ErrConnReset, simnet.ErrConnReset, simnet.ErrConnReset, simnet.ErrConnReset)
	eng, _ := testEngine(p, Options{Workers: 1, MaxRetries: 2})

	results, stats := eng.Run(context.Background(), []string{"flaky.example.com"}, []simnet.Vantage{simnet.VantageNewYork})
	r := results[0]
	if r.Class != ClassTransient || !errors.Is(r.Err, simnet.ErrConnReset) {
		t.Fatalf("want final transient, got class=%v err=%v", r.Class, r.Err)
	}
	if r.Attempts != 3 { // 1 initial + 2 retries
		t.Fatalf("attempts = %d, want 3", r.Attempts)
	}
	if stats.TransientFailures != 1 || stats.Retries != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRetryBudgetSharedAcrossVantages(t *testing.T) {
	// One host probed from three vantages, every attempt failing
	// transiently: the per-host budget of 2 caps total retries across the
	// vantages at 2, no matter that MaxRetries alone would allow 9.
	p := newScriptedProber()
	fail := make([]error, 10)
	for i := range fail {
		fail[i] = simnet.ErrConnReset
	}
	for _, v := range simnet.Vantages() {
		p.set("busy.example.com", v, fail...)
	}
	eng, _ := testEngine(p, Options{Workers: 1, MaxRetries: 3, RetryBudget: 2})

	_, stats := eng.Run(context.Background(), []string{"busy.example.com"}, simnet.Vantages())
	if stats.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (budget)", stats.Retries)
	}
	if stats.BudgetExhausted == 0 {
		t.Fatal("budget exhaustion not recorded")
	}
	if stats.TransientFailures != 3 {
		t.Fatalf("transient failures = %d, want 3", stats.TransientFailures)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	mk := func() *Engine {
		eng, _ := testEngine(newScriptedProber(), Options{Seed: 42, BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second})
		return eng
	}
	a, b := mk(), mk()
	for attempt := 1; attempt <= 8; attempt++ {
		da := a.backoff("host.example.com", simnet.VantageFrankfurt, "", attempt)
		db := b.backoff("host.example.com", simnet.VantageFrankfurt, "", attempt)
		if da != db {
			t.Fatalf("attempt %d: backoff nondeterministic (%v vs %v)", attempt, da, db)
		}
		ceil := time.Second
		if c := 100 * time.Millisecond << (attempt - 1); c < ceil {
			ceil = c
		}
		if da < 0 || da > ceil {
			t.Fatalf("attempt %d: backoff %v outside [0, %v]", attempt, da, ceil)
		}
	}
	// Different seeds must decorrelate the jitter.
	c, _ := testEngine(newScriptedProber(), Options{Seed: 43, BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second})
	same := 0
	for attempt := 1; attempt <= 8; attempt++ {
		if a.backoff("host.example.com", simnet.VantageFrankfurt, "", attempt) ==
			c.backoff("host.example.com", simnet.VantageFrankfurt, "", attempt) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("jitter identical across seeds")
	}
}

func TestBreakerFastFailsWhileOpen(t *testing.T) {
	p := newScriptedProber()
	fail := make([]error, 10)
	for i := range fail {
		fail[i] = simnet.ErrConnReset
	}
	p.set("down.example.com", simnet.VantageNewYork, fail...)
	// Threshold 2 opens the breaker mid-job; the 1-hour cooldown dwarfs
	// the backoff budget, so every later attempt fast-fails.
	eng, _ := testEngine(p, Options{
		Workers: 1, MaxRetries: 5, RetryBudget: 100,
		BreakerThreshold: 2, BreakerCooldown: time.Hour, Seed: 3,
	})

	results, stats := eng.Run(context.Background(), []string{"down.example.com"}, []simnet.Vantage{simnet.VantageNewYork})
	if stats.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1", stats.BreakerOpens)
	}
	if stats.BreakerFastFails == 0 {
		t.Fatal("no fast-fails while breaker open")
	}
	// Only the two pre-open attempts reached the prober.
	if got := p.callCount("down.example.com", simnet.VantageNewYork); got != 2 {
		t.Fatalf("prober called %d times, want 2", got)
	}
	if eng.BreakerStateOf("down.example.com") != BreakerOpen {
		t.Fatalf("breaker state %v, want open", eng.BreakerStateOf("down.example.com"))
	}
	if results[0].Class != ClassTransient {
		t.Fatalf("final class %v, want transient", results[0].Class)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	p := newScriptedProber()
	p.set("blip.example.com", simnet.VantageNewYork, simnet.ErrConnReset, simnet.ErrConnReset)
	// Nanosecond cooldown: the first backoff sleep carries the virtual
	// clock past it, so the next attempt is the half-open trial — which
	// succeeds (script exhausted) and closes the breaker.
	eng, _ := testEngine(p, Options{
		Workers: 1, MaxRetries: 5, RetryBudget: 100,
		BreakerThreshold: 2, BreakerCooldown: time.Nanosecond, Seed: 11,
	})

	results, stats := eng.Run(context.Background(), []string{"blip.example.com"}, []simnet.Vantage{simnet.VantageNewYork})
	if results[0].Class != ClassNone {
		t.Fatalf("want recovery through half-open trial, got %+v", results[0])
	}
	if stats.BreakerOpens != 1 || stats.RecoveredAfterRetry != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if eng.BreakerStateOf("blip.example.com") != BreakerClosed {
		t.Fatalf("breaker state %v, want closed after successful trial", eng.BreakerStateOf("blip.example.com"))
	}
}

// traceView strips Chain (cert pointers differ between worlds) down to the
// comparable retry-trace shape.
type traceView struct {
	SNI      string
	Vantage  simnet.Vantage
	Attempts int
	Class    Class
	Err      string
	Trace    []AttemptRecord
}

func runFaultyWorld(t *testing.T, workers int) []traceView {
	t.Helper()
	ds := dataset.Generate(dataset.Config{Seed: 99, Scale: 0.15})
	snis := ds.SNIsByMinUsers(2)
	clock := NewFakeClock(probeEpoch)
	world := simnet.Build(simnet.Config{Seed: 1, SNIs: snis, Faults: &simnet.Faults{
		Seed:          4,
		TransientRate: 0.3,
		LatencyBase:   5 * time.Millisecond,
		LatencyJitter: 20 * time.Millisecond,
		Sleep:         clock.Sleep,
	}})
	// Budget and breaker thresholds high enough that no shared per-host
	// state fires: every retry decision is then a pure function of the
	// fault seed, independent of worker interleaving.
	eng := New(WorldProber{World: world}, Options{
		Workers: workers, Seed: 8, RetryBudget: 1000, BreakerThreshold: 1000, Clock: clock,
	})
	results, _ := eng.Run(context.Background(), snis, simnet.Vantages())
	views := make([]traceView, len(results))
	for i, r := range results {
		views[i] = traceView{SNI: r.SNI, Vantage: r.Vantage, Attempts: r.Attempts, Class: r.Class, Trace: r.Trace}
		if r.Err != nil {
			views[i].Err = r.Err.Error()
		}
	}
	return views
}

func TestDeterministicRetryTraces(t *testing.T) {
	a := runFaultyWorld(t, 8)
	b := runFaultyWorld(t, 3) // different worker count: interleaving must not matter
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		av, bv := a[i], b[i]
		if av.SNI != bv.SNI || av.Vantage != bv.Vantage {
			t.Fatalf("result %d ordering differs: (%s,%s) vs (%s,%s)", i, av.SNI, av.Vantage, bv.SNI, bv.Vantage)
		}
		if av.Attempts != bv.Attempts || av.Class != bv.Class || av.Err != bv.Err {
			t.Fatalf("%s@%s: outcome differs:\n  %+v\nvs\n  %+v", av.SNI, av.Vantage, av, bv)
		}
		if len(av.Trace) != len(bv.Trace) {
			t.Fatalf("%s@%s: trace lengths differ", av.SNI, av.Vantage)
		}
		for j := range av.Trace {
			if av.Trace[j] != bv.Trace[j] {
				t.Fatalf("%s@%s: trace[%d] differs: %+v vs %+v", av.SNI, av.Vantage, j, av.Trace[j], bv.Trace[j])
			}
		}
	}
}

// TestFaultRecoveryAcceptance is the issue's acceptance scenario: under a
// seeded 20% transient-fault rate the engine recovers ≥ 99% of reachable
// (SNI, vantage) jobs via retries, and unreachable hosts fail exactly
// once per vantage with no retry.
func TestFaultRecoveryAcceptance(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 99, Scale: 0.15})
	snis := ds.SNIsByMinUsers(2)
	clock := NewFakeClock(probeEpoch)
	world := simnet.Build(simnet.Config{Seed: 1, SNIs: snis, Faults: &simnet.Faults{
		Seed:          20231024,
		TransientRate: 0.2,
		Sleep:         clock.Sleep,
	}})
	unreachable := map[string]bool{}
	for sni, srv := range world.Servers {
		if srv.Unreachable {
			unreachable[sni] = true
		}
	}
	if len(unreachable) == 0 {
		t.Fatal("world has no unreachable hosts; acceptance scenario needs them")
	}

	eng := New(WorldProber{World: world}, Options{Workers: 8, Seed: 20231024, Clock: clock})
	results, stats := eng.Run(context.Background(), snis, simnet.Vantages())

	reachableJobs, recovered := 0, 0
	for _, r := range results {
		if unreachable[r.SNI] {
			if r.Class != ClassTerminal {
				t.Errorf("%s@%s: unreachable host classified %v", r.SNI, r.Vantage, r.Class)
			}
			if r.Attempts != 1 {
				t.Errorf("%s@%s: unreachable host took %d attempts, want exactly 1", r.SNI, r.Vantage, r.Attempts)
			}
			continue
		}
		reachableJobs++
		if r.Err == nil {
			recovered++
		}
	}
	if want := 3 * len(unreachable); stats.TerminalFailures != want {
		t.Errorf("terminal failures = %d, want %d (one per vantage per unreachable host)", stats.TerminalFailures, want)
	}
	rate := float64(recovered) / float64(reachableJobs)
	if rate < 0.99 {
		t.Fatalf("recovered %d/%d reachable jobs (%.2f%%), want >= 99%%", recovered, reachableJobs, 100*rate)
	}
	if stats.RecoveredAfterRetry == 0 {
		t.Fatal("no job recovered via retry at a 20% fault rate — retries not exercised")
	}
	t.Logf("recovered %d/%d reachable jobs (%.3f%%); retries=%d recovered-after-retry=%d terminal=%d",
		recovered, reachableJobs, 100*rate, stats.Retries, stats.RecoveredAfterRetry, stats.TerminalFailures)
}

// slowProber blocks ~its latency on the real clock, honouring ctx — the
// cancellation test needs genuinely in-flight attempts to interrupt.
type slowProber struct {
	latency time.Duration
}

func (p slowProber) Probe(ctx context.Context, sni string, v simnet.Vantage) (Response, error) {
	if err := simnet.RealSleep(ctx, p.latency); err != nil {
		return Response{}, err
	}
	return Response{}, nil
}

func TestWorkerPoolCancellation(t *testing.T) {
	snis := make([]string, 40)
	for i := range snis {
		snis[i] = fmt.Sprintf("host-%02d.example.com", i)
	}
	eng := New(slowProber{latency: 30 * time.Millisecond}, Options{Workers: 4})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(45 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, stats := eng.Run(ctx, snis, simnet.Vantages())
	elapsed := time.Since(start)

	// 120 jobs x 30ms / 4 workers would be ~900ms uncancelled; a graceful
	// shutdown must come back far sooner.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("Run took %v after cancellation", elapsed)
	}
	if len(results) != len(snis)*3 {
		t.Fatalf("got %d results, want %d (every job must report)", len(results), len(snis)*3)
	}
	aborted := 0
	for _, r := range results {
		if r.SNI == "" {
			t.Fatal("zero-value result slipped through")
		}
		if r.Class == ClassAborted {
			aborted++
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("aborted job carries %v, want context.Canceled", r.Err)
			}
		}
	}
	if aborted == 0 {
		t.Fatal("cancellation aborted no jobs")
	}
	if stats.Aborted != aborted {
		t.Fatalf("stats.Aborted = %d, results say %d", stats.Aborted, aborted)
	}
	if stats.Successes+stats.Aborted != stats.Jobs {
		t.Fatalf("stats don't add up: %+v", stats)
	}
}

func TestResultOrderDeterministic(t *testing.T) {
	p := newScriptedProber()
	snis := []string{"c.example.com", "a.example.com", "b.example.com", "a.example.com"}
	eng, _ := testEngine(p, Options{Workers: 8})
	results, stats := eng.Run(context.Background(), snis, simnet.Vantages())

	wantSNIs := []string{"a.example.com", "b.example.com", "c.example.com"}
	if stats.Jobs != len(wantSNIs)*3 {
		t.Fatalf("jobs = %d, want %d (duplicates collapsed)", stats.Jobs, len(wantSNIs)*3)
	}
	for i, r := range results {
		wantSNI := wantSNIs[i/3]
		wantV := simnet.Vantages()[i%3]
		if r.SNI != wantSNI || r.Vantage != wantV {
			t.Fatalf("results[%d] = (%s,%s), want (%s,%s)", i, r.SNI, r.Vantage, wantSNI, wantV)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassNone},
		{fmt.Errorf("wrap: %w", simnet.ErrUnknownHost), ClassTerminal},
		{fmt.Errorf("wrap: %w", simnet.ErrUnreachable), ClassTerminal},
		{fmt.Errorf("wrap: %w", simnet.ErrConnReset), ClassTransient},
		{fmt.Errorf("wrap: %w", simnet.ErrStalled), ClassTransient},
		{fmt.Errorf("wrap: %w", ErrCircuitOpen), ClassTransient},
		{context.DeadlineExceeded, ClassTransient},
		{context.Canceled, ClassAborted},
		{errors.New("x509: malformed certificate"), ClassTerminal},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
