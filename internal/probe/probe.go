// Package probe is the resilient certificate-collection engine: it wraps
// any backend implementing Prober (today the simulated world of
// internal/simnet, tomorrow a live scanner) with per-attempt timeouts,
// exponential backoff with full jitter, a per-host retry budget, a
// per-host circuit breaker, and a bounded worker pool with graceful
// cancellation and deterministic result ordering.
//
// The engine classifies every failure before deciding whether to retry:
// transient failures (timeouts, resets, stalled handshakes) are retried
// under backoff; terminal failures (unknown host, unreachable host, bad
// chain material) fail exactly once — the paper's 43 unreachable SNIs
// cost one attempt per vantage, never a retry budget.
package probe

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"os"

	"repro/internal/pki"
	"repro/internal/simnet"
	"repro/internal/tlswire"
)

// Response is the structured outcome of one successful probe attempt:
// the certificate chain plus the negotiation evidence the server
// exhibited. A server refusing the hello with a TLS alert is still a
// successful probe — Alert carries the refusal and Chain is empty —
// because the refusal is evidence, not a transport failure.
type Response struct {
	// Chain the server presented (empty on an alert).
	Chain pki.Chain
	// NegotiatedVersion the server selected.
	NegotiatedVersion tlswire.Version
	// SelectedCipher is the suite the server chose.
	SelectedCipher uint16
	// EchoedExtensions lists the ServerHello extension types in emission
	// order.
	EchoedExtensions []uint16
	// HelloRetryRequest marks a TLS 1.3 HelloRetryRequest answer, with
	// RetryGroup naming the key-share group the server asked for.
	HelloRetryRequest bool
	// RetryGroup is the named group an HRR requested (0 otherwise).
	RetryGroup uint16
	// Alert is the server's refusal, when it sent one instead of a
	// ServerHello.
	Alert *tlswire.Alert
}

// Prober is one probing backend: a single attempt against (SNI, vantage)
// honouring the context deadline. Implementations decide what a probe
// means (real TLS handshake, fast chain lookup, live network dial).
type Prober interface {
	Probe(ctx context.Context, sni string, vantage simnet.Vantage) (Response, error)
}

// HelloProber extends Prober with crafted-hello attempts: the backend
// answers an arbitrary ClientHello instead of its canonical one. The
// battery runner (RunBattery) requires this interface.
type HelloProber interface {
	Prober
	ProbeHello(ctx context.Context, sni string, vantage simnet.Vantage, hello *tlswire.ClientHello) (Response, error)
}

// WorldProber adapts a simulated world to the Prober interface.
type WorldProber struct {
	World *simnet.World
	// RealTLS selects genuine crypto/tls handshakes over the fast chain
	// path.
	RealTLS bool
}

func responseOf(n simnet.Negotiation) Response {
	return Response{
		Chain:             n.Chain,
		NegotiatedVersion: n.Version,
		SelectedCipher:    n.Cipher,
		EchoedExtensions:  n.Echoed,
		HelloRetryRequest: n.HelloRetryRequest,
		RetryGroup:        n.RetryGroup,
		Alert:             n.Alert,
	}
}

// Probe runs one attempt against the world.
func (p WorldProber) Probe(ctx context.Context, sni string, vantage simnet.Vantage) (Response, error) {
	var n simnet.Negotiation
	var err error
	if p.RealTLS {
		n, err = p.World.ProbeContext(ctx, sni, vantage)
	} else {
		n, err = p.World.ProbeFastContext(ctx, sni, vantage)
	}
	return responseOf(n), err
}

// ProbeHello answers a crafted hello with the server's stack-model
// response. Crafted hellos always take the model path: the stack model
// is what a crafted hello interrogates, in both probe modes.
func (p WorldProber) ProbeHello(ctx context.Context, sni string, vantage simnet.Vantage, hello *tlswire.ClientHello) (Response, error) {
	n, err := p.World.NegotiateFast(ctx, sni, vantage, hello)
	return responseOf(n), err
}

// ErrCircuitOpen: the per-host circuit breaker rejected the attempt
// without probing. Classified transient — the host may recover once the
// cooldown elapses.
var ErrCircuitOpen = errors.New("probe: circuit open")

// Class is the failure taxonomy driving retry decisions.
type Class int

const (
	// ClassNone: the probe succeeded.
	ClassNone Class = iota
	// ClassTransient: timeout, reset, stall, or open breaker — retried.
	ClassTransient
	// ClassTerminal: unknown host, unreachable host, or bad chain
	// material — never retried.
	ClassTerminal
	// ClassAborted: the run-level context was cancelled — not retried and
	// not counted against the host.
	ClassAborted
)

// String names the class for summaries and traces.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "ok"
	case ClassTransient:
		return "transient"
	case ClassTerminal:
		return "terminal"
	default:
		return "aborted"
	}
}

// Classify maps a probe error onto the taxonomy. Unknown errors are
// terminal: retrying a failure we cannot explain repeats it.
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	switch {
	case errors.Is(err, context.Canceled):
		return ClassAborted
	case errors.Is(err, simnet.ErrUnknownHost), errors.Is(err, simnet.ErrUnreachable):
		return ClassTerminal
	case errors.Is(err, simnet.ErrConnReset), errors.Is(err, simnet.ErrStalled),
		errors.Is(err, ErrCircuitOpen),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, os.ErrDeadlineExceeded):
		return ClassTransient
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return ClassTransient
	}
	return ClassTerminal
}

// HashFrac derives a deterministic fraction in [0,1) from the seed and
// the event coordinates (kind, two free-form strings, a sequence
// number); it is the engine's only randomness source, so retry traces
// are reproducible across runs and worker interleavings. The ingest
// service reuses it for seeded load-shedding decisions. The FNV sum is
// finalized with an avalanche mix: FNV-1a alone barely moves the high
// bits when only the trailing byte (the sequence number) changes, and
// the high bits are what the fraction is made of.
func HashFrac(seed int64, kind, a, b string, n int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%d", seed, kind, a, b, n)
	return float64(mix64(h.Sum64())>>11) / float64(uint64(1)<<53)
}

// mix64 is the 64-bit murmur3 finalizer: full avalanche, so every input
// bit flips every output bit with probability ~1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
