package probe

import (
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int

const (
	// BreakerClosed: probes flow normally; consecutive transient failures
	// are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: probes fast-fail until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one trial probe is in flight; its outcome decides
	// between closed and open.
	BreakerHalfOpen
)

// String names the state for summaries.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Breaker is a per-peer circuit breaker. The probe engine arms one per
// host (only transient failures move it: terminal hosts fail once and
// never reach the failure path, and an aborted run says nothing about
// the host); the ingest service arms one per submitting source to shut
// out peers whose batches keep poisoning the pipeline.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state       BreakerState
	consecutive int
	openedAt    time.Time
}

// NewBreaker builds a closed breaker that opens after threshold
// consecutive failures and half-opens once cooldown elapses.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether an operation may proceed at time now. In the open
// state, the first call after the cooldown transitions to half-open and
// claims the single trial slot; concurrent callers keep fast-failing
// until that trial settles.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // BreakerHalfOpen: trial already claimed
		return false
	}
}

// Success closes the breaker and clears the failure streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.consecutive = 0
	b.mu.Unlock()
}

// Failure records a failure at time now and reports whether the
// breaker opened on this call.
func (b *Breaker) Failure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		// The trial failed: straight back to open for another cooldown.
		b.state = BreakerOpen
		b.openedAt = now
		return true
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = now
			b.consecutive = 0
			return true
		}
	}
	return false
}

// State exposes the state for tests and summaries.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
