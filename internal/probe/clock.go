package probe

import (
	"context"
	"sync"
	"time"

	"repro/internal/simnet"
)

// Clock abstracts time for the engine so backoff, breaker cooldowns, and
// fault schedules run against a virtual clock in tests — no wall-clock
// sleeps on any retry path.
type Clock interface {
	Now() time.Time
	// Sleep waits for d or until ctx is done, returning the context error
	// if it fires first.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock returns the production wall clock, for callers outside the
// engine (the ingest service's watchdog and snapshot-age tracking) that
// default to real time but want tests to inject a FakeClock.
func RealClock() Clock { return realClock{} }

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	return simnet.RealSleep(ctx, d)
}

// FakeClock is a virtual clock: Sleep advances Now by the requested
// duration and returns immediately, recording each sleep. Safe for
// concurrent use. Its Sleep method is also a valid simnet.SleepFunc, so
// one FakeClock can drive both the engine and the world's fault schedule.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

// NewFakeClock starts a virtual clock at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the current virtual time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the virtual clock forward without recording a sleep.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Sleep advances the clock by d instantly, honouring prior cancellation.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
	return nil
}

// Sleeps returns a copy of every recorded sleep, in order.
func (c *FakeClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}
