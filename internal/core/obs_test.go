package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// spanShape flattens a span tree to "depth:name" lines in tree order,
// ignoring timings, so shapes can be compared across runs.
func spanShape(sp *obs.Span, depth int, out *[]string) {
	*out = append(*out, fmt.Sprintf("%d:%s", depth, sp.Name()))
	for _, c := range sp.Children() {
		spanShape(c, depth+1, out)
	}
}

// TestSpanTreeShapeDeterministic: the span tree has the same shape for
// every worker count — stages are pre-allocated in definition order, so
// concurrent scheduling cannot reorder siblings.
func TestSpanTreeShapeDeterministic(t *testing.T) {
	var want []string
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		tr := obs.NewTracer("test")
		_, err := Run(context.Background(), Config{
			Seed: 31, Scale: 0.2, MinSNIUsers: 2, Workers: workers, Tracer: tr,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var shape []string
		spanShape(tr.Root(), 0, &shape)
		if want == nil {
			want = shape
			// The fixed pipeline: root, core.Run, then the seven stages in
			// definition order.
			expect := []string{"0:test", "1:core.Run"}
			for _, s := range Stages() {
				expect = append(expect, "2:"+s.Name)
			}
			if strings.Join(shape, "\n") != strings.Join(expect, "\n") {
				t.Fatalf("span tree shape:\n%s\nwant:\n%s",
					strings.Join(shape, "\n"), strings.Join(expect, "\n"))
			}
			continue
		}
		if strings.Join(shape, "\n") != strings.Join(want, "\n") {
			t.Errorf("workers=%d: span tree shape diverged:\n%s\nwant:\n%s",
				workers, strings.Join(shape, "\n"), strings.Join(want, "\n"))
		}
	}
}

// TestMetricsReconcileWithProbeStats: the counters the engine publishes
// must agree exactly with the Stats totals it returns.
func TestMetricsReconcileWithProbeStats(t *testing.T) {
	m := obs.NewRegistry("test")
	cfg := Config{
		Seed: 31, Scale: 0.2, MinSNIUsers: 2, Workers: 4, Metrics: m,
		// virtualSleep keeps injected stalls from hanging until the
		// attempt timeout; fault decisions and counts are unaffected.
		Faults: &simnet.Faults{Seed: 7, TransientRate: 0.2,
			Sleep: func(ctx context.Context, _ time.Duration) error { return ctx.Err() }},
	}
	// Nanosecond backoff keeps the retries from sleeping for real.
	cfg.Probe.BackoffBase = time.Nanosecond
	cfg.Probe.BackoffMax = time.Nanosecond
	s, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	stats := s.Server.ProbeStats
	for _, tc := range []struct {
		series string
		want   int
	}{
		{"test_probe_attempts_total", stats.Attempts},
		{"test_probe_retries_total", stats.Retries},
		{"test_probe_successes_total", stats.Successes},
		{"test_probe_recovered_after_retry_total", stats.RecoveredAfterRetry},
		{"test_probe_breaker_opens_total", stats.BreakerOpens},
		{"test_probe_breaker_fast_fails_total", stats.BreakerFastFails},
	} {
		if got := obs.SumSeries(samples, tc.series); got != float64(tc.want) {
			t.Errorf("%s = %v, stats say %d", tc.series, got, tc.want)
		}
	}
	// The handshake-latency histogram observes exactly the successful or
	// failed real probe calls (one sample per attempt).
	if got := obs.SumSeries(samples, "test_probe_handshake_seconds_count"); got != float64(stats.Attempts) {
		t.Errorf("handshake histogram count = %v, want %d attempts", got, stats.Attempts)
	}
	// Stage item counters reconcile with the study too.
	if got := obs.SumSeries(samples, "test_ingest_records_total"); got != float64(s.Dataset.Records.Len()) {
		t.Errorf("ingest_records_total = %v, dataset has %d", got, s.Dataset.Records.Len())
	}
}

// TestCancelledContextReturnsPromptly: a pre-cancelled context aborts the
// run long before a single attempt timeout elapses.
func TestCancelledContextReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Seed: 31, Scale: 0.2, MinSNIUsers: 2}
	cfg.Probe.AttemptTimeout = 5 * time.Second
	start := time.Now()
	_, err := Run(ctx, cfg)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Run succeeded under a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed >= cfg.Probe.AttemptTimeout {
		t.Fatalf("Run took %v, want well under the %v attempt timeout", elapsed, cfg.Probe.AttemptTimeout)
	}
}

// TestConfigValidate: every bad field yields its typed sentinel.
func TestConfigValidate(t *testing.T) {
	valid := Config{Seed: 1, Scale: 0.5, MinSNIUsers: 2}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want error
	}{
		{"valid", func(*Config) {}, nil},
		{"negative workers", func(c *Config) { c.Workers = -1 }, ErrBadWorkers},
		{"zero scale", func(c *Config) { c.Scale = 0 }, ErrBadScale},
		{"negative scale", func(c *Config) { c.Scale = -2 }, ErrBadScale},
		{"zero min sni users", func(c *Config) { c.MinSNIUsers = 0 }, ErrBadMinSNIUsers},
		{"faults with real tls", func(c *Config) {
			c.Faults = &simnet.Faults{TransientRate: 0.1}
			c.RealTLS = true
		}, ErrFaultsWithRealTLS},
	} {
		cfg := valid
		tc.mut(&cfg)
		err := cfg.Validate()
		if tc.want == nil {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate() = %v, want %v", tc.name, err, tc.want)
		}
		// Run surfaces the same typed error.
		if _, runErr := Run(context.Background(), cfg); !errors.Is(runErr, tc.want) {
			t.Errorf("%s: Run() = %v, want %v", tc.name, runErr, tc.want)
		}
	}
}

// TestReportByteIdenticalWithObservability: attaching a tracer and a
// metrics registry must not change a single byte of the report.
func TestReportByteIdenticalWithObservability(t *testing.T) {
	base := Config{Seed: 17, Scale: 0.2, MinSNIUsers: 2}
	plain, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	observed := base
	observed.Tracer = obs.NewTracer("test")
	observed.Metrics = obs.NewRegistry("test")
	traced, err := Run(context.Background(), observed)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	plain.WriteReport(&a)
	traced.WriteReport(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("report bytes differ with observability attached")
	}
	if traced.Config.Tracer.Root().Duration() <= 0 {
		t.Error("root span has no duration")
	}
}

// TestRunStagesRejectsBadDAGs: the runner validates the stage graph
// before launching anything.
func TestRunStagesRejectsBadDAGs(t *testing.T) {
	st := &Study{Config: Config{Seed: 1, Scale: 0.1, MinSNIUsers: 2}}
	noop := func(context.Context, *Study, *StageRecorder) error { return nil }
	for _, tc := range []struct {
		name   string
		stages []Stage
		want   string
	}{
		{"unnamed", []Stage{{Run: noop}}, "no name"},
		{"duplicate", []Stage{{Name: "a", Run: noop}, {Name: "a", Run: noop}}, "duplicate"},
		{"unknown dep", []Stage{{Name: "a", After: []string{"zz"}, Run: noop}}, "unknown"},
		{"forward dep", []Stage{{Name: "a", After: []string{"b"}, Run: noop}, {Name: "b", Run: noop}}, "later"},
	} {
		err := RunStages(context.Background(), st, nil, tc.stages)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestRunStagesFirstErrorWins: when a mid-pipeline stage fails, the
// wrapped error names that stage and downstream stages never run.
func TestRunStagesFirstErrorWins(t *testing.T) {
	st := &Study{Config: Config{Seed: 1, Scale: 0.1, MinSNIUsers: 2}}
	boom := errors.New("boom")
	var downstream bool
	stages := []Stage{
		{Name: "ok", Run: func(context.Context, *Study, *StageRecorder) error { return nil }},
		{Name: "fail", After: []string{"ok"}, Run: func(context.Context, *Study, *StageRecorder) error { return boom }},
		{Name: "after", After: []string{"fail"}, Run: func(context.Context, *Study, *StageRecorder) error {
			downstream = true
			return nil
		}},
	}
	err := RunStages(context.Background(), st, nil, stages)
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "stage fail") {
		t.Fatalf("err = %v, want wrapped boom naming stage fail", err)
	}
	if downstream {
		t.Fatal("downstream stage ran after upstream failure")
	}
}
