// Package core orchestrates the full study: generate (or ingest) the
// crowdsourced ClientHello dataset, run the client-side TLS analyses of
// Section 4, extract the SNI set, build and probe the server world of
// Section 5, and render every table and figure. It is the library's
// primary entry point; cmd/iotls and the examples are thin wrappers.
package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/graph"
	"repro/internal/libcorpus"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/simnet"
)

// Config parameterizes a study run.
type Config struct {
	// Seed drives every random decision (dataset + world).
	Seed int64
	// Scale multiplies the device population (1.0 = paper scale).
	Scale float64
	// MinSNIUsers filters SNIs observed from fewer users (paper: 3, i.e.
	// "removed SNIs observed from two or fewer users").
	MinSNIUsers int
	// RealTLS probes with genuine crypto/tls handshakes instead of the
	// fast path.
	RealTLS bool
	// Workers bounds the worker pools for record ingestion, probing, and
	// table rendering. 0 means GOMAXPROCS. Results are identical for any
	// worker count; only wall time changes.
	Workers int
	// Probe tunes the resilient probe engine (zero value = defaults).
	Probe probe.Options
	// Faults optionally installs deterministic handshake-fault injection
	// on the world before probing.
	Faults *simnet.Faults
}

// workers resolves the effective worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig is the paper-scale run.
func DefaultConfig() Config {
	return Config{Seed: 20231024, Scale: 1.0, MinSNIUsers: 3}
}

// Study holds every stage's state after Run.
type Study struct {
	Config  Config
	Dataset *dataset.Dataset
	Client  *analysis.Client
	Matcher *fingerprint.Matcher
	World   *simnet.World
	Server  *analysis.Server
	// SNIs is the filtered SNI set fed to the prober.
	SNIs []string
}

// Run executes the full pipeline.
func Run(cfg Config) (*Study, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.MinSNIUsers <= 0 {
		cfg.MinSNIUsers = 3
	}
	workers := cfg.workers()
	probeOpts := cfg.Probe
	if probeOpts.Workers == 0 {
		probeOpts.Workers = workers
	}
	ds := dataset.Generate(dataset.Config{Seed: cfg.Seed, Scale: cfg.Scale})

	// The client-side analysis and the library corpus depend only on the
	// dataset, never on the server world: overlap them with world
	// construction and probing. Every stage is deterministic on its own,
	// so the interleaving cannot change results.
	var (
		client    *analysis.Client
		clientErr error
		matcher   *fingerprint.Matcher
		wg        sync.WaitGroup
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		client, clientErr = analysis.NewClientWorkers(ds, workers)
	}()
	go func() {
		defer wg.Done()
		matcher = libcorpus.NewMatcher()
	}()

	snis := ds.SNIsByMinUsers(cfg.MinSNIUsers)
	world := simnet.Build(simnet.Config{Seed: cfg.Seed + 1, SNIs: snis, Faults: cfg.Faults})
	server := analysis.NewServerProbed(world, ds, snis,
		probe.WorldProber{World: world, RealTLS: cfg.RealTLS}, probeOpts)
	wg.Wait()
	if clientErr != nil {
		return nil, fmt.Errorf("core: client analysis: %w", clientErr)
	}
	return &Study{
		Config:  cfg,
		Dataset: ds,
		Client:  client,
		Matcher: matcher,
		World:   world,
		Server:  server,
		SNIs:    snis,
	}, nil
}

// clientTableJobs lists the Section 4 + Appendix B table builders. Each
// job is independent and reads only immutable post-Run state (the
// matcher's memo is internally synchronized), so jobs may run on any
// goroutine; order in the slice is the report order.
func (s *Study) clientTableJobs() []func() report.Table {
	return []func() report.Table{
		func() report.Table { return report.LibMatch(s.Client.MatchLibraries(s.Matcher)) },
		func() report.Table { return report.Table2(s.Client.Table2()) },
		func() report.Table { return report.Figure2(s.Client.DoCVendorAll(), s.Client.DoCDeviceAll()) },
		func() report.Table { return report.Table3(s.Client.Table3(10)) },
		func() report.Table { return report.Table4(s.Client.Table4(0.2)) },
		func() report.Table { return report.Table5(s.Client.Table5(2)) },
		func() report.Table { return report.VulnStats(s.Client.Vulnerabilities()) },
		func() report.Table { return report.Table11(s.Client.Table11(s.Matcher)) },
		func() report.Table { return report.Figure8(s.Client.Figure8(s.Matcher, 10)) },
		func() report.Table { return report.Table12(s.Client.Table12()) },
		func() report.Table { return report.Figure11(s.Client.Figure11()) },
		func() report.Table { return report.Figure12(s.Client.Figure12()) },
		func() report.Table { return report.Census(s.Client.Census()) },
		func() report.Table { return report.ExtensionFrequencies(s.Client.ExtensionFrequencies(s.Matcher), 12) },
		func() report.Table { return report.Table10(s.Matcher.Entries()) },
		func() report.Table { return report.Table13() },
	}
}

// serverTableJobs lists the Section 5 + Appendix C table builders.
func (s *Study) serverTableJobs() []func() report.Table {
	return []func() report.Table{
		func() report.Table { return report.Table6(s.Server.Table6()) },
		func() report.Table { return report.Sharing(s.Server.Sharing()) },
		func() report.Table { return report.Figure5(s.Server.Figure5()) },
		func() report.Table {
			return report.DomainRows("Table 7: Certificate chains with validation failure", s.Server.Table7(), false)
		},
		func() report.Table { return report.DomainRows("Table 8: Expired certificates", s.Server.Table8(), true) },
		func() report.Table {
			return report.DomainRows("Table 14: Certificate chains with private issuers", s.Server.Table14(), false)
		},
		func() report.Table {
			return report.DomainRows("Section 5.3: Common Name mismatches", s.Server.CNMismatches(), false)
		},
		func() report.Table { return report.Figure6(s.Server.Figure6()) },
		func() report.Table { return report.Table9(s.Server.Table9()) },
		func() report.Table { return report.CTStats(s.Server.CT()) },
		func() report.Table { return report.Table15(s.Server.Table15(30)) },
		func() report.Table { return report.Table16(s.Server.Table16()) },
		func() report.Table { return report.ProbeStats(s.Server.ProbeStats) },
		func() report.Table {
			return report.ReportCards(s.Server.ReportCards(s.World.ProbeTime), s.World.ProbeTime)
		},
	}
}

// buildTables runs table jobs across the study's worker pool, preserving
// slice order in the result regardless of completion order.
func (s *Study) buildTables(jobs []func() report.Table) []report.Table {
	workers := s.Config.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]report.Table, len(jobs))
	if workers <= 1 {
		for i, job := range jobs {
			out[i] = job()
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = jobs[i]()
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// ClientTables renders the Section 4 + Appendix B tables.
func (s *Study) ClientTables() []report.Table {
	return s.buildTables(s.clientTableJobs())
}

// ServerTables renders the Section 5 + Appendix C tables.
func (s *Study) ServerTables() []report.Table {
	return s.buildTables(s.serverTableJobs())
}

// WriteReport renders every table to w. Tables are built concurrently
// (bounded by Config.Workers) and emitted in fixed order, so the bytes
// written are identical for every worker count.
func (s *Study) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "IoT TLS & Certificate Study — %d devices, %d users, %d models, %d records\n",
		len(s.Dataset.Devices), s.Dataset.Users(), s.Dataset.Models(), len(s.Dataset.Records))
	fmt.Fprintf(w, "Fingerprints: %d unique; SNIs probed: %d (of %d observed)\n\n",
		s.Client.NumFingerprints(), len(s.SNIs), len(s.Dataset.SNIs()))
	jobs := append(s.clientTableJobs(), s.serverTableJobs()...)
	for _, t := range s.buildTables(jobs) {
		t.WriteText(w)
		fmt.Fprintln(w)
	}
}

// Figure1Dot renders the vendor–fingerprint graph with security coloring.
func (s *Study) Figure1Dot() string {
	vendorIdx := map[string]int{}
	for _, v := range dataset.Vendors() {
		vendorIdx[v.Name] = v.Index
	}
	g := s.Client.VendorGraph()
	return g.Dot(graph.DotOptions{
		Name: "figure1_vendor_fingerprints",
		RightColor: func(key string) string {
			return report.SecurityColor(s.Client.Prints[key].Print)
		},
		RightSize: func(key string) float64 {
			return report.SecuritySize(s.Client.Prints[key].Print)
		},
		LeftLabel: func(vendor string) string {
			return fmt.Sprintf("%d", vendorIdx[vendor])
		},
	})
}

// Figure3Dot renders the Amazon device-type graph.
func (s *Study) Figure3Dot() string {
	g := s.Client.TypeGraphForVendor("Amazon")
	return g.Dot(graph.DotOptions{
		Name: "figure3_amazon_types",
		RightColor: func(key string) string {
			return report.SecurityColor(s.Client.Prints[key].Print)
		},
	})
}

// Figure4Dot renders the Amazon Echo (speaker) device–fingerprint graph.
func (s *Study) Figure4Dot() string {
	g := s.Client.DeviceGraphForVendorType("Amazon", dataset.TypeSpeaker)
	return g.Dot(graph.DotOptions{
		Name: "figure4_amazon_echo_devices",
		RightColor: func(key string) string {
			return report.SecurityColor(s.Client.Prints[key].Print)
		},
	})
}
