// Package core orchestrates the full study as a stage-based pipeline:
// generate (or ingest) the crowdsourced ClientHello dataset, run the
// client-side TLS analyses of Section 4, extract the SNI set, build and
// probe the server world of Section 5, validate the collected chains, and
// render every table and figure. It is the library's primary entry point;
// cmd/iotls and the examples are thin wrappers.
//
// Run executes the Stages DAG under a context: independent stages overlap
// exactly as the hand-rolled pipeline of PR 2 did, every stage opens a
// tracing span and records wall time and item counts (Config.Tracer /
// Config.Metrics), and cancellation is honored between and inside stages.
// With observability left nil the pipeline output is byte-identical and
// the instrumentation costs nothing.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/serverfp"
	"repro/internal/simnet"
)

// Config parameterizes a study run.
type Config struct {
	// Seed drives every random decision (dataset + world).
	Seed int64
	// Scale multiplies the device population (1.0 = paper scale).
	Scale float64
	// MinSNIUsers filters SNIs observed from fewer users (paper: 3, i.e.
	// "removed SNIs observed from two or fewer users").
	MinSNIUsers int
	// AsOf replays the study at a later virtual date: the dataset applies
	// its firmware-drift schedule (upgraded devices emit 1.3-era hellos),
	// the server world applies its backend drift, the library corpus
	// gains the post-2020 dated entries, and the report grows the
	// adoption-timeline tables. Zero is the paper-era run, byte-identical
	// to a config without the field.
	AsOf time.Time
	// Dataset, when non-nil, replaces generation: the dataset stage uses
	// it as-is and Seed/Scale stop influencing the population (they still
	// seed the world build and the probe engine). The ingest service uses
	// this to run the batch pipeline over the records it accepted, and
	// the scenario harness to replay the same records for equivalence
	// checks.
	Dataset *dataset.Dataset
	// RealTLS probes with genuine crypto/tls handshakes instead of the
	// fast path.
	RealTLS bool
	// ServerFP additionally runs the active server-stack fingerprinting
	// battery (internal/serverfp) after the probe sweep and appends its
	// census tables to the report. Off by default: the battery costs
	// len(serverfp.Battery()) extra probes per SNI, and the pre-existing
	// report tables stay byte-identical either way.
	ServerFP bool
	// Workers bounds the worker pools for record ingestion, probing, and
	// table rendering. 0 means GOMAXPROCS. Results are identical for any
	// worker count; only wall time changes.
	Workers int
	// Probe tunes the resilient probe engine (zero value = defaults).
	Probe probe.Options
	// Faults optionally installs deterministic handshake-fault injection
	// on the world before probing. Faults act on the simulated fast path,
	// so they conflict with RealTLS (Validate rejects the combination).
	Faults *simnet.Faults
	// Vantages selects the probing locations, primary vantage first.
	// nil or empty means the paper's three (New York primary). Entries
	// must be distinct members of simnet.Vantages(); Validate rejects
	// anything else with ErrBadVantages.
	Vantages []simnet.Vantage
	// Tracer records one hierarchical span per pipeline stage plus a
	// report span per WriteReport call. nil disables tracing at zero
	// cost and never changes the study's output.
	Tracer *obs.Tracer
	// Metrics receives counters and histograms from every subsystem:
	// probe attempts/retries/breaker activity and handshake latencies,
	// ingestion records and memo hit rates, pki cache and verdict
	// tallies, dataset generation counts, stage wall times. nil disables
	// metrics at zero cost.
	Metrics *obs.Registry
}

// Typed configuration errors, matchable with errors.Is after Validate
// (and therefore Run) wraps them with the offending value.
var (
	// ErrBadWorkers: Workers is negative (0 means GOMAXPROCS).
	ErrBadWorkers = errors.New("Workers must be >= 0")
	// ErrBadScale: Scale is zero or negative.
	ErrBadScale = errors.New("Scale must be > 0")
	// ErrBadMinSNIUsers: MinSNIUsers is below 1.
	ErrBadMinSNIUsers = errors.New("MinSNIUsers must be >= 1")
	// ErrFaultsWithRealTLS: fault injection acts on the simulated fast
	// path and cannot coexist with genuine crypto/tls handshakes.
	ErrFaultsWithRealTLS = errors.New("Faults and RealTLS are mutually exclusive")
	// ErrBadVantages: Vantages contains an unknown or duplicate entry.
	ErrBadVantages = errors.New("Vantages must be distinct members of simnet.Vantages()")
	// ErrBadAsOf: AsOf predates the capture window (a drift timeline can
	// only run forward from the paper's data).
	ErrBadAsOf = errors.New("AsOf must be zero or not before the capture window start")
)

// captureStart is the paper window's first day; AsOf dates before it are
// rejected (the timeline replays the captured population forward, never
// backward).
var captureStart = time.Date(2019, 4, 29, 0, 0, 0, 0, time.UTC)

// Validate rejects nonsense configurations with typed errors instead of
// silently "fixing" them. Run calls it first; callers constructing
// configs from user input can call it directly for early feedback.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers = %d: %w", c.Workers, ErrBadWorkers)
	}
	if c.Scale <= 0 {
		return fmt.Errorf("core: Scale = %v: %w", c.Scale, ErrBadScale)
	}
	if c.MinSNIUsers < 1 {
		return fmt.Errorf("core: MinSNIUsers = %d: %w", c.MinSNIUsers, ErrBadMinSNIUsers)
	}
	if c.Faults != nil && c.RealTLS {
		return fmt.Errorf("core: %w", ErrFaultsWithRealTLS)
	}
	if !c.AsOf.IsZero() && c.AsOf.Before(captureStart) {
		return fmt.Errorf("core: AsOf = %s: %w", c.AsOf.Format("2006-01-02"), ErrBadAsOf)
	}
	known := map[simnet.Vantage]bool{}
	for _, v := range simnet.Vantages() {
		known[v] = true
	}
	seen := map[simnet.Vantage]bool{}
	for _, v := range c.Vantages {
		if !known[v] {
			return fmt.Errorf("core: Vantages contains unknown %q: %w", v, ErrBadVantages)
		}
		if seen[v] {
			return fmt.Errorf("core: Vantages contains duplicate %q: %w", v, ErrBadVantages)
		}
		seen[v] = true
	}
	return nil
}

// vantages resolves the effective vantage set (primary first).
func (c Config) vantages() []simnet.Vantage {
	if len(c.Vantages) > 0 {
		return c.Vantages
	}
	return simnet.Vantages()
}

// workers resolves the effective worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig is the paper-scale run.
func DefaultConfig() Config {
	return Config{Seed: 20231024, Scale: 1.0, MinSNIUsers: 3}
}

// Study holds every stage's state after Run.
type Study struct {
	Config  Config
	Dataset *dataset.Dataset
	Client  *analysis.Client
	Matcher *fingerprint.Matcher
	World   *simnet.World
	Server  *analysis.Server
	// ServerFP is the active fingerprinting census (nil unless
	// Config.ServerFP).
	ServerFP *serverfp.Census
	// SNIs is the filtered SNI set fed to the prober.
	SNIs []string

	// probeResults carries the raw engine output from the probe stage to
	// the chain-validation stage, which folds it into Server.
	probeResults []probe.Result
	probeStats   probe.Stats
}

// Run executes the full pipeline under ctx. Cancelling ctx stops the run:
// stages that have not started are skipped and the probe engine drains
// in-flight attempts, so Run returns promptly with the context's error.
// The entry point of record since PR 3.
func Run(ctx context.Context, cfg Config) (*Study, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st := &Study{Config: cfg}
	pipe := cfg.Tracer.Root().Child("core.Run")
	defer pipe.End()
	stages := Stages()
	if cfg.ServerFP {
		stages = append(stages, Stage{Name: StageServerFP, After: []string{StageProbe}, Run: runServerFPStage})
	}
	if err := RunStages(ctx, st, pipe, stages); err != nil {
		return nil, err
	}
	return st, nil
}

// clientTableJobs lists the Section 4 + Appendix B table builders. Each
// job is independent and reads only immutable post-Run state (the
// matcher's memo is internally synchronized), so jobs may run on any
// goroutine; order in the slice is the report order.
func (s *Study) clientTableJobs() []func() report.Table {
	jobs := []func() report.Table{
		func() report.Table { return report.LibMatch(s.Client.MatchLibraries(s.Matcher)) },
		func() report.Table { return report.Table2(s.Client.Table2()) },
		func() report.Table { return report.Figure2(s.Client.DoCVendorAll(), s.Client.DoCDeviceAll()) },
		func() report.Table { return report.Table3(s.Client.Table3(10)) },
		func() report.Table { return report.Table4(s.Client.Table4(0.2)) },
		func() report.Table { return report.Table5(s.Client.Table5(2)) },
		func() report.Table { return report.VulnStats(s.Client.Vulnerabilities()) },
		func() report.Table { return report.Table11(s.Client.Table11(s.Matcher)) },
		func() report.Table { return report.Figure8(s.Client.Figure8(s.Matcher, 10)) },
		func() report.Table { return report.Table12(s.Client.Table12()) },
		func() report.Table { return report.Figure11(s.Client.Figure11()) },
		func() report.Table { return report.Figure12(s.Client.Figure12()) },
		func() report.Table { return report.Census(s.Client.Census()) },
		func() report.Table { return report.ExtensionFrequencies(s.Client.ExtensionFrequencies(s.Matcher), 12) },
		func() report.Table { return report.Table10(s.Matcher.Entries()) },
		func() report.Table { return report.Table13() },
	}
	// The timeline tables only exist on drift runs, so the paper-era
	// report stays byte-identical (same gating as the serverfp tables).
	if !s.Config.AsOf.IsZero() {
		jobs = append(jobs,
			func() report.Table { return report.AdoptionCurve(s.Dataset.AdoptionCurve(s.timelineDates())) },
			func() report.Table { return report.DowngradeStragglers(s.Dataset.DowngradeStragglers(), 15) },
		)
	}
	return jobs
}

// timelineDates is the adoption-curve ladder: the capture window's end,
// one rung per anniversary strictly before AsOf, and AsOf itself.
func (s *Study) timelineDates() []time.Time {
	asof := s.Config.AsOf.UTC()
	dates := []time.Time{time.Date(2020, 8, 1, 0, 0, 0, 0, time.UTC)}
	for d := dates[0].AddDate(1, 0, 0); d.Before(asof); d = d.AddDate(1, 0, 0) {
		dates = append(dates, d)
	}
	if asof.After(dates[len(dates)-1]) {
		dates = append(dates, asof)
	}
	return dates
}

// serverTableJobs lists the Section 5 + Appendix C table builders, plus
// the active-fingerprinting tables when that stage ran. Appending rather
// than always listing them keeps the default report byte-identical.
func (s *Study) serverTableJobs() []func() report.Table {
	jobs := []func() report.Table{
		func() report.Table { return report.Table6(s.Server.Table6()) },
		func() report.Table { return report.Sharing(s.Server.Sharing()) },
		func() report.Table { return report.Figure5(s.Server.Figure5()) },
		func() report.Table {
			return report.DomainRows("Table 7: Certificate chains with validation failure", s.Server.Table7(), false)
		},
		func() report.Table {
			return report.DomainRows("Table 8: Expired certificates", s.Server.Table8(), true)
		},
		func() report.Table {
			return report.DomainRows("Table 14: Certificate chains with private issuers", s.Server.Table14(), false)
		},
		func() report.Table {
			return report.DomainRows("Section 5.3: Common Name mismatches", s.Server.CNMismatches(), false)
		},
		func() report.Table { return report.Figure6(s.Server.Figure6()) },
		func() report.Table { return report.Table9(s.Server.Table9()) },
		func() report.Table { return report.CTStats(s.Server.CT()) },
		func() report.Table { return report.Table15(s.Server.Table15(30)) },
		func() report.Table { return report.Table16(s.Server.Table16()) },
		func() report.Table { return report.ProbeStats(s.Server.ProbeStats) },
		func() report.Table {
			return report.ReportCards(s.Server.ReportCards(s.World.ProbeTime), s.World.ProbeTime)
		},
	}
	if s.ServerFP != nil {
		jobs = append(jobs,
			func() report.Table { return report.ServerFPCensus(s.ServerFP) },
			func() report.Table { return report.ServerFPVendorStacks(s.ServerFP) },
		)
	}
	return jobs
}

// buildTables runs table jobs across the study's worker pool, preserving
// slice order in the result regardless of completion order.
func (s *Study) buildTables(jobs []func() report.Table) []report.Table {
	if m := s.Config.Metrics; m != nil {
		sw := obs.NewStopwatch()
		defer func() {
			m.Histogram("report_render_seconds", obs.DurationBuckets).Observe(sw.Seconds())
			m.Counter("report_tables_total").Add(int64(len(jobs)))
		}()
	}
	workers := s.Config.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]report.Table, len(jobs))
	if workers <= 1 {
		for i, job := range jobs {
			out[i] = job()
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = jobs[i]()
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// ClientTables renders the Section 4 + Appendix B tables.
func (s *Study) ClientTables() []report.Table {
	return s.buildTables(s.clientTableJobs())
}

// ServerTables renders the Section 5 + Appendix C tables.
func (s *Study) ServerTables() []report.Table {
	return s.buildTables(s.serverTableJobs())
}

// WriteReport renders every table to w. Tables are built concurrently
// (bounded by Config.Workers) and emitted in fixed order, so the bytes
// written are identical for every worker count.
func (s *Study) WriteReport(w io.Writer) {
	sp := s.Config.Tracer.Root().Child("report")
	defer sp.End()
	fmt.Fprintf(w, "IoT TLS & Certificate Study — %d devices, %d users, %d models, %d records\n",
		len(s.Dataset.Devices), s.Dataset.Users(), s.Dataset.Models(), s.Dataset.Records.Len())
	fmt.Fprintf(w, "Fingerprints: %d unique; SNIs probed: %d (of %d observed)\n\n",
		s.Client.NumFingerprints(), len(s.SNIs), len(s.Dataset.SNIs()))
	jobs := append(s.clientTableJobs(), s.serverTableJobs()...)
	sp.SetCount("tables", int64(len(jobs)))
	for _, t := range s.buildTables(jobs) {
		t.WriteText(w)
		fmt.Fprintln(w)
	}
}

// Figure1Dot renders the vendor–fingerprint graph with security coloring.
func (s *Study) Figure1Dot() string {
	vendorIdx := map[string]int{}
	for _, v := range dataset.Vendors() {
		vendorIdx[v.Name] = v.Index
	}
	g := s.Client.VendorGraph()
	return g.Dot(graph.DotOptions{
		Name: "figure1_vendor_fingerprints",
		RightColor: func(key string) string {
			return report.SecurityColor(s.Client.Prints[key].Print)
		},
		RightSize: func(key string) float64 {
			return report.SecuritySize(s.Client.Prints[key].Print)
		},
		LeftLabel: func(vendor string) string {
			return fmt.Sprintf("%d", vendorIdx[vendor])
		},
	})
}

// Figure3Dot renders the Amazon device-type graph.
func (s *Study) Figure3Dot() string {
	g := s.Client.TypeGraphForVendor("Amazon")
	return g.Dot(graph.DotOptions{
		Name: "figure3_amazon_types",
		RightColor: func(key string) string {
			return report.SecurityColor(s.Client.Prints[key].Print)
		},
	})
}

// Figure4Dot renders the Amazon Echo (speaker) device–fingerprint graph.
func (s *Study) Figure4Dot() string {
	g := s.Client.DeviceGraphForVendorType("Amazon", dataset.TypeSpeaker)
	return g.Dot(graph.DotOptions{
		Name: "figure4_amazon_echo_devices",
		RightColor: func(key string) string {
			return report.SecurityColor(s.Client.Prints[key].Print)
		},
	})
}
