// Package core orchestrates the full study: generate (or ingest) the
// crowdsourced ClientHello dataset, run the client-side TLS analyses of
// Section 4, extract the SNI set, build and probe the server world of
// Section 5, and render every table and figure. It is the library's
// primary entry point; cmd/iotls and the examples are thin wrappers.
package core

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/graph"
	"repro/internal/libcorpus"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/simnet"
)

// Config parameterizes a study run.
type Config struct {
	// Seed drives every random decision (dataset + world).
	Seed int64
	// Scale multiplies the device population (1.0 = paper scale).
	Scale float64
	// MinSNIUsers filters SNIs observed from fewer users (paper: 3, i.e.
	// "removed SNIs observed from two or fewer users").
	MinSNIUsers int
	// RealTLS probes with genuine crypto/tls handshakes instead of the
	// fast path.
	RealTLS bool
	// Probe tunes the resilient probe engine (zero value = defaults).
	Probe probe.Options
	// Faults optionally installs deterministic handshake-fault injection
	// on the world before probing.
	Faults *simnet.Faults
}

// DefaultConfig is the paper-scale run.
func DefaultConfig() Config {
	return Config{Seed: 20231024, Scale: 1.0, MinSNIUsers: 3}
}

// Study holds every stage's state after Run.
type Study struct {
	Config  Config
	Dataset *dataset.Dataset
	Client  *analysis.Client
	Matcher *fingerprint.Matcher
	World   *simnet.World
	Server  *analysis.Server
	// SNIs is the filtered SNI set fed to the prober.
	SNIs []string
}

// Run executes the full pipeline.
func Run(cfg Config) (*Study, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.MinSNIUsers <= 0 {
		cfg.MinSNIUsers = 3
	}
	ds := dataset.Generate(dataset.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	client, err := analysis.NewClient(ds)
	if err != nil {
		return nil, fmt.Errorf("core: client analysis: %w", err)
	}
	snis := ds.SNIsByMinUsers(cfg.MinSNIUsers)
	world := simnet.Build(simnet.Config{Seed: cfg.Seed + 1, SNIs: snis, Faults: cfg.Faults})
	server := analysis.NewServerProbed(world, ds, snis,
		probe.WorldProber{World: world, RealTLS: cfg.RealTLS}, cfg.Probe)
	return &Study{
		Config:  cfg,
		Dataset: ds,
		Client:  client,
		Matcher: libcorpus.NewMatcher(),
		World:   world,
		Server:  server,
		SNIs:    snis,
	}, nil
}

// ClientTables renders the Section 4 + Appendix B tables.
func (s *Study) ClientTables() []report.Table {
	return []report.Table{
		report.LibMatch(s.Client.MatchLibraries(s.Matcher)),
		report.Table2(s.Client.Table2()),
		report.Figure2(s.Client.DoCVendorAll(), s.Client.DoCDeviceAll()),
		report.Table3(s.Client.Table3(10)),
		report.Table4(s.Client.Table4(0.2)),
		report.Table5(s.Client.Table5(2)),
		report.VulnStats(s.Client.Vulnerabilities()),
		report.Table11(s.Client.Table11(s.Matcher)),
		report.Figure8(s.Client.Figure8(s.Matcher, 10)),
		report.Table12(s.Client.Table12()),
		report.Figure11(s.Client.Figure11()),
		report.Figure12(s.Client.Figure12()),
		report.Census(s.Client.Census()),
		report.ExtensionFrequencies(s.Client.ExtensionFrequencies(s.Matcher), 12),
		report.Table10(s.Matcher.Entries()),
		report.Table13(),
	}
}

// ServerTables renders the Section 5 + Appendix C tables.
func (s *Study) ServerTables() []report.Table {
	return []report.Table{
		report.Table6(s.Server.Table6()),
		report.Sharing(s.Server.Sharing()),
		report.Figure5(s.Server.Figure5()),
		report.DomainRows("Table 7: Certificate chains with validation failure", s.Server.Table7(), false),
		report.DomainRows("Table 8: Expired certificates", s.Server.Table8(), true),
		report.DomainRows("Table 14: Certificate chains with private issuers", s.Server.Table14(), false),
		report.DomainRows("Section 5.3: Common Name mismatches", s.Server.CNMismatches(), false),
		report.Figure6(s.Server.Figure6()),
		report.Table9(s.Server.Table9()),
		report.CTStats(s.Server.CT()),
		report.Table15(s.Server.Table15(30)),
		report.Table16(s.Server.Table16()),
		report.ProbeStats(s.Server.ProbeStats),
		report.ReportCards(s.Server.ReportCards(s.World.ProbeTime), s.World.ProbeTime),
	}
}

// WriteReport renders every table to w.
func (s *Study) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "IoT TLS & Certificate Study — %d devices, %d users, %d models, %d records\n",
		len(s.Dataset.Devices), s.Dataset.Users(), s.Dataset.Models(), len(s.Dataset.Records))
	fmt.Fprintf(w, "Fingerprints: %d unique; SNIs probed: %d (of %d observed)\n\n",
		s.Client.NumFingerprints(), len(s.SNIs), len(s.Dataset.SNIs()))
	for _, t := range s.ClientTables() {
		t.WriteText(w)
		fmt.Fprintln(w)
	}
	for _, t := range s.ServerTables() {
		t.WriteText(w)
		fmt.Fprintln(w)
	}
}

// Figure1Dot renders the vendor–fingerprint graph with security coloring.
func (s *Study) Figure1Dot() string {
	vendorIdx := map[string]int{}
	for _, v := range dataset.Vendors() {
		vendorIdx[v.Name] = v.Index
	}
	g := s.Client.VendorGraph()
	return g.Dot(graph.DotOptions{
		Name: "figure1_vendor_fingerprints",
		RightColor: func(key string) string {
			return report.SecurityColor(s.Client.Prints[key].Print)
		},
		RightSize: func(key string) float64 {
			return report.SecuritySize(s.Client.Prints[key].Print)
		},
		LeftLabel: func(vendor string) string {
			return fmt.Sprintf("%d", vendorIdx[vendor])
		},
	})
}

// Figure3Dot renders the Amazon device-type graph.
func (s *Study) Figure3Dot() string {
	g := s.Client.TypeGraphForVendor("Amazon")
	return g.Dot(graph.DotOptions{
		Name: "figure3_amazon_types",
		RightColor: func(key string) string {
			return report.SecurityColor(s.Client.Prints[key].Print)
		},
	})
}

// Figure4Dot renders the Amazon Echo (speaker) device–fingerprint graph.
func (s *Study) Figure4Dot() string {
	g := s.Client.DeviceGraphForVendorType("Amazon", dataset.TypeSpeaker)
	return g.Dot(graph.DotOptions{
		Name: "figure4_amazon_echo_devices",
		RightColor: func(key string) string {
			return report.SecurityColor(s.Client.Prints[key].Print)
		},
	})
}
