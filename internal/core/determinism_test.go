package core

import (
	"bytes"
	"context"
	"runtime"
	"testing"
)

// TestReportDeterministicAcrossWorkers asserts the PR's central invariant:
// the rendered report is byte-identical for every worker count. Sharded
// ingestion merges commutatively, probing orders results positionally, and
// table rendering emits in fixed order, so parallelism must never leak
// into the output. Run with -race in CI to also exercise the memo and
// cache synchronization.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var want []byte
	for _, workers := range counts {
		s, err := Run(context.Background(), Config{Seed: 31, Scale: 0.25, MinSNIUsers: 2, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		s.WriteReport(&buf)
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			a, b := buf.Bytes(), want
			i := 0
			for i < len(a) && i < len(b) && a[i] == b[i] {
				i++
			}
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+80, i+80
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			t.Fatalf("workers=%d: report differs from workers=1 at byte %d\n workers=%d: …%q…\n workers=1: …%q…",
				workers, i, workers, a[lo:hiA], b[lo:hiB])
		}
	}
}
