package core

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/libcorpus"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/serverfp"
	"repro/internal/simnet"
)

// Stage names, in pipeline order. They are the span names under
// "core.Run" and the stage label on every stage_* metric series.
const (
	StageDataset  = "dataset"
	StageCorpus   = "corpus"
	StageIngest   = "ingest"
	StageSNIs     = "sni-filter"
	StageWorld    = "world-build"
	StageProbe    = "probe"
	StageValidate = "chain-validate"
	// StageServerFP is the optional active-fingerprinting stage; Run
	// appends it after StageProbe when Config.ServerFP is set, so
	// Stages() itself (and every stage-count invariant built on it)
	// describes the default pipeline.
	StageServerFP = "serverfp"
)

// Stage is one named step of the study pipeline. Stages form a DAG via
// After; the runner starts every stage whose dependencies have completed,
// so independent stages overlap (client-side ingestion runs while the
// server world is built and probed) while each still gets its own span,
// wall-time histogram, and item counts. Every stage is deterministic, so
// the interleaving cannot change results.
type Stage struct {
	// Name identifies the stage in spans, metrics, and errors.
	Name string
	// After lists the names of stages that must complete first.
	After []string
	// Run executes the stage: it reads and extends the Study under the
	// given context and reports item counts through rec.
	Run func(ctx context.Context, st *Study, rec *StageRecorder) error
}

// StageRecorder collects a stage's item counts: they land on the stage's
// span (when tracing) and on stage_items_total{stage,item} counters
// (when metrics are enabled). The runner hands every stage a recorder, so
// stage code never branches on what observability is attached.
type StageRecorder struct {
	// Span is the stage's span (nil when tracing is off); stages may
	// attach sub-spans to it.
	Span *obs.Span

	name    string
	metrics *obs.Registry
}

// Count records one named item count for the stage.
func (r *StageRecorder) Count(key string, v int64) {
	r.Span.SetCount(key, v)
	if r.metrics != nil {
		r.metrics.Counter("stage_items_total", obs.L("stage", r.name), obs.L("item", key)).Add(v)
	}
}

// Stages returns the study pipeline as a fresh stage slice in definition
// order: dataset generation, library-corpus construction, client
// ingestion, SNI filtering, world building, probing, and chain
// validation. Callers may inspect, reorder, or extend the slice before
// handing it to RunStages; Run uses it as-is.
func Stages() []Stage {
	return []Stage{
		{Name: StageDataset, Run: runDatasetStage},
		{Name: StageCorpus, Run: runCorpusStage},
		{Name: StageIngest, After: []string{StageDataset}, Run: runIngestStage},
		{Name: StageSNIs, After: []string{StageDataset}, Run: runSNIStage},
		{Name: StageWorld, After: []string{StageSNIs}, Run: runWorldStage},
		{Name: StageProbe, After: []string{StageWorld}, Run: runProbeStage},
		{Name: StageValidate, After: []string{StageProbe, StageIngest}, Run: runValidateStage},
	}
}

func runDatasetStage(_ context.Context, st *Study, rec *StageRecorder) error {
	cfg := st.Config
	if cfg.Dataset != nil {
		st.Dataset = cfg.Dataset
	} else {
		st.Dataset = dataset.Generate(dataset.Config{Seed: cfg.Seed, Scale: cfg.Scale, AsOf: cfg.AsOf, Metrics: cfg.Metrics})
	}
	rec.Count("devices", int64(len(st.Dataset.Devices)))
	rec.Count("records", int64(st.Dataset.Records.Len()))
	return nil
}

func runCorpusStage(_ context.Context, st *Study, rec *StageRecorder) error {
	st.Matcher = libcorpus.NewMatcherAsOf(st.Config.AsOf)
	rec.Count("entries", int64(len(st.Matcher.Entries())))
	return nil
}

func runIngestStage(_ context.Context, st *Study, rec *StageRecorder) error {
	cfg := st.Config
	client, err := analysis.NewClientObserved(st.Dataset, cfg.workers(), cfg.Metrics)
	if err != nil {
		return err
	}
	st.Client = client
	rec.Count("records", int64(st.Dataset.Records.Len()))
	rec.Count("fingerprints", int64(client.NumFingerprints()))
	return nil
}

func runSNIStage(_ context.Context, st *Study, rec *StageRecorder) error {
	cfg := st.Config
	st.SNIs = st.Dataset.SNIsByMinUsers(cfg.MinSNIUsers)
	rec.Count("observed", int64(len(st.Dataset.SNIs())))
	rec.Count("kept", int64(len(st.SNIs)))
	return nil
}

func runWorldStage(_ context.Context, st *Study, rec *StageRecorder) error {
	cfg := st.Config
	st.World = simnet.Build(simnet.Config{Seed: cfg.Seed + 1, SNIs: st.SNIs, AsOf: cfg.AsOf, Faults: cfg.Faults})
	st.World.Validator.Instrument(cfg.Metrics)
	rec.Count("servers", int64(len(st.World.Servers)))
	return nil
}

func runProbeStage(ctx context.Context, st *Study, rec *StageRecorder) error {
	cfg := st.Config
	opts := cfg.Probe
	if opts.Workers == 0 {
		opts.Workers = cfg.workers()
	}
	if opts.Metrics == nil {
		opts.Metrics = cfg.Metrics
	}
	eng := probe.New(probe.WorldProber{World: st.World, RealTLS: cfg.RealTLS}, opts)
	st.probeResults, st.probeStats = eng.Run(ctx, st.SNIs, cfg.vantages())
	rec.Count("jobs", int64(st.probeStats.Jobs))
	rec.Count("attempts", int64(st.probeStats.Attempts))
	rec.Count("retries", int64(st.probeStats.Retries))
	// A cancelled sweep leaves aborted placeholders in the results; the
	// study is incomplete, so surface the cancellation instead of
	// validating partial data.
	return ctx.Err()
}

func runServerFPStage(ctx context.Context, st *Study, rec *StageRecorder) error {
	cfg := st.Config
	opts := cfg.Probe
	if opts.Workers == 0 {
		opts.Workers = cfg.workers()
	}
	// The battery runs uninstrumented: its attempts would otherwise land
	// on the same probe_* series as the canonical sweep and break the
	// attempts == stats reconciliation downstream consumers rely on.
	opts.Metrics = nil
	census, err := serverfp.Fingerprint(ctx, st.World, st.SNIs, cfg.vantages()[0], opts)
	if err != nil {
		return err
	}
	st.ServerFP = census
	rec.Count("targets", int64(len(census.Targets)))
	rec.Count("battery", int64(census.BatterySize))
	rec.Count("attempts", int64(census.Stats.Attempts))
	return ctx.Err()
}

func runValidateStage(_ context.Context, st *Study, rec *StageRecorder) error {
	st.Server = analysis.NewServerFromProbes(st.World, st.Dataset, st.SNIs, st.Config.vantages(), st.probeResults, st.probeStats)
	st.probeResults = nil // the engine output is folded into Server
	rec.Count("records", int64(len(st.Server.Records)))
	rec.Count("unreachable", int64(len(st.Server.UnreachableSNIs)))
	return nil
}

// RunStages executes a stage DAG against the study. Each stage gets a
// pre-allocated span under parent (created in definition order, so the
// span tree's shape is deterministic for any scheduling), a
// stage_seconds histogram sample, and a ctx check before launch; a
// cancelled context aborts stages that have not started. The first
// failing stage in definition order determines the returned error.
func RunStages(ctx context.Context, st *Study, parent *obs.Span, stages []Stage) error {
	idx := map[string]int{}
	for i, s := range stages {
		if s.Name == "" {
			return fmt.Errorf("core: stage %d has no name", i)
		}
		if _, dup := idx[s.Name]; dup {
			return fmt.Errorf("core: duplicate stage %q", s.Name)
		}
		idx[s.Name] = i
	}
	for _, s := range stages {
		for _, dep := range s.After {
			j, ok := idx[dep]
			if !ok {
				return fmt.Errorf("core: stage %q depends on unknown stage %q", s.Name, dep)
			}
			if j >= idx[s.Name] {
				return fmt.Errorf("core: stage %q depends on later stage %q", s.Name, dep)
			}
		}
	}

	metrics := st.Config.Metrics
	spans := make([]*obs.Span, len(stages))
	for i, s := range stages {
		spans[i] = parent.Child(s.Name)
	}

	type outcome struct {
		err  error
		ran  bool
		done chan struct{}
	}
	outs := make([]*outcome, len(stages))
	for i := range outs {
		outs[i] = &outcome{done: make(chan struct{})}
	}
	for i, s := range stages {
		go func(i int, s Stage) {
			defer close(outs[i].done)
			for _, dep := range s.After {
				d := outs[idx[dep]]
				<-d.done
				if d.err != nil || !d.ran {
					return // upstream failed or was skipped
				}
			}
			if err := ctx.Err(); err != nil {
				outs[i].err = err
				return
			}
			rec := &StageRecorder{Span: spans[i], name: s.Name, metrics: metrics}
			rec.Span.Begin()
			sw := obs.NewStopwatch()
			err := s.Run(ctx, st, rec)
			rec.Span.End()
			if metrics != nil {
				metrics.Histogram("stage_seconds", obs.DurationBuckets, obs.L("stage", s.Name)).
					Observe(sw.Seconds())
				metrics.Counter("stage_runs_total", obs.L("stage", s.Name)).Inc()
			}
			outs[i].err = err
			outs[i].ran = err == nil
		}(i, s)
	}
	for _, o := range outs {
		<-o.done
	}
	for i, o := range outs {
		if o.err != nil {
			return fmt.Errorf("core: stage %s: %w", stages[i].Name, o.err)
		}
	}
	// All errors nil but something skipped: only possible via cancellation
	// racing the dependency wait; report the context error.
	for _, o := range outs {
		if !o.ran {
			if err := ctx.Err(); err != nil {
				return err
			}
			return fmt.Errorf("core: pipeline incomplete")
		}
	}
	return nil
}
