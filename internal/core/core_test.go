package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func runSmall(t testing.TB) *Study {
	t.Helper()
	s, err := Run(context.Background(), Config{Seed: 17, Scale: 0.2, MinSNIUsers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunPipeline(t *testing.T) {
	s := runSmall(t)
	if len(s.Dataset.Devices) == 0 || s.Client.NumFingerprints() == 0 {
		t.Fatal("empty client side")
	}
	if len(s.Server.Records) == 0 {
		t.Fatal("empty server side")
	}
	if len(s.SNIs) == 0 {
		t.Fatal("no SNIs")
	}
}

func TestWriteReportContainsEveryTable(t *testing.T) {
	s := runSmall(t)
	var buf bytes.Buffer
	s.WriteReport(&buf)
	out := buf.String()
	for _, want := range []string{
		"Section 4.1: TLS library matching",
		"Table 2: Fingerprint degree distribution",
		"Figure 2: Degree of TLS fingerprint customization",
		"Table 3: Heterogeneity",
		"Table 4: Vendor tuples",
		"Table 5: Servers linked",
		"Section 4.2: Vulnerabilities",
		"Table 11: Semantics-aware",
		"Figure 8: Jaccard",
		"Table 12: TLS version",
		"Figure 11: Lowest index",
		"Figure 12: Most preferred",
		"Appendix B: extension censuses",
		"Table 6: IoT server certificate dataset",
		"Section 5.1: Certificate sharing",
		"Figure 5: Issuers",
		"Table 7: Certificate chains with validation failure",
		"Table 8: Expired certificates",
		"Table 14: Certificate chains with private issuers",
		"Figure 6: Certificate validity periods",
		"Section 5.4: CT logging",
		"Table 15: Popular SLDs",
		"Table 16: Certificates usage across geographical locations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestGraphDots(t *testing.T) {
	s := runSmall(t)
	for name, dot := range map[string]string{
		"fig1": s.Figure1Dot(),
		"fig3": s.Figure3Dot(),
		"fig4": s.Figure4Dot(),
	} {
		if !strings.Contains(dot, "graph ") || !strings.Contains(dot, "--") {
			t.Errorf("%s: malformed DOT output", name)
		}
	}
	// Figure 1 labels vendors by Table 13 index, not by name.
	if strings.Contains(s.Figure1Dot(), `label="Amazon"`) {
		t.Error("figure 1 must use vendor indices as labels")
	}
}

func TestRealTLSPath(t *testing.T) {
	if testing.Short() {
		t.Skip("real TLS probing in short mode")
	}
	s, err := Run(context.Background(), Config{Seed: 23, Scale: 0.05, MinSNIUsers: 2, RealTLS: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Server.Records) == 0 {
		t.Fatal("no records via real TLS")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale != 1.0 || cfg.MinSNIUsers != 3 {
		t.Fatalf("unexpected defaults %+v", cfg)
	}
	// Run validates instead of silently fixing zero values.
	if _, err := Run(context.Background(), Config{Seed: 5, Scale: 0.05}); err == nil {
		t.Fatal("Run accepted MinSNIUsers = 0")
	}
}

func BenchmarkFullStudySmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Seed: 9, Scale: 0.1, MinSNIUsers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestServerFPStage(t *testing.T) {
	s, err := Run(context.Background(), Config{Seed: 17, Scale: 0.2, MinSNIUsers: 2, ServerFP: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.ServerFP == nil || len(s.ServerFP.Targets) == 0 {
		t.Fatal("ServerFP census missing")
	}
	if acc := s.ServerFP.Accuracy(); acc < 0.95 {
		t.Fatalf("serverfp accuracy %.3f, want >= 0.95", acc)
	}
	var buf bytes.Buffer
	s.WriteReport(&buf)
	for _, want := range []string{
		"Server stack census (active fingerprinting)",
		"Vendor / backend server stack correlation",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}

	// The census is strictly additive: a default run has no census and
	// renders no serverfp tables.
	plain := runSmall(t)
	if plain.ServerFP != nil {
		t.Fatal("default config ran the serverfp stage")
	}
	var pbuf bytes.Buffer
	plain.WriteReport(&pbuf)
	if strings.Contains(pbuf.String(), "Server stack census") {
		t.Fatal("default report contains serverfp tables")
	}
}
