package intern

import (
	"fmt"
	"sync"
	"testing"
)

// TestTableZeroSymbol pins the invariant the columnar layout leans on:
// Symbol 0 is the empty string, so sniSym != 0 means "has SNI".
func TestTableZeroSymbol(t *testing.T) {
	tab := NewTable()
	if got := tab.Intern(""); got != 0 {
		t.Fatalf("Intern(\"\") = %d, want 0", got)
	}
	if got := tab.Str(0); got != "" {
		t.Fatalf("Str(0) = %q, want \"\"", got)
	}
	if got := tab.Intern("a"); got == 0 {
		t.Fatalf("Intern(\"a\") = 0, want nonzero")
	}
}

// TestTableStability asserts symbols are stable: re-interning returns
// the same symbol, and Str round-trips every issued symbol.
func TestTableStability(t *testing.T) {
	tab := NewTable()
	words := []string{"boa", "", "tuya", "boa", "mbedtls", "tuya", "openssl"}
	first := map[string]Symbol{}
	for _, w := range words {
		sym := tab.Intern(w)
		if prev, ok := first[w]; ok && prev != sym {
			t.Fatalf("Intern(%q) unstable: %d then %d", w, prev, sym)
		}
		first[w] = sym
		if got := tab.Str(sym); got != w {
			t.Fatalf("Str(Intern(%q)) = %q", w, got)
		}
	}
	if got, want := tab.Len(), 5; got != want { // "", boa, tuya, mbedtls, openssl
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	if _, ok := tab.Lookup("never-seen"); ok {
		t.Fatalf("Lookup of uninterned string reported ok")
	}
	if sym, ok := tab.Lookup("boa"); !ok || sym != first["boa"] {
		t.Fatalf("Lookup(boa) = %d,%v want %d,true", sym, ok, first["boa"])
	}
}

// TestTableConcurrentInterning hammers one table from many goroutines
// interning overlapping string sets and asserts, under -race, that
// every goroutine observes the same symbol for the same string.
func TestTableConcurrentInterning(t *testing.T) {
	tab := NewTable()
	const goroutines = 8
	const distinct = 200
	results := make([]map[string]Symbol, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := make(map[string]Symbol, distinct)
			// Each goroutine walks the shared key space from a
			// different offset so insertions race from all sides.
			for i := 0; i < distinct*3; i++ {
				s := fmt.Sprintf("stack-%d", (i*7+g*13)%distinct)
				sym := tab.Intern(s)
				if prev, ok := seen[s]; ok && prev != sym {
					t.Errorf("goroutine %d: Intern(%q) unstable: %d then %d", g, s, prev, sym)
					return
				}
				seen[s] = sym
				if got := tab.Str(sym); got != s {
					t.Errorf("goroutine %d: Str(%d) = %q, want %q", g, sym, got, s)
					return
				}
			}
			results[g] = seen
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for s, sym := range results[0] {
			if other, ok := results[g][s]; ok && other != sym {
				t.Fatalf("goroutines 0 and %d disagree on %q: %d vs %d", g, s, sym, other)
			}
		}
	}
	if got, want := tab.Len(), distinct+1; got != want {
		t.Fatalf("Len() = %d, want %d (+1 for empty string)", got, want)
	}
}

// TestArenaDedup asserts the arena's core contract: identical lists
// share a Handle, distinct lists (including order variants) do not,
// and Get round-trips contents exactly.
func TestArenaDedup(t *testing.T) {
	a := NewArena()
	if got := a.Put(nil); got != 0 {
		t.Fatalf("Put(nil) = %d, want 0", got)
	}
	if got := a.Put([]uint16{}); got != 0 {
		t.Fatalf("Put(empty) = %d, want 0", got)
	}
	lists := [][]uint16{
		{0x1301, 0x1302, 0x1303},
		{0xc02f, 0xc030},
		{0x1301, 0x1302, 0x1303}, // dup of [0]
		{0x1302, 0x1301, 0x1303}, // order variant: distinct
		{0xc02f},                 // prefix of [1]: distinct
	}
	handles := make([]Handle, len(lists))
	for i, l := range lists {
		handles[i] = a.Put(l)
	}
	if handles[0] != handles[2] {
		t.Fatalf("identical lists got distinct handles %d, %d", handles[0], handles[2])
	}
	if handles[0] == handles[3] {
		t.Fatalf("order variant shares handle %d", handles[0])
	}
	if handles[1] == handles[4] {
		t.Fatalf("prefix shares handle %d", handles[1])
	}
	for i, l := range lists {
		got := a.Get(handles[i])
		if len(got) != len(l) {
			t.Fatalf("Get(%d) len = %d, want %d", handles[i], len(got), len(l))
		}
		for j := range l {
			if got[j] != l[j] {
				t.Fatalf("Get(%d)[%d] = %#x, want %#x", handles[i], j, got[j], l[j])
			}
		}
	}
	if got, want := a.Len(), 5; got != want { // empty + 4 distinct
		t.Fatalf("Len() = %d, want %d", got, want)
	}
}

// TestArenaViewStableAcrossGrowth asserts a Get view taken early keeps
// its contents after enough later Puts to force backing-array growth.
func TestArenaViewStableAcrossGrowth(t *testing.T) {
	a := NewArena()
	early := a.Put([]uint16{1, 2, 3})
	view := a.Get(early)
	for i := 0; i < 4096; i++ {
		a.Put([]uint16{uint16(i), uint16(i + 1), uint16(i + 2), uint16(i + 3)})
	}
	if len(view) != 3 || view[0] != 1 || view[1] != 2 || view[2] != 3 {
		t.Fatalf("early view corrupted after growth: %v", view)
	}
	// The view must also be capacity-clamped so appends cannot stomp
	// neighbouring spans.
	if cap(view) != len(view) {
		t.Fatalf("view cap %d != len %d; appends could clobber the arena", cap(view), len(view))
	}
}

// TestArenaConcurrentPut races Puts of overlapping lists and asserts
// handle agreement (run with -race).
func TestArenaConcurrentPut(t *testing.T) {
	a := NewArena()
	const goroutines = 8
	const distinct = 100
	results := make([][]Handle, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			hs := make([]Handle, distinct)
			for i := 0; i < distinct; i++ {
				k := (i*11 + g*17) % distinct
				hs[k] = a.Put([]uint16{uint16(k), uint16(k * 2), uint16(k * 3)})
			}
			results[g] = hs
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for k := 0; k < distinct; k++ {
			if results[g][k] != results[0][k] {
				t.Fatalf("goroutines 0 and %d disagree on list %d: %d vs %d",
					g, k, results[0][k], results[g][k])
			}
		}
	}
}

// BenchmarkArenaPutHit measures the warm-path Put, which must stay
// allocation-free for the fingerprint hot loop.
func BenchmarkArenaPutHit(b *testing.B) {
	a := NewArena()
	list := []uint16{0x1301, 0x1302, 0x1303, 0xc02f, 0xc030, 0xcca9}
	a.Put(list)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Put(list)
	}
}

// BenchmarkTableInternHit measures the warm-path Intern.
func BenchmarkTableInternHit(b *testing.B) {
	tab := NewTable()
	tab.Intern("mbedtls-2.16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Intern("mbedtls-2.16")
	}
}
