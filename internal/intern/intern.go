// Package intern provides the shared, append-only identity stores
// backing the columnar hot path: a string Table mapping each distinct
// string to a stable uint32 Symbol, and a uint16-slice Arena mapping
// each distinct ciphersuite/extension list to a deduped Handle over
// one contiguous backing array.
//
// Both stores are append-only — symbols and handles, once issued,
// never change meaning and never move — so readers may hold a Symbol,
// a Handle, or a slice view returned by Arena.Get across later
// inserts without synchronization. Writes take a mutex; reads take an
// RLock fast path that almost always hits once the working set is
// warm.
//
// Symbol 0 is always the empty string and Handle 0 is always the
// empty list, so "has SNI" and "no extensions" checks stay branch-only.
package intern

import "sync"

// Symbol identifies one distinct string in a Table. The zero Symbol is
// always the empty string.
type Symbol uint32

// Table is an append-only string interner. The zero value is not
// usable; construct with NewTable.
type Table struct {
	mu   sync.RWMutex
	syms map[string]Symbol
	strs []string
}

// NewTable returns a Table with Symbol 0 pre-bound to "".
func NewTable() *Table {
	return &Table{
		syms: map[string]Symbol{"": 0},
		strs: []string{""},
	}
}

// Intern returns the stable Symbol for s, assigning the next Symbol on
// first sight. Safe for concurrent use.
func (t *Table) Intern(s string) Symbol {
	t.mu.RLock()
	sym, ok := t.syms[s]
	t.mu.RUnlock()
	if ok {
		return sym
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sym, ok = t.syms[s]; ok {
		return sym
	}
	sym = Symbol(len(t.strs))
	t.strs = append(t.strs, s)
	t.syms[s] = sym
	return sym
}

// Lookup returns the Symbol for s without inserting. ok is false if s
// has never been interned.
func (t *Table) Lookup(s string) (sym Symbol, ok bool) {
	t.mu.RLock()
	sym, ok = t.syms[s]
	t.mu.RUnlock()
	return sym, ok
}

// Str returns the string bound to sym. Panics if sym was never issued
// by this table.
func (t *Table) Str(sym Symbol) string {
	t.mu.RLock()
	s := t.strs[sym]
	t.mu.RUnlock()
	return s
}

// Len returns the number of distinct symbols issued (including the
// empty string).
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.strs)
	t.mu.RUnlock()
	return n
}

// Handle identifies one distinct uint16 list in an Arena. The zero
// Handle is always the empty list.
type Handle uint32

type span struct {
	off uint32
	n   uint32
}

// Arena is an append-only, content-deduplicating store of uint16
// lists. Lists with identical contents (same values, same order) share
// one Handle and one span of the backing array. The zero value is not
// usable; construct with NewArena.
type Arena struct {
	mu    sync.RWMutex
	idx   map[string]Handle
	spans []span
	data  []uint16
}

// NewArena returns an Arena with Handle 0 pre-bound to the empty list.
func NewArena() *Arena {
	return &Arena{
		idx:   map[string]Handle{"": 0},
		spans: []span{{0, 0}},
	}
}

// arenaKey encodes vals big-endian into buf (growing it only when vals
// is longer than the caller's stack buffer) and returns the byte key.
func arenaKey(buf []byte, vals []uint16) []byte {
	if cap(buf) < 2*len(vals) {
		buf = make([]byte, 2*len(vals))
	}
	buf = buf[:2*len(vals)]
	for i, v := range vals {
		buf[2*i] = byte(v >> 8)
		buf[2*i+1] = byte(v)
	}
	return buf
}

// Put returns the Handle for the exact list vals, storing a copy on
// first sight. The fast path (list already present) allocates nothing:
// the key is encoded into a stack buffer and the map lookup uses the
// compiler's string(key) no-alloc form. Safe for concurrent use.
func (a *Arena) Put(vals []uint16) Handle {
	var arr [128]byte
	key := arenaKey(arr[:0], vals)
	a.mu.RLock()
	h, ok := a.idx[string(key)]
	a.mu.RUnlock()
	if ok {
		return h
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if h, ok = a.idx[string(key)]; ok {
		return h
	}
	h = Handle(len(a.spans))
	off := uint32(len(a.data))
	a.data = append(a.data, vals...)
	a.spans = append(a.spans, span{off, uint32(len(vals))})
	a.idx[string(key)] = h
	return h
}

// Get returns the list bound to h as a read-only view into the backing
// array. The view stays valid across later Puts (the array is
// append-only: growth copies never mutate the old prefix, and live
// views keep their old backing alive). Callers must not modify it.
// Panics if h was never issued by this arena.
func (a *Arena) Get(h Handle) []uint16 {
	a.mu.RLock()
	sp := a.spans[h]
	v := a.data[sp.off : sp.off+sp.n : sp.off+sp.n]
	a.mu.RUnlock()
	return v
}

// Len returns the number of distinct lists stored (including the empty
// list).
func (a *Arena) Len() int {
	a.mu.RLock()
	n := len(a.spans)
	a.mu.RUnlock()
	return n
}
