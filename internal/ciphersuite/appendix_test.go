package ciphersuite

import "testing"

// TestAppendixClassification pins the classification of every suite the
// paper's appendix names, one table row per suite: the Section 4.2
// taxonomy bucket and, for vulnerable suites, the component family the
// paper attributes the verdict to. The roster spans all three levels,
// every vulnerable family the registry can express, GREASE codepoints,
// and the unknown-suite fallback, so a taxonomy regression in any
// branch of Suite.Level / Suite.VulnClass moves at least one row.
func TestAppendixClassification(t *testing.T) {
	for _, tc := range []struct {
		name  string
		level SecurityLevel
		vuln  VulnClass
	}{
		// Optimal: forward-secret key exchange with an AEAD cipher, and
		// all TLS 1.3 suites.
		{"TLS_AES_128_GCM_SHA256", Optimal, VulnNone},
		{"TLS_AES_256_GCM_SHA384", Optimal, VulnNone},
		{"TLS_CHACHA20_POLY1305_SHA256", Optimal, VulnNone},
		{"TLS_AES_128_CCM_SHA256", Optimal, VulnNone},
		{"TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256", Optimal, VulnNone},
		{"TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384", Optimal, VulnNone},
		{"TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", Optimal, VulnNone},
		{"TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384", Optimal, VulnNone},
		{"TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256", Optimal, VulnNone},
		{"TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256", Optimal, VulnNone},
		{"TLS_ECDHE_ECDSA_WITH_AES_128_CCM", Optimal, VulnNone},
		{"TLS_DHE_RSA_WITH_AES_128_GCM_SHA256", Optimal, VulnNone},
		{"TLS_DHE_RSA_WITH_AES_256_GCM_SHA384", Optimal, VulnNone},
		{"TLS_DHE_RSA_WITH_CHACHA20_POLY1305_SHA256", Optimal, VulnNone},

		// Suboptimal: PFS without AEAD (CBC modes) or AEAD without PFS
		// (static-RSA / static-DH key transport) — non-ideal, no known
		// attack.
		{"TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA", Suboptimal, VulnNone},
		{"TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384", Suboptimal, VulnNone},
		{"TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA", Suboptimal, VulnNone},
		{"TLS_DHE_RSA_WITH_AES_128_CBC_SHA", Suboptimal, VulnNone},
		{"TLS_DHE_DSS_WITH_AES_128_CBC_SHA", Suboptimal, VulnNone},
		{"TLS_RSA_WITH_AES_128_GCM_SHA256", Suboptimal, VulnNone},
		{"TLS_RSA_WITH_AES_256_GCM_SHA384", Suboptimal, VulnNone},
		{"TLS_RSA_WITH_AES_128_CBC_SHA", Suboptimal, VulnNone},
		{"TLS_RSA_WITH_AES_256_CBC_SHA", Suboptimal, VulnNone},
		{"TLS_RSA_WITH_AES_128_CBC_SHA256", Suboptimal, VulnNone},
		{"TLS_RSA_WITH_CAMELLIA_128_CBC_SHA", Suboptimal, VulnNone},
		{"TLS_RSA_WITH_SEED_CBC_SHA", Suboptimal, VulnNone},
		{"TLS_DH_RSA_WITH_AES_128_GCM_SHA256", Suboptimal, VulnNone},

		// Vulnerable, by attributed component family. 3DES is the
		// paper's most common finding, then RC4 and single DES.
		{"TLS_RSA_WITH_3DES_EDE_CBC_SHA", Vulnerable, Vuln3DES},
		{"TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA", Vulnerable, Vuln3DES},
		{"TLS_DHE_RSA_WITH_3DES_EDE_CBC_SHA", Vulnerable, Vuln3DES},
		{"TLS_KRB5_WITH_3DES_EDE_CBC_SHA", Vulnerable, Vuln3DES},
		{"TLS_RSA_WITH_DES_CBC_SHA", Vulnerable, VulnDES},
		{"TLS_DHE_RSA_WITH_DES_CBC_SHA", Vulnerable, VulnDES},
		{"TLS_KRB5_WITH_DES_CBC_MD5", Vulnerable, VulnDES},
		{"TLS_RSA_WITH_RC4_128_SHA", Vulnerable, VulnRC4},
		{"TLS_RSA_WITH_RC4_128_MD5", Vulnerable, VulnRC4},
		{"TLS_ECDHE_RSA_WITH_RC4_128_SHA", Vulnerable, VulnRC4},
		{"TLS_ECDHE_ECDSA_WITH_RC4_128_SHA", Vulnerable, VulnRC4},
		{"TLS_KRB5_WITH_RC4_128_SHA", Vulnerable, VulnRC4},
		{"TLS_RSA_WITH_NULL_SHA", Vulnerable, VulnNULL},
		{"TLS_RSA_WITH_NULL_MD5", Vulnerable, VulnNULL},
		{"TLS_RSA_WITH_NULL_SHA256", Vulnerable, VulnNULL},
		{"TLS_ECDHE_ECDSA_WITH_NULL_SHA", Vulnerable, VulnNULL},
		{"TLS_RSA_EXPORT_WITH_DES40_CBC_SHA", Vulnerable, VulnExport},
		{"TLS_RSA_EXPORT_WITH_RC4_40_MD5", Vulnerable, VulnExport},
		// RC2 only ever shipped export-grade; the kex defect dominates
		// the cipher defect in the paper's attribution.
		{"TLS_RSA_EXPORT_WITH_RC2_CBC_40_MD5", Vulnerable, VulnExport},
		{"TLS_DHE_RSA_EXPORT_WITH_DES40_CBC_SHA", Vulnerable, VulnExport},
		{"TLS_DH_anon_WITH_AES_128_CBC_SHA", Vulnerable, VulnAnonKex},
		{"TLS_DH_anon_WITH_AES_128_GCM_SHA256", Vulnerable, VulnAnonKex},
		{"TLS_ECDH_anon_WITH_AES_128_CBC_SHA", Vulnerable, VulnAnonKex},
		// Anonymous kex dominates the RC4 cipher defect.
		{"TLS_DH_anon_WITH_RC4_128_MD5", Vulnerable, VulnAnonKex},
		{"TLS_KRB5_EXPORT_WITH_RC4_40_SHA", Vulnerable, VulnKRB5Export},
		{"TLS_KRB5_EXPORT_WITH_RC2_CBC_40_MD5", Vulnerable, VulnKRB5Export},
		{"TLS_NULL_WITH_NULL_NULL", Vulnerable, VulnNULL},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, ok := LookupName(tc.name)
			if !ok {
				t.Fatalf("suite %s is not in the registry", tc.name)
			}
			if got := s.Level(); got != tc.level {
				t.Errorf("Level() = %v, appendix says %v", got, tc.level)
			}
			if got := s.VulnClass(); got != tc.vuln {
				t.Errorf("VulnClass() = %v, appendix says %v", got, tc.vuln)
			}
			// Codepoint lookup must agree with name lookup.
			byID, ok := Lookup(s.ID)
			if !ok || byID.Name != tc.name {
				t.Errorf("Lookup(0x%04X) = %q, ok=%v", s.ID, byID.Name, ok)
			}
		})
	}
}

// TestAppendixFallbacks pins the behaviours the appendix relies on for
// codepoints outside the registry: GREASE values and unknown suites.
func TestAppendixFallbacks(t *testing.T) {
	for _, id := range []uint16{0x0A0A, 0x1A1A, 0x8A8A, 0xFAFA} {
		if !IsGREASE(id) {
			t.Errorf("IsGREASE(0x%04X) = false", id)
		}
		s, ok := Lookup(id)
		if ok {
			t.Errorf("GREASE 0x%04X resolved to registered suite %s", id, s.Name)
		}
		if want := "GREASE_0x"; len(s.Name) < len(want) || s.Name[:len(want)] != want {
			t.Errorf("GREASE placeholder name = %q", s.Name)
		}
	}
	// Unknown but non-GREASE codepoint: placeholder with UNKNOWN
	// components, never classified vulnerable.
	s, ok := Lookup(0x4A4B)
	if ok {
		t.Fatalf("0x4A4B unexpectedly registered as %s", s.Name)
	}
	if s.Name != "UNKNOWN_0x4A4B" || s.Kex != "UNKNOWN" {
		t.Errorf("unknown placeholder = %+v", s)
	}
	if s.VulnClass() != VulnNone {
		t.Errorf("unknown suite classified %v", s.VulnClass())
	}

	// List classification skips GREASE, SCSV, and unknown codepoints: a
	// list of only those has no classifiable member and is Suboptimal by
	// definition; adding one real suite makes that suite decide.
	noise := []uint16{0x0A0A, SCSVRenegotiation, SCSVFallback, 0x4A4B}
	if got := ListLevel(noise); got != Suboptimal {
		t.Errorf("ListLevel(noise only) = %v, want Suboptimal", got)
	}
	opt, _ := LookupName("TLS_AES_128_GCM_SHA256")
	if got := ListLevel(append([]uint16{opt.ID}, noise...)); got != Optimal {
		t.Errorf("ListLevel(optimal + noise) = %v, want Optimal", got)
	}
	bad, _ := LookupName("TLS_RSA_WITH_RC4_128_SHA")
	if got := ListLevel(append([]uint16{opt.ID, bad.ID}, noise...)); got != Vulnerable {
		t.Errorf("ListLevel(optimal + RC4 + noise) = %v, want Vulnerable", got)
	}
}
