package ciphersuite

import (
	"testing"
	"testing/quick"
)

func TestRegistryNonEmpty(t *testing.T) {
	if Count() < 150 {
		t.Fatalf("registry too small: %d suites", Count())
	}
}

func TestLookupKnown(t *testing.T) {
	s, ok := Lookup(0xC02F)
	if !ok {
		t.Fatal("0xC02F not found")
	}
	if s.Name != "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256" {
		t.Fatalf("wrong name %q", s.Name)
	}
	if !s.PFS || !s.AEAD {
		t.Fatal("expected PFS AEAD suite")
	}
	if s.Level() != Optimal {
		t.Fatalf("expected optimal, got %v", s.Level())
	}
}

func TestLookupUnknown(t *testing.T) {
	s, ok := Lookup(0xFFFE)
	if ok {
		t.Fatal("unexpected hit for 0xFFFE")
	}
	if s.ID != 0xFFFE {
		t.Fatalf("placeholder should echo id, got %04x", s.ID)
	}
}

func TestLookupName(t *testing.T) {
	s, ok := LookupName("TLS_RSA_WITH_3DES_EDE_CBC_SHA")
	if !ok || s.ID != 0x000A {
		t.Fatalf("name lookup failed: %v %v", s, ok)
	}
	if _, ok := LookupName("TLS_NOT_A_SUITE"); ok {
		t.Fatal("bogus name resolved")
	}
}

func TestSecurityTaxonomy(t *testing.T) {
	cases := []struct {
		name  string
		level SecurityLevel
		vuln  VulnClass
	}{
		{"TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384", Optimal, VulnNone},
		{"TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256", Optimal, VulnNone},
		{"TLS_AES_128_GCM_SHA256", Optimal, VulnNone},
		// Non-PFS but not broken => suboptimal.
		{"TLS_RSA_WITH_AES_128_GCM_SHA256", Suboptimal, VulnNone},
		{"TLS_RSA_WITH_AES_128_CBC_SHA", Suboptimal, VulnNone},
		// CBC with PFS => suboptimal (not browser-equivalent).
		{"TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA", Suboptimal, VulnNone},
		// MD5 as HMAC is NOT vulnerable per the paper's footnote.
		{"TLS_RSA_WITH_NULL_MD5", Vulnerable, VulnNULL},
		{"TLS_RSA_WITH_RC4_128_MD5", Vulnerable, VulnRC4},
		{"TLS_RSA_WITH_3DES_EDE_CBC_SHA", Vulnerable, Vuln3DES},
		{"TLS_RSA_WITH_DES_CBC_SHA", Vulnerable, VulnDES},
		{"TLS_RSA_EXPORT_WITH_RC2_CBC_40_MD5", Vulnerable, VulnExport},
		{"TLS_DH_anon_WITH_AES_128_CBC_SHA", Vulnerable, VulnAnonKex},
		{"TLS_KRB5_EXPORT_WITH_RC4_40_SHA", Vulnerable, VulnKRB5Export},
		// ECDHE 3DES is vulnerable even though PFS.
		{"TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA", Vulnerable, Vuln3DES},
	}
	for _, c := range cases {
		s, ok := LookupName(c.name)
		if !ok {
			t.Fatalf("%s not registered", c.name)
		}
		if got := s.Level(); got != c.level {
			t.Errorf("%s: level %v want %v", c.name, got, c.level)
		}
		if got := s.VulnClass(); got != c.vuln {
			t.Errorf("%s: vuln %v want %v", c.name, got, c.vuln)
		}
	}
}

func TestSHA1MACNotVulnerable(t *testing.T) {
	// MD5/SHA-1 as HMAC must never be the *reason* a suite is vulnerable.
	s, _ := LookupName("TLS_RSA_WITH_AES_128_CBC_SHA")
	if s.Level() == Vulnerable {
		t.Fatal("SHA-1 HMAC suite wrongly flagged vulnerable")
	}
	s, _ = LookupName("TLS_KRB5_WITH_RC4_128_MD5")
	if s.VulnClass() != VulnRC4 {
		t.Fatalf("vuln should be attributed to RC4, got %v", s.VulnClass())
	}
}

func TestIsGREASE(t *testing.T) {
	grease := []uint16{0x0A0A, 0x1A1A, 0x2A2A, 0x3A3A, 0x4A4A, 0x5A5A, 0x6A6A, 0x7A7A, 0x8A8A, 0x9A9A, 0xAAAA, 0xBABA, 0xCACA, 0xDADA, 0xEAEA, 0xFAFA}
	for _, id := range grease {
		if !IsGREASE(id) {
			t.Errorf("0x%04X should be GREASE", id)
		}
	}
	for _, id := range []uint16{0x0000, 0xC02F, 0x0A1A, 0x1A0A, 0x0B0B, 0xFFFF} {
		if IsGREASE(id) {
			t.Errorf("0x%04X should not be GREASE", id)
		}
	}
}

func TestSCSV(t *testing.T) {
	for _, id := range []uint16{SCSVRenegotiation, SCSVFallback} {
		s, ok := Lookup(id)
		if !ok || !s.IsSCSV() {
			t.Errorf("0x%04X should be a registered SCSV", id)
		}
	}
	s, _ := Lookup(0xC02F)
	if s.IsSCSV() {
		t.Error("real suite misclassified as SCSV")
	}
}

func TestListLevel(t *testing.T) {
	opt := []uint16{0xC02F, 0xC02B}
	if got := ListLevel(opt); got != Optimal {
		t.Errorf("optimal list classified %v", got)
	}
	sub := []uint16{0xC02F, 0x002F}
	if got := ListLevel(sub); got != Suboptimal {
		t.Errorf("suboptimal list classified %v", got)
	}
	vuln := []uint16{0xC02F, 0x000A}
	if got := ListLevel(vuln); got != Vulnerable {
		t.Errorf("vulnerable list classified %v", got)
	}
	// GREASE and SCSV don't affect the level.
	withNoise := []uint16{0x0A0A, SCSVRenegotiation, 0xC02F}
	if got := ListLevel(withNoise); got != Optimal {
		t.Errorf("noisy list classified %v", got)
	}
}

func TestVulnClasses(t *testing.T) {
	ids := []uint16{0x000A, 0x0005, 0xC02F, 0x0019}
	got := VulnClasses(ids)
	want := []VulnClass{Vuln3DES, VulnRC4, VulnExport}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestLowestVulnerableIndex(t *testing.T) {
	if got := LowestVulnerableIndex([]uint16{0xC02F, 0xC02B}); got != -1 {
		t.Errorf("clean list index %d", got)
	}
	if got := LowestVulnerableIndex([]uint16{0x0005, 0xC02F}); got != 0 {
		t.Errorf("want 0 got %d", got)
	}
	if got := LowestVulnerableIndex([]uint16{0xC02F, 0xC013, 0x000A}); got != 2 {
		t.Errorf("want 2 got %d", got)
	}
}

func TestSimilarAlgorithms(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"AES_128_CBC", "AES_256_CBC", true},
		{"AES_128_GCM", "AES_256_GCM", true},
		{"SHA256", "SHA384", true},
		{"SHA", "SHA256", false}, // SHA-1 is not similar to SHA-2
		{"AES_128_CBC", "AES_128_GCM", false},
		{"RC4_128", "RC4_128", true},
		{"RC4_128", "AES_128_CBC", false},
		{"CAMELLIA_128_CBC", "CAMELLIA_256_CBC", true},
	}
	for _, c := range cases {
		if got := SimilarAlgorithms(c.a, c.b); got != c.want {
			t.Errorf("SimilarAlgorithms(%q,%q)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLevelStringAndVulnString(t *testing.T) {
	if Optimal.String() != "optimal" || Suboptimal.String() != "suboptimal" || Vulnerable.String() != "vulnerable" {
		t.Fatal("level strings wrong")
	}
	if Vuln3DES.String() != "3DES" || VulnNone.String() != "-" {
		t.Fatal("vuln strings wrong")
	}
	if SecurityLevel(99).String() == "" || VulnClass(99).String() == "" {
		t.Fatal("out-of-range strings empty")
	}
}

func TestAllSortedAndConsistent(t *testing.T) {
	all := All()
	if len(all) != Count() {
		t.Fatalf("All()=%d Count()=%d", len(all), Count())
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("All() not sorted at %d", i)
		}
	}
	for _, s := range all {
		got, ok := Lookup(s.ID)
		if !ok || got.Name != s.Name {
			t.Fatalf("roundtrip failed for %04x", s.ID)
		}
	}
}

// Property: every registered suite classifies into exactly one level and the
// level is consistent with VulnClass.
func TestPropertyLevelConsistency(t *testing.T) {
	for _, s := range All() {
		lvl := s.Level()
		vc := s.VulnClass()
		if (vc != VulnNone) != (lvl == Vulnerable) {
			t.Errorf("%s: vuln=%v level=%v inconsistent", s.Name, vc, lvl)
		}
	}
}

// Property: Lookup never panics and always echoes the requested ID.
func TestPropertyLookupTotal(t *testing.T) {
	f := func(id uint16) bool {
		s, _ := Lookup(id)
		return s.ID == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: GREASE ids are never registered as real suites.
func TestPropertyGreaseUnregistered(t *testing.T) {
	f := func(id uint16) bool {
		if !IsGREASE(id) {
			return true
		}
		_, ok := Lookup(id)
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ListLevel is order-insensitive.
func TestPropertyListLevelOrderInsensitive(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		rev := make([]uint16, len(raw))
		for i, v := range raw {
			rev[len(raw)-1-i] = v
		}
		return ListLevel(raw) == ListLevel(rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Lookup(uint16(i))
	}
}

func BenchmarkListLevel(b *testing.B) {
	ids := []uint16{0x0A0A, 0xC02B, 0xC02F, 0xC02C, 0xC030, 0xC013, 0xC014, 0x009C, 0x009D, 0x002F, 0x0035, 0x000A, 0x00FF}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ListLevel(ids)
	}
}
