// Package ciphersuite provides an IANA TLS ciphersuite registry with
// component decomposition and the security taxonomy used by the IMC'23
// study "Behind the Scenes": every suite is split into its key-exchange/
// authentication algorithm, cipher algorithm, and MAC algorithm, and is
// classified as Optimal, Suboptimal, or Vulnerable.
//
// The taxonomy follows Section 4.2 of the paper:
//
//   - Optimal: equivalent to a modern web browser in terms of security
//     (ECDHE/DHE forward-secret key exchange with an AEAD cipher).
//   - Suboptimal: non-ideal (e.g. non-PFS key exchange, CBC-mode ciphers)
//     but not vulnerable to known attacks.
//   - Vulnerable: anonymous key exchange, export-grade ciphers, NULL
//     encryption, RC2/RC4, DES and 3DES. MD5 and SHA-1 are NOT considered
//     vulnerable as ciphersuite MACs (HMAC constructions), matching the
//     paper's footnote.
package ciphersuite

import (
	"fmt"
	"sort"
	"strings"
)

// SecurityLevel classifies a ciphersuite per the paper's taxonomy.
type SecurityLevel int

const (
	// Optimal suites match what a modern web browser offers.
	Optimal SecurityLevel = iota
	// Suboptimal suites are non-ideal (non-PFS, CBC) but not broken.
	Suboptimal
	// Vulnerable suites contain a component with known practical attacks.
	Vulnerable
)

// String returns the human-readable level name.
func (l SecurityLevel) String() string {
	switch l {
	case Optimal:
		return "optimal"
	case Suboptimal:
		return "suboptimal"
	case Vulnerable:
		return "vulnerable"
	default:
		return fmt.Sprintf("SecurityLevel(%d)", int(l))
	}
}

// VulnClass identifies the specific vulnerable component family found in a
// suite, mirroring the categories the paper reports (3DES most common, then
// RC4, DES, export-grade, NULL encryption, anonymous key exchange, RC2).
type VulnClass int

const (
	VulnNone VulnClass = iota
	Vuln3DES
	VulnDES
	VulnRC4
	VulnRC2
	VulnNULL
	VulnExport
	VulnAnonKex
	VulnKRB5Export
)

// String returns the short label used in reports (e.g. "3DES", "RC4").
func (v VulnClass) String() string {
	switch v {
	case VulnNone:
		return "-"
	case Vuln3DES:
		return "3DES"
	case VulnDES:
		return "DES"
	case VulnRC4:
		return "RC4"
	case VulnRC2:
		return "RC2"
	case VulnNULL:
		return "NULL"
	case VulnExport:
		return "EXPORT"
	case VulnAnonKex:
		return "ANON"
	case VulnKRB5Export:
		return "KRB5_EXPORT"
	default:
		return fmt.Sprintf("VulnClass(%d)", int(v))
	}
}

// Suite describes one IANA-registered TLS ciphersuite.
type Suite struct {
	// ID is the two-byte IANA codepoint.
	ID uint16
	// Name is the IANA name (TLS_..._WITH_...).
	Name string
	// Kex is the key exchange + authentication component, e.g.
	// "ECDHE_RSA", "RSA", "DH_anon", "KRB5_EXPORT".
	Kex string
	// Cipher is the encryption component, e.g. "AES_128_GCM",
	// "3DES_EDE_CBC", "RC4_128", "NULL".
	Cipher string
	// MAC is the MAC / PRF-hash component, e.g. "SHA256", "SHA", "MD5",
	// or "AEAD" for GCM/CCM/ChaCha suites (the tag is integrated).
	MAC string
	// PFS reports whether the key exchange provides forward secrecy.
	PFS bool
	// AEAD reports whether the cipher is an AEAD construction.
	AEAD bool
	// TLS13 marks TLS 1.3 suites (0x13xx), which name no key exchange.
	TLS13 bool
}

// Level returns the paper's security classification for the suite.
func (s Suite) Level() SecurityLevel {
	if s.VulnClass() != VulnNone {
		return Vulnerable
	}
	if s.TLS13 {
		return Optimal
	}
	if s.PFS && s.AEAD {
		return Optimal
	}
	return Suboptimal
}

// VulnClass returns the vulnerable component family present in the suite,
// or VulnNone. When several apply, key-exchange problems (anon, export)
// dominate cipher problems, matching how the paper attributes fingerprints
// to their most severe component.
func (s Suite) VulnClass() VulnClass {
	switch {
	case strings.Contains(s.Kex, "KRB5_EXPORT"):
		return VulnKRB5Export
	case strings.Contains(s.Kex, "EXPORT") || strings.Contains(s.Cipher, "EXPORT"):
		return VulnExport
	case strings.Contains(s.Kex, "anon"):
		return VulnAnonKex
	case s.Cipher == "NULL":
		return VulnNULL
	case strings.HasPrefix(s.Cipher, "RC2"):
		return VulnRC2
	case strings.HasPrefix(s.Cipher, "RC4"):
		return VulnRC4
	case strings.HasPrefix(s.Cipher, "3DES"):
		return Vuln3DES
	case strings.HasPrefix(s.Cipher, "DES"):
		return VulnDES
	default:
		return VulnNone
	}
}

// Components returns the decomposition used by the semantics-aware
// fingerprint matcher: {kex+auth set member, cipher set member, MAC set
// member}.
func (s Suite) Components() (kex, cipher, mac string) {
	return s.Kex, s.Cipher, s.MAC
}

// IsSCSV reports whether the codepoint is a signalling suite value rather
// than a real ciphersuite (TLS_EMPTY_RENEGOTIATION_INFO_SCSV or
// TLS_FALLBACK_SCSV).
func (s Suite) IsSCSV() bool {
	return s.ID == SCSVRenegotiation || s.ID == SCSVFallback
}

// Signalling suite codepoints.
const (
	SCSVRenegotiation uint16 = 0x00FF
	SCSVFallback      uint16 = 0x5600
)

// IsGREASE reports whether the codepoint is a GREASE value per RFC 8701
// (0xIaIa with Ia in {0A,1A,...,FA}).
func IsGREASE(id uint16) bool {
	hi := byte(id >> 8)
	lo := byte(id)
	return hi == lo && hi&0x0F == 0x0A
}

// registry is keyed by codepoint.
var registry = map[uint16]Suite{}

// byName is keyed by IANA name.
var byName = map[string]Suite{}

func register(id uint16, name, kex, cipher, mac string, pfs, aead, tls13 bool) {
	s := Suite{ID: id, Name: name, Kex: kex, Cipher: cipher, MAC: mac, PFS: pfs, AEAD: aead, TLS13: tls13}
	registry[id] = s
	byName[name] = s
}

// Lookup returns the suite for an IANA codepoint. GREASE values and unknown
// codepoints return a synthesized placeholder with ok=false.
func Lookup(id uint16) (Suite, bool) {
	if s, ok := registry[id]; ok {
		return s, true
	}
	name := fmt.Sprintf("UNKNOWN_0x%04X", id)
	if IsGREASE(id) {
		name = fmt.Sprintf("GREASE_0x%04X", id)
	}
	return Suite{ID: id, Name: name, Kex: "UNKNOWN", Cipher: "UNKNOWN", MAC: "UNKNOWN"}, false
}

// LookupName returns the suite registered under an IANA name.
func LookupName(name string) (Suite, bool) {
	s, ok := byName[name]
	return s, ok
}

// All returns every registered suite sorted by codepoint.
func All() []Suite {
	out := make([]Suite, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Count returns the number of registered suites.
func Count() int { return len(registry) }

// ListLevel classifies a whole proposed ciphersuite list: the worst level of
// any member suite (SCSV and GREASE values are ignored).
func ListLevel(ids []uint16) SecurityLevel {
	level := Optimal
	seen := false
	for _, id := range ids {
		if IsGREASE(id) {
			continue
		}
		s, ok := Lookup(id)
		if s.IsSCSV() {
			continue
		}
		if !ok {
			continue
		}
		seen = true
		if l := s.Level(); l > level {
			level = l
		}
	}
	if !seen {
		return Suboptimal
	}
	return level
}

// VulnClasses returns the distinct vulnerable component families present in
// a proposed list, sorted by their enum order (severity grouping used in
// reports).
func VulnClasses(ids []uint16) []VulnClass {
	set := map[VulnClass]bool{}
	for _, id := range ids {
		if s, ok := Lookup(id); ok {
			if v := s.VulnClass(); v != VulnNone {
				set[v] = true
			}
		}
	}
	out := make([]VulnClass, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LowestVulnerableIndex returns the index of the first (most preferred)
// vulnerable suite in the proposed list, or -1 if none is present.
// Signalling values do not advance the index, matching Appendix B.7 where
// lists led by TLS_EMPTY_RENEGOTIATION_INFO_SCSV are handled specially.
func LowestVulnerableIndex(ids []uint16) int {
	for i, id := range ids {
		if s, ok := Lookup(id); ok && s.Level() == Vulnerable {
			return i
		}
	}
	return -1
}

// SimilarAlgorithms reports whether two cipher or MAC algorithm names are
// "similar" per Appendix B.2: they differ only in key/digest length while
// providing the same construction (AES_128_CBC ~ AES_256_CBC,
// SHA256 ~ SHA384). SHA (SHA-1) is NOT similar to SHA256.
func SimilarAlgorithms(a, b string) bool {
	if a == b {
		return true
	}
	fa, fb := algoFamily(a), algoFamily(b)
	return fa != "" && fa == fb
}

// algoFamily maps an algorithm name to its length-insensitive family, or ""
// when the algorithm has no length-variant family.
func algoFamily(name string) string {
	switch name {
	case "AES_128_CBC", "AES_256_CBC":
		return "AES_CBC"
	case "AES_128_GCM", "AES_256_GCM":
		return "AES_GCM"
	case "AES_128_CCM", "AES_256_CCM", "AES_128_CCM_8":
		return "AES_CCM"
	case "CAMELLIA_128_CBC", "CAMELLIA_256_CBC":
		return "CAMELLIA_CBC"
	case "CAMELLIA_128_GCM", "CAMELLIA_256_GCM":
		return "CAMELLIA_GCM"
	case "ARIA_128_GCM", "ARIA_256_GCM":
		return "ARIA_GCM"
	case "ARIA_128_CBC", "ARIA_256_CBC":
		return "ARIA_CBC"
	case "SHA256", "SHA384", "SHA512":
		return "SHA2"
	default:
		return ""
	}
}
