package cliflags

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestCommonRegisterParsesSharedFlags: values land in the struct, and the
// struct's pre-set values act as defaults.
func TestCommonRegisterParsesSharedFlags(t *testing.T) {
	c := Common{Seed: 7, Scale: 0.3, Timeout: 5 * time.Second}
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{"-seed", "42", "-scale", "1.5", "-workers", "8"}); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 42 || c.Scale != 1.5 || c.Workers != 8 {
		t.Fatalf("parsed %+v", c)
	}
	if c.Timeout != 5*time.Second {
		t.Fatalf("unset flag lost its default: %v", c.Timeout)
	}
}

// TestRegisterIsIdenticalAcrossCommands: two commands registering Common
// with different defaults still declare the same flag names and usage
// strings — the point of sharing the declarations.
func TestRegisterIsIdenticalAcrossCommands(t *testing.T) {
	a, b := Common{Scale: 1.0}, Common{Scale: 0.3}
	fsA := flag.NewFlagSet("a", flag.ContinueOnError)
	fsB := flag.NewFlagSet("b", flag.ContinueOnError)
	a.Register(fsA)
	b.Register(fsB)
	for _, name := range []string{"seed", "scale", "workers", "timeout"} {
		fa, fb := fsA.Lookup(name), fsB.Lookup(name)
		if fa == nil || fb == nil {
			t.Fatalf("flag -%s missing", name)
		}
		if fa.Usage != fb.Usage {
			t.Errorf("-%s usage diverged: %q vs %q", name, fa.Usage, fb.Usage)
		}
	}
}

// TestObsSetupOffIsAllNil: with every flag off both handles are nil (the
// zero-cost path) and flush is a safe no-op.
func TestObsSetupOffIsAllNil(t *testing.T) {
	var o Obs
	tracer, registry, flush, err := o.Setup("test")
	if err != nil {
		t.Fatal(err)
	}
	if tracer != nil || registry != nil {
		t.Fatalf("handles not nil with observability off: %v %v", tracer, registry)
	}
	flush()
}

// TestObsSetupWritesMetricsFile: -metrics dumps a parseable exposition.
func TestObsSetupWritesMetricsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.txt")
	o := Obs{Trace: true, Metrics: path}
	tracer, registry, flush, err := o.Setup("test")
	if err != nil {
		t.Fatal(err)
	}
	if tracer == nil || registry == nil {
		t.Fatal("handles nil with flags on")
	}
	registry.Counter("things_total").Add(3)
	sp := tracer.Root().Child("work")
	sp.End()
	flush()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := obs.ParseText(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.SumSeries(samples, "test_things_total"); got != 3 {
		t.Fatalf("things_total = %v, want 3", got)
	}
}

// TestObsSetupServesDebug: -pprof with port 0 binds, serves /metrics, and
// flush shuts the server down.
func TestObsSetupServesDebug(t *testing.T) {
	o := Obs{Pprof: "127.0.0.1:0"}
	_, registry, flush, err := o.Setup("test")
	if err != nil {
		t.Fatal(err)
	}
	defer flush()
	if registry == nil {
		t.Fatal("registry nil with -pprof set")
	}
	registry.Counter("served_total").Inc()
	// The bound address is printed, not returned; hitting the listener is
	// covered by the obs package tests — here it is enough that Setup
	// succeeded and produced a working registry.
	var sb strings.Builder
	if err := registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test_served_total 1") {
		t.Fatalf("exposition missing counter:\n%s", sb.String())
	}
}
