// Package cliflags holds the flag declarations shared by the study's
// commands (iotls, iotprobe, ctquery), so -seed, -scale, -workers, and
// -timeout mean the same thing — same name, same type, same help text —
// everywhere. Per-command defaults stay with the command: Register reads
// the struct's current values as the flag defaults.
//
// Obs bundles the observability flags (-trace, -metrics, -pprof) and
// turns them into an obs.Tracer / obs.Registry pair plus a flush function
// that emits the span tree and metrics exposition at exit.
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
)

// SignalContext derives the command's root context, cancelled on the
// first SIGINT (Ctrl-C) or SIGTERM (process managers, CI, kubelet). All
// commands use it so graceful cancellation means the same thing
// everywhere: stop starting work, drain what's in flight, print the
// partial summary, exit through the normal path. A second signal
// hard-kills via Go's default handling once stop() has run.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Common is the flag set every command shares. Fill in the command's
// defaults before calling Register.
type Common struct {
	// Seed drives every random decision (dataset + world).
	Seed int64
	// Scale multiplies the device population (1.0 = paper scale).
	Scale float64
	// Workers bounds the worker pools; 0 means GOMAXPROCS.
	Workers int
	// Timeout bounds one attempt (probing) or the whole verification
	// phase (ctquery); 0 means the engine default / no bound.
	Timeout time.Duration
}

// Register declares the shared flags on fs with c's current values as
// defaults. The flag names and help strings are identical across
// commands by construction.
func (c *Common) Register(fs *flag.FlagSet) {
	fs.Int64Var(&c.Seed, "seed", c.Seed, "random seed for dataset and world generation")
	fs.Float64Var(&c.Scale, "scale", c.Scale, "population scale (1.0 = paper scale)")
	fs.IntVar(&c.Workers, "workers", c.Workers, "worker pool size (0 = GOMAXPROCS; results are identical for any value)")
	fs.DurationVar(&c.Timeout, "timeout", c.Timeout, "per-attempt timeout (0 = default)")
}

// Obs is the observability flag set: tracing, metrics exposition, and a
// debug server with pprof.
type Obs struct {
	// Trace prints the hierarchical span tree to stderr at exit.
	Trace bool
	// Metrics names a file that receives the Prometheus-text exposition
	// at exit; "-" writes to stderr.
	Metrics string
	// Pprof is a listen address (e.g. "localhost:6060") serving
	// /metrics, /metrics.json, /debug/vars, and /debug/pprof/ while the
	// command runs.
	Pprof string
}

// Register declares -trace, -metrics, and -pprof on fs.
func (o *Obs) Register(fs *flag.FlagSet) {
	fs.BoolVar(&o.Trace, "trace", o.Trace, "print the stage span tree to stderr at exit")
	fs.StringVar(&o.Metrics, "metrics", o.Metrics, `write the Prometheus-text metrics exposition to this file at exit ("-" = stderr)`)
	fs.StringVar(&o.Pprof, "pprof", o.Pprof, "serve /metrics and /debug/pprof on this address while running (e.g. localhost:6060)")
}

// Setup turns the parsed flags into observability handles. The returned
// tracer and registry are nil when the corresponding flags are off, so
// passing them straight into core.Config keeps the zero-cost path.
// flush emits the span tree and the metrics exposition and shuts the
// debug server down; call it once, after the work (it is safe when both
// handles are nil). name labels the tracer root and the expvar
// publication.
func (o *Obs) Setup(name string) (tracer *obs.Tracer, registry *obs.Registry, flush func(), err error) {
	if o.Trace {
		tracer = obs.NewTracer(name)
	}
	if o.Metrics != "" || o.Pprof != "" {
		registry = obs.NewRegistry(name)
	}
	var closeSrv func()
	if o.Pprof != "" {
		registry.PublishExpvar(name)
		srv, addr, serr := obs.ServeDebug(o.Pprof, registry)
		if serr != nil {
			return nil, nil, nil, fmt.Errorf("cliflags: -pprof %s: %w", o.Pprof, serr)
		}
		fmt.Fprintf(os.Stderr, "%s: debug server on http://%s/ (metrics, pprof)\n", name, addr)
		closeSrv = func() { srv.Close() }
	}
	flush = func() {
		if tracer != nil {
			tracer.WriteTree(os.Stderr)
		}
		if o.Metrics != "" {
			if err := writeMetrics(o.Metrics, registry); err != nil {
				fmt.Fprintf(os.Stderr, "%s: -metrics: %v\n", name, err)
			}
		}
		if closeSrv != nil {
			closeSrv()
		}
	}
	return tracer, registry, flush, nil
}

// writeMetrics dumps the exposition to path ("-" = stderr).
func writeMetrics(path string, r *obs.Registry) error {
	var w io.Writer = os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return r.WritePrometheus(w)
}
