// Package simnet is the simulated Internet for the server-side half of
// the study: a registry of TLS servers keyed by SNI, each presenting a
// real X.509 chain minted by internal/pki with the issuer, validity,
// chain-style, CDN, and reachability behaviour the paper observed in the
// wild. Probing happens over genuine crypto/tls handshakes (net.Pipe), so
// the certificate-collection pipeline exercises exactly the code path a
// live prober would.
//
// World construction is deterministic given a seed: vendor-owned domains
// are signed by the vendor's private CA or by a weighted mix of public
// trust CAs (DigiCert heaviest, as in Figure 5); Netflix gets its bimodal
// validity (30–396 days chained to a public root vs 8,150-day self-built
// chains); a handful of domains serve long-expired certificates
// (skyegloup.com, wink.com); a2.tuyaus.com omits its hostname from the
// certificate; CDN domains present vantage-specific certificates; and a
// small fraction of servers are unreachable (the paper lost 43 of 1,194).
package simnet

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/ctlog"
	"repro/internal/dataset"
	"repro/internal/pki"
)

// Vantage is a probing location (the paper used New York, Frankfurt,
// Singapore).
type Vantage string

// The three vantages of Section 5.1.
const (
	VantageNewYork   Vantage = "new-york"
	VantageFrankfurt Vantage = "frankfurt"
	VantageSingapore Vantage = "singapore"
)

// Vantages lists all probing locations.
func Vantages() []Vantage {
	return []Vantage{VantageNewYork, VantageFrankfurt, VantageSingapore}
}

// Server is one TLS endpoint (an FQDN) in the simulated Internet.
type Server struct {
	// FQDN of the server.
	FQDN string
	// SLD is the second-level domain.
	SLD string
	// OwnerVendor is the device vendor owning the domain ("" for
	// third-party services).
	OwnerVendor string
	// IssuerOrg of the leaf certificate.
	IssuerOrg string
	// IssuerKind classifies the issuer.
	IssuerKind pki.CAKind
	// Leaf is the leaf certificate (shared across FQDNs in a cert group).
	Leaf pki.Certificate
	// Chain is the presented chain at the default vantage.
	Chain pki.Chain
	// VantageChains overrides the chain per vantage for CDN domains.
	VantageChains map[Vantage]pki.Chain
	// VantageLeaves holds the matching leaf (with key) per vantage.
	VantageLeaves map[Vantage]pki.Certificate
	// IPs the server resolves to (cert-sharing analysis, Section 5.1).
	IPs []string
	// Unreachable servers fail to handshake (the 43 lost SNIs).
	Unreachable bool
	// InCT reports whether the leaf was submitted to the CT log.
	InCT bool
	// Stack is the server-side TLS implementation model answering
	// handshakes (seeded per owning vendor; see serverstack.go).
	Stack *ServerStack
}

// ChainAt returns the chain presented to a vantage.
func (s *Server) ChainAt(v Vantage) pki.Chain {
	if c, ok := s.VantageChains[v]; ok {
		return c
	}
	return s.Chain
}

// World is the simulated Internet.
type World struct {
	// Seed the world was built with (drives server-stack assignment).
	Seed int64
	// Servers by FQDN.
	Servers map[string]*Server
	// CAs by organization name.
	CAs map[string]*pki.CA
	// Stores is the Mozilla/Apple/Microsoft root program set.
	Stores *pki.StoreSet
	// Log is the CT log.
	Log *ctlog.Log
	// Validator over the store set with all public intermediates known.
	Validator *pki.Validator
	// ProbeTime is the virtual "April 2022" probing instant.
	ProbeTime time.Time
	// AsOf is the firmware-drift evaluation date backend stacks were
	// assigned at (zero = the paper era; see stackForAsOf).
	AsOf time.Time
	// CaptureWindow bounds of the ClientHello dataset, for the
	// expired-during-capture analysis (Table 8).
	CaptureStart, CaptureEnd time.Time
	// faults is the optional deterministic fault-injection layer
	// (SetFaults / ClearFaults).
	faults *faultState
}

// Config parameterizes world construction.
type Config struct {
	// Seed drives deterministic assignment.
	Seed int64
	// SNIs to host. Usually dataset.SNIsByMinUsers(3).
	SNIs []string
	// ProbeTime defaults to 2022-04-15 (the paper probed in April 2022).
	ProbeTime time.Time
	// AsOf evaluates backend firmware drift at a virtual date: server
	// stacks walk their upgrade chains (stackForAsOf) when the date is
	// past the drift window start. Zero keeps the paper-era assignment.
	AsOf time.Time
	// Faults optionally installs deterministic fault injection on the
	// probe path (equivalent to calling SetFaults after Build).
	Faults *Faults
}

// publicCAWeights drives the Figure 5 issuer distribution (DigiCert signs
// ~47% of leaves).
var publicCAWeights = []struct {
	org    string
	weight int
}{
	{"DigiCert", 47},
	{"Amazon", 9},
	{"Google Trust Services", 8},
	{"Let's Encrypt", 7},
	{"Sectigo", 5},
	{"GoDaddy", 4},
	{"GlobalSign", 3},
	{"Microsoft Corporation", 3},
	{"Apple", 2},
	{"Entrust", 2},
	{"Cloudflare", 2},
	{"COMODO", 2},
	{"VeriSign", 1},
	{"Gandi", 1},
	{"Starfield", 1},
	{"Baltimore", 1},
	{"IdenTrust", 1},
}

// privateCAOf maps a device vendor to the private-CA organization that
// signs its domains (the 16 vendor CAs of Section 5.2, plus Netflix which
// is private but not a device vendor).
var privateCAOf = map[string]string{
	"Roku":         "Roku",
	"Samsung":      "Samsung Electronics",
	"Nintendo":     "Nintendo",
	"Sony":         "Sony Computer Entertainment",
	"Tesla":        "Tesla Motor Services",
	"Sense":        "Sense Labs",
	"DirecTV":      "ATT Mobility and Entertainment",
	"LG":           "LG Electronics",
	"Canary":       "Canary Connect",
	"Philips":      "Philips",
	"Obihai":       "Obihai Technology",
	"Dish Network": "EchoStar",
	"Tuya":         "Tuya",
	"ecobee":       "ecobee",
}

// sldCAOverrides pins specific SLDs to issuers regardless of the owning
// vendor's default (nest.com is Nest Labs although the devices are
// Google's; ueiwsp.com is Universal Electronics although visited by
// Samsung devices; Netflix domains are Netflix's own CA).
var sldCAOverrides = map[string]string{
	"nest.com":       "Nest Labs",
	"ueiwsp.com":     "Universal Electronics",
	"netflix.com":    "Netflix",
	"netflix.net":    "Netflix",
	"meethue.com":    "Philips",
	"canaryis.com":   "Canary Connect",
	"obitalk.com":    "Obihai Technology",
	"dishaccess.tv":  "EchoStar",
	"dtvce.com":      "ATT Mobility and Entertainment",
	"tesla.services": "Tesla Motor Services",
	"sense.com":      "Sense Labs",
	"ecobee.com":     "ecobee",
	// Samsung signs most of its own operational domains...
	"samsungcloudsolution.net": "Samsung Electronics",
	"samsungcloudsolution.com": "Samsung Electronics",
	"samsungrm.net":            "Samsung Electronics",
	"samsunghrm.com":           "Samsung Electronics",
	"samsungelectronics.com":   "Samsung Electronics",
	"pavv.co.kr":               "Samsung Electronics",
	// ...but samsungotn.net via a public CA (mixed, as in Figure 5).
	"samsungotn.net":               "DigiCert",
	"roku.com":                     "Roku",
	"rokutime.com":                 "Roku",
	"nintendo.net":                 "Nintendo",
	"playstation.net":              "Sony Computer Entertainment",
	"sonyentertainmentnetwork.com": "Sony Computer Entertainment",
	"lgtvsdp.com":                  "LG Electronics",
	"tuyaus.com":                   "Tuya",
	"tuyacn.com":                   "Tuya",
	// Expired-certificate domains keep their paper issuers.
	"skyegloup.com": "Gandi",
	"wink.com":      "COMODO",
}

// privateValidityDays reproduces the extreme validity periods of
// Section 5.4 footnote 6 (days).
var privateValidityDays = map[string]int{
	"Tuya":                           36500, // 100 years
	"Samsung Electronics":            25202, // 69 years
	"EchoStar":                       24855,
	"Universal Electronics":          21946,
	"Nintendo":                       9300,
	"Roku":                           5000, // >13 years (Section 6.1)
	"Sony Computer Entertainment":    7233,
	"Tesla Motor Services":           7300,
	"Nest Labs":                      7300,
	"Sense Labs":                     9000,
	"ATT Mobility and Entertainment": 8000,
	"LG Electronics":                 7900,
	"Canary Connect":                 9125,
	"Philips":                        7400,
	"Obihai Technology":              10950,
	"ecobee":                         9600,
	"Netflix":                        8150, // the appboot.netflix.com chain
}

// expiredSLDs maps domains to their long-past NotAfter dates (Table 8).
var expiredSLDs = map[string]time.Time{
	"skyegloup.com": time.Date(2018, 7, 31, 0, 0, 0, 0, time.UTC),
	"wink.com":      time.Date(2019, 4, 17, 0, 0, 0, 0, time.UTC),
}

// cdnSLDs present vantage-specific certificates.
var cdnSLDs = map[string]bool{
	"cloudfront.net":  true,
	"akamaized.net":   true,
	"fastly.net":      true,
	"googlevideo.com": true,
	"nflxvideo.net":   true,
	"gstatic.com":     true,
	"ytimg.com":       true,
}

// Build constructs the world for the SNI set.
func Build(cfg Config) *World {
	if cfg.ProbeTime.IsZero() {
		cfg.ProbeTime = time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		Seed:         cfg.Seed,
		AsOf:         cfg.AsOf,
		Servers:      map[string]*Server{},
		CAs:          map[string]*pki.CA{},
		Stores:       pki.NewStoreSet(),
		Log:          ctlog.New("repro-ct", func() time.Time { return cfg.ProbeTime }),
		ProbeTime:    cfg.ProbeTime,
		CaptureStart: time.Date(2019, 4, 29, 0, 0, 0, 0, time.UTC),
		CaptureEnd:   time.Date(2020, 8, 1, 0, 0, 0, 0, time.UTC),
	}
	caBirth := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)

	// Public trust CAs, rooted in all three programs.
	for _, spec := range publicCAWeights {
		ca := pki.NewCA(spec.org, pki.PublicTrustCA, caBirth, 30, 1)
		w.CAs[spec.org] = ca
		w.Stores.AddPublicRoot(ca)
	}
	// Private CAs (device vendors + Netflix + Nest Labs + UEI).
	privateOrgs := map[string]bool{}
	for _, org := range privateCAOf {
		privateOrgs[org] = true
	}
	privateOrgs["Netflix"] = true
	privateOrgs["Nest Labs"] = true
	privateOrgs["Universal Electronics"] = true
	for org := range privateOrgs {
		w.CAs[org] = pki.NewCA(org, pki.PrivateCA, caBirth, 100, 1)
	}
	// Netflix also operates a public-rooted intermediate for its
	// short-lived leaves: "Netflix Public SHA2 RSA CA 3" chaining to the
	// VeriSign public root (Table 9).
	netflixPub := pki.NewSubCA("Netflix", pki.PrivateCA, w.CAs["VeriSign"], caBirth, 25)
	w.CAs["Netflix-public-chain"] = netflixPub

	w.Validator = pki.NewValidator(w.Stores)
	for org, ca := range w.CAs {
		if ca.Kind == pki.PublicTrustCA || org == "Netflix-public-chain" {
			w.Validator.AddKnownCA(ca)
		}
	}

	// Vendor ownership of SLDs.
	ownerOf := map[string]string{}
	vendorOf := dataset.VendorByName()
	for _, v := range dataset.Vendors() {
		for _, sld := range v.SLDs {
			ownerOf[sld.Name] = v.Name
		}
	}

	// Group SNIs by SLD, then carve cert groups within each SLD.
	bySLD := map[string][]string{}
	for _, sni := range cfg.SNIs {
		sld := SLDOf(sni)
		bySLD[sld] = append(bySLD[sld], sni)
	}
	slds := make([]string, 0, len(bySLD))
	for sld := range bySLD {
		slds = append(slds, sld)
	}
	sort.Strings(slds)

	for _, sld := range slds {
		snis := bySLD[sld]
		sort.Strings(snis)
		owner := ownerOf[sld]
		issuerOrg := w.issuerForSLD(sld, owner, vendorOf, rng)
		w.buildSLDServers(sld, snis, owner, issuerOrg, rng)
	}
	if cfg.Faults != nil {
		w.SetFaults(*cfg.Faults)
	}
	return w
}

// issuerForSLD picks the leaf issuer organization for a domain.
func (w *World) issuerForSLD(sld, owner string, vendors map[string]dataset.VendorProfile, rng *rand.Rand) string {
	if org, ok := sldCAOverrides[sld]; ok {
		return org
	}
	if owner != "" {
		v := vendors[owner]
		if v.OnlyPrivateCA {
			return privateCAOf[owner]
		}
		if v.PrivateCA {
			// Vendor CAs sign a deterministic subset of their own domains
			// (the rest go to public CAs, as in Figure 5's mixed columns).
			if org, ok := privateCAOf[owner]; ok && hashOf(sld)%5 == 0 {
				return org
			}
		}
	}
	// Weighted public CA draw, deterministic per SLD.
	total := 0
	for _, s := range publicCAWeights {
		total += s.weight
	}
	pick := int(hashOf(sld) % uint64(total))
	for _, s := range publicCAWeights {
		pick -= s.weight
		if pick < 0 {
			return s.org
		}
	}
	return "DigiCert"
}

// buildSLDServers mints cert groups and server entries for one SLD.
func (w *World) buildSLDServers(sld string, snis []string, owner, issuerOrg string, rng *rand.Rand) {
	ca := w.CAs[issuerOrg]
	if ca == nil {
		ca = w.CAs["DigiCert"]
		issuerOrg = "DigiCert"
	}
	// Netflix bimodality: netflix.com/netflix.net FQDNs split between the
	// self-built 8,150-day chain and 30–396-day public-rooted leaves.
	isNetflix := issuerOrg == "Netflix"

	// The Tuya CN/SAN mismatch: the first tuyaus.com host serves a
	// vendor-signed certificate naming neither its CN nor SAN (the
	// a2.tuyaus.com case of Section 5.3).
	if sld == "tuyaus.com" && len(snis) > 0 {
		mismatchHost := snis[0]
		snis = snis[1:]
		validity := w.validityFor(issuerOrg, sld, rng)
		notBefore := w.certNotBefore(sld, validity, rng)
		leaf := ca.IssueSelfSignedLeaf(pki.LeafSpec{
			CommonName: "tuya-iot-device",
			Org:        orgLabel(owner, issuerOrg),
			NotBefore:  notBefore,
			NotAfter:   notBefore.AddDate(0, 0, validity),
		})
		w.Servers[mismatchHost] = &Server{
			FQDN:        mismatchHost,
			SLD:         sld,
			OwnerVendor: owner,
			IssuerOrg:   issuerOrg,
			IssuerKind:  ca.Kind,
			Leaf:        leaf,
			Chain:       ca.BuildChain(leaf, pki.ChainLeafOnly),
			IPs:         w.ipsFor(mismatchHost, rng),
			Stack:       stackForAsOf(w.Seed, owner, sld, w.AsOf),
		}
	}

	// Carve the FQDNs into certificate groups (wildcard/SAN sharing).
	for start := 0; start < len(snis); {
		groupSize := 1 + rng.Intn(8)
		if groupSize > len(snis)-start {
			groupSize = len(snis) - start
		}
		group := snis[start : start+groupSize]
		start += groupSize

		groupCA := ca
		validity := w.validityFor(issuerOrg, sld, rng)
		netflixPublicChain := false
		if isNetflix && rng.Intn(2) == 0 {
			groupCA = w.CAs["Netflix-public-chain"]
			validity = []int{30, 31, 32, 33, 34, 36, 396}[rng.Intn(7)]
			netflixPublicChain = true
		}

		notBefore := w.certNotBefore(sld, validity, rng)
		spec := pki.LeafSpec{
			CommonName: group[0],
			DNSNames:   append([]string(nil), group...),
			Org:        orgLabel(owner, issuerOrg),
			NotBefore:  notBefore,
			NotAfter:   notBefore.AddDate(0, 0, validity),
		}
		// The Tuya CN/SAN mismatch: a2.tuyaus.com serves a certificate
		// that names neither the host's CN nor SAN.
		if sld == "tuyaus.com" && strings.HasPrefix(group[0], "a2.") {
			spec.CommonName = "tuya-iot-device"
			spec.DNSNames = nil
		}

		style, selfSigned := w.chainStyleFor(groupCA, sld, rng)
		if netflixPublicChain {
			// Short-lived Netflix leaves present a valid chain to the
			// trusted public root (Table 9).
			style, selfSigned = pki.ChainNoRoot, false
		}
		var leaf pki.Certificate
		if selfSigned {
			leaf = groupCA.IssueSelfSignedLeaf(spec)
		} else {
			leaf = groupCA.IssueLeaf(spec)
		}
		chain := groupCA.BuildChain(leaf, style)

		// CT submission: public CAs log (with 8 deterministic misses
		// across the world); private CAs never do, and neither do the
		// Netflix public-chain leaves (Section 5.4).
		inCT := false
		if groupCA.Kind == pki.PublicTrustCA && !netflixPublicChain && issuerOrg != "Netflix" {
			if !w.ctSkip(issuerOrg, group[0]) {
				w.Log.Submit(leaf.Cert)
				inCT = true
			}
		}

		ips := w.ipsFor(group[0], rng)
		for _, fqdn := range group {
			srv := &Server{
				FQDN:        fqdn,
				SLD:         sld,
				OwnerVendor: owner,
				IssuerOrg:   issuerOrg,
				IssuerKind:  groupCA.Kind,
				Leaf:        leaf,
				Chain:       chain,
				IPs:         ips,
				Unreachable: hashOf("reach:"+fqdn)%28 == 0, // ~3.6%
				InCT:        inCT,
				Stack:       stackForAsOf(w.Seed, owner, sld, w.AsOf),
			}
			if netflixPublicChain {
				srv.IssuerKind = pki.PrivateCA // leaf issuer is Netflix itself
			}
			// CDN domains present a distinct certificate per vantage.
			if cdnSLDs[sld] && hashOf("cdn:"+fqdn)%3 == 0 {
				srv.VantageChains = map[Vantage]pki.Chain{}
				srv.VantageLeaves = map[Vantage]pki.Certificate{}
				for _, v := range Vantages()[1:] {
					alt := groupCA.IssueLeaf(spec)
					srv.VantageChains[v] = groupCA.BuildChain(alt, style)
					srv.VantageLeaves[v] = alt
					if groupCA.Kind == pki.PublicTrustCA {
						w.Log.Submit(alt.Cert)
					}
				}
			}
			w.Servers[fqdn] = srv
		}
	}
}

// validityFor picks the leaf validity period in days.
func (w *World) validityFor(issuerOrg, sld string, rng *rand.Rand) int {
	if days, ok := privateValidityDays[issuerOrg]; ok {
		// Samsung and Nintendo have two tiers in footnote 6.
		switch issuerOrg {
		case "Samsung Electronics":
			if rng.Intn(2) == 0 {
				return 10950
			}
		case "Nintendo":
			if rng.Intn(2) == 0 {
				return 7233
			}
		}
		return days
	}
	if issuerOrg == "Let's Encrypt" {
		return 90
	}
	// Public CAs: 90–825 days, clustered near 365–398.
	choices := []int{90, 180, 365, 365, 397, 398, 398, 730, 825}
	return choices[rng.Intn(len(choices))]
}

// certNotBefore places the validity window: expired domains anchor on
// their Table 8 dates; everything else is issued before the probe.
func (w *World) certNotBefore(sld string, validityDays int, rng *rand.Rand) time.Time {
	if expiry, ok := expiredSLDs[sld]; ok {
		return expiry.AddDate(0, 0, -validityDays)
	}
	// Issue 10–60% of the validity period before the probe time.
	frac := 0.1 + 0.5*rng.Float64()
	back := time.Duration(float64(validityDays) * frac * 24 * float64(time.Hour))
	return w.ProbeTime.Add(-back)
}

// chainStyleFor picks how the server presents its chain.
func (w *World) chainStyleFor(ca *pki.CA, sld string, rng *rand.Rand) (pki.ChainStyle, bool) {
	if ca.Kind == pki.PublicTrustCA {
		// Most public-CA servers send leaf+intermediate; a few send only
		// the leaf (incomplete chain).
		if hashOf("style:"+sld)%12 == 0 {
			return pki.ChainLeafOnly, false
		}
		return pki.ChainNoRoot, false
	}
	// Private CAs: the Table 7/14 mix of chain lengths 1, 2, 3 and
	// self-signed presentations.
	switch {
	case sld == "samsunghrm.com":
		return pki.ChainDuplicatedLeaf, true
	case sld == "ueiwsp.com" || sld == "dishaccess.tv" || sld == "tuyaus.com":
		return pki.ChainLeafOnly, true
	default:
		switch hashOf("pstyle:"+sld) % 3 {
		case 0:
			return pki.ChainLeafOnly, false
		case 1:
			return pki.ChainNoRoot, false
		default:
			return pki.ChainFull, false
		}
	}
}

// ctSkip marks the 8 public-CA certificates that never appear in CT
// (4 Microsoft, 2 Apple, 1 Sectigo, 1 DigiCert).
func (w *World) ctSkip(issuerOrg, firstFQDN string) bool {
	switch issuerOrg {
	case "Microsoft Corporation":
		return hashOf("ctskip:"+firstFQDN)%3 == 0
	case "Apple":
		return hashOf("ctskip:"+firstFQDN)%3 == 0
	case "Sectigo", "DigiCert":
		return hashOf("ctskip:"+firstFQDN)%40 == 0
	default:
		return false
	}
}

// ipsFor assigns server IPs (64.96% of certs span multiple IPs; CDN certs
// span many).
func (w *World) ipsFor(fqdn string, rng *rand.Rand) []string {
	n := 1
	switch r := rng.Float64(); {
	case r < 0.35:
		n = 1
	case r < 0.80:
		n = 2 + rng.Intn(6)
	case r < 0.97:
		n = 8 + rng.Intn(20)
	default:
		n = 40 + rng.Intn(54) // the max-93 tail
	}
	h := hashOf("ip:" + fqdn)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("%d.%d.%d.%d",
			10+int(h>>24&0x3F), int(h>>16&0xFF), int(h>>8&0xFF), (int(h)&0xFF+i)%256))
	}
	return out
}

// orgLabel is the subject organization on leaves.
func orgLabel(owner, issuerOrg string) string {
	if owner != "" {
		return owner
	}
	return issuerOrg
}

// SLDOf extracts the second-level domain of an FQDN (handling the
// multi-label public suffixes appearing in the dataset, e.g. co.kr).
func SLDOf(fqdn string) string {
	parts := strings.Split(fqdn, ".")
	if len(parts) <= 2 {
		return fqdn
	}
	// Two-label suffixes seen in the dataset.
	last2 := strings.Join(parts[len(parts)-2:], ".")
	switch last2 {
	case "co.kr", "co.uk", "com.cn", "ntp.org":
		if len(parts) >= 3 {
			return strings.Join(parts[len(parts)-3:], ".")
		}
	}
	return last2
}

// hashOf is a deterministic 64-bit hash for assignment decisions.
func hashOf(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
