package simnet

import (
	"context"
	"testing"

	"repro/internal/tlswire"
)

func stackTestWorld(t *testing.T) *World {
	t.Helper()
	return Build(Config{Seed: 42, SNIs: []string{
		"api.roku.com", "scribe.logs.roku.com", "time.samsungcloudsolution.com",
		"lcprd1.samsungcloudsolution.net", "api.sense.com", "cdn.fastly.net",
		"ocsp.digicert.com", "a2.tuyaus.com", "m2.tuyaus.com",
	}})
}

func TestEveryServerHasStack(t *testing.T) {
	w := stackTestWorld(t)
	for fqdn, srv := range w.Servers {
		if srv.Stack == nil {
			t.Fatalf("server %s has no stack model", fqdn)
		}
	}
}

func TestStackAssignmentVendorCoherentAndSeeded(t *testing.T) {
	w := stackTestWorld(t)
	byVendor := map[string]string{}
	for fqdn, srv := range w.Servers {
		if srv.OwnerVendor == "" {
			continue
		}
		if prev, ok := byVendor[srv.OwnerVendor]; ok && prev != srv.Stack.Name {
			t.Fatalf("vendor %s runs both %s and %s (at %s)", srv.OwnerVendor, prev, srv.Stack.Name, fqdn)
		}
		byVendor[srv.OwnerVendor] = srv.Stack.Name
	}
	// Same seed reproduces the assignment exactly.
	w2 := stackTestWorld(t)
	for fqdn, srv := range w.Servers {
		if got := w2.Servers[fqdn].Stack.Name; got != srv.Stack.Name {
			t.Fatalf("stack for %s changed across identical builds: %s vs %s", fqdn, srv.Stack.Name, got)
		}
	}
}

func TestStackAssignmentCoversModels(t *testing.T) {
	// Across a modest synthetic SLD population, every modeled stack must
	// be reachable by assignment — otherwise the confusion matrix has
	// dead rows.
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		st := stackFor(1, "", string(rune('a'+i%26))+"x"+string(rune('0'+i/26))+".example")
		seen[st.Name] = true
	}
	for _, st := range ServerStacks() {
		if !seen[st.Name] {
			t.Errorf("stack %s never assigned across 64 domains", st.Name)
		}
	}
}

func TestEvidenceHelloAcceptedByAllStacks(t *testing.T) {
	// The passive probe path annotates chains with stack evidence; that
	// only works if no modeled stack refuses the canonical hello.
	for _, st := range ServerStacks() {
		sh, alert := st.Respond(evidenceHello)
		if alert != nil {
			t.Fatalf("%s refuses the evidence hello: %v", st.Name, alert)
		}
		if sh.CipherSuite == 0 {
			t.Fatalf("%s selected no cipher", st.Name)
		}
	}
}

func TestRespondSelectionPolicies(t *testing.T) {
	baseline := newEvidenceHello()
	reversed := newEvidenceHello()
	for i, j := 0, len(reversed.CipherSuites)-1; i < j; i, j = i+1, j-1 {
		reversed.CipherSuites[i], reversed.CipherSuites[j] = reversed.CipherSuites[j], reversed.CipherSuites[i]
	}
	wolf := ServerStackByName("wolfssl")
	shA, _ := wolf.Respond(baseline)
	shB, _ := wolf.Respond(reversed)
	if shA.CipherSuite == shB.CipherSuite {
		t.Fatalf("client-order stack ignored the client's order: %04x both ways", shA.CipherSuite)
	}
	ossl := ServerStackByName("openssl-1.0.2")
	shA, _ = ossl.Respond(baseline)
	shB, _ = ossl.Respond(reversed)
	if shA.CipherSuite != shB.CipherSuite {
		t.Fatalf("server-order stack followed the client's order: %04x vs %04x", shA.CipherSuite, shB.CipherSuite)
	}
}

func TestRespondVersionNegotiation(t *testing.T) {
	tls13 := newEvidenceHello()
	tls13.CipherSuites = append([]uint16{0x1301, 0x1302, 0x1303}, tls13.CipherSuites...)
	tls13.Extensions = append(tls13.Extensions, tlswire.Extension{
		Type: tlswire.ExtSupportedVersions, Data: []byte{4, 0x03, 0x04, 0x03, 0x03},
	})
	ssl3 := &tlswire.ClientHello{
		LegacyVersion:      tlswire.VersionSSL30,
		CipherSuites:       []uint16{0x0035, 0x002F, 0x000A},
		CompressionMethods: []byte{0},
	}

	for _, tc := range []struct {
		stack       string
		wantTLS13   bool
		wantSSL3Err bool
	}{
		{"openssl-1.1.1", true, true},
		{"gotls", true, true},
		{"openssl-1.0.2", false, false},
		{"embedded-legacy", false, false},
	} {
		st := ServerStackByName(tc.stack)
		sh, alert := st.Respond(tls13)
		if alert != nil {
			t.Fatalf("%s refused the 1.3 hello: %v", tc.stack, alert)
		}
		got13 := sh.SelectedVersion() == tlswire.VersionTLS13
		if got13 != tc.wantTLS13 {
			t.Errorf("%s negotiated %v for the 1.3 hello, want tls13=%v", tc.stack, sh.SelectedVersion(), tc.wantTLS13)
		}
		sh, alert = st.Respond(ssl3)
		if tc.wantSSL3Err {
			if alert == nil {
				t.Errorf("%s accepted an SSL 3.0 hello (negotiated %v)", tc.stack, sh.SelectedVersion())
			}
		} else if alert != nil {
			t.Errorf("%s refused the SSL 3.0 hello: %v", tc.stack, alert)
		}
	}
}

func TestNegotiateFastEvidence(t *testing.T) {
	w := stackTestWorld(t)
	ctx := context.Background()
	var reachable string
	for fqdn, srv := range w.Servers {
		if !srv.Unreachable {
			reachable = fqdn
			break
		}
	}
	if reachable == "" {
		t.Fatal("no reachable server in test world")
	}
	n, err := w.NegotiateFast(ctx, reachable, VantageNewYork, newEvidenceHello())
	if err != nil {
		t.Fatalf("NegotiateFast: %v", err)
	}
	if n.Alert != nil {
		t.Fatalf("evidence hello refused: %v", n.Alert)
	}
	if n.Chain.Len() == 0 || n.Cipher == 0 || n.Version == 0 {
		t.Fatalf("incomplete negotiation evidence: %+v", n)
	}
	// A hello with no cipher overlap yields an alert, nil error, empty chain.
	junk := &tlswire.ClientHello{
		LegacyVersion:      tlswire.VersionTLS12,
		CipherSuites:       []uint16{0x0019, 0x001B},
		CompressionMethods: []byte{0},
	}
	n, err = w.NegotiateFast(ctx, reachable, VantageNewYork, junk)
	if err != nil {
		t.Fatalf("NegotiateFast(junk): %v", err)
	}
	if n.Alert == nil || n.Chain.Len() != 0 {
		t.Fatalf("junk hello should alert with no chain, got %+v", n)
	}
	if _, err := w.NegotiateFast(ctx, "no-such-host.invalid", VantageNewYork, newEvidenceHello()); err == nil {
		t.Fatal("unknown host should error")
	}
}
