package simnet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
)

// virtualSleep is a no-wall-clock SleepFunc for fault tests.
func virtualSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func faultyWorld(t testing.TB, seed int64) *World {
	t.Helper()
	ds := dataset.Generate(dataset.Config{Seed: 99, Scale: 0.15})
	return Build(Config{Seed: 1, SNIs: ds.SNIsByMinUsers(2), Faults: &Faults{
		Seed:          seed,
		TransientRate: 0.3,
		Sleep:         virtualSleep,
	}})
}

func TestFaultScheduleDeterministic(t *testing.T) {
	a, b := faultyWorld(t, 7), faultyWorld(t, 7)
	ctx := context.Background()
	attempts := 0
	for sni, srv := range a.Servers {
		if srv.Unreachable {
			continue
		}
		for _, v := range Vantages() {
			for i := 0; i < 3; i++ {
				attempts++
				_, errA := a.ProbeFastContext(ctx, sni, v)
				_, errB := b.ProbeFastContext(ctx, sni, v)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("%s@%s attempt %d: schedules diverge (%v vs %v)", sni, v, i+1, errA, errB)
				}
				if errA != nil && errA.Error() != errB.Error() {
					t.Fatalf("%s@%s attempt %d: errors differ (%v vs %v)", sni, v, i+1, errA, errB)
				}
			}
		}
	}
	if attempts == 0 {
		t.Fatal("no reachable servers exercised")
	}
}

func TestFaultAttemptsDecorrelated(t *testing.T) {
	// A host that fails attempt 1 must not be doomed on every retry: at a
	// 30% rate, some failing host recovers within three further attempts.
	w := faultyWorld(t, 7)
	ctx := context.Background()
	failedOnce, recovered := 0, 0
	for sni, srv := range w.Servers {
		if srv.Unreachable {
			continue
		}
		if _, err := w.ProbeFastContext(ctx, sni, VantageNewYork); err == nil {
			continue
		}
		failedOnce++
		for i := 0; i < 3; i++ {
			if _, err := w.ProbeFastContext(ctx, sni, VantageNewYork); err == nil {
				recovered++
				break
			}
		}
	}
	if failedOnce == 0 {
		t.Fatal("no first-attempt failures at a 30% rate")
	}
	if recovered == 0 {
		t.Fatalf("all %d failing hosts failed every retry — fault rolls correlated across attempts", failedOnce)
	}
}

func TestFaultKindsObserved(t *testing.T) {
	w := faultyWorld(t, 7)
	ctx := context.Background()
	resets, stalls := 0, 0
	for sni, srv := range w.Servers {
		if srv.Unreachable {
			continue
		}
		for _, v := range Vantages() {
			_, err := w.ProbeFastContext(ctx, sni, v)
			switch {
			case errors.Is(err, ErrConnReset):
				resets++
			case errors.Is(err, ErrStalled):
				stalls++
			}
		}
	}
	if resets == 0 || stalls == 0 {
		t.Fatalf("fault mix incomplete: %d resets, %d stalls", resets, stalls)
	}
}

func TestStalledHandshakeHonoursDeadline(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 99, Scale: 0.15})
	w := Build(Config{Seed: 1, SNIs: ds.SNIsByMinUsers(2), Faults: &Faults{
		Seed:          3,
		TransientRate: 1.0, // every attempt faults
		ResetFraction: -1,  // negative: nothing classified as reset, all stalls
		StallTimeout:  10 * time.Second,
	}})
	var sni string
	for s, srv := range w.Servers {
		if !srv.Unreachable {
			sni = s
			break
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := w.ProbeFastContext(ctx, sni, VantageNewYork)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("want stall, got %v", err)
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatal("context did not expire — stall returned without waiting on the deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall ignored the deadline, took %v", elapsed)
	}
}

func TestClearFaults(t *testing.T) {
	w := faultyWorld(t, 7)
	w.ClearFaults()
	ctx := context.Background()
	for sni, srv := range w.Servers {
		if srv.Unreachable {
			continue
		}
		for i := 0; i < 5; i++ {
			if _, err := w.ProbeFastContext(ctx, sni, VantageNewYork); err != nil {
				t.Fatalf("fault injected after ClearFaults: %v", err)
			}
		}
		break
	}
}
