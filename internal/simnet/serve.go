package simnet

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/pki"
)

// Probe errors.
var (
	// ErrUnknownHost: the SNI resolves to nothing in this world.
	ErrUnknownHost = errors.New("simnet: unknown host")
	// ErrUnreachable: the server exists but cannot be reached (the 43
	// SNIs the paper lost to the 2-year time lag).
	ErrUnreachable = errors.New("simnet: host unreachable")
)

// Probe performs a genuine crypto/tls handshake with the server behind
// the SNI, as seen from the vantage, and returns the certificate chain
// the server presented. This is the collection path of Section 5.1.
func (w *World) Probe(sni string, vantage Vantage) (pki.Chain, error) {
	srv, ok := w.Servers[sni]
	if !ok {
		return pki.Chain{}, fmt.Errorf("%w: %s", ErrUnknownHost, sni)
	}
	if srv.Unreachable {
		return pki.Chain{}, fmt.Errorf("%w: %s", ErrUnreachable, sni)
	}
	chain := srv.ChainAt(vantage)
	leafKey := srv.LeafAt(vantage).Key
	if leafKey == nil {
		return pki.Chain{}, fmt.Errorf("simnet: no key for %s", sni)
	}

	tlsCert := tls.Certificate{PrivateKey: leafKey}
	for _, c := range chain.Certs {
		tlsCert.Certificate = append(tlsCert.Certificate, c.Raw)
	}

	clientSide, serverSide := net.Pipe()
	defer clientSide.Close()

	errCh := make(chan error, 1)
	go func() {
		// Close the raw pipe when done; a TLS-level Close would block on
		// the unbuffered pipe waiting for a close_notify reader.
		defer serverSide.Close()
		sconn := tls.Server(serverSide, &tls.Config{
			Certificates: []tls.Certificate{tlsCert},
			MinVersion:   tls.VersionTLS12,
		})
		errCh <- sconn.Handshake()
	}()

	cconn := tls.Client(clientSide, &tls.Config{
		ServerName:         sni,
		InsecureSkipVerify: true, // we validate ourselves, like the study's prober
		MinVersion:         tls.VersionTLS12,
	})
	cconn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := cconn.Handshake(); err != nil {
		<-errCh
		return pki.Chain{}, fmt.Errorf("simnet: handshake with %s: %w", sni, err)
	}
	peer := cconn.ConnectionState().PeerCertificates
	<-errCh

	out := pki.Chain{Certs: make([]*x509.Certificate, len(peer))}
	copy(out.Certs, peer)
	return out, nil
}

// LeafAt returns the leaf certificate (with its key) for a vantage.
func (s *Server) LeafAt(v Vantage) pki.Certificate {
	if s.VantageLeaves != nil {
		if leaf, ok := s.VantageLeaves[v]; ok {
			return leaf
		}
	}
	return s.Leaf
}

// ProbeFast returns the chain without a TLS handshake — byte-identical to
// what Probe captures, for analysis at scale and benchmarks.
func (w *World) ProbeFast(sni string, vantage Vantage) (pki.Chain, error) {
	srv, ok := w.Servers[sni]
	if !ok {
		return pki.Chain{}, fmt.Errorf("%w: %s", ErrUnknownHost, sni)
	}
	if srv.Unreachable {
		return pki.Chain{}, fmt.Errorf("%w: %s", ErrUnreachable, sni)
	}
	return srv.ChainAt(vantage), nil
}

// ProbeResult is one (SNI, vantage) capture.
type ProbeResult struct {
	SNI     string
	Vantage Vantage
	Chain   pki.Chain
	Err     error
}

// ProbeAll captures every SNI from every vantage concurrently. When
// realTLS is true every capture is a full crypto/tls handshake.
func (w *World) ProbeAll(snis []string, vantages []Vantage, realTLS bool) []ProbeResult {
	type job struct {
		sni     string
		vantage Vantage
	}
	jobs := make(chan job)
	results := make([]ProbeResult, 0, len(snis)*len(vantages))
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := 16
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				var chain pki.Chain
				var err error
				if realTLS {
					chain, err = w.Probe(j.sni, j.vantage)
				} else {
					chain, err = w.ProbeFast(j.sni, j.vantage)
				}
				mu.Lock()
				results = append(results, ProbeResult{SNI: j.sni, Vantage: j.vantage, Chain: chain, Err: err})
				mu.Unlock()
			}
		}()
	}
	for _, sni := range snis {
		for _, v := range vantages {
			jobs <- job{sni, v}
		}
	}
	close(jobs)
	wg.Wait()
	return results
}
