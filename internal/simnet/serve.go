package simnet

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/pki"
	"repro/internal/tlswire"
)

// Probe errors. Both are terminal in the probe-engine failure taxonomy:
// retrying an unknown or unreachable host cannot succeed.
var (
	// ErrUnknownHost: the SNI resolves to nothing in this world.
	ErrUnknownHost = errors.New("simnet: unknown host")
	// ErrUnreachable: the server exists but cannot be reached (the 43
	// SNIs the paper lost to the 2-year time lag).
	ErrUnreachable = errors.New("simnet: host unreachable")
)

// defaultHandshakeTimeout bounds a handshake when the caller's context
// carries no deadline.
const defaultHandshakeTimeout = 5 * time.Second

// Negotiation is the evidence one handshake attempt yields: the
// certificate chain plus the negotiation behaviour the server exhibited
// (selected version and cipher, echoed extensions, or the refusing
// alert). A refusal is not an error — an alert is the server answering,
// and exactly the evidence active fingerprinting wants; Chain is empty
// in that case.
type Negotiation struct {
	// Chain the server presented (empty when the hello was refused).
	Chain pki.Chain
	// Version the server negotiated.
	Version tlswire.Version
	// Cipher is the selected suite.
	Cipher uint16
	// Echoed lists the ServerHello extension types in emission order.
	Echoed []uint16
	// HelloRetryRequest marks a TLS 1.3 retry: the ServerHello carried
	// the RFC 8446 HRR random, asking for a different key-share group.
	HelloRetryRequest bool
	// RetryGroup is the named group an HRR asked for (0 otherwise).
	RetryGroup uint16
	// Alert is the refusal, when the server sent one instead of a
	// ServerHello.
	Alert *tlswire.Alert
}

// evidenceHello is the canonical ClientHello whose negotiation evidence
// annotates fast probes: TLS 1.2, a suite list overlapping every
// modeled stack, null compression, and the common extension set. It is
// crafted once and only ever read.
var evidenceHello = newEvidenceHello()

func newEvidenceHello() *tlswire.ClientHello {
	ch := &tlswire.ClientHello{
		LegacyVersion: tlswire.VersionTLS12,
		CipherSuites: []uint16{
			0xC02B, 0xC02F, 0xC02C, 0xC030, 0xCCA9, 0xCCA8,
			0x009C, 0x009D, 0xC013, 0xC014, 0x002F, 0x0035, 0x000A,
		},
		CompressionMethods: []byte{0},
		Extensions: []tlswire.Extension{
			{Type: tlswire.ExtRenegotiationInfo, Data: []byte{0}},
			{Type: tlswire.ExtECPointFormats, Data: []byte{1, 0}},
			{Type: tlswire.ExtSessionTicket},
			{Type: tlswire.ExtStatusRequest},
			{Type: tlswire.ExtExtendedMasterSecret},
			{Type: tlswire.ExtMaxFragmentLength, Data: []byte{1}},
		},
	}
	for i := range ch.Random {
		ch.Random[i] = byte(0x5A ^ i)
	}
	return ch
}

// Probe performs a genuine crypto/tls handshake with the server behind
// the SNI, as seen from the vantage, and returns the certificate chain
// the server presented. This is the collection path of Section 5.1.
func (w *World) Probe(sni string, vantage Vantage) (pki.Chain, error) {
	n, err := w.ProbeContext(context.Background(), sni, vantage)
	return n.Chain, err
}

// ProbeContext is Probe with cancellation: the context deadline bounds
// the handshake (defaultHandshakeTimeout when absent), and the installed
// fault schedule (SetFaults) runs before the handshake. The negotiation
// evidence (version, cipher) comes from the genuine crypto/tls
// connection state.
func (w *World) ProbeContext(ctx context.Context, sni string, vantage Vantage) (Negotiation, error) {
	srv, ok := w.Servers[sni]
	if !ok {
		return Negotiation{}, fmt.Errorf("%w: %s", ErrUnknownHost, sni)
	}
	if srv.Unreachable {
		return Negotiation{}, fmt.Errorf("%w: %s", ErrUnreachable, sni)
	}
	if err := w.faults.inject(ctx, sni, vantage); err != nil {
		return Negotiation{}, err
	}
	chain := srv.ChainAt(vantage)
	leafKey := srv.LeafAt(vantage).Key
	if leafKey == nil {
		return Negotiation{}, fmt.Errorf("simnet: no key for %s", sni)
	}

	tlsCert := tls.Certificate{PrivateKey: leafKey}
	for _, c := range chain.Certs {
		tlsCert.Certificate = append(tlsCert.Certificate, c.Raw)
	}

	//lint:allow noclock deadline for a real TLS handshake over net.Pipe needs wall-clock time
	deadline := time.Now().Add(defaultHandshakeTimeout)
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}

	clientSide, serverSide := net.Pipe()
	defer clientSide.Close()

	errCh := make(chan error, 1)
	go func() {
		// Close the raw pipe when done; a TLS-level Close would block on
		// the unbuffered pipe waiting for a close_notify reader.
		defer serverSide.Close()
		sconn := tls.Server(serverSide, &tls.Config{
			Certificates: []tls.Certificate{tlsCert},
			MinVersion:   tls.VersionTLS12,
		})
		sconn.SetDeadline(deadline)
		errCh <- sconn.Handshake()
	}()

	// The deferred clientSide.Close above releases the transport; a
	// TLS-level Close would block sending close_notify into the
	// unbuffered pipe once the server goroutine is gone.
	//lint:allow deferclose the raw pipe under this conn is defer-closed; tls.Conn.Close would deadlock on net.Pipe
	cconn := tls.Client(clientSide, &tls.Config{
		ServerName:         sni,
		InsecureSkipVerify: true, // we validate ourselves, like the study's prober
		MinVersion:         tls.VersionTLS12,
	})
	cconn.SetDeadline(deadline)
	if err := cconn.Handshake(); err != nil {
		<-errCh
		return Negotiation{}, fmt.Errorf("simnet: handshake with %s: %w", sni, err)
	}
	state := cconn.ConnectionState()
	peer := state.PeerCertificates
	// The client side can finish while the server side failed (e.g. its
	// deadline fired flushing the last flight); a silent discard here
	// would hide exactly the flaky-handshake class the engine retries.
	if serr := <-errCh; serr != nil {
		return Negotiation{}, fmt.Errorf("simnet: server-side handshake with %s: %w", sni, serr)
	}

	out := pki.Chain{Certs: make([]*x509.Certificate, len(peer))}
	copy(out.Certs, peer)
	return Negotiation{
		Chain:   out,
		Version: tlswire.Version(state.Version),
		Cipher:  state.CipherSuite,
	}, nil
}

// LeafAt returns the leaf certificate (with its key) for a vantage.
func (s *Server) LeafAt(v Vantage) pki.Certificate {
	if s.VantageLeaves != nil {
		if leaf, ok := s.VantageLeaves[v]; ok {
			return leaf
		}
	}
	return s.Leaf
}

// ProbeFast returns the chain without a TLS handshake — byte-identical to
// what Probe captures, for analysis at scale and benchmarks.
func (w *World) ProbeFast(sni string, vantage Vantage) (pki.Chain, error) {
	n, err := w.ProbeFastContext(context.Background(), sni, vantage)
	return n.Chain, err
}

// ProbeFastContext is ProbeFast with cancellation and fault injection, so
// the resilient engine exercises identical retry paths on both probe
// modes. Negotiation evidence comes from the server's stack model
// answering the canonical evidence hello (which every modeled stack
// accepts, so the chain is always carried alongside).
func (w *World) ProbeFastContext(ctx context.Context, sni string, vantage Vantage) (Negotiation, error) {
	srv, ok := w.Servers[sni]
	if !ok {
		return Negotiation{}, fmt.Errorf("%w: %s", ErrUnknownHost, sni)
	}
	if srv.Unreachable {
		return Negotiation{}, fmt.Errorf("%w: %s", ErrUnreachable, sni)
	}
	if err := w.faults.inject(ctx, sni, vantage); err != nil {
		return Negotiation{}, err
	}
	n := Negotiation{Chain: srv.ChainAt(vantage)}
	if srv.Stack != nil {
		if sh, _ := srv.Stack.Respond(evidenceHello); sh != nil {
			n.Version = sh.SelectedVersion()
			n.Cipher = sh.CipherSuite
			n.Echoed = sh.ExtensionTypes()
		}
	}
	return n, nil
}

// NegotiateFast answers an arbitrary crafted ClientHello with the
// server stack model's response, after the same host/reachability/fault
// gauntlet as ProbeFastContext. The response round-trips through the
// tlswire marshal/parse path, so every battery probe also exercises the
// ServerHello wire format. This is the active-fingerprinting probe
// primitive; a refusal alert returns with a nil error and an empty
// chain.
func (w *World) NegotiateFast(ctx context.Context, sni string, vantage Vantage, hello *tlswire.ClientHello) (Negotiation, error) {
	srv, ok := w.Servers[sni]
	if !ok {
		return Negotiation{}, fmt.Errorf("%w: %s", ErrUnknownHost, sni)
	}
	if srv.Unreachable {
		return Negotiation{}, fmt.Errorf("%w: %s", ErrUnreachable, sni)
	}
	if err := w.faults.inject(ctx, sni, vantage); err != nil {
		return Negotiation{}, err
	}
	if srv.Stack == nil {
		return Negotiation{}, fmt.Errorf("simnet: no stack model for %s", sni)
	}
	sh, alert := srv.Stack.Respond(hello)
	if alert != nil {
		wire := alert.Marshal(hello.LegacyVersion)
		parsed, err := tlswire.ParseAlertRecord(wire)
		if err != nil {
			return Negotiation{}, fmt.Errorf("simnet: alert wire round trip for %s: %w", sni, err)
		}
		return Negotiation{Alert: parsed}, nil
	}
	wire, err := sh.Marshal()
	if err != nil {
		return Negotiation{}, fmt.Errorf("simnet: ServerHello marshal for %s: %w", sni, err)
	}
	parsed, err := tlswire.ParseServerHelloRecord(wire)
	if err != nil {
		return Negotiation{}, fmt.Errorf("simnet: ServerHello wire round trip for %s: %w", sni, err)
	}
	n := Negotiation{
		Chain:             srv.ChainAt(vantage),
		Version:           parsed.SelectedVersion(),
		Cipher:            parsed.CipherSuite,
		Echoed:            parsed.ExtensionTypes(),
		HelloRetryRequest: parsed.IsHelloRetryRequest(),
	}
	if n.HelloRetryRequest {
		if g, ok := parsed.KeyShareGroup(); ok {
			n.RetryGroup = g
		}
	}
	return n, nil
}

// ProbeResult is one (SNI, vantage) capture.
type ProbeResult struct {
	SNI     string
	Vantage Vantage
	Chain   pki.Chain
	Err     error
}

// ProbeAll captures every SNI from every vantage concurrently with
// GOMAXPROCS workers. When realTLS is true every capture is a full
// crypto/tls handshake.
func (w *World) ProbeAll(snis []string, vantages []Vantage, realTLS bool) []ProbeResult {
	return w.ProbeAllWorkers(snis, vantages, realTLS, 0)
}

// ProbeAllWorkers is ProbeAll with an explicit worker count (<= 0 means
// runtime.GOMAXPROCS). Results are returned in deterministic (SNI,
// vantage) order: results[i*len(vantages)+j] is snis[i] at vantages[j],
// independent of worker interleaving.
func (w *World) ProbeAllWorkers(snis []string, vantages []Vantage, realTLS bool, workers int) []ProbeResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]ProbeResult, len(snis)*len(vantages))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				sni, v := snis[idx/len(vantages)], vantages[idx%len(vantages)]
				var chain pki.Chain
				var err error
				if realTLS {
					chain, err = w.Probe(sni, v)
				} else {
					chain, err = w.ProbeFast(sni, v)
				}
				results[idx] = ProbeResult{SNI: sni, Vantage: v, Chain: chain, Err: err}
			}
		}()
	}
	for i := range results {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
