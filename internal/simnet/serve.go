package simnet

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/pki"
)

// Probe errors. Both are terminal in the probe-engine failure taxonomy:
// retrying an unknown or unreachable host cannot succeed.
var (
	// ErrUnknownHost: the SNI resolves to nothing in this world.
	ErrUnknownHost = errors.New("simnet: unknown host")
	// ErrUnreachable: the server exists but cannot be reached (the 43
	// SNIs the paper lost to the 2-year time lag).
	ErrUnreachable = errors.New("simnet: host unreachable")
)

// defaultHandshakeTimeout bounds a handshake when the caller's context
// carries no deadline.
const defaultHandshakeTimeout = 5 * time.Second

// Probe performs a genuine crypto/tls handshake with the server behind
// the SNI, as seen from the vantage, and returns the certificate chain
// the server presented. This is the collection path of Section 5.1.
func (w *World) Probe(sni string, vantage Vantage) (pki.Chain, error) {
	return w.ProbeContext(context.Background(), sni, vantage)
}

// ProbeContext is Probe with cancellation: the context deadline bounds
// the handshake (defaultHandshakeTimeout when absent), and the installed
// fault schedule (SetFaults) runs before the handshake.
func (w *World) ProbeContext(ctx context.Context, sni string, vantage Vantage) (pki.Chain, error) {
	srv, ok := w.Servers[sni]
	if !ok {
		return pki.Chain{}, fmt.Errorf("%w: %s", ErrUnknownHost, sni)
	}
	if srv.Unreachable {
		return pki.Chain{}, fmt.Errorf("%w: %s", ErrUnreachable, sni)
	}
	if err := w.faults.inject(ctx, sni, vantage); err != nil {
		return pki.Chain{}, err
	}
	chain := srv.ChainAt(vantage)
	leafKey := srv.LeafAt(vantage).Key
	if leafKey == nil {
		return pki.Chain{}, fmt.Errorf("simnet: no key for %s", sni)
	}

	tlsCert := tls.Certificate{PrivateKey: leafKey}
	for _, c := range chain.Certs {
		tlsCert.Certificate = append(tlsCert.Certificate, c.Raw)
	}

	//lint:allow noclock deadline for a real TLS handshake over net.Pipe needs wall-clock time
	deadline := time.Now().Add(defaultHandshakeTimeout)
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}

	clientSide, serverSide := net.Pipe()
	defer clientSide.Close()

	errCh := make(chan error, 1)
	go func() {
		// Close the raw pipe when done; a TLS-level Close would block on
		// the unbuffered pipe waiting for a close_notify reader.
		defer serverSide.Close()
		sconn := tls.Server(serverSide, &tls.Config{
			Certificates: []tls.Certificate{tlsCert},
			MinVersion:   tls.VersionTLS12,
		})
		sconn.SetDeadline(deadline)
		errCh <- sconn.Handshake()
	}()

	cconn := tls.Client(clientSide, &tls.Config{
		ServerName:         sni,
		InsecureSkipVerify: true, // we validate ourselves, like the study's prober
		MinVersion:         tls.VersionTLS12,
	})
	cconn.SetDeadline(deadline)
	if err := cconn.Handshake(); err != nil {
		<-errCh
		return pki.Chain{}, fmt.Errorf("simnet: handshake with %s: %w", sni, err)
	}
	peer := cconn.ConnectionState().PeerCertificates
	// The client side can finish while the server side failed (e.g. its
	// deadline fired flushing the last flight); a silent discard here
	// would hide exactly the flaky-handshake class the engine retries.
	if serr := <-errCh; serr != nil {
		return pki.Chain{}, fmt.Errorf("simnet: server-side handshake with %s: %w", sni, serr)
	}

	out := pki.Chain{Certs: make([]*x509.Certificate, len(peer))}
	copy(out.Certs, peer)
	return out, nil
}

// LeafAt returns the leaf certificate (with its key) for a vantage.
func (s *Server) LeafAt(v Vantage) pki.Certificate {
	if s.VantageLeaves != nil {
		if leaf, ok := s.VantageLeaves[v]; ok {
			return leaf
		}
	}
	return s.Leaf
}

// ProbeFast returns the chain without a TLS handshake — byte-identical to
// what Probe captures, for analysis at scale and benchmarks.
func (w *World) ProbeFast(sni string, vantage Vantage) (pki.Chain, error) {
	return w.ProbeFastContext(context.Background(), sni, vantage)
}

// ProbeFastContext is ProbeFast with cancellation and fault injection, so
// the resilient engine exercises identical retry paths on both probe
// modes.
func (w *World) ProbeFastContext(ctx context.Context, sni string, vantage Vantage) (pki.Chain, error) {
	srv, ok := w.Servers[sni]
	if !ok {
		return pki.Chain{}, fmt.Errorf("%w: %s", ErrUnknownHost, sni)
	}
	if srv.Unreachable {
		return pki.Chain{}, fmt.Errorf("%w: %s", ErrUnreachable, sni)
	}
	if err := w.faults.inject(ctx, sni, vantage); err != nil {
		return pki.Chain{}, err
	}
	return srv.ChainAt(vantage), nil
}

// ProbeResult is one (SNI, vantage) capture.
type ProbeResult struct {
	SNI     string
	Vantage Vantage
	Chain   pki.Chain
	Err     error
}

// ProbeAll captures every SNI from every vantage concurrently with
// GOMAXPROCS workers. When realTLS is true every capture is a full
// crypto/tls handshake.
func (w *World) ProbeAll(snis []string, vantages []Vantage, realTLS bool) []ProbeResult {
	return w.ProbeAllWorkers(snis, vantages, realTLS, 0)
}

// ProbeAllWorkers is ProbeAll with an explicit worker count (<= 0 means
// runtime.GOMAXPROCS). Results are returned in deterministic (SNI,
// vantage) order: results[i*len(vantages)+j] is snis[i] at vantages[j],
// independent of worker interleaving.
func (w *World) ProbeAllWorkers(snis []string, vantages []Vantage, realTLS bool, workers int) []ProbeResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]ProbeResult, len(snis)*len(vantages))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				sni, v := snis[idx/len(vantages)], vantages[idx%len(vantages)]
				var chain pki.Chain
				var err error
				if realTLS {
					chain, err = w.Probe(sni, v)
				} else {
					chain, err = w.ProbeFast(sni, v)
				}
				results[idx] = ProbeResult{SNI: sni, Vantage: v, Chain: chain, Err: err}
			}
		}()
	}
	for i := range results {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
