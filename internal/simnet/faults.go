package simnet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Fault-injection errors. Both are transient in the probe-engine failure
// taxonomy: a reset or a stall on one attempt says nothing about the next.
var (
	// ErrConnReset: the connection was torn down mid-handshake.
	ErrConnReset = errors.New("simnet: connection reset by peer")
	// ErrStalled: the handshake hung until the client gave up.
	ErrStalled = errors.New("simnet: handshake stalled")
)

// SleepFunc waits for d or until the context is done, returning the
// context error if it fires first. Tests inject a virtual-clock sleeper so
// fault schedules run without wall-clock delay.
type SleepFunc func(ctx context.Context, d time.Duration) error

// RealSleep is the default SleepFunc: a wall-clock timer that honours
// context cancellation.
func RealSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Faults configures deterministic fault injection on the probe path. Every
// decision is a pure function of (Seed, SNI, vantage, attempt number), so a
// given schedule of probes always sees the same faults regardless of worker
// interleaving — the property the retry-trace determinism tests rely on.
type Faults struct {
	// Seed drives every fault decision.
	Seed int64
	// TransientRate is the probability in [0,1] that an attempt fails
	// transiently (reset or stall) before the handshake.
	TransientRate float64
	// ResetFraction splits transient failures between connection resets
	// and stalls. 0 means the default 0.5; negative means stalls only.
	ResetFraction float64
	// LatencyBase and LatencyJitter shape the per-attempt handshake
	// latency: latency = LatencyBase + frac*LatencyJitter with frac
	// deterministic per attempt. Zero means no simulated latency.
	LatencyBase   time.Duration
	LatencyJitter time.Duration
	// StallTimeout bounds how long a stalled handshake hangs before the
	// server gives up on its own (the client's context usually fires
	// first). 0 means the default 30s.
	StallTimeout time.Duration
	// Sleep is the waiting primitive; nil means RealSleep.
	Sleep SleepFunc
}

// faultState tracks per-(SNI, vantage) attempt counters so fault decisions
// depend on the attempt number, not on global call order.
type faultState struct {
	cfg      Faults
	mu       sync.Mutex
	attempts map[string]int
}

// SetFaults installs (or, with a fresh config, resets) fault injection on
// the world. Attempt counters start from zero, so two worlds given the
// same Faults config and probe schedule fail identically.
func (w *World) SetFaults(cfg Faults) {
	w.faults = &faultState{cfg: cfg, attempts: map[string]int{}}
}

// ClearFaults removes fault injection.
func (w *World) ClearFaults() { w.faults = nil }

func (f *faultState) sleep(ctx context.Context, d time.Duration) error {
	if f.cfg.Sleep != nil {
		return f.cfg.Sleep(ctx, d)
	}
	return RealSleep(ctx, d)
}

func (f *faultState) resetFraction() float64 {
	if f.cfg.ResetFraction == 0 {
		return 0.5
	}
	return f.cfg.ResetFraction
}

func (f *faultState) stallTimeout() time.Duration {
	if f.cfg.StallTimeout <= 0 {
		return 30 * time.Second
	}
	return f.cfg.StallTimeout
}

// roll derives a deterministic fraction in [0,1) for one decision kind on
// one attempt. The FNV sum goes through a murmur3 finalizer: FNV-1a alone
// barely moves the high bits when only the trailing byte (the attempt
// number) changes, which would make consecutive attempts share their
// fate — every retry of a failed handshake would fail identically.
func (f *faultState) roll(kind, sni string, v Vantage, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%d", f.cfg.Seed, kind, sni, v, attempt)
	return float64(mix64(h.Sum64())>>11) / float64(uint64(1)<<53)
}

// mix64 is the 64-bit murmur3 finalizer (full avalanche).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// inject runs the fault schedule for the next attempt against (sni, v):
// simulated latency first, then possibly a reset or a stall. A nil
// faultState injects nothing.
func (f *faultState) inject(ctx context.Context, sni string, v Vantage) error {
	if f == nil {
		return ctx.Err()
	}
	key := sni + "|" + string(v)
	f.mu.Lock()
	f.attempts[key]++
	attempt := f.attempts[key]
	f.mu.Unlock()

	if lat := f.latency(sni, v, attempt); lat > 0 {
		if err := f.sleep(ctx, lat); err != nil {
			return fmt.Errorf("simnet: dial %s: %w", sni, err)
		}
	}
	if f.cfg.TransientRate <= 0 || f.roll("fault", sni, v, attempt) >= f.cfg.TransientRate {
		return ctx.Err()
	}
	if f.roll("kind", sni, v, attempt) < f.resetFraction() {
		return fmt.Errorf("%w: %s (attempt %d)", ErrConnReset, sni, attempt)
	}
	// Stalled handshake: hang until the caller's deadline or the stall
	// window elapses, whichever comes first.
	if err := f.sleep(ctx, f.stallTimeout()); err != nil {
		return fmt.Errorf("%w: %s (attempt %d): %w", ErrStalled, sni, attempt, err)
	}
	return fmt.Errorf("%w: %s (attempt %d)", ErrStalled, sni, attempt)
}

func (f *faultState) latency(sni string, v Vantage, attempt int) time.Duration {
	base, jitter := f.cfg.LatencyBase, f.cfg.LatencyJitter
	if base <= 0 && jitter <= 0 {
		return 0
	}
	return base + time.Duration(f.roll("latency", sni, v, attempt)*float64(jitter))
}
