package simnet

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/pki"
)

// smallWorld builds a world over a reduced SNI set.
func smallWorld(t testing.TB) *World {
	t.Helper()
	ds := dataset.Generate(dataset.Config{Seed: 99, Scale: 0.15})
	return Build(Config{Seed: 1, SNIs: ds.SNIsByMinUsers(2)})
}

func TestSLDOf(t *testing.T) {
	cases := map[string]string{
		"api.roku.com":      "roku.com",
		"a2.tuyaus.com":     "tuyaus.com",
		"cdn.pavv.co.kr":    "pavv.co.kr",
		"roku.com":          "roku.com",
		"x.y.z.amazon.com":  "amazon.com",
		"time.pool.ntp.org": "pool.ntp.org",
	}
	for in, want := range cases {
		if got := SLDOf(in); got != want {
			t.Errorf("SLDOf(%q)=%q want %q", in, got, want)
		}
	}
}

func TestWorldDeterminism(t *testing.T) {
	snis := []string{"api.roku.com", "ota.roku.com", "api.wyzecam.com", "cloud.netflix.com"}
	a := Build(Config{Seed: 5, SNIs: snis})
	b := Build(Config{Seed: 5, SNIs: snis})
	for _, sni := range snis {
		sa, sb := a.Servers[sni], b.Servers[sni]
		if sa == nil || sb == nil {
			t.Fatalf("missing server %s", sni)
		}
		if sa.IssuerOrg != sb.IssuerOrg || sa.Unreachable != sb.Unreachable {
			t.Fatalf("%s: nondeterministic assignment", sni)
		}
		if sa.Leaf.Cert.NotAfter != sb.Leaf.Cert.NotAfter {
			t.Fatalf("%s: nondeterministic validity", sni)
		}
	}
}

func TestVendorPrivateCAs(t *testing.T) {
	w := smallWorld(t)
	checks := map[string]string{
		"roku.com":      "Roku",
		"canaryis.com":  "Canary Connect",
		"tuyaus.com":    "Tuya",
		"obitalk.com":   "Obihai Technology",
		"nintendo.net":  "Nintendo",
		"nest.com":      "Nest Labs",
		"ueiwsp.com":    "Universal Electronics",
		"skyegloup.com": "Gandi",
		"wink.com":      "COMODO",
	}
	found := map[string]bool{}
	for _, srv := range w.Servers {
		if want, ok := checks[srv.SLD]; ok {
			found[srv.SLD] = true
			if srv.IssuerOrg != want {
				t.Errorf("%s issued by %s want %s", srv.FQDN, srv.IssuerOrg, want)
			}
		}
	}
	for sld := range checks {
		if !found[sld] {
			t.Logf("note: no server under %s in this scaled world", sld)
		}
	}
}

func TestRealTLSProbeMatchesFast(t *testing.T) {
	w := smallWorld(t)
	n := 0
	for sni, srv := range w.Servers {
		if srv.Unreachable {
			continue
		}
		if n++; n > 25 {
			break
		}
		real, err := w.Probe(sni, VantageNewYork)
		if err != nil {
			t.Fatalf("probe %s: %v", sni, err)
		}
		fast, err := w.ProbeFast(sni, VantageNewYork)
		if err != nil {
			t.Fatal(err)
		}
		if len(real.Certs) != len(fast.Certs) {
			t.Fatalf("%s: chain lengths differ (%d vs %d)", sni, len(real.Certs), len(fast.Certs))
		}
		for i := range real.Certs {
			if !bytes.Equal(real.Certs[i].Raw, fast.Certs[i].Raw) {
				t.Fatalf("%s: cert %d differs between real TLS and fast path", sni, i)
			}
		}
	}
	if n == 0 {
		t.Fatal("no reachable servers probed")
	}
}

func TestProbeErrors(t *testing.T) {
	w := smallWorld(t)
	if _, err := w.Probe("no-such-host.invalid", VantageNewYork); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("unknown host: %v", err)
	}
	for sni, srv := range w.Servers {
		if srv.Unreachable {
			if _, err := w.Probe(sni, VantageNewYork); !errors.Is(err, ErrUnreachable) {
				t.Fatalf("unreachable %s: %v", sni, err)
			}
			return
		}
	}
	t.Log("note: no unreachable servers in this scaled world")
}

func TestExpiredDomains(t *testing.T) {
	w := smallWorld(t)
	for _, srv := range w.Servers {
		if exp, ok := map[string]bool{"skyegloup.com": true, "wink.com": true}[srv.SLD]; ok && exp {
			if !srv.Leaf.Cert.NotAfter.Before(w.CaptureStart.AddDate(0, 0, 365)) {
				t.Errorf("%s should be long expired, NotAfter=%v", srv.FQDN, srv.Leaf.Cert.NotAfter)
			}
		}
	}
}

func TestCTDiscipline(t *testing.T) {
	w := smallWorld(t)
	for _, srv := range w.Servers {
		logged := w.Log.Contains(srv.Leaf.Cert)
		if srv.IssuerKind == pki.PrivateCA && logged {
			t.Errorf("%s: private-CA cert logged in CT", srv.FQDN)
		}
		if logged != srv.InCT {
			t.Errorf("%s: InCT flag %v but log says %v", srv.FQDN, srv.InCT, logged)
		}
	}
}

func TestPrivateValidityLong(t *testing.T) {
	w := smallWorld(t)
	sawPrivate := false
	for _, srv := range w.Servers {
		days := int(srv.Leaf.Cert.NotAfter.Sub(srv.Leaf.Cert.NotBefore).Hours() / 24)
		if srv.IssuerKind == pki.PrivateCA && srv.IssuerOrg != "Netflix" {
			sawPrivate = true
			if days < 1000 {
				t.Errorf("%s (%s): private validity only %d days", srv.FQDN, srv.IssuerOrg, days)
			}
		}
		if srv.IssuerKind == pki.PublicTrustCA && srv.SLD != "skyegloup.com" && srv.SLD != "wink.com" {
			if days > 1000 {
				t.Errorf("%s (%s): public validity %d days > 1000", srv.FQDN, srv.IssuerOrg, days)
			}
		}
	}
	if !sawPrivate {
		t.Fatal("no private-CA servers in world")
	}
}

func TestCDNVantageVariation(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 99, Scale: 0.5})
	w := Build(Config{Seed: 1, SNIs: ds.SNIsByMinUsers(2)})
	varied := 0
	for sni, srv := range w.Servers {
		if srv.Unreachable || srv.VantageChains == nil {
			continue
		}
		ny, err := w.ProbeFast(sni, VantageNewYork)
		if err != nil {
			t.Fatal(err)
		}
		fra, err := w.ProbeFast(sni, VantageFrankfurt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ny.Certs[0].Raw, fra.Certs[0].Raw) {
			varied++
		}
	}
	if varied == 0 {
		t.Error("no CDN vantage variation observed")
	}
}

func TestValidatorClassifiesWorld(t *testing.T) {
	w := smallWorld(t)
	counts := map[pki.ChainStatus]int{}
	for sni, srv := range w.Servers {
		if srv.Unreachable {
			continue
		}
		chain, err := w.ProbeFast(sni, VantageNewYork)
		if err != nil {
			t.Fatal(err)
		}
		res := w.Validator.Validate(chain, sni, w.ProbeTime)
		counts[res.Status]++
	}
	if counts[pki.StatusValid] == 0 {
		t.Error("no valid chains in world")
	}
	if counts[pki.StatusUntrustedRoot]+counts[pki.StatusSelfSigned] == 0 {
		t.Error("no private-root/self-signed chains in world")
	}
	t.Logf("status distribution: %v", counts)
}

func BenchmarkRealProbe(b *testing.B) {
	ds := dataset.Generate(dataset.Config{Seed: 99, Scale: 0.1})
	w := Build(Config{Seed: 1, SNIs: ds.SNIsByMinUsers(2)})
	var sni string
	for s, srv := range w.Servers {
		if !srv.Unreachable {
			sni = s
			break
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Probe(sni, VantageNewYork); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildWorld(b *testing.B) {
	ds := dataset.Generate(dataset.Config{Seed: 99, Scale: 0.1})
	snis := ds.SNIsByMinUsers(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(Config{Seed: 1, SNIs: snis})
	}
}
