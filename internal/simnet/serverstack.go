package simnet

// Server-side TLS stack models. Every server in the world runs one of a
// small set of modeled TLS implementations, assigned deterministically
// per owning vendor (third-party domains key on their SLD). A model is
// a pure function from ClientHello to either ServerHello or fatal
// alert, capturing the behaviours that real-world active fingerprinting
// ("Active TLS Stack Fingerprinting", PAPERS.md) keys on:
//
//   - cipher-selection policy: server-preference order vs honouring the
//     client's order, and the preference list itself;
//   - extension echo policy: which ClientHello extensions the stack
//     acknowledges, and in which order it emits them;
//   - version negotiation: the supported floor/ceiling, whether
//     downlevel hellos are clamped or refused, and TLS 1.3 capability
//     via supported_versions/key_share;
//   - alert taxonomy: which alert description answers a hello with no
//     cipher overlap, a downlevel version, or a non-null compression
//     offer.
//
// The models are caricatures tuned for distinguishability, not
// emulations of specific library versions; their names indicate the
// behavioural family they are drawn from.

import (
	"time"

	"repro/internal/tlswire"
)

// ServerStack models one server-side TLS implementation.
type ServerStack struct {
	// Name labels the stack in classifications and reports.
	Name string
	// MinVersion/MaxVersion bound the negotiable protocol range.
	MinVersion, MaxVersion tlswire.Version
	// Preference12 lists the TLS <= 1.2 suites the stack accepts, in its
	// server-side preference order.
	Preference12 []uint16
	// Preference13 lists the TLS 1.3 suites in preference order (empty
	// for pre-1.3 stacks).
	Preference13 []uint16
	// PreferClientOrder selects the first client-offered suite the stack
	// supports instead of walking the server preference list.
	PreferClientOrder bool
	// Echo lists the ClientHello extensions the stack acknowledges, in
	// the order it emits them on a TLS <= 1.2 ServerHello.
	Echo []tlswire.ExtensionType
	// Echo13 lists the extensions emitted on a TLS 1.3 ServerHello
	// (supported_versions and key_share, in stack-specific order).
	Echo13 []tlswire.ExtensionType
	// Groups lists the named groups the stack accepts for 1.3 key
	// exchange, in server preference order (empty for pre-1.3 stacks).
	Groups []uint16
	// PreferOwnGroup makes the stack insist on its top mutually-supported
	// group: when the client advertises it without sending a share for
	// it, the stack answers HelloRetryRequest instead of accepting a
	// lower-ranked share — the prioritized-groups quirk some OpenSSL 3.x
	// and wolfSSL deployments exhibit, and a key serverfp discriminator.
	PreferOwnGroup bool
	// EchoSessionID echoes the client's legacy session id (TLS 1.3
	// compatibility mode, and old resumption-style stacks).
	EchoSessionID bool
	// AlertNoOverlap answers a hello sharing no cipher suite.
	AlertNoOverlap tlswire.AlertDescription
	// AlertDownlevel answers a hello below MinVersion.
	AlertDownlevel tlswire.AlertDescription
	// AlertCompression, when non-zero, refuses hellos offering any
	// non-null compression method; zero tolerates them (selects null).
	AlertCompression tlswire.AlertDescription
}

// serverStacks is the model registry, in deterministic assignment order.
var serverStacks = []*ServerStack{
	{
		// OpenSSL 1.0.2 era: no TLS 1.3, accepts SSL 3.0 by clamping,
		// AES-256-first server order, rich echo set.
		Name:       "openssl-1.0.2",
		MinVersion: tlswire.VersionSSL30,
		MaxVersion: tlswire.VersionTLS12,
		Preference12: []uint16{
			0xC030, 0xC02C, 0xC02F, 0xC02B, 0xC014, 0xC013,
			0x009D, 0x009C, 0x0035, 0x002F, 0x000A,
		},
		Echo: []tlswire.ExtensionType{
			tlswire.ExtRenegotiationInfo, tlswire.ExtECPointFormats,
			tlswire.ExtSessionTicket, tlswire.ExtStatusRequest,
		},
		AlertNoOverlap: tlswire.AlertHandshakeFailure,
		AlertDownlevel: tlswire.AlertHandshakeFailure, // unreachable: floor is SSL 3.0
	},
	{
		// OpenSSL 1.1.1 era: TLS 1.3 capable, ChaCha-first 1.2 order,
		// echoes the legacy session id in 1.3 compatibility mode.
		Name:       "openssl-1.1.1",
		MinVersion: tlswire.VersionTLS10,
		MaxVersion: tlswire.VersionTLS13,
		Preference12: []uint16{
			0xCCA9, 0xCCA8, 0xC02B, 0xC02F, 0xC02C, 0xC030,
			0x009C, 0x009D, 0x002F, 0x0035,
		},
		Preference13: []uint16{0x1302, 0x1303, 0x1301},
		Echo: []tlswire.ExtensionType{
			tlswire.ExtRenegotiationInfo, tlswire.ExtECPointFormats,
			tlswire.ExtSessionTicket, tlswire.ExtExtendedMasterSecret,
		},
		Echo13:         []tlswire.ExtensionType{tlswire.ExtSupportedVersions, tlswire.ExtKeyShare},
		Groups:         []uint16{tlswire.GroupX25519, tlswire.GroupP256, tlswire.GroupP384},
		EchoSessionID:  true,
		AlertNoOverlap: tlswire.AlertHandshakeFailure,
		AlertDownlevel: tlswire.AlertProtocolVersion,
	},
	{
		// wolfSSL-style embedded stack: honours the client's cipher
		// order, minimal echo, refuses compression offers outright.
		Name:       "wolfssl",
		MinVersion: tlswire.VersionTLS10,
		MaxVersion: tlswire.VersionTLS12,
		Preference12: []uint16{
			0xC02B, 0xC02F, 0xC02C, 0xC030, 0x009C, 0x009D,
			0x002F, 0x0035, 0xC013, 0xC014,
		},
		PreferClientOrder: true,
		Echo:              []tlswire.ExtensionType{tlswire.ExtRenegotiationInfo},
		AlertNoOverlap:    tlswire.AlertHandshakeFailure,
		AlertDownlevel:    tlswire.AlertProtocolVersion,
		AlertCompression:  tlswire.AlertIllegalParameter,
	},
	{
		// mbedTLS-style: AES-128-first server order, distinctive echo
		// set, insufficient_security on no overlap and a
		// handshake_failure quirk on downlevel hellos.
		Name:       "mbedtls",
		MinVersion: tlswire.VersionTLS10,
		MaxVersion: tlswire.VersionTLS12,
		Preference12: []uint16{
			0xC02F, 0xC02B, 0xC030, 0xC02C, 0x009C, 0x009D,
			0xC013, 0xC014, 0x002F, 0x0035,
		},
		Echo: []tlswire.ExtensionType{
			tlswire.ExtRenegotiationInfo, tlswire.ExtExtendedMasterSecret,
			tlswire.ExtMaxFragmentLength,
		},
		AlertNoOverlap: tlswire.AlertInsufficientSecurity,
		AlertDownlevel: tlswire.AlertHandshakeFailure,
	},
	{
		// crypto/tls-style: TLS 1.2 floor, AES-GCM-128-first order,
		// key_share before supported_versions on the 1.3 flight.
		Name:       "gotls",
		MinVersion: tlswire.VersionTLS12,
		MaxVersion: tlswire.VersionTLS13,
		Preference12: []uint16{
			0xC02F, 0xC02B, 0xC030, 0xC02C, 0xCCA8, 0xCCA9,
			0xC013, 0xC014, 0x009C, 0x009D, 0x002F, 0x0035,
		},
		Preference13:     []uint16{0x1301, 0x1302, 0x1303},
		Echo:             []tlswire.ExtensionType{tlswire.ExtRenegotiationInfo, tlswire.ExtECPointFormats},
		Echo13:           []tlswire.ExtensionType{tlswire.ExtKeyShare, tlswire.ExtSupportedVersions},
		Groups:           []uint16{tlswire.GroupX25519, tlswire.GroupP256, tlswire.GroupP384, tlswire.GroupP521},
		EchoSessionID:    true,
		AlertNoOverlap:   tlswire.AlertHandshakeFailure,
		AlertDownlevel:   tlswire.AlertProtocolVersion,
		AlertCompression: tlswire.AlertDecodeError,
	},
	{
		// Pre-extension embedded firmware: TLS 1.0 ceiling, SSL 3.0
		// floor, CBC/RC4-only client-order selection, ignores every
		// extension, alerts unexpected_message on anything odd.
		Name:              "embedded-legacy",
		MinVersion:        tlswire.VersionSSL30,
		MaxVersion:        tlswire.VersionTLS10,
		Preference12:      []uint16{0x0035, 0x002F, 0x000A, 0x0005, 0x0004},
		PreferClientOrder: true,
		EchoSessionID:     true,
		AlertNoOverlap:    tlswire.AlertUnexpectedMessage,
		AlertDownlevel:    tlswire.AlertUnexpectedMessage, // unreachable: floor is SSL 3.0
		AlertCompression:  tlswire.AlertUnexpectedMessage,
	},
}

// modernServerStacks are the firmware-drift successors: stacks that only
// appear when a world is built at a post-paper `AsOf` date. They live in
// a separate registry because the length of serverStacks is load-bearing
// for seeded assignment — appending here never reshuffles the paper-era
// world.
var modernServerStacks = []*ServerStack{
	{
		// OpenSSL 3.x era: TLS 1.2 floor (default security level), AES-256
		// first on both protocol generations, and the prioritized-groups
		// quirk — a share for anything but x25519 earns a
		// HelloRetryRequest asking for x25519.
		Name:       "openssl-3.0",
		MinVersion: tlswire.VersionTLS12,
		MaxVersion: tlswire.VersionTLS13,
		Preference12: []uint16{
			0xC030, 0xC02C, 0xCCA9, 0xCCA8, 0xC02F, 0xC02B,
			0x009D, 0x009C,
		},
		Preference13: []uint16{0x1302, 0x1303, 0x1301},
		Echo: []tlswire.ExtensionType{
			tlswire.ExtRenegotiationInfo, tlswire.ExtExtendedMasterSecret,
			tlswire.ExtSessionTicket,
		},
		Echo13:           []tlswire.ExtensionType{tlswire.ExtSupportedVersions, tlswire.ExtKeyShare},
		Groups:           []uint16{tlswire.GroupX25519, tlswire.GroupP256, tlswire.GroupP384, tlswire.GroupFFDHE2048},
		PreferOwnGroup:   true,
		EchoSessionID:    true,
		AlertNoOverlap:   tlswire.AlertHandshakeFailure,
		AlertDownlevel:   tlswire.AlertProtocolVersion,
		AlertCompression: tlswire.AlertIllegalParameter,
	},
	{
		// wolfSSL 5.x era: 1.3-capable embedded stack, AES-only 1.3 suite
		// set (no ChaCha in the default build), P-256-first group order
		// with the insist-on-own-group retry, and no session-id echo — an
		// embedded stack that skips 1.3 middlebox-compatibility mode.
		Name:       "wolfssl-5",
		MinVersion: tlswire.VersionTLS12,
		MaxVersion: tlswire.VersionTLS13,
		Preference12: []uint16{
			0xC02B, 0xC02F, 0xC02C, 0xC030, 0x009C, 0x009D,
		},
		Preference13:      []uint16{0x1301, 0x1302},
		PreferClientOrder: true,
		Echo:              []tlswire.ExtensionType{tlswire.ExtRenegotiationInfo},
		Echo13:            []tlswire.ExtensionType{tlswire.ExtSupportedVersions, tlswire.ExtKeyShare},
		Groups:            []uint16{tlswire.GroupP256, tlswire.GroupX25519},
		PreferOwnGroup:    true,
		AlertNoOverlap:    tlswire.AlertHandshakeFailure,
		AlertDownlevel:    tlswire.AlertProtocolVersion,
		AlertCompression:  tlswire.AlertIllegalParameter,
	},
}

// stackSuccessor chains each stack to the model a firmware upgrade
// replaces it with. Stacks absent here (mbedtls, embedded-legacy, gotls,
// and the modern stacks themselves) never upgrade.
var stackSuccessor = map[string]string{
	"openssl-1.0.2": "openssl-1.1.1",
	"openssl-1.1.1": "openssl-3.0",
	"wolfssl":       "wolfssl-5",
}

// ServerStacks returns the modeled stack registry in deterministic
// order. Callers must not mutate the returned models.
func ServerStacks() []*ServerStack {
	return serverStacks
}

// AllServerStacks returns every modeled stack — the paper-era registry
// plus the firmware-drift successors — in deterministic order. This is
// the label space active fingerprinting must cover once worlds can be
// built at post-paper dates.
func AllServerStacks() []*ServerStack {
	out := make([]*ServerStack, 0, len(serverStacks)+len(modernServerStacks))
	out = append(out, serverStacks...)
	out = append(out, modernServerStacks...)
	return out
}

// ServerStackByName returns the named model, or nil.
func ServerStackByName(name string) *ServerStack {
	for _, st := range serverStacks {
		if st.Name == name {
			return st
		}
	}
	for _, st := range modernServerStacks {
		if st.Name == name {
			return st
		}
	}
	return nil
}

// stackFor assigns a server stack: vendor-owned domains are coherent
// per vendor (a vendor runs one backend stack), third-party domains key
// on their SLD. The decision hashes the seed rather than drawing from
// the world's rand stream, so adding stacks never perturbs certificate
// minting.
func stackFor(seed int64, owner, sld string) *ServerStack {
	key := owner
	if key == "" {
		key = sld
	}
	h := hashOf("stack:" + key)
	h ^= mixSeed(seed)
	return serverStacks[h%uint64(len(serverStacks))]
}

// Backend firmware-drift window: upgrades land between the end of the
// paper's capture window and six years later. A zero AsOf (the paper
// era) predates every upgrade, so paper-era worlds are byte-identical to
// pre-drift builds.
var (
	backendDriftStart = time.Date(2020, 8, 1, 0, 0, 0, 0, time.UTC)
	backendDriftEnd   = time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
)

// backendStragglerPct of backends never upgrade their stack, whatever
// the date — the paper's central finding is exactly this long tail.
const backendStragglerPct = 30

// stackForAsOf is stackFor evaluated at a virtual date: starting from
// the paper-era assignment, the backend walks its stackSuccessor chain
// for every upgrade whose seeded date has passed. Upgrade dates hash the
// (seed, vendor-or-SLD, stack) triple, so they are stable across worlds
// and monotone in asof: a later date can only advance further along the
// chain, never regress.
func stackForAsOf(seed int64, owner, sld string, asof time.Time) *ServerStack {
	st := stackFor(seed, owner, sld)
	if asof.IsZero() || !asof.After(backendDriftStart) {
		return st
	}
	key := owner
	if key == "" {
		key = sld
	}
	if (hashOf("backend-straggler:"+key)^mixSeed(seed))%100 < backendStragglerPct {
		return st
	}
	window := backendDriftEnd.Sub(backendDriftStart)
	for {
		succ, ok := stackSuccessor[st.Name]
		if !ok {
			return st
		}
		h := hashOf("backend-upgrade:"+key+":"+st.Name) ^ mixSeed(seed)
		upgradeAt := backendDriftStart.Add(time.Duration(h % uint64(window)))
		if asof.Before(upgradeAt) {
			return st
		}
		st = ServerStackByName(succ)
	}
}

// mixSeed spreads the seed's bits so consecutive seeds reshuffle stack
// assignment (a bare XOR of small ints would only touch low bits).
func mixSeed(seed int64) uint64 {
	x := uint64(seed)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// supports12 reports whether the stack accepts the suite at TLS <= 1.2.
func (st *ServerStack) supports12(id uint16) bool {
	for _, s := range st.Preference12 {
		if s == id {
			return true
		}
	}
	return false
}

// supports13 reports whether the stack accepts the TLS 1.3 suite.
func (st *ServerStack) supports13(id uint16) bool {
	for _, s := range st.Preference13 {
		if s == id {
			return true
		}
	}
	return false
}

// selectCipher12 applies the stack's TLS <= 1.2 selection policy; ok is
// false when no offered suite is acceptable.
func (st *ServerStack) selectCipher12(offered []uint16) (uint16, bool) {
	if st.PreferClientOrder {
		for _, id := range offered {
			if tlswire.IsGREASEExtension(id) {
				continue
			}
			if st.supports12(id) {
				return id, true
			}
		}
		return 0, false
	}
	for _, id := range st.Preference12 {
		for _, off := range offered {
			if id == off {
				return id, true
			}
		}
	}
	return 0, false
}

// selectCipher13 picks the TLS 1.3 suite (always server order: every
// 1.3 stack modeled here ranks its own AEAD list).
func (st *ServerStack) selectCipher13(offered []uint16) (uint16, bool) {
	for _, id := range st.Preference13 {
		for _, off := range offered {
			if id == off {
				return id, true
			}
		}
	}
	return 0, false
}

// supportsGroup reports whether the stack accepts the named group.
func (st *ServerStack) supportsGroup(g uint16) bool {
	for _, sg := range st.Groups {
		if sg == g {
			return true
		}
	}
	return false
}

// selectGroup applies the stack's 1.3 key-exchange group policy to the
// client's key_share and supported_groups offers. It returns the chosen
// group, whether the client already sent a share for it (false means the
// stack answers HelloRetryRequest), and whether any mutually supported
// group exists at all.
func (st *ServerStack) selectGroup(hello *tlswire.ClientHello) (group uint16, haveShare, ok bool) {
	shares := hello.KeyShares()
	offered := hello.SupportedGroups()
	shareFor := func(g uint16) bool {
		for _, s := range shares {
			if s.Group == g {
				return true
			}
		}
		return false
	}
	advertised := func(g uint16) bool {
		if shareFor(g) {
			return true // a share implies support even if groups omit it
		}
		for _, og := range offered {
			if og == g {
				return true
			}
		}
		return false
	}
	if len(shares) == 0 && len(offered) == 0 {
		// The hello negotiated 1.3 without any key-exchange offer (some
		// minimal embedded clients do). Retry for the server's top group
		// rather than refusing outright.
		if len(st.Groups) == 0 {
			return 0, false, false
		}
		return st.Groups[0], false, true
	}
	if st.PreferOwnGroup {
		// Walk the server's preference order and take the first group the
		// client supports at all; a missing share for it earns an HRR even
		// when a lower-ranked share is on the table.
		for _, g := range st.Groups {
			if advertised(g) {
				return g, shareFor(g), true
			}
		}
		return 0, false, false
	}
	// Share-respecting policy: accept the client's first usable share.
	for _, s := range shares {
		if st.supportsGroup(s.Group) {
			return s.Group, true, true
		}
	}
	// No usable share; retry for the best mutually advertised group.
	for _, g := range st.Groups {
		if advertised(g) {
			return g, false, true
		}
	}
	return 0, false, false
}

// keyShareLen is the key-exchange payload size per named group.
var keyShareLen = map[uint16]int{
	tlswire.GroupX25519:    32,
	tlswire.GroupP256:      65,
	tlswire.GroupP384:      97,
	tlswire.GroupP521:      133,
	tlswire.GroupFFDHE2048: 256,
}

// keyShareData derives the deterministic key-exchange payload the stack
// sends for a group: stack identity mixed with the client random, sized
// like the real group's wire encoding.
func (st *ServerStack) keyShareData(group uint16, hello *tlswire.ClientHello) []byte {
	n, ok := keyShareLen[group]
	if !ok {
		n = 32
	}
	h := hashOf("keyshare:" + st.Name)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(h>>(8*uint(i%8))) ^ hello.Random[i%32] ^ byte(i)
	}
	return out
}

// fatal builds the stack's refusal.
func fatal(desc tlswire.AlertDescription) *tlswire.Alert {
	return &tlswire.Alert{Level: tlswire.AlertLevelFatal, Description: desc}
}

// Respond answers a ClientHello the way this stack would: with a
// ServerHello carrying the selected cipher, negotiated version, and
// echoed extensions, or with a fatal alert. The function is pure and
// deterministic; the ServerHello random derives from the stack name and
// the client random so repeated handshakes are reproducible.
func (st *ServerStack) Respond(hello *tlswire.ClientHello) (*tlswire.ServerHello, *tlswire.Alert) {
	// Compression: the null method must be offered; stacks with a
	// compression alert refuse any hello offering more than null.
	nullOffered := len(hello.CompressionMethods) == 0
	extraOffered := false
	for _, m := range hello.CompressionMethods {
		if m == 0 {
			nullOffered = true
		} else {
			extraOffered = true
		}
	}
	if !nullOffered {
		return nil, fatal(tlswire.AlertHandshakeFailure)
	}
	if extraOffered && st.AlertCompression != 0 {
		return nil, fatal(st.AlertCompression)
	}

	// Version negotiation: clamp the client's best to the stack ceiling;
	// below the floor the stack refuses with its downlevel alert.
	version := hello.EffectiveVersion()
	if version > st.MaxVersion {
		version = st.MaxVersion
	}
	if version < st.MinVersion {
		return nil, fatal(st.AlertDownlevel)
	}

	// Cipher selection. A 1.3 negotiation with no 1.3 suite on offer
	// falls back to 1.2 when the floor allows (supported_versions said
	// the client speaks it too).
	var cipher uint16
	var ok bool
	if version == tlswire.VersionTLS13 {
		cipher, ok = st.selectCipher13(hello.CipherSuites)
		if !ok && tlswire.VersionTLS12 >= st.MinVersion {
			version = tlswire.VersionTLS12
			cipher, ok = st.selectCipher12(hello.CipherSuites)
		}
	} else {
		cipher, ok = st.selectCipher12(hello.CipherSuites)
	}
	if !ok {
		return nil, fatal(st.AlertNoOverlap)
	}

	sh := &tlswire.ServerHello{
		LegacyVersion: version,
		CipherSuite:   cipher,
	}
	if version == tlswire.VersionTLS13 {
		sh.LegacyVersion = tlswire.VersionTLS12 // 1.3 keeps 0x0303 here
	}
	// Deterministic server random: stack identity mixed with the client
	// random, so every (stack, hello) pair reproduces byte-identically.
	h := hashOf("shrandom:" + st.Name)
	for i := range sh.Random {
		sh.Random[i] = byte(h>>(8*uint(i%8))) ^ hello.Random[i]
	}
	if st.EchoSessionID {
		sh.SessionID = append([]byte(nil), hello.SessionID...)
	}
	if version == tlswire.VersionTLS13 {
		group, haveShare, okGroup := st.selectGroup(hello)
		if !okGroup {
			return nil, fatal(st.AlertNoOverlap)
		}
		for _, t := range st.Echo13 {
			switch t {
			case tlswire.ExtSupportedVersions:
				sh.SetSelectedVersion(tlswire.VersionTLS13)
			case tlswire.ExtKeyShare:
				if haveShare {
					sh.SetKeyShare(group, st.keyShareData(group, hello))
				} else {
					// HelloRetryRequest: the HRR marker random plus the
					// bare wanted group.
					sh.SetRetryKeyShare(group)
				}
			}
		}
		return sh, nil
	}
	for _, t := range st.Echo {
		if !hello.HasExtension(t) {
			continue
		}
		var data []byte
		switch t {
		case tlswire.ExtRenegotiationInfo:
			data = []byte{0}
		case tlswire.ExtECPointFormats:
			data = []byte{1, 0}
		}
		sh.Extensions = append(sh.Extensions, tlswire.Extension{Type: t, Data: data})
	}
	return sh, nil
}
