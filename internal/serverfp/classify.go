package serverfp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/tlswire"
)

// Observation is one battery probe's outcome, reduced to the fields the
// classifier scores. Exactly one of Failed / Alerted / a negotiated
// ServerHello holds per observation.
type Observation struct {
	// Probe names the battery probe that produced the observation.
	Probe string
	// Failed: the engine gave up on this probe (transport failure after
	// retries). Failed observations carry no evidence and score nothing.
	Failed bool
	// Alerted: the server refused the hello with a TLS alert.
	Alerted bool
	// Alert is the refusal description when Alerted.
	Alert tlswire.AlertDescription
	// Version the server negotiated (when not Alerted).
	Version tlswire.Version
	// Cipher the server selected (when not Alerted).
	Cipher uint16
	// Echoed lists the ServerHello extension types in emission order.
	Echoed []uint16
	// HRR: the answer was a TLS 1.3 HelloRetryRequest asking for
	// RetryGroup. Folded into the outcome-shape score component, so the
	// confidence denominator is unchanged for pre-1.3 vectors.
	HRR bool
	// RetryGroup is the named group an HRR requested.
	RetryGroup uint16
}

// ObservationOf reduces an engine result to its observation.
func ObservationOf(r probe.Result) Observation {
	o := Observation{Probe: r.Probe}
	switch {
	case r.Err != nil:
		o.Failed = true
	case r.Response.Alert != nil:
		o.Alerted = true
		o.Alert = r.Response.Alert.Description
	default:
		o.Version = r.Response.NegotiatedVersion
		o.Cipher = r.Response.SelectedCipher
		o.Echoed = r.Response.EchoedExtensions
		o.HRR = r.Response.HelloRetryRequest
		o.RetryGroup = r.Response.RetryGroup
	}
	return o
}

// Key canonically encodes the observation for signature comparison and
// debugging output.
func (o Observation) Key() string {
	switch {
	case o.Failed:
		return o.Probe + "|failed"
	case o.Alerted:
		return fmt.Sprintf("%s|alert:%s", o.Probe, o.Alert)
	}
	parts := make([]string, len(o.Echoed))
	for i, e := range o.Echoed {
		parts[i] = fmt.Sprintf("%04x", e)
	}
	key := fmt.Sprintf("%s|v=%04x|c=%04x|e=%s", o.Probe, uint16(o.Version), o.Cipher, strings.Join(parts, ","))
	if o.HRR {
		key += fmt.Sprintf("|hrr=%s", tlswire.GroupName(o.RetryGroup))
	}
	return key
}

// Classification is the classifier's verdict for one target.
type Classification struct {
	// Label is the best-matching stack name ("unknown" when no probe
	// yielded evidence).
	Label string
	// Confidence is the matched fraction of scoreable components in
	// [0,1]; 1.0 is an exact signature match.
	Confidence float64
	// Runner is the second-best label, for margin diagnostics.
	Runner string
	// Margin is Confidence minus the runner-up's score fraction.
	Margin float64
}

// componentsPerProbe is the score granularity: outcome shape (alert vs
// hello, and which alert), negotiated version, selected cipher, and the
// echoed-extension sequence each contribute one component.
const componentsPerProbe = 4

// Classifier matches response vectors against the expected vectors of
// the modeled server stacks. Expected vectors are derived offline by
// replaying the battery against each stack model, so the classifier
// needs no network and is a pure function afterwards.
type Classifier struct {
	labels   []string                          // sorted for deterministic ties
	expected map[string]map[string]Observation // label -> probe -> expectation
}

// NewClassifier derives signatures for every modeled stack — including
// the firmware-drift successors, so censuses of post-paper worlds
// classify against the full label space — from the given battery.
func NewClassifier(battery []probe.BatteryProbe) *Classifier {
	c := &Classifier{expected: make(map[string]map[string]Observation)}
	for _, st := range simnet.AllServerStacks() {
		sig := make(map[string]Observation, len(battery))
		for _, bp := range battery {
			sig[bp.Name] = expect(st, bp)
		}
		c.labels = append(c.labels, st.Name)
		c.expected[st.Name] = sig
	}
	sort.Strings(c.labels)
	return c
}

// expect replays one battery probe against a stack model. The SNI is a
// fixed placeholder: stack behaviour is SNI-independent by construction
// (only the chain differs per host, and observations don't score it).
func expect(st *simnet.ServerStack, bp probe.BatteryProbe) Observation {
	sh, alert := st.Respond(bp.Hello("fingerprint.invalid"))
	o := Observation{Probe: bp.Name}
	if alert != nil {
		o.Alerted = true
		o.Alert = alert.Description
		return o
	}
	o.Version = sh.SelectedVersion()
	o.Cipher = sh.CipherSuite
	o.Echoed = sh.ExtensionTypes()
	if sh.IsHelloRetryRequest() {
		o.HRR = true
		if g, ok := sh.KeyShareGroup(); ok {
			o.RetryGroup = g
		}
	}
	return o
}

// Labels returns the stack names the classifier can emit, sorted.
func (c *Classifier) Labels() []string {
	return append([]string(nil), c.labels...)
}

// score counts matching components between an observation and an
// expectation. Failed observations are skipped by the caller.
func score(got, want Observation) int {
	s := 0
	if got.Alerted == want.Alerted && (!got.Alerted || got.Alert == want.Alert) &&
		got.HRR == want.HRR && got.RetryGroup == want.RetryGroup {
		s++
	}
	if got.Version == want.Version {
		s++
	}
	if got.Cipher == want.Cipher {
		s++
	}
	if equalU16(got.Echoed, want.Echoed) {
		s++
	}
	return s
}

func equalU16(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Classify scores a response vector against every stack signature and
// returns the best match. Only non-failed observations are scoreable; a
// vector with no evidence at all classifies as "unknown" with zero
// confidence. Ties break to the lexicographically first label, keeping
// the verdict deterministic.
func (c *Classifier) Classify(vec []Observation) Classification {
	scoreable := 0
	for _, o := range vec {
		if !o.Failed {
			scoreable++
		}
	}
	if scoreable == 0 {
		return Classification{Label: "unknown"}
	}
	denom := float64(scoreable * componentsPerProbe)
	best, runner := Classification{}, Classification{}
	for _, label := range c.labels {
		sig := c.expected[label]
		total := 0
		for _, o := range vec {
			if o.Failed {
				continue
			}
			if want, ok := sig[o.Probe]; ok {
				total += score(o, want)
			}
		}
		conf := float64(total) / denom
		switch {
		case best.Label == "" || conf > best.Confidence:
			runner = best
			best = Classification{Label: label, Confidence: conf}
		case runner.Label == "" || conf > runner.Confidence:
			runner = Classification{Label: label, Confidence: conf}
		}
	}
	best.Runner = runner.Label
	best.Margin = best.Confidence - runner.Confidence
	return best
}
