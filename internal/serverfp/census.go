package serverfp

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/probe"
	"repro/internal/simnet"
)

// Target is one fingerprinted server.
type Target struct {
	// SNI is the probed hostname.
	SNI string
	// Vendor owns the domain ("" for shared/CDN hosts).
	Vendor string
	// Label is the classified server stack.
	Label string
	// Confidence of the classification in [0,1].
	Confidence float64
	// TrueLabel is the world's ground-truth stack for the host ("" when
	// unknown, e.g. live targets).
	TrueLabel string
	// Observed counts battery probes that yielded evidence (alert or
	// hello); the rest failed at the transport layer.
	Observed int
}

// Census is the outcome of fingerprinting a set of targets.
type Census struct {
	// Vantage the battery ran from.
	Vantage simnet.Vantage
	// BatterySize is the number of probes sent per target.
	BatterySize int
	// Stats aggregates the engine's work across the whole battery run.
	Stats probe.Stats
	// Targets, sorted by SNI.
	Targets []Target
}

// LabelCount aggregates a census by classified label.
type LabelCount struct {
	Label      string
	Servers    int
	MeanConf   float64
	MinConf    float64
	Mismatches int // targets whose ground truth disagrees with the label
}

// Fingerprint runs the crafted-hello battery against every SNI through
// the resilient engine and classifies each target's response vector.
// Ground-truth labels are attached from the world's server models so
// callers can measure accuracy. The result is deterministic under
// (world seed, engine seed) regardless of opts.Workers.
func Fingerprint(ctx context.Context, w *simnet.World, snis []string, vantage simnet.Vantage, opts probe.Options) (*Census, error) {
	battery := Battery()
	eng := probe.New(probe.WorldProber{World: w}, opts)
	results, stats, err := eng.RunBattery(ctx, snis, vantage, battery)
	if err != nil {
		return nil, fmt.Errorf("serverfp: battery run: %w", err)
	}
	if len(results)%len(battery) != 0 {
		return nil, fmt.Errorf("serverfp: ragged battery results: %d results, %d probes", len(results), len(battery))
	}
	cls := NewClassifier(battery)
	census := &Census{Vantage: vantage, BatterySize: len(battery), Stats: stats}
	for i := 0; i < len(results); i += len(battery) {
		group := results[i : i+len(battery)]
		vec := make([]Observation, len(group))
		observed := 0
		for j, r := range group {
			vec[j] = ObservationOf(r)
			if !vec[j].Failed {
				observed++
			}
		}
		verdict := cls.Classify(vec)
		t := Target{
			SNI:        group[0].SNI,
			Label:      verdict.Label,
			Confidence: verdict.Confidence,
			Observed:   observed,
		}
		if srv, ok := w.Servers[t.SNI]; ok {
			t.Vendor = srv.OwnerVendor
			if srv.Stack != nil {
				t.TrueLabel = srv.Stack.Name
			}
		}
		census.Targets = append(census.Targets, t)
	}
	return census, nil
}

// Accuracy is the fraction of evidence-bearing targets with ground
// truth whose label matches it. Targets with no evidence (all battery
// probes failed) or no ground truth are excluded from the denominator.
// Returns 1 when nothing is scoreable: an empty census is vacuously
// accurate, not broken.
func (c *Census) Accuracy() float64 {
	total, correct := 0, 0
	for _, t := range c.Targets {
		if t.Observed == 0 || t.TrueLabel == "" {
			continue
		}
		total++
		if t.Label == t.TrueLabel {
			correct++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(correct) / float64(total)
}

// LabelCounts aggregates the census per classified label, sorted by
// label name.
func (c *Census) LabelCounts() []LabelCount {
	agg := make(map[string]*LabelCount)
	for _, t := range c.Targets {
		lc, ok := agg[t.Label]
		if !ok {
			lc = &LabelCount{Label: t.Label, MinConf: 1}
			agg[t.Label] = lc
		}
		lc.Servers++
		lc.MeanConf += t.Confidence
		if t.Confidence < lc.MinConf {
			lc.MinConf = t.Confidence
		}
		if t.TrueLabel != "" && t.TrueLabel != t.Label {
			lc.Mismatches++
		}
	}
	labels := make([]string, 0, len(agg))
	for l := range agg {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]LabelCount, 0, len(labels))
	for _, l := range labels {
		lc := agg[l]
		lc.MeanConf /= float64(lc.Servers)
		out = append(out, *lc)
	}
	return out
}

// VendorStacks correlates device vendors with the server stacks backing
// their domains: for each vendor, how many of its fingerprinted hosts
// run each stack. Rows are sorted by vendor then label. Hosts with no
// vendor attribution are grouped under "(shared)".
type VendorStack struct {
	Vendor  string
	Label   string
	Servers int
}

// VendorStacks aggregates the census into (vendor, stack) rows.
func (c *Census) VendorStacks() []VendorStack {
	type key struct{ vendor, label string }
	agg := make(map[key]int)
	for _, t := range c.Targets {
		v := t.Vendor
		if v == "" {
			v = "(shared)"
		}
		agg[key{v, t.Label}]++
	}
	keys := make([]key, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].vendor != keys[j].vendor {
			return keys[i].vendor < keys[j].vendor
		}
		return keys[i].label < keys[j].label
	})
	out := make([]VendorStack, 0, len(keys))
	for _, k := range keys {
		out = append(out, VendorStack{Vendor: k.vendor, Label: k.label, Servers: agg[k]})
	}
	return out
}
