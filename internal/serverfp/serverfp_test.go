package serverfp

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/tlswire"
)

func fpTestWorld(t *testing.T) *simnet.World {
	t.Helper()
	return simnet.Build(simnet.Config{Seed: 42, SNIs: []string{
		"api.roku.com", "scribe.logs.roku.com", "time.samsungcloudsolution.com",
		"lcprd1.samsungcloudsolution.net", "api.sense.com", "cdn.fastly.net",
		"ocsp.digicert.com", "a2.tuyaus.com", "m2.tuyaus.com",
		"devs.tplinkcloud.com", "api.smartthings.com", "fw.ring.com",
	}})
}

func sniList(w *simnet.World) []string {
	snis := make([]string, 0, len(w.Servers))
	for sni := range w.Servers {
		snis = append(snis, sni)
	}
	return snis // RunBattery sorts; order here is irrelevant
}

// TestConfusionMatrix replays the battery against every stack model —
// including the firmware-drift successors (OpenSSL 3.x, wolfSSL 5) —
// and checks the classifier recovers each one exactly: the full
// confusion matrix over the 8-label space is diagonal with
// confidence 1.
func TestConfusionMatrix(t *testing.T) {
	battery := Battery()
	cls := NewClassifier(battery)
	for _, st := range simnet.AllServerStacks() {
		vec := make([]Observation, len(battery))
		for i, bp := range battery {
			vec[i] = expect(st, bp)
		}
		got := cls.Classify(vec)
		if got.Label != st.Name {
			t.Errorf("confusion: %s classified as %s (confidence %.2f, runner %s)",
				st.Name, got.Label, got.Confidence, got.Runner)
		}
		if got.Confidence != 1 {
			t.Errorf("%s: self-match confidence %.3f, want 1.0", st.Name, got.Confidence)
		}
		if got.Margin <= 0 {
			t.Errorf("%s: no margin over runner %s — signatures are ambiguous", st.Name, got.Runner)
		}
	}
}

// TestSignaturesPairwiseDistinct: every pair of stacks must disagree on
// at least one battery probe, else the battery cannot separate them.
func TestSignaturesPairwiseDistinct(t *testing.T) {
	battery := Battery()
	stacks := simnet.AllServerStacks()
	sig := func(st *simnet.ServerStack) []string {
		keys := make([]string, len(battery))
		for i, bp := range battery {
			keys[i] = expect(st, bp).Key()
		}
		return keys
	}
	sigs := make(map[string][]string, len(stacks))
	for _, st := range stacks {
		sigs[st.Name] = sig(st)
	}
	for i, a := range stacks {
		for _, b := range stacks[i+1:] {
			if reflect.DeepEqual(sigs[a.Name], sigs[b.Name]) {
				t.Errorf("stacks %s and %s have identical battery signatures", a.Name, b.Name)
			}
		}
	}
}

func TestFingerprintAccuracy(t *testing.T) {
	w := fpTestWorld(t)
	c, err := Fingerprint(context.Background(), w, sniList(w), simnet.VantageNewYork, probe.Options{Workers: 2, Seed: 7})
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	if c.BatterySize != len(Battery()) {
		t.Fatalf("battery size %d, want %d", c.BatterySize, len(Battery()))
	}
	reachable := 0
	for _, tgt := range c.Targets {
		if tgt.Observed == 0 {
			if tgt.Label != "unknown" || tgt.Confidence != 0 {
				t.Errorf("%s: no evidence but labeled %s (%.2f)", tgt.SNI, tgt.Label, tgt.Confidence)
			}
			continue
		}
		reachable++
		if tgt.TrueLabel == "" {
			t.Errorf("%s: no ground truth in simulated world", tgt.SNI)
		}
	}
	if reachable == 0 {
		t.Fatal("no reachable targets")
	}
	if acc := c.Accuracy(); acc != 1 {
		for _, tgt := range c.Targets {
			if tgt.Observed > 0 && tgt.Label != tgt.TrueLabel {
				t.Logf("  miss: %s classified %s, truth %s (conf %.2f)", tgt.SNI, tgt.Label, tgt.TrueLabel, tgt.Confidence)
			}
		}
		t.Fatalf("fault-free accuracy %.3f, want 1.0", acc)
	}
}

func TestFingerprintDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Census {
		w := fpTestWorld(t)
		clk := probe.NewFakeClock(time.Unix(1700000000, 0))
		// The fake clock drives both engine backoff and the world's stall
		// schedule: no retry or stalled-handshake path sleeps for real.
		w.SetFaults(simnet.Faults{Seed: 5, TransientRate: 0.15, Sleep: clk.Sleep})
		c, err := Fingerprint(context.Background(), w, sniList(w), simnet.VantageFrankfurt,
			probe.Options{Workers: workers, Seed: 7, Clock: clk})
		if err != nil {
			t.Fatalf("Fingerprint(workers=%d): %v", workers, err)
		}
		return c
	}
	base := run(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		if !reflect.DeepEqual(got.Targets, base.Targets) {
			t.Fatalf("workers=%d: census diverged from workers=1", workers)
		}
	}
	// Faulty runs must still classify accurately: the engine retries
	// transients, and alerts are evidence rather than failures.
	if acc := base.Accuracy(); acc < 0.95 {
		t.Fatalf("accuracy under faults %.3f, want >= 0.95", acc)
	}
}

func TestCensusAggregates(t *testing.T) {
	w := fpTestWorld(t)
	c, err := Fingerprint(context.Background(), w, sniList(w), simnet.VantageNewYork, probe.Options{Workers: 1, Seed: 7})
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	total := 0
	for _, lc := range c.LabelCounts() {
		total += lc.Servers
		if lc.MeanConf < 0 || lc.MeanConf > 1 || lc.MinConf > lc.MeanConf {
			t.Errorf("label %s: inconsistent confidence aggregate %+v", lc.Label, lc)
		}
	}
	if total != len(c.Targets) {
		t.Fatalf("LabelCounts sums to %d, want %d", total, len(c.Targets))
	}
	total = 0
	for _, vs := range c.VendorStacks() {
		if vs.Vendor == "" {
			t.Error("empty vendor row; want (shared)")
		}
		total += vs.Servers
	}
	if total != len(c.Targets) {
		t.Fatalf("VendorStacks sums to %d, want %d", total, len(c.Targets))
	}
}

// TestTLS13Discrimination pins how the two 1.3 probes split the 1.3-era
// stacks on key-share policy and cipher preference:
//
//   - tls13 carries only an x25519 share: wolfSSL 5 (P-256-first,
//     prefer-own-group) must HelloRetryRequest for P-256 while both
//     OpenSSL generations and Go accept;
//   - tls13-hrr carries only a P-256 share: OpenSSL 3.x (x25519-first,
//     prefer-own-group) must HelloRetryRequest for x25519 while
//     share-respecting OpenSSL 1.1.1 and Go accept;
//   - server-preference OpenSSL picks AES-256-GCM (0x1302) where
//     client-order Go and wolfSSL 5 pick the offered-first 0x1301.
func TestTLS13Discrimination(t *testing.T) {
	battery := Battery()
	probes := map[string]probe.BatteryProbe{}
	for _, bp := range battery {
		probes[bp.Name] = bp
	}
	stack := func(name string) *simnet.ServerStack {
		st := simnet.ServerStackByName(name)
		if st == nil {
			t.Fatalf("stack %s not modeled", name)
		}
		return st
	}
	type want struct {
		stack, probe string
		hrr          bool
		retryGroup   uint16
		cipher       uint16
	}
	wants := []want{
		{stack: "openssl-1.1.1", probe: "tls13", cipher: 0x1302},
		{stack: "openssl-3.0", probe: "tls13", cipher: 0x1302},
		{stack: "gotls", probe: "tls13", cipher: 0x1301},
		{stack: "wolfssl-5", probe: "tls13", hrr: true, retryGroup: tlswire.GroupP256, cipher: 0x1301},
		{stack: "openssl-1.1.1", probe: "tls13-hrr", cipher: 0x1302},
		{stack: "openssl-3.0", probe: "tls13-hrr", hrr: true, retryGroup: tlswire.GroupX25519, cipher: 0x1302},
		{stack: "gotls", probe: "tls13-hrr", cipher: 0x1301},
		{stack: "wolfssl-5", probe: "tls13-hrr", cipher: 0x1301},
	}
	for _, w := range wants {
		o := expect(stack(w.stack), probes[w.probe])
		if o.Alerted || o.Failed {
			t.Errorf("%s/%s: refused (%s), want a 1.3 hello", w.stack, w.probe, o.Key())
			continue
		}
		if o.Version != tlswire.VersionTLS13 {
			t.Errorf("%s/%s: negotiated %v, want TLS 1.3", w.stack, w.probe, o.Version)
		}
		if o.HRR != w.hrr || o.RetryGroup != w.retryGroup {
			t.Errorf("%s/%s: hrr=%v group=%s, want hrr=%v group=%s", w.stack, w.probe,
				o.HRR, tlswire.GroupName(o.RetryGroup), w.hrr, tlswire.GroupName(w.retryGroup))
		}
		if o.Cipher != w.cipher {
			t.Errorf("%s/%s: cipher %04x, want %04x", w.stack, w.probe, o.Cipher, w.cipher)
		}
	}
	// The pair of 1.3 probes alone must separate the four 1.3-capable
	// stacks pairwise.
	names := []string{"openssl-1.1.1", "openssl-3.0", "gotls", "wolfssl-5"}
	sig := func(name string) string {
		return expect(stack(name), probes["tls13"]).Key() + "//" + expect(stack(name), probes["tls13-hrr"]).Key()
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			if sig(a) == sig(b) {
				t.Errorf("1.3 probes cannot separate %s from %s: %s", a, b, sig(a))
			}
		}
	}
}

// TestFingerprintAccuracyDriftedWorld extends the accuracy floor to the
// firmware-drift labels: a world built at a late asof assigns OpenSSL
// 3.x / wolfSSL 5 ground truth to upgraded backends, and the battery
// must keep >= 95% accuracy over them with 20% transient faults
// injected.
func TestFingerprintAccuracyDriftedWorld(t *testing.T) {
	w := simnet.Build(simnet.Config{
		Seed: 42,
		SNIs: sniList(fpTestWorld(t)),
		AsOf: time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC),
	})
	clk := probe.NewFakeClock(time.Unix(1700000000, 0))
	w.SetFaults(simnet.Faults{Seed: 5, TransientRate: 0.2, Sleep: clk.Sleep})
	c, err := Fingerprint(context.Background(), w, sniList(w), simnet.VantageNewYork,
		probe.Options{Workers: 4, Seed: 7, Clock: clk})
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	modern := 0
	for _, tgt := range c.Targets {
		if tgt.TrueLabel == "openssl-3.0" || tgt.TrueLabel == "wolfssl-5" {
			modern++
		}
	}
	if modern == 0 {
		t.Fatal("late-asof world assigned no drift-successor stacks; the floor does not cover the new labels")
	}
	if acc := c.Accuracy(); acc < 0.95 {
		for _, tgt := range c.Targets {
			if tgt.Observed > 0 && tgt.Label != tgt.TrueLabel {
				t.Logf("  miss: %s classified %s, truth %s (conf %.2f)", tgt.SNI, tgt.Label, tgt.TrueLabel, tgt.Confidence)
			}
		}
		t.Fatalf("drifted-world accuracy under faults %.3f, want >= 0.95", acc)
	}
}

func TestClassifyNoEvidence(t *testing.T) {
	cls := NewClassifier(Battery())
	vec := []Observation{{Probe: "baseline", Failed: true}, {Probe: "tls13", Failed: true}}
	got := cls.Classify(vec)
	if got.Label != "unknown" || got.Confidence != 0 {
		t.Fatalf("all-failed vector classified as %+v, want unknown/0", got)
	}
}
