// Package serverfp implements active server-side TLS stack
// fingerprinting: a battery of crafted ClientHellos is sent to each
// target through the resilient probe engine, and the response vector —
// which cipher the server picked from which order, which extensions it
// echoed, which version it negotiated, and which alert answered which
// malformed hello — is classified against the signatures of the modeled
// server stacks (simnet.ServerStacks). This is the dual of the paper's
// client-side fingerprinting, after "Active TLS Stack Fingerprinting:
// Characterizing TLS Server Deployments at Scale" (PAPERS.md).
//
// Everything here is deterministic under the probe seed: the battery
// hellos are fixed templates, the engine's retry jitter is seeded, and
// classification is a pure function of the response vector, so the same
// world yields the same labels at any worker count.
package serverfp

import (
	"repro/internal/probe"
	"repro/internal/tlswire"
)

// craft builds one battery hello template with a deterministic random.
func craft(tag byte, ver tlswire.Version, suites []uint16, comp []byte, exts []tlswire.Extension) func(sni string) *tlswire.ClientHello {
	return func(sni string) *tlswire.ClientHello {
		ch := &tlswire.ClientHello{
			LegacyVersion:      ver,
			CipherSuites:       append([]uint16(nil), suites...),
			CompressionMethods: append([]byte(nil), comp...),
			SessionID:          []byte{tag, 0x5F, 0x50}, // "_P": battery marker
		}
		for _, e := range exts {
			ch.Extensions = append(ch.Extensions, tlswire.Extension{Type: e.Type, Data: append([]byte(nil), e.Data...)})
		}
		for i := range ch.Random {
			ch.Random[i] = tag ^ byte(i*7)
		}
		if ver > tlswire.VersionSSL30 {
			ch.SetSNI(sni)
		}
		return ch
	}
}

// baselineSuites overlaps every modeled stack's preference list, in a
// modern-client order.
var baselineSuites = []uint16{
	0xC02B, 0xC02F, 0xC030, 0xC02C, 0xCCA9, 0xCCA8,
	0x009C, 0x009D, 0xC013, 0xC014, 0x002F, 0x0035, 0x000A,
}

// commonExts is the extension block stacks differ on echoing.
var commonExts = []tlswire.Extension{
	{Type: tlswire.ExtRenegotiationInfo, Data: []byte{0}},
	{Type: tlswire.ExtECPointFormats, Data: []byte{1, 0}},
	{Type: tlswire.ExtSessionTicket},
	{Type: tlswire.ExtStatusRequest},
	{Type: tlswire.ExtExtendedMasterSecret},
	{Type: tlswire.ExtMaxFragmentLength, Data: []byte{1}},
	{Type: tlswire.ExtSupportedGroups, Data: []byte{0, 4, 0, 0x1D, 0, 0x17}},
	{Type: tlswire.ExtSignatureAlgorithms, Data: []byte{0, 4, 4, 3, 8, 4}},
}

func reversed(suites []uint16) []uint16 {
	out := make([]uint16, len(suites))
	for i, s := range suites {
		out[len(suites)-1-i] = s
	}
	return out
}

// Battery returns the crafted-hello battery, in fixed order. Each probe
// targets one behavioural axis:
//
//	baseline       echo policy and the server's own preference order
//	reversed       server-order vs client-order selection
//	tls13          TLS 1.3 capability (supported_versions/key_share)
//	ssl30          downlevel tolerance: clamp, refuse, or negotiate
//	no-overlap     alert taxonomy when no suite is acceptable
//	compress-offer alert taxonomy on a non-null compression offer
//	cbc-order      AES-CBC preference split (plus GREASE tolerance)
//	tls13-hrr      key-share group policy: a P-256-only share splits
//	               share-respecting stacks (accept) from
//	               prefer-own-group stacks (HelloRetryRequest)
func Battery() []probe.BatteryProbe {
	return []probe.BatteryProbe{
		{Name: "baseline", Hello: craft(0x01, tlswire.VersionTLS12, baselineSuites, []byte{0}, commonExts)},
		{Name: "reversed", Hello: craft(0x02, tlswire.VersionTLS12, reversed(baselineSuites), []byte{0}, commonExts)},
		{Name: "tls13", Hello: craft(0x03, tlswire.VersionTLS12,
			[]uint16{0x1301, 0x1302, 0x1303, 0xC02F, 0xC02B, 0xCCA8},
			[]byte{0},
			append([]tlswire.Extension{
				{Type: tlswire.ExtSupportedVersions, Data: []byte{4, 0x03, 0x04, 0x03, 0x03}},
				{Type: tlswire.ExtKeyShare, Data: []byte{0, 4, 0, 0x1D, 0, 0}},
			}, commonExts...))},
		{Name: "ssl30", Hello: craft(0x04, tlswire.VersionSSL30,
			[]uint16{0x0035, 0x002F, 0x000A, 0x0005}, []byte{0}, nil)},
		{Name: "no-overlap", Hello: craft(0x05, tlswire.VersionTLS12,
			[]uint16{0x0A0A, 0x0019, 0x001B, 0x0026}, []byte{0},
			commonExts[:2])},
		{Name: "compress-offer", Hello: craft(0x06, tlswire.VersionTLS12,
			baselineSuites, []byte{1, 0}, commonExts)},
		{Name: "cbc-order", Hello: craft(0x07, tlswire.VersionTLS12,
			[]uint16{0x0A0A, 0x0035, 0x002F}, []byte{0}, commonExts[:2])},
		{Name: "tls13-hrr", Hello: craft(0x08, tlswire.VersionTLS12,
			[]uint16{0x1301, 0x1302, 0x1303, 0xC02F, 0xC02B, 0x0035},
			[]byte{0},
			append([]tlswire.Extension{
				{Type: tlswire.ExtSupportedVersions, Data: []byte{4, 0x03, 0x04, 0x03, 0x03}},
				// One P-256 share; x25519 is advertised but share-less, so
				// stacks that insist on their own top group must retry.
				{Type: tlswire.ExtKeyShare, Data: []byte{0, 4, 0, 0x17, 0, 0}},
				{Type: tlswire.ExtSupportedGroups, Data: []byte{0, 4, 0, 0x17, 0, 0x1D}},
			}, commonExts[:6]...))},
	}
}
