package report

import (
	"repro/internal/serverfp"
)

// ServerFPCensus renders the active server-stack fingerprinting census:
// how many probed hosts classified to each modeled stack, at what
// confidence, and how often the label disagreed with the world's ground
// truth.
func ServerFPCensus(c *serverfp.Census) Table {
	t := Table{
		Title:   "Server stack census (active fingerprinting)",
		Headers: []string{"Stack", "Servers", "Mean conf", "Min conf", "Mismatches"},
	}
	for _, lc := range c.LabelCounts() {
		t.Rows = append(t.Rows, []string{
			lc.Label, itoa(lc.Servers), f2(lc.MeanConf), f2(lc.MinConf), itoa(lc.Mismatches),
		})
	}
	t.Rows = append(t.Rows, []string{
		"(accuracy vs ground truth)", pct(c.Accuracy()),
		"", "", itoa(c.BatterySize*len(c.Targets)) + " probes sent",
	})
	return t
}

// ServerFPVendorStacks correlates device vendors with the server stacks
// terminating their backend TLS: one row per (vendor, stack) pair, so
// single-stack vendors and mixed fleets are both visible at a glance.
func ServerFPVendorStacks(c *serverfp.Census) Table {
	t := Table{
		Title:   "Vendor / backend server stack correlation",
		Headers: []string{"Vendor", "Server stack", "Servers"},
	}
	for _, vs := range c.VendorStacks() {
		t.Rows = append(t.Rows, []string{vs.Vendor, vs.Label, itoa(vs.Servers)})
	}
	return t
}
