package report

import (
	"repro/internal/dataset"
)

// AdoptionCurve renders the firmware-drift timeline: the device
// population bucketed by best proposed TLS version at each virtual
// date. Every row conserves the population (the three buckets sum to
// Total), and the 1.3 column is nondecreasing down the table.
func AdoptionCurve(points []dataset.AdoptionPoint) Table {
	t := Table{
		Title:   "TLS 1.3 adoption timeline (firmware drift)",
		Headers: []string{"As of", "TLS 1.3", "TLS 1.2", "<= TLS 1.1", "Total", "1.3 share"},
	}
	for _, p := range points {
		share := 0.0
		if total := p.Total(); total > 0 {
			share = float64(p.TLS13) / float64(total)
		}
		t.Rows = append(t.Rows, []string{
			p.Date.UTC().Format("2006-01-02"),
			itoa(p.TLS13), itoa(p.TLS12), itoa(p.Legacy), itoa(p.Total()), pct(share),
		})
	}
	return t
}

// DowngradeStragglers renders the vendors with the most devices that
// never leave their paper-era firmware stack — the long tail still
// proposing 1.2-and-below hellos at the end of the timeline. Rows
// beyond limit fold into a remainder line; a trailing total row keeps
// the full population visible.
func DowngradeStragglers(rows []dataset.StragglerRow, limit int) Table {
	t := Table{
		Title:   "Downgrade stragglers by vendor (never upgrade)",
		Headers: []string{"Vendor", "Devices", "Stragglers", "Share"},
	}
	devices, stragglers := 0, 0
	for i, r := range rows {
		devices += r.Devices
		stragglers += r.Stragglers
		if i < limit {
			t.Rows = append(t.Rows, []string{
				r.Vendor, itoa(r.Devices), itoa(r.Stragglers), pct(r.Fraction()),
			})
		}
	}
	if n := len(rows) - limit; n > 0 {
		t.Rows = append(t.Rows, []string{"(" + itoa(n) + " more vendors)", "", "", ""})
	}
	share := 0.0
	if devices > 0 {
		share = float64(stragglers) / float64(devices)
	}
	t.Rows = append(t.Rows, []string{"Total", itoa(devices), itoa(stragglers), pct(share)})
	return t
}
