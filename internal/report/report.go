// Package report renders the study's tables and figures as aligned text
// and CSV, so the benchmark harness and the iotls CLI print the same rows
// and series the paper reports.
package report

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ciphersuite"
	"repro/internal/fingerprint"
	"repro/internal/graph"
	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/tlswire"
)

// Table is a generic rendered table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// WriteText renders the table with aligned columns. Output is buffered
// per table: the renderers emit many small writes, and the CLI hands
// this an unbuffered stdout.
func (t Table) WriteText(out io.Writer) {
	w := bufio.NewWriter(out)
	defer w.Flush()
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				io.WriteString(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		io.WriteString(w, "\n")
	}
	writeRow(t.Headers)
	for i, wd := range widths {
		if i > 0 {
			io.WriteString(w, "  ")
		}
		io.WriteString(w, strings.Repeat("-", wd))
	}
	io.WriteString(w, "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// WriteCSV renders the table as CSV, buffered like WriteText.
func (t Table) WriteCSV(out io.Writer) {
	w := bufio.NewWriter(out)
	defer w.Flush()
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, 0, len(t.Headers))
	for _, h := range t.Headers {
		cells = append(cells, esc(h))
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }
func f2(f float64) string  { return fmt.Sprintf("%.2f", f) }
func itoa(n int) string    { return fmt.Sprintf("%d", n) }
func ints(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = itoa(n)
	}
	return strings.Join(parts, ",")
}

// Table2 renders the fingerprint degree distribution.
func Table2(d graph.DegreeDistribution) Table {
	return Table{
		Title:   "Table 2: Fingerprint degree distribution",
		Headers: []string{"Degree", "1", "2", "3-5", ">5"},
		Rows: [][]string{{
			"%.Fingerprints", pct(d.Deg1), pct(d.Deg2), pct(d.Deg3to5), pct(d.DegOver5),
		}},
	}
}

// Table3 renders the per-vendor heterogeneity rows.
func Table3(rows []analysis.Table3Row) Table {
	t := Table{
		Title:   "Table 3: Heterogeneity in fingerprints across devices (top vendors)",
		Headers: []string{"Vendor", "#.Fingerprints", "%.shared by 10+ devices", "%.used by 1 device"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Vendor, itoa(r.NumFingerprints), pct(r.SharedBy10Plus), pct(r.UsedBySingleDev)})
	}
	return t
}

// Table4 renders the vendor Jaccard tuples bucketed as in the paper.
func Table4(pairs []graph.SimilarPair) Table {
	t := Table{
		Title:   "Table 4: Vendor tuples with Jaccard similarity >= 0.2",
		Headers: []string{"Jaccard similarity", "Vendor tuple"},
	}
	buckets := []struct {
		label     string
		lo, hi    float64
		inclusive bool
	}{
		{"1", 1, 1.01, true},
		{"[0.7, 1)", 0.7, 1, false},
		{"[0.4, 0.7)", 0.4, 0.7, false},
		{"[0.3, 0.4)", 0.3, 0.4, false},
		{"[0.2, 0.3)", 0.2, 0.3, false},
	}
	for _, b := range buckets {
		var tuples []string
		for _, p := range pairs {
			in := p.Similarity >= b.lo && p.Similarity < b.hi
			if b.inclusive {
				in = p.Similarity >= 1
			}
			if in {
				tuples = append(tuples, "{"+p.A+", "+p.B+"}")
			}
		}
		if len(tuples) > 0 {
			t.Rows = append(t.Rows, []string{b.label, strings.Join(tuples, ", ")})
		}
	}
	return t
}

// Table5 renders the server-tied fingerprint rows.
func Table5(rows []analysis.Table5Row) Table {
	t := Table{
		Title:   "Table 5: Servers linked with particular client fingerprints across vendors",
		Headers: []string{"Second-level domain", "#.FQDNs", "Vulnerability", "#.Visiting devices", "Device vendors"},
	}
	for _, r := range rows {
		vuln := "-"
		if len(r.VulnLabels) > 0 {
			vuln = strings.Join(r.VulnLabels, ",")
		}
		t.Rows = append(t.Rows, []string{r.SLD, itoa(r.FQDNs), vuln, itoa(r.Devices), strings.Join(r.Vendors, ",")})
	}
	return t
}

// LibMatch renders the Section 4.1 matching summary.
func LibMatch(res analysis.LibMatchResult) Table {
	t := Table{
		Title:   "Section 4.1: TLS library matching",
		Headers: []string{"Metric", "Value"},
		Rows: [][]string{
			{"Unique fingerprints", itoa(res.TotalFingerprints)},
			{"Matched fingerprints", fmt.Sprintf("%d (%s)", res.MatchedFingerprints, pct(res.MatchRate()))},
			{"Matched libraries", itoa(len(res.MatchedLibraries))},
			{"Unsupported as of 2020", itoa(res.UnsupportedLibraries)},
		},
	}
	fams := make([]string, 0, len(res.PerFamily))
	for f := range res.PerFamily {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		t.Rows = append(t.Rows, []string{"  from " + f, itoa(res.PerFamily[f])})
	}
	return t
}

// Table11 renders the semantics-aware matching results.
func Table11(rows []analysis.Table11Row) Table {
	t := Table{
		Title:   "Table 11: Semantics-aware fingerprinting results",
		Headers: []string{"Category", "%Total", "#.Vendors", "%Outdated"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Category.String(), pct(r.PercentTotal), itoa(r.Vendors), pct(r.PercentOutdated),
		})
	}
	return t
}

// Table12 renders TLS version proposals.
func Table12(counts map[tlswire.Version]int) Table {
	order := []tlswire.Version{tlswire.VersionTLS12, tlswire.VersionTLS11, tlswire.VersionTLS10, tlswire.VersionSSL30}
	t := Table{
		Title:   "Table 12: TLS version proposed by IoT devices",
		Headers: []string{"TLS version", "#.Proposals"},
	}
	for _, v := range order {
		t.Rows = append(t.Rows, []string{v.String(), itoa(counts[v])})
	}
	return t
}

// VulnStats renders the Section 4.2 vulnerability summary.
func VulnStats(st analysis.VulnStats) Table {
	t := Table{
		Title:   "Section 4.2: Vulnerabilities in ciphersuites",
		Headers: []string{"Metric", "Value"},
		Rows: [][]string{
			{"Fingerprints total", itoa(st.TotalFingerprints)},
			{"With vulnerable component", fmt.Sprintf("%d (%s)", st.WithVulnerable, pct(float64(st.WithVulnerable)/float64(max(1, st.TotalFingerprints))))},
			{"Vulnerable on 2+ devices", pct(float64(st.VulnUsedByMultipleDevices) / float64(max(1, st.WithVulnerable)))},
			{"Anon/export/NULL fingerprints", itoa(st.AwfulFingerprints)},
			{"Anon/export/NULL devices", itoa(st.AwfulDevices)},
			{"Anon/export/NULL vendors", fmt.Sprintf("%d (%s)", len(st.AwfulVendors), strings.Join(st.AwfulVendors, ", "))},
		},
	}
	classes := make([]ciphersuite.VulnClass, 0, len(st.ByClass))
	for cl := range st.ByClass {
		classes = append(classes, cl)
	}
	// Ties broken by name: classes comes from map iteration, and a
	// count-only sort would leave equal-count rows in random order.
	sort.Slice(classes, func(i, j int) bool {
		if st.ByClass[classes[i]] != st.ByClass[classes[j]] {
			return st.ByClass[classes[i]] > st.ByClass[classes[j]]
		}
		return classes[i].String() < classes[j].String()
	})
	for _, cl := range classes {
		t.Rows = append(t.Rows, []string{"  with " + cl.String(),
			fmt.Sprintf("%d (%s)", st.ByClass[cl], pct(float64(st.ByClass[cl])/float64(max(1, st.TotalFingerprints))))})
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Figure2 renders the DoC CDFs as a two-series table.
func Figure2(vendorDoC, deviceDoC map[string]float64) Table {
	xs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	var vVals, dVals []float64
	for _, v := range vendorDoC {
		vVals = append(vVals, v) //lint:allow sortedrange FractionAtMost only counts values <= x, order-free
	}
	for _, v := range deviceDoC {
		dVals = append(dVals, v) //lint:allow sortedrange FractionAtMost only counts values <= x, order-free
	}
	t := Table{
		Title:   "Figure 2: Degree of TLS fingerprint customization (CDF)",
		Headers: []string{"DoC <=", "CDF DoC_vendor", "CDF DoC_device"},
	}
	for _, x := range xs {
		t.Rows = append(t.Rows, []string{
			f2(x),
			f2(graph.FractionAtMost(vVals, x)),
			f2(graph.FractionAtMost(dVals, x)),
		})
	}
	return t
}

// Table6 renders the certificate dataset summary.
func Table6(t6 analysis.Table6) Table {
	return Table{
		Title:   "Table 6: IoT server certificate dataset",
		Headers: []string{"Metric", "Value"},
		Rows: [][]string{
			{"#. Servers (FQDNs)", itoa(t6.Servers)},
			{"#. Leaf certificates", itoa(t6.LeafCerts)},
			{"#. Issuer organizations", itoa(t6.IssuerOrgs)},
			{"#. Device vendors", itoa(t6.DeviceVendors)},
		},
	}
}

// Sharing renders the certificate sharing statistics.
func Sharing(sh analysis.SharingStats) Table {
	return Table{
		Title:   "Section 5.1: Certificate sharing",
		Headers: []string{"Metric", "Value"},
		Rows: [][]string{
			{"Servers per certificate (mean)", f2(sh.ServersPerCertMean)},
			{"Servers per certificate (variance)", f2(sh.ServersPerCertVar)},
			{"Servers per certificate (max)", itoa(sh.ServersPerCertMax)},
			{"Certs on multiple IPs", pct(sh.MultiIPFraction)},
			{"IPs per certificate (mean)", f2(sh.IPsPerCertMean)},
			{"IPs per certificate (max)", itoa(sh.IPsPerCertMax)},
		},
	}
}

// DomainRows renders Table 7/8/14-style domain listings.
func DomainRows(title string, rows []analysis.DomainRow, withNotAfter bool) Table {
	t := Table{Title: title}
	if withNotAfter {
		t.Headers = []string{"Domain", "Not after", "Issued by", "#.devices", "Vendors"}
	} else {
		t.Headers = []string{"Domain", "#.FQDNs", "Leaf issued by", "Chain lengths", "#.devices", "Vendors"}
	}
	for _, r := range rows {
		issuer := r.IssuerOrg
		if r.IssuerPublic {
			issuer += " (public)"
		}
		if withNotAfter {
			t.Rows = append(t.Rows, []string{
				r.SLD, r.NotAfter.Format("01/02/2006"), issuer, itoa(r.Devices), strings.Join(r.Vendors, ","),
			})
		} else {
			t.Rows = append(t.Rows, []string{
				r.SLD, itoa(r.FQDNs), issuer, ints(r.ChainLengths), itoa(r.Devices), strings.Join(r.Vendors, ","),
			})
		}
	}
	return t
}

// Figure5 renders the issuer × vendor matrix (sparse form).
func Figure5(cells []analysis.Figure5Cell) Table {
	t := Table{
		Title:   "Figure 5: Issuers of certificates by device vendor",
		Headers: []string{"Vendor", "Issuer", "Ratio"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{c.Vendor, c.Issuer, f2(c.Ratio)})
	}
	return t
}

// Figure6 renders the validity × CT scatter, one row per vendor summary.
func Figure6(points []analysis.Figure6Point) Table {
	type agg struct {
		minDays, maxDays int
		classes          map[int]bool
		inCT, notInCT    int
	}
	vendors := map[string]*agg{}
	for _, p := range points {
		a := vendors[p.Vendor]
		if a == nil {
			a = &agg{minDays: p.ValidityDays, maxDays: p.ValidityDays, classes: map[int]bool{}}
			vendors[p.Vendor] = a
		}
		if p.ValidityDays < a.minDays {
			a.minDays = p.ValidityDays
		}
		if p.ValidityDays > a.maxDays {
			a.maxDays = p.ValidityDays
		}
		a.classes[p.ChainClass] = true
		if p.InCT {
			a.inCT++
		} else {
			a.notInCT++
		}
	}
	names := make([]string, 0, len(vendors))
	for v := range vendors {
		names = append(names, v)
	}
	sort.Strings(names)
	t := Table{
		Title:   "Figure 6: Certificate validity periods and CT status by vendor",
		Headers: []string{"Vendor", "Validity days (min-max)", "Chain classes", "In CT", "Not in CT"},
	}
	classLabel := map[int]string{0: "public", 1: "private-leaf/public-root", 2: "private"}
	for _, v := range names {
		a := vendors[v]
		var cls []string
		for c := 0; c <= 2; c++ {
			if a.classes[c] {
				cls = append(cls, classLabel[c])
			}
		}
		t.Rows = append(t.Rows, []string{
			v, fmt.Sprintf("%d-%d", a.minDays, a.maxDays), strings.Join(cls, "+"), itoa(a.inCT), itoa(a.notInCT),
		})
	}
	return t
}

// Table9 renders the Netflix validity variance.
func Table9(rows []analysis.Table9Row) Table {
	t := Table{
		Title:   "Table 9: Variance in certificate validity periods by Netflix",
		Headers: []string{"Leaf issuer", "Leaf validity days", "Topmost issuer", "#.Cert", "In CT"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.LeafIssuer, ints(r.ValidityDays), r.TopmostIssuer, itoa(r.Certs), fmt.Sprintf("%v", r.InCT),
		})
	}
	return t
}

// CTStats renders the Section 5.4 CT summary.
func CTStats(st analysis.CTStats) Table {
	t := Table{
		Title:   "Section 5.4: CT logging",
		Headers: []string{"Leaf class", "Logged", "Not logged"},
		Rows: [][]string{
			{"Public trust CA", itoa(st.PublicLogged), itoa(st.PublicNotLogged)},
			{"Private CA", itoa(st.PrivateLogged), itoa(st.PrivateNotLogged)},
		},
	}
	issuers := make([]string, 0, len(st.PublicMissIssuers))
	for i := range st.PublicMissIssuers {
		issuers = append(issuers, i)
	}
	sort.Strings(issuers)
	for _, i := range issuers {
		t.Rows = append(t.Rows, []string{"  missing from CT: " + i, itoa(st.PublicMissIssuers[i]), ""})
	}
	return t
}

// ProbeStats renders the resilient-probe run summary: attempt and retry
// volume, final failures by taxonomy class, and circuit-breaker activity.
func ProbeStats(st probe.Stats) Table {
	return Table{
		Title:   "Probe resilience: retry / failure / breaker summary",
		Headers: []string{"Metric", "Count"},
		Rows: [][]string{
			{"(SNI, vantage) jobs", itoa(st.Jobs)},
			{"probe attempts", itoa(st.Attempts)},
			{"retries", itoa(st.Retries)},
			{"successes", itoa(st.Successes)},
			{"recovered after retry", itoa(st.RecoveredAfterRetry)},
			{"transient failures (final)", itoa(st.TransientFailures)},
			{"terminal failures", itoa(st.TerminalFailures)},
			{"aborted (cancelled)", itoa(st.Aborted)},
			{"breaker opens", itoa(st.BreakerOpens)},
			{"breaker fast-fails", itoa(st.BreakerFastFails)},
			{"retry budget exhausted", itoa(st.BudgetExhausted)},
		},
	}
}

// Table15 renders the popular SLDs.
func Table15(rows []analysis.Table15Row) Table {
	t := Table{
		Title:   "Table 15: Popular SLDs of IoT servers",
		Headers: []string{"SLD", "#.Servers (FQDNs)", "Contacted by #.unique devices"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.SLD, itoa(r.Servers), itoa(r.Devices)})
	}
	return t
}

// Table16 renders the geographic comparison.
func Table16(t16 analysis.Table16) Table {
	t := Table{
		Title:   "Table 16: Certificates usage across geographical locations",
		Headers: []string{"Metric", "New York", "Frankfurt", "Singapore"},
	}
	row := []string{"#.SNIs with certificate extracted"}
	for _, v := range simnet.Vantages() {
		row = append(row, itoa(t16.Extracted[v]))
	}
	t.Rows = append(t.Rows, row)
	t.Rows = append(t.Rows, []string{"#.SNIs shared across all places", itoa(t16.SharedAcrossAll), "", ""})
	row = []string{"#.SNIs with location-exclusive certificate"}
	for _, v := range simnet.Vantages() {
		row = append(row, itoa(t16.ExclusivePerVantage[v]))
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Figure8 renders the Jaccard similarity histogram.
func Figure8(buckets []analysis.Figure8Bucket) Table {
	t := Table{
		Title:   "Figure 8: Jaccard similarity of device suites vs closest library",
		Headers: []string{"Similarity", "Same component", "Similar component"},
	}
	for _, b := range buckets {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("[%.1f,%.1f)", b.Low, b.High), itoa(b.SameComp), itoa(b.SimComp),
		})
	}
	return t
}

// Figure11 renders the lowest-vulnerable-index summary.
func Figure11(rows []analysis.Figure11Row) Table {
	t := Table{
		Title:   "Figure 11: Lowest index of vulnerable ciphersuites by vendor",
		Headers: []string{"Vendor", "Tuples", "With vulnerable", "Vulnerable first", "Min index", "Median index"},
	}
	for _, r := range rows {
		minIdx, median := "-", "-"
		if len(r.Indices) > 0 {
			minIdx = itoa(r.Indices[0])
			median = itoa(r.Indices[len(r.Indices)/2])
		}
		t.Rows = append(t.Rows, []string{
			r.Vendor, itoa(r.Tuples), itoa(len(r.Indices)), itoa(r.FirstPreferred), minIdx, median,
		})
	}
	return t
}

// Figure12 renders the most-preferred components per vendor.
func Figure12(rows []analysis.Figure12Row) Table {
	t := Table{
		Title:   "Figure 12: Most preferred algorithm components by vendor",
		Headers: []string{"Vendor", "Top kex", "Top cipher", "Top MAC"},
	}
	top := func(m map[string]int) string {
		best, bestN := "-", 0
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if m[k] > bestN {
				best, bestN = k, m[k]
			}
		}
		return best
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Vendor, top(r.Kex), top(r.Cipher), top(r.MAC)})
	}
	return t
}

// Census renders the extension censuses.
func Census(c analysis.ExtensionCensus) Table {
	return Table{
		Title:   "Appendix B: extension censuses",
		Headers: []string{"Feature", "#.Devices", "#.Vendors"},
		Rows: [][]string{
			{"OCSP status_request", itoa(c.OCSPDevices), itoa(c.OCSPVendors)},
			{"GREASE in ciphersuites", itoa(c.GREASESuiteDevices), itoa(c.GREASESuiteVendors)},
			{"GREASE in extensions", itoa(c.GREASEExtDevices), itoa(c.GREASEExtVendors)},
			{"TLS_FALLBACK_SCSV", itoa(c.FallbackSCSVDevices), itoa(c.FallbackSCSVVendors)},
		},
	}
}

// SecurityColor maps a fingerprint's level to the Figure 1 palette.
func SecurityColor(f fingerprint.Fingerprint) string {
	switch f.Level() {
	case ciphersuite.Vulnerable:
		if len(f.VulnClasses()) >= 3 {
			return "#8b0000" // many vulnerable components: dark red
		}
		return "#d62728"
	case ciphersuite.Suboptimal:
		return "#aec7e8"
	default:
		return "#4878cf"
	}
}

// SecuritySize maps a fingerprint's vulnerability count to node size.
func SecuritySize(f fingerprint.Fingerprint) float64 {
	return 0.12 + 0.08*float64(len(f.VulnClasses()))
}
