package report

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/pki"
)

// Table10 renders the release dates of major library versions from the
// corpus metadata (the appendix's static reference table).
func Table10(entries []fingerprint.LibraryEntry) Table {
	type agg struct {
		family  string
		series  string
		minYear int
		maxYear int
		count   int
	}
	series := map[string]*agg{}
	for _, e := range entries {
		s := e.Family + " " + majorSeries(e.Version)
		a := series[s]
		if a == nil {
			a = &agg{family: e.Family, series: majorSeries(e.Version), minYear: e.ReleaseYear, maxYear: e.ReleaseYear}
			series[s] = a
		}
		a.count++
		if e.ReleaseYear < a.minYear {
			a.minYear = e.ReleaseYear
		}
		if e.ReleaseYear > a.maxYear {
			a.maxYear = e.ReleaseYear
		}
	}
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := Table{
		Title:   "Table 10: Release dates of major library versions",
		Headers: []string{"Library", "Series", "First release", "Last release", "#.Versions"},
	}
	for _, k := range keys {
		a := series[k]
		t.Rows = append(t.Rows, []string{
			a.family, a.series, itoa(a.minYear), itoa(a.maxYear), itoa(a.count),
		})
	}
	return t
}

// majorSeries maps "1.0.2u" to "1.0.2", "3.15.3-stable" to "3.15".
func majorSeries(version string) string {
	dots := 0
	for i := 0; i < len(version); i++ {
		if version[i] == '.' {
			dots++
			if dots == 2 {
				// Include trailing digits of the second component.
				j := i + 1
				for j < len(version) && version[j] >= '0' && version[j] <= '9' {
					j++
				}
				return version[:j]
			}
		}
	}
	return version
}

// Table13 renders the vendor index mapping of Figure 1.
func Table13() Table {
	vendors := dataset.Vendors()
	sort.Slice(vendors, func(i, j int) bool { return vendors[i].Index < vendors[j].Index })
	t := Table{
		Title:   "Table 13: Index and vendor mapping in Figure 1",
		Headers: []string{"Index", "Vendor"},
	}
	for _, v := range vendors {
		t.Rows = append(t.Rows, []string{itoa(v.Index), v.Name})
	}
	return t
}

// ExtensionFrequencies renders the Appendix B.3.3 comparison.
func ExtensionFrequencies(rows []analysis.ExtensionFrequency, topN int) Table {
	t := Table{
		Title:   "Appendix B.3.3: Extension usage, devices vs known libraries",
		Headers: []string{"Extension", "%.Device fingerprints", "%.Library fingerprints", "Delta"},
	}
	for i, r := range rows {
		if topN > 0 && i >= topN {
			break
		}
		t.Rows = append(t.Rows, []string{
			r.Extension.String(), pct(r.DeviceShare), pct(r.CorpusShare),
			fmt.Sprintf("%+.2f%%", 100*r.Delta()),
		})
	}
	return t
}

// ReportCards renders the per-vendor certificate hygiene grades.
func ReportCards(grades []pki.VendorGrade, now time.Time) Table {
	t := Table{
		Title:   fmt.Sprintf("Vendor certificate report cards (%s)", now.Format("2006-01-02")),
		Headers: []string{"Vendor", "Grade", "Servers", "Errors", "Warnings"},
	}
	sorted := append([]pki.VendorGrade(nil), grades...)
	sort.Slice(sorted, func(i, j int) bool {
		gi, gj := sorted[i].Grade(), sorted[j].Grade()
		if gi != gj {
			return gi < gj
		}
		return sorted[i].Vendor < sorted[j].Vendor
	})
	for _, g := range sorted {
		t.Rows = append(t.Rows, []string{
			g.Vendor, g.Grade(), itoa(g.Servers), itoa(g.Errors), itoa(g.Warnings),
		})
	}
	return t
}
