package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/fingerprint"
	"repro/internal/graph"
	"repro/internal/simnet"
	"repro/internal/tlswire"
)

func TestWriteTextAlignment(t *testing.T) {
	tb := Table{
		Title:   "Demo",
		Headers: []string{"A", "LongHeader"},
		Rows:    [][]string{{"value-that-is-long", "x"}, {"y", "z"}},
	}
	var buf bytes.Buffer
	tb.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, separator, two rows.
	if len(lines) != 5 {
		t.Fatalf("lines %d", len(lines))
	}
	// Header and rows align on the same column.
	hdrCol := strings.Index(lines[1], "LongHeader")
	rowCol := strings.Index(lines[3], "x")
	if hdrCol != rowCol {
		t.Fatalf("columns misaligned: %d vs %d\n%s", hdrCol, rowCol, out)
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	tb := Table{
		Title:   "CSV",
		Headers: []string{"name", "value"},
		Rows:    [][]string{{`has,comma`, `has"quote`}, {"plain", "ok"}},
	}
	var buf bytes.Buffer
	tb.WriteCSV(&buf)
	out := buf.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Errorf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote not doubled: %s", out)
	}
	if !strings.HasPrefix(out, "name,value\n") {
		t.Errorf("header row wrong: %s", out)
	}
}

func TestTable2Rendering(t *testing.T) {
	tb := Table2(graph.DegreeDistribution{Total: 100, Deg1: 0.7747, Deg2: 0.1143, Deg3to5: 0.0832, DegOver5: 0.0278})
	var buf bytes.Buffer
	tb.WriteText(&buf)
	for _, want := range []string{"77.47%", "11.43%", "8.32%", "2.78%"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestTable4Buckets(t *testing.T) {
	pairs := []graph.SimilarPair{
		{A: "HDHomeRun", B: "Silicondust", Similarity: 1.0},
		{A: "Sharp", B: "TCL", Similarity: 0.75},
		{A: "Arlo", B: "NETGEAR", Similarity: 0.5},
		{A: "Onkyo", B: "Pioneer", Similarity: 0.33},
		{A: "Denon", B: "Marantz", Similarity: 0.25},
	}
	tb := Table4(pairs)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows %d, want one per bucket", len(tb.Rows))
	}
	if tb.Rows[0][0] != "1" || !strings.Contains(tb.Rows[0][1], "HDHomeRun") {
		t.Errorf("bucket 1 wrong: %v", tb.Rows[0])
	}
	if tb.Rows[1][0] != "[0.7, 1)" || !strings.Contains(tb.Rows[1][1], "Sharp") {
		t.Errorf("bucket 0.7 wrong: %v", tb.Rows[1])
	}
}

func TestTable12Order(t *testing.T) {
	tb := Table12(map[tlswire.Version]int{
		tlswire.VersionTLS12: 5214,
		tlswire.VersionTLS11: 18,
		tlswire.VersionTLS10: 236,
		tlswire.VersionSSL30: 31,
	})
	if len(tb.Rows) != 4 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "TLS 1.2" || tb.Rows[0][1] != "5214" {
		t.Errorf("first row %v", tb.Rows[0])
	}
	if tb.Rows[3][0] != "SSL 3.0" || tb.Rows[3][1] != "31" {
		t.Errorf("last row %v", tb.Rows[3])
	}
}

func TestDomainRowsVariants(t *testing.T) {
	rows := []analysis.DomainRow{{
		SLD:          "wink.com",
		FQDNs:        2,
		IssuerOrg:    "COMODO",
		IssuerPublic: true,
		ChainLengths: []int{1, 2},
		Devices:      11,
		Vendors:      []string{"Samsung", "Wink"},
		NotAfter:     time.Date(2019, 4, 17, 0, 0, 0, 0, time.UTC),
	}}
	t8 := DomainRows("Table 8", rows, true)
	var buf bytes.Buffer
	t8.WriteText(&buf)
	if !strings.Contains(buf.String(), "04/17/2019") {
		t.Errorf("date missing: %s", buf.String())
	}
	t7 := DomainRows("Table 7", rows, false)
	buf.Reset()
	t7.WriteText(&buf)
	if !strings.Contains(buf.String(), "1,2") {
		t.Errorf("chain lengths missing: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "COMODO (public)") {
		t.Errorf("issuer annotation missing: %s", buf.String())
	}
}

func TestTable16Layout(t *testing.T) {
	t16 := Table16(analysis.Table16{
		Extracted: map[simnet.Vantage]int{
			simnet.VantageNewYork:   1151,
			simnet.VantageFrankfurt: 1149,
			simnet.VantageSingapore: 1150,
		},
		SharedAcrossAll: 1087,
		ExclusivePerVantage: map[simnet.Vantage]int{
			simnet.VantageNewYork:   106,
			simnet.VantageFrankfurt: 99,
			simnet.VantageSingapore: 82,
		},
	})
	var buf bytes.Buffer
	t16.WriteText(&buf)
	for _, want := range []string{"1151", "1149", "1150", "1087", "106", "99", "82"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestSecurityColorAndSize(t *testing.T) {
	optimal := fingerprint.Fingerprint{Version: tlswire.VersionTLS12, CipherSuites: []uint16{0xC02F}}
	sub := fingerprint.Fingerprint{Version: tlswire.VersionTLS12, CipherSuites: []uint16{0x002F}}
	vuln := fingerprint.Fingerprint{Version: tlswire.VersionTLS12, CipherSuites: []uint16{0x000A}}
	awful := fingerprint.Fingerprint{Version: tlswire.VersionTLS12, CipherSuites: []uint16{0x000A, 0x0005, 0x0019, 0x0002}}

	if SecurityColor(optimal) == SecurityColor(vuln) {
		t.Error("optimal and vulnerable share a color")
	}
	if SecurityColor(sub) == SecurityColor(vuln) {
		t.Error("suboptimal and vulnerable share a color")
	}
	if SecurityColor(awful) != "#8b0000" {
		t.Errorf("many-component fingerprint should be dark red, got %s", SecurityColor(awful))
	}
	if SecuritySize(awful) <= SecuritySize(optimal) {
		t.Error("vulnerable nodes should be larger")
	}
}

func TestFigure6Aggregation(t *testing.T) {
	tb := Figure6([]analysis.Figure6Point{
		{Vendor: "Roku", ValidityDays: 5000, ChainClass: 2, InCT: false},
		{Vendor: "Roku", ValidityDays: 398, ChainClass: 0, InCT: true},
		{Vendor: "Wyze", ValidityDays: 90, ChainClass: 0, InCT: true},
	})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	var buf bytes.Buffer
	tb.WriteText(&buf)
	if !strings.Contains(buf.String(), "398-5000") {
		t.Errorf("Roku validity range missing: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "public+private") {
		t.Errorf("chain classes missing: %s", buf.String())
	}
}
