package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/libcorpus"
	"repro/internal/pki"
	"repro/internal/tlswire"
)

func TestTable10Series(t *testing.T) {
	tb := Table10(libcorpus.OpenSSL())
	var buf bytes.Buffer
	tb.WriteText(&buf)
	for _, want := range []string{"OpenSSL", "1.0.2", "1.1.1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestMajorSeries(t *testing.T) {
	cases := map[string]string{
		"1.0.2u":        "1.0.2", // letter revisions collapse
		"1.1.1-pre2":    "1.1.1",
		"3.15.3-stable": "3.15.3", // suffixes collapse
		"2.1.1":         "2.1.1",
		"1.8.0":         "1.8.0",
		"WCv4.0-RC4":    "WCv4.0-RC4", // no second dot group
	}
	for in, want := range cases {
		if got := majorSeries(in); got != want {
			t.Errorf("majorSeries(%q)=%q want %q", in, got, want)
		}
	}
}

func TestTable13AllVendors(t *testing.T) {
	tb := Table13()
	if len(tb.Rows) != 65 {
		t.Fatalf("rows %d want 65", len(tb.Rows))
	}
	if tb.Rows[0][0] != "1" || tb.Rows[0][1] != "Roku" {
		t.Errorf("first row %v", tb.Rows[0])
	}
	if tb.Rows[64][0] != "65" || tb.Rows[64][1] != "Withings" {
		t.Errorf("last row %v", tb.Rows[64])
	}
}

func TestExtensionFrequenciesRender(t *testing.T) {
	rows := []analysis.ExtensionFrequency{
		{Extension: tlswire.ExtSessionTicket, DeviceShare: 0.8, CorpusShare: 0.3},
		{Extension: tlswire.ExtALPN, DeviceShare: 0.4, CorpusShare: 0.6},
	}
	tb := ExtensionFrequencies(rows, 1)
	if len(tb.Rows) != 1 {
		t.Fatalf("topN not applied: %d rows", len(tb.Rows))
	}
	var buf bytes.Buffer
	tb.WriteText(&buf)
	if !strings.Contains(buf.String(), "session_ticket") || !strings.Contains(buf.String(), "+50.00%") {
		t.Errorf("render wrong:\n%s", buf.String())
	}
}

func TestReportCardsRender(t *testing.T) {
	grades := []pki.VendorGrade{
		{Vendor: "Tuya", Servers: 4, Errors: 4},
		{Vendor: "Wyze", Servers: 4},
	}
	tb := ReportCards(grades, time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC))
	if len(tb.Rows) != 2 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// Sorted best grade first.
	if tb.Rows[0][0] != "Wyze" || tb.Rows[0][1] != "A" {
		t.Errorf("first row %v", tb.Rows[0])
	}
	if tb.Rows[1][0] != "Tuya" || tb.Rows[1][1] != "F" {
		t.Errorf("second row %v", tb.Rows[1])
	}
}
