package libcorpus

import (
	"strings"
	"testing"

	"repro/internal/ciphersuite"
	"repro/internal/fingerprint"
	"repro/internal/tlswire"
)

func TestFamilyCounts(t *testing.T) {
	// Appendix B.1 counts.
	if n := len(OpenSSL()); n != 19 {
		t.Errorf("OpenSSL: %d want 19", n)
	}
	if n := len(WolfSSL()); n != 38 {
		t.Errorf("wolfSSL: %d want 38", n)
	}
	if n := len(MbedTLS()); n != 113 {
		t.Errorf("Mbed TLS: %d want 113", n)
	}
	if n := len(CurlOpenSSL()); n != 5591 {
		t.Errorf("curl+OpenSSL: %d want 5591", n)
	}
	if n := len(CurlWolfSSL()); n != 1130 {
		t.Errorf("curl+wolfSSL: %d want 1130", n)
	}
	if n := len(Build()); n != 19+38+113+5591+1130 {
		t.Errorf("total: %d want 6891", n)
	}
}

func TestConsecutiveVersionsShareFingerprints(t *testing.T) {
	// The paper notes that consecutive versions often share a fingerprint;
	// the matcher must then report the highest version.
	m := NewMatcher()
	if m.DistinctFingerprints() >= m.CorpusSize() {
		t.Fatalf("expected fingerprint sharing: %d distinct of %d entries",
			m.DistinctFingerprints(), m.CorpusSize())
	}
	// 1.0.2f and 1.0.2u share a print (per the Wyze case study, all of
	// 1.0.2f/1.0.2o/1.0.2u share the 3-tuple).
	var f2f, f2u fingerprint.Fingerprint
	for _, e := range OpenSSL() {
		switch e.Version {
		case "1.0.2f":
			f2f = e.Print
		case "1.0.2u":
			f2u = e.Print
		}
	}
	if f2f.Key() != f2u.Key() {
		t.Fatal("1.0.2f and 1.0.2u should share a fingerprint")
	}
	// In the full corpus a curl build may legitimately share the print;
	// restrict to OpenSSL entries to check highest-version selection.
	om := fingerprint.NewMatcher(OpenSSL())
	got, ok := om.MatchExact(f2f)
	if !ok {
		t.Fatal("no exact match for an in-corpus print")
	}
	if got.Version != "1.0.2u" {
		t.Fatalf("matcher should pick highest sharing version, got %s", got.Version)
	}
	if _, ok := m.MatchExact(f2f); !ok {
		t.Fatal("full corpus must also match the print")
	}
}

func TestEraEvolution(t *testing.T) {
	// Old OpenSSL proposes vulnerable suites; 1.1.1 proposes TLS 1.3.
	var v100t, v111i fingerprint.Fingerprint
	for _, e := range OpenSSL() {
		switch e.Version {
		case "1.0.0t":
			v100t = e.Print
		case "1.1.1i":
			v111i = e.Print
		}
	}
	if v100t.Level() != ciphersuite.Vulnerable {
		t.Errorf("1.0.0t should be vulnerable, got %v", v100t.Level())
	}
	if v100t.Version != tlswire.VersionTLS10 {
		t.Errorf("1.0.0t version %v", v100t.Version)
	}
	if v111i.Version != tlswire.VersionTLS13 {
		t.Errorf("1.1.1i version %v", v111i.Version)
	}
	for _, cs := range v111i.CipherSuites {
		s, _ := ciphersuite.Lookup(cs)
		if s.VulnClass() == ciphersuite.VulnRC4 {
			t.Error("1.1.1 must not propose RC4")
		}
	}
}

func TestRC4DroppedInLateReleases(t *testing.T) {
	check := func(family, version string, print fingerprint.Fingerprint, wantRC4 bool) {
		has := false
		for _, cs := range print.CipherSuites {
			if s, ok := ciphersuite.Lookup(cs); ok && s.VulnClass() == ciphersuite.VulnRC4 {
				has = true
			}
		}
		if has != wantRC4 {
			t.Errorf("%s %s: RC4 present=%v want %v", family, version, has, wantRC4)
		}
	}
	for _, e := range OpenSSL() {
		switch e.Version {
		case "1.0.1h":
			check("OpenSSL", e.Version, e.Print, true)
		case "1.0.1u":
			check("OpenSSL", e.Version, e.Print, false)
		}
	}
	for _, e := range MbedTLS() {
		switch e.Version {
		case "1.2.5":
			check("Mbed TLS", e.Version, e.Print, true)
		case "1.2.15":
			check("Mbed TLS", e.Version, e.Print, false)
		}
	}
}

func TestCurlCrossProperties(t *testing.T) {
	entries := CurlOpenSSL()
	alpnSeen, noALPNSeen := false, false
	for _, e := range entries {
		hasALPN := false
		for _, x := range e.Print.Extensions {
			if x == uint16(tlswire.ExtALPN) {
				hasALPN = true
			}
		}
		parts := strings.SplitN(e.Version, "/", 2)
		if len(parts) != 2 {
			t.Fatalf("bad cross version %q", e.Version)
		}
		minor := curlMinor(parts[0])
		if minor >= 33 && !hasALPN {
			t.Fatalf("%s should carry ALPN", e.Version)
		}
		if minor < 33 && hasALPN {
			t.Fatalf("%s should not carry ALPN", e.Version)
		}
		if hasALPN {
			alpnSeen = true
		} else {
			noALPNSeen = true
		}
	}
	if !alpnSeen || !noALPNSeen {
		t.Fatal("cross product should span the ALPN transition")
	}
}

func TestCurlWolfRange(t *testing.T) {
	for _, e := range CurlWolfSSL() {
		parts := strings.SplitN(e.Version, "/", 2)
		m := curlMinor(parts[0])
		if m < 25 || m > 68 {
			t.Fatalf("curl+wolfSSL version out of range: %s", e.Version)
		}
	}
}

func TestOutdatedMajority(t *testing.T) {
	// Most of the corpus must be unsupported by 2020 (the paper: 14 of 16
	// matched libraries unsupported).
	total, outdated := 0, 0
	for _, e := range Build() {
		total++
		if !e.SupportedIn2020 {
			outdated++
		}
	}
	if ratio := float64(outdated) / float64(total); ratio < 0.80 {
		t.Fatalf("outdated ratio %.2f, want >= 0.80", ratio)
	}
}

func TestAllPrintsNonEmptyAndRegistered(t *testing.T) {
	for _, e := range Build() {
		if len(e.Print.CipherSuites) == 0 {
			t.Fatalf("%s: empty suite list", e.Name())
		}
		for _, cs := range e.Print.CipherSuites {
			if _, ok := ciphersuite.Lookup(cs); !ok {
				t.Fatalf("%s proposes unregistered suite %04x", e.Name(), cs)
			}
		}
		if !e.Print.Version.Known() {
			t.Fatalf("%s: bad version", e.Name())
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Build(), Build()
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i].Name() != b[i].Name() || a[i].Print.Key() != b[i].Print.Key() {
			t.Fatalf("nondeterministic entry %d", i)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Build()
	}
}

func BenchmarkMatcherConstruction(b *testing.B) {
	entries := Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fingerprint.NewMatcher(entries)
	}
}
