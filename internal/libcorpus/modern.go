package libcorpus

// Post-capture-window library evolution: the 1.3-era defaults of
// OpenSSL 1.1.1 (already in the appendix corpus), OpenSSL 3.x, and
// wolfSSL 4.x/5.x, as dated models for the firmware-drift timeline. The
// paper's corpus stops at the August 2020 capture window, so these
// entries live outside Build() — the 6,891-entry corpus size is
// load-bearing for the Table 10 reproduction — and are layered in only
// when an analysis runs at a post-paper `asof` date (NewMatcherAsOf).

import (
	"sync"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/tlswire"
)

// ModernEntry is a dated corpus entry: a library default fingerprint
// plus the release date firmware built on it could first ship.
type ModernEntry struct {
	fingerprint.LibraryEntry
	// Released is when the version shipped; a drift timeline only admits
	// entries released before its asof date.
	Released time.Time
}

var (
	modernOnce   sync.Once
	modernCorpus []ModernEntry
)

// Modern returns the dated post-2020 evolution entries, oldest first.
// Callers may reorder the returned slice; the entries are shared and
// immutable.
func Modern() []ModernEntry {
	modernOnce.Do(func() { modernCorpus = buildModern() })
	return append([]ModernEntry(nil), modernCorpus...)
}

// ModernAsOf returns the modern entries released strictly before asof
// (all of them when asof is zero — a zero asof means "no timeline", and
// callers in that regime never consult the modern corpus anyway).
func ModernAsOf(asof time.Time) []ModernEntry {
	all := Modern()
	if asof.IsZero() {
		return all
	}
	out := make([]ModernEntry, 0, len(all))
	for _, e := range all {
		if e.Released.Before(asof) {
			out = append(out, e)
		}
	}
	return out
}

// NewMatcherAsOf builds a matcher over the paper corpus plus every
// modern entry released before asof, so library matching keeps up with
// firmware drift. A zero asof reproduces NewMatcher exactly.
func NewMatcherAsOf(asof time.Time) *fingerprint.Matcher {
	entries := Build()
	if !asof.IsZero() {
		for _, e := range ModernAsOf(asof) {
			entries = append(entries, e.LibraryEntry)
		}
	}
	return fingerprint.NewMatcher(entries)
}

// date is a terse UTC date literal for the release table.
func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

// buildModern constructs the dated 1.3-era entries.
func buildModern() []ModernEntry {
	entry := func(family, version string, year int, released time.Time, print fingerprint.Fingerprint) ModernEntry {
		return ModernEntry{
			LibraryEntry: fingerprint.LibraryEntry{
				Family:      family,
				Version:     version,
				ReleaseYear: year,
				Print:       print,
			},
			Released: released,
		}
	}
	return []ModernEntry{
		// wolfSSL 4.5+ enabled TLS 1.3 in the default embedded build.
		entry("wolfSSL", "4.5.0", 2020, date(2020, 8, 24), wolfSSL13Print(false)),
		entry("wolfSSL", "5.0.0", 2021, date(2021, 11, 1), wolfSSL13Print(true)),
		entry("wolfSSL", "5.6.3", 2023, date(2023, 6, 15), wolfSSL13Print(true)),
		// OpenSSL 3.x: the 1.1.1 suite order with the legacy CBC tail
		// trimmed at the default security level, SCT advertised.
		entry("OpenSSL", "3.0.0", 2021, date(2021, 9, 7), openSSL3Print(false)),
		entry("OpenSSL", "3.0.8", 2023, date(2023, 2, 7), openSSL3Print(false)),
		entry("OpenSSL", "3.2.0", 2023, date(2023, 11, 23), openSSL3Print(true)),
	}
}

// openSSL3Print models the OpenSSL 3.x default client hello. The 3.2
// variant drops the TLS 1.1-era CBC tail entirely.
func openSSL3Print(v32 bool) fingerprint.Fingerprint {
	suites := []uint16{
		0x1302, 0x1303, 0x1301, 0xC02C, 0xC030, 0xCCA9, 0xCCA8,
		0xC02B, 0xC02F, 0x009F, 0x009E, 0xC024, 0xC028, 0xC023,
		0xC027, 0xC00A, 0xC014, 0xC009, 0xC013, 0x009D, 0x009C,
		0x003D, 0x003C, 0x0035, 0x002F, 0x00FF,
	}
	if v32 {
		suites = removeSuites(suites, 0xC024, 0xC028, 0xC023, 0xC027,
			0xC00A, 0xC014, 0xC009, 0xC013, 0x003D, 0x003C, 0x0035, 0x002F)
	}
	return fingerprint.Fingerprint{
		Version:      tlswire.VersionTLS13,
		CipherSuites: suites,
		Extensions: []uint16{
			uint16(tlswire.ExtServerName),
			uint16(tlswire.ExtSupportedGroups),
			uint16(tlswire.ExtECPointFormats),
			uint16(tlswire.ExtSessionTicket),
			uint16(tlswire.ExtRenegotiationInfo),
			uint16(tlswire.ExtSignatureAlgorithms),
			uint16(tlswire.ExtStatusRequest),
			uint16(tlswire.ExtSignedCertTimestamp),
			uint16(tlswire.ExtEncryptThenMAC),
			uint16(tlswire.ExtExtendedMasterSecret),
			uint16(tlswire.ExtSupportedVersions),
			uint16(tlswire.ExtPSKKeyExchangeModes),
			uint16(tlswire.ExtKeyShare),
		},
	}
}

// wolfSSL13Print models the 1.3-era wolfSSL default hello: a lean
// AES-GCM-first suite list (ChaCha only from 5.x) and the minimal 1.3
// extension block an embedded client sends.
func wolfSSL13Print(v5 bool) fingerprint.Fingerprint {
	suites := []uint16{
		0x1301, 0x1302, 0xC02B, 0xC02F, 0xC02C, 0xC030,
		0x009C, 0x009D, 0x002F, 0x0035,
	}
	if v5 {
		suites = append([]uint16{0x1301, 0x1302, 0x1303}, suites[2:]...)
	}
	return fingerprint.Fingerprint{
		Version:      tlswire.VersionTLS13,
		CipherSuites: suites,
		Extensions: []uint16{
			uint16(tlswire.ExtServerName),
			uint16(tlswire.ExtSupportedGroups),
			uint16(tlswire.ExtSignatureAlgorithms),
			uint16(tlswire.ExtSupportedVersions),
			uint16(tlswire.ExtPSKKeyExchangeModes),
			uint16(tlswire.ExtKeyShare),
		},
	}
}
