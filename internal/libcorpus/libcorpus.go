// Package libcorpus builds the known-TLS-library fingerprint corpus used
// for matching device fingerprints (Section 4.1 / Appendix B.1).
//
// The paper compiled real library builds — 19 OpenSSL versions, 38 wolfSSL
// versions, 113 Mbed TLS versions, plus 5,591 curl×OpenSSL and 1,130
// curl×wolfSSL combinations (6,891 fingerprints total) — and captured each
// default client's ClientHello. We have no build farm, so this package
// reproduces the corpus *generatively*: each library family has an
// evolution model of its default ciphersuite list and extension set across
// version eras (older versions propose RC4/3DES/DES/EXPORT-era suites;
// newer ones propose ECDHE+AEAD and eventually TLS 1.3), and curl cross
// products layer curl-driven extension changes (ALPN from 7.33, etc.) on
// top of the TLS library's suite list. Consecutive versions frequently
// share a fingerprint, exactly as the paper notes.
//
// The substitution preserves what matters downstream: exact matching is
// string equality on the fingerprint 3-tuple, and the dataset generator
// plants true library stacks in a controlled fraction of devices, so the
// match-rate experiment exercises the identical code path.
package libcorpus

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/fingerprint"
	"repro/internal/tlswire"
)

// Build constructs the full corpus: OpenSSL, wolfSSL, Mbed TLS, and the
// curl cross products, sized to the paper's counts.
func Build() []fingerprint.LibraryEntry {
	var out []fingerprint.LibraryEntry
	out = append(out, OpenSSL()...)
	out = append(out, WolfSSL()...)
	out = append(out, MbedTLS()...)
	out = append(out, CurlOpenSSL()...)
	out = append(out, CurlWolfSSL()...)
	return out
}

// NewMatcher builds a fingerprint.Matcher over the full corpus.
func NewMatcher() *fingerprint.Matcher {
	return fingerprint.NewMatcher(Build())
}

// The corpus is deterministic — no seed, no clock, no configuration —
// and every downstream consumer treats entry prints as immutable (the
// dataset generator deep-copies before mutating, the matcher only
// reads), so each family is constructed once. The public accessors hand
// out a fresh top-level slice over the shared immutable entries: callers
// may append, reorder, or subslice freely; only the inner suite and
// extension lists are shared.
var (
	corpusOnce                                                         sync.Once
	osslCorpus, wolfCorpus, mbedCorpus, curlOSSLCorpus, curlWolfCorpus []fingerprint.LibraryEntry
)

func initCorpus() {
	corpusOnce.Do(func() {
		osslCorpus = buildOpenSSL()
		wolfCorpus = buildWolfSSL()
		mbedCorpus = buildMbedTLS()
		curlOSSLCorpus = buildCurlOpenSSL()
		curlWolfCorpus = buildCurlWolfSSL()
	})
}

// OpenSSL returns the 19 OpenSSL entries.
func OpenSSL() []fingerprint.LibraryEntry {
	initCorpus()
	return append([]fingerprint.LibraryEntry(nil), osslCorpus...)
}

// WolfSSL returns the 38 wolfSSL entries.
func WolfSSL() []fingerprint.LibraryEntry {
	initCorpus()
	return append([]fingerprint.LibraryEntry(nil), wolfCorpus...)
}

// MbedTLS returns the 113 Mbed TLS / PolarSSL entries of Appendix B.1.
func MbedTLS() []fingerprint.LibraryEntry {
	initCorpus()
	return append([]fingerprint.LibraryEntry(nil), mbedCorpus...)
}

// CurlOpenSSL returns the curl×OpenSSL cross product trimmed to the
// paper's 5,591 combinations (not every pairing builds in reality).
func CurlOpenSSL() []fingerprint.LibraryEntry {
	initCorpus()
	return append([]fingerprint.LibraryEntry(nil), curlOSSLCorpus...)
}

// CurlWolfSSL returns the curl×wolfSSL cross product trimmed to 1,130
// combinations (curl 7.25.0 .. 7.68.0 per the appendix).
func CurlWolfSSL() []fingerprint.LibraryEntry {
	initCorpus()
	return append([]fingerprint.LibraryEntry(nil), curlWolfCorpus...)
}

// openSSLVersions is the appendix B.1 list with release years and support
// status at the end of the capture window (August 2020).
var openSSLVersions = []struct {
	version   string
	year      int
	supported bool
}{
	{"1.0.0m", 2014, false},
	{"1.0.0q", 2014, false},
	{"1.0.0t", 2015, false},
	{"1.0.1h", 2014, false},
	{"1.0.1l", 2015, false},
	{"1.0.1r", 2016, false},
	{"1.0.1u", 2016, false},
	{"1.0.2-beta1", 2014, false},
	{"1.0.2-beta2", 2014, false},
	{"1.0.2", 2015, false},
	{"1.0.2f", 2016, false},
	{"1.0.2m", 2017, false},
	{"1.0.2u", 2019, false},
	{"1.1.0-pre1", 2015, false},
	{"1.1.0-pre2", 2016, false},
	{"1.1.0-pre3", 2016, false},
	{"1.1.0l", 2019, false},
	{"1.1.1-pre2", 2018, true},
	{"1.1.1i", 2020, true},
}

// buildOpenSSL constructs the 19 OpenSSL entries.
func buildOpenSSL() []fingerprint.LibraryEntry {
	out := make([]fingerprint.LibraryEntry, 0, len(openSSLVersions))
	for _, v := range openSSLVersions {
		out = append(out, fingerprint.LibraryEntry{
			Family:          "OpenSSL",
			Version:         v.version,
			ReleaseYear:     v.year,
			SupportedIn2020: v.supported,
			Print:           openSSLPrint(v.version),
		})
	}
	return out
}

// openSSLPrint models the default s_client fingerprint per version era.
func openSSLPrint(version string) fingerprint.Fingerprint {
	era := openSSLEra(version)
	var suites []uint16
	ver := tlswire.VersionTLS12
	exts := []uint16{
		uint16(tlswire.ExtServerName),
		uint16(tlswire.ExtSupportedGroups),
		uint16(tlswire.ExtECPointFormats),
		uint16(tlswire.ExtSessionTicket),
		uint16(tlswire.ExtRenegotiationInfo),
	}
	switch era {
	case "1.0.0":
		ver = tlswire.VersionTLS10
		suites = []uint16{
			0xC014, 0xC00A, 0x0039, 0x0038, 0x0088, 0x0087, 0xC013, 0xC009,
			0x0033, 0x0032, 0x0045, 0x0044, 0xC012, 0xC008, 0x0016, 0x0013,
			0xC011, 0xC007, 0x0005, 0x0004, 0x0035, 0x0084, 0x002F, 0x0041,
			0x000A, 0x0015, 0x0012, 0x0009, 0x0014, 0x0011, 0x0008, 0x0006,
			0x0003, 0x00FF,
		}
		// 1.0.0t dropped the export-grade suites in its default list.
		if version >= "1.0.0t" {
			suites = removeSuites(suites, 0x0006, 0x0003, 0x0008, 0x0011, 0x0014)
		}
	case "1.0.1":
		suites = []uint16{
			0xC030, 0xC02C, 0xC028, 0xC024, 0xC014, 0xC00A, 0x00A3, 0x009F,
			0x006B, 0x006A, 0x0039, 0x0038, 0x0088, 0x0087, 0xC032, 0xC02E,
			0xC02A, 0xC026, 0xC00F, 0xC005, 0x009D, 0x003D, 0x0035, 0x0084,
			0xC02F, 0xC02B, 0xC027, 0xC023, 0xC013, 0xC009, 0x00A2, 0x009E,
			0x0067, 0x0040, 0x0033, 0x0032, 0x0045, 0x0044, 0xC031, 0xC02D,
			0xC029, 0xC025, 0xC00E, 0xC004, 0x009C, 0x003C, 0x002F, 0x0041,
			0xC012, 0xC008, 0x0016, 0x0013, 0xC00D, 0xC003, 0x000A, 0xC011,
			0xC007, 0xC00C, 0xC002, 0x0005, 0x0004, 0x00FF,
		}
		exts = append(exts, uint16(tlswire.ExtSignatureAlgorithms))
		// Late 1.0.1 (r, u) dropped RC4 from defaults after RFC 7465.
		if version >= "1.0.1r" {
			suites = removeSuites(suites, 0xC011, 0xC007, 0xC00C, 0xC002, 0x0005, 0x0004)
		}
	case "1.0.2":
		suites = []uint16{
			0xC030, 0xC02C, 0xC028, 0xC024, 0xC014, 0xC00A, 0x00A5, 0x00A3,
			0x00A1, 0x009F, 0x006B, 0x006A, 0x0069, 0x0068, 0x0039, 0x0038,
			0x0037, 0x0036, 0x0088, 0x0087, 0x0086, 0x0085, 0xC032, 0xC02E,
			0xC02A, 0xC026, 0xC00F, 0xC005, 0x009D, 0x003D, 0x0035, 0x0084,
			0xC02F, 0xC02B, 0xC027, 0xC023, 0xC013, 0xC009, 0x00A4, 0x00A2,
			0x00A0, 0x009E, 0x0067, 0x0040, 0x003F, 0x003E, 0x0033, 0x0032,
			0x0031, 0x0030, 0x0045, 0x0044, 0x0043, 0x0042, 0xC031, 0xC02D,
			0xC029, 0xC025, 0xC00E, 0xC004, 0x009C, 0x003C, 0x002F, 0x0041,
			0xC012, 0xC008, 0x0016, 0x0013, 0x0010, 0x000D, 0xC00D, 0xC003,
			0x000A, 0x00FF,
		}
		exts = append(exts,
			uint16(tlswire.ExtSignatureAlgorithms),
			uint16(tlswire.ExtStatusRequest),
			uint16(tlswire.ExtSignedCertTimestamp),
		)
		// Beta builds predate the SCT extension.
		if strings.Contains(version, "beta") {
			exts = exts[:len(exts)-1]
		}
	case "1.1.0":
		suites = []uint16{
			0xC02C, 0xC030, 0x009F, 0xCCA9, 0xCCA8, 0xCCAA, 0xC02B, 0xC02F,
			0x009E, 0xC024, 0xC028, 0x006B, 0xC023, 0xC027, 0x0067, 0xC00A,
			0xC014, 0x0039, 0xC009, 0xC013, 0x0033, 0x009D, 0x009C, 0x003D,
			0x003C, 0x0035, 0x002F, 0x00FF,
		}
		exts = append(exts,
			uint16(tlswire.ExtSignatureAlgorithms),
			uint16(tlswire.ExtStatusRequest),
			uint16(tlswire.ExtEncryptThenMAC),
			uint16(tlswire.ExtExtendedMasterSecret),
		)
		// Pre-releases lacked ChaCha20-Poly1305.
		if strings.Contains(version, "pre") {
			suites = removeSuites(suites, 0xCCA9, 0xCCA8, 0xCCAA)
		}
	default: // 1.1.1
		ver = tlswire.VersionTLS13
		suites = []uint16{
			0x1302, 0x1303, 0x1301, 0xC02C, 0xC030, 0x009F, 0xCCA9, 0xCCA8,
			0xCCAA, 0xC02B, 0xC02F, 0x009E, 0xC024, 0xC028, 0x006B, 0xC023,
			0xC027, 0x0067, 0xC00A, 0xC014, 0x0039, 0xC009, 0xC013, 0x0033,
			0x009D, 0x009C, 0x003D, 0x003C, 0x0035, 0x002F, 0x00FF,
		}
		exts = append(exts,
			uint16(tlswire.ExtSignatureAlgorithms),
			uint16(tlswire.ExtStatusRequest),
			uint16(tlswire.ExtEncryptThenMAC),
			uint16(tlswire.ExtExtendedMasterSecret),
			uint16(tlswire.ExtSupportedVersions),
			uint16(tlswire.ExtPSKKeyExchangeModes),
			uint16(tlswire.ExtKeyShare),
		)
		if strings.Contains(version, "pre") {
			// TLS 1.3 draft builds lacked the CCM alias order change;
			// model as missing encrypt_then_mac.
			exts = removeSuites(exts, uint16(tlswire.ExtEncryptThenMAC))
		}
	}
	return fingerprint.Fingerprint{Version: ver, CipherSuites: suites, Extensions: exts}
}

func openSSLEra(version string) string {
	switch {
	case strings.HasPrefix(version, "1.0.0"):
		return "1.0.0"
	case strings.HasPrefix(version, "1.0.1"):
		return "1.0.1"
	case strings.HasPrefix(version, "1.0.2"):
		return "1.0.2"
	case strings.HasPrefix(version, "1.1.0"):
		return "1.1.0"
	default:
		return "1.1.1"
	}
}

func removeSuites(list []uint16, drop ...uint16) []uint16 {
	dropSet := map[uint16]bool{}
	for _, d := range drop {
		dropSet[d] = true
	}
	out := make([]uint16, 0, len(list))
	for _, v := range list {
		if !dropSet[v] {
			out = append(out, v)
		}
	}
	return out
}

// wolfSSLVersions is the appendix B.1 list (38 entries).
var wolfSSLVersions = []struct {
	version string
	year    int
}{
	{"1.8.0", 2010}, {"2.1.1", 2012}, {"2.2.1", 2012}, {"2.2.2", 2012},
	{"2.3.0", 2012}, {"2.4.6", 2012}, {"2.4.7", 2013}, {"2.5.0", 2013},
	{"2.5.2", 2013}, {"2.5.2b", 2013}, {"2.6.0", 2013}, {"2.8.0", 2013},
	{"2.9.0", 2014}, {"3.0.0", 2014}, {"3.0.2", 2014}, {"3.1.0", 2014},
	{"3.4.0", 2015}, {"3.4.2", 2015}, {"3.4.8", 2015}, {"3.6.0", 2015},
	{"3.7.0", 2015}, {"3.8.0", 2015}, {"3.9.0", 2016}, {"3.9.10-stable", 2016},
	{"3.10.2-stable", 2017}, {"3.10.3", 2017}, {"3.11.0-stable", 2017},
	{"3.12.0-stable", 2017}, {"3.13.0-stable", 2017}, {"3.14.2", 2018},
	{"3.14.5", 2018}, {"3.15.0-stable", 2018}, {"3.15.3-stable", 2018},
	{"3.15.6", 2018}, {"3.15.7-stable", 2018}, {"4.0.0-stable", 2019},
	{"WCv4.0-RC4", 2019}, {"WCv4.0-RC5", 2019},
}

// buildWolfSSL constructs the 38 wolfSSL entries.
func buildWolfSSL() []fingerprint.LibraryEntry {
	out := make([]fingerprint.LibraryEntry, 0, len(wolfSSLVersions))
	for _, v := range wolfSSLVersions {
		supported := strings.HasPrefix(v.version, "4.") || strings.HasPrefix(v.version, "WCv4")
		out = append(out, fingerprint.LibraryEntry{
			Family:          "wolfSSL",
			Version:         v.version,
			ReleaseYear:     v.year,
			SupportedIn2020: supported,
			Print:           wolfSSLPrint(v.version),
		})
	}
	return out
}

func wolfSSLPrint(version string) fingerprint.Fingerprint {
	ver := tlswire.VersionTLS12
	exts := []uint16{
		uint16(tlswire.ExtServerName),
		uint16(tlswire.ExtSupportedGroups),
		uint16(tlswire.ExtRenegotiationInfo),
	}
	var suites []uint16
	switch {
	case strings.HasPrefix(version, "1."):
		ver = tlswire.VersionTLS10
		exts = nil
		suites = []uint16{0x0039, 0x0033, 0x0035, 0x002F, 0x000A, 0x0016, 0x0005, 0x0004}
	case strings.HasPrefix(version, "2."):
		ver = tlswire.VersionTLS11
		exts = nil
		suites = []uint16{0x0039, 0x0033, 0x0035, 0x002F, 0x003D, 0x003C, 0x000A, 0x0016, 0x0005}
		if version >= "2.5" {
			suites = append(suites, 0x008D, 0x008C) // PSK suites enabled
		}
	case strings.HasPrefix(version, "3."):
		suites = []uint16{
			0xC02C, 0xC02B, 0xC030, 0xC02F, 0xC024, 0xC023, 0xC028, 0xC027,
			0xC014, 0xC013, 0x009D, 0x009C, 0x003D, 0x003C, 0x0035, 0x002F,
		}
		exts = append(exts, uint16(tlswire.ExtECPointFormats), uint16(tlswire.ExtSignatureAlgorithms))
		if version >= "3.12" {
			// ChaCha default from 3.12.
			suites = append([]uint16{0xCCA9, 0xCCA8}, suites...)
			exts = append(exts, uint16(tlswire.ExtExtendedMasterSecret))
		}
		if version >= "3.6" && version < "3.12" {
			exts = append(exts, uint16(tlswire.ExtSessionTicket))
		}
	default: // 4.x / WCv4
		ver = tlswire.VersionTLS13
		suites = []uint16{
			0x1301, 0x1302, 0x1303, 0xCCA9, 0xCCA8, 0xC02C, 0xC02B, 0xC030,
			0xC02F, 0xC024, 0xC023, 0xC028, 0xC027, 0x009D, 0x009C,
		}
		exts = append(exts,
			uint16(tlswire.ExtECPointFormats),
			uint16(tlswire.ExtSignatureAlgorithms),
			uint16(tlswire.ExtSupportedVersions),
			uint16(tlswire.ExtKeyShare),
		)
		if strings.Contains(version, "RC") {
			// Release candidates lacked the 0xC028/0xC027 CBC downgrade set.
			suites = removeSuites(suites, 0xC028, 0xC027)
		}
	}
	return fingerprint.Fingerprint{Version: ver, CipherSuites: suites, Extensions: exts}
}

// buildMbedTLS constructs the 113 Mbed TLS / PolarSSL entries of Appendix B.1.
func buildMbedTLS() []fingerprint.LibraryEntry {
	versions := mbedVersions()
	out := make([]fingerprint.LibraryEntry, 0, len(versions))
	for _, v := range versions {
		out = append(out, fingerprint.LibraryEntry{
			Family:          "Mbed TLS",
			Version:         v.version,
			ReleaseYear:     v.year,
			SupportedIn2020: strings.HasPrefix(v.version, "2.16"),
			Print:           mbedPrint(v.version),
		})
	}
	return out
}

type mbedVersion struct {
	version string
	year    int
}

func mbedVersions() []mbedVersion {
	var out []mbedVersion
	add := func(year int, versions ...string) {
		for _, v := range versions {
			out = append(out, mbedVersion{v, year})
		}
	}
	add(2011, "0.13.1", "0.14.0", "0.14.2", "0.14.3")
	add(2012, "1.0.0", "1.1.0", "1.1.1", "1.1.2", "1.1.3", "1.1.4", "1.1.5", "1.1.6", "1.1.7", "1.1.8")
	add(2013, "1.2.0", "1.2.1", "1.2.2", "1.2.3", "1.2.4", "1.2.5", "1.2.6", "1.2.7", "1.2.8", "1.2.9",
		"1.2.10", "1.2.11", "1.2.12", "1.2.13", "1.2.14", "1.2.15", "1.2.16", "1.2.17", "1.2.18", "1.2.19")
	add(2014, "1.3.0", "1.3.1", "1.3.2", "1.3.3", "1.3.4", "1.3.5", "1.3.6", "1.3.7", "1.3.8", "1.3.9")
	add(2015, "1.3.10", "1.3.11", "1.3.12", "1.3.13", "1.3.14", "1.3.15", "1.3.16", "1.3.17", "1.3.18",
		"1.3.19", "1.3.20", "1.3.21", "1.3.22", "1.4-dtls-preview")
	add(2016, "2.1.0", "2.1.1", "2.1.2", "2.1.3", "2.1.4", "2.1.5", "2.1.6", "2.1.7", "2.1.8", "2.1.9",
		"2.1.10", "2.1.11", "2.1.12", "2.1.13", "2.1.14", "2.1.15", "2.1.16", "2.1.17", "2.1.18")
	add(2016, "2.2.0", "2.2.1", "2.3.0", "2.4.0", "2.4.2", "2.5.1", "2.6.0")
	add(2018, "2.7.0", "2.7.2", "2.7.3", "2.7.4", "2.7.5", "2.7.6", "2.7.7", "2.7.8", "2.7.9",
		"2.7.10", "2.7.11", "2.7.12", "2.7.13", "2.7.14", "2.7.15")
	add(2018, "2.8.0", "2.9.0", "2.11.0", "2.12.0", "2.13.0", "2.14.0", "2.14.1")
	add(2019, "2.16.0", "2.16.1", "2.16.2", "2.16.3", "2.16.4", "2.16.5", "2.16.6")
	return out
}

func mbedPrint(version string) fingerprint.Fingerprint {
	ver := tlswire.VersionTLS12
	var suites []uint16
	var exts []uint16
	switch {
	case strings.HasPrefix(version, "0."):
		ver = tlswire.VersionTLS10
		suites = []uint16{0x0035, 0x002F, 0x000A, 0x0039, 0x0033, 0x0016, 0x0005, 0x0004}
	case strings.HasPrefix(version, "1.0"), strings.HasPrefix(version, "1.1"):
		ver = tlswire.VersionTLS11
		suites = []uint16{0x0039, 0x0038, 0x0035, 0x0033, 0x0032, 0x002F, 0x0088, 0x0087,
			0x0084, 0x0045, 0x0044, 0x0041, 0x0016, 0x000A, 0x0005, 0x0004}
	case strings.HasPrefix(version, "1.2"):
		suites = []uint16{0x006B, 0x006A, 0x0039, 0x0038, 0x003D, 0x0035, 0x0067, 0x0040,
			0x0033, 0x0032, 0x003C, 0x002F, 0x0088, 0x0087, 0x0084, 0x0045, 0x0044, 0x0041,
			0x0016, 0x000A, 0x0005, 0x0004, 0x00FF}
		exts = []uint16{uint16(tlswire.ExtServerName), uint16(tlswire.ExtSignatureAlgorithms), uint16(tlswire.ExtRenegotiationInfo)}
		// Patch releases >= 1.2.10 dropped RC4 from defaults.
		if patchAtLeast(version, "1.2.", 10) {
			suites = removeSuites(suites, 0x0005, 0x0004)
		}
	case strings.HasPrefix(version, "1.3"), strings.HasPrefix(version, "1.4"):
		suites = []uint16{
			0xC02C, 0xC030, 0xC024, 0xC028, 0xC00A, 0xC014, 0x009F, 0x006B,
			0x0039, 0xC0A4, 0xC09F, 0x00A3, 0x006A, 0x0038, 0xC02B, 0xC02F,
			0xC023, 0xC027, 0xC009, 0xC013, 0x009E, 0x0067, 0x0033, 0xC09E,
			0x00A2, 0x0040, 0x0032, 0x009D, 0x003D, 0x0035, 0xC09D, 0x009C,
			0x003C, 0x002F, 0xC09C, 0x000A, 0x00FF,
		}
		exts = []uint16{
			uint16(tlswire.ExtServerName), uint16(tlswire.ExtSupportedGroups),
			uint16(tlswire.ExtECPointFormats), uint16(tlswire.ExtSignatureAlgorithms),
			uint16(tlswire.ExtRenegotiationInfo),
		}
		if patchAtLeast(version, "1.3.", 10) {
			exts = append(exts, uint16(tlswire.ExtSessionTicket))
		}
	default: // 2.x
		suites = []uint16{
			0xC02C, 0xC030, 0xC0AD, 0xC024, 0xC028, 0xC00A, 0xC014, 0x009F,
			0xCCAA, 0xC09F, 0x006B, 0x0039, 0xC02B, 0xC02F, 0xC0AC, 0xC023,
			0xC027, 0xC009, 0xC013, 0x009E, 0xC09E, 0x0067, 0x0033, 0x009D,
			0xC09D, 0x003D, 0x0035, 0x009C, 0xC09C, 0x003C, 0x002F, 0x00FF,
		}
		exts = []uint16{
			uint16(tlswire.ExtServerName), uint16(tlswire.ExtSupportedGroups),
			uint16(tlswire.ExtECPointFormats), uint16(tlswire.ExtSignatureAlgorithms),
			uint16(tlswire.ExtExtendedMasterSecret), uint16(tlswire.ExtSessionTicket),
			uint16(tlswire.ExtRenegotiationInfo),
		}
		// ChaCha default from 2.12.
		if versionAtLeast2x(version, 12) {
			suites = append([]uint16{0xCCA9, 0xCCA8}, suites...)
		}
		// 3DES removed from defaults in 2.16.
		if versionAtLeast2x(version, 16) {
			suites = removeSuites(suites, 0x000A)
		}
	}
	return fingerprint.Fingerprint{Version: ver, CipherSuites: suites, Extensions: exts}
}

// patchAtLeast reports whether version "prefixN..." has N >= n.
func patchAtLeast(version, prefix string, n int) bool {
	if !strings.HasPrefix(version, prefix) {
		return false
	}
	rest := version[len(prefix):]
	num := 0
	for i := 0; i < len(rest) && rest[i] >= '0' && rest[i] <= '9'; i++ {
		num = num*10 + int(rest[i]-'0')
	}
	return num >= n
}

// versionAtLeast2x reports whether a "2.X.Y" version has X >= minor.
func versionAtLeast2x(version string, minor int) bool {
	if !strings.HasPrefix(version, "2.") {
		return false
	}
	rest := version[2:]
	num := 0
	for i := 0; i < len(rest) && rest[i] >= '0' && rest[i] <= '9'; i++ {
		num = num*10 + int(rest[i]-'0')
	}
	return num >= minor
}

// curlVersions enumerates curl releases 7.19.0 .. 7.71.0 (the appendix's
// range), including patch releases, newest last.
func curlVersions() []string {
	// minor -> number of patch releases (approximate real history; the
	// exact patch counts only affect corpus size, which is trimmed below).
	patches := map[int]int{
		19: 8, 20: 2, 21: 8, 22: 1, 23: 2, 24: 1, 25: 1, 26: 1, 27: 1, 28: 2,
		29: 1, 30: 1, 31: 1, 32: 1, 33: 1, 34: 1, 35: 1, 36: 1, 37: 2, 38: 1,
		39: 1, 40: 1, 41: 1, 42: 2, 43: 1, 44: 1, 45: 1, 46: 1, 47: 2, 48: 1,
		49: 2, 50: 4, 51: 1, 52: 2, 53: 2, 54: 2, 55: 2, 56: 2, 57: 1, 58: 1,
		59: 1, 60: 1, 61: 2, 62: 1, 63: 1, 64: 2, 65: 4, 66: 1, 67: 1, 68: 1,
		69: 2, 70: 1, 71: 2,
	}
	var out []string
	for minor := 19; minor <= 71; minor++ {
		n := patches[minor]
		if n == 0 {
			n = 1
		}
		for p := 0; p < n; p++ {
			out = append(out, fmt.Sprintf("7.%d.%d", minor, p))
		}
	}
	return out
}

// curlMinor extracts the minor number from "7.NN.P".
func curlMinor(v string) int {
	parts := strings.Split(v, ".")
	n := 0
	fmt.Sscanf(parts[1], "%d", &n)
	return n
}

// curlPrint layers curl's extension behaviour on a TLS library's print.
func curlPrint(curlVersion string, base fingerprint.Fingerprint) fingerprint.Fingerprint {
	minor := curlMinor(curlVersion)
	out := fingerprint.Fingerprint{
		Version:      base.Version,
		CipherSuites: append([]uint16(nil), base.CipherSuites...),
		Extensions:   append([]uint16(nil), base.Extensions...),
	}
	// curl >= 7.33 negotiates HTTP/2 via ALPN when the TLS backend
	// supports it.
	if minor >= 33 {
		out.Extensions = append(out.Extensions, uint16(tlswire.ExtALPN))
	}
	// curl >= 7.52 requests OCSP stapling by default in our model.
	if minor >= 52 && !containsUint16(out.Extensions, uint16(tlswire.ExtStatusRequest)) {
		out.Extensions = append(out.Extensions, uint16(tlswire.ExtStatusRequest))
	}
	// Very old curl disabled session tickets.
	if minor < 23 {
		out.Extensions = removeSuites(out.Extensions, uint16(tlswire.ExtSessionTicket))
	}
	return out
}

func containsUint16(s []uint16, v uint16) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// openSSLFull enumerates every letter revision of the OpenSSL series
// (1.0.0a..t, 1.0.1a..u, ...): the paper's curl cross product was built
// against the full release history, not just the 19 standalone builds.
// Letter revisions within a series share the era fingerprint model, so
// most of them collapse onto the same print — as in reality.
func openSSLFull() []fingerprint.LibraryEntry {
	series := []struct {
		prefix    string
		last      byte // last letter revision
		startYear int
	}{
		{"1.0.0", 't', 2010},
		{"1.0.1", 'u', 2012},
		{"1.0.2", 'u', 2015},
		{"1.1.0", 'l', 2016},
		{"1.1.1", 'i', 2018},
	}
	var out []fingerprint.LibraryEntry
	for _, s := range series {
		// The plain ".0" release, then each letter revision.
		versions := []string{s.prefix}
		for c := byte('a'); c <= s.last; c++ {
			versions = append(versions, s.prefix+string(c))
		}
		for i, v := range versions {
			year := s.startYear + i/4 // ~4 letter revisions per year
			out = append(out, fingerprint.LibraryEntry{
				Family:          "OpenSSL",
				Version:         v,
				ReleaseYear:     year,
				SupportedIn2020: strings.HasPrefix(v, "1.1.1"),
				Print:           openSSLPrint(v),
			})
		}
	}
	return out
}

// buildCurlOpenSSL constructs the curl×OpenSSL cross product trimmed to
// the paper's 5,591 combinations (not every pairing builds in reality).
func buildCurlOpenSSL() []fingerprint.LibraryEntry {
	return curlCross("curl+OpenSSL", openSSLFull(), curlVersions(), 5591)
}

// buildCurlWolfSSL constructs the curl×wolfSSL cross product trimmed to
// 1,130 combinations (curl 7.25.0 .. 7.68.0 per the appendix).
func buildCurlWolfSSL() []fingerprint.LibraryEntry {
	var curls []string
	for _, v := range curlVersions() {
		if m := curlMinor(v); m >= 25 && m <= 68 {
			curls = append(curls, v)
		}
	}
	return curlCross("curl+wolfSSL", buildWolfSSL(), curls, 1130)
}

func curlCross(family string, libs []fingerprint.LibraryEntry, curls []string, limit int) []fingerprint.LibraryEntry {
	out := make([]fingerprint.LibraryEntry, 0, limit)
	for _, cv := range curls {
		for _, lib := range libs {
			// A curl release only links against TLS libraries that existed:
			// model buildability as curl-year >= lib-year (curl 7.19≈2008,
			// two minors per year).
			curlYear := 2008 + (curlMinor(cv)-19)/2
			// Distros routinely pair a curl with a slightly newer TLS
			// library, so allow a few years of slack.
			if curlYear < lib.ReleaseYear-3 {
				continue
			}
			out = append(out, fingerprint.LibraryEntry{
				Family:          family,
				Version:         cv + "/" + lib.Version,
				ReleaseYear:     max(curlYear, lib.ReleaseYear),
				SupportedIn2020: lib.SupportedIn2020 && curlMinor(cv) >= 66,
				Print:           curlPrint(cv, lib.Print),
			})
			if len(out) == limit {
				return out
			}
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
