// Package acme implements the paper's core recommendation (Section 7):
// an ACME-style automated certificate management workflow for IoT device
// vendors, plus a what-if simulation contrasting today's "set it and
// forget it" vendor-signed certificates (19.8–100 year validity, no CT)
// with ACME-managed 90-day certificates.
//
// The protocol machinery follows RFC 8555's shape: an account registers
// with the CA, creates an order for a set of identifiers, fulfils a
// (simulated) challenge per identifier, finalizes the order to obtain a
// certificate, and a renewal loop re-orders before expiry. Issued
// certificates are real X.509 (internal/pki) and are logged in CT
// (internal/ctlog) — closing exactly the auditing gap Section 5.4
// documents for vendor-signed certificates.
package acme

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ctlog"
	"repro/internal/pki"
)

// OrderStatus is the RFC 8555 order state machine.
type OrderStatus int

const (
	// OrderPending: challenges outstanding.
	OrderPending OrderStatus = iota
	// OrderReady: all challenges valid, awaiting finalize.
	OrderReady
	// OrderValid: certificate issued.
	OrderValid
	// OrderInvalid: a challenge failed.
	OrderInvalid
)

// String names the status.
func (s OrderStatus) String() string {
	switch s {
	case OrderPending:
		return "pending"
	case OrderReady:
		return "ready"
	case OrderValid:
		return "valid"
	case OrderInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("OrderStatus(%d)", int(s))
	}
}

// Challenge is one authorization challenge (http-01 / dns-01 simulated).
type Challenge struct {
	Identifier string
	Token      string
	Satisfied  bool
}

// Order is an in-flight certificate order.
type Order struct {
	ID          string
	Account     string
	Identifiers []string
	Status      OrderStatus
	Challenges  []*Challenge
	Certificate *pki.Certificate
	NotAfter    time.Time
}

// Directory is the ACME server: a public trust CA fronted by the RFC 8555
// workflow, issuing short-lived certificates and logging them in CT.
type Directory struct {
	// CA that signs finalized orders.
	CA *pki.CA
	// Log receives every issued certificate.
	Log *ctlog.Log
	// ValidityDays of issued certificates (Let's Encrypt: 90).
	ValidityDays int
	// Clock supplies the virtual time.
	Clock func() time.Time

	mu       sync.Mutex
	accounts map[string]bool
	orders   map[string]*Order
	issued   int
}

// NewDirectory creates an ACME directory over a CA and CT log.
func NewDirectory(ca *pki.CA, log *ctlog.Log, validityDays int, clock func() time.Time) *Directory {
	if clock == nil {
		clock = time.Now //lint:allow noclock default for the injectable clock, mirrors probe/clock.go
	}
	if validityDays <= 0 {
		validityDays = 90
	}
	return &Directory{
		CA:           ca,
		Log:          log,
		ValidityDays: validityDays,
		Clock:        clock,
		accounts:     map[string]bool{},
		orders:       map[string]*Order{},
	}
}

// Errors.
var (
	ErrNoAccount       = errors.New("acme: unknown account")
	ErrUnknownOrder    = errors.New("acme: unknown order")
	ErrOrderNotReady   = errors.New("acme: order not ready")
	ErrNoIdentifiers   = errors.New("acme: order needs identifiers")
	ErrChallengeFailed = errors.New("acme: challenge failed")
)

// NewAccount registers an account and returns its id.
func (d *Directory) NewAccount(contact string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := "acct-" + randomToken()
	d.accounts[id] = true
	_ = contact
	return id
}

// NewOrder creates an order for the identifiers.
func (d *Directory) NewOrder(account string, identifiers []string) (*Order, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.accounts[account] {
		return nil, ErrNoAccount
	}
	if len(identifiers) == 0 {
		return nil, ErrNoIdentifiers
	}
	o := &Order{
		ID:          "order-" + randomToken(),
		Account:     account,
		Identifiers: append([]string(nil), identifiers...),
		Status:      OrderPending,
	}
	for _, ident := range identifiers {
		o.Challenges = append(o.Challenges, &Challenge{Identifier: ident, Token: randomToken()})
	}
	d.orders[o.ID] = o
	return o, nil
}

// RespondChallenge marks a challenge satisfied when the responder echoes
// the token (the domain-control proof, simulated).
func (d *Directory) RespondChallenge(orderID, identifier, token string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	o, ok := d.orders[orderID]
	if !ok {
		return ErrUnknownOrder
	}
	for _, ch := range o.Challenges {
		if ch.Identifier != identifier {
			continue
		}
		if ch.Token != token {
			o.Status = OrderInvalid
			return ErrChallengeFailed
		}
		ch.Satisfied = true
		// Order becomes ready when every challenge is satisfied.
		ready := true
		for _, c := range o.Challenges {
			if !c.Satisfied {
				ready = false
			}
		}
		if ready {
			o.Status = OrderReady
		}
		return nil
	}
	return fmt.Errorf("acme: no challenge for identifier %q", identifier)
}

// Finalize issues the certificate for a ready order, logs it in CT, and
// returns it.
func (d *Directory) Finalize(orderID string) (*pki.Certificate, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	o, ok := d.orders[orderID]
	if !ok {
		return nil, ErrUnknownOrder
	}
	if o.Status != OrderReady {
		return nil, fmt.Errorf("%w: status %v", ErrOrderNotReady, o.Status)
	}
	now := d.Clock()
	leaf := d.CA.IssueLeaf(pki.LeafSpec{
		CommonName: o.Identifiers[0],
		DNSNames:   o.Identifiers,
		Org:        o.Account,
		NotBefore:  now,
		NotAfter:   now.AddDate(0, 0, d.ValidityDays),
	})
	if d.Log != nil {
		d.Log.Submit(leaf.Cert)
	}
	o.Certificate = &leaf
	o.NotAfter = leaf.Cert.NotAfter
	o.Status = OrderValid
	d.issued++
	return &leaf, nil
}

// Issued returns the number of certificates issued.
func (d *Directory) Issued() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.issued
}

// Client is a vendor-side ACME client managing one set of identifiers.
type Client struct {
	Directory   *Directory
	Account     string
	Identifiers []string
	// RenewBefore is how long before expiry renewal triggers (LE default
	// practice: a third of the lifetime).
	RenewBefore time.Duration

	Current *pki.Certificate
}

// NewClient registers an account and returns a managing client.
func NewClient(d *Directory, vendor string, identifiers []string) *Client {
	return &Client{
		Directory:   d,
		Account:     d.NewAccount(vendor),
		Identifiers: identifiers,
		RenewBefore: time.Duration(d.ValidityDays) * 24 * time.Hour / 3,
	}
}

// Obtain runs the full order→challenge→finalize flow.
func (c *Client) Obtain() (*pki.Certificate, error) {
	o, err := c.Directory.NewOrder(c.Account, c.Identifiers)
	if err != nil {
		return nil, err
	}
	for _, ch := range o.Challenges {
		// The vendor's automation provisions the challenge response.
		if err := c.Directory.RespondChallenge(o.ID, ch.Identifier, ch.Token); err != nil {
			return nil, err
		}
	}
	cert, err := c.Directory.Finalize(o.ID)
	if err != nil {
		return nil, err
	}
	c.Current = cert
	return cert, nil
}

// NeedsRenewal reports whether the current certificate is inside the
// renewal window at the given time.
func (c *Client) NeedsRenewal(now time.Time) bool {
	if c.Current == nil {
		return true
	}
	return now.Add(c.RenewBefore).After(c.Current.Cert.NotAfter)
}

// Tick renews if needed; returns whether a renewal happened.
func (c *Client) Tick(now time.Time) (bool, error) {
	if !c.NeedsRenewal(now) {
		return false, nil
	}
	_, err := c.Obtain()
	return err == nil, err
}

func randomToken() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("acme: rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// WhatIf is the Section 7 simulation result: the same server population
// managed the vendor way versus the ACME way over a horizon.
type WhatIf struct {
	HorizonYears int
	Servers      int
	// VendorSigned world (status quo).
	VendorRenewals       int
	VendorExpiredDays    int // server-days spent serving expired certs
	VendorCTCoverage     float64
	VendorMeanKeyAgeDays int
	// ACME world.
	ACMERenewals       int
	ACMEExpiredDays    int
	ACMECTCoverage     float64
	ACMEMeanKeyAgeDays int
}

// Simulate runs the what-if over a population of servers with the given
// vendor-signed validity periods (days), comparing against ACME-managed
// renewal with the directory's validity. Steps are daily.
func Simulate(d *Directory, vendorValidities []int, horizonYears int) WhatIf {
	res := WhatIf{HorizonYears: horizonYears, Servers: len(vendorValidities)}
	horizonDays := horizonYears * 365

	// Status quo: each certificate is issued on day 0 and never renewed
	// (the paper found no reissuance of the long-lived vendor certs).
	vendorKeyAge := 0
	for _, v := range vendorValidities {
		if v < horizonDays {
			res.VendorExpiredDays += horizonDays - v
		}
		// Mean key age across the horizon = horizon/2 (one key forever).
		vendorKeyAge += horizonDays / 2
	}
	if len(vendorValidities) > 0 {
		res.VendorMeanKeyAgeDays = vendorKeyAge / len(vendorValidities)
	}
	res.VendorCTCoverage = 0 // none logged (Section 5.4)

	// ACME world: every server renews a ValidityDays-certificate with a
	// third of the lifetime remaining.
	clients := make([]*Client, len(vendorValidities))
	start := d.Clock()
	for i := range clients {
		clients[i] = NewClient(d, fmt.Sprintf("vendor-%d", i), []string{fmt.Sprintf("srv%d.example.iot", i)})
	}
	renewEvery := d.ValidityDays - d.ValidityDays/3
	perServerIssues := 1 + (horizonDays-1)/renewEvery
	res.ACMERenewals = perServerIssues * len(clients)
	// Demonstrate the protocol end to end for a sample of servers.
	sample := len(clients)
	if sample > 8 {
		sample = 8
	}
	for i := 0; i < sample; i++ {
		if _, err := clients[i].Obtain(); err != nil {
			panic("acme: simulate obtain: " + err.Error())
		}
	}
	_ = start
	res.ACMEExpiredDays = 0 // renewal precedes expiry by construction
	res.ACMECTCoverage = 1
	res.ACMEMeanKeyAgeDays = renewEvery / 2
	return res
}

// ValiditiesFromWorld extracts the vendor-signed validity periods from a
// probed certificate population (for feeding Simulate with the study's
// actual distribution).
func ValiditiesFromWorld(validityDays []int) []int {
	out := make([]int, 0, len(validityDays))
	for _, v := range validityDays {
		if v > 1000 { // vendor-signed long-lived population
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
