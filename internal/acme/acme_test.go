package acme

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ctlog"
	"repro/internal/pki"
)

var epoch = time.Date(2022, 4, 15, 0, 0, 0, 0, time.UTC)

func directory(t testing.TB, validity int) (*Directory, *ctlog.Log) {
	t.Helper()
	ca := pki.NewCA("Let's Encrypt", pki.PublicTrustCA, epoch.AddDate(-5, 0, 0), 20, 1)
	log := ctlog.New("acme-ct", func() time.Time { return epoch })
	return NewDirectory(ca, log, validity, func() time.Time { return epoch }), log
}

func TestFullIssuanceFlow(t *testing.T) {
	d, log := directory(t, 90)
	acct := d.NewAccount("mailto:ops@vendor.example")
	order, err := d.NewOrder(acct, []string{"api.vendor.example", "ota.vendor.example"})
	if err != nil {
		t.Fatal(err)
	}
	if order.Status != OrderPending {
		t.Fatalf("status %v", order.Status)
	}
	if len(order.Challenges) != 2 {
		t.Fatalf("challenges %d", len(order.Challenges))
	}
	// Finalize before challenges must fail.
	if _, err := d.Finalize(order.ID); !errors.Is(err, ErrOrderNotReady) {
		t.Fatalf("premature finalize: %v", err)
	}
	for _, ch := range order.Challenges {
		if err := d.RespondChallenge(order.ID, ch.Identifier, ch.Token); err != nil {
			t.Fatal(err)
		}
	}
	if order.Status != OrderReady {
		t.Fatalf("status %v after challenges", order.Status)
	}
	cert, err := d.Finalize(order.ID)
	if err != nil {
		t.Fatal(err)
	}
	if order.Status != OrderValid {
		t.Fatalf("status %v after finalize", order.Status)
	}
	// The certificate is real X.509 with the right SANs and lifetime.
	if err := cert.Cert.VerifyHostname("ota.vendor.example"); err != nil {
		t.Fatal(err)
	}
	days := int(cert.Cert.NotAfter.Sub(cert.Cert.NotBefore).Hours() / 24)
	if days != 90 {
		t.Fatalf("validity %d days", days)
	}
	// And it is logged in CT — the auditing gap closed.
	if !log.Contains(cert.Cert) {
		t.Fatal("issued certificate not in CT")
	}
}

func TestChallengeFailure(t *testing.T) {
	d, _ := directory(t, 90)
	acct := d.NewAccount("x")
	order, err := d.NewOrder(acct, []string{"a.example"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RespondChallenge(order.ID, "a.example", "wrong-token"); !errors.Is(err, ErrChallengeFailed) {
		t.Fatalf("want challenge failure, got %v", err)
	}
	if order.Status != OrderInvalid {
		t.Fatalf("status %v", order.Status)
	}
	if _, err := d.Finalize(order.ID); err == nil {
		t.Fatal("finalized an invalid order")
	}
}

func TestOrderValidation(t *testing.T) {
	d, _ := directory(t, 90)
	if _, err := d.NewOrder("acct-bogus", []string{"a.example"}); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("unknown account: %v", err)
	}
	acct := d.NewAccount("x")
	if _, err := d.NewOrder(acct, nil); !errors.Is(err, ErrNoIdentifiers) {
		t.Fatalf("empty identifiers: %v", err)
	}
	if err := d.RespondChallenge("order-bogus", "a", "t"); !errors.Is(err, ErrUnknownOrder) {
		t.Fatalf("unknown order: %v", err)
	}
	if _, err := d.Finalize("order-bogus"); !errors.Is(err, ErrUnknownOrder) {
		t.Fatalf("unknown order finalize: %v", err)
	}
}

func TestClientRenewalLoop(t *testing.T) {
	d, _ := directory(t, 90)
	c := NewClient(d, "Wyze", []string{"api.wyzecam.example"})
	if !c.NeedsRenewal(epoch) {
		t.Fatal("fresh client must need issuance")
	}
	renewed, err := c.Tick(epoch)
	if err != nil || !renewed {
		t.Fatalf("initial obtain: %v %v", renewed, err)
	}
	// Right after issuance: no renewal.
	if c.NeedsRenewal(epoch.AddDate(0, 0, 10)) {
		t.Fatal("renewal too early")
	}
	// Inside the final third of the lifetime: renew.
	if !c.NeedsRenewal(epoch.AddDate(0, 0, 65)) {
		t.Fatal("no renewal inside the window")
	}
	renewed, err = c.Tick(epoch.AddDate(0, 0, 65))
	if err != nil || !renewed {
		t.Fatalf("renewal: %v %v", renewed, err)
	}
	if d.Issued() != 2 {
		t.Fatalf("issued %d", d.Issued())
	}
}

func TestWhatIfSimulation(t *testing.T) {
	d, _ := directory(t, 90)
	// The study's vendor-signed validity population (footnote 6 values).
	validities := []int{36500, 25202, 24855, 21946, 10950, 9300, 7233, 5000, 2000}
	res := Simulate(d, validities, 10)
	if res.Servers != len(validities) {
		t.Fatalf("servers %d", res.Servers)
	}
	// Status quo: zero renewals, zero CT, decade-old keys.
	if res.VendorRenewals != 0 {
		t.Errorf("vendor renewals %d", res.VendorRenewals)
	}
	if res.VendorCTCoverage != 0 {
		t.Errorf("vendor CT coverage %v", res.VendorCTCoverage)
	}
	// The 2000-day cert expires within the 10-year horizon and keeps
	// serving expired.
	if res.VendorExpiredDays == 0 {
		t.Error("expected expired server-days in the status quo")
	}
	// ACME: full CT coverage, frequent renewals, young keys.
	if res.ACMECTCoverage != 1 {
		t.Errorf("acme CT coverage %v", res.ACMECTCoverage)
	}
	if res.ACMEExpiredDays != 0 {
		t.Errorf("acme expired days %d", res.ACMEExpiredDays)
	}
	if res.ACMERenewals < res.Servers*50 {
		t.Errorf("acme renewals %d, want ~61/server over 10y", res.ACMERenewals)
	}
	if res.ACMEMeanKeyAgeDays >= res.VendorMeanKeyAgeDays {
		t.Error("acme keys should be younger than vendor keys")
	}
	// The sample population really got certificates through the protocol.
	if d.Issued() < 8 {
		t.Errorf("directory issued %d sample certs", d.Issued())
	}
}

func TestValiditiesFromWorld(t *testing.T) {
	in := []int{90, 398, 825, 5000, 36500, 730}
	out := ValiditiesFromWorld(in)
	if len(out) != 2 || out[0] != 5000 || out[1] != 36500 {
		t.Fatalf("got %v", out)
	}
}

func TestOrderStatusString(t *testing.T) {
	for s, want := range map[OrderStatus]string{
		OrderPending: "pending", OrderReady: "ready", OrderValid: "valid", OrderInvalid: "invalid",
	} {
		if s.String() != want {
			t.Errorf("%d => %q", s, s.String())
		}
	}
}

func BenchmarkIssuance(b *testing.B) {
	d, _ := directory(b, 90)
	c := NewClient(d, "bench", []string{"bench.example"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Obtain(); err != nil {
			b.Fatal(err)
		}
	}
}
