package export

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/simnet"
)

func TestAnonymizerStableAndKeyed(t *testing.T) {
	a := NewAnonymizer("secret-1")
	if a.Token("device", "dev-00001") != a.Token("device", "dev-00001") {
		t.Fatal("token not stable")
	}
	if a.Token("device", "dev-00001") == a.Token("device", "dev-00002") {
		t.Fatal("distinct ids collide")
	}
	if a.Token("device", "dev-00001") == a.Token("user", "dev-00001") {
		t.Fatal("kinds must domain-separate")
	}
	b := NewAnonymizer("secret-2")
	if a.Token("device", "dev-00001") == b.Token("device", "dev-00001") {
		t.Fatal("different keys must produce different tokens")
	}
	if len(a.Token("device", "x")) != 24 {
		t.Fatal("token length")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 21, Scale: 0.05})
	anon := NewAnonymizer("k")
	var buf bytes.Buffer
	n, err := WriteHellos(&buf, ds, anon)
	if err != nil {
		t.Fatal(err)
	}
	if n != ds.Records.Len() {
		t.Fatalf("wrote %d rows, want %d", n, ds.Records.Len())
	}
	rows, err := ReadHellos(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("read %d rows", len(rows))
	}
	// No raw identifiers leak.
	for _, r := range rows {
		if strings.HasPrefix(r.Device, "dev-") || strings.HasPrefix(r.User, "user-") {
			t.Fatalf("raw identifier leaked: %s/%s", r.Device, r.User)
		}
		if !strings.HasSuffix(r.Hour, ":00:00Z") {
			t.Fatalf("time not truncated to hour: %s", r.Hour)
		}
	}
}

func TestExportedStatsMatchOriginal(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 22, Scale: 0.1})
	var buf bytes.Buffer
	if _, err := WriteHellos(&buf, ds, NewAnonymizer("k")); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadHellos(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(rows)
	// The anonymized release must reproduce the aggregates.
	client, err := analysis.NewClient(ds)
	if err != nil {
		t.Fatal(err)
	}
	if st.UniqueFingerprints != client.NumFingerprints() {
		t.Errorf("fingerprints %d vs %d", st.UniqueFingerprints, client.NumFingerprints())
	}
	deg := client.Table2()
	if diff := st.SingleVendorShare - deg.Deg1; diff > 0.001 || diff < -0.001 {
		t.Errorf("single-vendor share %.4f vs %.4f", st.SingleVendorShare, deg.Deg1)
	}
	if st.Users != ds.Users() {
		t.Errorf("users %d vs %d", st.Users, ds.Users())
	}
	devices := map[string]bool{}
	for _, r := range ds.Records.Rows() {
		devices[r.DeviceID] = true
	}
	if st.Devices != len(devices) {
		t.Errorf("devices %d vs %d (with records)", st.Devices, len(devices))
	}
}

func TestCertRoundTrip(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 23, Scale: 0.1})
	snis := ds.SNIsByMinUsers(2)
	w := simnet.Build(simnet.Config{Seed: 24, SNIs: snis})
	srv := analysis.NewServer(w, ds, snis, false)

	var buf bytes.Buffer
	n, err := WriteCerts(&buf, srv)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(srv.Records) {
		t.Fatalf("wrote %d want %d", n, len(srv.Records))
	}
	rows, err := ReadCerts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("read %d", len(rows))
	}
	for i, r := range rows {
		orig := srv.Records[i]
		if r.SNI != orig.SNI || r.IssuerOrg != orig.IssuerOrg || r.ValidityDays != orig.ValidityDays {
			t.Fatalf("row %d mismatch", i)
		}
		if len(r.LeafFingerprint) != 64 {
			t.Fatalf("leaf fingerprint %q", r.LeafFingerprint)
		}
		if r.Status == "" {
			t.Fatal("empty status")
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadHellos(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed hello row accepted")
	}
	if _, err := ReadCerts(strings.NewReader("[1,2,3")); err == nil {
		t.Fatal("malformed cert row accepted")
	}
	rows, err := ReadHellos(strings.NewReader(""))
	if err != nil || len(rows) != 0 {
		t.Fatal("empty input should yield no rows")
	}
}

func BenchmarkWriteHellos(b *testing.B) {
	ds := dataset.Generate(dataset.Config{Seed: 25, Scale: 0.1})
	anon := NewAnonymizer("k")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := WriteHellos(&buf, ds, anon); err != nil {
			b.Fatal(err)
		}
	}
}
