// Package export writes and reads the anonymized datasets the paper
// releases (https://github.com/hyingdon/acmimc23_iot): the ClientHello
// dataset and the server certificate dataset, as JSON Lines.
//
// Anonymization follows the release: device and user identifiers are
// replaced by stable opaque tokens (HMAC-style keyed hashes), timestamps
// are truncated to the hour, and raw ClientHello payloads are reduced to
// the fingerprint 3-tuple — exactly the fields IoT Inspector retained.
package export

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/tlswire"
)

// HelloRow is one anonymized ClientHello observation.
type HelloRow struct {
	// Device and User are opaque stable tokens.
	Device string `json:"device"`
	User   string `json:"user"`
	// Vendor, Model, and Type stay in the clear (the release labels them).
	Vendor string `json:"vendor"`
	Model  string `json:"model"`
	Type   string `json:"type"`
	// Hour is the observation time truncated to the hour (RFC 3339).
	Hour string `json:"hour"`
	// SNI of the connection.
	SNI string `json:"sni,omitempty"`
	// Version is the proposed TLS version codepoint.
	Version uint16 `json:"version"`
	// CipherSuites and Extensions are the fingerprint components.
	CipherSuites []uint16 `json:"cipher_suites"`
	Extensions   []uint16 `json:"extensions"`
}

// Fingerprint reconstructs the study fingerprint from the row.
func (r HelloRow) Fingerprint() fingerprint.Fingerprint {
	return fingerprint.Fingerprint{
		Version:      tlswire.Version(r.Version),
		CipherSuites: r.CipherSuites,
		Extensions:   r.Extensions,
	}
}

// CertRow is one anonymized server certificate observation.
type CertRow struct {
	SNI          string `json:"sni"`
	SLD          string `json:"sld"`
	IssuerOrg    string `json:"issuer_org"`
	IssuerPublic bool   `json:"issuer_public"`
	Status       string `json:"status"`
	ChainLength  int    `json:"chain_length"`
	ValidityDays int    `json:"validity_days"`
	InCT         bool   `json:"in_ct"`
	// Devices and Vendors are counts, not identities.
	Devices int `json:"devices"`
	Vendors int `json:"vendors"`
	// LeafFingerprint is the SHA-256 of the leaf DER (public data).
	LeafFingerprint string `json:"leaf_fingerprint"`
}

// Anonymizer produces stable opaque tokens under a secret key.
type Anonymizer struct {
	key []byte
}

// NewAnonymizer creates an anonymizer keyed by secret.
func NewAnonymizer(secret string) *Anonymizer {
	return &Anonymizer{key: []byte(secret)}
}

// Token maps an identifier to a stable 12-byte hex token.
func (a *Anonymizer) Token(kind, id string) string {
	m := hmac.New(sha256.New, a.key)
	m.Write([]byte(kind))
	m.Write([]byte{0})
	m.Write([]byte(id))
	return hex.EncodeToString(m.Sum(nil)[:12])
}

// WriteHellos writes the anonymized ClientHello dataset as JSONL.
func WriteHellos(w io.Writer, ds *dataset.Dataset, anon *Anonymizer) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	n := 0
	for i, rec := range ds.Records.Rows() {
		ch, err := rec.Hello()
		if err != nil {
			return n, fmt.Errorf("export: record %d: %w", i, err)
		}
		f := fingerprint.FromClientHello(ch)
		row := HelloRow{
			Device:       anon.Token("device", rec.DeviceID),
			User:         anon.Token("user", rec.User),
			Vendor:       rec.Vendor,
			Model:        rec.Model,
			Type:         rec.Type,
			Hour:         rec.Time.Truncate(time.Hour).Format(time.RFC3339),
			SNI:          rec.SNI,
			Version:      uint16(f.Version),
			CipherSuites: f.CipherSuites,
			Extensions:   f.Extensions,
		}
		if err := enc.Encode(row); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ReadHellos parses a JSONL ClientHello dataset.
func ReadHellos(r io.Reader) ([]HelloRow, error) {
	var out []HelloRow
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var row HelloRow
		if err := dec.Decode(&row); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("export: row %d: %w", len(out), err)
		}
		out = append(out, row)
	}
	return out, nil
}

// WriteCerts writes the anonymized certificate dataset as JSONL.
func WriteCerts(w io.Writer, srv *analysis.Server) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	n := 0
	for _, rec := range srv.Records {
		row := CertRow{
			SNI:             rec.SNI,
			SLD:             rec.SLD,
			IssuerOrg:       rec.IssuerOrg,
			IssuerPublic:    rec.IssuerPublic,
			Status:          rec.Status.String(),
			ChainLength:     rec.Chain.Len(),
			ValidityDays:    rec.ValidityDays,
			InCT:            rec.InCT,
			Devices:         len(rec.Devices),
			Vendors:         len(rec.Vendors),
			LeafFingerprint: hex.EncodeToString(rec.LeafFP[:]),
		}
		if err := enc.Encode(row); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ReadCerts parses a JSONL certificate dataset.
func ReadCerts(r io.Reader) ([]CertRow, error) {
	var out []CertRow
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var row CertRow
		if err := dec.Decode(&row); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("export: row %d: %w", len(out), err)
		}
		out = append(out, row)
	}
	return out, nil
}

// FingerprintStats recomputes the headline fingerprint statistics from an
// exported dataset — a consumer can reproduce the Section 4 aggregates
// without the raw traces, which is the point of the release.
type FingerprintStats struct {
	Rows               int
	Devices            int
	Users              int
	Vendors            int
	UniqueFingerprints int
	SingleVendorShare  float64
}

// Stats recomputes aggregates from exported rows.
func Stats(rows []HelloRow) FingerprintStats {
	devices := map[string]bool{}
	users := map[string]bool{}
	vendors := map[string]bool{}
	prints := map[string]map[string]bool{} // fp key -> vendor set
	for _, r := range rows {
		devices[r.Device] = true
		users[r.User] = true
		vendors[r.Vendor] = true
		key := r.Fingerprint().Key()
		if prints[key] == nil {
			prints[key] = map[string]bool{}
		}
		prints[key][r.Vendor] = true
	}
	st := FingerprintStats{
		Rows:               len(rows),
		Devices:            len(devices),
		Users:              len(users),
		Vendors:            len(vendors),
		UniqueFingerprints: len(prints),
	}
	if len(prints) > 0 {
		single := 0
		for _, vs := range prints {
			if len(vs) == 1 {
				single++
			}
		}
		st.SingleVendorShare = float64(single) / float64(len(prints))
	}
	return st
}
