// Package analysis computes every table and figure of the study from the
// ClientHello dataset (Section 4 and Appendix B) and the probed
// certificate dataset (Section 5 and Appendix C). It is the paper's
// measurement pipeline: internal/dataset supplies the wire-format
// observations, internal/simnet supplies the servers, and this package
// turns them into the published statistics.
package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/ciphersuite"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/graph"
	"repro/internal/intern"
	"repro/internal/obs"
	"repro/internal/tlswire"
)

// FingerprintInfo aggregates everything observed about one fingerprint.
type FingerprintInfo struct {
	// Print is the fingerprint tuple.
	Print fingerprint.Fingerprint
	// Key is Print.Key().
	Key string
	// Devices that exhibited the fingerprint.
	Devices StringSet
	// Vendors of those devices.
	Vendors StringSet
	// Types of those devices.
	Types StringSet
	// SNIs visited with this fingerprint.
	SNIs StringSet
	// Records is the number of ClientHellos carrying it.
	Records int
}

// Client is the client-side analysis state, built by parsing every
// record's wire bytes.
type Client struct {
	DS *dataset.Dataset
	// Prints indexes fingerprints by key.
	Prints map[string]*FingerprintInfo
	// DevicePrints maps device -> set of fingerprint keys.
	DevicePrints map[string]StringSet
	// DeviceVendor and DeviceType index device metadata.
	DeviceVendor map[string]string
	DeviceType   map[string]string
	// VersionCounts tallies proposals per TLS version (Table 12).
	VersionCounts map[tlswire.Version]int
	// SNIDevices maps each SNI to the devices that visited it.
	SNIDevices map[string]StringSet
	// orderedKeys caches sorted fingerprint keys.
	orderedKeys []string
}

func newEmptyClient() *Client {
	return &Client{
		Prints:        map[string]*FingerprintInfo{},
		DevicePrints:  map[string]StringSet{},
		DeviceVendor:  map[string]string{},
		DeviceType:    map[string]string{},
		VersionCounts: map[tlswire.Version]int{},
		SNIDevices:    map[string]StringSet{},
	}
}

func (c *Client) rebuildOrderedKeys() {
	c.orderedKeys = c.orderedKeys[:0]
	for k := range c.Prints {
		c.orderedKeys = append(c.orderedKeys, k)
	}
	sort.Strings(c.orderedKeys)
}

// NewClient parses the dataset's raw ClientHello records and builds the
// fingerprint table, sharding ingestion across GOMAXPROCS workers.
func NewClient(ds *dataset.Dataset) (*Client, error) {
	return NewClientWorkers(ds, 0)
}

// parseKey memoizes parsing per (stack, SNI-presence) pair, in symbol
// space. Every record of one stack carries the same ciphersuite and
// extension lists — only the 32-byte random and the SNI value differ —
// except that the server_name extension appears iff the record has an
// SNI or the stack always sends one. So two cache slots per stack
// cover every record, and parsing runs once per distinct stack instead
// of once per record. The comparable struct replaces the old
// stackID+"|s" string key, which concatenated per record.
type parseKey struct {
	stack  intern.Symbol
	hasSNI bool
}

// parsedRef is one memoized parse result: the run-dense print index
// plus the version the hot loop tallies, so shards never touch the
// shared print slice inside the record loop.
type parsedRef struct {
	idx     uint32
	version tlswire.Version
}

// printMeta is the materialized identity of one distinct fingerprint.
type printMeta struct {
	key   string
	print fingerprint.Fingerprint
}

// ingestCtx is the run-scoped shared parse state: a two-level memo (L1
// per shard, lock-free; this L2 under a mutex) guaranteeing the same
// raw bytes are parsed exactly once per run no matter how many shards
// see the stack, plus the dense registry of distinct fingerprints
// deduplicated by their arena-interned form.
type ingestCtx struct {
	tab     *intern.Table
	arena   *intern.Arena
	mu      sync.Mutex
	parsed  map[parseKey]parsedRef
	byPrint map[fingerprint.Interned]uint32
	prints  []printMeta
	// parses counts actual wire parses (the ingest_parses_total
	// counter): at most one per distinct parseKey per run.
	parses int64
}

func newIngestCtx(tab *intern.Table) *ingestCtx {
	return &ingestCtx{
		tab:     tab,
		arena:   intern.NewArena(),
		parsed:  map[parseKey]parsedRef{},
		byPrint: map[fingerprint.Interned]uint32{},
	}
}

// lookupOrParse resolves pk, parsing raw only if no shard has resolved
// the key yet. Parse errors are returned, never cached.
func (cx *ingestCtx) lookupOrParse(pk parseKey, raw []byte) (parsedRef, error) {
	cx.mu.Lock()
	defer cx.mu.Unlock()
	if ref, ok := cx.parsed[pk]; ok {
		return ref, nil
	}
	ch, err := tlswire.ParseRecord(raw)
	if err != nil {
		return parsedRef{}, err
	}
	cx.parses++
	f := fingerprint.FromClientHelloOwned(ch)
	in := f.Intern(cx.arena)
	idx, ok := cx.byPrint[in]
	if !ok {
		idx = uint32(len(cx.prints))
		cx.prints = append(cx.prints, printMeta{key: f.Key(), print: f})
		cx.byPrint[in] = idx
	}
	ref := parsedRef{idx: idx, version: f.Version}
	cx.parsed[pk] = ref
	return ref, nil
}

// edge is one (print, identity-symbol) observation.
type edge struct {
	p   uint32
	sym intern.Symbol
}

// sniEdge is one (SNI, device) observation.
type sniEdge struct {
	sni, dev intern.Symbol
}

// clientShard is one worker's partial aggregation state, kept entirely
// in symbol space: flat edge sets keyed by packed comparable structs
// instead of nested map-of-map string sets. Every field merges
// commutatively (set unions and count additions), so the final Client
// is identical for any shard count and any merge order; finalize
// converts the merged symbol-space state to the exported string form
// exactly once.
type clientShard struct {
	ctx           *ingestCtx
	memo          map[parseKey]parsedRef
	printRecords  map[uint32]int
	printDevices  map[edge]struct{}
	printVendors  map[edge]struct{}
	printTypes    map[edge]struct{}
	printSNIs     map[edge]struct{}
	sniDevices    map[sniEdge]struct{}
	versionCounts map[tlswire.Version]int
	errIdx        int
	err           error
	// memoHits / memoMisses tally the L1 parse-memo effectiveness;
	// records is the shard's input size. Plain ints: each shard owns
	// its own counters and the merge publishes totals once, so the hot
	// loop pays no atomics even when instrumentation is on.
	memoHits   int64
	memoMisses int64
	records    int64
}

func (s *clientShard) init(cx *ingestCtx) {
	s.ctx = cx
	s.memo = map[parseKey]parsedRef{}
	s.printRecords = map[uint32]int{}
	s.printDevices = map[edge]struct{}{}
	s.printVendors = map[edge]struct{}{}
	s.printTypes = map[edge]struct{}{}
	s.printSNIs = map[edge]struct{}{}
	s.sniDevices = map[sniEdge]struct{}{}
	s.versionCounts = map[tlswire.Version]int{}
}

// NewClientWorkers is NewClient with an explicit worker count (<= 0:
// GOMAXPROCS). The result is byte-for-byte independent of the worker
// count; workers only shard the parsing and aggregation work.
func NewClientWorkers(ds *dataset.Dataset, workers int) (*Client, error) {
	return NewClientObserved(ds, workers, nil)
}

// NewClientObserved is NewClientWorkers with optional instrumentation:
// when m is non-nil it records ingest_records_total, the parse-memo
// hit/miss counters, and an ingest_seconds histogram (records/sec is the
// ratio of the first to the last). nil m costs nothing.
func NewClientObserved(ds *dataset.Dataset, workers int, m *obs.Registry) (*Client, error) {
	sw := obs.NewStopwatch()
	n := ds.Records.Len()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	c := newEmptyClient()
	c.DS = ds
	for _, d := range ds.Devices {
		c.DeviceVendor[d.ID] = d.Vendor
		c.DeviceType[d.ID] = d.Type
	}

	cx := newIngestCtx(ds.Records.Table())
	shards := make([]clientShard, workers)
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		shards[w].init(cx)
		wg.Add(1)
		go func(shard *clientShard, lo, hi int) {
			defer wg.Done()
			shard.ingest(ds.Records.Slice(lo, hi), lo)
		}(&shards[w], lo, hi)
	}
	wg.Wait()

	// Deterministic merge: the shard with the lowest-index parse error
	// wins (matching the sequential loop's first-error semantics), and
	// aggregate state merges by union/addition in symbol space before
	// one finalize pass converts it to string form.
	for i := range shards {
		if shards[i].err != nil {
			return nil, fmt.Errorf("analysis: record %d: %w", shards[i].errIdx, shards[i].err)
		}
	}
	var agg clientShard
	agg.init(cx)
	for i := range shards {
		agg.mergeFrom(&shards[i])
	}
	agg.finalize(c)
	c.rebuildOrderedKeys()

	if m != nil {
		var hits, misses, records int64
		for i := range shards {
			hits += shards[i].memoHits
			misses += shards[i].memoMisses
			records += shards[i].records
		}
		m.Counter("ingest_records_total").Add(records)
		m.Counter("ingest_memo_hits_total").Add(hits)
		m.Counter("ingest_memo_misses_total").Add(misses)
		m.Counter("ingest_parses_total").Add(cx.parses)
		m.Counter("ingest_fingerprints_total").Add(int64(len(c.Prints)))
		m.Histogram("ingest_seconds", obs.DurationBuckets).Observe(sw.Seconds())
	}
	return c, nil
}

// ingest aggregates one contiguous record view. base is the index of
// the view's first record in the full dataset, for error reporting.
// The loop reads columns directly — symbols and raw spans — and its
// only per-record writes are integer-keyed map inserts, so the hot
// path allocates nothing beyond amortized map growth.
func (s *clientShard) ingest(recs dataset.Records, base int) {
	n := recs.Len()
	s.records = int64(n)
	for i := 0; i < n; i++ {
		sniSym := recs.SNISym(i)
		pk := parseKey{stack: recs.StackSym(i), hasSNI: sniSym != 0}
		ref, ok := s.memo[pk]
		if ok {
			s.memoHits++
		} else {
			s.memoMisses++
			var err error
			ref, err = s.ctx.lookupOrParse(pk, recs.Raw(i))
			if err != nil {
				s.err = err
				s.errIdx = base + i
				return
			}
			s.memo[pk] = ref
		}
		devSym := recs.DeviceSym(i)
		s.printRecords[ref.idx]++
		s.printDevices[edge{ref.idx, devSym}] = struct{}{}
		s.printVendors[edge{ref.idx, recs.VendorSym(i)}] = struct{}{}
		s.printTypes[edge{ref.idx, recs.TypeSym(i)}] = struct{}{}
		if sniSym != 0 {
			s.printSNIs[edge{ref.idx, sniSym}] = struct{}{}
			s.sniDevices[sniEdge{sniSym, devSym}] = struct{}{}
		}
		s.versionCounts[ref.version]++
	}
}

// mergeFrom folds another shard's symbol-space aggregate into s. Both
// shards must share one ingestCtx (print indices and symbols resolve
// against the same registries). All operations are commutative and
// associative, so any merge order yields the same final state.
func (s *clientShard) mergeFrom(o *clientShard) {
	for idx, n := range o.printRecords {
		s.printRecords[idx] += n
	}
	for e := range o.printDevices {
		s.printDevices[e] = struct{}{}
	}
	for e := range o.printVendors {
		s.printVendors[e] = struct{}{}
	}
	for e := range o.printTypes {
		s.printTypes[e] = struct{}{}
	}
	for e := range o.printSNIs {
		s.printSNIs[e] = struct{}{}
	}
	for e := range o.sniDevices {
		s.sniDevices[e] = struct{}{}
	}
	for v, n := range o.versionCounts {
		s.versionCounts[v] += n
	}
}

// finalize converts the merged symbol-space aggregate into the
// exported string-keyed Client state: edges become sorted StringSets,
// symbols resolve through the intern table (no new string is
// allocated — the sets share the interned instances).
func (s *clientShard) finalize(c *Client) {
	cx := s.ctx
	infos := make([]FingerprintInfo, len(cx.prints))
	infoByIdx := make([]*FingerprintInfo, len(cx.prints))
	for idx, n := range s.printRecords {
		pm := cx.prints[idx]
		info := &infos[idx]
		info.Print = pm.print
		info.Key = pm.key
		info.Records = n
		infoByIdx[idx] = info
		c.Prints[pm.key] = info
	}
	// Each edge set becomes a sub-slice carved out of one shared backing
	// array per category: count first, then hand every print a
	// capacity-clamped view sized exactly, so filling allocates nothing
	// per set. Every edge's print has at least one record, so
	// infoByIdx[e.p] is always non-nil here.
	fillSets := func(edges map[edge]struct{}, slot func(*FingerprintInfo) *StringSet) {
		counts := make([]int, len(infoByIdx))
		for e := range edges {
			counts[e.p]++
		}
		backing := make([]string, len(edges))
		off := 0
		for idx, n := range counts {
			if n == 0 {
				continue
			}
			*slot(infoByIdx[idx]) = backing[off : off : off+n]
			off += n
		}
		for e := range edges {
			sl := slot(infoByIdx[e.p])
			*sl = append(*sl, cx.tab.Str(e.sym))
		}
	}
	fillSets(s.printDevices, func(i *FingerprintInfo) *StringSet { return &i.Devices })
	fillSets(s.printVendors, func(i *FingerprintInfo) *StringSet { return &i.Vendors })
	fillSets(s.printTypes, func(i *FingerprintInfo) *StringSet { return &i.Types })
	fillSets(s.printSNIs, func(i *FingerprintInfo) *StringSet { return &i.SNIs })

	// DevicePrints and SNIDevices get the same treatment, keyed by
	// symbol until the final map assignment.
	devCounts := make(map[intern.Symbol]int)
	for e := range s.printDevices {
		devCounts[e.sym]++
	}
	devBacking := make([]string, len(s.printDevices))
	off := 0
	for sym, n := range devCounts {
		c.DevicePrints[cx.tab.Str(sym)] = devBacking[off : off : off+n]
		off += n
	}
	for e := range s.printDevices {
		dev := cx.tab.Str(e.sym)
		c.DevicePrints[dev] = append(c.DevicePrints[dev], infoByIdx[e.p].Key)
	}

	sniCounts := make(map[intern.Symbol]int)
	for e := range s.sniDevices {
		sniCounts[e.sni]++
	}
	sniBacking := make([]string, len(s.sniDevices))
	off = 0
	for sym, n := range sniCounts {
		c.SNIDevices[cx.tab.Str(sym)] = sniBacking[off : off : off+n]
		off += n
	}
	for e := range s.sniDevices {
		sni := cx.tab.Str(e.sni)
		c.SNIDevices[sni] = append(c.SNIDevices[sni], cx.tab.Str(e.dev))
	}

	for _, info := range infoByIdx {
		if info == nil {
			continue
		}
		sort.Strings(info.Devices)
		sort.Strings(info.Vendors)
		sort.Strings(info.Types)
		sort.Strings(info.SNIs)
	}
	for _, keys := range c.DevicePrints {
		sort.Strings(keys)
	}
	for _, devs := range c.SNIDevices {
		sort.Strings(devs)
	}
	for v, n := range s.versionCounts {
		c.VersionCounts[v] += n
	}
}

// NumFingerprints returns the number of distinct fingerprints (the
// paper's 903).
func (c *Client) NumFingerprints() int { return len(c.Prints) }

// VendorGraph builds the Figure 1 bipartite graph: vendors on the left,
// fingerprints on the right.
func (c *Client) VendorGraph() *graph.Bipartite {
	g := graph.New()
	for _, key := range c.orderedKeys {
		for _, vendor := range c.Prints[key].Vendors {
			g.AddEdge(vendor, key)
		}
	}
	return g
}

// TypeGraphForVendor builds the Figure 3 graph for one vendor: device
// types on the left, fingerprints on the right.
func (c *Client) TypeGraphForVendor(vendor string) *graph.Bipartite {
	g := graph.New()
	for _, key := range c.orderedKeys {
		info := c.Prints[key]
		if !info.Vendors.Has(vendor) {
			continue
		}
		for _, dev := range info.Devices {
			if c.DeviceVendor[dev] == vendor {
				g.AddEdge(c.DeviceType[dev], key)
			}
		}
	}
	return g
}

// DeviceGraphForVendor builds the Figure 4 graph: the vendor's devices on
// the left, their fingerprints on the right.
func (c *Client) DeviceGraphForVendor(vendor string) *graph.Bipartite {
	g := graph.New()
	for dev, prints := range c.DevicePrints {
		if c.DeviceVendor[dev] != vendor {
			continue
		}
		for _, key := range prints {
			g.AddEdge(dev, key)
		}
	}
	return g
}

// DeviceGraphForVendorType restricts Figure 4 to one device type
// (Amazon Echo in the paper = Amazon speakers here).
func (c *Client) DeviceGraphForVendorType(vendor, typ string) *graph.Bipartite {
	g := graph.New()
	for dev, prints := range c.DevicePrints {
		if c.DeviceVendor[dev] != vendor || c.DeviceType[dev] != typ {
			continue
		}
		for _, key := range prints {
			g.AddEdge(dev, key)
		}
	}
	return g
}

// Table2 is the fingerprint vendor-degree distribution.
func (c *Client) Table2() graph.DegreeDistribution {
	return c.VendorGraph().DegreeDistribution()
}

// DoCVendorAll returns DoC_vendor for every vendor (Figure 2, red line).
func (c *Client) DoCVendorAll() map[string]float64 {
	return c.VendorGraph().DoCAll()
}

// DoCDeviceAll returns DoC_device (the mean per-device DoC within each
// vendor; Figure 2, blue line).
func (c *Client) DoCDeviceAll() map[string]float64 {
	out := map[string]float64{}
	for _, vendor := range c.vendorNames() {
		g := c.DeviceGraphForVendor(vendor)
		docs := g.DoCAll()
		if len(docs) == 0 {
			out[vendor] = 0
			continue
		}
		sum := 0.0
		for _, v := range docs {
			sum += v
		}
		out[vendor] = sum / float64(len(docs))
	}
	return out
}

// DeviceDoCsForVendor returns the per-device DoC values of one vendor
// (Figure 10 rows).
func (c *Client) DeviceDoCsForVendor(vendor string) []float64 {
	g := c.DeviceGraphForVendor(vendor)
	docs := g.DoCAll()
	out := make([]float64, 0, len(docs))
	keys := make([]string, 0, len(docs))
	for k := range docs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, docs[k])
	}
	return out
}

func (c *Client) vendorNames() []string {
	set := map[string]bool{}
	for _, v := range c.DeviceVendor {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Table3Row is one row of Table 3 (fingerprint heterogeneity within a
// vendor).
type Table3Row struct {
	Vendor          string
	NumFingerprints int
	SharedBy10Plus  float64 // fraction of the vendor's prints on >=10 devices
	UsedBySingleDev float64 // fraction used by exactly one device
}

// Table3 computes the heterogeneity rows for the topN vendors by
// fingerprint count.
func (c *Client) Table3(topN int) []Table3Row {
	perVendor := map[string]map[string]bool{} // vendor -> fp keys
	for _, key := range c.orderedKeys {
		for _, vendor := range c.Prints[key].Vendors {
			if perVendor[vendor] == nil {
				perVendor[vendor] = map[string]bool{}
			}
			perVendor[vendor][key] = true
		}
	}
	rows := make([]Table3Row, 0, len(perVendor))
	for vendor, keys := range perVendor {
		row := Table3Row{Vendor: vendor, NumFingerprints: len(keys)}
		shared10, single := 0, 0
		for key := range keys {
			// Count devices of THIS vendor using the fingerprint.
			n := 0
			for _, dev := range c.Prints[key].Devices {
				if c.DeviceVendor[dev] == vendor {
					n++
				}
			}
			if n >= 10 {
				shared10++
			}
			if n == 1 {
				single++
			}
		}
		if len(keys) > 0 {
			row.SharedBy10Plus = float64(shared10) / float64(len(keys))
			row.UsedBySingleDev = float64(single) / float64(len(keys))
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].NumFingerprints != rows[j].NumFingerprints {
			return rows[i].NumFingerprints > rows[j].NumFingerprints
		}
		return rows[i].Vendor < rows[j].Vendor
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// Table4 returns the vendor tuples with Jaccard similarity >= threshold.
func (c *Client) Table4(threshold float64) []graph.SimilarPair {
	return c.VendorGraph().SimilarPairs(threshold)
}

// Table5Row is one server-tied fingerprint row (Section 4.4).
type Table5Row struct {
	SLD        string
	FQDNs      int
	VulnLabels []string
	Devices    int
	Vendors    []string
	PrintKey   string
}

// Table5 finds {SLD, fingerprint} tuples where servers are tied to one
// fingerprint used by devices from multiple vendors. minDevices excludes
// one-device outliers (the paper requires >= 2).
func (c *Client) Table5(minDevices int) []Table5Row {
	// SNI -> set of fingerprint keys seen toward it.
	sniPrints := map[string]map[string]bool{}
	for _, key := range c.orderedKeys {
		for _, sni := range c.Prints[key].SNIs {
			if sniPrints[sni] == nil {
				sniPrints[sni] = map[string]bool{}
			}
			sniPrints[sni][key] = true
		}
	}
	// Keep SNIs tied to exactly one fingerprint.
	type agg struct {
		fqdns   int
		devices map[string]bool
		vendors map[string]bool
	}
	tied := map[string]*agg{} // "sld|printKey" -> agg
	for sni, prints := range sniPrints {
		if len(prints) != 1 {
			continue
		}
		var key string
		for k := range prints {
			key = k
		}
		id := SLDOf(sni) + "|" + key
		a := tied[id]
		if a == nil {
			a = &agg{devices: map[string]bool{}, vendors: map[string]bool{}}
			tied[id] = a
		}
		a.fqdns++
		// Count the devices that actually visited this server (all of
		// them used the tied fingerprint by construction).
		for _, d := range c.SNIDevices[sni] {
			a.devices[d] = true
			a.vendors[c.DeviceVendor[d]] = true
		}
	}
	var rows []Table5Row
	for id, a := range tied {
		if len(a.vendors) < 2 || len(a.devices) < minDevices {
			continue
		}
		var sld, key string
		for i := 0; i < len(id); i++ {
			if id[i] == '|' {
				sld, key = id[:i], id[i+1:]
				break
			}
		}
		info := c.Prints[key]
		var vulns []string
		for _, v := range info.Print.VulnClasses() {
			vulns = append(vulns, v.String())
		}
		vendors := make([]string, 0, len(a.vendors))
		for v := range a.vendors {
			vendors = append(vendors, v)
		}
		sort.Strings(vendors)
		rows = append(rows, Table5Row{
			SLD:        sld,
			FQDNs:      a.fqdns,
			VulnLabels: vulns,
			Devices:    len(a.devices),
			Vendors:    vendors,
			PrintKey:   key,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Devices != rows[j].Devices {
			return rows[i].Devices > rows[j].Devices
		}
		if rows[i].SLD != rows[j].SLD {
			return rows[i].SLD < rows[j].SLD
		}
		return rows[i].PrintKey < rows[j].PrintKey
	})
	return rows
}

// ServerTiedSNIFraction returns the fraction of SNIs tied to a single
// fingerprint that is used by multiple devices (the paper's 17.42%),
// excluding fingerprints matched to known libraries when a matcher is
// provided.
func (c *Client) ServerTiedSNIFraction(matcher *fingerprint.Matcher) float64 {
	sniPrints := map[string]map[string]bool{}
	for _, key := range c.orderedKeys {
		if matcher != nil {
			if _, ok := matcher.MatchExact(c.Prints[key].Print); ok {
				continue
			}
		}
		for _, sni := range c.Prints[key].SNIs {
			if sniPrints[sni] == nil {
				sniPrints[sni] = map[string]bool{}
			}
			sniPrints[sni][key] = true
		}
	}
	if len(sniPrints) == 0 {
		return 0
	}
	tied := 0
	for _, prints := range sniPrints {
		if len(prints) != 1 {
			continue
		}
		for key := range prints {
			if len(c.Prints[key].Devices) >= 2 {
				tied++
			}
		}
	}
	return float64(tied) / float64(len(sniPrints))
}

// VulnStats summarizes Section 4.2's vulnerability findings.
type VulnStats struct {
	// TotalFingerprints across the dataset.
	TotalFingerprints int
	// WithVulnerable counts fingerprints with >= 1 vulnerable component.
	WithVulnerable int
	// VulnUsedByMultipleDevices counts vulnerable fingerprints on >= 2
	// devices.
	VulnUsedByMultipleDevices int
	// ByClass counts fingerprints per vulnerable component family.
	ByClass map[ciphersuite.VulnClass]int
	// AwfulFingerprints counts fingerprints with anon/export/NULL suites.
	AwfulFingerprints int
	// AwfulDevices / AwfulVendors count the devices and vendors proposing
	// them.
	AwfulDevices int
	AwfulVendors []string
}

// Vulnerabilities computes the Section 4.2 statistics.
func (c *Client) Vulnerabilities() VulnStats {
	st := VulnStats{
		TotalFingerprints: len(c.Prints),
		ByClass:           map[ciphersuite.VulnClass]int{},
	}
	awfulVendors := map[string]bool{}
	awfulDevices := map[string]bool{}
	for _, key := range c.orderedKeys {
		info := c.Prints[key]
		classes := info.Print.VulnClasses()
		if len(classes) == 0 {
			continue
		}
		st.WithVulnerable++
		if len(info.Devices) >= 2 {
			st.VulnUsedByMultipleDevices++
		}
		awful := false
		for _, cl := range classes {
			st.ByClass[cl]++
			switch cl {
			case ciphersuite.VulnAnonKex, ciphersuite.VulnExport,
				ciphersuite.VulnNULL, ciphersuite.VulnKRB5Export, ciphersuite.VulnRC2:
				awful = true
			}
		}
		if awful {
			st.AwfulFingerprints++
			for _, d := range info.Devices {
				awfulDevices[d] = true
			}
			for _, v := range info.Vendors {
				awfulVendors[v] = true
			}
		}
	}
	st.AwfulDevices = len(awfulDevices)
	for v := range awfulVendors {
		st.AwfulVendors = append(st.AwfulVendors, v)
	}
	sort.Strings(st.AwfulVendors)
	return st
}

// SLDOf re-exports simnet's SLD extraction for analysis consumers without
// importing simnet (avoids a dependency cycle for server analysis).
func SLDOf(fqdn string) string {
	// Duplicated two-label suffix logic, kept in sync with simnet.SLDOf.
	dots := 0
	for i := len(fqdn) - 1; i >= 0; i-- {
		if fqdn[i] == '.' {
			dots++
			if dots == 2 {
				candidate := fqdn[i+1:]
				switch candidate {
				case "co.kr", "co.uk", "com.cn", "ntp.org":
					// Need three labels.
					for j := i - 1; j >= 0; j-- {
						if fqdn[j] == '.' {
							return fqdn[j+1:]
						}
					}
					return fqdn
				}
				return candidate
			}
		}
	}
	return fqdn
}
