// Package analysis computes every table and figure of the study from the
// ClientHello dataset (Section 4 and Appendix B) and the probed
// certificate dataset (Section 5 and Appendix C). It is the paper's
// measurement pipeline: internal/dataset supplies the wire-format
// observations, internal/simnet supplies the servers, and this package
// turns them into the published statistics.
package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/ciphersuite"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tlswire"
)

// FingerprintInfo aggregates everything observed about one fingerprint.
type FingerprintInfo struct {
	// Print is the fingerprint tuple.
	Print fingerprint.Fingerprint
	// Key is Print.Key().
	Key string
	// Devices that exhibited the fingerprint.
	Devices map[string]bool
	// Vendors of those devices.
	Vendors map[string]bool
	// Types of those devices.
	Types map[string]bool
	// SNIs visited with this fingerprint.
	SNIs map[string]bool
	// Records is the number of ClientHellos carrying it.
	Records int
}

// Client is the client-side analysis state, built by parsing every
// record's wire bytes.
type Client struct {
	DS *dataset.Dataset
	// Prints indexes fingerprints by key.
	Prints map[string]*FingerprintInfo
	// DevicePrints maps device -> set of fingerprint keys.
	DevicePrints map[string]map[string]bool
	// DeviceVendor and DeviceType index device metadata.
	DeviceVendor map[string]string
	DeviceType   map[string]string
	// VersionCounts tallies proposals per TLS version (Table 12).
	VersionCounts map[tlswire.Version]int
	// SNIDevices maps each SNI to the devices that visited it.
	SNIDevices map[string]map[string]bool
	// orderedKeys caches sorted fingerprint keys.
	orderedKeys []string
}

// NewClient parses the dataset's raw ClientHello records and builds the
// fingerprint table, sharding ingestion across GOMAXPROCS workers.
func NewClient(ds *dataset.Dataset) (*Client, error) {
	return NewClientWorkers(ds, 0)
}

// printCacheKey memoizes parsing per (stack, SNI-presence) pair. Every
// record of one stack carries the same ciphersuite and extension lists —
// only the 32-byte random and the SNI value differ — except that the
// server_name extension appears iff the record has an SNI or the stack
// always sends one. So two cache slots per stack cover every record, and
// parsing runs once per distinct stack instead of once per record.
func printCacheKey(r dataset.Record) string {
	if r.SNI != "" {
		return r.StackID + "|s"
	}
	return r.StackID + "|"
}

// parsedPrint is one memoized parse result.
type parsedPrint struct {
	print fingerprint.Fingerprint
	key   string
}

// clientShard is one worker's partial aggregation state. Every field
// merges commutatively (set unions and count additions), so the final
// Client is identical for any shard count and any merge order.
type clientShard struct {
	prints        map[string]*FingerprintInfo
	devicePrints  map[string]map[string]bool
	sniDevices    map[string]map[string]bool
	versionCounts map[tlswire.Version]int
	errIdx        int
	err           error
	// memoHits / memoMisses tally the parse-memo effectiveness; records
	// is the shard's input size. Plain ints: each shard owns its own
	// counters and the merge publishes totals once, so the hot loop pays
	// no atomics even when instrumentation is on.
	memoHits   int64
	memoMisses int64
	records    int64
}

// NewClientWorkers is NewClient with an explicit worker count (<= 0:
// GOMAXPROCS). The result is byte-for-byte independent of the worker
// count; workers only shard the parsing and aggregation work.
func NewClientWorkers(ds *dataset.Dataset, workers int) (*Client, error) {
	return NewClientObserved(ds, workers, nil)
}

// NewClientObserved is NewClientWorkers with optional instrumentation:
// when m is non-nil it records ingest_records_total, the parse-memo
// hit/miss counters, and an ingest_seconds histogram (records/sec is the
// ratio of the first to the last). nil m costs nothing.
func NewClientObserved(ds *dataset.Dataset, workers int, m *obs.Registry) (*Client, error) {
	sw := obs.NewStopwatch()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ds.Records) {
		workers = len(ds.Records)
	}
	if workers < 1 {
		workers = 1
	}
	c := &Client{
		DS:            ds,
		Prints:        map[string]*FingerprintInfo{},
		DevicePrints:  map[string]map[string]bool{},
		DeviceVendor:  map[string]string{},
		DeviceType:    map[string]string{},
		VersionCounts: map[tlswire.Version]int{},
		SNIDevices:    map[string]map[string]bool{},
	}
	for _, d := range ds.Devices {
		c.DeviceVendor[d.ID] = d.Vendor
		c.DeviceType[d.ID] = d.Type
	}

	shards := make([]clientShard, workers)
	var wg sync.WaitGroup
	per := (len(ds.Records) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(ds.Records) {
			hi = len(ds.Records)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(shard *clientShard, lo, hi int) {
			defer wg.Done()
			shard.ingest(ds.Records[lo:hi], lo)
		}(&shards[w], lo, hi)
	}
	wg.Wait()

	// Deterministic merge: the shard with the lowest-index parse error
	// wins (matching the sequential loop's first-error semantics), and
	// aggregate state merges by union/addition.
	for i := range shards {
		if shards[i].err != nil {
			return nil, fmt.Errorf("analysis: record %d: %w", shards[i].errIdx, shards[i].err)
		}
	}
	for i := range shards {
		c.merge(&shards[i])
	}

	c.orderedKeys = make([]string, 0, len(c.Prints))
	for k := range c.Prints {
		c.orderedKeys = append(c.orderedKeys, k)
	}
	sort.Strings(c.orderedKeys)

	if m != nil {
		var hits, misses, records int64
		for i := range shards {
			hits += shards[i].memoHits
			misses += shards[i].memoMisses
			records += shards[i].records
		}
		m.Counter("ingest_records_total").Add(records)
		m.Counter("ingest_memo_hits_total").Add(hits)
		m.Counter("ingest_memo_misses_total").Add(misses)
		m.Counter("ingest_fingerprints_total").Add(int64(len(c.Prints)))
		m.Histogram("ingest_seconds", obs.DurationBuckets).Observe(sw.Seconds())
	}
	return c, nil
}

// ingest aggregates one contiguous record shard. base is the index of
// records[0] in the full dataset, for error reporting.
func (s *clientShard) ingest(records []dataset.Record, base int) {
	s.prints = map[string]*FingerprintInfo{}
	s.devicePrints = map[string]map[string]bool{}
	s.sniDevices = map[string]map[string]bool{}
	s.versionCounts = map[tlswire.Version]int{}
	parsed := map[string]parsedPrint{}
	s.records = int64(len(records))
	for i, r := range records {
		ck := printCacheKey(r)
		p, ok := parsed[ck]
		if ok {
			s.memoHits++
		} else {
			s.memoMisses++
		}
		if !ok {
			ch, err := r.Hello()
			if err != nil {
				s.err = err
				s.errIdx = base + i
				return
			}
			f := fingerprint.FromClientHello(ch)
			p = parsedPrint{print: f, key: f.Key()}
			parsed[ck] = p
		}
		info := s.prints[p.key]
		if info == nil {
			info = &FingerprintInfo{
				Print:   p.print,
				Key:     p.key,
				Devices: map[string]bool{},
				Vendors: map[string]bool{},
				Types:   map[string]bool{},
				SNIs:    map[string]bool{},
			}
			s.prints[p.key] = info
		}
		info.Devices[r.DeviceID] = true
		info.Vendors[r.Vendor] = true
		info.Types[r.Type] = true
		if r.SNI != "" {
			info.SNIs[r.SNI] = true
			if s.sniDevices[r.SNI] == nil {
				s.sniDevices[r.SNI] = map[string]bool{}
			}
			s.sniDevices[r.SNI][r.DeviceID] = true
		}
		info.Records++
		if s.devicePrints[r.DeviceID] == nil {
			s.devicePrints[r.DeviceID] = map[string]bool{}
		}
		s.devicePrints[r.DeviceID][p.key] = true
		s.versionCounts[p.print.Version]++
	}
}

// merge folds one shard into the client. All operations are commutative
// and associative, so any merge order yields the same final state.
func (c *Client) merge(s *clientShard) {
	for key, part := range s.prints {
		info := c.Prints[key]
		if info == nil {
			c.Prints[key] = part
			continue
		}
		for d := range part.Devices {
			info.Devices[d] = true
		}
		for v := range part.Vendors {
			info.Vendors[v] = true
		}
		for t := range part.Types {
			info.Types[t] = true
		}
		for sni := range part.SNIs {
			info.SNIs[sni] = true
		}
		info.Records += part.Records
	}
	for dev, keys := range s.devicePrints {
		if c.DevicePrints[dev] == nil {
			c.DevicePrints[dev] = keys
			continue
		}
		for k := range keys {
			c.DevicePrints[dev][k] = true
		}
	}
	for sni, devs := range s.sniDevices {
		if c.SNIDevices[sni] == nil {
			c.SNIDevices[sni] = devs
			continue
		}
		for d := range devs {
			c.SNIDevices[sni][d] = true
		}
	}
	for v, n := range s.versionCounts {
		c.VersionCounts[v] += n
	}
}

// NumFingerprints returns the number of distinct fingerprints (the
// paper's 903).
func (c *Client) NumFingerprints() int { return len(c.Prints) }

// VendorGraph builds the Figure 1 bipartite graph: vendors on the left,
// fingerprints on the right.
func (c *Client) VendorGraph() *graph.Bipartite {
	g := graph.New()
	for _, key := range c.orderedKeys {
		for vendor := range c.Prints[key].Vendors {
			g.AddEdge(vendor, key)
		}
	}
	return g
}

// TypeGraphForVendor builds the Figure 3 graph for one vendor: device
// types on the left, fingerprints on the right.
func (c *Client) TypeGraphForVendor(vendor string) *graph.Bipartite {
	g := graph.New()
	for _, key := range c.orderedKeys {
		info := c.Prints[key]
		if !info.Vendors[vendor] {
			continue
		}
		for dev := range info.Devices {
			if c.DeviceVendor[dev] == vendor {
				g.AddEdge(c.DeviceType[dev], key)
			}
		}
	}
	return g
}

// DeviceGraphForVendor builds the Figure 4 graph: the vendor's devices on
// the left, their fingerprints on the right.
func (c *Client) DeviceGraphForVendor(vendor string) *graph.Bipartite {
	g := graph.New()
	for dev, prints := range c.DevicePrints {
		if c.DeviceVendor[dev] != vendor {
			continue
		}
		for key := range prints {
			g.AddEdge(dev, key)
		}
	}
	return g
}

// DeviceGraphForVendorType restricts Figure 4 to one device type
// (Amazon Echo in the paper = Amazon speakers here).
func (c *Client) DeviceGraphForVendorType(vendor, typ string) *graph.Bipartite {
	g := graph.New()
	for dev, prints := range c.DevicePrints {
		if c.DeviceVendor[dev] != vendor || c.DeviceType[dev] != typ {
			continue
		}
		for key := range prints {
			g.AddEdge(dev, key)
		}
	}
	return g
}

// Table2 is the fingerprint vendor-degree distribution.
func (c *Client) Table2() graph.DegreeDistribution {
	return c.VendorGraph().DegreeDistribution()
}

// DoCVendorAll returns DoC_vendor for every vendor (Figure 2, red line).
func (c *Client) DoCVendorAll() map[string]float64 {
	return c.VendorGraph().DoCAll()
}

// DoCDeviceAll returns DoC_device (the mean per-device DoC within each
// vendor; Figure 2, blue line).
func (c *Client) DoCDeviceAll() map[string]float64 {
	out := map[string]float64{}
	for _, vendor := range c.vendorNames() {
		g := c.DeviceGraphForVendor(vendor)
		docs := g.DoCAll()
		if len(docs) == 0 {
			out[vendor] = 0
			continue
		}
		sum := 0.0
		for _, v := range docs {
			sum += v
		}
		out[vendor] = sum / float64(len(docs))
	}
	return out
}

// DeviceDoCsForVendor returns the per-device DoC values of one vendor
// (Figure 10 rows).
func (c *Client) DeviceDoCsForVendor(vendor string) []float64 {
	g := c.DeviceGraphForVendor(vendor)
	docs := g.DoCAll()
	out := make([]float64, 0, len(docs))
	keys := make([]string, 0, len(docs))
	for k := range docs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, docs[k])
	}
	return out
}

func (c *Client) vendorNames() []string {
	set := map[string]bool{}
	for _, v := range c.DeviceVendor {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Table3Row is one row of Table 3 (fingerprint heterogeneity within a
// vendor).
type Table3Row struct {
	Vendor          string
	NumFingerprints int
	SharedBy10Plus  float64 // fraction of the vendor's prints on >=10 devices
	UsedBySingleDev float64 // fraction used by exactly one device
}

// Table3 computes the heterogeneity rows for the topN vendors by
// fingerprint count.
func (c *Client) Table3(topN int) []Table3Row {
	perVendor := map[string]map[string]bool{} // vendor -> fp keys
	for _, key := range c.orderedKeys {
		for vendor := range c.Prints[key].Vendors {
			if perVendor[vendor] == nil {
				perVendor[vendor] = map[string]bool{}
			}
			perVendor[vendor][key] = true
		}
	}
	rows := make([]Table3Row, 0, len(perVendor))
	for vendor, keys := range perVendor {
		row := Table3Row{Vendor: vendor, NumFingerprints: len(keys)}
		shared10, single := 0, 0
		for key := range keys {
			// Count devices of THIS vendor using the fingerprint.
			n := 0
			for dev := range c.Prints[key].Devices {
				if c.DeviceVendor[dev] == vendor {
					n++
				}
			}
			if n >= 10 {
				shared10++
			}
			if n == 1 {
				single++
			}
		}
		if len(keys) > 0 {
			row.SharedBy10Plus = float64(shared10) / float64(len(keys))
			row.UsedBySingleDev = float64(single) / float64(len(keys))
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].NumFingerprints != rows[j].NumFingerprints {
			return rows[i].NumFingerprints > rows[j].NumFingerprints
		}
		return rows[i].Vendor < rows[j].Vendor
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// Table4 returns the vendor tuples with Jaccard similarity >= threshold.
func (c *Client) Table4(threshold float64) []graph.SimilarPair {
	return c.VendorGraph().SimilarPairs(threshold)
}

// Table5Row is one server-tied fingerprint row (Section 4.4).
type Table5Row struct {
	SLD        string
	FQDNs      int
	VulnLabels []string
	Devices    int
	Vendors    []string
	PrintKey   string
}

// Table5 finds {SLD, fingerprint} tuples where servers are tied to one
// fingerprint used by devices from multiple vendors. minDevices excludes
// one-device outliers (the paper requires >= 2).
func (c *Client) Table5(minDevices int) []Table5Row {
	// SNI -> set of fingerprint keys seen toward it.
	sniPrints := map[string]map[string]bool{}
	for _, key := range c.orderedKeys {
		for sni := range c.Prints[key].SNIs {
			if sniPrints[sni] == nil {
				sniPrints[sni] = map[string]bool{}
			}
			sniPrints[sni][key] = true
		}
	}
	// Keep SNIs tied to exactly one fingerprint.
	type agg struct {
		fqdns   int
		devices map[string]bool
		vendors map[string]bool
	}
	tied := map[string]*agg{} // "sld|printKey" -> agg
	for sni, prints := range sniPrints {
		if len(prints) != 1 {
			continue
		}
		var key string
		for k := range prints {
			key = k
		}
		id := SLDOf(sni) + "|" + key
		a := tied[id]
		if a == nil {
			a = &agg{devices: map[string]bool{}, vendors: map[string]bool{}}
			tied[id] = a
		}
		a.fqdns++
		// Count the devices that actually visited this server (all of
		// them used the tied fingerprint by construction).
		for d := range c.SNIDevices[sni] {
			a.devices[d] = true
			a.vendors[c.DeviceVendor[d]] = true
		}
	}
	var rows []Table5Row
	for id, a := range tied {
		if len(a.vendors) < 2 || len(a.devices) < minDevices {
			continue
		}
		var sld, key string
		for i := 0; i < len(id); i++ {
			if id[i] == '|' {
				sld, key = id[:i], id[i+1:]
				break
			}
		}
		info := c.Prints[key]
		var vulns []string
		for _, v := range info.Print.VulnClasses() {
			vulns = append(vulns, v.String())
		}
		vendors := make([]string, 0, len(a.vendors))
		for v := range a.vendors {
			vendors = append(vendors, v)
		}
		sort.Strings(vendors)
		rows = append(rows, Table5Row{
			SLD:        sld,
			FQDNs:      a.fqdns,
			VulnLabels: vulns,
			Devices:    len(a.devices),
			Vendors:    vendors,
			PrintKey:   key,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Devices != rows[j].Devices {
			return rows[i].Devices > rows[j].Devices
		}
		if rows[i].SLD != rows[j].SLD {
			return rows[i].SLD < rows[j].SLD
		}
		return rows[i].PrintKey < rows[j].PrintKey
	})
	return rows
}

// ServerTiedSNIFraction returns the fraction of SNIs tied to a single
// fingerprint that is used by multiple devices (the paper's 17.42%),
// excluding fingerprints matched to known libraries when a matcher is
// provided.
func (c *Client) ServerTiedSNIFraction(matcher *fingerprint.Matcher) float64 {
	sniPrints := map[string]map[string]bool{}
	for _, key := range c.orderedKeys {
		if matcher != nil {
			if _, ok := matcher.MatchExact(c.Prints[key].Print); ok {
				continue
			}
		}
		for sni := range c.Prints[key].SNIs {
			if sniPrints[sni] == nil {
				sniPrints[sni] = map[string]bool{}
			}
			sniPrints[sni][key] = true
		}
	}
	if len(sniPrints) == 0 {
		return 0
	}
	tied := 0
	for _, prints := range sniPrints {
		if len(prints) != 1 {
			continue
		}
		for key := range prints {
			if len(c.Prints[key].Devices) >= 2 {
				tied++
			}
		}
	}
	return float64(tied) / float64(len(sniPrints))
}

// VulnStats summarizes Section 4.2's vulnerability findings.
type VulnStats struct {
	// TotalFingerprints across the dataset.
	TotalFingerprints int
	// WithVulnerable counts fingerprints with >= 1 vulnerable component.
	WithVulnerable int
	// VulnUsedByMultipleDevices counts vulnerable fingerprints on >= 2
	// devices.
	VulnUsedByMultipleDevices int
	// ByClass counts fingerprints per vulnerable component family.
	ByClass map[ciphersuite.VulnClass]int
	// AwfulFingerprints counts fingerprints with anon/export/NULL suites.
	AwfulFingerprints int
	// AwfulDevices / AwfulVendors count the devices and vendors proposing
	// them.
	AwfulDevices int
	AwfulVendors []string
}

// Vulnerabilities computes the Section 4.2 statistics.
func (c *Client) Vulnerabilities() VulnStats {
	st := VulnStats{
		TotalFingerprints: len(c.Prints),
		ByClass:           map[ciphersuite.VulnClass]int{},
	}
	awfulVendors := map[string]bool{}
	awfulDevices := map[string]bool{}
	for _, key := range c.orderedKeys {
		info := c.Prints[key]
		classes := info.Print.VulnClasses()
		if len(classes) == 0 {
			continue
		}
		st.WithVulnerable++
		if len(info.Devices) >= 2 {
			st.VulnUsedByMultipleDevices++
		}
		awful := false
		for _, cl := range classes {
			st.ByClass[cl]++
			switch cl {
			case ciphersuite.VulnAnonKex, ciphersuite.VulnExport,
				ciphersuite.VulnNULL, ciphersuite.VulnKRB5Export, ciphersuite.VulnRC2:
				awful = true
			}
		}
		if awful {
			st.AwfulFingerprints++
			for d := range info.Devices {
				awfulDevices[d] = true
			}
			for v := range info.Vendors {
				awfulVendors[v] = true
			}
		}
	}
	st.AwfulDevices = len(awfulDevices)
	for v := range awfulVendors {
		st.AwfulVendors = append(st.AwfulVendors, v)
	}
	sort.Strings(st.AwfulVendors)
	return st
}

// SLDOf re-exports simnet's SLD extraction for analysis consumers without
// importing simnet (avoids a dependency cycle for server analysis).
func SLDOf(fqdn string) string {
	// Duplicated two-label suffix logic, kept in sync with simnet.SLDOf.
	dots := 0
	for i := len(fqdn) - 1; i >= 0; i-- {
		if fqdn[i] == '.' {
			dots++
			if dots == 2 {
				candidate := fqdn[i+1:]
				switch candidate {
				case "co.kr", "co.uk", "com.cn", "ntp.org":
					// Need three labels.
					for j := i - 1; j >= 0; j-- {
						if fqdn[j] == '.' {
							return fqdn[j+1:]
						}
					}
					return fqdn
				}
				return candidate
			}
		}
	}
	return fqdn
}
