package analysis

import (
	"sort"

	"repro/internal/ciphersuite"
	"repro/internal/fingerprint"
	"repro/internal/tlswire"
)

// LibMatchResult summarizes the Section 4.1 exact-matching experiment.
type LibMatchResult struct {
	// TotalFingerprints in the dataset.
	TotalFingerprints int
	// MatchedFingerprints had an exact 3-tuple match.
	MatchedFingerprints int
	// MatchedLibraries is the set of distinct library builds matched.
	MatchedLibraries []string
	// UnsupportedLibraries of those were no longer maintained in 2020.
	UnsupportedLibraries int
	// PerFamily counts matched libraries per family.
	PerFamily map[string]int
}

// MatchRate is MatchedFingerprints / TotalFingerprints (the paper: 2.55%).
func (r LibMatchResult) MatchRate() float64 {
	if r.TotalFingerprints == 0 {
		return 0
	}
	return float64(r.MatchedFingerprints) / float64(r.TotalFingerprints)
}

// MatchLibraries runs exact matching of every dataset fingerprint against
// the corpus.
func (c *Client) MatchLibraries(matcher *fingerprint.Matcher) LibMatchResult {
	res := LibMatchResult{
		TotalFingerprints: len(c.Prints),
		PerFamily:         map[string]int{},
	}
	libs := map[string]bool{}
	for _, key := range c.orderedKeys {
		e, ok := matcher.MatchExact(c.Prints[key].Print)
		if !ok {
			continue
		}
		res.MatchedFingerprints++
		if !libs[e.Name()] {
			libs[e.Name()] = true
			res.PerFamily[e.Family]++
			if !e.SupportedIn2020 {
				res.UnsupportedLibraries++
			}
		}
	}
	for name := range libs {
		res.MatchedLibraries = append(res.MatchedLibraries, name)
	}
	sort.Strings(res.MatchedLibraries)
	return res
}

// Table11Row is one row of the semantics-aware matching results.
type Table11Row struct {
	Category fingerprint.MatchCategory
	// Tuples is the number of {device, ciphersuite list} tuples in the
	// category.
	Tuples int
	// PercentTotal of all tuples.
	PercentTotal float64
	// Vendors with at least one tuple in the category.
	Vendors int
	// PercentOutdated of tuples matched to libraries unsupported in 2020
	// (not meaningful for Customization).
	PercentOutdated float64
}

// deviceSuiteTuples enumerates the distinct {device, ciphersuite list}
// tuples (Appendix B's 5,827 unit of analysis).
func (c *Client) deviceSuiteTuples() map[string][]uint16 {
	out := map[string][]uint16{}
	for _, key := range c.orderedKeys {
		info := c.Prints[key]
		suiteKey := ""
		for _, cs := range info.Print.CipherSuites {
			suiteKey += string(rune('A'+(cs>>12))) + string(rune('a'+(cs>>8&0xF))) +
				string(rune('a'+(cs>>4&0xF))) + string(rune('a'+(cs&0xF)))
		}
		for _, dev := range info.Devices {
			out[dev+"|"+suiteKey] = info.Print.CipherSuites
		}
	}
	return out
}

// Table11 runs the semantics-aware matcher over every {device, suites}
// tuple.
func (c *Client) Table11(matcher *fingerprint.Matcher) []Table11Row {
	type acc struct {
		tuples   int
		vendors  map[string]bool
		outdated int
	}
	accs := map[fingerprint.MatchCategory]*acc{}
	tuples := c.deviceSuiteTuples()
	total := len(tuples)
	for id, suites := range tuples {
		var dev string
		for i := 0; i < len(id); i++ {
			if id[i] == '|' {
				dev = id[:i]
				break
			}
		}
		// The matcher memoizes per distinct suite list, so repeated tuples
		// cost a map hit and the memo is shared with Figure 8.
		m := matcher.MatchSemantics(suites)
		a := accs[m.Category]
		if a == nil {
			a = &acc{vendors: map[string]bool{}}
			accs[m.Category] = a
		}
		a.tuples++
		a.vendors[c.DeviceVendor[dev]] = true
		if m.Category != fingerprint.Customization && !m.Library.SupportedIn2020 {
			a.outdated++
		}
	}
	cats := []fingerprint.MatchCategory{
		fingerprint.ExactCiphersuites,
		fingerprint.SameSetDiffOrder,
		fingerprint.SameComponent,
		fingerprint.SimilarComponent,
		fingerprint.Customization,
	}
	rows := make([]Table11Row, 0, len(cats))
	for _, cat := range cats {
		a := accs[cat]
		if a == nil {
			rows = append(rows, Table11Row{Category: cat})
			continue
		}
		row := Table11Row{
			Category:     cat,
			Tuples:       a.tuples,
			PercentTotal: float64(a.tuples) / float64(total),
			Vendors:      len(a.vendors),
		}
		if a.tuples > 0 {
			row.PercentOutdated = float64(a.outdated) / float64(a.tuples)
		}
		rows = append(rows, row)
	}
	return rows
}

// Figure8Bucket is a histogram bucket of Jaccard similarity between a
// device's suites and its closest library.
type Figure8Bucket struct {
	Low, High float64
	SameComp  int
	SimComp   int
}

// Figure8 builds the Jaccard histogram for the SameComponent and
// SimilarComponent categories.
func (c *Client) Figure8(matcher *fingerprint.Matcher, buckets int) []Figure8Bucket {
	if buckets <= 0 {
		buckets = 10
	}
	out := make([]Figure8Bucket, buckets)
	for i := range out {
		out[i].Low = float64(i) / float64(buckets)
		out[i].High = float64(i+1) / float64(buckets)
	}
	for _, suites := range c.deviceSuiteTuples() {
		m := matcher.MatchSemantics(suites)
		if m.Category != fingerprint.SameComponent && m.Category != fingerprint.SimilarComponent {
			continue
		}
		idx := int(m.Jaccard * float64(buckets))
		if idx >= buckets {
			idx = buckets - 1
		}
		if m.Category == fingerprint.SameComponent {
			out[idx].SameComp++
		} else {
			out[idx].SimComp++
		}
	}
	return out
}

// Table12 returns proposal counts per TLS version.
func (c *Client) Table12() map[tlswire.Version]int {
	out := make(map[tlswire.Version]int, len(c.VersionCounts))
	for v, n := range c.VersionCounts {
		out[v] = n
	}
	return out
}

// SSL3Census reports the devices and vendors still proposing SSL 3.0.
func (c *Client) SSL3Census() (devices int, vendors map[string]int) {
	devSet := map[string]bool{}
	vendors = map[string]int{}
	for _, key := range c.orderedKeys {
		info := c.Prints[key]
		if info.Print.Version != tlswire.VersionSSL30 {
			continue
		}
		for _, d := range info.Devices {
			if !devSet[d] {
				devSet[d] = true
				vendors[c.DeviceVendor[d]]++
			}
		}
	}
	return len(devSet), vendors
}

// Figure9Row reports a vendor's vulnerable-component inclusion.
type Figure9Row struct {
	Vendor string
	// TupleCount is the number of {device, suites} tuples for the vendor.
	TupleCount int
	// ByClass counts tuples containing each vulnerable family.
	ByClass map[ciphersuite.VulnClass]int
}

// Figure9 computes vulnerable-component inclusion per vendor.
func (c *Client) Figure9() []Figure9Row {
	rows := map[string]*Figure9Row{}
	for id, suites := range c.deviceSuiteTuples() {
		var dev string
		for i := 0; i < len(id); i++ {
			if id[i] == '|' {
				dev = id[:i]
				break
			}
		}
		vendor := c.DeviceVendor[dev]
		row := rows[vendor]
		if row == nil {
			row = &Figure9Row{Vendor: vendor, ByClass: map[ciphersuite.VulnClass]int{}}
			rows[vendor] = row
		}
		row.TupleCount++
		for _, cl := range ciphersuite.VulnClasses(suites) {
			row.ByClass[cl]++
		}
	}
	out := make([]Figure9Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vendor < out[j].Vendor })
	return out
}

// Figure11Row is a vendor's lowest-vulnerable-index distribution.
type Figure11Row struct {
	Vendor string
	// Indices holds the lowest vulnerable-suite index of each {device,
	// suites} tuple; -1 entries (no vulnerable suite) are excluded.
	Indices []int
	// Tuples is the total tuple count (including clean ones).
	Tuples int
	// FirstPreferred counts tuples whose MOST preferred suite is
	// vulnerable.
	FirstPreferred int
}

// Figure11 computes the lowest index of vulnerable ciphersuites per
// vendor (Appendix B.7).
func (c *Client) Figure11() []Figure11Row {
	rows := map[string]*Figure11Row{}
	for id, suites := range c.deviceSuiteTuples() {
		var dev string
		for i := 0; i < len(id); i++ {
			if id[i] == '|' {
				dev = id[:i]
				break
			}
		}
		vendor := c.DeviceVendor[dev]
		row := rows[vendor]
		if row == nil {
			row = &Figure11Row{Vendor: vendor}
			rows[vendor] = row
		}
		row.Tuples++
		// Skip a leading renegotiation SCSV, as the appendix does.
		effective := suites
		if len(effective) > 0 && effective[0] == ciphersuite.SCSVRenegotiation {
			effective = effective[1:]
		}
		idx := ciphersuite.LowestVulnerableIndex(effective)
		if idx >= 0 {
			row.Indices = append(row.Indices, idx)
			if idx == 0 {
				row.FirstPreferred++
			}
		}
	}
	out := make([]Figure11Row, 0, len(rows))
	for _, r := range rows {
		sort.Ints(r.Indices)
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vendor < out[j].Vendor })
	return out
}

// Figure12Row decomposes each vendor's most-preferred ciphersuites.
type Figure12Row struct {
	Vendor string
	// Kex, Cipher, MAC tally the usage count of each component algorithm
	// appearing in first position.
	Kex    map[string]int
	Cipher map[string]int
	MAC    map[string]int
}

// Figure12 computes the most-preferred algorithm components per vendor
// (Appendix B.8). Tuples led by the renegotiation SCSV are excluded, as
// in the paper.
func (c *Client) Figure12() []Figure12Row {
	rows := map[string]*Figure12Row{}
	for id, suites := range c.deviceSuiteTuples() {
		if len(suites) == 0 || suites[0] == ciphersuite.SCSVRenegotiation {
			continue
		}
		first, ok := ciphersuite.Lookup(suites[0])
		if !ok || first.IsSCSV() {
			continue
		}
		var dev string
		for i := 0; i < len(id); i++ {
			if id[i] == '|' {
				dev = id[:i]
				break
			}
		}
		vendor := c.DeviceVendor[dev]
		row := rows[vendor]
		if row == nil {
			row = &Figure12Row{
				Vendor: vendor,
				Kex:    map[string]int{},
				Cipher: map[string]int{},
				MAC:    map[string]int{},
			}
			rows[vendor] = row
		}
		k, ci, m := first.Components()
		row.Kex[k]++
		row.Cipher[ci]++
		row.MAC[m]++
	}
	out := make([]Figure12Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vendor < out[j].Vendor })
	return out
}

// ExtensionCensus reports device/vendor counts for OCSP status requests,
// GREASE, and TLS_FALLBACK_SCSV (Appendix B.3.1, B.9, B.10).
type ExtensionCensus struct {
	OCSPDevices, OCSPVendors                 int
	GREASESuiteDevices, GREASESuiteVendors   int
	GREASEExtDevices, GREASEExtVendors       int
	FallbackSCSVDevices, FallbackSCSVVendors int
}

// Census computes the extension/feature censuses.
func (c *Client) Census() ExtensionCensus {
	type devFlags struct {
		ocsp, gSuite, gExt, scsv bool
	}
	flags := map[string]*devFlags{}
	get := func(dev string) *devFlags {
		f := flags[dev]
		if f == nil {
			f = &devFlags{}
			flags[dev] = f
		}
		return f
	}
	for _, key := range c.orderedKeys {
		info := c.Prints[key]
		hasOCSP := false
		for _, e := range info.Print.Extensions {
			if e == uint16(tlswire.ExtStatusRequest) {
				hasOCSP = true
			}
		}
		gSuite := info.Print.HasGREASESuites()
		gExt := info.Print.HasGREASEExtensions()
		scsv := info.Print.ProposesFallbackSCSV()
		for _, dev := range info.Devices {
			f := get(dev)
			f.ocsp = f.ocsp || hasOCSP
			f.gSuite = f.gSuite || gSuite
			f.gExt = f.gExt || gExt
			f.scsv = f.scsv || scsv
		}
	}
	var out ExtensionCensus
	vOCSP, vGS, vGE, vSCSV := map[string]bool{}, map[string]bool{}, map[string]bool{}, map[string]bool{}
	for dev, f := range flags {
		vendor := c.DeviceVendor[dev]
		if f.ocsp {
			out.OCSPDevices++
			vOCSP[vendor] = true
		}
		if f.gSuite {
			out.GREASESuiteDevices++
			vGS[vendor] = true
		}
		if f.gExt {
			out.GREASEExtDevices++
			vGE[vendor] = true
		}
		if f.scsv {
			out.FallbackSCSVDevices++
			vSCSV[vendor] = true
		}
	}
	out.OCSPVendors = len(vOCSP)
	out.GREASESuiteVendors = len(vGS)
	out.GREASEExtVendors = len(vGE)
	out.FallbackSCSVVendors = len(vSCSV)
	return out
}
