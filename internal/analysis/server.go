package analysis

import (
	"bytes"
	"context"
	"crypto/x509"
	"sort"
	"time"

	"repro/internal/ctlog"
	"repro/internal/dataset"
	"repro/internal/pki"
	"repro/internal/probe"
	"repro/internal/simnet"
)

// CertRecord is one successfully probed server at the primary vantage.
type CertRecord struct {
	SNI       string
	SLD       string
	Chain     pki.Chain
	Leaf      *x509.Certificate
	LeafFP    ctlog.Hash
	IssuerOrg string
	// IssuerPublic: the issuer organization has a root in a major trust
	// store (Section 5.2's public trust CA definition).
	IssuerPublic bool
	// Status is the chain validation outcome.
	Status pki.ChainStatus
	// ValidityDays of the leaf.
	ValidityDays int
	// InCT: the leaf appears in the CT log.
	InCT bool
	// IPs the server resolves to.
	IPs []string
	// Devices / Vendors that visited the SNI in the ClientHello dataset.
	Devices map[string]bool
	Vendors map[string]bool
}

// Server is the server-side analysis state (Section 5).
type Server struct {
	World *simnet.World
	DS    *dataset.Dataset
	// Vantages is the probing locations the collection run used, in
	// order; the first entry is the primary vantage whose chains become
	// Records (the paper probed from New York, Frankfurt, and Singapore
	// with New York primary).
	Vantages []simnet.Vantage
	// Records are the successful primary-vantage probes.
	Records []*CertRecord
	// ByVantage stores leaf DER per vantage for the geo comparison.
	ByVantage map[simnet.Vantage]map[string][]byte
	// ProbedSNIs is the input SNI set (after the >2 users filter).
	ProbedSNIs []string
	// UnreachableSNIs failed at every vantage.
	UnreachableSNIs []string
	// ProbeStats summarizes the resilient-probe run: attempts, retries,
	// failure classes, breaker activity.
	ProbeStats probe.Stats
}

// NewServer probes every SNI from every vantage (real TLS when realTLS is
// set) through the resilient engine with default options and assembles
// the certificate dataset of Section 5.1.
func NewServer(w *simnet.World, ds *dataset.Dataset, snis []string, realTLS bool) *Server {
	return NewServerProbed(w, ds, snis, probe.WorldProber{World: w, RealTLS: realTLS}, probe.Options{})
}

// NewServerProbed is NewServer with an explicit probing backend and
// engine options, for fault-injected or live-backend collection runs.
func NewServerProbed(w *simnet.World, ds *dataset.Dataset, snis []string, p probe.Prober, opts probe.Options) *Server {
	results, stats := probe.New(p, opts).Run(context.Background(), snis, simnet.Vantages())
	return NewServerFromProbes(w, ds, snis, simnet.Vantages(), results, stats)
}

// NewServerFromProbes assembles the Section 5 certificate dataset from an
// already-completed probe run: chain validation, CT lookups, and the
// visitation index. Splitting collection from validation lets the
// stage-based pipeline of internal/core trace and cancel the two halves
// independently. vantages is the location set the run probed, primary
// first (nil or empty: the paper's three with New York primary).
func NewServerFromProbes(w *simnet.World, ds *dataset.Dataset, snis []string, vantages []simnet.Vantage, results []probe.Result, stats probe.Stats) *Server {
	if len(vantages) == 0 {
		vantages = simnet.Vantages()
	}
	s := &Server{
		World:      w,
		DS:         ds,
		Vantages:   vantages,
		ByVantage:  map[simnet.Vantage]map[string][]byte{},
		ProbedSNIs: snis,
	}
	// Visitation index from the ClientHello dataset, walked in column
	// form: records without an SNI are skipped on a symbol compare
	// without materializing a row.
	visitDevices := map[string]map[string]bool{}
	visitVendors := map[string]map[string]bool{}
	tab := ds.Records.Table()
	for i := 0; i < ds.Records.Len(); i++ {
		sniSym := ds.Records.SNISym(i)
		if sniSym == 0 {
			continue
		}
		sni := tab.Str(sniSym)
		if visitDevices[sni] == nil {
			visitDevices[sni] = map[string]bool{}
			visitVendors[sni] = map[string]bool{}
		}
		visitDevices[sni][tab.Str(ds.Records.DeviceSym(i))] = true
		visitVendors[sni][tab.Str(ds.Records.VendorSym(i))] = true
	}

	s.ProbeStats = stats
	chains := map[simnet.Vantage]map[string]pki.Chain{}
	for _, v := range vantages {
		chains[v] = map[string]pki.Chain{}
		s.ByVantage[v] = map[string][]byte{}
	}
	failed := map[string]int{}
	for _, r := range results {
		if r.Err != nil {
			failed[r.SNI]++
			continue
		}
		chains[r.Vantage][r.SNI] = r.Response.Chain
		if leaf := r.Response.Chain.Leaf(); leaf != nil {
			s.ByVantage[r.Vantage][r.SNI] = leaf.Raw
		}
	}
	for sni, n := range failed {
		if n == len(vantages) {
			s.UnreachableSNIs = append(s.UnreachableSNIs, sni)
		}
	}
	sort.Strings(s.UnreachableSNIs)

	// Primary vantage records (the first vantage; New York in the paper).
	primary := chains[vantages[0]]
	ordered := make([]string, 0, len(primary))
	for sni := range primary {
		ordered = append(ordered, sni)
	}
	sort.Strings(ordered)
	for _, sni := range ordered {
		chain := primary[sni]
		leaf := chain.Leaf()
		if leaf == nil {
			continue
		}
		res := w.Validator.Validate(chain, sni, w.ProbeTime)
		issuerOrg := pki.IssuerOrg(leaf)
		rec := &CertRecord{
			SNI:          sni,
			SLD:          simnet.SLDOf(sni),
			Chain:        chain,
			Leaf:         leaf,
			LeafFP:       ctlog.CertFingerprint(leaf),
			IssuerOrg:    issuerOrg,
			IssuerPublic: w.Stores.ContainsOrg(issuerOrg),
			Status:       res.Status,
			ValidityDays: int(leaf.NotAfter.Sub(leaf.NotBefore).Hours() / 24),
			InCT:         w.Log.Contains(leaf),
			Devices:      visitDevices[sni],
			Vendors:      visitVendors[sni],
		}
		if srv := w.Servers[sni]; srv != nil {
			rec.IPs = srv.IPs
		}
		if rec.Devices == nil {
			rec.Devices = map[string]bool{}
		}
		if rec.Vendors == nil {
			rec.Vendors = map[string]bool{}
		}
		s.Records = append(s.Records, rec)
	}
	return s
}

// Table6 is the certificate dataset summary.
type Table6 struct {
	Servers       int
	LeafCerts     int
	IssuerOrgs    int
	DeviceVendors int
}

// Table6 summarizes the certificate dataset.
func (s *Server) Table6() Table6 {
	leafs := map[ctlog.Hash]bool{}
	orgs := map[string]bool{}
	vendors := map[string]bool{}
	for _, r := range s.Records {
		leafs[r.LeafFP] = true
		orgs[r.IssuerOrg] = true
		for v := range r.Vendors {
			vendors[v] = true
		}
	}
	return Table6{
		Servers:       len(s.Records),
		LeafCerts:     len(leafs),
		IssuerOrgs:    len(orgs),
		DeviceVendors: len(vendors),
	}
}

// SharingStats quantifies certificate sharing (Section 5.1).
type SharingStats struct {
	// ServersPerCertMean/Var/Max: FQDNs presenting the same leaf.
	ServersPerCertMean float64
	ServersPerCertVar  float64
	ServersPerCertMax  int
	// MultiIPFraction of certs served from >= 2 IPs.
	MultiIPFraction float64
	// IPsPerCertMean/Max across certs.
	IPsPerCertMean float64
	IPsPerCertMax  int
}

// Sharing computes the certificate sharing statistics.
func (s *Server) Sharing() SharingStats {
	fqdns := map[ctlog.Hash]int{}
	ips := map[ctlog.Hash]map[string]bool{}
	for _, r := range s.Records {
		fqdns[r.LeafFP]++
		if ips[r.LeafFP] == nil {
			ips[r.LeafFP] = map[string]bool{}
		}
		for _, ip := range r.IPs {
			ips[r.LeafFP][ip] = true
		}
	}
	var st SharingStats
	if len(fqdns) == 0 {
		return st
	}
	sum := 0.0
	for _, n := range fqdns {
		sum += float64(n)
		if n > st.ServersPerCertMax {
			st.ServersPerCertMax = n
		}
	}
	st.ServersPerCertMean = sum / float64(len(fqdns))
	varSum := 0.0
	for _, n := range fqdns {
		d := float64(n) - st.ServersPerCertMean
		varSum += d * d
	}
	st.ServersPerCertVar = varSum / float64(len(fqdns))
	multi := 0
	ipSum := 0.0
	for _, set := range ips {
		if len(set) >= 2 {
			multi++
		}
		ipSum += float64(len(set))
		if len(set) > st.IPsPerCertMax {
			st.IPsPerCertMax = len(set)
		}
	}
	st.MultiIPFraction = float64(multi) / float64(len(ips))
	st.IPsPerCertMean = ipSum / float64(len(ips))
	return st
}

// Figure5Cell is the ratio of a vendor's visited-server certificates
// signed by an issuer.
type Figure5Cell struct {
	Vendor string
	Issuer string
	Ratio  float64
}

// Figure5 builds the issuer × vendor matrix. Ratios sum to 1 per vendor.
func (s *Server) Figure5() []Figure5Cell {
	counts := map[string]map[string]int{} // vendor -> issuer -> servers
	for _, r := range s.Records {
		for v := range r.Vendors {
			if counts[v] == nil {
				counts[v] = map[string]int{}
			}
			counts[v][r.IssuerOrg]++
		}
	}
	var out []Figure5Cell
	vendors := make([]string, 0, len(counts))
	for v := range counts {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)
	for _, v := range vendors {
		total := 0
		for _, n := range counts[v] {
			total += n
		}
		issuers := make([]string, 0, len(counts[v]))
		for i := range counts[v] {
			issuers = append(issuers, i)
		}
		sort.Strings(issuers)
		for _, i := range issuers {
			out = append(out, Figure5Cell{Vendor: v, Issuer: i, Ratio: float64(counts[v][i]) / float64(total)})
		}
	}
	return out
}

// PrivateLeafFraction returns the fraction of distinct leaf certificates
// signed by private CAs (the paper's 9.86%) and the number of devices
// visiting servers presenting them.
func (s *Server) PrivateLeafFraction() (fraction float64, devices int) {
	leafs := map[ctlog.Hash]bool{}
	private := map[ctlog.Hash]bool{}
	devSet := map[string]bool{}
	for _, r := range s.Records {
		leafs[r.LeafFP] = true
		if !r.IssuerPublic {
			private[r.LeafFP] = true
			for d := range r.Devices {
				devSet[d] = true
			}
		}
	}
	if len(leafs) == 0 {
		return 0, 0
	}
	return float64(len(private)) / float64(len(leafs)), len(devSet)
}

// VendorsOnlyPrivate returns vendors all of whose visited servers present
// vendor-signed (private) leaves (Canary, Tuya, Obihai in the paper).
func (s *Server) VendorsOnlyPrivate() []string {
	pub := map[string]bool{}
	priv := map[string]bool{}
	for _, r := range s.Records {
		for v := range r.Vendors {
			if r.IssuerPublic {
				pub[v] = true
			} else {
				priv[v] = true
			}
		}
	}
	var out []string
	for v := range priv {
		if !pub[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// DomainRow aggregates per-SLD rows for Tables 7, 8, and 14.
type DomainRow struct {
	SLD          string
	FQDNs        int
	IssuerOrg    string
	IssuerPublic bool
	ChainLengths []int
	Devices      int
	Vendors      []string
	Statuses     []pki.ChainStatus
	// NotAfter (earliest) for expired rows.
	NotAfter time.Time
}

// domainRows groups records matching the filter by SLD+issuer.
func (s *Server) domainRows(filter func(*CertRecord) bool) []DomainRow {
	type agg struct {
		fqdns    int
		lengths  map[int]bool
		devices  map[string]bool
		vendors  map[string]bool
		status   map[pki.ChainStatus]bool
		public   bool
		notAfter time.Time
	}
	rows := map[string]*agg{}
	for _, r := range s.Records {
		if !filter(r) {
			continue
		}
		id := r.SLD + "|" + r.IssuerOrg
		a := rows[id]
		if a == nil {
			a = &agg{
				lengths:  map[int]bool{},
				devices:  map[string]bool{},
				vendors:  map[string]bool{},
				status:   map[pki.ChainStatus]bool{},
				public:   r.IssuerPublic,
				notAfter: r.Leaf.NotAfter,
			}
			rows[id] = a
		}
		a.fqdns++
		a.lengths[r.Chain.Len()] = true
		for d := range r.Devices {
			a.devices[d] = true
		}
		for v := range r.Vendors {
			a.vendors[v] = true
		}
		a.status[r.Status] = true
		if r.Leaf.NotAfter.Before(a.notAfter) {
			a.notAfter = r.Leaf.NotAfter
		}
	}
	out := make([]DomainRow, 0, len(rows))
	for id, a := range rows {
		var sld, issuer string
		for i := 0; i < len(id); i++ {
			if id[i] == '|' {
				sld, issuer = id[:i], id[i+1:]
				break
			}
		}
		row := DomainRow{
			SLD:          sld,
			FQDNs:        a.fqdns,
			IssuerOrg:    issuer,
			IssuerPublic: a.public,
			Devices:      len(a.devices),
			NotAfter:     a.notAfter,
		}
		for l := range a.lengths {
			row.ChainLengths = append(row.ChainLengths, l)
		}
		sort.Ints(row.ChainLengths)
		for v := range a.vendors {
			row.Vendors = append(row.Vendors, v)
		}
		sort.Strings(row.Vendors)
		for st := range a.status {
			row.Statuses = append(row.Statuses, st)
		}
		sort.Slice(row.Statuses, func(i, j int) bool { return row.Statuses[i] < row.Statuses[j] })
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Devices != out[j].Devices {
			return out[i].Devices > out[j].Devices
		}
		return out[i].SLD < out[j].SLD
	})
	return out
}

// Table7 lists chains with validation failure (incomplete chains and
// untrusted roots, plus self-signed presentations).
func (s *Server) Table7() []DomainRow {
	return s.domainRows(func(r *CertRecord) bool {
		switch r.Status {
		case pki.StatusIncompleteChain, pki.StatusUntrustedRoot, pki.StatusSelfSigned:
			return true
		default:
			return false
		}
	})
}

// Table8 lists expired certificates.
func (s *Server) Table8() []DomainRow {
	return s.domainRows(func(r *CertRecord) bool {
		return r.Status == pki.StatusExpired
	})
}

// Table14 lists private-root and self-signed chains.
func (s *Server) Table14() []DomainRow {
	return s.domainRows(func(r *CertRecord) bool {
		return r.Status == pki.StatusUntrustedRoot || r.Status == pki.StatusSelfSigned
	})
}

// CNMismatches lists servers whose certificate names neither CN nor SAN
// of the SNI (the a2.tuyaus.com case).
func (s *Server) CNMismatches() []DomainRow {
	return s.domainRows(func(r *CertRecord) bool {
		return r.Status == pki.StatusCNMismatch
	})
}

// Figure6Point is one certificate in the validity × CT scatter.
type Figure6Point struct {
	Vendor       string
	ValidityDays int
	// ChainClass: 0 = public leaf+root, 1 = private leaf w/ public root,
	// 2 = private leaf+root.
	ChainClass int
	InCT       bool
}

// Figure6 produces the scatter points per vendor.
func (s *Server) Figure6() []Figure6Point {
	var out []Figure6Point
	for _, r := range s.Records {
		class := 0
		if !r.IssuerPublic {
			class = 2
			if r.Status == pki.StatusValid || r.Status == pki.StatusIncompleteChain {
				class = 1 // private leaf chaining to a public root
			}
		}
		for v := range r.Vendors {
			out = append(out, Figure6Point{
				Vendor:       v,
				ValidityDays: r.ValidityDays,
				ChainClass:   class,
				InCT:         r.InCT,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Vendor != out[j].Vendor {
			return out[i].Vendor < out[j].Vendor
		}
		return out[i].ValidityDays < out[j].ValidityDays
	})
	return out
}

// Table9Row groups Netflix-signed leaves by validity.
type Table9Row struct {
	LeafIssuer    string
	ValidityDays  []int
	TopmostIssuer string
	Certs         int
	InCT          bool
}

// Table9 reproduces the Netflix validity variance table.
func (s *Server) Table9() []Table9Row {
	type agg struct {
		days    map[int]bool
		certs   map[ctlog.Hash]bool
		inCT    bool
		topmost string
	}
	groups := map[string]*agg{} // "long" / "short"
	for _, r := range s.Records {
		if r.IssuerOrg != "Netflix" {
			continue
		}
		key := "short"
		if r.ValidityDays > 1000 {
			key = "long"
		}
		a := groups[key]
		if a == nil {
			a = &agg{days: map[int]bool{}, certs: map[ctlog.Hash]bool{}}
			groups[key] = a
		}
		a.days[r.ValidityDays] = true
		a.certs[r.LeafFP] = true
		a.inCT = a.inCT || r.InCT
		top := r.Chain.Certs[len(r.Chain.Certs)-1]
		a.topmost = pki.IssuerOrg(top)
	}
	var out []Table9Row
	for _, key := range []string{"long", "short"} {
		a := groups[key]
		if a == nil {
			continue
		}
		row := Table9Row{LeafIssuer: "Netflix", TopmostIssuer: a.topmost, Certs: len(a.certs), InCT: a.inCT}
		for d := range a.days {
			row.ValidityDays = append(row.ValidityDays, d)
		}
		sort.Ints(row.ValidityDays)
		out = append(out, row)
	}
	return out
}

// CTStats summarizes Section 5.4's CT findings.
type CTStats struct {
	// PublicLogged / PublicNotLogged: distinct public-CA leaves.
	PublicLogged, PublicNotLogged int
	// PrivateLogged / PrivateNotLogged: distinct private-CA leaves.
	PrivateLogged, PrivateNotLogged int
	// PublicMissIssuers lists issuers of unlogged public-CA leaves.
	PublicMissIssuers map[string]int
}

// CT computes the CT logging statistics.
func (s *Server) CT() CTStats {
	st := CTStats{PublicMissIssuers: map[string]int{}}
	seen := map[ctlog.Hash]bool{}
	for _, r := range s.Records {
		if seen[r.LeafFP] {
			continue
		}
		seen[r.LeafFP] = true
		switch {
		case r.IssuerPublic && r.InCT:
			st.PublicLogged++
		case r.IssuerPublic && !r.InCT:
			st.PublicNotLogged++
			st.PublicMissIssuers[r.IssuerOrg]++
		case !r.IssuerPublic && r.InCT:
			st.PrivateLogged++
		default:
			st.PrivateNotLogged++
		}
	}
	return st
}

// Table15Row is one popular SLD.
type Table15Row struct {
	SLD     string
	Servers int
	Devices int
}

// Table15 returns the topN SLDs by unique visiting devices.
func (s *Server) Table15(topN int) []Table15Row {
	type agg struct {
		servers int
		devices map[string]bool
	}
	slds := map[string]*agg{}
	for _, r := range s.Records {
		a := slds[r.SLD]
		if a == nil {
			a = &agg{devices: map[string]bool{}}
			slds[r.SLD] = a
		}
		a.servers++
		for d := range r.Devices {
			a.devices[d] = true
		}
	}
	out := make([]Table15Row, 0, len(slds))
	for sld, a := range slds {
		out = append(out, Table15Row{SLD: sld, Servers: a.servers, Devices: len(a.devices)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Devices != out[j].Devices {
			return out[i].Devices > out[j].Devices
		}
		return out[i].SLD < out[j].SLD
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// SLDStats summarizes the long-tail SLD distribution of Section 5.1.
type SLDStats struct {
	DistinctSLDs        int
	MeanDevicesPerSLD   float64
	MaxDevicesPerSLD    int
	MedianDevicesPerSLD int
}

// SLDs computes the SLD distribution statistics.
func (s *Server) SLDs() SLDStats {
	devices := map[string]map[string]bool{}
	for _, r := range s.Records {
		if devices[r.SLD] == nil {
			devices[r.SLD] = map[string]bool{}
		}
		for d := range r.Devices {
			devices[r.SLD][d] = true
		}
	}
	st := SLDStats{DistinctSLDs: len(devices)}
	if len(devices) == 0 {
		return st
	}
	counts := make([]int, 0, len(devices))
	sum := 0
	for _, set := range devices {
		counts = append(counts, len(set))
		sum += len(set)
		if len(set) > st.MaxDevicesPerSLD {
			st.MaxDevicesPerSLD = len(set)
		}
	}
	sort.Ints(counts)
	st.MeanDevicesPerSLD = float64(sum) / float64(len(counts))
	st.MedianDevicesPerSLD = counts[len(counts)/2]
	return st
}

// Table16 compares certificates across vantages.
type Table16 struct {
	// Extracted counts successful probes per vantage.
	Extracted map[simnet.Vantage]int
	// SharedAcrossAll counts SNIs presenting the identical leaf at every
	// vantage.
	SharedAcrossAll int
	// ExclusivePerVantage counts SNIs whose leaf at that vantage differs
	// from some other vantage's.
	ExclusivePerVantage map[simnet.Vantage]int
}

// vantages returns the run's vantage set (primary first), defaulting to
// the paper's three for Servers assembled before the set was recorded.
func (s *Server) vantages() []simnet.Vantage {
	if len(s.Vantages) > 0 {
		return s.Vantages
	}
	return simnet.Vantages()
}

// Table16 computes the geographic consistency comparison across the
// run's vantage set.
func (s *Server) Table16() Table16 {
	out := Table16{
		Extracted:           map[simnet.Vantage]int{},
		ExclusivePerVantage: map[simnet.Vantage]int{},
	}
	vantages := s.vantages()
	for v, m := range s.ByVantage {
		out.Extracted[v] = len(m)
	}
	// SNIs probed everywhere, anchored at the primary vantage.
	for sni, primaryLeaf := range s.ByVantage[vantages[0]] {
		same := true
		for _, v := range vantages[1:] {
			leaf, ok := s.ByVantage[v][sni]
			if !ok {
				same = false
				break
			}
			if !bytes.Equal(leaf, primaryLeaf) {
				same = false
			}
		}
		if same {
			out.SharedAcrossAll++
		}
	}
	for _, v := range vantages {
		for sni, leaf := range s.ByVantage[v] {
			exclusive := false
			for _, other := range vantages {
				if other == v {
					continue
				}
				oleaf, ok := s.ByVantage[other][sni]
				if ok && !bytes.Equal(leaf, oleaf) {
					exclusive = true
				}
			}
			if exclusive {
				out.ExclusivePerVantage[v]++
			}
		}
	}
	return out
}

// ExpiredDuringCapture returns domains whose certificates had already
// expired during the ClientHello capture window yet were still visited
// (the Table 8 narrative).
func (s *Server) ExpiredDuringCapture() []DomainRow {
	return s.domainRows(func(r *CertRecord) bool {
		return r.Status == pki.StatusExpired && r.Leaf.NotAfter.Before(s.World.CaptureEnd)
	})
}

// VendorsOfDataset counts vendors present in the visitation index.
func (s *Server) VendorsOfDataset() int {
	set := map[string]bool{}
	for _, d := range s.DS.Devices {
		set[d.Vendor] = true
	}
	return len(set)
}
