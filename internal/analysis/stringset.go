package analysis

import "sort"

// StringSet is a sorted, deduplicated set of strings. It replaces the
// map[string]bool sets the client aggregate used to carry: at paper
// scale those maps cost ~7k map headers per snapshot and a deep copy
// per Clone, while a sorted slice costs one allocation, shares safely
// between snapshots (sets are immutable once published — merges
// replace the slice, never mutate it), and iterates in deterministic
// order without a sort at every consumer.
type StringSet []string

// Has reports whether v is in the set.
func (s StringSet) Has(v string) bool {
	i := sort.SearchStrings(s, v)
	return i < len(s) && s[i] == v
}

// containsAll reports whether every element of b (sorted) is in a
// (sorted).
func containsAll(a, b StringSet) bool {
	i := 0
	for _, v := range b {
		for i < len(a) && a[i] < v {
			i++
		}
		if i >= len(a) || a[i] != v {
			return false
		}
	}
	return true
}

// unionSets returns the sorted union of two sets. It never mutates
// either input: when b adds nothing it returns a unchanged (safe even
// if a is shared with a published snapshot), otherwise it allocates a
// fresh slice. Union of sorted sets is itself sorted, so delta-merged
// state stays element-for-element identical to batch-built state.
func unionSets(a, b StringSet) StringSet {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	if containsAll(a, b) {
		return a
	}
	out := make(StringSet, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
