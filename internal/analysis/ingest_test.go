package analysis

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/libcorpus"
	"repro/internal/obs"
)

// setOf converts an unordered set to the sorted StringSet form the
// client aggregate carries.
func setOf(m map[string]bool) StringSet {
	out := make(StringSet, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// newClientReference is the seed's sequential, cache-free ingestion loop:
// every record is parsed individually into plain map sets, converted to
// the sorted-set form at the end. It is the oracle for the per-stack
// parse memoization, the sharded worker pool, and the symbol-space
// aggregation.
func newClientReference(t *testing.T, ds *dataset.Dataset) *Client {
	t.Helper()
	type rawInfo struct {
		print   fingerprint.Fingerprint
		devices map[string]bool
		vendors map[string]bool
		types   map[string]bool
		snis    map[string]bool
		records int
	}
	prints := map[string]*rawInfo{}
	devicePrints := map[string]map[string]bool{}
	sniDevices := map[string]map[string]bool{}
	c := newEmptyClient()
	c.DS = ds
	for _, d := range ds.Devices {
		c.DeviceVendor[d.ID] = d.Vendor
		c.DeviceType[d.ID] = d.Type
	}
	for i, r := range ds.Records.Rows() {
		ch, err := r.Hello()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		f := fingerprint.FromClientHello(ch)
		key := f.Key()
		info := prints[key]
		if info == nil {
			info = &rawInfo{
				print:   f,
				devices: map[string]bool{},
				vendors: map[string]bool{},
				types:   map[string]bool{},
				snis:    map[string]bool{},
			}
			prints[key] = info
		}
		info.devices[r.DeviceID] = true
		info.vendors[r.Vendor] = true
		info.types[r.Type] = true
		if r.SNI != "" {
			info.snis[r.SNI] = true
			if sniDevices[r.SNI] == nil {
				sniDevices[r.SNI] = map[string]bool{}
			}
			sniDevices[r.SNI][r.DeviceID] = true
		}
		info.records++
		if devicePrints[r.DeviceID] == nil {
			devicePrints[r.DeviceID] = map[string]bool{}
		}
		devicePrints[r.DeviceID][key] = true
		c.VersionCounts[f.Version]++
	}
	for key, info := range prints {
		c.Prints[key] = &FingerprintInfo{
			Print:   info.print,
			Key:     key,
			Devices: setOf(info.devices),
			Vendors: setOf(info.vendors),
			Types:   setOf(info.types),
			SNIs:    setOf(info.snis),
			Records: info.records,
		}
	}
	for dev, keys := range devicePrints {
		c.DevicePrints[dev] = setOf(keys)
	}
	for sni, devs := range sniDevices {
		c.SNIDevices[sni] = setOf(devs)
	}
	return c
}

// refCacheKey is the (StackID, SNI-presence) pair the parse memo keys
// on, in the seed's string form.
func refCacheKey(r dataset.Record) string {
	if r.SNI != "" {
		return r.StackID + "|s"
	}
	return r.StackID + "|"
}

// TestStackParseCacheInvariant verifies the dataset invariant the parse
// memoization depends on: every record with the same (StackID,
// SNI-presence) pair yields the same fingerprint.
func TestStackParseCacheInvariant(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 7, Scale: 0.5})
	seen := map[string]string{}
	for i, r := range ds.Records.Rows() {
		ch, err := r.Hello()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		key := fingerprint.FromClientHello(ch).Key()
		ck := refCacheKey(r)
		if prev, ok := seen[ck]; ok {
			if prev != key {
				t.Fatalf("record %d: cache key %q maps to two fingerprints:\n  %s\n  %s", i, ck, prev, key)
			}
			continue
		}
		seen[ck] = key
	}
}

// TestNewClientWorkersEquivalence checks that sharded, memoized,
// symbol-space ingestion reproduces the reference loop state exactly
// for several worker counts.
func TestNewClientWorkersEquivalence(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 11, Scale: 0.4})
	want := newClientReference(t, ds)
	for _, workers := range []int{1, 2, 4, 7, runtime.GOMAXPROCS(0)} {
		got, err := NewClientWorkers(ds, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Prints) != len(want.Prints) {
			t.Fatalf("workers=%d: %d prints, want %d", workers, len(got.Prints), len(want.Prints))
		}
		for key, w := range want.Prints {
			g := got.Prints[key]
			if g == nil {
				t.Fatalf("workers=%d: missing print %s", workers, key)
			}
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("workers=%d: print %s differs:\n got %+v\nwant %+v", workers, key, g, w)
			}
		}
		if !reflect.DeepEqual(got.DevicePrints, want.DevicePrints) {
			t.Fatalf("workers=%d: DevicePrints differ", workers)
		}
		if !reflect.DeepEqual(got.SNIDevices, want.SNIDevices) {
			t.Fatalf("workers=%d: SNIDevices differ", workers)
		}
		if !reflect.DeepEqual(got.VersionCounts, want.VersionCounts) {
			t.Fatalf("workers=%d: VersionCounts differ", workers)
		}
		if !reflect.DeepEqual(got.orderedKeys, want.orderedKeysForTest()) {
			t.Fatalf("workers=%d: orderedKeys differ", workers)
		}
	}
}

// TestIngestParsesOncePerKey pins the parse-once guarantee: the shared
// two-level memo parses each distinct (stack, SNI-presence) key exactly
// once per run, regardless of worker count — the ingest_parses_total
// counter equals the number of distinct keys, never the record count.
func TestIngestParsesOncePerKey(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 11, Scale: 0.4})
	distinct := map[string]bool{}
	for _, r := range ds.Records.Rows() {
		distinct[refCacheKey(r)] = true
	}
	var parsesPerWorkers []int64
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		m := obs.NewRegistry("test")
		if _, err := NewClientObserved(ds, workers, m); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		parses := m.Counter("ingest_parses_total").Value()
		if parses != int64(len(distinct)) {
			t.Fatalf("workers=%d: ingest_parses_total = %d, want %d (distinct parse keys)",
				workers, parses, len(distinct))
		}
		if parses >= int64(ds.Records.Len()) {
			t.Fatalf("workers=%d: parses (%d) not below record count (%d)",
				workers, parses, ds.Records.Len())
		}
		parsesPerWorkers = append(parsesPerWorkers, parses)
	}
	for _, p := range parsesPerWorkers[1:] {
		if p != parsesPerWorkers[0] {
			t.Fatalf("parse count varies with workers: %v", parsesPerWorkers)
		}
	}
}

// TestColumnarRowRoundTrip checks the columnar store against its
// row-shaped view on a seeded dataset: At(i) and Rows() agree with the
// column accessors field by field, and Slice covers the same records.
func TestColumnarRowRoundTrip(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 3, Scale: 0.3})
	recs := ds.Records
	tab := recs.Table()
	rows := recs.Rows()
	if len(rows) != recs.Len() {
		t.Fatalf("Rows() len = %d, want %d", len(rows), recs.Len())
	}
	for i, r := range rows {
		if got := recs.At(i); !reflect.DeepEqual(got, r) {
			t.Fatalf("At(%d) != Rows()[%d]:\n got %+v\nwant %+v", i, i, got, r)
		}
		if got := tab.Str(recs.DeviceSym(i)); got != r.DeviceID {
			t.Fatalf("record %d: DeviceSym -> %q, want %q", i, got, r.DeviceID)
		}
		if got := tab.Str(recs.StackSym(i)); got != r.StackID {
			t.Fatalf("record %d: StackSym -> %q, want %q", i, got, r.StackID)
		}
		if got := tab.Str(recs.SNISym(i)); got != r.SNI {
			t.Fatalf("record %d: SNISym -> %q, want %q", i, got, r.SNI)
		}
		if (recs.SNISym(i) == 0) != (r.SNI == "") {
			t.Fatalf("record %d: SNISym zero-iff-empty violated", i)
		}
		if got := recs.TimeNS(i); got != r.Time.UnixNano() {
			t.Fatalf("record %d: TimeNS = %d, want %d", i, got, r.Time.UnixNano())
		}
		if !reflect.DeepEqual(recs.Raw(i), r.Raw) {
			t.Fatalf("record %d: Raw mismatch", i)
		}
	}
	// A round-trip through rows and back into a fresh columnar store
	// must reproduce every record.
	back := dataset.RecordsFromRows(rows)
	for i := range rows {
		if !reflect.DeepEqual(back.At(i), rows[i]) {
			t.Fatalf("row->columns->row mismatch at %d", i)
		}
	}
	// Slicing is positional.
	if recs.Len() >= 10 {
		sub := recs.Slice(3, 10)
		for i := 0; i < sub.Len(); i++ {
			if !reflect.DeepEqual(sub.At(i), recs.At(3+i)) {
				t.Fatalf("Slice(3,10).At(%d) != At(%d)", i, 3+i)
			}
		}
	}
}

// orderedKeysForTest computes the sorted key list the reference client
// never built.
func (c *Client) orderedKeysForTest() []string {
	if c.orderedKeys != nil {
		return c.orderedKeys
	}
	out := make([]string, 0, len(c.Prints))
	for k := range c.Prints {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func BenchmarkNewClientIngestion(b *testing.B) {
	ds := dataset.Generate(dataset.DefaultConfig())
	b.Run("workers=1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewClientWorkers(ds, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers=max", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewClientWorkers(ds, runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchMatcher() *fingerprint.Matcher { return libcorpus.NewMatcher() }

func BenchmarkMatchSemanticsCorpus(b *testing.B) {
	ds := dataset.Generate(dataset.Config{Seed: 11, Scale: 0.4})
	c, err := NewClient(ds)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := benchMatcher()
			for _, suites := range c.deviceSuiteTuples() {
				m.MatchSemantics(suites)
			}
		}
	})
	b.Run("memoized", func(b *testing.B) {
		m := benchMatcher()
		for _, suites := range c.deviceSuiteTuples() {
			m.MatchSemantics(suites)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, suites := range c.deviceSuiteTuples() {
				m.MatchSemantics(suites)
			}
		}
	})
}
