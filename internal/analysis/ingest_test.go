package analysis

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/libcorpus"
	"repro/internal/tlswire"
)

// newClientReference is the seed's sequential, cache-free ingestion loop:
// every record is parsed individually. It is the oracle for both the
// per-stack parse memoization and the sharded worker pool.
func newClientReference(t *testing.T, ds *dataset.Dataset) *Client {
	t.Helper()
	c := &Client{
		DS:            ds,
		Prints:        map[string]*FingerprintInfo{},
		DevicePrints:  map[string]map[string]bool{},
		DeviceVendor:  map[string]string{},
		DeviceType:    map[string]string{},
		VersionCounts: map[tlswire.Version]int{},
		SNIDevices:    map[string]map[string]bool{},
	}
	for _, d := range ds.Devices {
		c.DeviceVendor[d.ID] = d.Vendor
		c.DeviceType[d.ID] = d.Type
	}
	for i, r := range ds.Records {
		ch, err := r.Hello()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		f := fingerprint.FromClientHello(ch)
		key := f.Key()
		info := c.Prints[key]
		if info == nil {
			info = &FingerprintInfo{
				Print:   f,
				Key:     key,
				Devices: map[string]bool{},
				Vendors: map[string]bool{},
				Types:   map[string]bool{},
				SNIs:    map[string]bool{},
			}
			c.Prints[key] = info
		}
		info.Devices[r.DeviceID] = true
		info.Vendors[r.Vendor] = true
		info.Types[r.Type] = true
		if r.SNI != "" {
			info.SNIs[r.SNI] = true
			if c.SNIDevices[r.SNI] == nil {
				c.SNIDevices[r.SNI] = map[string]bool{}
			}
			c.SNIDevices[r.SNI][r.DeviceID] = true
		}
		info.Records++
		if c.DevicePrints[r.DeviceID] == nil {
			c.DevicePrints[r.DeviceID] = map[string]bool{}
		}
		c.DevicePrints[r.DeviceID][key] = true
		c.VersionCounts[f.Version]++
	}
	return c
}

// TestStackParseCacheInvariant verifies the dataset invariant the parse
// memoization depends on: every record with the same (StackID,
// SNI-presence) pair yields the same fingerprint.
func TestStackParseCacheInvariant(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 7, Scale: 0.5})
	seen := map[string]string{}
	for i, r := range ds.Records {
		ch, err := r.Hello()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		key := fingerprint.FromClientHello(ch).Key()
		ck := printCacheKey(r)
		if prev, ok := seen[ck]; ok {
			if prev != key {
				t.Fatalf("record %d: cache key %q maps to two fingerprints:\n  %s\n  %s", i, ck, prev, key)
			}
			continue
		}
		seen[ck] = key
	}
}

// TestNewClientWorkersEquivalence checks that sharded, memoized ingestion
// reproduces the reference loop state exactly for several worker counts.
func TestNewClientWorkersEquivalence(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Seed: 11, Scale: 0.4})
	want := newClientReference(t, ds)
	for _, workers := range []int{1, 2, 4, 7, runtime.GOMAXPROCS(0)} {
		got, err := NewClientWorkers(ds, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Prints) != len(want.Prints) {
			t.Fatalf("workers=%d: %d prints, want %d", workers, len(got.Prints), len(want.Prints))
		}
		for key, w := range want.Prints {
			g := got.Prints[key]
			if g == nil {
				t.Fatalf("workers=%d: missing print %s", workers, key)
			}
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("workers=%d: print %s differs:\n got %+v\nwant %+v", workers, key, g, w)
			}
		}
		if !reflect.DeepEqual(got.DevicePrints, want.DevicePrints) {
			t.Fatalf("workers=%d: DevicePrints differ", workers)
		}
		if !reflect.DeepEqual(got.SNIDevices, want.SNIDevices) {
			t.Fatalf("workers=%d: SNIDevices differ", workers)
		}
		if !reflect.DeepEqual(got.VersionCounts, want.VersionCounts) {
			t.Fatalf("workers=%d: VersionCounts differ", workers)
		}
		if !reflect.DeepEqual(got.orderedKeys, want.orderedKeysForTest()) {
			t.Fatalf("workers=%d: orderedKeys differ", workers)
		}
	}
}

// orderedKeysForTest computes the sorted key list the reference client
// never built.
func (c *Client) orderedKeysForTest() []string {
	if c.orderedKeys != nil {
		return c.orderedKeys
	}
	out := make([]string, 0, len(c.Prints))
	for k := range c.Prints {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func BenchmarkNewClientIngestion(b *testing.B) {
	ds := dataset.Generate(dataset.DefaultConfig())
	b.Run("workers=1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewClientWorkers(ds, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers=max", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewClientWorkers(ds, runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchMatcher() *fingerprint.Matcher { return libcorpus.NewMatcher() }

func BenchmarkMatchSemanticsCorpus(b *testing.B) {
	ds := dataset.Generate(dataset.Config{Seed: 11, Scale: 0.4})
	c, err := NewClient(ds)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := benchMatcher()
			for _, suites := range c.deviceSuiteTuples() {
				m.MatchSemantics(suites)
			}
		}
	})
	b.Run("memoized", func(b *testing.B) {
		m := benchMatcher()
		for _, suites := range c.deviceSuiteTuples() {
			m.MatchSemantics(suites)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, suites := range c.deviceSuiteTuples() {
				m.MatchSemantics(suites)
			}
		}
	})
}
