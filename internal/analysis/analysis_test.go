package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ciphersuite"
	"repro/internal/dataset"
	"repro/internal/fingerprint"
	"repro/internal/graph"
	"repro/internal/libcorpus"
	"repro/internal/pki"
	"repro/internal/simnet"
	"repro/internal/tlswire"
)

// Shared fixtures: a paper-scale dataset + client analysis, and a smaller
// probed world, cached across tests.
var (
	paperDS     *dataset.Dataset
	paperClient *Client
	smallSrv    *Server
)

func client(t testing.TB) *Client {
	t.Helper()
	if paperClient == nil {
		paperDS = dataset.Generate(dataset.DefaultConfig())
		c, err := NewClient(paperDS)
		if err != nil {
			t.Fatal(err)
		}
		paperClient = c
	}
	return paperClient
}

func server(t testing.TB) *Server {
	t.Helper()
	if smallSrv == nil {
		ds := dataset.Generate(dataset.Config{Seed: 41, Scale: 0.35})
		snis := ds.SNIsByMinUsers(2)
		w := simnet.Build(simnet.Config{Seed: 2, SNIs: snis})
		smallSrv = NewServer(w, ds, snis, false)
	}
	return smallSrv
}

func TestClientFingerprintCount(t *testing.T) {
	c := client(t)
	if n := c.NumFingerprints(); n < 400 || n > 1600 {
		t.Errorf("fingerprints %d, want order of the paper's 903", n)
	}
}

func TestTable2Shape(t *testing.T) {
	c := client(t)
	d := c.Table2()
	// Paper: 77.47% / 11.43% / 8.32% / 2.78%.
	if d.Deg1 < 0.55 || d.Deg1 > 0.95 {
		t.Errorf("degree-1 share %.3f, want ~0.77", d.Deg1)
	}
	// Single-vendor fingerprints dominate; every other bucket is small.
	for name, v := range map[string]float64{"deg2": d.Deg2, "deg3-5": d.Deg3to5, "deg>5": d.DegOver5} {
		if v >= d.Deg1 {
			t.Errorf("%s (%.3f) should be far below deg1 (%.3f)", name, v, d.Deg1)
		}
		if v > 0.25 {
			t.Errorf("%s share %.3f too large", name, v)
		}
	}
	if d.Deg2 == 0 {
		t.Error("no degree-2 fingerprints (vendor pairs should share some)")
	}
	sum := d.Deg1 + d.Deg2 + d.Deg3to5 + d.DegOver5
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
}

func TestFigure2DoCShape(t *testing.T) {
	c := client(t)
	vendorDoC := c.DoCVendorAll()
	if len(vendorDoC) != 65 {
		t.Fatalf("vendors %d", len(vendorDoC))
	}
	withUnique := 0
	above05 := 0
	var values []float64
	for _, v := range vendorDoC {
		values = append(values, v)
		if v > 0 {
			withUnique++
		}
		if v > 0.5 {
			above05++
		}
	}
	// Paper: >70% of vendors have at least one unique fingerprint; ~40%
	// have DoC_vendor > 0.5.
	if frac := float64(withUnique) / 65; frac < 0.6 {
		t.Errorf("vendors with unique fingerprints %.2f, want > 0.7", frac)
	}
	if frac := float64(above05) / 65; frac < 0.2 || frac > 0.8 {
		t.Errorf("vendors with DoC>0.5: %.2f, want ~0.4", frac)
	}
	xs, ys := graph.CDF(values)
	if len(xs) != 65 || ys[64] != 1 {
		t.Fatal("CDF malformed")
	}

	deviceDoC := c.DoCDeviceAll()
	fullyDisjoint := 0
	for _, v := range deviceDoC {
		if v >= 0.999 {
			fullyDisjoint++
		}
	}
	// Paper: ~20% of vendors have DoC_device = 1.
	if fullyDisjoint == 0 {
		t.Error("no vendor with fully disjoint per-device fingerprints")
	}
}

func TestTable3TopVendors(t *testing.T) {
	c := client(t)
	rows := c.Table3(10)
	if len(rows) != 10 {
		t.Fatalf("rows %d", len(rows))
	}
	// Amazon and Google lead the fingerprint counts (Table 3's top two).
	top2 := map[string]bool{rows[0].Vendor: true, rows[1].Vendor: true}
	if !top2["Amazon"] || !top2["Google"] {
		t.Errorf("top vendors %s/%s, want Amazon and Google", rows[0].Vendor, rows[1].Vendor)
	}
	for _, r := range rows {
		if r.UsedBySingleDev < 0.2 {
			t.Errorf("%s: single-device share %.2f suspiciously low", r.Vendor, r.UsedBySingleDev)
		}
		if r.SharedBy10Plus > 0.5 {
			t.Errorf("%s: 10+-device share %.2f too high", r.Vendor, r.SharedBy10Plus)
		}
	}
}

func TestTable4KnownPairs(t *testing.T) {
	c := client(t)
	pairs := c.Table4(0.2)
	if len(pairs) == 0 {
		t.Fatal("no similar vendor pairs")
	}
	find := func(a, b string) (float64, bool) {
		for _, p := range pairs {
			if (p.A == a && p.B == b) || (p.A == b && p.B == a) {
				return p.Similarity, true
			}
		}
		return 0, false
	}
	// HDHomeRun/SiliconDust share the identical stack pool.
	if sim, ok := find("HDHomeRun", "SiliconDust"); !ok || sim < 0.8 {
		t.Errorf("HDHomeRun/SiliconDust similarity %v (found=%v), want ~1", sim, ok)
	}
	// Roku-platform TV brands overlap.
	if _, ok := find("Sharp", "TCL"); !ok {
		t.Error("Sharp/TCL pair missing")
	}
	if _, ok := find("Arlo", "NETGEAR"); !ok {
		t.Error("Arlo/NETGEAR pair missing")
	}
}

func TestTable5ServerTied(t *testing.T) {
	c := client(t)
	rows := c.Table5(2)
	if len(rows) < 5 {
		t.Fatalf("only %d server-tied rows", len(rows))
	}
	slds := map[string]bool{}
	multiVendor := 0
	for _, r := range rows {
		slds[r.SLD] = true
		if len(r.Vendors) >= 2 {
			multiVendor++
		}
	}
	for _, want := range []string{"sonos.com", "roku.com"} {
		if !slds[want] {
			t.Errorf("expected SLD %s in Table 5", want)
		}
	}
	if multiVendor != len(rows) {
		t.Error("Table 5 must only contain multi-vendor rows")
	}
	// mgo-images.com carries the RC/3DES-vulnerable SDK fingerprint.
	for _, r := range rows {
		if r.SLD == "mgo-images.com" && len(r.VulnLabels) == 0 {
			t.Error("mgo-images.com row should carry vulnerability labels")
		}
	}
}

func TestServerTiedFraction(t *testing.T) {
	c := client(t)
	matcher := libcorpus.NewMatcher()
	frac := c.ServerTiedSNIFraction(matcher)
	// Paper: 17.42% of SNIs.
	if frac <= 0 || frac > 0.8 {
		t.Errorf("server-tied SNI fraction %.3f, want ~0.17", frac)
	}
}

func TestVulnerabilityStats(t *testing.T) {
	c := client(t)
	st := c.Vulnerabilities()
	ratio := float64(st.WithVulnerable) / float64(st.TotalFingerprints)
	if ratio < 0.25 || ratio > 0.75 {
		t.Errorf("vulnerable share %.2f, want ~0.45", ratio)
	}
	if st.ByClass[ciphersuite.Vuln3DES] == 0 {
		t.Error("no 3DES fingerprints")
	}
	// 3DES must be the most common vulnerable component (paper: 41.64%).
	for cl, n := range st.ByClass {
		if n > st.ByClass[ciphersuite.Vuln3DES] {
			t.Errorf("%v (%d) exceeds 3DES (%d)", cl, n, st.ByClass[ciphersuite.Vuln3DES])
		}
	}
	if len(st.AwfulVendors) < 8 {
		t.Errorf("awful vendors %d, want ~14", len(st.AwfulVendors))
	}
	found := map[string]bool{}
	for _, v := range st.AwfulVendors {
		found[v] = true
	}
	if !found["Synology"] {
		t.Error("Synology missing from awful vendors")
	}
}

func TestLibraryMatching(t *testing.T) {
	c := client(t)
	res := c.MatchLibraries(libcorpus.NewMatcher())
	if res.MatchedFingerprints < 3 {
		t.Errorf("matched %d fingerprints, want a handful (paper: 23)", res.MatchedFingerprints)
	}
	if res.MatchRate() > 0.10 {
		t.Errorf("match rate %.3f, want ~0.0255", res.MatchRate())
	}
	if len(res.MatchedLibraries) == 0 {
		t.Fatal("no matched libraries")
	}
	if res.UnsupportedLibraries == 0 {
		t.Error("expected mostly unsupported matched libraries")
	}
	if res.PerFamily["curl+OpenSSL"] == 0 {
		t.Error("expected curl+OpenSSL matches")
	}
}

func TestTable11Semantics(t *testing.T) {
	c := client(t)
	rows := c.Table11(libcorpus.NewMatcher())
	if len(rows) != 5 {
		t.Fatalf("rows %d", len(rows))
	}
	total := 0.0
	byCat := map[fingerprint.MatchCategory]Table11Row{}
	for _, r := range rows {
		total += r.PercentTotal
		byCat[r.Category] = r
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("percentages sum to %.3f", total)
	}
	// Customization + SimilarComponent dominate (paper: 46.6% + 35.8%).
	dominant := byCat[fingerprint.Customization].PercentTotal + byCat[fingerprint.SimilarComponent].PercentTotal
	if dominant < 0.5 {
		t.Errorf("customization+similar share %.2f, want > 0.5", dominant)
	}
}

func TestFigure8(t *testing.T) {
	c := client(t)
	buckets := c.Figure8(libcorpus.NewMatcher(), 10)
	if len(buckets) != 10 {
		t.Fatalf("buckets %d", len(buckets))
	}
	n := 0
	for _, b := range buckets {
		n += b.SameComp + b.SimComp
	}
	if n == 0 {
		t.Fatal("no tuples in same/similar component categories")
	}
}

func TestTable12Versions(t *testing.T) {
	c := client(t)
	counts := c.Table12()
	if counts[tlswire.VersionTLS13] != 0 {
		t.Error("TLS 1.3 observed; paper saw none")
	}
	if counts[tlswire.VersionTLS12] == 0 {
		t.Fatal("no TLS 1.2")
	}
	if counts[tlswire.VersionTLS12] < counts[tlswire.VersionTLS10] {
		t.Error("TLS 1.2 should dominate TLS 1.0")
	}
	if counts[tlswire.VersionSSL30] == 0 {
		t.Error("expected SSL 3.0 stragglers")
	}
	devices, vendors := c.SSL3Census()
	if devices == 0 || len(vendors) == 0 {
		t.Fatal("SSL3 census empty")
	}
	if vendors["Amazon"] == 0 {
		t.Error("Amazon missing from SSL3 census")
	}
}

func TestFigure9And11And12(t *testing.T) {
	c := client(t)
	f9 := c.Figure9()
	if len(f9) != 65 {
		t.Fatalf("figure 9 vendors %d", len(f9))
	}
	f11 := c.Figure11()
	clean := 0
	firstPreferred := 0
	for _, r := range f11 {
		if len(r.Indices) == 0 {
			clean++
		}
		if r.FirstPreferred > 0 {
			firstPreferred++
		}
	}
	// Paper: devices of 7 vendors never propose vulnerable suites; at
	// least one device of 13 vendors proposes one first.
	if clean == 0 {
		t.Error("no clean vendors in figure 11")
	}
	if firstPreferred == 0 {
		t.Error("no vendor proposes a vulnerable suite first")
	}
	f12 := c.Figure12()
	var belkin *Figure12Row
	for i := range f12 {
		if f12[i].Vendor == "Belkin" {
			belkin = &f12[i]
		}
	}
	if belkin == nil {
		t.Fatal("Belkin missing from figure 12")
	}
	if belkin.Cipher["RC4_128"] == 0 {
		t.Error("Belkin should prefer RC4_128 first")
	}
}

func TestCensus(t *testing.T) {
	c := client(t)
	census := c.Census()
	if census.OCSPDevices == 0 || census.OCSPVendors == 0 {
		t.Error("no OCSP devices")
	}
	if census.GREASESuiteDevices < 100 {
		t.Errorf("GREASE suite devices %d, want hundreds", census.GREASESuiteDevices)
	}
	if census.GREASEExtDevices < 100 {
		t.Errorf("GREASE ext devices %d", census.GREASEExtDevices)
	}
}

func TestGraphExports(t *testing.T) {
	c := client(t)
	g := c.VendorGraph()
	dot := g.Dot(graph.DotOptions{
		Name: "figure1",
		RightColor: func(key string) string {
			switch c.Prints[key].Print.Level() {
			case ciphersuite.Vulnerable:
				return "#d62728"
			case ciphersuite.Suboptimal:
				return "#aec7e8"
			default:
				return "#4878cf"
			}
		},
	})
	if !strings.Contains(dot, "figure1") || !strings.Contains(dot, "#d62728") {
		t.Error("figure 1 DOT incomplete")
	}
	amazonTypes := c.TypeGraphForVendor("Amazon")
	if amazonTypes.NumLefts() < 3 {
		t.Errorf("amazon device types %d", amazonTypes.NumLefts())
	}
	echo := c.DeviceGraphForVendorType("Amazon", dataset.TypeSpeaker)
	if echo.NumLefts() == 0 || echo.NumRights() == 0 {
		t.Error("echo graph empty")
	}
}

// ---- server side ----

func TestTable6(t *testing.T) {
	s := server(t)
	t6 := s.Table6()
	if t6.Servers == 0 || t6.LeafCerts == 0 {
		t.Fatalf("empty cert dataset: %+v", t6)
	}
	if t6.LeafCerts > t6.Servers {
		t.Errorf("more leaves (%d) than servers (%d)", t6.LeafCerts, t6.Servers)
	}
	if t6.IssuerOrgs < 10 {
		t.Errorf("issuer orgs %d, want tens (paper: 33)", t6.IssuerOrgs)
	}
}

func TestSharing(t *testing.T) {
	s := server(t)
	sh := s.Sharing()
	if sh.ServersPerCertMean < 1 {
		t.Errorf("servers per cert mean %.2f", sh.ServersPerCertMean)
	}
	if sh.ServersPerCertMax < 2 {
		t.Errorf("max servers per cert %d, want sharing", sh.ServersPerCertMax)
	}
	if sh.MultiIPFraction <= 0.2 {
		t.Errorf("multi-IP fraction %.2f, want ~0.65", sh.MultiIPFraction)
	}
}

func TestFigure5(t *testing.T) {
	s := server(t)
	cells := s.Figure5()
	if len(cells) == 0 {
		t.Fatal("empty issuer matrix")
	}
	sums := map[string]float64{}
	digicert := 0.0
	totalRatio := 0.0
	for _, c := range cells {
		sums[c.Vendor] += c.Ratio
		totalRatio += c.Ratio
		if c.Issuer == "DigiCert" {
			digicert += c.Ratio
		}
	}
	for v, sum := range sums {
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("vendor %s ratios sum to %.3f", v, sum)
		}
	}
	if digicert == 0 {
		t.Error("DigiCert absent from the matrix")
	}
}

func TestPrivateLeafFraction(t *testing.T) {
	s := server(t)
	frac, devices := s.PrivateLeafFraction()
	// Paper: 9.86% of leaves, 391 devices.
	if frac < 0.02 || frac > 0.40 {
		t.Errorf("private leaf fraction %.3f, want ~0.10", frac)
	}
	if devices == 0 {
		t.Error("no devices behind private leaves")
	}
	only := s.VendorsOnlyPrivate()
	found := map[string]bool{}
	for _, v := range only {
		found[v] = true
	}
	for _, want := range []string{"Canary", "Tuya", "Obihai"} {
		if !found[want] {
			t.Errorf("%s should be private-only (got %v)", want, only)
		}
	}
}

func TestTable7And14(t *testing.T) {
	s := server(t)
	t7 := s.Table7()
	if len(t7) == 0 {
		t.Fatal("no validation failures")
	}
	slds := map[string]bool{}
	for _, r := range t7 {
		slds[r.SLD] = true
	}
	for _, want := range []string{"roku.com", "netflix.com"} {
		if !slds[want] {
			t.Errorf("%s missing from Table 7", want)
		}
	}
	t14 := s.Table14()
	if len(t14) == 0 {
		t.Fatal("no private-issuer chains")
	}
}

func TestTable8Expired(t *testing.T) {
	s := server(t)
	rows := s.Table8()
	slds := map[string]string{}
	for _, r := range rows {
		slds[r.SLD] = r.IssuerOrg
	}
	if org, ok := slds["skyegloup.com"]; ok && org != "Gandi" {
		t.Errorf("skyegloup.com issuer %s, want Gandi", org)
	}
	if org, ok := slds["wink.com"]; ok && org != "COMODO" {
		t.Errorf("wink.com issuer %s, want COMODO", org)
	}
	if len(rows) == 0 {
		t.Error("no expired certificates in world")
	}
	// They were already expired during the capture window.
	during := s.ExpiredDuringCapture()
	if len(during) == 0 {
		t.Error("expired-during-capture set empty")
	}
}

func TestCNMismatch(t *testing.T) {
	s := server(t)
	rows := s.CNMismatches()
	foundTuya := false
	for _, r := range rows {
		if r.SLD == "tuyaus.com" {
			foundTuya = true
		}
	}
	if !foundTuya {
		t.Error("a2.tuyaus.com CN mismatch not detected")
	}
}

func TestFigure6AndValidity(t *testing.T) {
	s := server(t)
	points := s.Figure6()
	if len(points) == 0 {
		t.Fatal("no figure 6 points")
	}
	for _, p := range points {
		if p.ChainClass == 0 && p.ValidityDays > 1000 {
			// public leafs under 1000 days, except the expired legacy ones
			if p.ValidityDays > 1100 {
				t.Errorf("public-chain cert with %d-day validity for %s", p.ValidityDays, p.Vendor)
			}
		}
		if p.ChainClass == 2 && p.InCT {
			t.Errorf("private chain logged in CT (%s)", p.Vendor)
		}
	}
}

func TestTable9Netflix(t *testing.T) {
	s := server(t)
	rows := s.Table9()
	if len(rows) == 0 {
		t.Skip("no netflix servers in this scaled world")
	}
	for _, r := range rows {
		if r.InCT {
			t.Error("Netflix-signed leaves must not be in CT")
		}
	}
	// Expect both the long (8150) and short modes at full scale; at
	// reduced scale at least one mode must be present.
	hasLong := false
	for _, r := range rows {
		for _, d := range r.ValidityDays {
			if d > 7000 {
				hasLong = true
			}
		}
	}
	if len(rows) == 2 && !hasLong {
		t.Error("long-lived Netflix chain missing")
	}
}

func TestCTStats(t *testing.T) {
	s := server(t)
	ct := s.CT()
	if ct.PrivateLogged != 0 {
		t.Errorf("%d private-CA leaves logged in CT, want 0", ct.PrivateLogged)
	}
	if ct.PublicLogged == 0 {
		t.Error("no public leaves logged")
	}
	if ct.PrivateNotLogged == 0 {
		t.Error("no private leaves at all")
	}
	// Most public leaves should be logged.
	if ct.PublicNotLogged > ct.PublicLogged {
		t.Errorf("unlogged public (%d) exceeds logged (%d)", ct.PublicNotLogged, ct.PublicLogged)
	}
}

func TestTable15And16(t *testing.T) {
	s := server(t)
	top := s.Table15(30)
	if len(top) == 0 {
		t.Fatal("no SLDs")
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Devices < top[i].Devices {
			t.Fatal("table 15 not sorted")
		}
	}
	stats := s.SLDs()
	if stats.DistinctSLDs < 30 {
		t.Errorf("distinct SLDs %d", stats.DistinctSLDs)
	}
	if stats.MaxDevicesPerSLD < stats.MedianDevicesPerSLD {
		t.Error("SLD stats inconsistent")
	}

	t16 := s.Table16()
	ny := t16.Extracted[simnet.VantageNewYork]
	if ny == 0 {
		t.Fatal("no NY extractions")
	}
	if t16.SharedAcrossAll == 0 {
		t.Error("no SNIs consistent across vantages")
	}
	if t16.SharedAcrossAll > ny {
		t.Error("shared exceeds extracted")
	}
	// Overall consistency: most SNIs present the same cert everywhere.
	if float64(t16.SharedAcrossAll)/float64(ny) < 0.7 {
		t.Errorf("cross-vantage consistency %.2f too low", float64(t16.SharedAcrossAll)/float64(ny))
	}
}

func TestUnreachableSNIs(t *testing.T) {
	s := server(t)
	if len(s.UnreachableSNIs) == 0 {
		t.Error("expected some unreachable SNIs (the paper lost 43)")
	}
	if len(s.Records)+len(s.UnreachableSNIs) > len(s.ProbedSNIs) {
		t.Error("records + unreachable exceed probed set")
	}
}

func TestChainStatusDistribution(t *testing.T) {
	s := server(t)
	counts := map[pki.ChainStatus]int{}
	for _, r := range s.Records {
		counts[r.Status]++
	}
	if counts[pki.StatusValid] == 0 {
		t.Error("no valid chains")
	}
	// Valid should dominate (most leaves are public-CA signed).
	total := len(s.Records)
	if float64(counts[pki.StatusValid])/float64(total) < 0.4 {
		t.Errorf("valid share %.2f too low: %v", float64(counts[pki.StatusValid])/float64(total), counts)
	}
}

func BenchmarkNewClient(b *testing.B) {
	ds := dataset.Generate(dataset.Config{Seed: 1, Scale: 0.2})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewClient(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	c := client(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Table5(2)
	}
}
