package analysis

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/tlswire"
)

// This file is the incremental half of the client analysis: the batch
// path shards a full dataset and merges once in symbol space, while a
// resident service parses record batches into Deltas as they arrive
// and folds each into a long-lived Client. A Delta decodes its batch
// straight into a per-batch columnar store with its own intern table,
// runs the same clientShard ingest, and finalizes into string form;
// MergeDelta then unions sorted StringSets — and a union of sorted
// sets is itself sorted, so a Client grown delta-by-delta is identical
// to one built by NewClient over the union of the records. That is the
// equivalence the service's drain invariant relies on.

// Delta is the parsed, aggregated form of one record batch, ready to
// merge into a Client. A Delta is single-use: merging moves its
// internal state into the Client.
type Delta struct {
	frag    *Client
	records int64
}

// Records reports how many records the delta aggregates.
func (d *Delta) Records() int64 { return d.records }

// NewClientEmpty builds a Client with no observations, the zero state a
// resident service grows by merging deltas. DS stays nil — every
// client-side table derives from the merged observations alone.
func NewClientEmpty() *Client {
	return newEmptyClient()
}

// NewDelta parses one record batch into a mergeable Delta. The batch
// decodes straight into a columnar store (fresh intern table, one
// contiguous raw buffer) before ingestion. A record whose wire bytes
// fail to parse poisons the whole batch: the error names the offending
// index and the caller quarantines the batch rather than merging a
// partial aggregate.
func NewDelta(records []dataset.Record) (*Delta, error) {
	recs := dataset.RecordsFromRows(records)
	cx := newIngestCtx(recs.Table())
	var shard clientShard
	shard.init(cx)
	shard.ingest(recs, 0)
	if shard.err != nil {
		return nil, fmt.Errorf("analysis: record %d: %w", shard.errIdx, shard.err)
	}
	d := &Delta{frag: newEmptyClient(), records: shard.records}
	shard.finalize(d.frag)
	d.frag.rebuildOrderedKeys()
	for _, r := range records {
		d.frag.DeviceVendor[r.DeviceID] = r.Vendor
		d.frag.DeviceType[r.DeviceID] = r.Type
	}
	return d, nil
}

// MergeDelta folds a delta into the client. The merge is commutative
// and associative (sorted-set unions and count additions), so any
// arrival order of the same deltas yields the same Client. The delta
// must not be reused afterwards. Unions never mutate an existing set
// in place — they either keep it or replace it with a fresh slice —
// so snapshots published by Clone stay immutable while the original
// keeps merging. orderedKeys is rebuilt eagerly so table methods stay
// read-only.
func (c *Client) MergeDelta(d *Delta) {
	f := d.frag
	for key, part := range f.Prints {
		info := c.Prints[key]
		if info == nil {
			c.Prints[key] = part
			continue
		}
		info.Devices = unionSets(info.Devices, part.Devices)
		info.Vendors = unionSets(info.Vendors, part.Vendors)
		info.Types = unionSets(info.Types, part.Types)
		info.SNIs = unionSets(info.SNIs, part.SNIs)
		info.Records += part.Records
	}
	for dev, keys := range f.DevicePrints {
		c.DevicePrints[dev] = unionSets(c.DevicePrints[dev], keys)
	}
	for sni, devs := range f.SNIDevices {
		c.SNIDevices[sni] = unionSets(c.SNIDevices[sni], devs)
	}
	for v, n := range f.VersionCounts {
		c.VersionCounts[v] += n
	}
	for id, v := range f.DeviceVendor {
		c.DeviceVendor[id] = v
	}
	for id, t := range f.DeviceType {
		c.DeviceType[id] = t
	}
	c.rebuildOrderedKeys()
}

// Clone copies the client's aggregate state so the copy can be
// published as an immutable snapshot while the original keeps merging
// deltas. StringSets and fingerprint tuples are shared, not deep-
// copied: merging replaces sets rather than mutating them, so a
// snapshot's slices never change underneath a reader — and a clone
// costs one FingerprintInfo struct plus map headers instead of
// re-copying every element.
func (c *Client) Clone() *Client {
	out := &Client{
		DS:            c.DS,
		Prints:        make(map[string]*FingerprintInfo, len(c.Prints)),
		DevicePrints:  make(map[string]StringSet, len(c.DevicePrints)),
		DeviceVendor:  make(map[string]string, len(c.DeviceVendor)),
		DeviceType:    make(map[string]string, len(c.DeviceType)),
		VersionCounts: make(map[tlswire.Version]int, len(c.VersionCounts)),
		SNIDevices:    make(map[string]StringSet, len(c.SNIDevices)),
		orderedKeys:   append([]string(nil), c.orderedKeys...),
	}
	for key, info := range c.Prints {
		cp := *info
		out.Prints[key] = &cp
	}
	for dev, keys := range c.DevicePrints {
		out.DevicePrints[dev] = keys
	}
	for id, v := range c.DeviceVendor {
		out.DeviceVendor[id] = v
	}
	for id, t := range c.DeviceType {
		out.DeviceType[id] = t
	}
	for v, n := range c.VersionCounts {
		out.VersionCounts[v] = n
	}
	for sni, devs := range c.SNIDevices {
		out.SNIDevices[sni] = devs
	}
	return out
}
