package analysis

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/tlswire"
)

// This file is the incremental half of the client analysis: the batch
// path shards a full dataset and merges once, while a resident service
// parses record batches into Deltas as they arrive and folds each into
// a long-lived Client. Both paths go through the same clientShard
// ingest and merge code, so a Client grown delta-by-delta is identical
// to one built by NewClient over the union of the records — the
// equivalence the service's drain invariant relies on.

// Delta is the parsed, aggregated form of one record batch, ready to
// merge into a Client. A Delta is single-use: merging moves its
// internal maps into the Client.
type Delta struct {
	shard clientShard
	// deviceVendor / deviceType carry the identity metadata the batch
	// path reads from dataset.Device; the delta path reads it from the
	// records themselves.
	deviceVendor map[string]string
	deviceType   map[string]string
}

// Records reports how many records the delta aggregates.
func (d *Delta) Records() int64 { return d.shard.records }

// NewClientEmpty builds a Client with no observations, the zero state a
// resident service grows by merging deltas. DS stays nil — every
// client-side table derives from the merged observations alone.
func NewClientEmpty() *Client {
	return &Client{
		Prints:        map[string]*FingerprintInfo{},
		DevicePrints:  map[string]map[string]bool{},
		DeviceVendor:  map[string]string{},
		DeviceType:    map[string]string{},
		VersionCounts: map[tlswire.Version]int{},
		SNIDevices:    map[string]map[string]bool{},
	}
}

// NewDelta parses one record batch into a mergeable Delta. A record
// whose wire bytes fail to parse poisons the whole batch: the error
// names the offending index and the caller quarantines the batch
// rather than merging a partial aggregate.
func NewDelta(records []dataset.Record) (*Delta, error) {
	d := &Delta{
		deviceVendor: map[string]string{},
		deviceType:   map[string]string{},
	}
	d.shard.ingest(records, 0)
	if d.shard.err != nil {
		return nil, fmt.Errorf("analysis: record %d: %w", d.shard.errIdx, d.shard.err)
	}
	for _, r := range records {
		d.deviceVendor[r.DeviceID] = r.Vendor
		d.deviceType[r.DeviceID] = r.Type
	}
	return d, nil
}

// MergeDelta folds a delta into the client. The merge is commutative
// and associative (set unions and count additions), so any arrival
// order of the same deltas yields the same Client. The delta must not
// be reused afterwards. orderedKeys is rebuilt eagerly so table
// methods stay read-only.
func (c *Client) MergeDelta(d *Delta) {
	c.merge(&d.shard)
	for id, v := range d.deviceVendor {
		c.DeviceVendor[id] = v
	}
	for id, t := range d.deviceType {
		c.DeviceType[id] = t
	}
	c.orderedKeys = c.orderedKeys[:0]
	for k := range c.Prints {
		c.orderedKeys = append(c.orderedKeys, k)
	}
	sort.Strings(c.orderedKeys)
}

// Clone deep-copies the client's aggregate state so the copy can be
// published as an immutable snapshot while the original keeps merging
// deltas. Fingerprint tuples are shared — merging only ever grows the
// observation maps and counters, never rewrites a parsed Print.
func (c *Client) Clone() *Client {
	out := &Client{
		DS:            c.DS,
		Prints:        make(map[string]*FingerprintInfo, len(c.Prints)),
		DevicePrints:  make(map[string]map[string]bool, len(c.DevicePrints)),
		DeviceVendor:  make(map[string]string, len(c.DeviceVendor)),
		DeviceType:    make(map[string]string, len(c.DeviceType)),
		VersionCounts: make(map[tlswire.Version]int, len(c.VersionCounts)),
		SNIDevices:    make(map[string]map[string]bool, len(c.SNIDevices)),
		orderedKeys:   append([]string(nil), c.orderedKeys...),
	}
	for key, info := range c.Prints {
		out.Prints[key] = &FingerprintInfo{
			Print:   info.Print,
			Key:     info.Key,
			Devices: cloneSet(info.Devices),
			Vendors: cloneSet(info.Vendors),
			Types:   cloneSet(info.Types),
			SNIs:    cloneSet(info.SNIs),
			Records: info.Records,
		}
	}
	for dev, keys := range c.DevicePrints {
		out.DevicePrints[dev] = cloneSet(keys)
	}
	for id, v := range c.DeviceVendor {
		out.DeviceVendor[id] = v
	}
	for id, t := range c.DeviceType {
		out.DeviceType[id] = t
	}
	for v, n := range c.VersionCounts {
		out.VersionCounts[v] = n
	}
	for sni, devs := range c.SNIDevices {
		out.SNIDevices[sni] = cloneSet(devs)
	}
	return out
}

func cloneSet(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for k := range in {
		out[k] = true
	}
	return out
}
