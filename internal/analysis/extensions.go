package analysis

import (
	"sort"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/pki"
	"repro/internal/tlswire"
)

// ExtensionFrequency compares how often an extension appears in device
// fingerprints versus known-library fingerprints (Appendix B.3.3: IoT
// devices include session_ticket and renegotiation_info much more often
// than the stock libraries, and add application-specific extensions like
// ALPN/NPN and padding).
type ExtensionFrequency struct {
	Extension tlswire.ExtensionType
	// DeviceShare is the fraction of device fingerprints carrying it.
	DeviceShare float64
	// CorpusShare is the fraction of known-library fingerprints.
	CorpusShare float64
}

// Delta is DeviceShare - CorpusShare (positive = IoT-favoured).
func (f ExtensionFrequency) Delta() float64 { return f.DeviceShare - f.CorpusShare }

// ExtensionFrequencies computes the comparison over every extension seen
// on either side, sorted by |delta| descending.
func (c *Client) ExtensionFrequencies(matcher *fingerprint.Matcher) []ExtensionFrequency {
	devCount := map[tlswire.ExtensionType]int{}
	for _, key := range c.orderedKeys {
		seen := map[tlswire.ExtensionType]bool{}
		for _, e := range c.Prints[key].Print.Extensions {
			et := tlswire.ExtensionType(e)
			if tlswire.IsGREASEExtension(e) || seen[et] {
				continue
			}
			seen[et] = true
			devCount[et]++
		}
	}
	corpusCount := map[tlswire.ExtensionType]int{}
	corpusPrints := map[string]bool{}
	for _, entry := range matcher.Entries() {
		key := entry.Print.Key()
		if corpusPrints[key] {
			continue
		}
		corpusPrints[key] = true
		seen := map[tlswire.ExtensionType]bool{}
		for _, e := range entry.Print.Extensions {
			et := tlswire.ExtensionType(e)
			if seen[et] {
				continue
			}
			seen[et] = true
			corpusCount[et]++
		}
	}
	all := map[tlswire.ExtensionType]bool{}
	for e := range devCount {
		all[e] = true
	}
	for e := range corpusCount {
		all[e] = true
	}
	out := make([]ExtensionFrequency, 0, len(all))
	for e := range all {
		f := ExtensionFrequency{Extension: e}
		if len(c.Prints) > 0 {
			f.DeviceShare = float64(devCount[e]) / float64(len(c.Prints))
		}
		if len(corpusPrints) > 0 {
			f.CorpusShare = float64(corpusCount[e]) / float64(len(corpusPrints))
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Delta(), out[j].Delta()
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return out[i].Extension < out[j].Extension
	})
	return out
}

// ReportCards lints every probed server's leaf and grades the vendors
// whose devices depend on it (the hygiene scoreboard the Discussion
// section argues the ecosystem needs).
func (s *Server) ReportCards(now time.Time) []pki.VendorGrade {
	var obs []pki.VendorLeaf
	for _, r := range s.Records {
		vendors := make([]string, 0, len(r.Vendors))
		for v := range r.Vendors {
			vendors = append(vendors, v)
		}
		sort.Strings(vendors)
		for _, v := range vendors {
			obs = append(obs, pki.VendorLeaf{Vendor: v, Leaf: r.Leaf, IssuerPublic: r.IssuerPublic})
		}
	}
	return pki.GradeVendors(obs, now)
}
