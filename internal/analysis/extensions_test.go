package analysis

import (
	"testing"

	"repro/internal/libcorpus"
	"repro/internal/tlswire"
)

func TestExtensionFrequencies(t *testing.T) {
	c := client(t)
	rows := c.ExtensionFrequencies(libcorpus.NewMatcher())
	if len(rows) == 0 {
		t.Fatal("no extension rows")
	}
	byExt := map[tlswire.ExtensionType]ExtensionFrequency{}
	for _, r := range rows {
		if r.DeviceShare < 0 || r.DeviceShare > 1 || r.CorpusShare < 0 || r.CorpusShare > 1 {
			t.Fatalf("share out of range: %+v", r)
		}
		byExt[r.Extension] = r
	}
	// server_name is near-universal on both sides.
	sn := byExt[tlswire.ExtServerName]
	if sn.DeviceShare < 0.5 {
		t.Errorf("server_name device share %.2f", sn.DeviceShare)
	}
	// Sorted by |delta| descending.
	abs := func(f float64) float64 {
		if f < 0 {
			return -f
		}
		return f
	}
	for i := 1; i < len(rows); i++ {
		if abs(rows[i-1].Delta()) < abs(rows[i].Delta())-1e-12 {
			t.Fatalf("rows not sorted by |delta| at %d", i)
		}
	}
	// GREASE never appears (stripped).
	for _, r := range rows {
		if tlswire.IsGREASEExtension(uint16(r.Extension)) {
			t.Fatalf("GREASE extension %v in frequency table", r.Extension)
		}
	}
}

func TestReportCards(t *testing.T) {
	s := server(t)
	grades := s.ReportCards(s.World.ProbeTime)
	if len(grades) == 0 {
		t.Fatal("no grades")
	}
	sawBad := false
	for _, g := range grades {
		if g.Servers == 0 {
			t.Fatalf("vendor %s graded with zero servers", g.Vendor)
		}
		switch g.Grade() {
		case "A", "B", "C", "D", "F":
		default:
			t.Fatalf("vendor %s grade %q", g.Vendor, g.Grade())
		}
		if g.Grade() == "D" || g.Grade() == "F" {
			sawBad = true
		}
	}
	if !sawBad {
		t.Error("no vendor graded D/F despite decade-long vendor-signed certificates")
	}
	// The exclusively-private vendors must grade poorly.
	byVendor := map[string]string{}
	for _, g := range grades {
		byVendor[g.Vendor] = g.Grade()
	}
	for _, v := range []string{"Tuya", "Canary"} {
		if g, ok := byVendor[v]; ok && g == "A" {
			t.Errorf("%s graded A despite vendor-signed long-lived certs", v)
		}
	}
}
