package dataset

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/tlswire"
)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

// A zero AsOf — and any date inside the paper window — must be a strict
// no-op: identical records, identical bytes.
func TestDriftZeroAsOfNoOp(t *testing.T) {
	base := Generate(Config{Seed: 7, Scale: 0.05})
	inWindow := Generate(Config{Seed: 7, Scale: 0.05, AsOf: date(2020, 7, 1)})
	if base.Records.Len() != inWindow.Records.Len() {
		t.Fatalf("record count changed: %d vs %d", base.Records.Len(), inWindow.Records.Len())
	}
	for i := 0; i < base.Records.Len(); i++ {
		a, b := base.Records.At(i), inWindow.Records.At(i)
		if a.StackID != b.StackID || !bytes.Equal(a.Raw, b.Raw) {
			t.Fatalf("record %d diverged under in-window AsOf", i)
		}
	}
}

// A late AsOf must rewrite upgraded devices' records into real 1.3
// hellos while preserving each record's client random, and leave
// straggler records untouched.
func TestDriftRestampsUpgradedRecords(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 0.05}
	base := Generate(cfg)
	late := cfg
	late.AsOf = date(2025, 1, 1)
	ds := Generate(late)
	if ds.Records.Len() != base.Records.Len() {
		t.Fatalf("drift changed record count: %d vs %d", ds.Records.Len(), base.Records.Len())
	}
	upgraded, untouched := 0, 0
	for i := 0; i < ds.Records.Len(); i++ {
		r := ds.Records.At(i)
		orig := base.Records.At(i)
		if !strings.HasPrefix(r.StackID, fwStackPrefix) {
			untouched++
			if !bytes.Equal(r.Raw, orig.Raw) {
				t.Fatalf("record %d (stack %s) not upgraded but bytes changed", i, r.StackID)
			}
			continue
		}
		upgraded++
		ch, err := r.Hello()
		if err != nil {
			t.Fatalf("record %d: upgraded hello unparseable: %v", i, err)
		}
		if ch.EffectiveVersion() != tlswire.VersionTLS13 {
			t.Fatalf("record %d: upgraded hello effective version %v", i, ch.EffectiveVersion())
		}
		if shares := ch.KeyShares(); len(shares) == 0 {
			t.Fatalf("record %d: upgraded hello has no key share", i)
		}
		if !bytes.Equal(r.Raw[helloRandomOff:helloRandomOff+32], orig.Raw[helloRandomOff:helloRandomOff+32]) {
			t.Fatalf("record %d: client random not preserved across restamp", i)
		}
	}
	if upgraded == 0 {
		t.Fatal("no records upgraded at a 2025 asof")
	}
	if untouched == 0 {
		t.Fatal("no straggler records left at a 2025 asof")
	}
}

// The adoption curve must conserve the population in every row and be
// monotone in the TLS13 column over an advancing date ladder.
func TestAdoptionCurveConservationAndMonotonicity(t *testing.T) {
	ds := Generate(Config{Seed: 11, Scale: 0.05})
	dates := []time.Time{
		date(2020, 8, 1), date(2021, 8, 1), date(2022, 8, 1),
		date(2023, 8, 1), date(2024, 8, 1), date(2025, 8, 1), date(2026, 8, 1),
	}
	curve := ds.AdoptionCurve(dates)
	pop := len(ds.Devices)
	prev := -1
	for _, pt := range curve {
		if pt.Total() != pop {
			t.Fatalf("row %s: buckets sum to %d, population is %d", pt.Date.Format("2006-01-02"), pt.Total(), pop)
		}
		if pt.TLS13 < prev {
			t.Fatalf("row %s: TLS13 count decreased (%d -> %d)", pt.Date.Format("2006-01-02"), prev, pt.TLS13)
		}
		prev = pt.TLS13
	}
	if first := curve[0]; first.TLS13 != 0 {
		t.Fatalf("paper-era row already shows %d 1.3 devices", first.TLS13)
	}
	if last := curve[len(curve)-1]; last.TLS13 == 0 {
		t.Fatal("end-of-window row shows no 1.3 devices")
	}
	frac := ds.TLS13Fraction(date(2026, 8, 1))
	if frac <= 0.4 || frac >= 0.9 {
		t.Fatalf("end-of-window 1.3 fraction %.3f outside the ~two-thirds band", frac)
	}
}

// Straggler rows must cover every vendor once and match the curve's
// end-of-window remainder.
func TestDowngradeStragglers(t *testing.T) {
	ds := Generate(Config{Seed: 11, Scale: 0.05})
	rows := ds.DowngradeStragglers()
	seen := map[string]bool{}
	devices, stragglers := 0, 0
	for _, r := range rows {
		if seen[r.Vendor] {
			t.Fatalf("vendor %s listed twice", r.Vendor)
		}
		seen[r.Vendor] = true
		if r.Stragglers > r.Devices {
			t.Fatalf("vendor %s: %d stragglers out of %d devices", r.Vendor, r.Stragglers, r.Devices)
		}
		devices += r.Devices
		stragglers += r.Stragglers
	}
	if devices != len(ds.Devices) {
		t.Fatalf("straggler rows cover %d devices, population is %d", devices, len(ds.Devices))
	}
	// Far beyond the window every non-straggler has upgraded.
	end := ds.AdoptionCurve([]time.Time{date(2030, 1, 1)})[0]
	if end.TLS12+end.Legacy != stragglers {
		t.Fatalf("end-state non-1.3 devices %d != straggler tally %d", end.TLS12+end.Legacy, stragglers)
	}
}
