package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/ciphersuite"
	"repro/internal/fingerprint"
	"repro/internal/libcorpus"
	"repro/internal/tlswire"
)

// Stack is one TLS client instance a device may use: a firmware core
// stack, a device-type/application stack, a per-device customization, or a
// shared third-party SDK stack.
type Stack struct {
	// ID is a stable identifier ("core:Amazon:0", "sdk:netflix").
	ID string
	// Print is the fingerprint the stack emits.
	Print fingerprint.Fingerprint
	// SDK names the shared SDK when the stack is a third-party one.
	SDK string
	// SNIs restricts which servers the stack talks to (SDK stacks are
	// server-tied, Section 4.4); empty means the vendor's own pool.
	SNIs []string
}

// basePool returns library prints for a security profile era. All pool
// prints propose at most TLS 1.2 — the paper observed no TLS 1.3 at all.
func basePool(profile SecurityProfile) []fingerprint.Fingerprint {
	find := func(entries []fingerprint.LibraryEntry, version string) fingerprint.Fingerprint {
		for _, e := range entries {
			if e.Version == version {
				return e.Print
			}
		}
		panic("dataset: missing corpus version " + version)
	}
	ossl, wolf, mbed := libcorpus.OpenSSL(), libcorpus.WolfSSL(), libcorpus.MbedTLS()
	switch profile {
	case ProfileLegacy:
		return []fingerprint.Fingerprint{
			find(ossl, "1.0.0q"),
			find(ossl, "1.0.1h"),
			find(mbed, "1.1.4"),
			find(mbed, "1.2.5"),
			find(wolf, "2.5.0"),
			find(wolf, "3.4.0"),
		}
	case ProfileMixed:
		return []fingerprint.Fingerprint{
			find(ossl, "1.0.1u"),
			find(ossl, "1.0.2"),
			find(ossl, "1.0.2f"),
			find(ossl, "1.0.2m"),
			find(mbed, "1.3.16"),
			find(mbed, "2.1.10"),
			find(wolf, "3.10.3"),
		}
	default: // ProfileModern
		return []fingerprint.Fingerprint{
			find(ossl, "1.1.0l"),
			find(mbed, "2.16.4"),
			find(wolf, "3.15.3-stable"),
		}
	}
}

// clonePrint deep-copies a fingerprint.
func clonePrint(f fingerprint.Fingerprint) fingerprint.Fingerprint {
	return fingerprint.Fingerprint{
		Version:      f.Version,
		CipherSuites: append([]uint16(nil), f.CipherSuites...),
		Extensions:   append([]uint16(nil), f.Extensions...),
	}
}

// mutatePrint applies a vendor/application customization: drop 1..3
// suites, sometimes remove a whole cipher family or splice in foreign
// suites (build-time cipher config), swap a pair, and toggle an optional
// extension. The result is (almost surely) distinct from every corpus
// print, modelling the "customization" phenomenon that dominates the
// dataset; family removals and injections push the semantics-aware
// matcher toward SimilarComponent/Customization (Table 11's shape).
func mutatePrint(f fingerprint.Fingerprint, rng *rand.Rand) fingerprint.Fingerprint {
	out := clonePrint(f)
	// Drop suites (never the whole list).
	drops := 1 + rng.Intn(3)
	for d := 0; d < drops && len(out.CipherSuites) > 4; d++ {
		i := rng.Intn(len(out.CipherSuites))
		out.CipherSuites = append(out.CipherSuites[:i], out.CipherSuites[i+1:]...)
	}
	// Remove a whole cipher family half the time (vendors compile out
	// Camellia/SEED/DSS etc. wholesale).
	if rng.Intn(2) == 0 && len(out.CipherSuites) > 6 {
		pivot := out.CipherSuites[rng.Intn(len(out.CipherSuites))]
		if s, ok := ciphersuite.Lookup(pivot); ok && !s.IsSCSV() {
			kept := make([]uint16, 0, len(out.CipherSuites))
			for _, id := range out.CipherSuites {
				if o, ok := ciphersuite.Lookup(id); ok && o.Cipher == s.Cipher {
					continue
				}
				kept = append(kept, id)
			}
			if len(kept) >= 4 {
				out.CipherSuites = kept
			}
		}
	}
	// Splice in foreign suites a third of the time (side-loaded crypto
	// configs), which usually breaks component-set equality entirely.
	if rng.Intn(3) == 0 {
		all := ciphersuite.All()
		for k := 0; k < 1+rng.Intn(2); k++ {
			s := all[rng.Intn(len(all))]
			if s.IsSCSV() || indexOf(out.CipherSuites, s.ID) >= 0 {
				continue
			}
			pos := rng.Intn(len(out.CipherSuites) + 1)
			out.CipherSuites = append(out.CipherSuites[:pos],
				append([]uint16{s.ID}, out.CipherSuites[pos:]...)...)
		}
	}
	// Swap a pair half the time (ordering is part of the fingerprint).
	if rng.Intn(2) == 0 && len(out.CipherSuites) > 2 {
		i := rng.Intn(len(out.CipherSuites) - 1)
		out.CipherSuites[i], out.CipherSuites[i+1] = out.CipherSuites[i+1], out.CipherSuites[i]
	}
	// Toggle an optional extension.
	optional := []uint16{
		uint16(tlswire.ExtALPN),
		uint16(tlswire.ExtPadding),
		uint16(tlswire.ExtStatusRequest),
		uint16(tlswire.ExtSessionTicket),
		uint16(tlswire.ExtNextProtoNeg),
		uint16(tlswire.ExtExtendedMasterSecret),
	}
	ext := optional[rng.Intn(len(optional))]
	if i := indexOf(out.Extensions, ext); i >= 0 {
		out.Extensions = append(out.Extensions[:i], out.Extensions[i+1:]...)
	} else {
		out.Extensions = append(out.Extensions, ext)
	}
	return out
}

func indexOf(s []uint16, v uint16) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// chromiumPrint models the Chromium-derived stacks of Android-based
// devices (Google, Amazon Fire OS, Android TV): TLS 1.2 with GREASE in
// both suites and extensions. Seat is a small per-build variation.
func chromiumPrint(seat int) fingerprint.Fingerprint {
	suites := []uint16{
		0x0A0A, // GREASE
		0xC02B, 0xC02F, 0xC02C, 0xC030, 0xCCA9, 0xCCA8, 0xC013, 0xC014,
		0x009C, 0x009D, 0x002F, 0x0035,
	}
	if seat%2 == 1 {
		suites = append(suites, 0x000A) // older builds keep 3DES last
	}
	exts := []uint16{
		0x1A1A, // GREASE
		uint16(tlswire.ExtRenegotiationInfo),
		uint16(tlswire.ExtServerName),
		uint16(tlswire.ExtExtendedMasterSecret),
		uint16(tlswire.ExtSessionTicket),
		uint16(tlswire.ExtSignatureAlgorithms),
		uint16(tlswire.ExtStatusRequest),
		uint16(tlswire.ExtSignedCertTimestamp),
		uint16(tlswire.ExtALPN),
		uint16(tlswire.ExtECPointFormats),
		uint16(tlswire.ExtSupportedGroups),
		0x2A2A, // trailing GREASE
	}
	if seat%3 == 0 {
		exts = append(exts, uint16(tlswire.ExtPadding))
	}
	return fingerprint.Fingerprint{Version: tlswire.VersionTLS12, CipherSuites: suites, Extensions: exts}
}

// awfulPrint builds the anonymous/export/NULL-bearing lists observed from
// 14 vendors (Section 4.2 footnote). Synology additionally proposes
// KRB5_EXPORT and is the only vendor with DH_anon most-preferred.
func awfulPrint(base fingerprint.Fingerprint, vendor string, rng *rand.Rand) fingerprint.Fingerprint {
	out := clonePrint(base)
	awful := []uint16{
		0x0034, // DH_anon AES_128 CBC
		0x001B, // DH_anon 3DES
		0x0019, // DH_anon EXPORT DES40
		0x0002, // RSA NULL SHA
		0x0006, // RSA EXPORT RC2
	}
	if vendor == "Synology" {
		awful = append(awful, 0x0026, 0x002A, 0x0029) // KRB5_EXPORT
		// Synology proposes DH_anon / KRB5_EXPORT first (Appendix B.8).
		out.CipherSuites = append(awful, out.CipherSuites...)
		return out
	}
	// Other vendors bury the junk mid-list.
	k := 1 + rng.Intn(3)
	pos := len(out.CipherSuites) / 2
	tail := append([]uint16(nil), out.CipherSuites[pos:]...)
	out.CipherSuites = append(append(out.CipherSuites[:pos], awful[:k]...), tail...)
	return out
}

// rc4FirstPrint forces an RC4 suite into the most-preferred slot (Belkin,
// Appendix B.8).
func rc4FirstPrint(base fingerprint.Fingerprint) fingerprint.Fingerprint {
	out := clonePrint(base)
	out.CipherSuites = append([]uint16{0x0005}, removeOne(out.CipherSuites, 0x0005)...)
	return out
}

func removeOne(s []uint16, v uint16) []uint16 {
	out := make([]uint16, 0, len(s))
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// ssl3Print is the tiny SSL 3.0 hello some legacy devices still emit.
func ssl3Print() fingerprint.Fingerprint {
	return fingerprint.Fingerprint{
		Version:      tlswire.VersionSSL30,
		CipherSuites: []uint16{0x0035, 0x002F, 0x000A, 0x0005, 0x0004, 0x00FF},
		Extensions:   nil,
	}
}

// sdkSpec describes a shared third-party SDK stack: its fingerprint
// recipe and the servers it exclusively talks to.
type sdkSpec struct {
	name string
	// slds it owns: SNIs are generated from these (sld, fqdn count) specs.
	slds []SLDSpec
	// fqdnOffset shifts FQDN generation so two SDKs sharing an SLD own
	// disjoint server sets (the paper's two roku.com fingerprint rows).
	fqdnOffset int
	// vulnerable marks SDKs whose suite lists carry RC4/3DES (Table 5's
	// mgo-images/ravm/roku rows).
	vulnClass string // "", "3des", "rc-3des"
	seat      int
}

// sdkSpecs is the registry of shared SDKs, mirroring Table 5.
var sdkSpecs = []sdkSpec{
	{name: "netflix", slds: []SLDSpec{{"nflxvideo.net", 5}, {"netflix.com", 8}, {"nflxext.com", 2}}, seat: 1},
	{name: "sonos", slds: []SLDSpec{{"sonos.com", 5}}, seat: 2},
	{name: "pandora", slds: []SLDSpec{{"pandora.com", 1}}, seat: 3},
	{name: "spotify", slds: []SLDSpec{{"spotify.com", 4}, {"scdn.co", 6}}, seat: 4},
	{name: "roku-platform", slds: []SLDSpec{{"roku.com", 8}, {"mgo.com", 2}}, seat: 5},
	{name: "roku-platform-legacy", slds: []SLDSpec{{"roku.com", 6}}, fqdnOffset: 8, vulnClass: "3des", seat: 6},
	{name: "mgo", slds: []SLDSpec{{"mgo-images.com", 2}, {"ravm.tv", 1}}, vulnClass: "rc-3des", seat: 7},
	{name: "arlo", slds: []SLDSpec{{"arlo.com", 2}, {"netgear.com", 1}}, seat: 8},
	{name: "hdhomerun", slds: []SLDSpec{{"hdhomerun.com", 2}}, seat: 9},
	{name: "cast4audio", slds: []SLDSpec{{"cast4.audio", 1}}, vulnClass: "3des", seat: 10},
	{name: "googleapis-shared", slds: []SLDSpec{{"googleapis.com", 1}}, seat: 11},
}

// buildSDKStacks constructs the SDK stack registry with server-tied SNIs.
func buildSDKStacks(rng *rand.Rand) map[string]*Stack {
	out := map[string]*Stack{}
	poolMixed := basePool(ProfileMixed)
	poolModern := basePool(ProfileModern)
	for _, spec := range sdkSpecs {
		var print fingerprint.Fingerprint
		switch spec.vulnClass {
		case "rc-3des":
			base := clonePrint(poolMixed[spec.seat%len(poolMixed)])
			base.CipherSuites = append(base.CipherSuites, 0x0005, 0x0004) // RC4
			print = mutatePrint(base, rng)
			print.CipherSuites = ensureContains(print.CipherSuites, 0x0005, 0x000A)
		case "3des":
			base := clonePrint(poolMixed[spec.seat%len(poolMixed)])
			print = mutatePrint(base, rng)
			print.CipherSuites = ensureContains(print.CipherSuites, 0x000A)
			print.CipherSuites = removeOne(removeOne(print.CipherSuites, 0x0005), 0x0004)
		default:
			base := clonePrint(poolModern[spec.seat%len(poolModern)])
			print = mutatePrint(base, rng)
			// Clean SDKs carry no vulnerable suites.
			for _, v := range []uint16{0x000A, 0x0005, 0x0004, 0xC012, 0xC008, 0x0016, 0x0013, 0x0039} {
				print.CipherSuites = removeOne(print.CipherSuites, v)
			}
			print.CipherSuites = stripVulnerable(print.CipherSuites)
		}
		var snis []string
		for _, sld := range spec.slds {
			wide := SLDSpec{Name: sld.Name, FQDNs: sld.FQDNs + spec.fqdnOffset}
			snis = append(snis, FQDNsOf(wide)[spec.fqdnOffset:]...)
		}
		out[spec.name] = &Stack{
			ID:    "sdk:" + spec.name,
			Print: print,
			SDK:   spec.name,
			SNIs:  snis,
		}
	}
	return out
}

func stripVulnerable(ids []uint16) []uint16 {
	out := make([]uint16, 0, len(ids))
	for _, id := range ids {
		s, ok := ciphersuite.Lookup(id)
		if ok && s.Level() == ciphersuite.Vulnerable {
			continue
		}
		out = append(out, id)
	}
	return out
}

func ensureContains(ids []uint16, want ...uint16) []uint16 {
	for _, w := range want {
		if indexOf(ids, w) < 0 {
			ids = append(ids, w)
		}
	}
	return ids
}

// fqdnPrefixes name the hosts generated under each SLD.
var fqdnPrefixes = []string{
	"api", "ota", "cloud", "time", "log", "metrics", "device", "cdn",
	"events", "app", "auth", "sync", "data", "push", "img", "static",
	"config", "telemetry", "ws", "mqtt", "updates", "portal", "gateway",
	"edge", "ingest", "control", "registry", "relay", "beacon", "appboot",
	"discovery", "provision", "heartbeat", "status", "upload", "media",
	"stream", "play", "license", "drm", "ads", "search", "voice", "nlu",
	"assets", "fw", "dl", "s1", "s2", "s3", "us-east", "us-west", "eu",
	"ap", "cn", "a1", "a2", "b1", "b2", "c1",
}

// FQDNsOf deterministically generates the FQDN list for an SLD spec.
func FQDNsOf(sld SLDSpec) []string {
	out := make([]string, 0, sld.FQDNs)
	for i := 0; i < sld.FQDNs; i++ {
		prefix := fqdnPrefixes[i%len(fqdnPrefixes)]
		if i >= len(fqdnPrefixes) {
			prefix = fmt.Sprintf("%s%d", prefix, i/len(fqdnPrefixes))
		}
		out = append(out, prefix+"."+sld.Name)
	}
	return out
}
