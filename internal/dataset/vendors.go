package dataset

// SecurityProfile coarsely classifies the TLS-stack era a vendor ships.
type SecurityProfile int

const (
	// ProfileModern vendors track recent library releases (browser-grade
	// suite lists, no 3DES/RC4).
	ProfileModern SecurityProfile = iota
	// ProfileMixed vendors ship mid-2010s stacks (3DES present).
	ProfileMixed
	// ProfileLegacy vendors ship pre-2015 stacks (RC4/3DES, TLS 1.0).
	ProfileLegacy
)

// SLDSpec is one vendor- or service-owned second-level domain and how many
// FQDNs under it the device population contacts.
type SLDSpec struct {
	Name  string
	FQDNs int
}

// VendorProfile is the generative model for one device vendor: population
// weight, device types, TLS stack era mix, private-CA behaviour, SDK
// memberships, and domains. The 65 vendors and their indices follow
// Table 13 of the paper.
type VendorProfile struct {
	// Index is the vendor's number in Figure 1 / Table 13.
	Index int
	// Name of the vendor.
	Name string
	// Weight is the approximate device count at Scale=1 (paper scale).
	Weight int
	// Types are the device types the vendor ships.
	Types []string
	// Profile is the dominant stack era.
	Profile SecurityProfile
	// StackGroup names a shared stack pool when several brands ship the
	// same firmware (HDHomeRun/SiliconDust, Sharp/TCL/Insignia...). Empty
	// means the vendor has its own pool.
	StackGroup string
	// SDKs the vendor's devices embed (shared third-party TLS stacks).
	SDKs []string
	// SLDs are the vendor-owned domains devices contact.
	SLDs []SLDSpec
	// PrivateCA: the vendor signs (some of) its own server certificates.
	PrivateCA bool
	// OnlyPrivateCA: every visited vendor server is vendor-signed
	// (Canary, Tuya, Obihai in the paper).
	OnlyPrivateCA bool
	// GREASE: stacks are chromium-derived and emit GREASE values.
	GREASE bool
	// SSL3Devices is the number of devices that occasionally still
	// propose SSL 3.0 (Appendix B.3.2).
	SSL3Devices int
	// AwfulSuites: some devices propose anonymous/export/NULL suites
	// (the 14-vendor footnote of Section 4.2).
	AwfulSuites bool
	// RC4First: every device proposes an RC4 suite as most preferred
	// (Belkin in Appendix B.8).
	RC4First bool
	// ExactLibDevices is the number of devices whose stack is an
	// unmodified known-library build (drives the 2.55% match rate).
	ExactLibDevices int
}

// Device type names used across the generator.
const (
	TypeTV        = "tv"
	TypeStreamer  = "streamer" // streaming stick / set-top box
	TypeSpeaker   = "speaker"
	TypeCamera    = "camera"
	TypeHub       = "hub"
	TypePlug      = "plug"
	TypeBulb      = "bulb"
	TypeNAS       = "nas"
	TypePrinter   = "printer"
	TypeThermstat = "thermostat"
	TypeAppliance = "appliance"
	TypeWearable  = "wearable"
	TypeRouter    = "router"
	TypeConsole   = "console"
	TypeVacuum    = "vacuum"
	TypeDoorbell  = "doorbell"
	TypeAVR       = "avr" // audio/video receiver
	TypeEnergy    = "energy"
	TypeCar       = "car"
)

// Vendors returns the 65-vendor registry. Weights sum to roughly 2,014
// (the paper's device count) at Scale=1.
func Vendors() []VendorProfile {
	return []VendorProfile{
		{Index: 1, Name: "Roku", Weight: 130, Types: []string{TypeStreamer, TypeTV}, Profile: ProfileMixed,
			StackGroup: "roku", SDKs: []string{"roku-platform", "roku-platform-legacy", "netflix"},
			SLDs:      []SLDSpec{{"roku.com", 42}, {"rokutime.com", 1}},
			PrivateCA: true},
		{Index: 2, Name: "TCL", Weight: 45, Types: []string{TypeTV}, Profile: ProfileMixed,
			StackGroup: "roku", SDKs: []string{"roku-platform", "roku-platform-legacy", "mgo"},
			SLDs: []SLDSpec{{"tclusa.com", 2}}},
		{Index: 3, Name: "Samsung", Weight: 130, Types: []string{TypeTV, TypeAppliance, TypeCamera}, Profile: ProfileMixed,
			SDKs: []string{"netflix"},
			SLDs: []SLDSpec{{"samsungcloudsolution.net", 7}, {"samsungcloudsolution.com", 4},
				{"samsungrm.net", 1}, {"samsungelectronics.com", 1}, {"pavv.co.kr", 1},
				{"samsunghrm.com", 1}, {"samsungotn.net", 3}, {"ueiwsp.com", 1}},
			PrivateCA: true, SSL3Devices: 4, AwfulSuites: true, ExactLibDevices: 2},
		{Index: 4, Name: "Sharp", Weight: 28, Types: []string{TypeTV}, Profile: ProfileMixed,
			StackGroup: "roku", SDKs: []string{"roku-platform", "mgo"},
			SLDs: []SLDSpec{{"sharpusa.com", 1}}},
		{Index: 5, Name: "Insignia", Weight: 32, Types: []string{TypeTV}, Profile: ProfileMixed,
			StackGroup: "roku", SDKs: []string{"roku-platform", "roku-platform-legacy", "mgo"},
			SLDs: []SLDSpec{{"insigniaproducts.com", 1}}},
		{Index: 6, Name: "Amazon", Weight: 330, Types: []string{TypeSpeaker, TypeStreamer, TypeTV, TypeCamera, TypeHub}, Profile: ProfileMixed,
			SDKs: []string{"netflix", "sonos", "pandora", "spotify"},
			SLDs: []SLDSpec{{"amazon.com", 57}, {"amazonalexa.com", 2}, {"amazonaws.com", 33},
				{"amazonvideo.com", 23}, {"media-amazon.com", 1}, {"amazon-dss.com", 1},
				{"ssl-images-amazon.com", 1}, {"a2z.com", 4}},
			GREASE: true, SSL3Devices: 13, AwfulSuites: true, ExactLibDevices: 3},
		{Index: 7, Name: "Nvidia", Weight: 42, Types: []string{TypeStreamer}, Profile: ProfileModern,
			StackGroup: "androidtv", SDKs: []string{"netflix", "googleapis-shared", "spotify"},
			SLDs:   []SLDSpec{{"nvidia.com", 4}, {"tegrazone.com", 1}, {"nvidiagrid.net", 3}},
			GREASE: true},
		{Index: 8, Name: "Google", Weight: 280, Types: []string{TypeSpeaker, TypeStreamer, TypeHub, TypeCamera, TypeThermstat}, Profile: ProfileModern,
			SDKs: []string{"netflix", "spotify"},
			SLDs: []SLDSpec{{"google.com", 24}, {"googleapis.com", 35}, {"gstatic.com", 10},
				{"googleusercontent.com", 6}, {"youtube.com", 2}, {"ytimg.com", 4}, {"ggpht.com", 5},
				{"googlesyndication.com", 3}, {"google-analytics.com", 2}, {"nest.com", 4},
				{"googlevideo.com", 4}, {"doubleclick.net", 9}},
			PrivateCA: true, GREASE: true, AwfulSuites: true, ExactLibDevices: 2},
		{Index: 9, Name: "HP", Weight: 30, Types: []string{TypePrinter}, Profile: ProfileMixed,
			SLDs:        []SLDSpec{{"hpeprint.com", 3}, {"hp.com", 4}, {"hpsmartstage.com", 1}},
			AwfulSuites: true, ExactLibDevices: 1},
		{Index: 10, Name: "Western Digital", Weight: 42, Types: []string{TypeNAS}, Profile: ProfileLegacy,
			StackGroup: "nas", SLDs: []SLDSpec{{"mycloud.com", 4}, {"wdc.com", 2}},
			SSL3Devices: 1, AwfulSuites: true, ExactLibDevices: 1},
		{Index: 11, Name: "Xiaomi", Weight: 30, Types: []string{TypeCamera, TypeHub, TypeVacuum}, Profile: ProfileMixed,
			StackGroup: "androidtv", SDKs: []string{"netflix"},
			SLDs:   []SLDSpec{{"mi.com", 4}, {"miwifi.com", 2}, {"xiaomi.com", 3}},
			GREASE: true},
		{Index: 12, Name: "Sony", Weight: 100, Types: []string{TypeTV, TypeConsole, TypeSpeaker}, Profile: ProfileMixed,
			StackGroup: "androidtv", SDKs: []string{"netflix", "googleapis-shared"},
			SLDs: []SLDSpec{{"playstation.net", 12}, {"sonyentertainmentnetwork.com", 2},
				{"sony.com", 3}, {"sonymobile.com", 2}},
			PrivateCA: true, GREASE: true, AwfulSuites: true, ExactLibDevices: 2},
		{Index: 13, Name: "Lutron", Weight: 14, Types: []string{TypeHub}, Profile: ProfileLegacy,
			SLDs:        []SLDSpec{{"lutron.com", 2}},
			AwfulSuites: true},
		{Index: 14, Name: "iDevices", Weight: 8, Types: []string{TypePlug}, Profile: ProfileMixed,
			SLDs: []SLDSpec{{"idevicesinc.com", 2}}},
		{Index: 15, Name: "TP-Link", Weight: 52, Types: []string{TypePlug, TypeBulb, TypeCamera, TypeRouter}, Profile: ProfileLegacy,
			SLDs:        []SLDSpec{{"tplinkcloud.com", 3}, {"tplinkra.com", 2}, {"tp-link.com", 2}},
			SSL3Devices: 1, AwfulSuites: true, ExactLibDevices: 2},
		{Index: 16, Name: "Vizio", Weight: 28, Types: []string{TypeTV}, Profile: ProfileMixed,
			SDKs:        []string{"netflix"},
			SLDs:        []SLDSpec{{"vizio.com", 4}, {"smartcast.tv", 2}},
			AwfulSuites: true},
		{Index: 17, Name: "Pioneer", Weight: 10, Types: []string{TypeAVR}, Profile: ProfileLegacy,
			StackGroup: "onkyo-pioneer", SDKs: []string{"cast4audio"},
			SLDs: []SLDSpec{{"pioneer-av.com", 1}}},
		{Index: 18, Name: "Onkyo", Weight: 12, Types: []string{TypeAVR}, Profile: ProfileLegacy,
			StackGroup: "onkyo-pioneer", SDKs: []string{"cast4audio"},
			SLDs: []SLDSpec{{"onkyo.com", 2}}},
		{Index: 19, Name: "wink", Weight: 14, Types: []string{TypeHub}, Profile: ProfileMixed,
			SLDs: []SLDSpec{{"wink.com", 2}}},
		{Index: 20, Name: "LG", Weight: 85, Types: []string{TypeTV, TypeAppliance}, Profile: ProfileMixed,
			SDKs: []string{"netflix"},
			SLDs: []SLDSpec{{"lgtvsdp.com", 2}, {"lgsmartad.com", 2}, {"lge.com", 3},
				{"lgtvcommon.com", 3}},
			PrivateCA: true, SSL3Devices: 2, AwfulSuites: true, ExactLibDevices: 1},
		{Index: 21, Name: "Cisco", Weight: 12, Types: []string{TypeRouter, TypeCamera}, Profile: ProfileMixed,
			SDKs: []string{"roku-platform"},
			SLDs: []SLDSpec{{"cisco.com", 2}, {"meraki.com", 2}}},
		{Index: 22, Name: "Philips", Weight: 42, Types: []string{TypeBulb, TypeHub}, Profile: ProfileMixed,
			SDKs:      []string{"netflix"},
			SLDs:      []SLDSpec{{"meethue.com", 3}, {"philips.com", 2}, {"dc1.philips.com", 1}},
			PrivateCA: true, AwfulSuites: true},
		{Index: 23, Name: "Synology", Weight: 62, Types: []string{TypeNAS}, Profile: ProfileLegacy,
			StackGroup:  "nas",
			SLDs:        []SLDSpec{{"synology.com", 4}, {"quickconnect.to", 3}},
			SSL3Devices: 5, AwfulSuites: true},
		{Index: 24, Name: "TiVo", Weight: 18, Types: []string{TypeStreamer}, Profile: ProfileMixed,
			SDKs:        []string{"netflix"},
			SLDs:        []SLDSpec{{"tivo.com", 4}},
			AwfulSuites: false},
		{Index: 25, Name: "Wyze", Weight: 75, Types: []string{TypeCamera}, Profile: ProfileMixed,
			SLDs:            []SLDSpec{{"wyzecam.com", 3}, {"wyze.com", 2}},
			ExactLibDevices: 60}, // Wyze cams run stock OpenSSL 1.0.2 (case study §4.1)
		{Index: 26, Name: "Sonos", Weight: 38, Types: []string{TypeSpeaker}, Profile: ProfileModern,
			SDKs: []string{"sonos", "pandora", "spotify"},
			SLDs: []SLDSpec{{"sonos.com", 10}, {"ws.sonos.com", 1}}},
		{Index: 27, Name: "Amcrest", Weight: 14, Types: []string{TypeCamera}, Profile: ProfileLegacy,
			SLDs:        []SLDSpec{{"amcrestcloud.com", 2}, {"amcrestsecurity.com", 1}},
			AwfulSuites: true},
		{Index: 28, Name: "Panasonic", Weight: 16, Types: []string{TypeTV, TypeCamera}, Profile: ProfileMixed,
			SDKs: []string{"netflix"},
			SLDs: []SLDSpec{{"panasonic.com", 2}, {"viera.tv", 2}}},
		{Index: 29, Name: "QNAP", Weight: 16, Types: []string{TypeNAS}, Profile: ProfileLegacy,
			StackGroup: "nas", SLDs: []SLDSpec{{"qnap.com", 3}, {"myqnapcloud.com", 2}},
			AwfulSuites: true},
		{Index: 30, Name: "Fing", Weight: 8, Types: []string{TypeHub}, Profile: ProfileModern,
			SLDs: []SLDSpec{{"fing.com", 2}}},
		{Index: 31, Name: "Brother", Weight: 16, Types: []string{TypePrinter}, Profile: ProfileLegacy,
			StackGroup: "printer", SDKs: []string{"roku-platform"},
			SLDs: []SLDSpec{{"brother.com", 2}, {"brotherprinter.net", 1}}},
		{Index: 32, Name: "Dish Network", Weight: 14, Types: []string{TypeStreamer}, Profile: ProfileLegacy,
			StackGroup: "dish", SLDs: []SLDSpec{{"dishaccess.tv", 2}, {"dish.com", 2}},
			PrivateCA: true, AwfulSuites: true},
		{Index: 33, Name: "Skybell", Weight: 10, Types: []string{TypeDoorbell}, Profile: ProfileLegacy,
			StackGroup: "ti-chipset", SLDs: []SLDSpec{{"skybell.com", 2}}},
		{Index: 34, Name: "NETGEAR", Weight: 24, Types: []string{TypeRouter, TypeCamera}, Profile: ProfileMixed,
			StackGroup: "arlo", SDKs: []string{"arlo"},
			SLDs: []SLDSpec{{"netgear.com", 3}}},
		{Index: 35, Name: "Arlo", Weight: 26, Types: []string{TypeCamera}, Profile: ProfileMixed,
			StackGroup: "arlo", SDKs: []string{"arlo"},
			SLDs: []SLDSpec{{"arlo.com", 4}}},
		{Index: 36, Name: "iRobot", Weight: 18, Types: []string{TypeVacuum}, Profile: ProfileMixed,
			StackGroup: "arlo", // shared supplier with Arlo per Table 4
			SLDs:       []SLDSpec{{"irobotapi.com", 3}}},
		{Index: 37, Name: "Yamaha", Weight: 10, Types: []string{TypeAVR}, Profile: ProfileMixed,
			SLDs: []SLDSpec{{"yamaha.com", 2}}},
		{Index: 38, Name: "Texas Instruments", Weight: 10, Types: []string{TypeHub}, Profile: ProfileLegacy,
			StackGroup: "ti-chipset", SLDs: []SLDSpec{{"ti.com", 1}}},
		{Index: 39, Name: "Tesla", Weight: 10, Types: []string{TypeCar}, Profile: ProfileModern,
			SLDs:      []SLDSpec{{"tesla.services", 5}, {"tesla.com", 2}},
			PrivateCA: true},
		{Index: 40, Name: "Bose", Weight: 14, Types: []string{TypeSpeaker}, Profile: ProfileMixed,
			StackGroup: "ti-chipset", SDKs: []string{"spotify"},
			SLDs: []SLDSpec{{"bose.com", 2}, {"bose.io", 2}}},
		{Index: 41, Name: "Sky", Weight: 12, Types: []string{TypeStreamer}, Profile: ProfileMixed,
			SDKs: []string{"netflix"},
			SLDs: []SLDSpec{{"sky.com", 3}}},
		{Index: 42, Name: "Humax", Weight: 8, Types: []string{TypeStreamer}, Profile: ProfileMixed,
			SDKs: []string{"netflix"},
			SLDs: []SLDSpec{{"humaxdigital.com", 2}}},
		{Index: 43, Name: "Ubiquity", Weight: 14, Types: []string{TypeRouter}, Profile: ProfileModern,
			SLDs: []SLDSpec{{"ubnt.com", 3}, {"ui.com", 2}}},
		{Index: 44, Name: "Logitech", Weight: 12, Types: []string{TypeHub}, Profile: ProfileMixed,
			SLDs: []SLDSpec{{"logitech.com", 2}, {"myharmony.com", 2}}},
		{Index: 45, Name: "Netatmo", Weight: 14, Types: []string{TypeCamera, TypeThermstat}, Profile: ProfileMixed,
			SLDs: []SLDSpec{{"netatmo.net", 3}}},
		{Index: 46, Name: "SiliconDust", Weight: 10, Types: []string{TypeStreamer}, Profile: ProfileMixed,
			StackGroup: "hdhomerun", SDKs: []string{"hdhomerun"},
			SLDs: []SLDSpec{{"silicondust.com", 1}}},
		{Index: 47, Name: "HDHomeRun", Weight: 10, Types: []string{TypeStreamer}, Profile: ProfileMixed,
			StackGroup: "hdhomerun", SDKs: []string{"hdhomerun"},
			SLDs: []SLDSpec{{"hdhomerun.com", 2}}},
		{Index: 48, Name: "Sense", Weight: 10, Types: []string{TypeEnergy}, Profile: ProfileLegacy,
			StackGroup: "ti-chipset",
			SLDs:       []SLDSpec{{"sense.com", 2}},
			PrivateCA:  true},
		{Index: 49, Name: "DirecTV", Weight: 12, Types: []string{TypeStreamer}, Profile: ProfileMixed,
			SLDs:      []SLDSpec{{"dtvce.com", 1}, {"directv.com", 2}},
			PrivateCA: true},
		{Index: 50, Name: "Denon", Weight: 10, Types: []string{TypeAVR}, Profile: ProfileMixed,
			StackGroup: "denon-marantz",
			SLDs:       []SLDSpec{{"denon.com", 1}, {"skyegloup.com", 1}}},
		{Index: 51, Name: "Marantz", Weight: 8, Types: []string{TypeAVR}, Profile: ProfileMixed,
			StackGroup: "denon-marantz",
			SLDs:       []SLDSpec{{"marantz.com", 1}}},
		{Index: 52, Name: "Nanoleaf", Weight: 8, Types: []string{TypeBulb}, Profile: ProfileModern,
			SLDs: []SLDSpec{{"nanoleaf.me", 2}}},
		{Index: 53, Name: "VMware", Weight: 6, Types: []string{TypeHub}, Profile: ProfileModern,
			SLDs: []SLDSpec{{"vmware.com", 2}}},
		{Index: 54, Name: "Obihai", Weight: 8, Types: []string{TypeHub}, Profile: ProfileLegacy,
			SLDs:      []SLDSpec{{"obitalk.com", 1}},
			PrivateCA: true, OnlyPrivateCA: true},
		{Index: 55, Name: "Canary", Weight: 10, Types: []string{TypeCamera}, Profile: ProfileMixed,
			SLDs:      []SLDSpec{{"canaryis.com", 2}},
			PrivateCA: true, OnlyPrivateCA: true},
		{Index: 56, Name: "ecobee", Weight: 14, Types: []string{TypeThermstat}, Profile: ProfileMixed,
			SLDs:      []SLDSpec{{"ecobee.com", 2}},
			PrivateCA: true},
		{Index: 57, Name: "Epson", Weight: 12, Types: []string{TypePrinter}, Profile: ProfileLegacy,
			StackGroup: "printer",
			SLDs:       []SLDSpec{{"epsonconnect.com", 2}}},
		{Index: 58, Name: "IKEA", Weight: 10, Types: []string{TypeSpeaker, TypeBulb}, Profile: ProfileModern,
			SDKs: []string{"sonos"},
			SLDs: []SLDSpec{{"ikea.net", 2}}},
		{Index: 59, Name: "Belkin", Weight: 18, Types: []string{TypePlug}, Profile: ProfileLegacy,
			SLDs:     []SLDSpec{{"belkin.com", 2}, {"xbcs.net", 3}},
			RC4First: true},
		{Index: 60, Name: "Nintendo", Weight: 20, Types: []string{TypeConsole}, Profile: ProfileMixed,
			SLDs:      []SLDSpec{{"nintendo.net", 14}, {"nintendo.com", 2}},
			PrivateCA: true},
		{Index: 61, Name: "Sleep number", Weight: 8, Types: []string{TypeAppliance}, Profile: ProfileMixed,
			SLDs: []SLDSpec{{"sleepiq.com", 2}}},
		{Index: 62, Name: "Tuya", Weight: 12, Types: []string{TypePlug, TypeBulb}, Profile: ProfileLegacy,
			SLDs:      []SLDSpec{{"tuyaus.com", 3}, {"tuyacn.com", 1}},
			PrivateCA: true, OnlyPrivateCA: true},
		{Index: 63, Name: "Canon", Weight: 10, Types: []string{TypePrinter}, Profile: ProfileLegacy,
			StackGroup: "printer",
			SLDs:       []SLDSpec{{"c-wss.com", 2}}},
		{Index: 64, Name: "Vera", Weight: 6, Types: []string{TypeHub}, Profile: ProfileMixed,
			SLDs: []SLDSpec{{"mios.com", 2}}},
		{Index: 65, Name: "Withings", Weight: 10, Types: []string{TypeWearable}, Profile: ProfileModern,
			SLDs: []SLDSpec{{"withings.net", 3}}},
	}
}

// ThirdPartySLDs are service domains not owned by any device vendor,
// visited by many device types (Table 15 tail).
var ThirdPartySLDs = []SLDSpec{
	{"netflix.com", 30}, {"nflxvideo.net", 5}, {"nflxext.com", 2}, {"netflix.net", 1},
	{"cloudfront.net", 21}, {"facebook.com", 9}, {"spotify.com", 8}, {"scdn.co", 11},
	{"pandora.com", 1}, {"plex.tv", 11}, {"sentry-cdn.com", 1}, {"amcs-tachyon.com", 1},
	{"mgo.com", 2}, {"mgo-images.com", 2}, {"ravm.tv", 1}, {"cast4.audio", 1},
	{"tremorvideo.com", 1}, {"rubiconproject.com", 1}, {"contextweb.com", 1},
	{"spotxchange.com", 1}, {"akamaized.net", 6}, {"fastly.net", 4},
	{"weather.com", 2}, {"ntp.org", 1}, {"pool.ntp.org", 1}, {"tuyaeu.com", 1},
	{"crashlytics.com", 2}, {"app-measurement.com", 1}, {"branch.io", 2},
	{"adobe.com", 2}, {"demdex.net", 2}, {"scorecardresearch.com", 2},
	{"innovid.com", 1}, {"iheart.com", 2}, {"tunein.com", 2}, {"deezer.com", 1},
	{"hulu.com", 4}, {"hbo.com", 2}, {"disneyplus.com", 3}, {"sling.com", 2},
	{"vudu.com", 2}, {"crackle.com", 1}, {"pluto.tv", 2},
}

// VendorByName indexes the registry by vendor name.
func VendorByName() map[string]VendorProfile {
	out := map[string]VendorProfile{}
	for _, v := range Vendors() {
		out[v.Name] = v
	}
	return out
}

// TotalWeight sums all vendor weights (≈ the paper's 2,014 devices).
func TotalWeight() int {
	n := 0
	for _, v := range Vendors() {
		n += v.Weight
	}
	return n
}
