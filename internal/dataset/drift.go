package dataset

// Firmware-drift timeline: the paper's capture stops in August 2020, when
// the IoT population proposed no TLS 1.3 at all. Config.AsOf replays the
// same population at a later virtual date: a hash-scheduled fraction of
// devices has taken a firmware update by then, and an update replaces the
// device's TLS cores with a 1.3-era library default from the dated
// modern corpus (libcorpus.Modern). Upgrade schedules are shaped by the
// vendor's security era — browser-grade vendors track releases within a
// couple of years, legacy fleets trail by most of the window — and a
// per-profile straggler share never upgrades at all, producing the
// paper-style long tail of downlevel hellos years after 1.3 shipped.
//
// Everything is a pure function of (Seed, device, vendor profile), so the
// upgraded-device set is monotone in AsOf: a device upgraded at date D is
// upgraded at every later date, and the 1.3-capable fraction never
// decreases as the timeline advances. A zero AsOf is a strict no-op — the
// generator output is byte-identical to a build without this file.

import (
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/intern"
	"repro/internal/libcorpus"
	"repro/internal/tlswire"
)

// Drift window: firmware rebuilt on 1.3-era libraries could first ship
// once wolfSSL 4.5.0 was out (late August 2020); by the end of the
// window every non-straggler device has upgraded.
var (
	driftStart = time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC)
	driftEnd   = time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
)

// driftProfile shapes a vendor era's upgrade behaviour: what fraction of
// devices never upgrades, and which slice of the drift window the rest
// upgrade within.
type driftProfile struct {
	stragglerPct uint64  // percent of devices that never upgrade
	lo, hi       float64 // upgrade-date band as fractions of the window
}

// driftProfileOf maps a vendor security era onto its upgrade shape. The
// straggler shares average to roughly a third of the population.
func driftProfileOf(p SecurityProfile) driftProfile {
	switch p {
	case ProfileModern:
		return driftProfile{stragglerPct: 15, lo: 0.0, hi: 0.45}
	case ProfileLegacy:
		return driftProfile{stragglerPct: 50, lo: 0.45, hi: 1.0}
	default: // ProfileMixed
		return driftProfile{stragglerPct: 33, lo: 0.2, hi: 0.8}
	}
}

// driftHash is the drift layer's only randomness: FNV-1a over the seed
// and event coordinates, finalized with the murmur3 avalanche so nearby
// inputs decorrelate. It never touches the generator's rand stream.
func driftHash(seed int64, kind, a string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(a))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// upgradeDate returns the date the device's firmware moves to a 1.3-era
// stack, or ok=false for stragglers that never upgrade. Pure in
// (seed, deviceID, profile), monotone by construction.
func upgradeDate(seed int64, deviceID string, profile SecurityProfile) (time.Time, bool) {
	dp := driftProfileOf(profile)
	if driftHash(seed, "fw-straggle", deviceID)%100 < dp.stragglerPct {
		return time.Time{}, false
	}
	frac := float64(driftHash(seed, "fw-date", deviceID)>>11) / float64(uint64(1)<<53)
	span := driftEnd.Sub(driftStart)
	at := dp.lo + frac*(dp.hi-dp.lo)
	return driftStart.Add(time.Duration(at * float64(span))), true
}

// upgradeEntryFor picks the modern-corpus entry an upgraded stack
// rebuilds on: a hash of the original stack identity over the entries
// released by the device's upgrade date, so every device sharing a
// firmware stack that upgrades on the same date converges on the same
// 1.3 fingerprint (shared ODM builds stay shared after the update).
func upgradeEntryFor(seed int64, stackID string, upAt time.Time) libcorpus.ModernEntry {
	entries := libcorpus.ModernAsOf(upAt)
	if len(entries) == 0 {
		entries = libcorpus.Modern()[:1]
	}
	return entries[driftHash(seed, "fw-lib", stackID)%uint64(len(entries))]
}

// fwStackPrefix marks upgraded stack identities. The prefix embeds the
// library the firmware rebuilt on, so upgraded records intern fresh
// stack symbols — the analysis layer's (stack, SNI) parse memo stays
// sound because a symbol still maps to exactly one set of hello bytes.
const fwStackPrefix = "fw:"

// applyFirmwareDrift re-stamps the records of every device upgraded by
// cfg.AsOf with 1.3-era hello bytes. New templates are appended to the
// shared raw buffer and the record spans repointed; each record keeps
// its original 32-byte client random, and timestamps (and therefore the
// sort order) are untouched. The abandoned spans of upgraded records
// stay in the buffer — at paper scale the waste is a few hundred
// kilobytes, and keeping offsets stable is what makes the pass cheap.
func (ds *Dataset) applyFirmwareDrift(cfg Config) {
	asof := cfg.AsOf
	if asof.IsZero() || !asof.After(driftStart) {
		return
	}
	profiles := map[string]SecurityProfile{}
	for _, v := range Vendors() {
		profiles[v.Name] = v.Profile
	}
	cols := ds.Records.c
	tab := cols.tab
	type devDecision struct {
		upgraded bool
		at       time.Time
	}
	decisions := map[intern.Symbol]devDecision{}
	tmpl := map[tmplKey][]byte{}
	var devicesUpgraded, recordsRestamped int64
	for i := range cols.stack {
		devSym := cols.device[i]
		dec, ok := decisions[devSym]
		if !ok {
			at, up := upgradeDate(cfg.Seed, tab.Str(devSym), profiles[tab.Str(cols.vendor[i])])
			dec = devDecision{upgraded: up && !at.After(asof), at: at}
			decisions[devSym] = dec
			if dec.upgraded {
				devicesUpgraded++
			}
		}
		if !dec.upgraded {
			continue
		}
		origID := tab.Str(cols.stack[i])
		if strings.HasPrefix(origID, fwStackPrefix) {
			continue
		}
		entry := upgradeEntryFor(cfg.Seed, origID, dec.at)
		newSym := tab.Intern(fwStackPrefix + entry.Name() + ":" + origID)
		key := tmplKey{stack: newSym, sni: cols.sni[i]}
		t, ok := tmpl[key]
		if !ok {
			t = buildHelloTemplate13(entry.Print, tab.Str(cols.sni[i]))
			tmpl[key] = t
		}
		var random [32]byte
		copy(random[:], cols.rawBuf[cols.rawOff[i]+helloRandomOff:])
		off := uint32(len(cols.rawBuf))
		cols.rawBuf = append(cols.rawBuf, t...)
		copy(cols.rawBuf[off+helloRandomOff:], random[:])
		cols.rawOff[i] = off
		cols.rawLen[i] = uint32(len(t))
		cols.stack[i] = newSym
		recordsRestamped++
	}
	if m := cfg.Metrics; m != nil {
		m.Counter("dataset_drift_upgraded_devices_total").Add(devicesUpgraded)
		m.Counter("dataset_drift_restamped_records_total").Add(recordsRestamped)
	}
}

// driftKeyShareData fills the template's x25519 share with a fixed
// pattern; like the zeroed client random it is a placeholder stamped
// into every template, not per-record entropy.
func driftKeyShareData() []byte {
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(7 + i*13)
	}
	return data
}

// buildHelloTemplate13 marshals a 1.3-capable hello template: the plain
// template skeleton with real supported_versions / supported_groups /
// signature_algorithms / psk_key_exchange_modes / key_share payloads
// filled in place of the type-only markers, so the record negotiates
// TLS 1.3 against the simulated servers and fingerprints as a 1.3
// client. Extension order is the print's order (setExtension replaces
// in place).
func buildHelloTemplate13(print fingerprint.Fingerprint, sni string) []byte {
	ch := helloSkeleton(print, sni)
	ch.SetSupportedVersions([]uint16{
		uint16(tlswire.VersionTLS13), uint16(tlswire.VersionTLS12),
	})
	ch.SetSupportedGroups([]uint16{
		tlswire.GroupX25519, tlswire.GroupP256, tlswire.GroupP384,
	})
	ch.SetSignatureAlgorithms([]uint16{0x0403, 0x0804, 0x0401, 0x0503, 0x0805})
	ch.SetPSKKeyExchangeModes([]byte{1})
	ch.SetKeyShares([]tlswire.KeyShare{{Group: tlswire.GroupX25519, Data: driftKeyShareData()}})
	raw, err := ch.Marshal()
	if err != nil {
		panic("dataset: marshal 1.3 hello: " + err.Error())
	}
	return raw
}

// AdoptionPoint is one row of the adoption curve: the device population
// bucketed by the best TLS version its firmware proposes at Date. The
// three buckets always sum to the full population.
type AdoptionPoint struct {
	Date time.Time
	// TLS13 counts devices upgraded to a 1.3-era stack by Date.
	TLS13 int
	// TLS12 counts un-upgraded devices whose best stack proposes 1.2.
	TLS12 int
	// Legacy counts un-upgraded devices stuck below TLS 1.2.
	Legacy int
}

// Total is the population the point buckets.
func (p AdoptionPoint) Total() int { return p.TLS13 + p.TLS12 + p.Legacy }

// legacyDevice reports whether every stack of the device proposes below
// TLS 1.2 (the pre-drift "legacy" bucket).
func legacyDevice(d *Device) bool {
	for _, s := range d.Stacks {
		if s.Print.Version >= tlswire.VersionTLS12 {
			return false
		}
	}
	return true
}

// AdoptionCurve buckets the device population at each date. Dates are
// evaluated against the same hash schedule the generator materializes,
// so the curve at ds.Config.AsOf matches the generated records exactly,
// and the TLS13 column is nondecreasing over increasing dates.
func (ds *Dataset) AdoptionCurve(dates []time.Time) []AdoptionPoint {
	profiles := map[string]SecurityProfile{}
	for _, v := range Vendors() {
		profiles[v.Name] = v.Profile
	}
	out := make([]AdoptionPoint, 0, len(dates))
	for _, date := range dates {
		pt := AdoptionPoint{Date: date}
		for _, d := range ds.Devices {
			at, ok := upgradeDate(ds.Config.Seed, d.ID, profiles[d.Vendor])
			switch {
			case ok && !at.After(date) && date.After(driftStart):
				pt.TLS13++
			case legacyDevice(d):
				pt.Legacy++
			default:
				pt.TLS12++
			}
		}
		out = append(out, pt)
	}
	return out
}

// TLS13Fraction is the fraction of devices upgraded to a 1.3-era stack
// by asof (0 for the paper window and earlier).
func (ds *Dataset) TLS13Fraction(asof time.Time) float64 {
	if len(ds.Devices) == 0 {
		return 0
	}
	pt := ds.AdoptionCurve([]time.Time{asof})[0]
	return float64(pt.TLS13) / float64(pt.Total())
}

// StragglerRow is one vendor's downgrade-straggler tally: devices that
// will never upgrade off their paper-era stack.
type StragglerRow struct {
	Vendor     string
	Devices    int
	Stragglers int
}

// Fraction is the vendor's straggler share.
func (r StragglerRow) Fraction() float64 {
	if r.Devices == 0 {
		return 0
	}
	return float64(r.Stragglers) / float64(r.Devices)
}

// DowngradeStragglers tallies, per vendor, the devices whose firmware
// never leaves the paper-era stack — the population still proposing
// 1.2-and-below hellos at the end of the timeline. Sorted by straggler
// count descending, then vendor name, for stable report rows.
func (ds *Dataset) DowngradeStragglers() []StragglerRow {
	profiles := map[string]SecurityProfile{}
	for _, v := range Vendors() {
		profiles[v.Name] = v.Profile
	}
	byVendor := map[string]*StragglerRow{}
	var order []string
	for _, d := range ds.Devices {
		row := byVendor[d.Vendor]
		if row == nil {
			row = &StragglerRow{Vendor: d.Vendor}
			byVendor[d.Vendor] = row
			order = append(order, d.Vendor)
		}
		row.Devices++
		if _, ok := upgradeDate(ds.Config.Seed, d.ID, profiles[d.Vendor]); !ok {
			row.Stragglers++
		}
	}
	out := make([]StragglerRow, 0, len(order))
	for _, v := range order {
		out = append(out, *byVendor[v])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stragglers != out[j].Stragglers {
			return out[i].Stragglers > out[j].Stragglers
		}
		return out[i].Vendor < out[j].Vendor
	})
	return out
}
